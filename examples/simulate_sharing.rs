//! Compares GPU sharing strategies on the simulated A100 for the paper's
//! three benchmarks: serial, concurrent, MPS, MIG and HFTA.
//!
//! Run with: `cargo run --release --example simulate_sharing`

use hfta_models::Workload;
use hfta_sim::{DeviceSpec, GpuSim, SharingPolicy};

fn main() {
    let device = DeviceSpec::a100();
    println!(
        "device: {} ({} SMs, {} GiB)\n",
        device.name, device.sm_count, device.hbm_gib
    );
    for workload in Workload::paper_benchmarks() {
        let amp = true;
        let sim = GpuSim::new(device.clone(), amp);
        let serial = sim.simulate(SharingPolicy::Serial, &workload.serial_job(), 1);
        println!(
            "## {} (AMP, normalized by serial = {:.0} examples/s)",
            workload.name, serial.throughput_eps
        );
        for policy in [
            SharingPolicy::Serial,
            SharingPolicy::Concurrent,
            SharingPolicy::Mps,
            SharingPolicy::Mig,
            SharingPolicy::Hfta,
        ] {
            // Find the best model count for this policy.
            let mut best: Option<(usize, f64, f64)> = None;
            let limit = if policy == SharingPolicy::Mig { 7 } else { 32 };
            for j in 1..=limit {
                let r = match policy {
                    SharingPolicy::Hfta => sim.simulate(policy, &workload.fused_job(j), 1),
                    SharingPolicy::Serial if j > 1 => break,
                    _ => sim.simulate(policy, &workload.serial_job(), j),
                };
                if !r.fits {
                    break;
                }
                let norm = r.throughput_eps / serial.throughput_eps;
                if best.is_none_or(|(_, b, _)| norm > b) {
                    best = Some((r.models, norm, r.counters.sm_active));
                }
            }
            if let Some((models, norm, active)) = best {
                println!(
                    "  {:<11} peak {norm:>5.2}x at {models:>2} models (sm_active {:.0}%)",
                    policy.name(),
                    active * 100.0
                );
            }
        }
        println!();
    }
}
