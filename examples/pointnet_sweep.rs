//! Hyper-parameter sweep over PointNet classification — serial vs HFTA.
//!
//! Trains four PointNet-mini classifiers with different Adam learning
//! rates on the synthetic ShapeNet-part stand-in, first as four serial
//! jobs and then as one fused array, verifying the loss curves match and
//! reporting the real CPU wall-clock comparison (fusion amortizes
//! per-operator dispatch even on CPU).
//!
//! Run with: `cargo run --release --example pointnet_sweep`

use std::time::Instant;

use hfta_core::array::copy_model_weights;
use hfta_core::format::{stack_conv, stack_targets};
use hfta_core::loss::{fused_nll_loss, Reduction};
use hfta_core::ops::FusedModule;
use hfta_core::optim::{FusedAdam, FusedOptimizer, PerModel};
use hfta_data::{PointClouds, SHAPE_CLASSES};
use hfta_models::{FusedPointNetCls, PointNetCfg, PointNetCls};
use hfta_nn::{Adam, Module, Optimizer, Tape};
use hfta_tensor::{Rng, Tensor};

fn main() {
    let lrs = [0.01f32, 0.005, 0.001, 0.0005];
    let b = lrs.len();
    let cfg = PointNetCfg::mini(SHAPE_CLASSES);
    let iters = 12;
    let batch = 8;
    let points = 64;

    let mut rng = Rng::seed_from(3);
    let fused = FusedPointNetCls::new(b, cfg, &mut rng);
    fused.set_training(false); // freeze dropout/BN mode for exact comparison
    let serial: Vec<PointNetCls> = (0..b)
        .map(|_| {
            let m = PointNetCls::new(cfg, &mut rng);
            m.set_training(false);
            m
        })
        .collect();
    for (i, m) in serial.iter().enumerate() {
        copy_model_weights(&fused.fused_parameters(), i, &m.parameters());
    }

    let mut data = PointClouds::new(points, 11);
    let batches: Vec<(Tensor, Vec<usize>)> = (0..iters).map(|_| data.batch(batch)).collect();

    // --- Serial: four independent jobs ---
    let t0 = Instant::now();
    let mut serial_losses = vec![Vec::new(); b];
    for (i, model) in serial.iter().enumerate() {
        let mut opt = Adam::new(model.parameters(), lrs[i]);
        for (x, y) in &batches {
            opt.zero_grad();
            let tape = Tape::new();
            let loss = model.forward(&tape.leaf(x.clone())).nll_loss(y);
            serial_losses[i].push(loss.item());
            loss.backward();
            opt.step();
        }
    }
    let serial_time = t0.elapsed();

    // --- HFTA: one fused array ---
    let t0 = Instant::now();
    let mut opt = FusedAdam::new(fused.fused_parameters(), PerModel::new(lrs.to_vec()))
        .expect("widths match");
    let mut fused_losses = vec![Vec::new(); b];
    for (x, y) in &batches {
        opt.zero_grad();
        let tape = Tape::new();
        let copies: Vec<Tensor> = (0..b).map(|_| x.clone()).collect();
        let fx = tape.leaf(stack_conv(&copies).expect("uniform")); // [N, B*3, P]
        let log_probs = fused.forward(&fx); // [B, N, classes]
        for (i, f) in fused_losses.iter_mut().enumerate() {
            let per = log_probs
                .narrow(0, i, 1)
                .reshape(&[batch, SHAPE_CLASSES])
                .nll_loss(y);
            f.push(per.item());
        }
        let targets = stack_targets(&vec![y.clone(); b]).expect("uniform");
        fused_nll_loss(&log_probs, &targets, Reduction::Mean).backward();
        opt.step();
    }
    let fused_time = t0.elapsed();

    // --- Report ---
    println!("PointNet-mini classification sweep, {b} learning rates, {iters} iters\n");
    println!("final losses (serial vs HFTA — must match):");
    let mut max_div = 0.0f32;
    for i in 0..b {
        let s = *serial_losses[i].last().unwrap();
        let f = *fused_losses[i].last().unwrap();
        max_div = max_div.max((s - f).abs());
        println!("  lr={:<7} serial {:.5}  hfta {:.5}", lrs[i], s, f);
    }
    println!("\nmax loss divergence across all iterations: {max_div:.2e}");
    println!(
        "wall clock: serial {:.2?}  hfta {:.2?}  ({:.2}x)",
        serial_time,
        fused_time,
        serial_time.as_secs_f64() / fused_time.as_secs_f64()
    );
}
