//! Hyper-parameter tuning on top of HFTA — the paper's §6 integration
//! target. Random-search candidates over (learning rate, momentum) are
//! packed into fused arrays; each array trains `B` AlexNet-mini models on
//! one (simulated-shared) device and reports per-model validation scores.
//!
//! Run with: `cargo run --release --example tuner`

use hfta_core::format::{stack_conv, stack_targets};
use hfta_core::loss::{fused_cross_entropy, Reduction};
use hfta_core::ops::FusedModule;
use hfta_core::optim::{FusedOptimizer, FusedSgd, PerModel};
use hfta_core::tuner::{random_search, sweep};
use hfta_data::LabeledImages;
use hfta_models::{AlexNetCfg, FusedAlexNet};
use hfta_nn::{Module, Tape};
use hfta_tensor::{Rng, Tensor};

fn main() {
    // 12 random-search candidates over two axes (log-uniform), packed into
    // arrays of 4 — three devices' worth of training replaces twelve.
    let candidates = random_search(&[("lr", 1e-3, 3e-1), ("momentum", 0.5, 0.99)], 12, 42);
    let array_width = 4;
    let cfg = AlexNetCfg::mini(4);

    let mut array_counter = 0;
    let report = sweep(candidates, array_width, |chunk| {
        array_counter += 1;
        let b = chunk.len();
        let lrs: Vec<f32> = chunk.iter().map(|c| c[0].1).collect();
        let moms: Vec<f32> = chunk.iter().map(|c| c[1].1).collect();
        println!(
            "array {array_counter}: training {b} models (lr {:?})",
            lrs.iter().map(|v| format!("{v:.4}")).collect::<Vec<_>>()
        );

        let mut rng = Rng::seed_from(1000 + array_counter);
        let model = FusedAlexNet::new(b, cfg, &mut rng);
        model.set_training(false);
        let mut opt = FusedSgd::with_momenta(
            model.fused_parameters(),
            PerModel::new(lrs),
            PerModel::new(moms),
        )
        .expect("widths match");

        let mut data = LabeledImages::new(16, 4, 7);
        for _ in 0..15 {
            let (x, y) = data.batch(16);
            opt.zero_grad();
            let tape = Tape::new();
            let copies: Vec<Tensor> = (0..b).map(|_| x.clone()).collect();
            let logits = model.forward(&tape.leaf(stack_conv(&copies).expect("uniform")));
            let targets = stack_targets(&vec![y.clone(); b]).expect("uniform");
            fused_cross_entropy(&logits, &targets, Reduction::Mean).backward();
            opt.step();
        }
        // Validation: negative loss on a held-out batch, per model.
        let mut val = LabeledImages::new(16, 4, 99);
        let (x, y) = val.batch(32);
        let tape = Tape::new();
        let copies: Vec<Tensor> = (0..b).map(|_| x.clone()).collect();
        let logits = model.forward(&tape.leaf(stack_conv(&copies).expect("uniform")));
        (0..b)
            .map(|i| {
                -logits
                    .narrow(0, i, 1)
                    .reshape(&[32, 4])
                    .cross_entropy(&y)
                    .item()
            })
            .collect()
    })
    .expect("sweep runs");

    println!(
        "\n{} candidates evaluated with {} fused arrays ({}x fewer jobs)",
        report.serial_jobs_replaced,
        report.arrays_trained,
        report.serial_jobs_replaced / report.arrays_trained
    );
    println!("\nrank | val loss | lr      | momentum");
    for (i, t) in report.trials.iter().take(5).enumerate() {
        println!(
            "{:>4} | {:>8.4} | {:.5} | {:.3}",
            i + 1,
            -t.score,
            t.config[0].1,
            t.config[1].1
        );
    }
    let best = report.best();
    println!(
        "\nbest: lr = {:.5}, momentum = {:.3} (val loss {:.4})",
        best.config[0].1, best.config[1].1, -best.score
    );
}
