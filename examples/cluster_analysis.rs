//! Reproduces the paper's motivation study on a synthetic cluster trace:
//! generates two months of jobs, runs the Appendix-A classifier, and
//! prints the Table-1 GPU-hour breakdown plus Figure-10 samples.
//!
//! Run with: `cargo run --release --example cluster_analysis`

use hfta_cluster::{classify, trace};

fn main() {
    let cfg = trace::TraceCfg::default();
    println!("generating {} jobs over {} days...", cfg.jobs, cfg.days);
    let jobs = trace::generate(&cfg, 2020);
    let cats = classify::classify(&jobs, &classify::ClassifyCfg::default());
    let b = classify::Breakdown::from_assignments(&jobs, &cats);

    println!("\nGPU-hour breakdown (paper Table 1 in parentheses):");
    for ((name, hours, pct), paper) in b.rows().iter().zip([46.2, 3.5, 24.0, 26.3]) {
        println!("  {name:<22} {hours:>9.0} GPU-h  {pct:>5.1}%  ({paper}%)");
    }
    println!(
        "\nclassifier accuracy vs planted ground truth: {:.1}%",
        classify::accuracy(&jobs, &cats) * 100.0
    );

    println!("\nFigure 10 — sampled repetitive jobs (low utilization):");
    for (i, s) in classify::sample_utilization(&jobs, &cats, 13)
        .iter()
        .enumerate()
    {
        println!(
            "  job {:>2}: sm_active {:>5.1}%  sm_occupancy {:>5.1}%",
            i + 1,
            s.sm_active * 100.0,
            s.sm_occupancy * 100.0
        );
    }
    println!("\nThe dominant, worst-utilized category is exactly what HFTA fuses.");
}
