//! Trains a fused array of DCGAN-mini generators/discriminators with
//! per-model learning rates on the synthetic LSUN stand-in — the paper's
//! GAN workload, where increasing the batch size is *not* a viable way to
//! raise utilization (GAN stability), making HFTA the right tool.
//!
//! Run with: `cargo run --release --example dcgan_array`

use hfta_core::loss::{fused_bce_with_logits, Reduction};
use hfta_core::ops::FusedModule;
use hfta_core::optim::{FusedAdam, FusedOptimizer, PerModel};
use hfta_data::GanImages;
use hfta_models::{DcganCfg, FusedDiscriminator, FusedGenerator};
use hfta_nn::{Module, Tape};
use hfta_tensor::{Rng, Tensor};

fn main() {
    // Two jobs sweeping the classic DCGAN learning rate around 2e-4.
    let lrs = PerModel::new(vec![4e-4, 1e-4]);
    let b = lrs.b();
    let cfg = DcganCfg::mini();
    let batch = 8;

    let mut rng = Rng::seed_from(0);
    let gen = FusedGenerator::new(b, cfg, &mut rng);
    let disc = FusedDiscriminator::new(b, cfg, &mut rng);
    let mut opt_g = FusedAdam::with_betas(gen.fused_parameters(), lrs.clone(), 0.5, 0.999, 1e-8)
        .expect("widths match");
    let mut opt_d = FusedAdam::with_betas(disc.fused_parameters(), lrs, 0.5, 0.999, 1e-8)
        .expect("widths match");

    let mut data = GanImages::new(cfg.image, 5);
    let mut noise = Rng::seed_from(9);

    println!("step |   D loss   G loss  (fused over {b} models)");
    for step in 0..20 {
        // --- Discriminator step: real batch up, fake batch down ---
        opt_d.zero_grad();
        let tape = Tape::new();
        let real = data.batch(batch);
        let real_fused: Vec<&Tensor> = std::iter::repeat_n(&real, b).collect();
        let real_x = tape.leaf(Tensor::concat(&real_fused, 1));
        let d_real = disc.forward(&real_x); // [N, B]
        let loss_real =
            fused_bce_with_logits(&d_real, &Tensor::ones([batch, b]), b, Reduction::Mean);
        let z = tape.leaf(noise.randn([batch, b * cfg.latent, 1, 1]));
        let fake = gen.forward(&z);
        // Detach the generator: feed the fake image values as a leaf.
        let d_fake = disc.forward(&tape.leaf(fake.value()));
        let loss_fake =
            fused_bce_with_logits(&d_fake, &Tensor::zeros([batch, b]), b, Reduction::Mean);
        let d_loss = loss_real.add(&loss_fake);
        d_loss.backward();
        opt_d.step();

        // --- Generator step: fool the discriminator ---
        opt_g.zero_grad();
        let tape = Tape::new();
        let z = tape.leaf(noise.randn([batch, b * cfg.latent, 1, 1]));
        let fake = gen.forward(&z);
        let d_out = disc.forward(&fake);
        let g_loss = fused_bce_with_logits(&d_out, &Tensor::ones([batch, b]), b, Reduction::Mean);
        g_loss.backward();
        opt_g.step();

        if step % 4 == 0 {
            println!(
                "{step:>4} | {:>8.4} {:>8.4}",
                d_loss.item() / b as f32,
                g_loss.item() / b as f32
            );
        }
    }
    println!("\nBoth GANs trained in lock-step on one device; per-model Adam");
    println!("learning rates rode along as a broadcast vector (paper Figure 1).");
}
