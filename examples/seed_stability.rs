//! Convergence stability testing — the paper's *other* repetitive-job use
//! case (§2.1): train the same model with the same hyper-parameters but
//! different random seeds, fused into one array, and report the spread of
//! final losses.
//!
//! Run with: `cargo run --release --example seed_stability`

use hfta_core::format::{stack_conv, stack_targets};
use hfta_core::loss::{fused_cross_entropy, Reduction};
use hfta_core::ops::FusedModule;
use hfta_core::optim::{FusedOptimizer, FusedSgd, PerModel};
use hfta_data::LabeledImages;
use hfta_models::{FusedResNet, ResNetCfg};
use hfta_nn::{Module, Tape};
use hfta_tensor::{Rng, Tensor};

fn main() {
    // Six replicas: identical architecture and hyper-parameters, different
    // initialization seeds — FusedResNet::new draws each model's weights
    // from an independent RNG stream, which is exactly the seed sweep.
    let b = 6;
    let cfg = ResNetCfg::mini(4);
    let mut rng = Rng::seed_from(123);
    let array = FusedResNet::new(b, cfg, &mut rng);
    array.set_training(false);
    let mut opt = FusedSgd::new(array.fused_parameters(), PerModel::uniform(b, 0.05), 0.9)
        .expect("widths match");

    let mut data = LabeledImages::new(8, 4, 77);
    let mut finals = vec![0.0f32; b];
    for step in 0..25 {
        let (x, y) = data.batch(12);
        opt.zero_grad();
        let tape = Tape::new();
        let copies: Vec<Tensor> = (0..b).map(|_| x.clone()).collect();
        let logits = array.forward(&tape.leaf(stack_conv(&copies).expect("uniform")));
        for (i, slot) in finals.iter_mut().enumerate() {
            *slot = logits
                .narrow(0, i, 1)
                .reshape(&[12, 4])
                .cross_entropy(&y)
                .item();
        }
        let targets = stack_targets(&vec![y.clone(); b]).expect("uniform");
        fused_cross_entropy(&logits, &targets, Reduction::Mean).backward();
        opt.step();
        if step % 8 == 0 {
            let mean: f32 = finals.iter().sum::<f32>() / b as f32;
            println!("step {step:>3}: mean loss {mean:.4}, per-seed {finals:?}");
        }
    }
    let mean: f32 = finals.iter().sum::<f32>() / b as f32;
    let var: f32 = finals.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / b as f32;
    println!(
        "\nfinal: mean {:.4}, std {:.4} across {b} seeds",
        mean,
        var.sqrt()
    );
    println!("One device answered the stability question that would have taken {b} GPUs.");
}
