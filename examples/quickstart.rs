//! Quickstart: fuse a 3-job hyper-parameter sweep into one HFTA array.
//!
//! Mirrors the paper's Figure 1: three training jobs that differ only in
//! learning rate are horizontally fused and trained simultaneously, with
//! gradients identical to independent training.
//!
//! Run with: `cargo run --release --example quickstart`

use hfta_core::array::ModelArray;
use hfta_core::loss::{fused_cross_entropy, Reduction};
use hfta_core::ops::FusedLinear;
use hfta_core::optim::{FusedAdam, FusedOptimizer, PerModel};
use hfta_nn::layers::LinearCfg;
use hfta_tensor::{Rng, Tensor};

fn main() {
    // Three jobs differing only in learning rate — the repetitive
    // single-accelerator workload the paper targets.
    let lrs = PerModel::new(vec![0.1, 0.01, 0.001]);
    let b = lrs.b();

    let mut rng = Rng::seed_from(0);
    let array = ModelArray::new(FusedLinear::new(b, LinearCfg::new(16, 4), &mut rng));
    let mut opt = FusedAdam::new(array.fused_parameters(), lrs.clone()).expect("widths match");

    // A toy 4-class problem; every job trains on the same stream.
    let mut data_rng = Rng::seed_from(7);
    println!("step | loss(lr=0.1) loss(lr=0.01) loss(lr=0.001)");
    for step in 0..30 {
        let x = data_rng.randn([32, 16]);
        let y: Vec<usize> = (0..32)
            .map(|i| {
                // Learnable rule: class = argmax of 4 feature groups.
                let row = x.narrow(0, i, 1);
                row.reshape(&[4, 4])
                    .sum_axis(1, false)
                    .argmax_axis(0)
                    .item() as usize
            })
            .collect();

        opt.zero_grad();
        let inputs: Vec<Tensor> = (0..b).map(|_| x.clone()).collect();
        let (_tape, logits) = array.forward_array(&inputs).expect("uniform inputs");
        let targets: Vec<usize> = (0..b).flat_map(|_| y.iter().copied()).collect();
        let loss = fused_cross_entropy(&logits, &targets, Reduction::Mean);
        loss.backward();
        opt.step();

        if step % 5 == 0 {
            // Per-model losses for reporting.
            let per: Vec<String> = (0..b)
                .map(|m| {
                    let l = logits.narrow(0, m, 1).reshape(&[32, 4]).cross_entropy(&y);
                    format!("{:>12.4}", l.item())
                })
                .collect();
            println!("{step:>4} | {}", per.join(" "));
        }
    }
    println!("\nThe three models trained simultaneously on one device —");
    println!("one fused baddbmm per step instead of three small matmuls.");
}
