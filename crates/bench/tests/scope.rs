//! hfta-scope integration tests: fused loss streams vs unfused runs
//! (ISSUE satellite c), the `scope_sweep` trace pipeline, and the
//! `scope_report --diff` exit-code contract (including the acceptance
//! case: an injected ≥10% throughput regression must exit non-zero).

use hfta_bench::scope_report::{load_report, LoadedReport};
use hfta_core::array::ModelArray;
use hfta_core::loss::{fused_cross_entropy, Reduction};
use hfta_core::ops::FusedLinear;
use hfta_core::optim::{FusedOptimizer, FusedSgd, PerModel};
use hfta_core::scope::per_model_ce_losses;
use hfta_nn::layers::LinearCfg;
use hfta_tensor::{Rng, Tensor};
use std::path::Path;
use std::process::Command;

const STEPS: usize = 3;
const N: usize = 5;
const F_IN: usize = 6;
const CLASSES: usize = 3;

/// Trains a fused array on fixed batches and returns each model's loss
/// curve as recorded by `ModelArray::record_step` into the profiler's
/// per-model scalar streams.
fn loss_streams(
    model: FusedLinear,
    lrs: &[f32],
    batches: &[(Vec<Tensor>, Vec<usize>)],
) -> Vec<Vec<f64>> {
    let b = lrs.len();
    let array = ModelArray::new(model);
    let mut opt = FusedSgd::new(array.fused_parameters(), PerModel::new(lrs.to_vec()), 0.9)
        .expect("matching widths");
    let profiler = hfta_telemetry::Profiler::new("stream-test");
    let guard = profiler.install();
    for (step, (xs, targets)) in batches.iter().enumerate() {
        opt.zero_grad();
        let (_tape, logits) = array.forward_array(xs).unwrap();
        let losses = per_model_ce_losses(&logits, targets);
        array.record_step(step as u64, &losses, 0.0);
        fused_cross_entropy(&logits, targets, Reduction::Mean).backward();
        opt.step();
    }
    drop(guard);
    let report = profiler.report();
    let exp = &report.experiments[0];
    (0..b as u64)
        .map(|m| {
            exp.scalar_stream(m, "loss")
                .expect("every model streams a loss")
                .points
                .iter()
                .map(|p| p.value)
                .collect()
        })
        .collect()
}

/// ISSUE satellite c: the per-model losses `record_step` streams from a
/// fused run must equal what each model reports when trained alone (the
/// fused ops compute every lane independently, so this holds bit-for-bit,
/// not just approximately).
#[test]
fn fused_loss_streams_match_unfused_runs() {
    let mut rng = Rng::seed_from(99);
    let fused3 = FusedLinear::new(3, LinearCfg::new(F_IN, CLASSES), &mut rng);
    let members = fused3.unfuse();
    let batches: Vec<(Vec<Tensor>, Vec<usize>)> = (0..STEPS)
        .map(|_| {
            let xs: Vec<Tensor> = (0..3).map(|_| rng.randn([N, F_IN])).collect();
            let ys: Vec<usize> = (0..3 * N).map(|_| rng.below(CLASSES)).collect();
            (xs, ys)
        })
        .collect();
    let lrs = [0.2f32, 0.1, 0.05];
    let fused_curves = loss_streams(fused3, &lrs, &batches);
    for i in 0..3 {
        let solo = FusedLinear::from_models(&members[i..=i]).unwrap();
        let solo_batches: Vec<(Vec<Tensor>, Vec<usize>)> = batches
            .iter()
            .map(|(xs, ys)| (xs[i..=i].to_vec(), ys[i * N..(i + 1) * N].to_vec()))
            .collect();
        let solo_curves = loss_streams(solo, &lrs[i..=i], &solo_batches);
        assert_eq!(
            fused_curves[i], solo_curves[0],
            "model {i}'s fused loss stream differs from its unfused run"
        );
    }
}

fn run_scope_report(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_scope_report"))
        .args(args)
        .output()
        .expect("spawn scope_report")
}

#[test]
fn scope_sweep_trace_renders_and_self_diffs_clean() {
    let dir = std::env::temp_dir().join("hfta-scope-sweep-test");
    let _ = std::fs::remove_dir_all(&dir);
    let sweep = Command::new(env!("CARGO_BIN_EXE_scope_sweep"))
        .args(["--trace", &dir.display().to_string()])
        .output()
        .expect("spawn scope_sweep");
    assert!(sweep.status.success(), "scope_sweep failed: {sweep:?}");

    // The report contains the full scope picture: 4 models' streams, one
    // quarantined sentinel on model 3 at step 1.
    let report_path = dir.join("scope_sweep.report.json");
    let text = std::fs::read_to_string(&report_path).unwrap();
    let LoadedReport::Run(run) = load_report(&text).unwrap() else {
        panic!("expected a run report");
    };
    let exp = &run.experiments[0];
    assert_eq!(exp.scalar_models(), vec![0, 1, 2, 3]);
    for metric in ["loss", "grad_norm", "param_norm", "update_ratio"] {
        assert!(exp.scalar_stream(0, metric).is_some(), "missing {metric}");
    }
    assert_eq!(exp.sentinels.len(), 1);
    assert_eq!(exp.sentinels[0].model, 3);
    assert_eq!(exp.sentinels[0].step, 1);
    assert!(exp.sentinels[0].quarantined);

    // Health mode renders the quarantine.
    let health = run_scope_report(&[&dir.display().to_string()]);
    assert!(health.status.success());
    let stdout = String::from_utf8_lossy(&health.stdout);
    assert!(stdout.contains("nan_grad@1 (quarantined)"), "{stdout}");

    // Self-diff is clean (exit 0) despite the NaN grad-norm points the
    // report round-trips through JSON `null`.
    let rp = report_path.display().to_string();
    assert!(run_scope_report(&["--diff", &rp, &rp]).status.success());

    // A drifted loss fails the diff (exit 1).
    let mut tampered = run.clone();
    tampered.experiments[0]
        .scalars
        .iter_mut()
        .find(|s| s.model == 0 && s.metric == "loss")
        .unwrap()
        .points
        .last_mut()
        .unwrap()
        .value += 0.5;
    let tpath = dir.join("tampered.report.json");
    std::fs::write(&tpath, serde_json::to_string_pretty(&tampered).unwrap()).unwrap();
    let diff = run_scope_report(&["--diff", &rp, &tpath.display().to_string()]);
    assert_eq!(diff.status.code(), Some(1), "{diff:?}");

    let _ = std::fs::remove_dir_all(&dir);
}

fn bench_file(gflops: f64) -> String {
    format!(
        r#"{{"records": [{{"op": "gemm", "shape": "64x64", "backend": "blocked",
             "threads": 4, "ns_per_iter": 10.0, "gflops": {gflops}}}],
            "fused_conv_speedup": 2.0, "scope_overhead_pct": 0.5}}"#
    )
}

/// ISSUE acceptance: injecting a ≥10% throughput regression into one of
/// two otherwise-identical BENCH_*.json files makes `scope_report --diff`
/// exit non-zero.
#[test]
fn diff_cli_fails_on_injected_throughput_regression() {
    let dir = std::env::temp_dir().join("hfta-scope-diff-test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let base = dir.join("base.json");
    let same = dir.join("same.json");
    let slow = dir.join("slow.json");
    std::fs::write(&base, bench_file(100.0)).unwrap();
    std::fs::write(&same, bench_file(100.0)).unwrap();
    std::fs::write(&slow, bench_file(88.0)).unwrap(); // 12% regression
    let (base, same, slow) = (
        base.display().to_string(),
        same.display().to_string(),
        slow.display().to_string(),
    );

    assert!(run_scope_report(&["--diff", &base, &same]).status.success());
    let regressed = run_scope_report(&["--diff", &base, &slow]);
    assert_eq!(regressed.status.code(), Some(1), "{regressed:?}");
    // The budget is configurable: 12% passes a 20% gate.
    assert!(
        run_scope_report(&["--diff", &base, &slow, "--max-regress", "20"])
            .status
            .success()
    );
    // Usage errors exit 2.
    assert_eq!(run_scope_report(&["--diff", &base]).status.code(), Some(2));

    let _ = std::fs::remove_dir_all(&dir);
}

/// The committed bench file records hfta-scope's measured cost on a fused
/// DCGAN-style step; the acceptance budget is < 5%.
#[test]
fn committed_bench_json_has_scope_overhead_under_budget() {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_kernels.json");
    let text = std::fs::read_to_string(&path).unwrap();
    let LoadedReport::Bench(v) = load_report(&text).unwrap() else {
        panic!("expected a bench report");
    };
    let pct = match v.get("scope_overhead_pct") {
        Some(serde::Value::F64(p)) => *p,
        other => panic!("missing scope_overhead_pct: {other:?}"),
    };
    assert!(
        pct < hfta_bench::scope_report::SCOPE_OVERHEAD_BUDGET_PCT,
        "scope overhead {pct}% exceeds budget"
    );
}
