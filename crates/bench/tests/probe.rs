//! hfta-probe integration tests: the `probe_report` pipeline on a traced
//! fused DCGAN-style training step (the ISSUE acceptance case: per-op
//! roofline classification plus per-lane and per-device utilization must
//! come out of the trace), perf-history appends from `bench_kernels`, and
//! the `scope_report --history` drift-gate exit-code contract — 0 on the
//! committed CI baseline, 1 on an injected ≥10% utilization drop.

use std::path::{Path, PathBuf};
use std::process::Command;

use hfta_bench::telemetry_cli::TraceSession;
use hfta_core::loss::{fused_cross_entropy, Reduction};
use hfta_core::ops::{FusedConv2d, FusedModule};
use hfta_core::optim::{FusedOptimizer, FusedSgd, PerModel};
use hfta_nn::layers::Conv2dCfg;
use hfta_nn::{Module, Tape};
use hfta_probe::{HistoryRecord, OpUtil, PerfHistory, HISTORY_SCHEMA};
use hfta_tensor::Rng;

const B: usize = 4;

/// Traces one fused DCGAN-style training step (conv forward, fused CE
/// loss, backward, SGD) into `dir`, with step metrics carrying the fused
/// width and a synthetic per-device utilization series.
fn trace_dcgan_step(dir: &Path) {
    let _ = std::fs::remove_dir_all(dir);
    let session = TraceSession::active("dcgan_step", dir);
    let p = session.profiler().expect("active session").clone();

    let mut rng = Rng::seed_from(11);
    let conv = FusedConv2d::new(B, Conv2dCfg::new(3, 8, 3), &mut rng);
    let mut opt = FusedSgd::new(conv.fused_parameters(), PerModel::new(vec![0.01; B]), 0.9)
        .expect("matching widths");
    let x = rng.randn([2, B * 3, 16, 16]);
    let targets = vec![0usize; B * 2];

    opt.zero_grad();
    let tape = Tape::new();
    let y = conv.forward(&tape.leaf(x));
    let dims = y.dims();
    let pooled = y
        .reshape(&[dims[0], dims[1], dims[2] * dims[3]])
        .mean_axis_keep(2);
    let logits = pooled.reshape(&[dims[0], B, 8]).permute(&[1, 0, 2]);
    let losses: Vec<f32> = vec![0.5; B];
    hfta_core::array::record_step_metrics(0, &losses, 0.0, B as u64);
    fused_cross_entropy(&logits, &targets, Reduction::Mean).backward();
    opt.step();

    // A device utilization series like the scheduler's, so the report can
    // render the Fig-8 timeline strip.
    let lane = p.lane("fleet", "V100#0");
    p.counter_at(lane, "sched/V100#0/util", 0.0, 0.9);
    p.counter_at(lane, "sched/V100#0/util", 50.0, 0.2);
    session.finish().expect("trace written");
}

/// Writes a synthetic probe database so tests never pay (or depend on)
/// real machine calibration.
fn synthetic_db(path: &Path) {
    hfta_probe::MachinePeaks::synthetic(50.0, 20.0)
        .save(path)
        .expect("probe db written");
}

#[test]
fn probe_report_classifies_a_traced_dcgan_step() {
    let dir = std::env::temp_dir().join("hfta-probe-dcgan-test");
    trace_dcgan_step(&dir);
    let db = dir.join("probe_db.json");
    synthetic_db(&db);

    let out = Command::new(env!("CARGO_BIN_EXE_probe_report"))
        .arg(dir.display().to_string())
        .args(["--probe-db", &db.display().to_string()])
        .output()
        .expect("probe_report runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success(),
        "probe_report failed: {stdout}\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Per-op roofline classification with bound labels.
    assert!(
        stdout.contains("roofline @"),
        "no roofline header: {stdout}"
    );
    assert!(stdout.contains("%peak"), "no pct-of-peak column: {stdout}");
    assert!(
        stdout.contains("compute") || stdout.contains("bandwidth"),
        "no bound classification: {stdout}"
    );
    // The conv step's dominant ops must be attributed by name.
    assert!(stdout.contains("conv2d"), "conv ops missing: {stdout}");
    // Per-lane attribution at the fused width.
    assert!(stdout.contains("lane"), "no lane table: {stdout}");
    for lane in 0..B {
        assert!(
            stdout
                .lines()
                .any(|l| l.trim().starts_with(&lane.to_string())),
            "lane {lane} row missing: {stdout}"
        );
    }
    // Per-device utilization timeline.
    assert!(
        stdout.contains("sched/V100#0/util"),
        "device timeline missing: {stdout}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn probe_report_appends_history_records() {
    let dir = std::env::temp_dir().join("hfta-probe-history-append-test");
    trace_dcgan_step(&dir);
    synthetic_db(&dir.join("probe_db.json"));
    let history_path = dir.join("history.jsonl");

    for _ in 0..2 {
        let out = Command::new(env!("CARGO_BIN_EXE_probe_report"))
            .arg(dir.display().to_string())
            .args(["--history", &history_path.display().to_string()])
            .output()
            .expect("probe_report runs");
        assert!(out.status.success());
    }
    let records = PerfHistory::new(&history_path).load().expect("loads");
    assert_eq!(records.len(), 2, "one record per run");
    assert!(!records[0].ops.is_empty());
    assert_eq!(records[0].threads, records[1].threads);
    let _ = std::fs::remove_dir_all(&dir);
}

fn history_rec(pct: f64) -> HistoryRecord {
    HistoryRecord {
        schema: HISTORY_SCHEMA,
        label: "test".into(),
        git_rev: "deadbee".into(),
        threads: 4,
        backend: "blocked".into(),
        ops: vec![OpUtil {
            name: "gemm/test".into(),
            pct_of_peak: pct,
            gflops: pct,
            bound: "compute".into(),
        }],
    }
}

fn scope_report_history(path: &Path, extra: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_scope_report"))
        .args(["--history", &path.display().to_string()])
        .args(extra)
        .output()
        .expect("scope_report runs")
}

#[test]
fn history_drift_gate_exit_codes() {
    let dir = std::env::temp_dir().join("hfta-probe-drift-gate-test");
    let _ = std::fs::remove_dir_all(&dir);
    let path = dir.join("history.jsonl");
    let history = PerfHistory::new(&path);
    for pct in [60.0, 61.0, 59.5] {
        history.append(&history_rec(pct)).expect("append");
    }

    // Steady utilization: exit 0 and a trajectory table.
    let out = scope_report_history(&path, &[]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(0),
        "clean history must pass: {stdout}"
    );
    assert!(stdout.contains("gemm/test"), "no trajectory row: {stdout}");
    assert!(stdout.contains("no drift"), "no verdict line: {stdout}");

    // An injected >=10% drop vs the trailing median (60) must exit 1.
    history.append(&history_rec(50.0)).expect("append");
    let out = scope_report_history(&path, &[]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "drop must fail: {stdout}");
    assert!(stdout.contains("DRIFT"), "no drift callout: {stdout}");

    // Loosening the tolerance past the drop clears the gate.
    let out = scope_report_history(&path, &["--max-drift", "25"]);
    assert_eq!(out.status.code(), Some(0));

    // Missing file is a usage error, not a drift.
    let out = scope_report_history(&dir.join("nope.jsonl"), &[]);
    assert_eq!(out.status.code(), Some(2));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn committed_history_baseline_passes_the_gate() {
    let golden =
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../ci/golden/probe_history.jsonl");
    let out = scope_report_history(&golden, &[]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "committed baseline must stay clean: {}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn bench_kernels_emits_scaling_efficiency_and_history() {
    let dir = std::env::temp_dir().join("hfta-probe-bench-kernels-test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    let json = dir.join("BENCH_kernels.json");
    let db = dir.join("probe_db.json");
    synthetic_db(&db);
    let history_path = dir.join("history.jsonl");

    let out = Command::new(env!("CARGO_BIN_EXE_bench_kernels"))
        .args(["--quick", "--bench-json", &json.display().to_string()])
        .args(["--probe-db", &db.display().to_string()])
        .args(["--history", &history_path.display().to_string()])
        .output()
        .expect("bench_kernels runs");
    assert!(
        out.status.success(),
        "bench_kernels failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    let text = std::fs::read_to_string(&json).expect("bench json written");
    assert!(
        text.contains("\"scaling_efficiency\""),
        "scaling_efficiency missing from {text}"
    );
    let records = PerfHistory::new(&history_path)
        .load()
        .expect("history loads");
    assert_eq!(records.len(), 1);
    assert_eq!(records[0].label, "bench_kernels");
    // Every benched (op, shape, backend, threads) cell lands in the record.
    assert!(records[0].ops.len() >= 6, "ops: {:?}", records[0].ops);
    assert!(records[0].ops.iter().all(|o| o.gflops > 0.0));
    let _ = std::fs::remove_dir_all(&dir);
}
