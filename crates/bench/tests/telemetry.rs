//! Integration tests for the `--trace` telemetry pipeline: runs the real
//! binaries and validates the emitted Chrome trace (well-formed JSON,
//! monotone timestamps, balanced begin/end per lane) and the serialized
//! [`RunReport`] (round-trips losslessly, covers every experiment).

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::Command;

use hfta_telemetry::RunReport;
use serde::Value;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hfta-trace-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn num(v: &Value) -> f64 {
    match v {
        Value::U64(n) => *n as f64,
        Value::I64(n) => *n as f64,
        Value::F64(n) => *n,
        other => panic!("expected number, found {}", other.kind()),
    }
}

fn text(v: &Value) -> &str {
    match v {
        Value::Str(s) => s,
        other => panic!("expected string, found {}", other.kind()),
    }
}

/// Chrome-trace well-formedness: top-level `traceEvents` array, metadata
/// events lead, timestamps are monotone non-decreasing, and every lane's
/// begin/end events balance with matching names (proper nesting).
fn validate_trace(path: &Path) -> usize {
    let raw = std::fs::read_to_string(path).expect("read trace");
    let parsed: Value = serde_json::from_str(&raw).expect("trace is valid JSON");
    let Some(Value::Array(events)) = parsed.get("traceEvents") else {
        panic!("trace must have a traceEvents array");
    };
    let mut stacks: HashMap<(u64, u64), Vec<String>> = HashMap::new();
    let mut last_ts = f64::NEG_INFINITY;
    let mut seen_non_meta = false;
    for e in events {
        let ph = text(e.get("ph").expect("ph"));
        if ph == "M" {
            assert!(!seen_non_meta, "metadata events must precede span events");
            continue;
        }
        seen_non_meta = true;
        let ts = num(e.get("ts").expect("ts"));
        assert!(
            ts >= last_ts,
            "timestamps must be monotone: {ts} after {last_ts}"
        );
        last_ts = ts;
        let lane = (
            num(e.get("pid").expect("pid")) as u64,
            num(e.get("tid").expect("tid")) as u64,
        );
        let name = text(e.get("name").expect("name")).to_string();
        match ph {
            "B" => stacks.entry(lane).or_default().push(name),
            "E" => {
                let open = stacks
                    .get_mut(&lane)
                    .and_then(Vec::pop)
                    .unwrap_or_else(|| panic!("end without begin on lane {lane:?}"));
                assert_eq!(open, name, "mismatched begin/end nesting on {lane:?}");
            }
            "C" => {
                let args = e.get("args").expect("counter args");
                num(args.get("value").expect("counter value"));
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    for (lane, stack) in &stacks {
        assert!(
            stack.is_empty(),
            "unclosed spans on lane {lane:?}: {stack:?}"
        );
    }
    events.len()
}

/// RunReport JSON must deserialize and survive a serialize/deserialize
/// round trip bit-for-bit.
fn validate_report(path: &Path) -> RunReport {
    let raw = std::fs::read_to_string(path).expect("read report");
    let report: RunReport = serde_json::from_str(&raw).expect("report deserializes");
    let rendered = serde_json::to_string(&report).expect("report re-serializes");
    let again: RunReport = serde_json::from_str(&rendered).expect("round trip");
    assert_eq!(report, again, "RunReport must round-trip losslessly");
    report
}

#[test]
fn repro_all_trace_covers_every_experiment() {
    let dir = temp_dir("repro-all");
    let status = Command::new(env!("CARGO_BIN_EXE_repro_all"))
        .args(["--trace", "."])
        .current_dir(&dir)
        .output()
        .expect("spawn repro_all");
    assert!(
        status.status.success(),
        "repro_all failed:\n{}",
        String::from_utf8_lossy(&status.stderr)
    );
    assert!(dir.join("EXPERIMENTS.md").exists());

    let events = validate_trace(&dir.join("repro_all.trace.json"));
    assert!(events > 100, "expected a dense trace, got {events} events");

    let report = validate_report(&dir.join("repro_all.report.json"));
    assert_eq!(report.name, "repro_all");
    for name in [
        "table1",
        "fig3",
        "table5_fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8_11_12",
        "table10",
    ] {
        let exp = report
            .experiment(name)
            .unwrap_or_else(|| panic!("report must cover experiment {name}"));
        assert!(exp.wall_ms >= 0.0);
    }
    // Figure 3 training runs feed per-step loss metrics.
    let fig3 = report.experiment("fig3").unwrap();
    assert!(!fig3.steps.is_empty(), "fig3 must record step metrics");
    assert!(fig3.steps.iter().any(|s| s.fused_width > 1));
    // Figures 8/11/12: the simulated DCGM counter time-series, including
    // the nvidia-smi utilization series of Figure 11.
    let fig8 = report.experiment("fig8_11_12").unwrap();
    for series in ["hfta8/smi_util", "hfta8/sm_active", "serial/smi_util"] {
        let s = fig8
            .series(series)
            .unwrap_or_else(|| panic!("missing counter series {series}"));
        assert!(!s.points.is_empty());
        assert!(s.points.windows(2).all(|w| w[0].t_us <= w[1].t_us));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fig3_without_trace_flag_writes_nothing() {
    let dir = temp_dir("fig3-plain");
    let out = Command::new(env!("CARGO_BIN_EXE_fig3"))
        .current_dir(&dir)
        .output()
        .expect("spawn fig3");
    assert!(out.status.success());
    let leftovers: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
    assert!(leftovers.is_empty(), "no flag must mean no files");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fig3_trace_records_autograd_spans() {
    let dir = temp_dir("fig3-traced");
    let out = Command::new(env!("CARGO_BIN_EXE_fig3"))
        .args([format!("--trace={}", dir.display())])
        .current_dir(&dir)
        .output()
        .expect("spawn fig3");
    assert!(
        out.status.success(),
        "fig3 failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    validate_trace(&dir.join("fig3.trace.json"));
    let raw = std::fs::read_to_string(dir.join("fig3.trace.json")).unwrap();
    for needle in ["conv2d", "bwd:conv2d", "\"flops\""] {
        assert!(raw.contains(needle), "trace must contain {needle}");
    }
    let report = validate_report(&dir.join("fig3.report.json"));
    assert!(!report.experiments[0].steps.is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}
