//! Ablation benchmarks for the design choices DESIGN.md §5 calls out:
//!
//! 1. **Mechanism ablation** — how much of HFTA's simulated speedup comes
//!    from gap amortization vs bigger-kernel occupancy (run the V100
//!    PointNet sweep with each mechanism disabled).
//! 2. **Loss scaling ablation** — gradient magnitude with and without the
//!    §3.2 xB scale.
//! 3. **End-to-end training-step timing** — real CPU time per model of a
//!    serial step vs a fused step as B grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hfta_core::format::stack_conv;
use hfta_core::loss::{fused_cross_entropy, Reduction};
use hfta_core::ops::FusedModule;
use hfta_core::optim::{FusedOptimizer, FusedSgd, PerModel};
use hfta_models::{AlexNet, AlexNetCfg, FusedAlexNet, Workload};
use hfta_nn::{Module, Optimizer, Sgd, Tape};
use hfta_sim::{DeviceSpec, GpuSim, SharingPolicy};
use hfta_tensor::{Rng, Tensor};
use std::hint::black_box;

/// Mechanism ablation: report (and time) HFTA-over-serial with each
/// simulator mechanism switched off. Printed once so `cargo bench` output
/// records the ablation table.
fn ablation_mechanisms(c: &mut Criterion) {
    let w = Workload::pointnet_cls();
    let b = 8;
    type JobPair = (hfta_sim::TrainingJob, hfta_sim::TrainingJob);
    #[allow(clippy::type_complexity)]
    let variants: [(&str, Box<dyn Fn() -> JobPair>); 3] = [
        (
            "full-model",
            Box::new(move || (w_cls().serial_job(), w_cls().fused_job(b))),
        ),
        (
            "no-gap-amortization",
            Box::new(move || {
                // Gaps removed from both: isolates pure kernel-shape gains.
                let mut s = w_cls().serial_job();
                let mut f = w_cls().fused_job(b);
                s.sync_us_per_kernel = 0.0;
                f.sync_us_per_kernel = 0.0;
                s.host_us = 0.0;
                f.host_us = 0.0;
                (s, f)
            }),
        ),
        (
            "no-kernel-growth",
            Box::new(move || {
                // Fused kernels keep per-model tile counts: isolates pure
                // gap amortization.
                let s = w_cls().serial_job();
                let mut f = w_cls().fused_job(b);
                for (kf, ks) in f.kernels.iter_mut().zip(&s.kernels) {
                    kf.tiles = ks.tiles;
                }
                (s, f)
            }),
        ),
    ];
    fn w_cls() -> Workload {
        Workload::pointnet_cls()
    }
    println!("\n## Ablation: where does HFTA's simulated speedup come from? (V100, B = {b})");
    let sim = GpuSim::new(DeviceSpec::v100(), false);
    for (name, build) in &variants {
        let (serial, fused) = build();
        let s = sim.simulate(SharingPolicy::Serial, &serial, 1);
        let h = sim.simulate(SharingPolicy::Hfta, &fused, 1);
        println!(
            "  {name:<22} HFTA/serial = {:.2}",
            h.throughput_eps / s.throughput_eps
        );
    }
    let _ = &w;
    c.bench_function("ablation_mechanisms_sweep", |bch| {
        bch.iter(|| {
            for (_, build) in &variants {
                let (serial, fused) = build();
                black_box(sim.simulate(SharingPolicy::Serial, &serial, 1));
                black_box(sim.simulate(SharingPolicy::Hfta, &fused, 1));
            }
        })
    });
}

/// Loss-scaling ablation: the unscaled fused loss shrinks every gradient
/// by 1/B (silently dividing all learning rates by B).
fn ablation_loss_scaling(c: &mut Criterion) {
    let b = 4;
    let mut rng = Rng::seed_from(0);
    let w = hfta_nn::Parameter::new(rng.randn([b, 6, 3]), "w");
    let x = rng.randn([b, 5, 6]);
    let t: Vec<usize> = (0..b * 5).map(|_| rng.below(3)).collect();
    let grad_norm = |scaled: bool| -> f32 {
        w.zero_grad();
        let tape = Tape::new();
        let logits = tape.leaf(x.clone()).bmm(&tape.param(&w));
        if scaled {
            fused_cross_entropy(&logits, &t, Reduction::Mean).backward();
        } else {
            logits.reshape(&[b * 5, 3]).cross_entropy(&t).backward();
        }
        w.grad_cloned().abs().max_value()
    };
    let with = grad_norm(true);
    let without = grad_norm(false);
    println!("\n## Ablation: fused-loss scaling (paper §3.2)");
    println!("  max |grad| with xB scale:    {with:.5}");
    println!("  max |grad| without:          {without:.5}");
    println!("  ratio (must be B = {b}):     {:.2}", with / without);
    c.bench_function("ablation_loss_scaling", |bch| {
        bch.iter(|| black_box(grad_norm(true)))
    });
}

/// Real CPU wall time per training step: serial loop over B models vs one
/// fused step, at growing array widths.
fn ablation_step_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("train_step_serial_vs_fused");
    let cfg = AlexNetCfg::mini(4);
    for b in [2usize, 4] {
        let mut rng = Rng::seed_from(5);
        let serial: Vec<AlexNet> = (0..b)
            .map(|_| {
                let m = AlexNet::new(cfg, &mut rng.split());
                m.set_training(false);
                m
            })
            .collect();
        let fused = FusedAlexNet::new(b, cfg, &mut rng);
        fused.set_training(false);
        let mut opts: Vec<Sgd> = serial
            .iter()
            .map(|m| Sgd::new(m.parameters(), 0.01, 0.9))
            .collect();
        let mut fopt =
            FusedSgd::new(fused.fused_parameters(), PerModel::uniform(b, 0.01), 0.9).unwrap();
        let x = rng.randn([4, 3, 16, 16]);
        let y: Vec<usize> = (0..4).map(|i| i % 4).collect();
        group.bench_with_input(BenchmarkId::new("serial", b), &b, |bench, _| {
            bench.iter(|| {
                for (m, opt) in serial.iter().zip(&mut opts) {
                    opt.zero_grad();
                    let tape = Tape::new();
                    let loss = m.forward(&tape.leaf(x.clone())).cross_entropy(&y);
                    loss.backward();
                    opt.step();
                }
            })
        });
        let copies: Vec<Tensor> = (0..b).map(|_| x.clone()).collect();
        let fx = stack_conv(&copies).unwrap();
        let ty: Vec<usize> = (0..b).flat_map(|_| y.iter().copied()).collect();
        group.bench_with_input(BenchmarkId::new("hfta", b), &b, |bench, _| {
            bench.iter(|| {
                fopt.zero_grad();
                let tape = Tape::new();
                let logits = fused.forward(&tape.leaf(fx.clone()));
                fused_cross_entropy(&logits, &ty, Reduction::Mean).backward();
                fopt.step();
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2));
    targets = ablation_mechanisms, ablation_loss_scaling, ablation_step_time
}
criterion_main!(benches);
