//! Criterion micro-benchmarks of *real CPU execution*: B separate
//! operators vs one horizontally fused operator. Even on CPU, fusion
//! amortizes per-operator dispatch and improves cache behaviour for
//! small per-model shapes — the same mechanism the paper exploits on
//! accelerators (at much larger scale).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hfta_tensor::conv::{conv1d, conv2d, ConvCfg};
use hfta_tensor::{Rng, Tensor};
use std::hint::black_box;

fn bench_conv2d_fusion(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv2d_serial_vs_fused");
    let mut rng = Rng::seed_from(0);
    for b in [2usize, 4, 8] {
        let cfg = ConvCfg::square(1, 1, 1);
        let xs: Vec<Tensor> = (0..b).map(|_| rng.randn([4, 4, 12, 12])).collect();
        let ws: Vec<Tensor> = (0..b).map(|_| rng.randn([8, 4, 3, 3])).collect();
        let xf = Tensor::concat(&xs.iter().collect::<Vec<_>>(), 1);
        let wf = Tensor::concat(&ws.iter().collect::<Vec<_>>(), 0);
        group.bench_with_input(BenchmarkId::new("serial", b), &b, |bench, _| {
            bench.iter(|| {
                for i in 0..b {
                    black_box(conv2d(&xs[i], &ws[i], None, cfg));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("hfta", b), &b, |bench, _| {
            bench.iter(|| black_box(conv2d(&xf, &wf, None, cfg.fused(b))))
        });
    }
    group.finish();
}

fn bench_conv1d_fusion(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv1d_pointnet_style");
    let mut rng = Rng::seed_from(1);
    for b in [2usize, 8] {
        let xs: Vec<Tensor> = (0..b).map(|_| rng.randn([4, 3, 256])).collect();
        let ws: Vec<Tensor> = (0..b).map(|_| rng.randn([16, 3, 1])).collect();
        let xf = Tensor::concat(&xs.iter().collect::<Vec<_>>(), 1);
        let wf = Tensor::concat(&ws.iter().collect::<Vec<_>>(), 0);
        group.bench_with_input(BenchmarkId::new("serial", b), &b, |bench, _| {
            bench.iter(|| {
                for i in 0..b {
                    black_box(conv1d(&xs[i], &ws[i], None, 1, 0, 1));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("hfta", b), &b, |bench, _| {
            bench.iter(|| black_box(conv1d(&xf, &wf, None, 1, 0, b)))
        });
    }
    group.finish();
}

fn bench_linear_fusion(c: &mut Criterion) {
    let mut group = c.benchmark_group("linear_vs_baddbmm");
    let mut rng = Rng::seed_from(2);
    for b in [2usize, 8] {
        let xs: Vec<Tensor> = (0..b).map(|_| rng.randn([16, 64])).collect();
        let ws: Vec<Tensor> = (0..b).map(|_| rng.randn([64, 32])).collect();
        let bias: Vec<Tensor> = (0..b).map(|_| rng.randn([1, 1, 32])).collect();
        let xf = {
            let u: Vec<Tensor> = xs.iter().map(|t| t.unsqueeze(0)).collect();
            Tensor::concat(&u.iter().collect::<Vec<_>>(), 0)
        };
        let wf = {
            let u: Vec<Tensor> = ws.iter().map(|t| t.unsqueeze(0)).collect();
            Tensor::concat(&u.iter().collect::<Vec<_>>(), 0)
        };
        let bf = Tensor::concat(&bias.iter().collect::<Vec<_>>(), 0);
        group.bench_with_input(BenchmarkId::new("serial", b), &b, |bench, _| {
            bench.iter(|| {
                for i in 0..b {
                    black_box(xs[i].matmul(&ws[i]));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("hfta", b), &b, |bench, _| {
            bench.iter(|| black_box(xf.baddbmm(&wf, &bf)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_conv2d_fusion, bench_conv1d_fusion, bench_linear_fusion
}
criterion_main!(benches);
