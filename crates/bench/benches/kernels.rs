//! Criterion micro-benchmarks of the `hfta-kernels` compute layer at the
//! paper's workload shapes: PointNet-style per-point GEMMs and DCGAN-style
//! fused grouped convolutions (forward + both backward passes), blocked
//! backend vs the retained naive reference path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hfta_kernels::{set_backend, simd_available, GemmBackend};
use hfta_tensor::conv::{conv2d, conv2d_grad_input, conv2d_grad_weight, ConvCfg};
use hfta_tensor::Rng;
use std::hint::black_box;

/// The fixed backends to sweep: the naive reference, the blocked default,
/// and — where the CPU supports it — the opt-in AVX2/FMA micro-kernel.
fn backends() -> Vec<GemmBackend> {
    let mut v = vec![GemmBackend::Naive, GemmBackend::Blocked];
    if simd_available() {
        v.push(GemmBackend::Simd);
    }
    v
}

fn bench_gemm_shapes(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_backends");
    let mut rng = Rng::seed_from(7);
    // (label, m, k, n): PointNet per-point MLP and DCGAN im2col shapes.
    let shapes = [
        ("pointnet_64x64x1024", 64usize, 64usize, 1024usize),
        ("dcgan_96x48x256", 96, 48, 256),
    ];
    for (label, m, k, n) in shapes {
        let a = rng.randn([m, k]);
        let b = rng.randn([k, n]);
        for backend in backends() {
            group.bench_with_input(
                BenchmarkId::new(backend.name(), label),
                &label,
                |bench, _| {
                    set_backend(backend);
                    let mut out = vec![0.0f32; m * n];
                    bench.iter(|| {
                        out.fill(0.0);
                        hfta_kernels::gemm(
                            black_box(&mut out),
                            black_box(a.as_slice()),
                            black_box(b.as_slice()),
                            m,
                            k,
                            n,
                        );
                    });
                    set_backend(GemmBackend::Blocked);
                },
            );
        }
    }
    group.finish();
}

fn bench_fused_conv_training_step(c: &mut Criterion) {
    // One fused DCGAN-ish training step (forward + grad_input +
    // grad_weight) at B = 6 fused models — the end-to-end path the kernel
    // layer is meant to accelerate.
    let mut group = c.benchmark_group("fused_conv_training_step");
    let mut rng = Rng::seed_from(11);
    let b = 6usize;
    let cfg = ConvCfg::square(2, 1, 1).fused(b);
    let x = rng.randn([4, 3 * b, 32, 32]);
    let w = rng.randn([16 * b, 3, 4, 4]);
    let bias = rng.randn([16 * b]);
    let y = conv2d(&x, &w, Some(&bias), cfg);
    let gy = rng.randn(y.dims().to_vec());
    for backend in backends() {
        group.bench_with_input(BenchmarkId::new(backend.name(), b), &b, |bench, _| {
            set_backend(backend);
            bench.iter(|| {
                let y = conv2d(black_box(&x), black_box(&w), Some(&bias), cfg);
                let gx = conv2d_grad_input(&w, black_box(&gy), (32, 32), 3 * b, cfg);
                let gw = conv2d_grad_weight(&x, &gy, (4, 4), cfg);
                black_box((y, gx, gw));
            });
            set_backend(GemmBackend::Blocked);
        });
    }
    group.finish();
}

fn bench_baddbmm(c: &mut Criterion) {
    // The fused-linear path: B models as one baddbmm.
    let mut group = c.benchmark_group("baddbmm_fused_linear");
    let mut rng = Rng::seed_from(13);
    for b in [2usize, 6] {
        let x = rng.randn([b, 64, 128]);
        let w = rng.randn([b, 128, 64]);
        let bias = rng.randn([b, 1, 64]);
        group.bench_with_input(BenchmarkId::new("blocked", b), &b, |bench, _| {
            bench.iter(|| black_box(x.baddbmm(&w, &bias)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_gemm_shapes,
    bench_fused_conv_training_step,
    bench_baddbmm
);
criterion_main!(benches);
