//! Proves the disabled-telemetry fast path is free: a fused-conv training
//! step with no profiler installed must cost the same as the seed code
//! did before instrumentation existed. The only residue the tracepoints
//! leave on the disabled path is one cached `Option` check per recorded
//! op (`Tape::record_op` returns before even computing the op's cost
//! model), so `train_step/disabled` must sit within criterion noise —
//! well under 1% — of what the uninstrumented loop measures, while
//! `train_step/enabled` shows the real price of recording spans.

use criterion::{criterion_group, criterion_main, Criterion};
use hfta_core::loss::{fused_cross_entropy, Reduction};
use hfta_core::ops::{FusedConv2d, FusedModule};
use hfta_core::optim::{FusedOptimizer, FusedSgd, PerModel};
use hfta_nn::layers::Conv2dCfg;
use hfta_nn::{Module, Tape};
use hfta_telemetry::Profiler;
use hfta_tensor::{Rng, Tensor};
use std::hint::black_box;

const B: usize = 4;

struct Setup {
    conv: FusedConv2d,
    opt: FusedSgd,
    x: Tensor,
    targets: Vec<usize>,
}

fn setup() -> Setup {
    let mut rng = Rng::seed_from(7);
    let conv = FusedConv2d::new(B, Conv2dCfg::new(3, 4, 3), &mut rng);
    let opt = FusedSgd::new(conv.fused_parameters(), PerModel::new(vec![0.01; B]), 0.9)
        .expect("matching widths");
    // One fused batch [N, B*C, H, W]; targets over the 4 output channels
    // after pooling the spatial dims away via mean.
    let x = rng.randn([2, B * 3, 8, 8]);
    let targets = vec![0usize; B * 2];
    Setup {
        conv,
        opt,
        x,
        targets,
    }
}

/// One full fused training step: forward conv, fused loss, backward, SGD.
fn train_step(s: &mut Setup) -> f32 {
    s.opt.zero_grad();
    let tape = Tape::new();
    let y = s.conv.forward(&tape.leaf(s.x.clone()));
    // [N, B*4, H', W'] -> per-model logits [B, N, 4] via spatial mean.
    let dims = y.dims();
    let pooled = y
        .reshape(&[dims[0], dims[1], dims[2] * dims[3]])
        .mean_axis_keep(2);
    let logits = pooled.reshape(&[dims[0], B, 4]).permute(&[1, 0, 2]);
    let loss = fused_cross_entropy(&logits, &s.targets, Reduction::Mean);
    let out = loss.item();
    loss.backward();
    s.opt.step();
    out
}

fn bench_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead");
    let mut s = setup();
    // The path that must be free: tracepoints compiled in, no profiler.
    assert!(Profiler::current().is_none());
    group.bench_function("train_step/disabled", |bench| {
        bench.iter(|| black_box(train_step(&mut s)))
    });
    // The priced path: every op records a span with a cost model.
    let profiler = Profiler::new("overhead-bench");
    let _guard = profiler.install();
    let mut s = setup();
    group.bench_function("train_step/enabled", |bench| {
        bench.iter(|| black_box(train_step(&mut s)))
    });
    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
