//! Proves the disabled-telemetry fast path is free: a fused-conv training
//! step with no profiler installed must cost the same as the seed code
//! did before instrumentation existed. The only residue the tracepoints
//! leave on the disabled path is one cached `Option` check per recorded
//! op (`Tape::record_op` returns before even computing the op's cost
//! model), so `train_step/disabled` must sit within criterion noise —
//! well under 1% — of what the uninstrumented loop measures, while
//! `train_step/enabled` shows the real price of recording spans.

use criterion::{criterion_group, criterion_main, Criterion};
use hfta_core::loss::{fused_cross_entropy, Reduction};
use hfta_core::ops::{FusedConv2d, FusedModule};
use hfta_core::optim::{FusedOptimizer, FusedSgd, PerModel};
use hfta_core::scope::{ScopeMonitor, SentinelCfg};
use hfta_nn::layers::Conv2dCfg;
use hfta_nn::{Module, Tape};
use hfta_telemetry::{FlightKind, FlightRecorder, MetricsRegistry, Profiler, SchedStats};
use hfta_tensor::{Rng, Tensor};
use std::hint::black_box;
use std::time::Instant;

const B: usize = 4;

struct Setup {
    conv: FusedConv2d,
    opt: FusedSgd,
    x: Tensor,
    targets: Vec<usize>,
}

fn setup() -> Setup {
    let mut rng = Rng::seed_from(7);
    let conv = FusedConv2d::new(B, Conv2dCfg::new(3, 4, 3), &mut rng);
    let opt = FusedSgd::new(conv.fused_parameters(), PerModel::new(vec![0.01; B]), 0.9)
        .expect("matching widths");
    // One fused batch [N, B*C, H, W]; targets over the 4 output channels
    // after pooling the spatial dims away via mean.
    let x = rng.randn([2, B * 3, 8, 8]);
    let targets = vec![0usize; B * 2];
    Setup {
        conv,
        opt,
        x,
        targets,
    }
}

/// One full fused training step: forward conv, fused loss, backward, SGD.
fn train_step(s: &mut Setup) -> f32 {
    s.opt.zero_grad();
    let tape = Tape::new();
    let y = s.conv.forward(&tape.leaf(s.x.clone()));
    // [N, B*4, H', W'] -> per-model logits [B, N, 4] via spatial mean.
    let dims = y.dims();
    let pooled = y
        .reshape(&[dims[0], dims[1], dims[2] * dims[3]])
        .mean_axis_keep(2);
    let logits = pooled.reshape(&[dims[0], B, 4]).permute(&[1, 0, 2]);
    let loss = fused_cross_entropy(&logits, &s.targets, Reduction::Mean);
    let out = loss.item();
    loss.backward();
    s.opt.step();
    out
}

/// Mean ns per `incr` on a registry pre-seeded with `names` counters,
/// cycling through all of them.
fn registry_incr_ns(names: usize, iters: usize) -> f64 {
    let labels: Vec<String> = (0..names).map(|i| format!("counter.{i:04}")).collect();
    let mut reg = MetricsRegistry::new();
    for l in &labels {
        reg.incr(l, 1.0);
    }
    let t0 = Instant::now();
    for i in 0..iters {
        reg.incr(black_box(&labels[i % names]), 1.0);
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

fn bench_overhead(c: &mut Criterion) {
    // Small ops must never wake the worker pool: with 4 threads configured,
    // a loop of sub-threshold kernels (a 16^3 GEMM is ~8K FLOPs, under the
    // pool's minimum-work bar) has to run inline — zero dispatch delta —
    // or per-op latency would be dominated by pool handoff instead of
    // compute. The inline decision is a pure function of the work hint, so
    // this assertion is deterministic.
    {
        let prev_threads = hfta_kernels::num_threads();
        hfta_kernels::set_num_threads(4);
        let mut rng = Rng::seed_from(11);
        let a = rng.randn([16, 16]);
        let b = rng.randn([16, 16]);
        let before = hfta_kernels::pool_dispatches();
        for _ in 0..100 {
            black_box(a.matmul(&b));
            black_box(a.add(&b));
        }
        let delta = hfta_kernels::pool_dispatches() - before;
        assert_eq!(
            delta, 0,
            "sub-threshold ops dispatched to the worker pool {delta} times"
        );
        hfta_kernels::set_num_threads(prev_threads);
    }

    // Registry name lookup must be O(1): with the pre-PR linear scan,
    // 1024 live names cost ~128x what 8 names do; with the hash index the
    // ratio stays near 1. Assert a generous 8x bound so the check survives
    // machine noise while still catching any return to O(n).
    let small = registry_incr_ns(8, 200_000);
    let large = registry_incr_ns(1024, 200_000);
    assert!(
        large < small * 8.0,
        "registry incr is not O(1): {large:.1} ns at 1024 names vs {small:.1} ns at 8"
    );

    let mut group = c.benchmark_group("telemetry_overhead");
    group.bench_function("registry_incr/8names", |bench| {
        bench.iter(|| black_box(registry_incr_ns(8, 10_000)))
    });
    group.bench_function("registry_incr/1024names", |bench| {
        bench.iter(|| black_box(registry_incr_ns(1024, 10_000)))
    });
    // Scheduler counters obey the same budget: `SchedStats` caches the
    // profiler handle at construction, so the disabled path is one branch
    // on a cached `None` per event — no thread-local lookup, no lock.
    assert!(Profiler::current().is_none());
    let stats = SchedStats::new();
    assert!(!stats.enabled());
    group.bench_function("sched_stats/disabled", |bench| {
        bench.iter(|| {
            stats.arrival();
            stats.dispatch(black_box(8), black_box(6));
            stats.repack(black_box(3));
            stats.evict(black_box(false));
            stats.finish();
        })
    });
    // hfta-flight's disabled path is the same cached-`None` branch; the
    // `record_with` detail closure must never run without a profiler.
    let flight = FlightRecorder::new();
    assert!(!flight.enabled());
    group.bench_function("flight_record/disabled", |bench| {
        bench.iter(|| {
            flight.record(
                black_box(7),
                black_box(1_000),
                FlightKind::RungEnd,
                Some(0),
                Some(3),
                Some(1),
            );
            flight.record_with(
                black_box(7),
                black_box(1_000),
                FlightKind::Promote,
                None,
                None,
                None,
                || unreachable!("detail closure ran on the disabled path"),
            );
        })
    });
    let mut s = setup();
    // The path that must be free: tracepoints compiled in, no profiler.
    assert!(Profiler::current().is_none());
    group.bench_function("train_step/disabled", |bench| {
        bench.iter(|| black_box(train_step(&mut s)))
    });
    // The hfta-scope path: the full per-step monitor protocol (fused
    // gradient reduction, sentinel checks, norm/update-ratio pass) on top
    // of the plain step, still without a profiler.
    let mut s = setup();
    let params = s.conv.fused_parameters();
    let mut monitor = ScopeMonitor::new(B, SentinelCfg::default());
    let mut step = 0u64;
    group.bench_function("train_step/scoped", |bench| {
        bench.iter(|| {
            s.opt.zero_grad();
            let tape = Tape::new();
            let y = s.conv.forward(&tape.leaf(s.x.clone()));
            let dims = y.dims();
            let pooled = y
                .reshape(&[dims[0], dims[1], dims[2] * dims[3]])
                .mean_axis_keep(2);
            let logits = pooled.reshape(&[dims[0], B, 4]).permute(&[1, 0, 2]);
            let losses = hfta_core::scope::per_model_ce_losses(&logits, &s.targets);
            let loss = fused_cross_entropy(&logits, &s.targets, Reduction::Mean);
            loss.backward();
            monitor.after_backward(step, &losses, &params, &mut s.opt);
            s.opt.step();
            monitor.after_step(step, &params);
            step += 1;
            black_box(loss.item())
        })
    });
    // The priced path: every op records a span with a cost model.
    let profiler = Profiler::new("overhead-bench");
    let _guard = profiler.install();
    let mut s = setup();
    group.bench_function("train_step/enabled", |bench| {
        bench.iter(|| black_box(train_step(&mut s)))
    });
    // Same event mix as sched_stats/disabled, now priced into the registry.
    let stats = SchedStats::new();
    assert!(stats.enabled());
    group.bench_function("sched_stats/enabled", |bench| {
        bench.iter(|| {
            stats.arrival();
            stats.dispatch(black_box(8), black_box(6));
            stats.repack(black_box(3));
            stats.evict(black_box(false));
            stats.finish();
        })
    });
    // hfta-probe budget: folding an op sample is one indexed hash-map
    // update, so even at this bench's deliberately tiny shapes (every op
    // is microseconds) the per-step sample-recording bill must stay under
    // 1% of the step itself.
    let sample_iters = 200_000usize;
    let t0 = Instant::now();
    for _ in 0..sample_iters {
        profiler.record_op_sample(black_box("probe.budget"), 2.0e6, 1.0e6, 1.0e3);
    }
    let sample_ns = t0.elapsed().as_nanos() as f64 / sample_iters as f64;
    let ops_per_step = {
        let _exp = profiler.experiment("probe-count");
        black_box(train_step(&mut s));
        let report = profiler.report();
        let exp = report
            .experiments
            .iter()
            .find(|e| e.name == "probe-count")
            .expect("experiment scope recorded");
        exp.ops.iter().map(|o| o.calls).sum::<u64>()
    };
    assert!(ops_per_step > 0, "the step must record op samples");
    let step_iters = 20usize;
    let t0 = Instant::now();
    for _ in 0..step_iters {
        black_box(train_step(&mut s));
    }
    let step_ns = t0.elapsed().as_nanos() as f64 / step_iters as f64;
    let probe_pct = ops_per_step as f64 * sample_ns / step_ns * 100.0;
    assert!(
        probe_pct < 1.0,
        "probe op sampling costs {probe_pct:.3}% of a training step \
         ({ops_per_step} ops x {sample_ns:.1} ns vs {step_ns:.0} ns step)"
    );
    group.bench_function("probe_op_sample/enabled", |bench| {
        bench.iter(|| profiler.record_op_sample(black_box("probe.budget"), 2.0e6, 1.0e6, 1.0e3))
    });
    // hfta-flight budget: one lifecycle event is a bounded-ring push (the
    // ring drains its oldest half on overflow, so the amortized price
    // includes that). A scheduled trial step emits at most ~8 events
    // (submit, enqueue, dispatch, rung start/end, promote, surgery pair),
    // and that bill must stay under 1% of the fused step.
    let flight = FlightRecorder::new();
    assert!(flight.enabled());
    let flight_iters = 200_000usize;
    let t0 = Instant::now();
    for i in 0..flight_iters {
        flight.record(
            black_box(9),
            black_box(i as u64),
            FlightKind::RungEnd,
            Some(0),
            Some(3),
            Some(1),
        );
    }
    let flight_ns = t0.elapsed().as_nanos() as f64 / flight_iters as f64;
    const FLIGHT_EVENTS_PER_STEP: f64 = 8.0;
    let flight_pct = FLIGHT_EVENTS_PER_STEP * flight_ns / step_ns * 100.0;
    assert!(
        flight_pct < 1.0,
        "flight recording costs {flight_pct:.3}% of a training step \
         ({FLIGHT_EVENTS_PER_STEP} events x {flight_ns:.1} ns vs {step_ns:.0} ns step)"
    );
    group.bench_function("flight_record/enabled", |bench| {
        let mut t = 0u64;
        bench.iter(|| {
            t += 1;
            flight.record(
                black_box(9),
                t,
                FlightKind::RungEnd,
                Some(0),
                Some(3),
                Some(1),
            );
        })
    });
    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
