//! Criterion wrappers over the figure/table pipelines: `cargo bench`
//! exercises every experiment harness end-to-end and times it.

use criterion::{criterion_group, criterion_main, Criterion};
use hfta_bench::convergence::resnet_convergence;
use hfta_bench::sweep::{gpu_panel, tpu_curve};
use hfta_cluster::{classify, trace};
use hfta_models::Workload;
use hfta_sim::DeviceSpec;
use std::hint::black_box;

fn bench_fig4_panel(c: &mut Criterion) {
    c.bench_function("fig4_panel_v100_pointnet_cls", |b| {
        b.iter(|| black_box(gpu_panel(&DeviceSpec::v100(), &Workload::pointnet_cls())))
    });
    c.bench_function("fig4_panel_a100_dcgan", |b| {
        b.iter(|| black_box(gpu_panel(&DeviceSpec::a100(), &Workload::dcgan())))
    });
}

fn bench_fig5(c: &mut Criterion) {
    c.bench_function("fig5_resnet_v100", |b| {
        b.iter(|| black_box(gpu_panel(&DeviceSpec::v100(), &Workload::resnet18())))
    });
}

fn bench_fig6_tpu(c: &mut Criterion) {
    c.bench_function("fig6_tpu_sweep", |b| {
        b.iter(|| {
            for w in Workload::paper_benchmarks() {
                black_box(tpu_curve(&w));
            }
        })
    });
}

fn bench_fig3_convergence(c: &mut Criterion) {
    c.bench_function("fig3_convergence_3lrs", |b| {
        b.iter(|| black_box(resnet_convergence(&[0.1, 0.05, 0.01], 3, 42)))
    });
}

fn bench_table1_cluster(c: &mut Criterion) {
    c.bench_function("table1_trace_and_classify", |b| {
        b.iter(|| {
            let jobs = trace::generate(&trace::TraceCfg::small(), 2020);
            let cats = classify::classify(&jobs, &classify::ClassifyCfg::default());
            black_box(classify::Breakdown::from_assignments(&jobs, &cats))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(500)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_fig4_panel, bench_fig5, bench_fig6_tpu, bench_fig3_convergence, bench_table1_cluster
}
criterion_main!(benches);
