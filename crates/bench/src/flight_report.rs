//! hfta-flight reporting: rebuild causal trial timelines from the
//! `*.flight.jsonl` journals a `--trace` run leaves behind, render ASCII
//! Gantt charts, critical paths and SLO tables, summarize to a
//! machine-independent JSON, and diff two summaries with the shared
//! 0/1/2 gating convention.
//!
//! Everything here works on *simulated* integer-nanosecond timestamps, so
//! a committed golden summary gates bit-identically across machines and
//! thread counts. `flight_report` (offline report) and `hfta_top` (live
//! refresh-in-place dashboard) are both thin CLIs over this module.

use std::collections::BTreeMap;
use std::path::Path;

use hfta_telemetry::flight::{bucket_intervals, derive_all_strict, nearest_rank};
use hfta_telemetry::{FlightEvent, FlightKind, JournalLine, TrialSlo, FLEET_TRIAL};
use serde::{Deserialize, Serialize};

use crate::scope_report::DiffOutcome;

/// A loaded trace directory's journals: experiment scope → events, in
/// recorded order. Trial ids repeat across experiments (each policy replays
/// the same arrival stream), so the scope tag is the outer key.
pub type FlightJournal = BTreeMap<String, Vec<FlightEvent>>;

/// Parses JSONL journal text into lines; malformed lines are errors (a
/// journal is machine-written, so damage means a real bug).
///
/// # Errors
///
/// Returns a message naming the first unparsable line.
pub fn parse_journal(text: &str) -> Result<Vec<JournalLine>, String> {
    text.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| {
            serde_json::from_str::<JournalLine>(l).map_err(|e| format!("line {}: {e}", i + 1))
        })
        .collect()
}

/// Loads every `*.flight.jsonl` under `dir` and groups events by
/// experiment scope.
///
/// # Errors
///
/// Returns a message on I/O failure, parse failure, or when the directory
/// holds no journal files.
pub fn load_journal_dir(dir: &Path) -> Result<FlightJournal, String> {
    let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("reading {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .is_some_and(|n| n.to_string_lossy().ends_with(".flight.jsonl"))
        })
        .collect();
    files.sort();
    if files.is_empty() {
        return Err(format!("no *.flight.jsonl files in {}", dir.display()));
    }
    let mut journal = FlightJournal::new();
    for path in files {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        for line in parse_journal(&text).map_err(|e| format!("{}: {e}", path.display()))? {
            journal.entry(line.exp).or_default().push(line.event);
        }
    }
    Ok(journal)
}

/// Per-experiment SLO aggregate: deterministic, machine-independent
/// numbers only (counts and simulated-time statistics).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExpSlo {
    /// Experiment scope (policy) name.
    pub name: String,
    /// Trials with a complete causal timeline.
    pub trials: u64,
    /// Trials that completed the final rung.
    pub completed: u64,
    /// Trials evicted (early-stopped or sentinel-killed).
    pub evicted: u64,
    /// Trials with at least one sentinel fault.
    pub faulted: u64,
    /// Fleet-wide p50 queue wait, simulated µs (exact nearest-rank).
    pub queue_wait_p50_us: f64,
    /// Fleet-wide p95 queue wait, simulated µs.
    pub queue_wait_p95_us: f64,
    /// Fleet-wide p99 queue wait, simulated µs.
    pub queue_wait_p99_us: f64,
    /// Fleet-wide p50 end-to-end latency, simulated µs.
    pub e2e_p50_us: f64,
    /// Fleet-wide p95 end-to-end latency, simulated µs.
    pub e2e_p95_us: f64,
    /// Fleet-wide p99 end-to-end latency, simulated µs.
    pub e2e_p99_us: f64,
    /// Summed queue-wait time across trials, simulated µs.
    pub queue_us: f64,
    /// Summed rung-compute time, simulated µs.
    pub compute_us: f64,
    /// Summed surgery (extract→re-dispatch) time, simulated µs.
    pub surgery_us: f64,
    /// Summed quarantine (fault→evict) time, simulated µs.
    pub quarantine_us: f64,
}

/// The serializable summary `flight_report` writes and `--diff` gates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightSummary {
    /// Summary schema version.
    pub schema: u64,
    /// One aggregate per experiment scope, sorted by name.
    pub experiments: Vec<ExpSlo>,
}

/// Current [`FlightSummary::schema`].
pub const FLIGHT_SCHEMA: u64 = 1;

/// Derives per-trial SLOs for one experiment's journal, strictly: a
/// malformed timeline is an error, not a skip.
///
/// # Errors
///
/// Propagates [`derive_all_strict`] diagnostics prefixed with the scope.
pub fn experiment_slos(name: &str, events: &[FlightEvent]) -> Result<Vec<TrialSlo>, String> {
    derive_all_strict(events).map_err(|e| format!("{name}: {e}"))
}

/// Summarizes a loaded journal into the golden-gated aggregate.
///
/// # Errors
///
/// Any experiment with a malformed trial timeline fails the whole summary.
pub fn summarize(journal: &FlightJournal) -> Result<FlightSummary, String> {
    let mut experiments = Vec::new();
    for (name, events) in journal {
        let slos = experiment_slos(name, events)?;
        let us = |ns: u64| ns as f64 / 1e3;
        let queues: Vec<f64> = slos.iter().map(|s| us(s.queue_ns)).collect();
        let e2es: Vec<f64> = slos.iter().map(|s| us(s.e2e_ns())).collect();
        experiments.push(ExpSlo {
            name: name.clone(),
            trials: slos.len() as u64,
            completed: slos
                .iter()
                .filter(|s| s.outcome == FlightKind::Complete)
                .count() as u64,
            evicted: slos
                .iter()
                .filter(|s| s.outcome == FlightKind::Evict)
                .count() as u64,
            faulted: slos.iter().filter(|s| s.faulted).count() as u64,
            queue_wait_p50_us: nearest_rank(&queues, 0.50),
            queue_wait_p95_us: nearest_rank(&queues, 0.95),
            queue_wait_p99_us: nearest_rank(&queues, 0.99),
            e2e_p50_us: nearest_rank(&e2es, 0.50),
            e2e_p95_us: nearest_rank(&e2es, 0.95),
            e2e_p99_us: nearest_rank(&e2es, 0.99),
            queue_us: slos.iter().map(|s| us(s.queue_ns)).sum(),
            compute_us: slos.iter().map(|s| us(s.compute_ns)).sum(),
            surgery_us: slos.iter().map(|s| us(s.surgery_ns)).sum(),
            quarantine_us: slos.iter().map(|s| us(s.quarantine_ns)).sum(),
        });
    }
    Ok(FlightSummary {
        schema: FLIGHT_SCHEMA,
        experiments,
    })
}

/// Renders the SLO table of a summary: one row per experiment.
pub fn render_slo_table(summary: &FlightSummary) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:>6} {:>5} {:>5} {:>5} {:>11} {:>11} {:>11} {:>11}\n",
        "experiment",
        "trials",
        "done",
        "evict",
        "fault",
        "qwait p50",
        "qwait p99",
        "e2e p50",
        "e2e p99"
    ));
    for e in &summary.experiments {
        out.push_str(&format!(
            "{:<14} {:>6} {:>5} {:>5} {:>5} {:>9.1}us {:>9.1}us {:>9.1}us {:>9.1}us\n",
            e.name,
            e.trials,
            e.completed,
            e.evicted,
            e.faulted,
            e.queue_wait_p50_us,
            e.queue_wait_p99_us,
            e.e2e_p50_us,
            e.e2e_p99_us
        ));
    }
    for e in &summary.experiments {
        let total = e.queue_us + e.compute_us + e.surgery_us + e.quarantine_us;
        if total <= 0.0 {
            continue;
        }
        out.push_str(&format!(
            "{:<14} decomposition: queue {:.1}% compute {:.1}% surgery {:.1}% quarantine {:.1}%\n",
            e.name,
            100.0 * e.queue_us / total,
            100.0 * e.compute_us / total,
            100.0 * e.surgery_us / total,
            100.0 * e.quarantine_us / total,
        ));
    }
    out
}

/// Renders one experiment's per-trial ASCII Gantt over `width` columns:
/// each row is a trial, each column a time bucket, each cell the bucket
/// glyph (`.` queue, `#` compute, `s` surgery, `!` quarantine). The
/// longest-latency trial's row is marked `<- critical`, followed by its
/// critical-path chain with per-phase durations.
///
/// # Errors
///
/// Propagates malformed-timeline diagnostics.
pub fn render_gantt(name: &str, events: &[FlightEvent], width: usize) -> Result<String, String> {
    let slos = experiment_slos(name, events)?;
    let width = width.max(10);
    let mut by_trial: BTreeMap<u64, Vec<FlightEvent>> = BTreeMap::new();
    for e in events {
        if e.trial != FLEET_TRIAL {
            by_trial.entry(e.trial).or_default().push(e.clone());
        }
    }
    let t0 = slos.iter().map(|s| s.submit_ns).min().unwrap_or(0);
    let t1 = slos
        .iter()
        .map(|s| s.terminal_ns)
        .max()
        .unwrap_or(1)
        .max(t0 + 1);
    let span = (t1 - t0) as f64;
    let critical = slos.iter().max_by_key(|s| s.e2e_ns()).map(|s| s.trial);
    let mut out = format!(
        "# {name}: {} trials over {:.1}us ({} cols, '.'=queue '#'=compute 's'=surgery '!'=quarantine)\n",
        slos.len(),
        span / 1e3,
        width
    );
    for (trial, seq) in &by_trial {
        let mut seq = seq.clone();
        seq.sort_by_key(|e| e.seq);
        let spans = bucket_intervals(&seq).map_err(|e| format!("{name}: {e}"))?;
        let mut row = vec![' '; width];
        for (from, to, bucket) in &spans {
            let a = (((from - t0) as f64 / span) * width as f64) as usize;
            let b = ((((to - t0) as f64 / span) * width as f64).ceil() as usize).min(width);
            for cell in row.iter_mut().take(b.max(a + 1).min(width)).skip(a) {
                *cell = bucket.glyph();
            }
        }
        let marker = if Some(*trial) == critical {
            "  <- critical"
        } else {
            ""
        };
        out.push_str(&format!(
            "trial {:>3} |{}|{}\n",
            trial,
            row.into_iter().collect::<String>(),
            marker
        ));
    }
    if let Some(ct) = critical {
        if let Some(seq) = by_trial.get(&ct) {
            let mut seq = seq.clone();
            seq.sort_by_key(|e| e.seq);
            let spans = bucket_intervals(&seq).map_err(|e| format!("{name}: {e}"))?;
            let e2e: u64 = spans.iter().map(|(a, b, _)| b - a).sum();
            let chain: Vec<String> = spans
                .iter()
                .map(|(a, b, k)| format!("{} {:.1}us", k.label(), (b - a) as f64 / 1e3))
                .collect();
            out.push_str(&format!(
                "critical path (trial {ct}, e2e {:.1}us): {}\n",
                e2e as f64 / 1e3,
                chain.join(" -> ")
            ));
            if let Some((from, to, k)) = spans.iter().max_by_key(|(a, b, _)| b - a) {
                out.push_str(&format!(
                    "  dominant: {} [{:.1}us .. {:.1}us] ({:.1}% of e2e)\n",
                    k.label(),
                    (*from - t0) as f64 / 1e3,
                    (*to - t0) as f64 / 1e3,
                    100.0 * (to - from) as f64 / e2e.max(1) as f64
                ));
            }
        }
    }
    Ok(out)
}

/// Diffs two summaries with the shared gating convention: structural
/// fields (experiment set, trial/terminal/fault counts) must match
/// exactly; latency statistics regress when the candidate exceeds the
/// base by more than `max_regress_pct` percent. Improvements and in-budget
/// changes are informational lines.
pub fn diff_flight(
    base: &FlightSummary,
    cand: &FlightSummary,
    max_regress_pct: f64,
) -> DiffOutcome {
    let mut out = DiffOutcome::default();
    if base.schema != cand.schema {
        out.regressions
            .push(format!("schema {} != {}", base.schema, cand.schema));
        return out;
    }
    let base_by: BTreeMap<&str, &ExpSlo> = base
        .experiments
        .iter()
        .map(|e| (e.name.as_str(), e))
        .collect();
    let cand_by: BTreeMap<&str, &ExpSlo> = cand
        .experiments
        .iter()
        .map(|e| (e.name.as_str(), e))
        .collect();
    for name in base_by.keys() {
        if !cand_by.contains_key(name) {
            out.regressions
                .push(format!("{name}: experiment missing from candidate"));
        }
    }
    for name in cand_by.keys() {
        if !base_by.contains_key(name) {
            out.lines
                .push(format!("{name}: new experiment (not gated)"));
        }
    }
    for (name, b) in &base_by {
        let Some(c) = cand_by.get(name) else { continue };
        for (what, bv, cv) in [
            ("trials", b.trials, c.trials),
            ("completed", b.completed, c.completed),
            ("evicted", b.evicted, c.evicted),
            ("faulted", b.faulted, c.faulted),
        ] {
            if bv == cv {
                out.lines.push(format!("{name}: {what} {bv}"));
            } else {
                out.regressions
                    .push(format!("{name}: {what} changed {bv} -> {cv}"));
            }
        }
        for (what, bv, cv) in [
            (
                "queue_wait_p50_us",
                b.queue_wait_p50_us,
                c.queue_wait_p50_us,
            ),
            (
                "queue_wait_p99_us",
                b.queue_wait_p99_us,
                c.queue_wait_p99_us,
            ),
            ("e2e_p50_us", b.e2e_p50_us, c.e2e_p50_us),
            ("e2e_p99_us", b.e2e_p99_us, c.e2e_p99_us),
            ("queue_us", b.queue_us, c.queue_us),
            ("compute_us", b.compute_us, c.compute_us),
            ("surgery_us", b.surgery_us, c.surgery_us),
            ("quarantine_us", b.quarantine_us, c.quarantine_us),
        ] {
            let budget = bv.abs() * max_regress_pct / 100.0;
            if cv > bv + budget {
                out.regressions.push(format!(
                    "{name}: {what} {bv:.1} -> {cv:.1} (+{:.1}%, budget {max_regress_pct}%)",
                    if bv.abs() > 0.0 {
                        100.0 * (cv - bv) / bv.abs()
                    } else {
                        f64::INFINITY
                    }
                ));
            } else {
                out.lines.push(format!("{name}: {what} {bv:.1} -> {cv:.1}"));
            }
        }
    }
    out
}

/// One device's state at a dashboard instant, parsed from the fleet's
/// bind/release events.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceNow {
    /// Device id.
    pub device: u64,
    /// Busy right now?
    pub busy: bool,
    /// Array currently bound (when busy).
    pub array: Option<u64>,
    /// `width N live M` detail of the active binding.
    pub detail: String,
}

/// A snapshot of one experiment's journal at simulated instant `now_ns` —
/// the data behind one `hfta_top` frame.
#[derive(Debug, Clone, Default)]
pub struct FleetSnapshot {
    /// Simulated instant.
    pub now_ns: u64,
    /// Per-device states, sorted by id.
    pub devices: Vec<DeviceNow>,
    /// Trials submitted/queued but not yet dispatched.
    pub queue_depth: usize,
    /// Trials currently running a rung segment.
    pub running: usize,
    /// Trials in the repack buffer.
    pub buffered: usize,
    /// Trials terminal by now.
    pub done: usize,
    /// Worst end-to-end latencies among terminal trials, µs, descending
    /// `(trial, e2e_us)` — the "worst-p99 offenders" panel.
    pub worst_e2e_us: Vec<(u64, f64)>,
}

/// Replays `events` up to `now_ns` and snapshots fleet + trial state.
pub fn snapshot_at(events: &[FlightEvent], now_ns: u64) -> FleetSnapshot {
    let mut devices: BTreeMap<u64, DeviceNow> = BTreeMap::new();
    let mut last_kind: BTreeMap<u64, FlightKind> = BTreeMap::new();
    let mut submit_ns: BTreeMap<u64, u64> = BTreeMap::new();
    let mut worst: Vec<(u64, f64)> = Vec::new();
    for e in events {
        if e.t_ns > now_ns {
            // Journals interleave trials but each trial's own sequence is
            // time-ordered; a linear scan with a time filter is exact.
            continue;
        }
        if e.trial == FLEET_TRIAL {
            let Some(device) = e.device else { continue };
            let slot = devices.entry(device).or_insert(DeviceNow {
                device,
                busy: false,
                array: None,
                detail: String::new(),
            });
            match e.kind {
                FlightKind::DeviceBind => {
                    slot.busy = true;
                    slot.array = e.array;
                    slot.detail = e.detail.clone();
                }
                FlightKind::DeviceRelease => {
                    slot.busy = false;
                    slot.array = None;
                    slot.detail.clear();
                }
                _ => {}
            }
            continue;
        }
        if e.kind == FlightKind::Submit {
            submit_ns.insert(e.trial, e.t_ns);
        }
        if e.kind.is_terminal() {
            let e2e = e.t_ns - submit_ns.get(&e.trial).copied().unwrap_or(e.t_ns);
            worst.push((e.trial, e2e as f64 / 1e3));
        }
        last_kind.insert(e.trial, e.kind);
    }
    let mut snap = FleetSnapshot {
        now_ns,
        devices: devices.into_values().collect(),
        ..FleetSnapshot::default()
    };
    for kind in last_kind.values() {
        use FlightKind as K;
        match kind {
            K::Submit | K::Enqueue | K::Restore => snap.queue_depth += 1,
            K::Dispatch | K::RungStart | K::RungEnd | K::Promote | K::Fault | K::Preempt => {
                snap.running += 1
            }
            K::Extract | K::Splice | K::Checkpoint => snap.buffered += 1,
            K::Evict | K::Complete => snap.done += 1,
            K::DeviceBind | K::DeviceRelease => {}
        }
    }
    worst.sort_by(|a, b| b.1.total_cmp(&a.1));
    worst.truncate(5);
    snap.worst_e2e_us = worst;
    snap
}

/// Renders one `hfta_top` frame for `exp` at `now_ns`.
pub fn render_frame(exp: &str, events: &[FlightEvent], now_ns: u64) -> String {
    let snap = snapshot_at(events, now_ns);
    let busy = snap.devices.iter().filter(|d| d.busy).count();
    let mut out = format!(
        "hfta_top | exp {exp} | t = {:>10.1}us | occupancy {}/{} devices\n",
        now_ns as f64 / 1e3,
        busy,
        snap.devices.len().max(1)
    );
    out.push_str(&format!(
        "trials: {} queued  {} running  {} buffered  {} done\n",
        snap.queue_depth, snap.running, snap.buffered, snap.done
    ));
    for d in &snap.devices {
        if d.busy {
            let array = d
                .array
                .map(|a| format!("array {a}"))
                .unwrap_or_else(|| "array ?".to_string());
            out.push_str(&format!(
                "  dev{} [####] {} {}\n",
                d.device, array, d.detail
            ));
        } else {
            out.push_str(&format!("  dev{} [    ] idle\n", d.device));
        }
    }
    if snap.worst_e2e_us.is_empty() {
        out.push_str("worst e2e: (no terminal trials yet)\n");
    } else {
        let rows: Vec<String> = snap
            .worst_e2e_us
            .iter()
            .map(|(t, us)| format!("trial {t} {us:.1}us"))
            .collect();
        out.push_str(&format!("worst e2e: {}\n", rows.join("  ")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(trial: u64, seq: u64, t_ns: u64, kind: FlightKind) -> FlightEvent {
        FlightEvent {
            trial,
            seq,
            t_ns,
            kind,
            device: None,
            array: None,
            lane: None,
            detail: String::new(),
        }
    }

    fn journal_one_exp() -> FlightJournal {
        use FlightKind as K;
        let events = vec![
            // Trial 0: 100ns queue, 200ns compute.
            ev(0, 0, 0, K::Submit),
            ev(0, 1, 0, K::Enqueue),
            ev(0, 2, 100, K::Dispatch),
            ev(0, 3, 100, K::RungStart),
            ev(0, 4, 300, K::RungEnd),
            ev(0, 5, 300, K::Complete),
            // Trial 1: 50ns queue, 100ns compute, faulted + quarantined 50ns.
            ev(1, 0, 0, K::Submit),
            ev(1, 1, 0, K::Enqueue),
            ev(1, 2, 50, K::Dispatch),
            ev(1, 3, 50, K::RungStart),
            ev(1, 4, 150, K::Fault),
            ev(1, 5, 200, K::Evict),
        ];
        let mut j = FlightJournal::new();
        j.insert("elastic".into(), events);
        j
    }

    #[test]
    fn summarize_counts_and_decomposes() {
        let s = summarize(&journal_one_exp()).expect("well-formed");
        assert_eq!(s.schema, FLIGHT_SCHEMA);
        assert_eq!(s.experiments.len(), 1);
        let e = &s.experiments[0];
        assert_eq!(e.name, "elastic");
        assert_eq!((e.trials, e.completed, e.evicted, e.faulted), (2, 1, 1, 1));
        assert!((e.queue_us - 0.15).abs() < 1e-12);
        assert!((e.compute_us - 0.3).abs() < 1e-12);
        assert!((e.quarantine_us - 0.05).abs() < 1e-12);
        assert!((e.e2e_p99_us - 0.3).abs() < 1e-12);
        // The experiment-level decomposition balances too.
        let total = e.queue_us + e.compute_us + e.surgery_us + e.quarantine_us;
        assert!((total - (0.3 + 0.2)).abs() < 1e-12);
    }

    #[test]
    fn summary_round_trips_through_json() {
        let s = summarize(&journal_one_exp()).unwrap();
        let json = serde_json::to_string(&s).unwrap();
        let back: FlightSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn malformed_journal_fails_summarize() {
        let mut j = journal_one_exp();
        j.get_mut("elastic").unwrap().pop(); // drop trial 1's terminal
        assert!(summarize(&j).is_err());
    }

    #[test]
    fn gantt_marks_the_critical_trial() {
        let j = journal_one_exp();
        let g = render_gantt("elastic", &j["elastic"], 24).expect("render");
        assert!(g.contains("trial   0"), "{g}");
        assert!(g.contains("<- critical"), "{g}");
        // Trial 0 has the larger e2e (300 vs 200).
        assert!(g.contains("critical path (trial 0"), "{g}");
        assert!(g.contains("queue 0.1us -> compute 0.2us"), "{g}");
        assert!(g.contains('#'), "compute glyph missing: {g}");
    }

    #[test]
    fn diff_gates_counts_exactly_and_latency_by_budget() {
        let base = summarize(&journal_one_exp()).unwrap();
        // Identical candidate: clean.
        assert!(!diff_flight(&base, &base, 5.0).regressed());
        // Latency blowup beyond budget: regression.
        let mut slow = base.clone();
        slow.experiments[0].e2e_p99_us *= 2.0;
        let out = diff_flight(&base, &slow, 5.0);
        assert!(out.regressed());
        assert!(out.regressions.iter().any(|r| r.contains("e2e_p99_us")));
        // Latency improvement: informational, not gated.
        let mut fast = base.clone();
        fast.experiments[0].e2e_p99_us *= 0.5;
        assert!(!diff_flight(&base, &fast, 5.0).regressed());
        // A changed trial count is always a regression.
        let mut fewer = base.clone();
        fewer.experiments[0].trials = 1;
        assert!(diff_flight(&base, &fewer, 5.0).regressed());
        // A missing experiment is a regression; a new one is not.
        let empty = FlightSummary {
            schema: FLIGHT_SCHEMA,
            experiments: vec![],
        };
        assert!(diff_flight(&base, &empty, 5.0).regressed());
        assert!(!diff_flight(&empty, &base, 5.0).regressed());
    }

    #[test]
    fn journal_round_trips_through_jsonl_files() {
        let dir = std::env::temp_dir().join(format!("hfta_flight_report_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let j = journal_one_exp();
        let mut text = String::new();
        for (exp, events) in &j {
            for e in events {
                let line = JournalLine {
                    exp: exp.clone(),
                    event: e.clone(),
                };
                text.push_str(&serde_json::to_string(&line).unwrap());
                text.push('\n');
            }
        }
        std::fs::write(dir.join("sweep.flight.jsonl"), &text).unwrap();
        let loaded = load_journal_dir(&dir).expect("load");
        assert_eq!(loaded, j);
        assert!(load_journal_dir(&dir.join("missing")).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_tracks_queue_running_and_devices() {
        use FlightKind as K;
        let mut events = journal_one_exp()["elastic"].clone();
        let bind = FlightEvent {
            trial: FLEET_TRIAL,
            seq: 0,
            t_ns: 100,
            kind: K::DeviceBind,
            device: Some(0),
            array: Some(3),
            lane: None,
            detail: "width 2 live 2".into(),
        };
        let mut release = bind.clone();
        release.seq = 1;
        release.t_ns = 300;
        release.kind = K::DeviceRelease;
        events.push(bind);
        events.push(release);

        // t=60: trial 0 still queued, trial 1 dispatched, device idle.
        let s = snapshot_at(&events, 60);
        assert_eq!((s.queue_depth, s.running, s.done), (1, 1, 0));
        assert!(s.devices.is_empty());
        // t=150: both running, device 0 bound to array 3.
        let s = snapshot_at(&events, 150);
        assert_eq!((s.queue_depth, s.running, s.done), (0, 2, 0));
        assert_eq!(s.devices.len(), 1);
        assert!(s.devices[0].busy);
        assert_eq!(s.devices[0].array, Some(3));
        // t=400: everything terminal, device released, worst e2e is trial 0.
        let s = snapshot_at(&events, 400);
        assert_eq!((s.queue_depth, s.running, s.done), (0, 0, 2));
        assert!(!s.devices[0].busy);
        assert_eq!(s.worst_e2e_us.first().map(|w| w.0), Some(0));
        let frame = render_frame("elastic", &events, 400);
        assert!(frame.contains("2 done"), "{frame}");
        assert!(frame.contains("idle"), "{frame}");
    }
}
