//! # hfta-bench
//!
//! Harnesses that regenerate every table and figure of the HFTA paper's
//! evaluation. Each `src/bin/` binary prints one artifact
//! (`cargo run -p hfta-bench --bin fig4`); `repro_all` runs everything and
//! emits the EXPERIMENTS.md paper-vs-measured report. The `benches/`
//! directory holds criterion micro-benchmarks of the *real* CPU execution
//! of fused vs serial operators.
//!
//! Every binary accepts `--trace <dir>` (see [`telemetry_cli`]) and then
//! writes a Perfetto-loadable Chrome trace plus a serialized
//! [`RunReport`](hfta_telemetry::RunReport) alongside its printed output.

pub mod cli;
pub mod convergence;
pub mod flight_report;
pub mod mem;
pub mod probe_report;
pub mod scope_report;
pub mod sweep;
pub mod telemetry_cli;
