//! # hfta-bench
//!
//! Harnesses that regenerate every table and figure of the HFTA paper's
//! evaluation. Each `src/bin/` binary prints one artifact
//! (`cargo run -p hfta-bench --bin fig4`); `repro_all` runs everything and
//! emits the EXPERIMENTS.md paper-vs-measured report. The `benches/`
//! directory holds criterion micro-benchmarks of the *real* CPU execution
//! of fused vs serial operators.

pub mod convergence;
pub mod sweep;
