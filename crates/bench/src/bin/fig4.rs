//! Reproduces **Figure 4 (a–i)**: normalized training throughput as the
//! number of models sharing one GPU grows, for every workload x GPU x
//! sharing policy x precision.

use hfta_bench::sweep::{gpu_panel, policies_for};
use hfta_models::Workload;
use hfta_sim::DeviceSpec;

fn main() {
    let trace = hfta_bench::telemetry_cli::TraceSession::from_args("fig4");
    println!("# Figure 4 — normalized throughput vs models per GPU");
    for device in DeviceSpec::evaluation_gpus() {
        for workload in Workload::paper_benchmarks() {
            let panel = gpu_panel(&device, &workload);
            println!(
                "\n## {} / {} (normalized by FP32 serial = {:.0} examples/s)",
                panel.device, panel.workload, panel.serial_fp32_eps
            );
            for amp in [false, true] {
                let precision = if amp { "AMP" } else { "FP32" };
                for policy in policies_for(&device) {
                    let Some(curve) = panel.curve(policy, amp) else {
                        continue;
                    };
                    let series: Vec<String> = curve
                        .points
                        .iter()
                        .map(|p| format!("({}, {:.2})", p.models, p.normalized))
                        .collect();
                    println!("{precision:<5} {:<11} {}", policy.name(), series.join(" "));
                }
            }
        }
    }
    trace.finish_or_exit();
}
