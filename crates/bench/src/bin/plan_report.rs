//! Renders the fusion-plan block timeline from a `--trace` directory.
//!
//! ```text
//! plan_report <trace-dir>
//! ```
//!
//! `bench_plan --trace <dir>` serializes the planner's [`FusionPlan`] to
//! `<dir>/plan.json`; this binary reads it back and prints the per-lane
//! ASCII timeline (`hfta_plan::render_timeline`): fused spans as `████`,
//! serial spans as `────`, plus a block legend. CI tees the rendering
//! into the uploaded plan-trace artifact so a PR's fusion shape is
//! reviewable without re-running the bench.

use std::process::ExitCode;

use hfta_bench::cli::usage_exit;
use hfta_plan::FusionPlan;

const USAGE: &str = "plan_report <trace-dir>";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let dir = match (args.next(), args.next()) {
        (Some(d), None) => std::path::PathBuf::from(d),
        (None, _) => usage_exit(USAGE, "missing trace directory"),
        (Some(_), Some(extra)) => usage_exit(USAGE, &format!("unexpected argument: {extra}")),
    };
    let path = dir.join("plan.json");
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let plan: FusionPlan = match serde_json::from_str(&text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {} is not a fusion plan: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    print!("{}", hfta_plan::render_timeline(&plan));
    ExitCode::SUCCESS
}
