//! Roofline utilization report: where every recorded FLOP of a traced run
//! sat relative to what this machine can actually deliver.
//!
//! ```text
//! probe_report <trace-dir> [--probe-db <path>] [--history <file>]
//! ```
//!
//! Reads every `<bin>.report.json` a `--trace` run wrote into
//! `<trace-dir>`, calibrates (or loads) the machine-peak database, and
//! prints, per experiment:
//!
//! * the per-op roofline table — arithmetic intensity, attained GFLOP/s,
//!   the attainable ceiling at that intensity, % of peak, and whether the
//!   op is compute- or bandwidth-bound;
//! * the per-lane attribution table (the fused array's B models);
//! * the Fig-8-style per-device utilization timeline rendered from the
//!   `sched/<device>/util` / `smi_util` counter series.
//!
//! With `--history <file>` each experiment's roofline summary is appended
//! to the perf-history JSONL (gate it later with `scope_report --history`).
//! The probe database defaults to `<trace-dir>/probe_db.json`; delete it
//! (or bump the version) to force re-calibration.

use std::path::PathBuf;

use hfta_bench::cli::{usage_exit, CommonArgs};
use hfta_bench::probe_report::{
    collect_run_reports, history_record, print_lanes, print_roofline, print_timelines,
};
use hfta_probe::{MachinePeaks, PerfHistory};

const USAGE: &str = "probe_report <trace-dir> [--probe-db <path>] [--history <file>]";
const TIMELINE_COLS: usize = 64;

fn main() {
    let args = CommonArgs::parse(USAGE);
    let dir: PathBuf = match (args.rest.as_slice(), &args.trace) {
        ([d], None) if !d.starts_with('-') => PathBuf::from(d),
        ([], Some(t)) => t.clone(),
        ([], None) => usage_exit(USAGE, "expected a trace directory"),
        (rest, _) => usage_exit(USAGE, &format!("unexpected argument: {}", rest[0])),
    };

    let reports = match collect_run_reports(&dir) {
        Ok(r) => r,
        Err(e) => usage_exit(USAGE, &e),
    };
    if reports.is_empty() {
        eprintln!("error: no *.report.json files in {}", dir.display());
        std::process::exit(1);
    }

    let threads = hfta_kernels::num_threads();
    let db = args
        .probe_db
        .clone()
        .unwrap_or_else(|| dir.join("probe_db.json"));
    let peaks = MachinePeaks::load_or_calibrate(&db, &[1, threads]);
    let Some(peak) = peaks.entry_for(threads as u64) else {
        eprintln!("error: probe db {} has no entries", db.display());
        std::process::exit(1);
    };
    let history = args.history.as_ref().map(PerfHistory::new);
    let backend = format!("{:?}", hfta_kernels::backend()).to_lowercase();

    let mut classified = 0usize;
    for (path, run) in &reports {
        println!("\n# {} ({})", run.name, path.display());
        for exp in &run.experiments {
            println!("\n## {} ({:.2} ms)", exp.name, exp.wall_ms);
            if print_roofline(exp, peak) {
                classified += 1;
                print_lanes(exp);
            } else {
                println!("  (no op samples recorded)");
            }
            print_timelines(exp, TIMELINE_COLS);
            if let Some(h) = &history {
                let label = format!("{}/{}", run.name, exp.name);
                let rec = history_record(&label, exp, peak, threads as u64, &backend);
                if !rec.ops.is_empty() {
                    if let Err(e) = h.append(&rec) {
                        eprintln!("error: appending {}: {e}", h.path().display());
                        std::process::exit(1);
                    }
                }
            }
        }
    }
    if classified == 0 {
        eprintln!(
            "note: no experiment in {} carried op samples (re-trace with this build?)",
            dir.display()
        );
    }
}
