//! Reproduces **Figure 12**: V100 hardware counters for PointNet-cls
//! (serial utilization is higher on V100 than on A100 — newer GPUs suffer
//! more from under-utilization).

use hfta_bench::sweep::{gpu_panel, policies_for};
use hfta_models::Workload;
use hfta_sim::DeviceSpec;

fn main() {
    let trace = hfta_bench::telemetry_cli::TraceSession::from_args("fig12");
    println!("# Figure 12 — V100 counters vs models (PointNet-cls, AMP)");
    let w = Workload::pointnet_cls();
    let v100 = gpu_panel(&DeviceSpec::v100(), &w);
    for (title, pick) in [
        ("sm_active", 0usize),
        ("sm_occupancy", 1),
        ("tensor_active", 2),
    ] {
        println!("\n## {title}");
        for policy in policies_for(&DeviceSpec::v100()) {
            let Some(curve) = v100.curve(policy, true) else {
                continue;
            };
            let series: Vec<String> = curve
                .points
                .iter()
                .map(|p| {
                    let c = &p.result.counters;
                    let v = match pick {
                        0 => c.sm_active,
                        1 => c.sm_occupancy,
                        _ => c.tensor_active,
                    };
                    format!("({}, {:.2})", p.models, v)
                })
                .collect();
            println!("{:<11} {}", policy.name(), series.join(" "));
        }
    }
    // The cross-generation observation.
    let a100 = gpu_panel(&DeviceSpec::a100(), &w);
    let v_serial = v100
        .curve(hfta_sim::SharingPolicy::Serial, true)
        .unwrap()
        .points[0]
        .result
        .counters
        .sm_active;
    let a_serial = a100
        .curve(hfta_sim::SharingPolicy::Serial, true)
        .unwrap()
        .points[0]
        .result
        .counters
        .sm_active;
    println!("\nserial sm_active: V100 {v_serial:.2} vs A100 {a_serial:.2} (paper: lower on A100)");
    trace.finish_or_exit();
}
