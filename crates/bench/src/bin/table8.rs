//! Reproduces **Table 8**: peak HFTA speedups split by precision.

use hfta_bench::sweep::{gpu_panel, print_table};
use hfta_models::Workload;
use hfta_sim::{DeviceSpec, SharingPolicy};

fn main() {
    let trace = hfta_bench::telemetry_cli::TraceSession::from_args("table8");
    println!("# Table 8 — peak HFTA speedups, FP32 vs AMP");
    let mut rows = Vec::new();
    for device in DeviceSpec::evaluation_gpus() {
        let panels: Vec<_> = Workload::paper_benchmarks()
            .iter()
            .map(|w| gpu_panel(&device, w))
            .collect();
        for amp in [false, true] {
            let mut baselines = vec![
                SharingPolicy::Serial,
                SharingPolicy::Concurrent,
                SharingPolicy::Mps,
            ];
            if device.supports_mig() {
                baselines.push(SharingPolicy::Mig);
            }
            for base in baselines {
                let mut row = vec![
                    device.name.clone(),
                    if amp { "AMP" } else { "FP32" }.to_string(),
                    base.name().to_string(),
                ];
                for p in &panels {
                    row.push(format!("{:.2}", p.peak_speedup_at(base, amp)));
                }
                rows.push(row);
            }
        }
    }
    print_table(
        "peak speedups by precision",
        &[
            "GPU",
            "precision",
            "baseline",
            "PointNet-cls",
            "PointNet-seg",
            "DCGAN",
        ],
        &rows,
    );
    trace.finish_or_exit();
}
