//! Reproduces **Figure 8**: hardware performance counters for PointNet-cls
//! on A100 as models are added (HFTA keeps scaling; MPS/MIG plateau;
//! concurrent matches serial).

use hfta_bench::sweep::{gpu_panel, policies_for};
use hfta_models::Workload;
use hfta_sim::DeviceSpec;

fn main() {
    let trace = hfta_bench::telemetry_cli::TraceSession::from_args("fig8");
    println!("# Figure 8 — A100 counters vs models (PointNet-cls, AMP)");
    let device = DeviceSpec::a100();
    let panel = gpu_panel(&device, &Workload::pointnet_cls());
    for (title, pick) in [
        ("sm_active", 0usize),
        ("sm_occupancy", 1),
        ("tensor_active", 2),
    ] {
        println!("\n## {title}");
        for policy in policies_for(&device) {
            let Some(curve) = panel.curve(policy, true) else {
                continue;
            };
            let series: Vec<String> = curve
                .points
                .iter()
                .map(|p| {
                    let c = &p.result.counters;
                    let v = match pick {
                        0 => c.sm_active,
                        1 => c.sm_occupancy,
                        _ => c.tensor_active,
                    };
                    format!("({}, {:.2})", p.models, v)
                })
                .collect();
            println!("{:<11} {}", policy.name(), series.join(" "));
        }
    }
    trace.finish_or_exit();
}
