//! Reproduces **Table 5**: peak training-throughput speedups of HFTA over
//! each baseline (best of FP32/AMP on both sides).

use hfta_bench::sweep::{gpu_panel, print_table};
use hfta_models::Workload;
use hfta_sim::{DeviceSpec, SharingPolicy};

/// The paper's Table 5 values, row order (gpu, baseline) x (cls, seg, dcgan).
const PAPER: [(&str, &str, [f64; 3]); 10] = [
    ("V100", "serial", [5.02, 4.29, 4.59]),
    ("V100", "concurrent", [4.87, 4.24, 2.01]),
    ("V100", "MPS", [4.50, 3.03, 2.03]),
    ("RTX6000", "serial", [4.36, 3.63, 6.29]),
    ("RTX6000", "concurrent", [4.26, 3.54, 1.72]),
    ("RTX6000", "MPS", [3.79, 2.54, 1.82]),
    ("A100", "serial", [11.50, 9.48, 4.41]),
    ("A100", "concurrent", [12.98, 10.26, 1.29]),
    ("A100", "MPS", [4.72, 2.93, 1.33]),
    ("A100", "MIG", [4.88, 3.02, 1.33]),
];

fn main() {
    let trace = hfta_bench::telemetry_cli::TraceSession::from_args("table5");
    println!("# Table 5 — peak HFTA speedups over the baselines (best precision)");
    let mut rows = Vec::new();
    for device in DeviceSpec::evaluation_gpus() {
        let panels: Vec<_> = Workload::paper_benchmarks()
            .iter()
            .map(|w| gpu_panel(&device, w))
            .collect();
        let mut baselines = vec![
            SharingPolicy::Serial,
            SharingPolicy::Concurrent,
            SharingPolicy::Mps,
        ];
        if device.supports_mig() {
            baselines.push(SharingPolicy::Mig);
        }
        for base in baselines {
            let paper = PAPER
                .iter()
                .find(|(d, b, _)| *d == device.name && *b == base.name())
                .map(|(_, _, v)| *v)
                .unwrap_or([f64::NAN; 3]);
            let mut row = vec![device.name.clone(), base.name().to_string()];
            for (i, p) in panels.iter().enumerate() {
                row.push(format!(
                    "{:.2} (paper {:.2})",
                    p.peak_speedup_over(base),
                    paper[i]
                ));
            }
            rows.push(row);
        }
    }
    print_table(
        "peak speedups",
        &["GPU", "baseline", "PointNet-cls", "PointNet-seg", "DCGAN"],
        &rows,
    );
    trace.finish_or_exit();
}
