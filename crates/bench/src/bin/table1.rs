//! Reproduces **Table 1 / Figure 9**: GPU-hour usage breakdown of a
//! two-month cluster trace (paper: repetitive 46.2%, isolated 3.5%,
//! distributed 24.0%, other 26.3% over 51,338 jobs / 471,768 GPU-hours).

use hfta_bench::sweep::print_table;
use hfta_cluster::{classify, trace};

fn main() {
    let trace = hfta_bench::telemetry_cli::TraceSession::from_args("table1");
    let cfg = trace::TraceCfg::default();
    let jobs = trace::generate(&cfg, 2020);
    let cats = classify::classify(&jobs, &classify::ClassifyCfg::default());
    let b = classify::Breakdown::from_assignments(&jobs, &cats);
    println!("# Table 1 / Figure 9 — GPU-hour breakdown");
    println!(
        "\ntrace: {} jobs over {} days, {:.0} total GPU-hours (paper: 51,338 jobs, 471,768 GPU-h)",
        jobs.len(),
        cfg.days,
        b.total
    );
    let paper = [46.2, 3.5, 24.0, 26.3];
    let rows: Vec<Vec<String>> = b
        .rows()
        .iter()
        .zip(paper)
        .map(|((name, hours, pct), paper_pct)| {
            vec![
                name.to_string(),
                format!("{:.0}K", hours / 1000.0),
                format!("{pct:.1}%"),
                format!("{paper_pct:.1}%"),
            ]
        })
        .collect();
    print_table(
        "GPU hours by category",
        &["Category", "GPU hours", "measured share", "paper share"],
        &rows,
    );
    let acc = classify::accuracy(&jobs, &cats);
    println!(
        "\nclassifier accuracy vs planted ground truth: {:.1}%",
        acc * 100.0
    );
    println!("\nper-partition GPU hours (Appendix A inventory):");
    for (name, hours) in trace::partition_hours(&jobs, &cfg) {
        println!("  {name:<4} {hours:>9.0} GPU-h");
    }
    trace.finish_or_exit();
}
