//! Mixed-architecture auto-fusion bench: planner-driven partial fusion
//! vs all-serial execution of the same heterogeneous sweep.
//!
//! ```text
//! bench_plan [--steps <n>] [--quick] [--bench-json <path>] [--trace <dir>]
//! ```
//!
//! The sweep is four DCGAN-D-style classifiers sharing a stem and a
//! classifier head but differing in the middle: two lanes are the base
//! architecture, one inserts one shape-preserving refinement conv, one
//! inserts two. `FusionPlan::plan` fuses the common prefix and suffix at
//! width 4 and leaves each variant's middle as a width-1 serial block —
//! the partial-fusion shape hand-fused HFTA arrays cannot express.
//!
//! Both legs train the identical sweep (same seeds, same data, same
//! hyper-parameters): the **serial** leg runs the trivial no-fusion plan
//! (`FusionPlan::serial`, one width-1 block per lane), the
//! **partial-fusion** leg runs the planner's plan. The binary gates
//!
//! * **bit-identity** — every per-step per-lane loss and every final
//!   parameter must match the serial leg bit-for-bit (the planner may
//!   never change the math, only the schedule);
//! * **partiality** — the plan must actually mix fused and serial blocks
//!   (`0 < fused_fraction < 1`);
//! * **speedup** — the planned schedule must beat the serial baseline on
//!   the paper's device model (`hfta_models::planned_step_time_s` on a
//!   V100: fused blocks pay the per-kernel dispatch gap once per fused
//!   kernel and share one host pipeline). This is the same simulated
//!   currency every other scheduling claim in the repo gates on; it is
//!   deterministic, so it gates in `--quick` CI runs too. Host wall-clock
//!   per leg is reported for reference but not gated — on a 1-core CPU
//!   backend fused and serial execution do the same arithmetic.
//!
//! `--trace` additionally writes `plan.json` (the serialized
//! [`FusionPlan`]) into the trace dir for `plan_report`, and records each
//! leg's per-lane loss streams under the `serial` / `partial-fusion`
//! experiment scopes — `scope_report --diff` gates those against
//! `ci/golden/plan.report.json`. `--bench-json` writes the per-plan
//! timing records that `scope_report --diff` gates across PRs.

use std::fs;
use std::process::ExitCode;
use std::time::Instant;

use hfta_bench::cli::{usage_exit, CommonArgs};
use hfta_core::optim::PerModel;
use hfta_core::planned::{per_lane_ce, PlannedArray, PlannedOptimizer};
use hfta_models::{planned_step_time_s, serial_step_time_s, PlanSimCfg};
use hfta_nn::layers::{Conv2dCfg, LinearCfg};
use hfta_plan::{FusionPlan, ModelGraph, OpSpec};
use hfta_sim::{DeviceSpec, GpuSim};
use hfta_tensor::{Rng, Tensor};
use serde::Serialize;

/// Input image side; two stride-2 convs take it to `SIDE / 4`.
const SIDE: usize = 16;
/// Classifier head width.
const CLASSES: usize = 4;
/// Per-lane parameter seeds (arbitrary but fixed: the bit-identity gate
/// and the committed golden both depend on them).
const SEEDS: [u64; 4] = [201, 202, 203, 204];
/// Data-stream seed.
const DATA_SEED: u64 = 7;

const USAGE: &str = "bench_plan [--steps <n>] [--quick] [--bench-json <path>] [--trace <dir>]";

struct Args {
    steps: usize,
    width: usize,
    batch: usize,
    common: CommonArgs,
}

fn parse_args() -> Args {
    let common = CommonArgs::parse(USAGE);
    let mut out = Args {
        steps: if common.quick { 3 } else { 60 },
        width: 8,
        batch: if common.quick { 2 } else { 4 },
        common,
    };
    let mut rest = out.common.rest.clone().into_iter();
    while let Some(a) = rest.next() {
        match a.as_str() {
            "--steps" => match rest.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => out.steps = v,
                _ => usage_exit(USAGE, "--steps needs a positive integer"),
            },
            other => usage_exit(USAGE, &format!("unknown argument: {other}")),
        }
    }
    out
}

/// DCGAN-D-style classifier with `refine` shape-preserving middle convs:
/// stem and head are shared across the sweep, the middle is per-variant.
fn classifier_graph(width: usize, refine: usize) -> ModelGraph {
    let mut ops = vec![
        OpSpec::conv2d(Conv2dCfg::new(3, width, 4).stride(2).padding(1).bias(false)),
        OpSpec::leaky_relu(0.2),
        OpSpec::conv2d(
            Conv2dCfg::new(width, 2 * width, 4)
                .stride(2)
                .padding(1)
                .bias(false),
        ),
        OpSpec::batch_norm(2 * width),
        OpSpec::leaky_relu(0.2),
    ];
    for _ in 0..refine {
        ops.push(OpSpec::conv2d(
            Conv2dCfg::new(2 * width, 2 * width, 3)
                .stride(1)
                .padding(1)
                .bias(false),
        ));
        ops.push(OpSpec::relu());
    }
    ops.push(OpSpec::flatten());
    let spatial = SIDE / 4;
    ops.push(OpSpec::linear(LinearCfg::new(
        2 * width * spatial * spatial,
        CLASSES,
    )));
    ModelGraph::new(format!("dcgan-d-cls+{refine}"), vec![3, SIDE, SIDE], ops)
}

/// The mixed sweep: two base lanes plus two distinct refinement variants,
/// so the plan has width-4 fused prefix/suffix and width-1 serial middles.
fn sweep(width: usize) -> Vec<ModelGraph> {
    vec![
        classifier_graph(width, 0),
        classifier_graph(width, 1),
        classifier_graph(width, 0),
        classifier_graph(width, 2),
    ]
}

fn data(lanes: usize, batch: usize) -> (Vec<Tensor>, Vec<Vec<usize>>) {
    let mut rng = Rng::seed_from(DATA_SEED);
    let inputs = (0..lanes)
        .map(|_| rng.randn([batch, 3, SIDE, SIDE]))
        .collect();
    let targets = (0..lanes)
        .map(|_| (0..batch).map(|_| rng.below(CLASSES)).collect())
        .collect();
    (inputs, targets)
}

struct Leg {
    wall_ms: f64,
    /// Per-step per-lane loss bits (the bit-identity gate's evidence).
    loss_bits: Vec<Vec<u32>>,
    /// Per-lane final parameter bits.
    param_bits: Vec<Vec<u32>>,
}

/// Trains the sweep under `plan` for `steps` timed steps (plus one
/// untimed warm-up step shared by both legs, so allocator warm-up does
/// not bias whichever leg runs first).
fn run_leg(
    scope: &str,
    graphs: &[ModelGraph],
    plan: &FusionPlan,
    steps: usize,
    batch: usize,
) -> Leg {
    let profiler = hfta_telemetry::Profiler::current();
    let _exp = profiler.as_ref().map(|p| p.experiment(scope));
    let array = PlannedArray::build(graphs, plan, &SEEDS).expect("plan executes");
    let lr = PerModel::new(vec![0.01; graphs.len()]);
    let mut opt = PlannedOptimizer::sgd(&array, &lr, 0.9).expect("optimizer");
    let (inputs, targets) = data(graphs.len(), batch);
    let mut loss_bits = Vec::with_capacity(steps + 1);
    let mut wall_ms = 0.0;
    for step in 0..steps + 1 {
        let timer = (step > 0).then(Instant::now);
        let (_tape, outs) = array.forward(&inputs).expect("forward");
        let (losses, total) = per_lane_ce(&outs, &targets);
        total.backward();
        opt.step();
        opt.zero_grad();
        if let Some(t) = timer {
            wall_ms += t.elapsed().as_secs_f64() * 1e3;
        }
        if let Some(p) = &profiler {
            for (lane, l) in losses.iter().enumerate() {
                p.scalar(lane as u64, "loss", step as u64, *l as f64);
            }
        }
        loss_bits.push(losses.iter().map(|l| l.to_bits()).collect());
    }
    let param_bits = (0..graphs.len())
        .map(|lane| {
            let state = opt.extract_lane(&array, lane);
            state
                .params
                .iter()
                .flat_map(|t| t.to_vec().into_iter().map(f32::to_bits))
                .collect()
        })
        .collect();
    Leg {
        wall_ms,
        loss_bits,
        param_bits,
    }
}

#[derive(Debug, Serialize)]
struct PlanRecord {
    plan: &'static str,
    /// Simulated V100 step time (deterministic — what `scope_report
    /// --diff` gates). Host wall-clock is printed to stdout only: it is
    /// machine- and load-dependent, and keeping it out of the file is
    /// what makes `BENCH_plan.json` byte-identical across runs and
    /// thread counts.
    sim_step_us: f64,
}

#[derive(Debug, Serialize)]
struct BenchFile {
    name: &'static str,
    device: &'static str,
    lanes: usize,
    steps: usize,
    width: usize,
    batch: usize,
    fused_fraction: f64,
    max_fused_width: usize,
    /// One record per execution plan (unique `plan` keys — these are what
    /// `scope_report --diff` gates).
    records: Vec<PlanRecord>,
    /// Simulated serial / planned step-time ratio (the headline gate).
    partial_fusion_speedup: f64,
    bit_identical: bool,
}

fn main() -> ExitCode {
    let args = parse_args();
    let session = args.common.trace_session("bench_plan");

    let graphs = sweep(args.width);
    let serial = FusionPlan::serial(&graphs).expect("sweep shape-checks");
    let fused = FusionPlan::plan(&graphs).expect("sweep plans");
    let fraction = fused.fused_fraction();
    println!("{}", hfta_plan::render_timeline(&fused));

    let serial_leg = run_leg("serial", &graphs, &serial, args.steps, args.batch);
    let fused_leg = run_leg("partial-fusion", &graphs, &fused, args.steps, args.batch);

    let bit_identical = serial_leg.loss_bits == fused_leg.loss_bits
        && serial_leg.param_bits == fused_leg.param_bits;

    // Price both schedules on the paper's device model (deterministic).
    let sim = GpuSim::new(DeviceSpec::v100(), false);
    let sim_cfg = PlanSimCfg {
        batch: args.batch,
        ..PlanSimCfg::default()
    };
    let sim_serial_us = serial_step_time_s(&sim, &graphs, &sim_cfg).expect("sweep lowers") * 1e6;
    let sim_fused_us =
        planned_step_time_s(&sim, &graphs, &fused, &sim_cfg).expect("plan lowers") * 1e6;
    let speedup = sim_serial_us / sim_fused_us;

    println!(
        "{:>16} {:>14} {:>10} {:>12}",
        "plan", "sim_step_us", "wall_ms", "steps_per_s"
    );
    let steps_per_s = |wall_ms: f64| args.steps as f64 / (wall_ms / 1e3);
    for (label, sim_us, leg) in [
        ("serial", sim_serial_us, &serial_leg),
        ("partial-fusion", sim_fused_us, &fused_leg),
    ] {
        println!(
            "{label:>16} {sim_us:>14.1} {:>10.2} {:>12.2}",
            leg.wall_ms,
            steps_per_s(leg.wall_ms)
        );
    }
    println!(
        "\npartial fusion vs serial on a simulated V100: {speedup:.2}x, \
         {:.1}% of lane-ops fused (max width {}); bit-identical: {bit_identical}",
        fraction * 100.0,
        fused.max_fused_width()
    );

    let mut failed = false;
    if !bit_identical {
        eprintln!("FAIL: partial-fusion losses/parameters differ from the serial run");
        failed = true;
    }
    if fraction <= 0.0 || fraction >= 1.0 {
        eprintln!("FAIL: plan is not partial (fused_fraction {fraction}), nothing to measure");
        failed = true;
    }
    if speedup <= 1.0 {
        eprintln!(
            "FAIL: planned schedule ({sim_fused_us:.1}us) not faster than the serial \
             baseline ({sim_serial_us:.1}us) on the device model"
        );
        failed = true;
    }

    if let Some(dir) = &args.common.trace {
        let write_plan = fs::create_dir_all(dir).and_then(|()| {
            let json = serde_json::to_string_pretty(&fused)
                .map_err(|e| std::io::Error::other(format!("serializing plan: {e}")))?;
            fs::write(dir.join("plan.json"), json)
        });
        if let Err(e) = write_plan {
            eprintln!("FAIL: cannot write plan.json: {e}");
            failed = true;
        }
    }

    if let Some(path) = &args.common.bench_json {
        let file = BenchFile {
            name: "bench_plan",
            device: "V100",
            lanes: graphs.len(),
            steps: args.steps,
            width: args.width,
            batch: args.batch,
            fused_fraction: fraction,
            max_fused_width: fused.max_fused_width(),
            records: vec![
                PlanRecord {
                    plan: "serial",
                    sim_step_us: sim_serial_us,
                },
                PlanRecord {
                    plan: "partial-fusion",
                    sim_step_us: sim_fused_us,
                },
            ],
            partial_fusion_speedup: speedup,
            bit_identical,
        };
        let json = serde_json::to_string_pretty(&file).expect("bench file serializes");
        if let Some(dir) = std::path::Path::new(path).parent() {
            if !dir.as_os_str().is_empty() {
                let _ = fs::create_dir_all(dir);
            }
        }
        if let Err(e) = fs::write(path, json) {
            eprintln!("FAIL: cannot write {path}: {e}");
            failed = true;
        } else {
            println!("wrote {path}");
        }
    }

    session.finish_or_exit();
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
