//! Reproduces **Tables 2–4**: accelerator and platform specifications.

use hfta_bench::sweep::print_table;
use hfta_sim::DeviceSpec;

fn main() {
    let trace = hfta_bench::telemetry_cli::TraceSession::from_args("specs");
    println!("# Tables 2-4 — accelerator specifications (simulator presets)");
    let tpu = DeviceSpec::tpu_v3();
    print_table(
        "Table 2 — Cloud TPU core",
        &["TPU", "MXUs", "Memory (HBM)"],
        &[vec![
            "v3 (2018)".into(),
            tpu.sm_count.to_string(),
            format!("{} GB", tpu.hbm_gib),
        ]],
    );
    let rows: Vec<Vec<String>> = DeviceSpec::evaluation_gpus()
        .iter()
        .map(|d| {
            vec![
                format!("{} ({})", d.name, d.year),
                d.sm_count.to_string(),
                format!("{} GB", d.hbm_gib),
                format!("{:.0} GB/s", d.hbm_bw_gibs),
                if d.tensor_tflops > 200.0 {
                    "TF32 & FP16".into()
                } else {
                    "FP16".to_string()
                },
            ]
        })
        .collect();
    print_table(
        "Table 3 — NVIDIA data center GPUs",
        &["GPU", "SMs", "HBM", "HBM Bandwidth", "TC Types"],
        &rows,
    );
    let rows4: Vec<Vec<String>> = DeviceSpec::evaluation_gpus()
        .iter()
        .chain(std::iter::once(&tpu))
        .map(|d| {
            vec![
                d.name.clone(),
                format!("{} GiB", d.hbm_gib),
                format!("{:.1} FP32 TFLOPS", d.fp32_tflops),
                format!("{:.1} tensor TFLOPS", d.tensor_tflops),
                format!(
                    "{:.2} GiB fw overhead (FP32)",
                    d.framework_overhead_fp32_gib
                ),
            ]
        })
        .collect();
    print_table(
        "Table 4 — experiment platforms (cost-model view)",
        &[
            "Accelerator",
            "Dev. Mem.",
            "FP32 peak",
            "Tensor peak",
            "Framework overhead",
        ],
        &rows4,
    );
    trace.finish_or_exit();
}
