//! Reproduces **Table 10**: maximum AMP-over-FP32 speedup per scheme —
//! HFTA exploits tensor cores (1.9-2.7x) while the baselines cannot
//! (~1.0x).

use hfta_bench::sweep::{gpu_panel, print_table};
use hfta_models::Workload;
use hfta_sim::{DeviceSpec, SharingPolicy};

fn main() {
    let trace = hfta_bench::telemetry_cli::TraceSession::from_args("table10");
    println!("# Table 10 — max AMP speedup over FP32");
    let mut rows = Vec::new();
    for device in DeviceSpec::evaluation_gpus() {
        let panels: Vec<_> = Workload::paper_benchmarks()
            .iter()
            .map(|w| gpu_panel(&device, w))
            .collect();
        let mut schemes = vec![
            SharingPolicy::Serial,
            SharingPolicy::Concurrent,
            SharingPolicy::Mps,
        ];
        if device.supports_mig() {
            schemes.push(SharingPolicy::Mig);
        }
        schemes.push(SharingPolicy::Hfta);
        for scheme in schemes {
            let mut row = vec![device.name.clone(), scheme.name().to_string()];
            for p in &panels {
                row.push(format!("{:.2}", p.amp_gain(scheme)));
            }
            rows.push(row);
        }
    }
    print_table(
        "AMP over FP32",
        &["GPU", "scheme", "PointNet-cls", "PointNet-seg", "DCGAN"],
        &rows,
    );
    trace.finish_or_exit();
}
