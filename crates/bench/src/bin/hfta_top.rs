//! hfta-flight live dashboard: replay a flight journal as a
//! refresh-in-place terminal view of the fleet — device occupancy, queue
//! depth, running/buffered trial counts, and the worst end-to-end
//! latencies so far.
//!
//! ```text
//! hfta_top <trace-dir> [--exp <name>] [--frames <n>] [--delay-ms <d>]
//!          [--no-clear]
//! ```
//!
//! The journal carries simulated integer-ns timestamps, so "live" means
//! replaying the recorded timeline: the simulated span is divided into
//! `--frames` instants and one frame is rendered per instant, separated by
//! `--delay-ms` of wall-clock sleep. `--exp` picks the experiment scope
//! (default: the scope with the most events); `--no-clear` appends frames
//! instead of redrawing in place (for piping to a file or CI log). Exits
//! 2 on usage or I/O errors.

use hfta_bench::cli::usage_exit;
use hfta_bench::flight_report::{load_journal_dir, render_frame};

const USAGE: &str =
    "hfta_top <trace-dir> [--exp <name>] [--frames <n>] [--delay-ms <d>] [--no-clear]";

fn fail_usage(msg: &str) -> ! {
    usage_exit(USAGE, msg);
}

/// ANSI clear-screen + cursor-home, the refresh-in-place redraw.
const CLEAR: &str = "\x1b[2J\x1b[H";

fn main() {
    let mut args = std::env::args().skip(1);
    let mut dir: Option<String> = None;
    let mut exp: Option<String> = None;
    let mut frames: u64 = 20;
    let mut delay_ms: u64 = 100;
    let mut clear = true;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--exp" => {
                exp = Some(
                    args.next()
                        .unwrap_or_else(|| fail_usage("--exp needs a name")),
                );
            }
            "--frames" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => frames = v,
                _ => fail_usage("--frames needs a positive integer"),
            },
            "--delay-ms" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => delay_ms = v,
                _ => fail_usage("--delay-ms needs a non-negative integer"),
            },
            "--no-clear" => clear = false,
            other if dir.is_none() && !other.starts_with('-') => dir = Some(other.to_string()),
            other => fail_usage(&format!("unknown argument: {other}")),
        }
    }
    let Some(dir) = dir else {
        fail_usage("expected a trace directory");
    };

    let journal = load_journal_dir(std::path::Path::new(&dir)).unwrap_or_else(|e| fail_usage(&e));
    let name = match exp {
        Some(name) => {
            if !journal.contains_key(&name) {
                let known: Vec<&str> = journal.keys().map(String::as_str).collect();
                fail_usage(&format!(
                    "unknown experiment {name:?}; journal has: {}",
                    known.join(", ")
                ));
            }
            name
        }
        None => journal
            .iter()
            .max_by_key(|(_, events)| events.len())
            .map(|(name, _)| name.clone())
            .unwrap_or_else(|| fail_usage("journal holds no experiments")),
    };
    let events = &journal[&name];
    let t_end = events.iter().map(|e| e.t_ns).max().unwrap_or(0);

    for frame in 1..=frames {
        let now_ns = t_end.saturating_mul(frame) / frames;
        if clear {
            print!("{CLEAR}");
        }
        print!("{}", render_frame(&name, events, now_ns));
        println!("frame {frame}/{frames}");
        if frame < frames && delay_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(delay_ms));
        }
    }
}
