//! Reproduces **Table 9**: maximum HFTA speedup over each baseline given
//! the *same* number of models sharing the GPU (isolates compute-
//! utilization benefits from memory-capacity benefits).

use hfta_bench::sweep::{gpu_panel, print_table};
use hfta_models::Workload;
use hfta_sim::{DeviceSpec, SharingPolicy};

fn main() {
    let trace = hfta_bench::telemetry_cli::TraceSession::from_args("table9");
    println!("# Table 9 — max HFTA speedup at equal model counts");
    let mut rows = Vec::new();
    for device in DeviceSpec::evaluation_gpus() {
        let panels: Vec<_> = Workload::paper_benchmarks()
            .iter()
            .map(|w| gpu_panel(&device, w))
            .collect();
        for amp in [false, true] {
            let mut baselines = vec![SharingPolicy::Concurrent, SharingPolicy::Mps];
            if device.supports_mig() {
                baselines.push(SharingPolicy::Mig);
            }
            for base in baselines {
                let mut row = vec![
                    device.name.clone(),
                    if amp { "AMP" } else { "FP32" }.to_string(),
                    base.name().to_string(),
                ];
                for p in &panels {
                    row.push(format!("{:.2}", p.same_count_speedup(base, amp)));
                }
                rows.push(row);
            }
        }
    }
    print_table(
        "same-model-count speedups",
        &[
            "GPU",
            "precision",
            "baseline",
            "PointNet-cls",
            "PointNet-seg",
            "DCGAN",
        ],
        &rows,
    );
    trace.finish_or_exit();
}
