//! Reproduces **Figure 11**: the nvidia-smi-defined "GPU utilization" for
//! PointNet-cls on A100 — noisy and decoupled from real utilization (a
//! weak indicator, contrary to popular belief).

use hfta_bench::sweep::{gpu_panel, policies_for};
use hfta_models::Workload;
use hfta_sim::DeviceSpec;

fn main() {
    let trace = hfta_bench::telemetry_cli::TraceSession::from_args("fig11");
    println!("# Figure 11 — nvidia-smi \"GPU utilization\" (PointNet-cls, A100, AMP)");
    let device = DeviceSpec::a100();
    let panel = gpu_panel(&device, &Workload::pointnet_cls());
    for policy in policies_for(&device) {
        let Some(curve) = panel.curve(policy, true) else {
            continue;
        };
        let series: Vec<String> = curve
            .points
            .iter()
            .map(|p| format!("({}, {:.0}%)", p.models, p.result.counters.smi_util * 100.0))
            .collect();
        println!("{:<11} {}", policy.name(), series.join(" "));
    }
    println!("\nnote: compare with fig8 — smi_util saturates and jitters while");
    println!("sm_active/tensor_active keep discriminating the schemes.");
    trace.finish_or_exit();
}
