//! Reproduces **Figure 5**: normalized ResNet-18 training throughput on
//! V100 (paper peaks: HFTA 8.16x serial, 4.21x concurrent, 4.18x MPS).

use hfta_bench::sweep::{gpu_panel, policies_for};
use hfta_models::Workload;
use hfta_sim::{DeviceSpec, SharingPolicy};

fn main() {
    let trace = hfta_bench::telemetry_cli::TraceSession::from_args("fig5");
    let device = DeviceSpec::v100();
    let panel = gpu_panel(&device, &Workload::resnet18());
    println!("# Figure 5 — ResNet-18 (CIFAR-10, batch 1000) on V100");
    println!(
        "normalization: FP32 serial = {:.0} examples/s\n",
        panel.serial_fp32_eps
    );
    for amp in [false, true] {
        for policy in policies_for(&device) {
            let Some(curve) = panel.curve(policy, amp) else {
                continue;
            };
            let series: Vec<String> = curve
                .points
                .iter()
                .map(|p| format!("({}, {:.2})", p.models, p.normalized))
                .collect();
            println!(
                "{:<5} {:<11} {}",
                if amp { "AMP" } else { "FP32" },
                policy.name(),
                series.join(" ")
            );
        }
    }
    println!("\npeak speedups (best precision):");
    for base in [
        SharingPolicy::Serial,
        SharingPolicy::Concurrent,
        SharingPolicy::Mps,
    ] {
        println!(
            "  HFTA / {:<11} = {:.2} (paper: {})",
            base.name(),
            panel.peak_speedup_over(base),
            match base {
                SharingPolicy::Serial => "8.16",
                SharingPolicy::Concurrent => "4.21",
                _ => "4.18",
            }
        );
    }
    trace.finish_or_exit();
}
