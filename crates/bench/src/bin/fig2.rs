//! Reproduces **Figure 2**: enabling HFTA on AlexNet — the model
//! definition stays the same; only the operator classes change. Shows the
//! two variants produce identical outputs for identical weights.

use hfta_core::array::copy_model_weights;
use hfta_core::format::{stack_conv, unstack_array};
use hfta_core::ops::FusedModule;
use hfta_models::{AlexNet, AlexNetCfg, FusedAlexNet};
use hfta_nn::{Module, Tape};
use hfta_tensor::Rng;

fn main() {
    let trace = hfta_bench::telemetry_cli::TraceSession::from_args("fig2");
    println!("# Figure 2 — enabling HFTA for AlexNet");
    println!("\nserial:  AlexNet::new(cfg, rng)        -> Conv2d / Linear / MaxPool2d / Dropout");
    println!("fused:   FusedAlexNet::new(B, cfg, rng) -> FusedConv2d / FusedLinear / (same pool & dropout)");
    let b = 3;
    let cfg = AlexNetCfg::mini(10);
    let mut rng = Rng::seed_from(0);
    let fused = FusedAlexNet::new(b, cfg, &mut rng);
    fused.set_training(false);
    let serial: Vec<AlexNet> = (0..b)
        .map(|_| {
            let m = AlexNet::new(cfg, &mut rng);
            m.set_training(false);
            m
        })
        .collect();
    for (i, m) in serial.iter().enumerate() {
        copy_model_weights(&fused.fused_parameters(), i, &m.parameters());
    }
    let inputs: Vec<_> = (0..b).map(|_| rng.randn([2, 3, 16, 16])).collect();
    let tape = Tape::new();
    let fused_out = fused.forward(&tape.leaf(stack_conv(&inputs).unwrap()));
    let parts = unstack_array(&fused_out.value(), b);
    let mut max_diff = 0.0f32;
    for (i, m) in serial.iter().enumerate() {
        let tape = Tape::new();
        let y = m.forward(&tape.leaf(inputs[i].clone())).value();
        max_diff = max_diff.max(parts[i].max_abs_diff(&y));
    }
    println!(
        "\nB = {b} models, identical weights: max |serial - fused| output diff = {max_diff:.2e}"
    );
    println!("(mathematical equivalence of the Figure 2 transformation)");
    trace.finish_or_exit();
}
