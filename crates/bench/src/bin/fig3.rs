//! Reproduces **Figure 3**: training-loss-per-iteration curves for three
//! learning rates, serial vs HFTA — the curves must overlap completely.

use hfta_bench::convergence::resnet_convergence;

fn main() {
    let trace = hfta_bench::telemetry_cli::TraceSession::from_args("fig3");
    let lrs = [0.1f32, 0.05, 0.01];
    let curves = resnet_convergence(&lrs, 20, 42);
    println!("# Figure 3 — serial vs HFTA loss curves (ResNet mini, synthetic CIFAR)");
    println!(
        "\niter  {}",
        lrs.iter()
            .map(|lr| format!("serial(lr={lr:<4})  hfta(lr={lr:<4})"))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for t in 0..curves.serial[0].len() {
        let mut row = format!("{t:>4}");
        for m in 0..lrs.len() {
            row += &format!(
                "  {:>14.5}  {:>12.5}",
                curves.serial[m][t], curves.fused[m][t]
            );
        }
        println!("{row}");
    }
    println!(
        "\nmax |serial - hfta| divergence: {:.2e} (paper: curves overlap completely)",
        curves.max_divergence()
    );
    trace.finish_or_exit();
}
