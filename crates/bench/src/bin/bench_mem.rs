//! Memory-footprint benchmark harness with machine-readable output.
//!
//! Reproduces the shape of the paper's Table 8/9: for each model family
//! and fused width B, the peak accounted bytes of one fused training
//! session vs the B× serial baseline, plus the steady-state allocation
//! gate (zero fresh mallocs per step after warm-up).
//!
//! Usage:
//!
//! ```text
//! bench_mem [--quick] [--bench-json <path>]   # default BENCH_mem.json
//! ```
//!
//! Exits non-zero if any fused width fails to beat the serial baseline or
//! any steady-state step allocates fresh memory — the acceptance gate for
//! the memory layer.

use hfta_bench::cli::CommonArgs;
use hfta_bench::mem;
use hfta_kernels::{set_backend, set_num_threads, GemmBackend};

const USAGE: &str = "bench_mem [--quick] [--bench-json <path>]";

fn main() {
    let args = CommonArgs::parse(USAGE);
    args.expect_no_rest(USAGE);
    let quick = args.quick;
    let json_path = args
        .bench_json
        .unwrap_or_else(|| "BENCH_mem.json".to_string());

    // Pin the configuration so footprints are comparable across runs:
    // recycling on, blocked GEMM, 4 workers (scratch arenas are
    // per-worker, so the thread count is part of the footprint).
    hfta_mem::set_pool_enabled(true);
    set_backend(GemmBackend::Blocked);
    set_num_threads(4);

    let (widths, warm, measured): (&[usize], usize, usize) = if quick {
        (&[1, 4], 2, 2)
    } else {
        (&[1, 2, 4, 6], 3, 3)
    };
    let report = mem::run(widths, warm, measured);

    println!(
        "{:<14} {:>2} {:>14} {:>14} {:>8} {:>12} {:>10}",
        "model", "B", "fused_peak_B", "serial_peak_B", "savings", "fresh_steady", "reuses"
    );
    for r in &report.records {
        println!(
            "{:<14} {:>2} {:>14} {:>14} {:>7.3}x {:>12} {:>10}",
            r.model,
            r.b,
            r.peak_bytes,
            r.serial_peak_bytes,
            r.savings_ratio,
            r.steady_fresh_allocs,
            r.steady_pool_reuses
        );
    }

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&json_path, json + "\n").expect("write bench json");
    println!("wrote {json_path}");

    let violations = mem::violations(&report);
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("GATE FAILED: {v}");
        }
        std::process::exit(1);
    }
}
