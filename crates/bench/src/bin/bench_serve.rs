//! Multi-tenant serving soak: static FCFS admission vs preemptive
//! fair-share on the same open-loop arrival stream, plus a kill-and-
//! restart leg proving crash-safe checkpoint/restore at soak scale.
//!
//! ```text
//! bench_serve [--trials <n>] [--span <s>] [--quick]
//!             [--bench-json <path>] [--trace <dir>]
//! ```
//!
//! The arrival stream comes from `hfta-cluster`: a synthetic trace is
//! generated, its sweep bursts recovered (`sweep_arrivals`), thinned and
//! rescaled onto `--span` simulated seconds by the open-loop normalizer
//! (`normalize_arrivals_open`, so the offered rate does not adapt to how
//! fast the fleet drains). Each burst becomes one tenant sweep; small
//! bursts get high priority so preemption has something to do. Every leg
//! replays the identical command stream over its own fresh heterogeneous
//! fleet (V100s, an RTX 6000, an A100).
//!
//! The binary gates the serving headline — preemptive fair-share beats
//! static admission on BOTH makespan and p99 queue wait — and the
//! crash-safety claim: a third leg is hard-killed halfway through its
//! event stream, recovered from the checkpoint journal, and must settle
//! every trial with statuses and final loss bits identical to the
//! uninterrupted fair-share leg. Everything runs in bit-exact simulated
//! time, so `--trace` reports diff clean across machines and thread
//! counts (CI keeps a golden in `ci/golden/serve.report.json`).
//! `--bench-json` writes the per-policy SLO table for
//! `scope_report --diff` gating.

use std::fs;
use std::process::ExitCode;

use hfta_bench::cli::{usage_exit, CommonArgs};
use hfta_cluster::replay::{normalize_arrivals_open, sweep_arrivals, OpenLoopCfg};
use hfta_cluster::trace::{generate, TraceCfg};
use hfta_sched::asha::RungPolicy;
use hfta_sched::linear::{LinearBackend, LinearTrialCfg};
use hfta_serve::engine::{ServeCfg, ServeCmd, ServeEngine, ServeReport, ServeRun, SweepSpec};
use hfta_serve::AdmitPolicy;
use hfta_sim::{DeviceFleet, DeviceSpec};
use hfta_telemetry::Profiler;
use serde::Serialize;

/// Burst-grouping gap when recovering sweeps from the trace, seconds.
const BURST_GAP_S: u64 = 120;
/// Minimum burst size to count as a sweep.
const MIN_TRIALS: usize = 4;
/// Fraction of bursts the open-loop normalizer keeps.
const RATE_SCALE: f64 = 0.9;
/// Seed for the open-loop thinning coin.
const OPEN_LOOP_SEED: u64 = 7;

#[derive(Debug, Serialize)]
struct BenchFile {
    name: &'static str,
    trials: usize,
    devices: usize,
    span_s: f64,
    /// One record per admission policy (unique `policy` keys — these are
    /// what `scope_report --diff` gates).
    records: Vec<ServeReport>,
    /// The kill-and-restart fair-share leg (same policy key as the
    /// uninterrupted one, so kept out of `records`).
    restart: ServeReport,
    fair_share_speedup_vs_static: f64,
    fair_share_p99_queue_wait_improvement_pct: f64,
    restart_bit_identical: bool,
}

const USAGE: &str = "bench_serve [--trials <n>] [--span <s>] [--quick] \
                     [--bench-json <path>] [--trace <dir>]";

struct Args {
    trials: usize,
    span_s: f64,
    common: CommonArgs,
}

fn parse_args() -> Args {
    let common = CommonArgs::parse(USAGE);
    let mut out = Args {
        trials: if common.quick { 64 } else { 128 },
        span_s: if common.quick { 0.025 } else { 0.05 },
        common,
    };
    let mut rest = out.common.rest.clone().into_iter();
    while let Some(a) = rest.next() {
        match a.as_str() {
            "--trials" => match rest.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => out.trials = v,
                _ => usage_exit(USAGE, "--trials needs a positive integer"),
            },
            "--span" => match rest.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 0.0 => out.span_s = v,
                _ => usage_exit(USAGE, "--span needs a non-negative number"),
            },
            other => usage_exit(USAGE, &format!("unknown argument: {other}")),
        }
    }
    out
}

/// Sub-sweep sizes carved out of each trace burst, cycled by a global
/// counter: the trace's bursts are big monolithic grids, but real tenants
/// submit a mix of short exploratory sweeps and long batch grids.
const CHUNK_SIZES: [usize; 4] = [12, 4, 16, 8];

/// The replayed command stream: each kept burst is carved into tenant
/// sub-sweeps, totalling exactly `n` trials. Small sweeps get high
/// priority (an impatient user with a short grid), big batch sweeps run
/// at low priority — the shape that makes preemptive admission matter.
/// No cancels: outcomes must be schedule-independent so the restart leg
/// can be compared bit-for-bit.
fn command_stream(n: usize, span_s: f64) -> Vec<(f64, ServeCmd<LinearTrialCfg>)> {
    let jobs = generate(&TraceCfg::small(), 42);
    let bursts = sweep_arrivals(&jobs, BURST_GAP_S, MIN_TRIALS);
    let kept = normalize_arrivals_open(
        &bursts,
        span_s,
        &OpenLoopCfg {
            rate_scale: RATE_SCALE,
            seed: OPEN_LOOP_SEED,
        },
    );
    // One chunk per strided burst, so the stream's `n` trials spread
    // across the whole normalized span instead of draining the first
    // couple of (large) bursts: the overlap between fresh arrivals and
    // promoted rungs is exactly what separates the admission policies.
    let avg_chunk = CHUNK_SIZES.iter().sum::<usize>() / CHUNK_SIZES.len();
    let stride = (kept.len() * avg_chunk * 3 / (n * 4)).max(1);
    let mut cmds = Vec::new();
    let mut total = 0usize;
    let mut chunk = 0usize;
    for (j, (bi, t)) in kept.iter().enumerate() {
        if total >= n {
            break;
        }
        if j % stride != 0 {
            continue;
        }
        let take = CHUNK_SIZES[chunk % CHUNK_SIZES.len()]
            .min(bursts[*bi].trials)
            .min(n - total);
        let spec = SweepSpec {
            tenant: format!("{}-{bi}", bursts[*bi].user),
            priority: match take {
                0..=4 => 8.0,
                5..=8 => 4.0,
                9..=12 => 2.0,
                _ => 1.0,
            },
            archs: Vec::new(),
            configs: (0..take)
                .map(|k| LinearTrialCfg {
                    // The burst's swept grid, kept in a stable range.
                    lr: 0.004 * (1 + (k % 12)) as f32,
                    poison_at: if (total + k) % 9 == 4 { Some(1) } else { None },
                })
                .collect(),
        };
        chunk += 1;
        total += take;
        cmds.push((*t, ServeCmd::Submit(spec)));
    }
    assert!(
        total == n,
        "trace yielded only {total} sweep trials (wanted {n})"
    );
    cmds
}

fn fleet() -> DeviceFleet {
    DeviceFleet::heterogeneous(
        &[
            (DeviceSpec::v100(), 2),
            (DeviceSpec::rtx6000(), 1),
            (DeviceSpec::a100(), 1),
        ],
        false,
    )
}

fn serve_cfg(policy: AdmitPolicy, dir: Option<std::path::PathBuf>) -> ServeCfg {
    ServeCfg {
        policy,
        rung: RungPolicy {
            base_steps: 2,
            eta: 2,
            rungs: 3,
        },
        width_cap: 8,
        checkpoint_dir: dir,
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    let session = args.common.trace_session("bench_serve");
    // The engine derives its SLO rollup from the ambient profiler's
    // flight journal; install one even when `--trace` is absent.
    let local_profiler = if session.is_active() {
        None
    } else {
        let p = Profiler::new("bench_serve");
        let guard = p.install();
        Some((p, guard))
    };
    let profiler = Profiler::current().expect("profiler installed");
    let commands = command_stream(args.trials, args.span_s);
    let devices = fleet().len();

    let run_leg = |scope: &str, policy: AdmitPolicy| -> (ServeRun, u64) {
        let _exp = profiler.experiment(scope);
        let mut eng = ServeEngine::new(
            LinearBackend::default(),
            fleet(),
            serve_cfg(policy, None),
            commands.clone(),
        )
        .expect("engine construction");
        eng.drain().expect("drain");
        let batches = eng.batches();
        (eng.finish(), batches)
    };

    let (stat, _) = run_leg("static", AdmitPolicy::Static);
    let (fair, fair_batches) = run_leg("fair-share", AdmitPolicy::FairShare);

    // Kill-and-restart leg: same stream, hard-killed halfway through its
    // event batches, recovered from journal + snapshots, drained.
    let ckpt_dir = std::env::temp_dir().join(format!("hfta-bench-serve-{}", std::process::id()));
    let _ = fs::remove_dir_all(&ckpt_dir);
    let restarted = {
        // The crash half gets its own scope: its event stream is a torn
        // prefix, while the recovery scope re-emits the journaled history
        // and so holds every trial's complete, well-formed timeline.
        {
            let _exp = profiler.experiment("fair-share-crash");
            let mut eng = ServeEngine::new(
                LinearBackend::default(),
                fleet(),
                serve_cfg(AdmitPolicy::FairShare, Some(ckpt_dir.clone())),
                commands.clone(),
            )
            .expect("engine construction");
            for _ in 0..fair_batches / 2 {
                if !eng.step().expect("step") {
                    break;
                }
            }
            // Hard kill: in-flight segments are dropped on the floor;
            // only the journal and snapshots survive.
        }
        let _exp = profiler.experiment("fair-share-restart");
        let mut eng = ServeEngine::recover(
            LinearBackend::default(),
            fleet(),
            serve_cfg(AdmitPolicy::FairShare, Some(ckpt_dir.clone())),
            commands.clone(),
        )
        .expect("recovery");
        eng.drain().expect("drain");
        eng.finish()
    };
    let _ = fs::remove_dir_all(&ckpt_dir);

    println!(
        "{:>20} {:>12} {:>12} {:>10} {:>8} {:>8} {:>8} {:>9} {:>9}",
        "policy",
        "makespan_ms",
        "dev_hours",
        "occupancy",
        "finished",
        "stopped",
        "killed",
        "preempts",
        "restores"
    );
    for (label, r) in [
        ("static", &stat.report),
        ("fair-share", &fair.report),
        ("fair-share-restart", &restarted.report),
    ] {
        println!(
            "{label:>20} {:>12.3} {:>12.3e} {:>10.3} {:>8} {:>8} {:>8} {:>9} {:>9}",
            r.makespan_s * 1e3,
            r.device_hours,
            r.occupancy,
            r.finished,
            r.stopped,
            r.killed,
            r.preemptions,
            r.restores
        );
    }
    println!(
        "\n{:>20} {:>11} {:>11} {:>11} {:>11}",
        "policy", "qwait_p50", "qwait_p99", "e2e_p50", "e2e_p99"
    );
    for (label, r) in [
        ("static", &stat.report),
        ("fair-share", &fair.report),
        ("fair-share-restart", &restarted.report),
    ] {
        println!(
            "{label:>20} {:>9.1}us {:>9.1}us {:>9.1}us {:>9.1}us",
            r.queue_wait_p50_us, r.queue_wait_p99_us, r.e2e_latency_p50_us, r.e2e_latency_p99_us
        );
    }

    let bit_identical = restarted.outcomes == fair.outcomes;
    println!(
        "\nfair-share vs static: makespan {:.2}x, p99 queue wait {:.1}us -> {:.1}us; \
         restart bit-identical: {bit_identical} ({} checkpoints, {} restores)",
        stat.report.makespan_s / fair.report.makespan_s,
        stat.report.queue_wait_p99_us,
        fair.report.queue_wait_p99_us,
        restarted.report.checkpoints,
        restarted.report.restores
    );

    // NaN must gate too, so "strictly below" is the pass condition.
    let below = |a: f64, b: f64| a.partial_cmp(&b) == Some(std::cmp::Ordering::Less);
    let mut failed = false;
    if !below(fair.report.makespan_s, stat.report.makespan_s) {
        eprintln!(
            "FAIL: fair-share makespan {} not below static {}",
            fair.report.makespan_s, stat.report.makespan_s
        );
        failed = true;
    }
    if !below(fair.report.queue_wait_p99_us, stat.report.queue_wait_p99_us) {
        eprintln!(
            "FAIL: fair-share p99 queue wait {} not below static {}",
            fair.report.queue_wait_p99_us, stat.report.queue_wait_p99_us
        );
        failed = true;
    }
    if fair.report.preemptions == 0 {
        eprintln!("FAIL: fair-share leg never preempted (stream too easy)");
        failed = true;
    }
    if restarted.report.restores == 0 {
        eprintln!("FAIL: restart leg restored nothing (crash site too early?)");
        failed = true;
    }
    if !bit_identical {
        eprintln!("FAIL: restarted outcomes differ from the uninterrupted run");
        failed = true;
    }

    if let Some(path) = &args.common.bench_json {
        let file = BenchFile {
            name: "bench_serve",
            trials: args.trials,
            devices,
            span_s: args.span_s,
            fair_share_speedup_vs_static: stat.report.makespan_s / fair.report.makespan_s,
            fair_share_p99_queue_wait_improvement_pct: (1.0
                - fair.report.queue_wait_p99_us / stat.report.queue_wait_p99_us)
                * 100.0,
            restart_bit_identical: bit_identical,
            records: vec![stat.report, fair.report],
            restart: restarted.report,
        };
        let json = serde_json::to_string_pretty(&file).expect("bench file serializes");
        if let Some(dir) = std::path::Path::new(path).parent() {
            if !dir.as_os_str().is_empty() {
                let _ = fs::create_dir_all(dir);
            }
        }
        if let Err(e) = fs::write(path, json) {
            eprintln!("FAIL: cannot write {path}: {e}");
            failed = true;
        } else {
            println!("wrote {path}");
        }
    }

    drop(local_profiler);
    session.finish_or_exit();
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
