//! Kernel-layer benchmark harness with machine-readable output.
//!
//! Measures the `hfta-kernels` blocked GEMM and the fused conv training
//! step (forward + grad_input + grad_weight, B = 6 fused DCGAN-style
//! models) against the pre-PR serial path (naive GEMM backend, 1 thread),
//! and writes every measurement to a JSON file.
//!
//! Usage:
//!
//! ```text
//! bench_kernels [--quick] [--bench-json <path>]   # default BENCH_kernels.json
//!               [--probe-db <path>] [--history <file>]
//!               [--gate-scaling <ratio>] [--tune-db <path>]
//! ```
//!
//! The headline `fused_conv_speedup` entry is the acceptance gate for the
//! kernel layer: blocked backend at 4 threads vs naive backend at 1 thread
//! on the same end-to-end training step. Per shape, `scaling_efficiency`
//! reports blocked-backend GFLOP/s at 4 threads over 1 thread (4.0 would
//! be perfect scaling). With `--history <file>` the run's roofline summary
//! (vs the calibrated `--probe-db` peaks) is appended to the perf-history
//! JSONL for `scope_report --history` drift gating.
//!
//! `--gate-scaling <ratio>` turns the blocked 4T/1T scaling ratio into a CI
//! gate on large shapes (exit 1 below the ratio; skipped with a note on
//! hosts with fewer than 4 CPUs). `--tune-db <path>` points the persistent
//! autotuner at a find-db and adds tuned `auto`-backend rows (with the SIMD
//! candidate opted in); SIMD rows themselves appear whenever the CPU
//! supports AVX2+FMA.

use hfta_bench::cli::CommonArgs;
use hfta_core::loss::{fused_cross_entropy, Reduction};
use hfta_core::ops::{FusedConv2d, FusedModule, FusedParameter};
use hfta_core::optim::{FusedOptimizer, FusedSgd, PerModel};
use hfta_core::scope::{per_model_ce_losses, ScopeMonitor, SentinelCfg};
use hfta_kernels::{set_auto_simd, set_backend, set_num_threads, simd_available, GemmBackend};
use hfta_nn::layers::Conv2dCfg;
use hfta_nn::{Module, Tape};
use hfta_probe::{classify, git_rev, HistoryRecord, MachinePeaks, OpUtil, PerfHistory};
use hfta_telemetry::OpAgg;
use hfta_tensor::conv::{conv2d, conv2d_grad_input, conv2d_grad_weight, ConvCfg};
use hfta_tensor::{Rng, Tensor};
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

#[derive(Serialize)]
struct BenchRecord {
    op: String,
    shape: String,
    backend: String,
    threads: u64,
    ns_per_iter: f64,
    gflops: f64,
    /// Bytes moved per iteration (operand reads + result writes) — what
    /// roofline classification needs alongside the FLOPs.
    bytes_per_iter: f64,
}

/// Thread-scaling quality of the blocked backend on one shape.
#[derive(Serialize)]
struct ScalingRecord {
    op: String,
    shape: String,
    /// Blocked-backend GFLOP/s at 4 threads over 1 thread; 4.0 would be
    /// perfect scaling, below 1.0 means threading actively hurts.
    scaling_efficiency: f64,
}

#[derive(Serialize)]
struct BenchReport {
    /// CPUs the host exposes — scaling numbers above 1T are only
    /// meaningful when this is at least the thread count measured.
    host_cpus: u64,
    /// Whether the AVX2/FMA micro-kernel was available (simd rows are
    /// absent when false).
    simd_available: bool,
    records: Vec<BenchRecord>,
    scaling_efficiency: Vec<ScalingRecord>,
    fused_conv_speedup: f64,
    /// hfta-scope cost on a fused DCGAN-style training step, percent:
    /// per-model loss extraction + sentinel scan (`after_backward`) +
    /// norm/update-ratio pass (`after_step`) relative to the bare step.
    /// The acceptance budget is < 5%.
    scope_overhead_pct: f64,
}

/// One fused DCGAN-style training step (conv forward, fused CE loss,
/// backward, SGD); with `scope` set it also runs the full hfta-scope
/// per-step protocol (per-model losses, sentinel scan, health pass).
fn dcgan_step(
    conv: &FusedConv2d,
    opt: &mut FusedSgd,
    x: &Tensor,
    targets: &[usize],
    b: usize,
    scope: Option<(&mut ScopeMonitor, &[FusedParameter], u64)>,
) -> f32 {
    opt.zero_grad();
    let tape = Tape::new();
    let y = conv.forward(&tape.leaf(x.clone()));
    let dims = y.dims();
    let pooled = y
        .reshape(&[dims[0], dims[1], dims[2] * dims[3]])
        .mean_axis_keep(2);
    let classes = dims[1] / b;
    let logits = pooled.reshape(&[dims[0], b, classes]).permute(&[1, 0, 2]);
    let loss = fused_cross_entropy(&logits, targets, Reduction::Mean);
    let out = loss.item();
    match scope {
        Some((monitor, params, step)) => {
            let losses = per_model_ce_losses(&logits, targets);
            loss.backward();
            monitor.after_backward(step, &losses, params, opt);
            opt.step();
            monitor.after_step(step, params);
        }
        None => {
            loss.backward();
            opt.step();
        }
    }
    out
}

/// Times `f` (after one warm-up call): the best (minimum) mean ns/iter over
/// three back-to-back windows of `iters` calls. Taking the fastest window
/// filters scheduler preemption and frequency dips on shared hosts — the
/// shortest observation is the closest to the kernel's true cost, which is
/// what backend-vs-backend ratios should compare.
fn time_ns(iters: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t0.elapsed().as_nanos() as f64 / iters as f64);
    }
    best
}

/// A blocked-backend 4T/1T scaling ratio only gates on shapes at least this
/// many FLOPs — small GEMMs are latency- not throughput-bound.
const LARGE_SHAPE_FLOPS: f64 = (1u64 << 23) as f64;

const USAGE: &str = "bench_kernels [--quick] [--bench-json <path>] \
                     [--probe-db <path>] [--history <file>] \
                     [--gate-scaling <ratio>] [--tune-db <path>]";

fn main() {
    let args = CommonArgs::parse(USAGE);
    args.expect_no_rest(USAGE);
    let quick = args.quick;
    let json_path = args
        .bench_json
        .clone()
        .unwrap_or_else(|| "BENCH_kernels.json".to_string());
    let iters = if quick { 1 } else { 10 };
    let prev_threads = hfta_kernels::num_threads();
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1) as u64;
    let simd = simd_available();
    if let Some(db) = &args.tune_db {
        // Tuned (`auto`) rows benchmark with the SIMD candidate opted in —
        // the bench harness is explicitly a perf tool, so the tolerance
        // contract is acceptable here; library defaults stay bit-exact.
        hfta_kernels::tune::set_db_path(Some(db.clone()));
        set_auto_simd(true);
        println!(
            "autotuner find-db: {} (simd candidate opted in)",
            db.display()
        );
    }

    // The (backend, threads) measurement matrix. The first and third rows
    // (naive@1T, blocked@4T) anchor `fused_conv_speedup`.
    let mut configs: Vec<(GemmBackend, usize, &str)> = vec![
        (GemmBackend::Naive, 1, "naive"),
        (GemmBackend::Blocked, 1, "blocked"),
        (GemmBackend::Blocked, 4, "blocked"),
    ];
    if simd {
        configs.push((GemmBackend::Simd, 1, "simd"));
        configs.push((GemmBackend::Simd, 4, "simd"));
    } else {
        println!("note: AVX2/FMA unavailable on this CPU; skipping simd backend rows");
    }
    if args.tune_db.is_some() {
        configs.push((GemmBackend::Auto, 1, "auto"));
        configs.push((GemmBackend::Auto, 4, "auto"));
    }

    let mut records = Vec::new();
    let mut rng = Rng::seed_from(17);

    // --- Plain GEMM at paper workload shapes ------------------------------
    let gemm_shapes = [
        ("pointnet", 64usize, 64usize, 1024usize),
        ("dcgan_im2col", 96, 48, 256),
        ("square_large", 256, 256, 256),
    ];
    for (label, m, k, n) in gemm_shapes {
        let a = rng.randn([m, k]);
        let b = rng.randn([k, n]);
        let flops = 2.0 * (m * k * n) as f64;
        let bytes = 4.0 * (m * k + k * n + m * n) as f64;
        for &(backend, threads, backend_name) in &configs {
            set_backend(backend);
            set_num_threads(threads);
            let mut out = vec![0.0f32; m * n];
            let ns = time_ns(iters, || {
                out.fill(0.0);
                hfta_kernels::gemm(
                    black_box(&mut out),
                    black_box(a.as_slice()),
                    black_box(b.as_slice()),
                    m,
                    k,
                    n,
                );
            });
            records.push(BenchRecord {
                op: "gemm".to_string(),
                shape: format!("{label}:{m}x{k}x{n}"),
                backend: backend_name.to_string(),
                threads: threads as u64,
                ns_per_iter: ns,
                gflops: flops / ns,
                bytes_per_iter: bytes,
            });
        }
    }

    // --- Fused conv training step, B = 6 (the acceptance gate) -----------
    let b = 6usize;
    let cfg = ConvCfg::square(2, 1, 1).fused(b);
    let x = rng.randn([4, 3 * b, 32, 32]);
    let w = rng.randn([16 * b, 3, 4, 4]);
    let bias = rng.randn([16 * b]);
    set_backend(GemmBackend::Blocked);
    let y = conv2d(&x, &w, Some(&bias), cfg);
    let gy = rng.randn(y.dims().to_vec());
    let spatial = y.dim(2) * y.dim(3);
    let krows = 3 * 4 * 4;
    // fwd + grad_input + grad_weight are each one GEMM of this size.
    let step_flops = 3.0 * 2.0 * (4 * 16 * b * spatial * krows) as f64;
    // Each of the three GEMMs streams the activations, weights and the
    // output-sized gradient once — close enough for roofline placement.
    let step_bytes =
        3.0 * 4.0 * (x.as_slice().len() + w.as_slice().len() + y.as_slice().len()) as f64;
    let mut step_ns = vec![0.0f64; configs.len()];
    for (ci, &(backend, threads, backend_name)) in configs.iter().enumerate() {
        set_backend(backend);
        set_num_threads(threads);
        let ns = time_ns(iters, || {
            let y = conv2d(black_box(&x), black_box(&w), Some(&bias), cfg);
            let gx = conv2d_grad_input(&w, black_box(&gy), (32, 32), 3 * b, cfg);
            let gw = conv2d_grad_weight(&x, &gy, (4, 4), cfg);
            black_box((y, gx, gw));
        });
        step_ns[ci] = ns;
        records.push(BenchRecord {
            op: "fused_conv_training_step".to_string(),
            shape: format!("B={b}:x4x{}x32x32:w{}x3x4x4", 3 * b, 16 * b),
            backend: backend_name.to_string(),
            threads: threads as u64,
            ns_per_iter: ns,
            gflops: step_flops / ns,
            bytes_per_iter: step_bytes,
        });
    }
    // --- hfta-scope overhead on a fused DCGAN-style training step --------
    // No profiler is installed, so both sides run the identical disabled
    // fast path; the delta is exactly hfta-scope's per-step compute (one
    // fused gradient reduction, per-model losses, one parameter pass).
    set_backend(GemmBackend::Blocked);
    set_num_threads(4);
    let scope_iters = if quick { 5 } else { 30 };
    let sb = 6usize;
    let conv = FusedConv2d::new(sb, Conv2dCfg::new(3, 16, 4), &mut rng);
    let params = conv.fused_parameters();
    let mut opt =
        FusedSgd::new(params.clone(), PerModel::new(vec![0.01; sb]), 0.9).expect("matching widths");
    let x = rng.randn([4, sb * 3, 32, 32]);
    let targets: Vec<usize> = (0..sb * 4).map(|_| rng.below(16)).collect();
    let mut bare_ns = f64::INFINITY;
    for _ in 0..3 {
        bare_ns = bare_ns.min(time_ns(scope_iters, || {
            black_box(dcgan_step(&conv, &mut opt, &x, &targets, sb, None));
        }));
    }
    // Time the scope work itself — exactly what `dcgan_step` adds when the
    // monitor is passed — rather than differencing two step timings, whose
    // run-to-run drift is larger than the cost being measured.
    let mut monitor = ScopeMonitor::new(sb, SentinelCfg::default());
    let mut step_idx = 0u64;
    opt.zero_grad();
    let tape = Tape::new();
    let y = conv.forward(&tape.leaf(x.clone()));
    let dims = y.dims();
    let pooled = y
        .reshape(&[dims[0], dims[1], dims[2] * dims[3]])
        .mean_axis_keep(2);
    let logits = pooled
        .reshape(&[dims[0], sb, dims[1] / sb])
        .permute(&[1, 0, 2]);
    fused_cross_entropy(&logits, &targets, Reduction::Mean).backward();
    let scope_ns = time_ns(scope_iters * 20, || {
        let losses = per_model_ce_losses(&logits, &targets);
        monitor.after_backward(step_idx, &losses, &params, &mut opt);
        monitor.after_step(step_idx, &params);
        step_idx += 1;
    });
    assert!(!monitor.any_fired(), "bench workload should stay healthy");
    let scope_overhead_pct = scope_ns / bare_ns * 100.0;

    set_backend(GemmBackend::Blocked);
    set_num_threads(prev_threads);
    // Pre-PR serial path (naive, 1 thread) vs the kernel layer at 4 threads.
    let fused_conv_speedup = step_ns[0] / step_ns[2];

    // Blocked-backend thread scaling per shape: GFLOP/s at 4T over 1T.
    let blocked_gflops = |op: &str, shape: &str, threads: u64| {
        records
            .iter()
            .find(|r| {
                r.op == op && r.shape == shape && r.backend == "blocked" && r.threads == threads
            })
            .map(|r| r.gflops)
    };
    let mut scaling = Vec::new();
    let mut seen_shapes: Vec<(String, String)> = Vec::new();
    for r in &records {
        let key = (r.op.clone(), r.shape.clone());
        if !seen_shapes.contains(&key) {
            seen_shapes.push(key);
        }
    }
    for (op, shape) in seen_shapes {
        if let (Some(g4), Some(g1)) = (
            blocked_gflops(&op, &shape, 4),
            blocked_gflops(&op, &shape, 1),
        ) {
            if g1 > 0.0 {
                scaling.push(ScalingRecord {
                    op,
                    shape,
                    scaling_efficiency: g4 / g1,
                });
            }
        }
    }

    let report = BenchReport {
        host_cpus,
        simd_available: simd,
        records,
        scaling_efficiency: scaling,
        fused_conv_speedup,
        scope_overhead_pct,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize bench report");
    std::fs::write(&json_path, &json).unwrap_or_else(|e| {
        eprintln!("failed to write {json_path}: {e}");
        std::process::exit(1);
    });

    println!("# hfta-kernels benchmark");
    println!(
        "{:<28} {:>24} {:>8} {:>8} {:>14} {:>9}",
        "op", "shape", "backend", "threads", "ns/iter", "GFLOP/s"
    );
    for r in &report.records {
        println!(
            "{:<28} {:>24} {:>8} {:>8} {:>14.0} {:>9.2}",
            r.op, r.shape, r.backend, r.threads, r.ns_per_iter, r.gflops
        );
    }
    for s in &report.scaling_efficiency {
        println!(
            "scaling efficiency (blocked @4T / @1T) {:<28} {:>24} {:.2}x",
            s.op, s.shape, s.scaling_efficiency
        );
    }
    println!(
        "\nfused conv training step speedup (blocked @4T vs naive @1T): {fused_conv_speedup:.2}x"
    );
    println!("hfta-scope overhead on a fused DCGAN step: {scope_overhead_pct:.2}% (budget 5%)");
    println!("wrote {json_path}");

    // --- Perf-history append (roofline summary vs calibrated peaks) -------
    if let Some(hpath) = &args.history {
        let db = args
            .probe_db
            .clone()
            .unwrap_or_else(|| std::path::PathBuf::from("probe_db.json"));
        let peaks = MachinePeaks::load_or_calibrate(&db, &[1, 4]);
        let ops = report
            .records
            .iter()
            .filter_map(|r| {
                let peak = peaks.entry_for(r.threads)?;
                let agg = OpAgg {
                    name: format!("{}/{}@{}{}T", r.op, r.shape, r.backend, r.threads),
                    calls: iters as u64,
                    flops: r.gflops * r.ns_per_iter,
                    bytes: r.bytes_per_iter,
                    ns: r.ns_per_iter,
                };
                let c = classify(&agg, peak);
                Some(OpUtil {
                    name: c.name,
                    pct_of_peak: c.pct_of_peak,
                    gflops: c.attained_gflops,
                    bound: c.bound.name().to_string(),
                })
            })
            .collect();
        let rec = HistoryRecord {
            schema: hfta_probe::HISTORY_SCHEMA,
            label: "bench_kernels".to_string(),
            git_rev: git_rev(),
            threads: 4,
            backend: "blocked".to_string(),
            ops,
        };
        let history = PerfHistory::new(hpath);
        if let Err(e) = history.append(&rec) {
            eprintln!("failed to append {}: {e}", hpath.display());
            std::process::exit(1);
        }
        println!("appended roofline summary to {}", hpath.display());
    }

    // --- Thread-scaling gate ---------------------------------------------
    if let Some(min_ratio) = args.gate_scaling {
        if host_cpus < 4 {
            println!(
                "note: --gate-scaling skipped; host exposes {host_cpus} CPU(s), \
                 so 4-thread scaling is not measurable here"
            );
        } else {
            let mut failed = false;
            for s in &report.scaling_efficiency {
                let flops = report
                    .records
                    .iter()
                    .find(|r| {
                        r.op == s.op
                            && r.shape == s.shape
                            && r.backend == "blocked"
                            && r.threads == 1
                    })
                    .map(|r| r.gflops * r.ns_per_iter)
                    .unwrap_or(0.0);
                if flops < LARGE_SHAPE_FLOPS {
                    continue;
                }
                if s.scaling_efficiency < min_ratio {
                    eprintln!(
                        "scaling gate FAILED: {}/{} blocked @4T/@1T = {:.2}x < {min_ratio:.2}x",
                        s.op, s.shape, s.scaling_efficiency
                    );
                    failed = true;
                }
            }
            if failed {
                std::process::exit(1);
            }
            println!("scaling gate passed (blocked @4T/@1T >= {min_ratio:.2}x on large shapes)");
        }
    }
}
