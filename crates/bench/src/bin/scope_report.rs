//! hfta-scope CLI: render per-model health tables from a trace directory,
//! or diff two runs and fail on regressions.
//!
//! ```text
//! scope_report <trace-dir>                 # health tables from *.report.json
//! scope_report --diff <base> <candidate> [--max-regress <pct>]
//!              [--max-mem-regress <pct>] [--loss-tol <t>]
//! ```
//!
//! `<base>` / `<candidate>` are either `<bin>.report.json` run reports or
//! `BENCH_*.json` bench files (auto-detected; both sides must be the same
//! kind). Exit codes: 0 = clean, 1 = regression found, 2 = usage or I/O
//! error.

use hfta_bench::scope_report::{
    diff_bench, diff_reports, load_report, print_health, DiffCfg, LoadedReport,
};

fn fail_usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: scope_report <trace-dir>");
    eprintln!(
        "       scope_report --diff <base> <candidate> [--max-regress <pct>] \
         [--max-mem-regress <pct>] [--loss-tol <t>]"
    );
    std::process::exit(2);
}

fn load(path: &str) -> LoadedReport {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail_usage(&format!("reading {path}: {e}")));
    load_report(&text).unwrap_or_else(|e| fail_usage(&format!("{path}: {e}")))
}

fn parse_f64(flag: &str, value: Option<String>) -> f64 {
    value
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| fail_usage(&format!("{flag} requires a numeric value")))
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut cfg = DiffCfg::default();
    let mut diff: Option<(String, String)> = None;
    let mut dir: Option<String> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--diff" => {
                let base = args
                    .next()
                    .unwrap_or_else(|| fail_usage("--diff needs two files"));
                let cand = args
                    .next()
                    .unwrap_or_else(|| fail_usage("--diff needs two files"));
                diff = Some((base, cand));
            }
            "--max-regress" => cfg.max_regress_pct = Some(parse_f64("--max-regress", args.next())),
            "--max-mem-regress" => {
                cfg.max_mem_regress_pct = Some(parse_f64("--max-mem-regress", args.next()));
            }
            "--loss-tol" => cfg.loss_tol = parse_f64("--loss-tol", args.next()),
            other if dir.is_none() && !other.starts_with('-') => dir = Some(other.to_string()),
            other => fail_usage(&format!("unknown argument: {other}")),
        }
    }

    if let Some((base_path, cand_path)) = diff {
        let out = match (load(&base_path), load(&cand_path)) {
            (LoadedReport::Run(b), LoadedReport::Run(c)) => diff_reports(&b, &c, &cfg),
            (LoadedReport::Bench(b), LoadedReport::Bench(c)) => diff_bench(&b, &c, &cfg),
            _ => fail_usage("cannot diff a run report against a bench file"),
        };
        println!("# scope_report diff: {base_path} -> {cand_path}");
        for line in &out.lines {
            println!("  ok: {line}");
        }
        for r in &out.regressions {
            println!("  REGRESSION: {r}");
        }
        if out.regressed() {
            eprintln!("{} regression(s) found", out.regressions.len());
            std::process::exit(1);
        }
        println!("no regressions");
        return;
    }

    let Some(dir) = dir else {
        fail_usage("expected a trace directory or --diff");
    };
    let mut reports: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| fail_usage(&format!("reading {dir}: {e}")))
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .is_some_and(|n| n.to_string_lossy().ends_with(".report.json"))
        })
        .collect();
    reports.sort();
    if reports.is_empty() {
        fail_usage(&format!("no *.report.json files in {dir}"));
    }
    for path in reports {
        let LoadedReport::Run(run) = load(&path.display().to_string()) else {
            continue;
        };
        println!("\n# {} ({})", run.name, path.display());
        for exp in &run.experiments {
            print_health(exp);
        }
    }
}
