//! hfta-scope CLI: render per-model health tables from a trace directory,
//! diff two runs and fail on regressions, or gate a perf-history file on
//! utilization drift.
//!
//! ```text
//! scope_report <trace-dir>                 # health tables from *.report.json
//! scope_report --diff <base> <candidate> [--max-regress <pct>]
//!              [--max-mem-regress <pct>] [--loss-tol <t>]
//! scope_report --history <file> [--max-drift <pct>]   # default 10%
//! ```
//!
//! `<base>` / `<candidate>` are either `<bin>.report.json` run reports or
//! `BENCH_*.json` bench files (auto-detected; both sides must be the same
//! kind). `--history` prints each tracked op's utilization trajectory from
//! the perf-history JSONL (see `probe_report` / `bench_kernels --history`)
//! and fails when the latest record drops more than `--max-drift` percent
//! below the trailing median. Exit codes: 0 = clean, 1 = regression or
//! drift found, 2 = usage or I/O error.

use hfta_bench::cli::{finish_diff, parse_pct, usage_exit};
use hfta_bench::scope_report::{
    diff_bench, diff_reports, load_report, print_health, DiffCfg, LoadedReport,
};
use hfta_probe::{drift, PerfHistory, DRIFT_WINDOW};

const USAGE: &str = "scope_report <trace-dir>\n       \
     scope_report --diff <base> <candidate> [--max-regress <pct>] \
     [--max-mem-regress <pct>] [--loss-tol <t>]\n       \
     scope_report --history <file> [--max-drift <pct>]";

fn fail_usage(msg: &str) -> ! {
    usage_exit(USAGE, msg);
}

/// Default `--max-drift` tolerance, percent.
const DEFAULT_MAX_DRIFT_PCT: f64 = 10.0;

/// The `--history` mode: trajectory table plus drift gate. Exits 1 on
/// drift, 2 on I/O or parse errors.
fn run_history(path: &str, max_drift_pct: f64) -> ! {
    let history = PerfHistory::new(path);
    let records = history.load().unwrap_or_else(|e| fail_usage(&e));
    let Some((latest, prior)) = records.split_last() else {
        fail_usage(&format!("{path}: no records under the current schema"));
    };
    println!(
        "# perf history: {path} ({} records, window {DRIFT_WINDOW}, tolerance {max_drift_pct}%)",
        records.len()
    );
    println!(
        "latest: {} @ {} ({} threads, {} backend)",
        latest.label, latest.git_rev, latest.threads, latest.backend
    );
    for op in &latest.ops {
        let trail: Vec<String> = prior
            .iter()
            .rev()
            .take(DRIFT_WINDOW)
            .filter_map(|r| r.op(&op.name))
            .map(|o| format!("{:.1}", o.pct_of_peak))
            .collect();
        println!(
            "  {:<44} {:>6.1}% of peak ({}) <- [{}]",
            op.name,
            op.pct_of_peak,
            op.bound,
            trail.join(", ")
        );
    }
    let violations = drift(&records, max_drift_pct);
    for v in &violations {
        println!(
            "  DRIFT: {} fell to {:.1}% of peak, {:.1}% below the trailing median {:.1}%",
            v.op, v.latest_pct, v.drop_pct, v.median_pct
        );
    }
    if violations.is_empty() {
        println!("no drift beyond {max_drift_pct}%");
        std::process::exit(0);
    }
    eprintln!("{} op(s) drifted", violations.len());
    std::process::exit(1);
}

fn load(path: &str) -> LoadedReport {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail_usage(&format!("reading {path}: {e}")));
    load_report(&text).unwrap_or_else(|e| fail_usage(&format!("{path}: {e}")))
}

fn parse_f64(flag: &str, value: Option<String>) -> f64 {
    parse_pct(USAGE, flag, value)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut cfg = DiffCfg::default();
    let mut diff: Option<(String, String)> = None;
    let mut dir: Option<String> = None;
    let mut history: Option<String> = None;
    let mut max_drift = DEFAULT_MAX_DRIFT_PCT;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--history" => {
                history = Some(
                    args.next()
                        .unwrap_or_else(|| fail_usage("--history needs a file")),
                );
            }
            "--max-drift" => max_drift = parse_f64("--max-drift", args.next()),
            "--diff" => {
                let base = args
                    .next()
                    .unwrap_or_else(|| fail_usage("--diff needs two files"));
                let cand = args
                    .next()
                    .unwrap_or_else(|| fail_usage("--diff needs two files"));
                diff = Some((base, cand));
            }
            "--max-regress" => cfg.max_regress_pct = Some(parse_f64("--max-regress", args.next())),
            "--max-mem-regress" => {
                cfg.max_mem_regress_pct = Some(parse_f64("--max-mem-regress", args.next()));
            }
            "--loss-tol" => cfg.loss_tol = parse_f64("--loss-tol", args.next()),
            other if dir.is_none() && !other.starts_with('-') => dir = Some(other.to_string()),
            other => fail_usage(&format!("unknown argument: {other}")),
        }
    }

    if let Some(path) = history {
        if diff.is_some() || dir.is_some() {
            fail_usage("--history cannot be combined with --diff or a trace directory");
        }
        run_history(&path, max_drift);
    }

    if let Some((base_path, cand_path)) = diff {
        let out = match (load(&base_path), load(&cand_path)) {
            (LoadedReport::Run(b), LoadedReport::Run(c)) => diff_reports(&b, &c, &cfg),
            (LoadedReport::Bench(b), LoadedReport::Bench(c)) => diff_bench(&b, &c, &cfg),
            _ => fail_usage("cannot diff a run report against a bench file"),
        };
        finish_diff(
            &format!("scope_report diff: {base_path} -> {cand_path}"),
            &out,
        );
    }

    let Some(dir) = dir else {
        fail_usage("expected a trace directory or --diff");
    };
    let mut reports: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| fail_usage(&format!("reading {dir}: {e}")))
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .is_some_and(|n| n.to_string_lossy().ends_with(".report.json"))
        })
        .collect();
    reports.sort();
    if reports.is_empty() {
        fail_usage(&format!("no *.report.json files in {dir}"));
    }
    for path in reports {
        let LoadedReport::Run(run) = load(&path.display().to_string()) else {
            continue;
        };
        println!("\n# {} ({})", run.name, path.display());
        for exp in &run.experiments {
            print_health(exp);
        }
    }
}
