//! Reproduces **Figure 6**: TPU v3 per-core normalized throughput, serial
//! vs HFTA (paper peaks: PointNet-cls 4.93x, DCGAN 15.13x; PointNet-seg
//! only 1.20x).

use hfta_bench::sweep::tpu_curve;
use hfta_models::Workload;

fn main() {
    let trace = hfta_bench::telemetry_cli::TraceSession::from_args("fig6");
    println!("# Figure 6 — TPU v3 serial vs HFTA");
    for (workload, paper) in [
        (Workload::pointnet_cls(), "4.93"),
        (Workload::dcgan(), "15.13"),
        (Workload::pointnet_seg(), "1.20"),
    ] {
        let curve = tpu_curve(&workload);
        let series: Vec<String> = curve
            .iter()
            .map(|p| format!("({}, {:.2})", p.models, p.normalized))
            .collect();
        let peak = curve.iter().map(|p| p.normalized).fold(0.0, f64::max);
        println!("\n{}: {}", workload.name, series.join(" "));
        println!("  peak HFTA/serial = {peak:.2} (paper: {paper})");
    }
    trace.finish_or_exit();
}
