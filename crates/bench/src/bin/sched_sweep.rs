//! Replayed-trace scheduler shootout: serial vs static fusion vs elastic
//! re-packing on the same trial stream and simulated fleet.
//!
//! ```text
//! sched_sweep [--trials <n>] [--devices <n>] [--span <s>]
//!             [--bench-json <path>] [--trace <dir>]
//! ```
//!
//! The trial stream comes from `hfta-cluster`: a synthetic two-week trace
//! is generated, its hyper-parameter sweep bursts recovered
//! (`sweep_arrivals`), and their submit times rescaled onto `--span`
//! simulated seconds (`normalize_arrivals`). Every policy then replays
//! the same arrivals over its own fresh fleet under a successive-halving
//! rung schedule; a sprinkling of trials is NaN-poisoned so sentinel
//! kills and quarantine evictions happen mid-run.
//!
//! The binary asserts the paper-level headline — elastic beats static
//! fusion beats serial on makespan — and exits 1 if the ordering ever
//! breaks; CI also diffs the `--trace` report against
//! `ci/golden/sched_sweep.report.json` (losses, streams, and sentinels
//! are bit-reproducible; wall times are not gated). `--bench-json` writes
//! the makespan/device-hours/packing table — now including the per-policy
//! SLO decomposition (queue/compute/surgery/quarantine plus p50/p99
//! queue-wait and e2e latency, all in bit-exact simulated time) — for the
//! artifact upload. `--history <file>` appends one perf-history record per
//! policy encoding queue-wait p99 as an inverse rate (`1e6 / p99_us`), so
//! the standard `scope_report --history` drift gate flags latency
//! *increases* as utilization drops.

use std::fs;
use std::process::ExitCode;

use hfta_bench::cli::{usage_exit, CommonArgs};
use hfta_cluster::replay::{normalize_arrivals, sweep_arrivals};
use hfta_cluster::trace::{generate, TraceCfg};
use hfta_probe::{git_rev, HistoryRecord, OpUtil, PerfHistory, HISTORY_SCHEMA};
use hfta_sched::asha::RungPolicy;
use hfta_sched::linear::{LinearBackend, LinearTrialCfg};
use hfta_sched::sched::{run, Policy, SchedCfg, SchedReport};
use hfta_sim::{DeviceFleet, DeviceSpec};
use hfta_telemetry::Profiler;
use serde::Serialize;

/// Burst-grouping gap when recovering sweeps from the trace, seconds.
const BURST_GAP_S: u64 = 120;
/// Minimum burst size to count as a sweep.
const MIN_TRIALS: u64 = 4;
/// Every ninth trial (offset 4) is NaN-poisoned at this step.
const POISON_STEP: u64 = 1;

#[derive(Debug, Serialize)]
struct BenchFile {
    name: &'static str,
    trials: usize,
    devices: usize,
    span_s: f64,
    records: Vec<SchedReport>,
    static_speedup_vs_serial: f64,
    elastic_speedup_vs_serial: f64,
    elastic_speedup_vs_static: f64,
    elastic_device_hours_saved_vs_static_pct: f64,
}

const USAGE: &str = "sched_sweep [--trials <n>] [--devices <n>] [--span <s>] \
                     [--bench-json <path>] [--trace <dir>] [--history <file>]";

struct Args {
    trials: usize,
    devices: usize,
    span_s: f64,
    common: CommonArgs,
}

fn parse_args() -> Args {
    let common = CommonArgs::parse(USAGE);
    let mut out = Args {
        trials: 48,
        devices: 2,
        span_s: 0.01,
        common,
    };
    let mut rest = out.common.rest.clone().into_iter();
    while let Some(a) = rest.next() {
        match a.as_str() {
            "--trials" => match rest.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => out.trials = v,
                _ => usage_exit(USAGE, "--trials needs a positive integer"),
            },
            "--devices" => match rest.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => out.devices = v,
                _ => usage_exit(USAGE, "--devices needs a positive integer"),
            },
            "--span" => match rest.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 0.0 => out.span_s = v,
                _ => usage_exit(USAGE, "--span needs a non-negative number"),
            },
            other => usage_exit(USAGE, &format!("unknown argument: {other}")),
        }
    }
    out
}

/// The replayed trial stream: `(arrival_s, config)`, one entry per trial,
/// bursts sharing their (normalized) submit instant.
fn trial_stream(n: usize, span_s: f64) -> Vec<(f64, LinearTrialCfg)> {
    let jobs = generate(&TraceCfg::small(), 42);
    let bursts = sweep_arrivals(&jobs, BURST_GAP_S, MIN_TRIALS as usize);
    let times = normalize_arrivals(&bursts, span_s);
    let mut stream = Vec::with_capacity(n);
    'outer: for (burst, &t) in bursts.iter().zip(&times) {
        for k in 0..burst.trials {
            if stream.len() == n {
                break 'outer;
            }
            let i = stream.len();
            let cfg = LinearTrialCfg {
                // The burst's swept grid, kept in a stable range.
                lr: 0.004 * (1 + (k % 12)) as f32,
                poison_at: if i % 9 == 4 { Some(POISON_STEP) } else { None },
            };
            stream.push((t, cfg));
        }
    }
    assert!(
        stream.len() == n,
        "trace yielded only {} sweep trials (wanted {n})",
        stream.len()
    );
    stream
}

fn main() -> ExitCode {
    let args = parse_args();
    let session = args.common.trace_session("sched_sweep");
    let arrivals = trial_stream(args.trials, args.span_s);

    let backend = LinearBackend::default();
    let rung = RungPolicy {
        base_steps: 2,
        eta: 2,
        rungs: 3,
    };
    let profiler = Profiler::current();
    let mut records = Vec::new();
    for policy in [Policy::Serial, Policy::StaticFusion, Policy::Elastic] {
        let _exp = profiler.as_ref().map(|p| p.experiment(policy.name()));
        let mut fleet = DeviceFleet::homogeneous(DeviceSpec::v100(), false, args.devices);
        let cfg = SchedCfg {
            policy,
            rung: rung.clone(),
            width_cap: 8,
        };
        let outcome = run(&backend, &mut fleet, &arrivals, &cfg);
        records.push(outcome.report);
    }

    println!(
        "{:>14} {:>12} {:>12} {:>10} {:>9} {:>8} {:>8} {:>8}",
        "policy",
        "makespan_ms",
        "dev_hours",
        "occupancy",
        "packing",
        "finished",
        "stopped",
        "killed"
    );
    for r in &records {
        println!(
            "{:>14} {:>12.3} {:>12.3e} {:>10.3} {:>9.3} {:>8} {:>8} {:>8}",
            r.policy,
            r.makespan_s * 1e3,
            r.device_hours,
            r.occupancy,
            r.packing_efficiency,
            r.finished,
            r.stopped,
            r.killed
        );
    }
    println!(
        "\n{:>14} {:>11} {:>11} {:>11} {:>11} {:>10} {:>10} {:>10} {:>10}",
        "policy",
        "qwait_p50",
        "qwait_p99",
        "e2e_p50",
        "e2e_p99",
        "queue_us",
        "compute",
        "surgery",
        "quarant"
    );
    for r in &records {
        println!(
            "{:>14} {:>9.1}us {:>9.1}us {:>9.1}us {:>9.1}us {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            r.policy,
            r.queue_wait_p50_us,
            r.queue_wait_p99_us,
            r.e2e_latency_p50_us,
            r.e2e_latency_p99_us,
            r.queue_us,
            r.compute_us,
            r.surgery_us,
            r.quarantine_us
        );
    }

    let (serial, stat, elastic) = (&records[0], &records[1], &records[2]);
    println!(
        "\nspeedup vs serial: static {:.2}x, elastic {:.2}x; elastic vs static {:.2}x \
         ({} repacks moved {} lanes)",
        serial.makespan_s / stat.makespan_s,
        serial.makespan_s / elastic.makespan_s,
        stat.makespan_s / elastic.makespan_s,
        elastic.repacks,
        elastic.lanes_moved
    );

    // NaN must gate too, so "strictly below, comparably" is the pass
    // condition rather than a negated `<`.
    let below = |a: f64, b: f64| a.partial_cmp(&b) == Some(std::cmp::Ordering::Less);
    let mut failed = false;
    if !below(elastic.makespan_s, stat.makespan_s) {
        eprintln!(
            "FAIL: elastic makespan {} not below static {}",
            elastic.makespan_s, stat.makespan_s
        );
        failed = true;
    }
    if !below(stat.makespan_s, serial.makespan_s) {
        eprintln!(
            "FAIL: static makespan {} not below serial {}",
            stat.makespan_s, serial.makespan_s
        );
        failed = true;
    }
    if !below(stat.packing_efficiency, elastic.packing_efficiency) {
        eprintln!(
            "FAIL: elastic packing {} not above static {}",
            elastic.packing_efficiency, stat.packing_efficiency
        );
        failed = true;
    }

    if let Some(path) = &args.common.history {
        // Latency enters the drift gate as an inverse rate so the standard
        // "utilization dropped" check fires when latency *rises*: a p99 of
        // 100us scores 1e6/100 = 10_000. `gflops` carries the raw
        // microseconds for human inspection of the JSONL.
        let inv = |us: f64| 1e6 / us.max(1e-9);
        let record = HistoryRecord {
            schema: HISTORY_SCHEMA,
            label: "sched_sweep".into(),
            git_rev: git_rev(),
            threads: 1, // simulated fleet; thread count does not matter
            backend: "sim".into(),
            ops: records
                .iter()
                .flat_map(|r| {
                    [
                        OpUtil {
                            name: format!("sched/{}/queue_p99", r.policy),
                            pct_of_peak: inv(r.queue_wait_p99_us),
                            gflops: r.queue_wait_p99_us,
                            bound: "latency".into(),
                        },
                        OpUtil {
                            name: format!("sched/{}/e2e_p99", r.policy),
                            pct_of_peak: inv(r.e2e_latency_p99_us),
                            gflops: r.e2e_latency_p99_us,
                            bound: "latency".into(),
                        },
                    ]
                })
                .collect(),
        };
        let history = PerfHistory::new(path);
        if let Err(e) = history.append(&record) {
            eprintln!("FAIL: cannot append {}: {e}", path.display());
            failed = true;
        } else {
            println!("appended {} ops to {}", record.ops.len(), path.display());
        }
    }

    if let Some(path) = &args.common.bench_json {
        let file = BenchFile {
            name: "sched_sweep",
            trials: args.trials,
            devices: args.devices,
            span_s: args.span_s,
            static_speedup_vs_serial: serial.makespan_s / stat.makespan_s,
            elastic_speedup_vs_serial: serial.makespan_s / elastic.makespan_s,
            elastic_speedup_vs_static: stat.makespan_s / elastic.makespan_s,
            elastic_device_hours_saved_vs_static_pct: (1.0
                - elastic.device_hours / stat.device_hours)
                * 100.0,
            records,
        };
        let json = serde_json::to_string_pretty(&file).expect("bench file serializes");
        if let Some(dir) = std::path::Path::new(path).parent() {
            if !dir.as_os_str().is_empty() {
                let _ = fs::create_dir_all(dir);
            }
        }
        if let Err(e) = fs::write(path, json) {
            eprintln!("FAIL: cannot write {path}: {e}");
            failed = true;
        } else {
            println!("wrote {path}");
        }
    }

    session.finish_or_exit();
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
