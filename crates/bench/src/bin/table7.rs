//! Reproduces **Table 7**: the DCGM performance-counter field identifiers.

use hfta_bench::sweep::print_table;
use hfta_sim::counters::dcgm;

fn main() {
    let trace = hfta_bench::telemetry_cli::TraceSession::from_args("table7");
    println!("# Table 7 — DCGM metrics");
    let rows: Vec<Vec<String>> = dcgm::table7()
        .iter()
        .map(|(name, mac, id)| vec![name.to_string(), mac.to_string(), id.to_string()])
        .collect();
    print_table(
        "field identifiers",
        &["Name", "Field Identifier Macro", "ID"],
        &rows,
    );
    trace.finish_or_exit();
}
