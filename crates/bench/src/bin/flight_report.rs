//! hfta-flight CLI: rebuild causal trial timelines from the flight
//! journals a `--trace` run left behind, render per-trial Gantt charts,
//! critical paths and the fleet SLO table, or diff two summaries and fail
//! on regressions.
//!
//! ```text
//! flight_report <trace-dir> [--width <cols>] [--out <summary.json>]
//! flight_report --diff <base.json> <candidate.json> [--max-regress <pct>]
//! ```
//!
//! `<trace-dir>` is a directory holding `*.flight.jsonl` journals (written
//! by any bench bin run with `--trace`). Timestamps are simulated
//! integer nanoseconds, so `--out` summaries are bit-reproducible across
//! machines and can be committed as CI goldens. In `--diff` mode the
//! experiment set and trial/terminal/fault counts must match exactly;
//! latency statistics may grow at most `--max-regress` percent (default
//! 0). Exit codes: 0 = clean, 1 = regression found, 2 = usage or I/O
//! error.

use hfta_bench::cli::{finish_diff, parse_pct, usage_exit};
use hfta_bench::flight_report::{
    diff_flight, load_journal_dir, render_gantt, render_slo_table, summarize, FlightSummary,
};

const USAGE: &str = "flight_report <trace-dir> [--width <cols>] [--out <summary.json>]\n       \
     flight_report --diff <base.json> <candidate.json> [--max-regress <pct>]";

fn fail_usage(msg: &str) -> ! {
    usage_exit(USAGE, msg);
}

/// Default Gantt width, columns.
const DEFAULT_WIDTH: usize = 64;

fn load_summary(path: &str) -> FlightSummary {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail_usage(&format!("reading {path}: {e}")));
    serde_json::from_str(&text).unwrap_or_else(|e| fail_usage(&format!("{path}: {e}")))
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut dir: Option<String> = None;
    let mut diff: Option<(String, String)> = None;
    let mut out_path: Option<String> = None;
    let mut max_regress = 0.0;
    let mut width = DEFAULT_WIDTH;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--diff" => {
                let base = args
                    .next()
                    .unwrap_or_else(|| fail_usage("--diff needs two files"));
                let cand = args
                    .next()
                    .unwrap_or_else(|| fail_usage("--diff needs two files"));
                diff = Some((base, cand));
            }
            "--max-regress" => max_regress = parse_pct(USAGE, "--max-regress", args.next()),
            "--out" => {
                out_path = Some(
                    args.next()
                        .unwrap_or_else(|| fail_usage("--out needs a path")),
                );
            }
            "--width" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 10 => width = v,
                _ => fail_usage("--width needs an integer >= 10"),
            },
            other if dir.is_none() && !other.starts_with('-') => dir = Some(other.to_string()),
            other => fail_usage(&format!("unknown argument: {other}")),
        }
    }

    if let Some((base_path, cand_path)) = diff {
        if dir.is_some() {
            fail_usage("--diff cannot be combined with a trace directory");
        }
        let out = diff_flight(
            &load_summary(&base_path),
            &load_summary(&cand_path),
            max_regress,
        );
        finish_diff(
            &format!("flight_report diff: {base_path} -> {cand_path}"),
            &out,
        );
    }

    let Some(dir) = dir else {
        fail_usage("expected a trace directory or --diff");
    };
    let journal = load_journal_dir(std::path::Path::new(&dir)).unwrap_or_else(|e| fail_usage(&e));
    let summary = summarize(&journal).unwrap_or_else(|e| fail_usage(&e));

    println!("# flight report: {dir}");
    print!("{}", render_slo_table(&summary));
    for (name, events) in &journal {
        let gantt = render_gantt(name, events, width).unwrap_or_else(|e| fail_usage(&e));
        print!("\n{gantt}");
    }

    if let Some(path) = out_path {
        let json = serde_json::to_string_pretty(&summary).expect("summary serializes");
        if let Some(parent) = std::path::Path::new(&path).parent() {
            if !parent.as_os_str().is_empty() {
                let _ = std::fs::create_dir_all(parent);
            }
        }
        std::fs::write(&path, json).unwrap_or_else(|e| fail_usage(&format!("writing {path}: {e}")));
        println!("\nwrote {path}");
    }
}
