//! Reproduces **Figure 10**: DCGM profiles of 13 sampled repetitive
//! single-GPU jobs (paper: max sm_active 24%, max sm_occupancy 14%).

use hfta_bench::sweep::print_table;
use hfta_cluster::{classify, trace};

fn main() {
    let trace = hfta_bench::telemetry_cli::TraceSession::from_args("fig10");
    let jobs = trace::generate(&trace::TraceCfg::default(), 2020);
    let cats = classify::classify(&jobs, &classify::ClassifyCfg::default());
    let samples = classify::sample_utilization(&jobs, &cats, 13);
    println!("# Figure 10 — sampled utilization of repetitive single-GPU jobs");
    let rows: Vec<Vec<String>> = samples
        .iter()
        .enumerate()
        .map(|(i, s)| {
            vec![
                format!("job {}", i + 1),
                format!("{:.1}%", s.sm_active * 100.0),
                format!("{:.1}%", s.sm_occupancy * 100.0),
            ]
        })
        .collect();
    print_table(
        "13 sampled jobs",
        &["Job", "sm_active", "sm_occupancy"],
        &rows,
    );
    let max_a = samples.iter().map(|s| s.sm_active).fold(0.0, f64::max);
    let max_o = samples.iter().map(|s| s.sm_occupancy).fold(0.0, f64::max);
    println!(
        "\nmax sm_active {:.1}% (paper: 24%), max sm_occupancy {:.1}% (paper: 14%)",
        max_a * 100.0,
        max_o * 100.0
    );
    trace.finish_or_exit();
}
