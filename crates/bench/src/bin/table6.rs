//! Reproduces **Table 6**: the horizontal fusion rules HFTA supports.

use hfta_bench::sweep::print_table;
use hfta_core::rules::rule_table;

fn main() {
    let trace = hfta_bench::telemetry_cli::TraceSession::from_args("table6");
    println!("# Table 6 — HFTA operator fusion rules");
    let rows: Vec<Vec<String>> = rule_table()
        .iter()
        .map(|r| {
            vec![
                r.original.to_string(),
                r.fused.to_string(),
                r.kind.fusion_mechanism().to_string(),
            ]
        })
        .collect();
    print_table(
        "12 supported operators",
        &[
            "PyTorch operator",
            "HFTA horizontally fused operator",
            "mechanism",
        ],
        &rows,
    );
    trace.finish_or_exit();
}
