//! A tiny deterministic fused sweep that exercises the whole hfta-scope
//! stack: per-model loss/grad-norm/param-norm/update-ratio streams, a
//! deliberately NaN-seeded model, the divergence sentinel that catches it,
//! and the quarantine that freezes it — all written to a `--trace` dir for
//! `scope_report` to render and diff (CI diffs the report against
//! `ci/golden/scope_sweep.report.json`).
//!
//! ```text
//! scope_sweep [--steps <n>] [--trace <dir>]
//! ```
//!
//! Everything is seeded and thread-count independent, so the report's
//! losses, streams and sentinel events are bit-reproducible; only wall
//! times and throughput vary by machine (which the default `scope_report
//! --diff` gates ignore).

use hfta_bench::cli::{usage_exit, CommonArgs};
use hfta_bench::scope_report::print_health;
use hfta_core::array::ModelArray;
use hfta_core::loss::{fused_cross_entropy, Reduction};
use hfta_core::ops::FusedLinear;
use hfta_core::optim::{FusedOptimizer, FusedSgd, PerModel};
use hfta_core::scope::{per_model_ce_losses, poison_model_lane, ScopeMonitor, SentinelCfg};
use hfta_nn::layers::LinearCfg;
use hfta_telemetry::Profiler;
use hfta_tensor::{Rng, Tensor};

const B: usize = 4;
const N: usize = 6;
const F_IN: usize = 8;
const CLASSES: usize = 4;
/// The NaN-seeded lane (a sweep candidate whose training "blows up").
const VICTIM: usize = 3;
/// The victim's gradients go NaN after this step's backward pass.
const POISON_STEP: u64 = 1;

const USAGE: &str = "scope_sweep [--steps <n>] [--trace <dir>]";

fn main() {
    let args = CommonArgs::parse(USAGE);
    let session = args.trace_session("scope_sweep");
    // Without --trace, still install a local profiler so the health table
    // at the end has streams to render.
    let local = if session.is_active() {
        None
    } else {
        Some(Profiler::new("scope_sweep"))
    };
    let _local_guard = local.as_ref().map(Profiler::install);

    let mut steps = 2u64;
    let mut rest = args.rest.iter();
    while let Some(a) = rest.next() {
        if a == "--steps" {
            steps = rest
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage_exit(USAGE, "--steps requires a positive integer"));
        } else {
            usage_exit(USAGE, &format!("unknown argument: {a}"));
        }
    }

    let lrs = PerModel::new(vec![0.05, 0.1, 0.2, 0.5]);
    let mut rng = Rng::seed_from(0x5C09E);
    let array = ModelArray::new(FusedLinear::new(B, LinearCfg::new(F_IN, CLASSES), &mut rng));
    let params = array.fused_parameters();
    let mut opt = FusedSgd::new(params.clone(), lrs, 0.9).expect("matching widths");
    let mut monitor = ScopeMonitor::new(B, SentinelCfg::default());

    for step in 0..steps {
        let xs: Vec<Tensor> = (0..B).map(|_| rng.randn([N, F_IN])).collect();
        let targets: Vec<usize> = (0..B * N).map(|_| rng.below(CLASSES)).collect();
        opt.zero_grad();
        let (_tape, logits) = array.forward_array(&xs).expect("uniform shapes");
        let losses = per_model_ce_losses(&logits, &targets);
        array.record_step(step, &losses, 0.0);
        let loss = fused_cross_entropy(&logits, &targets, Reduction::Mean);
        loss.backward();
        if step == POISON_STEP {
            poison_model_lane(&params, VICTIM);
        }
        let newly = monitor.after_backward(step, &losses, &params, &mut opt);
        for m in newly {
            eprintln!("step {step}: quarantined model {m}");
        }
        opt.step();
        monitor.after_step(step, &params);
    }

    let profiler = Profiler::current().expect("profiler installed above");
    let report = profiler.report();
    for exp in &report.experiments {
        print_health(exp);
    }
    println!(
        "\nsweep done: {steps} steps, B = {B}, {} sentinel event(s)",
        monitor.events().len()
    );

    drop(_local_guard);
    session.finish_or_exit();
}
