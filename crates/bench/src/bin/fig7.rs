//! Reproduces **Figure 7**: GPU memory footprint of MPS vs HFTA for
//! PointNet-cls on V100, with the linear regressions whose HFTA
//! intercepts recover the framework overhead (paper: 1.52 GB FP32,
//! 2.12 GB AMP).

use hfta_bench::sweep::linear_regression;
use hfta_models::Workload;
use hfta_sim::{DeviceSpec, GpuSim, SharingPolicy};

fn main() {
    let trace = hfta_bench::telemetry_cli::TraceSession::from_args("fig7");
    println!("# Figure 7 — memory footprint vs models (PointNet-cls, V100)");
    let w = Workload::pointnet_cls();
    for amp in [false, true] {
        let sim = GpuSim::new(DeviceSpec::v100(), amp);
        let precision = if amp { "AMP" } else { "FP32" };
        for policy in [SharingPolicy::Mps, SharingPolicy::Hfta] {
            let mut pts = Vec::new();
            for j in 1..=24 {
                let r = match policy {
                    SharingPolicy::Hfta => sim.simulate(policy, &w.fused_job(j), 1),
                    _ => sim.simulate(policy, &w.serial_job(), j),
                };
                if !r.fits {
                    break;
                }
                pts.push((j as f64, r.memory_gib));
            }
            let (slope, intercept) = linear_regression(&pts);
            let series: Vec<String> = pts
                .iter()
                .map(|(x, y)| format!("({x:.0}, {y:.2})"))
                .collect();
            println!("\n{precision} {:<5} {}", policy.name(), series.join(" "));
            println!(
                "  regression: {slope:.2} GiB/model + {intercept:.2} GiB intercept{}",
                if policy == SharingPolicy::Hfta {
                    format!(
                        " (paper intercept: {} GB)",
                        if amp { "2.12" } else { "1.52" }
                    )
                } else {
                    " (paper: passes through origin)".into()
                }
            );
        }
    }
    trace.finish_or_exit();
}
