//! hfta-scope reporting: per-model health tables and run comparison.
//!
//! The library half of the `scope_report` binary. It consumes the
//! `<bin>.report.json` files the [`crate::telemetry_cli::TraceSession`]
//! writes (a serialized [`RunReport`]) or the `BENCH_*.json` files
//! `bench_kernels` writes, and offers two views:
//!
//! * **health** — one table per experiment: each model's last/min loss,
//!   gradient- and parameter-norm trajectory endpoints, update ratio, and
//!   any sentinel events ([`print_health`]);
//! * **diff** — compares two runs ([`diff_reports`]) or two bench files
//!   ([`diff_bench`]). Structural and loss differences are always gated
//!   (deterministic across thread counts); throughput is only gated when
//!   [`DiffCfg::max_regress_pct`] is set, because wall-clock numbers vary
//!   by machine. Bench-file diffs always gate throughput (that is all a
//!   bench file contains), defaulting to a 10% budget.

use hfta_telemetry::{ExperimentReport, RunReport, SentinelEvent};
use serde::{Deserialize, Value};

use crate::sweep::print_table;

/// Tolerances for [`diff_reports`] / [`diff_bench`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffCfg {
    /// Maximum allowed |base − candidate| on each model's final loss.
    pub loss_tol: f64,
    /// Throughput-regression budget in percent. `None` skips the
    /// throughput gate for run reports (bench diffs fall back to 10%).
    pub max_regress_pct: Option<f64>,
    /// Memory-regression budget in percent, applied to the `peak_bytes`
    /// (higher is worse) and `savings_ratio` (lower is worse) fields of
    /// `BENCH_mem.json` records. Bench diffs fall back to 10%.
    pub max_mem_regress_pct: Option<f64>,
}

impl Default for DiffCfg {
    fn default() -> Self {
        DiffCfg {
            loss_tol: 1e-6,
            max_regress_pct: None,
            max_mem_regress_pct: None,
        }
    }
}

/// Outcome of a diff: informational lines plus gating regressions.
#[derive(Debug, Default)]
pub struct DiffOutcome {
    /// Informational comparison lines (printed as-is).
    pub lines: Vec<String>,
    /// Regressions that should fail the comparison (non-zero exit).
    pub regressions: Vec<String>,
}

impl DiffOutcome {
    /// Whether any gated regression was found.
    pub fn regressed(&self) -> bool {
        !self.regressions.is_empty()
    }

    fn note(&mut self, s: String) {
        self.lines.push(s);
    }

    fn regress(&mut self, s: String) {
        self.regressions.push(s);
    }
}

/// A parsed report file of either supported kind.
pub enum LoadedReport {
    /// A `<bin>.report.json` run report.
    Run(RunReport),
    /// A `BENCH_*.json` bench report, kept as a raw value tree.
    Bench(Value),
}

/// Parses report JSON, detecting the file kind from its top-level fields.
///
/// # Errors
///
/// Returns a message when the text is not JSON or matches neither kind.
pub fn load_report(text: &str) -> Result<LoadedReport, String> {
    let v: Value = serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e}"))?;
    if v.get("experiments").is_some() {
        let run = RunReport::deserialize(&v).map_err(|e| format!("bad run report: {e}"))?;
        Ok(LoadedReport::Run(run))
    } else if v.get("records").is_some() {
        Ok(LoadedReport::Bench(v))
    } else {
        Err("unrecognized report: expected `experiments` (run report) or `records` (bench)".into())
    }
}

fn fmt(v: Option<f64>) -> String {
    match v {
        None => "-".into(),
        Some(x) if x.is_nan() => "nan".into(),
        Some(x) => format!("{x:.4}"),
    }
}

fn sentinel_summary(events: &[&SentinelEvent]) -> String {
    if events.is_empty() {
        return "-".into();
    }
    events
        .iter()
        .map(|e| {
            let q = if e.quarantined { " (quarantined)" } else { "" };
            format!("{}@{}{}", e.kind.label(), e.step, q)
        })
        .collect::<Vec<_>>()
        .join("; ")
}

/// Renders the per-model health rows of one experiment (one row per model
/// appearing in any scalar stream).
pub fn health_rows(exp: &ExperimentReport) -> Vec<Vec<String>> {
    exp.scalar_models()
        .into_iter()
        .map(|m| {
            let stream = |metric: &str| exp.scalar_stream(m, metric);
            vec![
                m.to_string(),
                fmt(stream("loss").and_then(|s| s.last())),
                fmt(stream("loss").and_then(|s| s.min())),
                fmt(stream("grad_norm").and_then(|s| s.last())),
                fmt(stream("grad_norm").and_then(|s| s.max())),
                fmt(stream("param_norm").and_then(|s| s.last())),
                fmt(stream("update_ratio").and_then(|s| s.last())),
                sentinel_summary(&exp.sentinels_for(m)),
            ]
        })
        .collect()
}

/// Prints the health table for one experiment (skips experiments with no
/// scope data).
pub fn print_health(exp: &ExperimentReport) {
    let rows = health_rows(exp);
    if rows.is_empty() && exp.sentinels.is_empty() {
        return;
    }
    print_table(
        &format!("hfta-scope health: {}", exp.name),
        &[
            "model",
            "loss",
            "loss min",
            "grad norm",
            "grad max",
            "param norm",
            "update ratio",
            "sentinels",
        ],
        &rows,
    );
}

/// Mean throughput of an experiment: the `*throughput_eps` gauges when
/// present, else the positive per-step `samples_per_s` entries.
pub fn throughput_of(exp: &ExperimentReport) -> Option<f64> {
    let gauges: Vec<f64> = exp
        .gauges
        .iter()
        .filter(|g| g.name.ends_with("throughput_eps"))
        .map(|g| g.value)
        .collect();
    if !gauges.is_empty() {
        return Some(gauges.iter().sum::<f64>() / gauges.len() as f64);
    }
    let steps: Vec<f64> = exp
        .steps
        .iter()
        .map(|s| s.samples_per_s)
        .filter(|v| *v > 0.0)
        .collect();
    if steps.is_empty() {
        None
    } else {
        Some(steps.iter().sum::<f64>() / steps.len() as f64)
    }
}

fn sentinel_key(e: &SentinelEvent) -> (u64, u64, &'static str, bool) {
    (e.step, e.model, e.kind.label(), e.quarantined)
}

fn diff_experiment(
    base: &ExperimentReport,
    cand: &ExperimentReport,
    cfg: &DiffCfg,
    out: &mut DiffOutcome,
) {
    let name = &base.name;
    // Per-model scalar streams: structure (presence + step count) always
    // gates; the loss value gates within `loss_tol`.
    for bs in &base.scalars {
        let Some(cs) = cand.scalar_stream(bs.model, &bs.metric) else {
            out.regress(format!(
                "{name}: model {} lost its `{}` stream",
                bs.model, bs.metric
            ));
            continue;
        };
        if cs.points.len() != bs.points.len() {
            out.regress(format!(
                "{name}: model {} `{}` has {} points, expected {}",
                bs.model,
                bs.metric,
                cs.points.len(),
                bs.points.len()
            ));
            continue;
        }
        if bs.metric == "loss" {
            let (b, c) = (bs.last().unwrap_or(f64::NAN), cs.last().unwrap_or(f64::NAN));
            let equal = (b.is_nan() && c.is_nan()) || (b - c).abs() <= cfg.loss_tol;
            if !equal {
                out.regress(format!(
                    "{name}: model {} final loss {c:.6} differs from {b:.6} (tol {})",
                    bs.model, cfg.loss_tol
                ));
            } else {
                out.note(format!("{name}: model {} final loss {c:.6} ok", bs.model));
            }
        }
    }
    // Sentinels: any new fault in the candidate gates; a cleared fault is
    // an improvement worth noting.
    let base_keys: Vec<_> = base.sentinels.iter().map(sentinel_key).collect();
    for e in &cand.sentinels {
        if !base_keys.contains(&sentinel_key(e)) {
            out.regress(format!(
                "{name}: new sentinel {} on model {} at step {}",
                e.kind.label(),
                e.model,
                e.step
            ));
        }
    }
    let cand_keys: Vec<_> = cand.sentinels.iter().map(sentinel_key).collect();
    for e in &base.sentinels {
        if !cand_keys.contains(&sentinel_key(e)) {
            out.note(format!(
                "{name}: sentinel {} on model {} cleared",
                e.kind.label(),
                e.model
            ));
        }
    }
    // Throughput only gates on request (machine-dependent).
    if let (Some(pct), Some(b), Some(c)) = (
        cfg.max_regress_pct,
        throughput_of(base),
        throughput_of(cand),
    ) {
        if b > 0.0 {
            let change = (c - b) / b * 100.0;
            if change < -pct {
                out.regress(format!(
                    "{name}: throughput {c:.1} is {:.1}% below baseline {b:.1} (budget {pct}%)",
                    -change
                ));
            } else {
                out.note(format!(
                    "{name}: throughput {c:.1} vs {b:.1} ({change:+.1}%)"
                ));
            }
        }
    }
}

/// Diffs two run reports experiment-by-experiment. See [`DiffCfg`] for
/// what gates.
pub fn diff_reports(base: &RunReport, cand: &RunReport, cfg: &DiffCfg) -> DiffOutcome {
    let mut out = DiffOutcome::default();
    for be in &base.experiments {
        match cand.experiment(&be.name) {
            Some(ce) => diff_experiment(be, ce, cfg, &mut out),
            None => out.regress(format!("experiment `{}` missing from candidate", be.name)),
        }
    }
    for ce in &cand.experiments {
        if base.experiment(&ce.name).is_none() {
            out.note(format!("experiment `{}` only in candidate", ce.name));
        }
    }
    out
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::F64(n) => Some(*n),
        Value::U64(n) => Some(*n as f64),
        Value::I64(n) => Some(*n as f64),
        _ => None,
    }
}

/// `(key, backend)` of one kernel bench record. Older bench files predate
/// the `backend`/`threads` columns; those records fall back to `?`
/// placeholders instead of being dropped from the diff.
fn record_key(rec: &Value) -> Option<(String, String)> {
    let s = |k: &str| {
        rec.get(k).and_then(|v| match v {
            Value::Str(s) => Some(s.clone()),
            other => as_f64(other).map(|n| n.to_string()),
        })
    };
    let backend = s("backend").unwrap_or_else(|| "?".to_string());
    let threads = s("threads").unwrap_or_else(|| "?".to_string());
    Some((
        format!("{}/{}/{backend}@{threads}T", s("op")?, s("shape")?),
        backend,
    ))
}

/// Upper bound on `scope_overhead_pct` in a bench file — hfta-scope must
/// stay under 5% of a fused training step (ISSUE acceptance gate).
pub const SCOPE_OVERHEAD_BUDGET_PCT: f64 = 5.0;

/// Diffs two `BENCH_*.json` value trees record-by-record on `gflops`,
/// plus the headline `fused_conv_speedup` and `scope_overhead_pct`
/// figures. Throughput always gates here, at
/// `cfg.max_regress_pct.unwrap_or(10.0)` percent. `BENCH_mem.json`
/// records (keyed by `model`/`b`) gate on `peak_bytes`, `savings_ratio`
/// and `steady_fresh_allocs` — see [`DiffCfg::max_mem_regress_pct`].
/// `BENCH_serve.json` records (keyed by `policy`) gate on p50/p99 queue
/// wait (may not grow) and fleet occupancy (may not shrink).
/// `BENCH_plan.json` records (keyed by `plan`) gate on the simulated
/// per-plan step time, the partial-fusion speedup headline, the fused
/// fraction, and the bit-identity flag — see [`diff_plan_records`].
///
/// Format skew is tolerated in both directions: records lacking the newer
/// optional fields (`backend`, `threads`, `bytes_per_iter`) still diff by
/// a fallback key, a backend column wholly absent from the candidate only
/// notes, and the `scaling_efficiency` comparison is skipped when either
/// file predates it.
pub fn diff_bench(base: &Value, cand: &Value, cfg: &DiffCfg) -> DiffOutcome {
    let mut out = DiffOutcome::default();
    let pct = cfg.max_regress_pct.unwrap_or(10.0);
    let gate_drop = |out: &mut DiffOutcome, what: &str, b: f64, c: f64| {
        if b <= 0.0 {
            return;
        }
        let change = (c - b) / b * 100.0;
        if change < -pct {
            out.regress(format!(
                "{what}: {c:.3} is {:.1}% below baseline {b:.3} (budget {pct}%)",
                -change
            ));
        } else {
            out.note(format!("{what}: {c:.3} vs {b:.3} ({change:+.1}%)"));
        }
    };
    // Records matched by (op, shape, backend, threads), compared on GFLOP/s.
    let records = |v: &Value| -> Vec<(String, String, f64)> {
        match v.get("records") {
            Some(Value::Array(items)) => items
                .iter()
                .filter_map(|r| {
                    let (key, backend) = record_key(r)?;
                    Some((key, backend, as_f64(r.get("gflops")?)?))
                })
                .collect(),
            _ => Vec::new(),
        }
    };
    let cand_records = records(cand);
    for (key, backend, b) in records(base) {
        match cand_records.iter().find(|(k, _, _)| *k == key) {
            Some((_, _, c)) => gate_drop(&mut out, &key, b, *c),
            // A whole backend column absent from the candidate is
            // environmental (e.g. simd rows on a host without AVX2, or a
            // bench file predating the backend matrix) — note, don't gate.
            // A missing record within a backend the candidate does report
            // is a genuine regression.
            None if !cand_records.iter().any(|(_, be, _)| *be == backend) => {
                out.note(format!(
                    "{key}: `{backend}` rows absent from candidate (skipped)"
                ));
            }
            None => out.regress(format!("{key}: record missing from candidate")),
        }
    }
    // Thread-scaling records (newer bench files only): compared on the
    // 4T/1T efficiency ratio, silently skipped when either side predates
    // the field.
    let scalings = |v: &Value| -> Vec<(String, f64)> {
        match v.get("scaling_efficiency") {
            Some(Value::Array(items)) => items
                .iter()
                .filter_map(|r| {
                    let s = |k: &str| match r.get(k) {
                        Some(Value::Str(s)) => Some(s.clone()),
                        _ => None,
                    };
                    Some((
                        format!("scaling:{}/{}", s("op")?, s("shape")?),
                        as_f64(r.get("scaling_efficiency")?)?,
                    ))
                })
                .collect(),
            _ => Vec::new(),
        }
    };
    let cand_scaling = scalings(cand);
    if !cand_scaling.is_empty() {
        for (key, b) in scalings(base) {
            if let Some((_, c)) = cand_scaling.iter().find(|(k, _)| *k == key) {
                gate_drop(&mut out, &key, b, *c);
            }
        }
    }
    if let (Some(b), Some(c)) = (
        base.get("fused_conv_speedup").and_then(as_f64),
        cand.get("fused_conv_speedup").and_then(as_f64),
    ) {
        gate_drop(&mut out, "fused_conv_speedup", b, c);
    }
    // Lower is better for the scope overhead; gate on the absolute budget.
    if let Some(c) = cand.get("scope_overhead_pct").and_then(as_f64) {
        if c > SCOPE_OVERHEAD_BUDGET_PCT {
            out.regress(format!(
                "scope_overhead_pct: {c:.2}% exceeds the {SCOPE_OVERHEAD_BUDGET_PCT}% budget"
            ));
        } else {
            out.note(format!(
                "scope_overhead_pct: {c:.2}% (budget {SCOPE_OVERHEAD_BUDGET_PCT}%)"
            ));
        }
    }
    diff_mem_records(base, cand, cfg, &mut out);
    diff_serve_records(base, cand, cfg, &mut out);
    diff_plan_records(base, cand, cfg, &mut out);
    out
}

/// One parsed `BENCH_mem.json` record: key plus the gated fields.
struct MemFields {
    key: String,
    peak_bytes: f64,
    savings_ratio: f64,
    steady_fresh_allocs: f64,
}

fn mem_records(v: &Value) -> Vec<MemFields> {
    let Some(Value::Array(items)) = v.get("records") else {
        return Vec::new();
    };
    items
        .iter()
        .filter_map(|r| {
            let model = match r.get("model")? {
                Value::Str(s) => s.clone(),
                _ => return None,
            };
            Some(MemFields {
                key: format!("mem:{}/B={}", model, as_f64(r.get("b")?)?),
                peak_bytes: as_f64(r.get("peak_bytes")?)?,
                savings_ratio: as_f64(r.get("savings_ratio")?)?,
                steady_fresh_allocs: as_f64(r.get("steady_fresh_allocs")?)?,
            })
        })
        .collect()
}

/// Gates the memory records of a bench diff: `peak_bytes` may not grow and
/// `savings_ratio` may not shrink by more than [`DiffCfg::max_mem_regress_pct`]
/// (default 10%), and a candidate record with nonzero steady-state fresh
/// allocations always regresses (the zero-malloc claim is absolute).
/// Records without the memory fields (e.g. kernel throughput records) are
/// skipped.
fn diff_mem_records(base: &Value, cand: &Value, cfg: &DiffCfg, out: &mut DiffOutcome) {
    let pct = cfg.max_mem_regress_pct.unwrap_or(10.0);
    let cand_recs = mem_records(cand);
    for b in mem_records(base) {
        let Some(c) = cand_recs.iter().find(|c| c.key == b.key) else {
            out.regress(format!("{}: record missing from candidate", b.key));
            continue;
        };
        if b.peak_bytes > 0.0 {
            let change = (c.peak_bytes - b.peak_bytes) / b.peak_bytes * 100.0;
            if change > pct {
                out.regress(format!(
                    "{} peak_bytes: {:.0} is {change:.1}% above baseline {:.0} (budget {pct}%)",
                    b.key, c.peak_bytes, b.peak_bytes
                ));
            } else {
                out.note(format!(
                    "{} peak_bytes: {:.0} vs {:.0} ({change:+.1}%)",
                    b.key, c.peak_bytes, b.peak_bytes
                ));
            }
        }
        if b.savings_ratio > 0.0 {
            let change = (c.savings_ratio - b.savings_ratio) / b.savings_ratio * 100.0;
            if change < -pct {
                out.regress(format!(
                    "{} savings_ratio: {:.3} is {:.1}% below baseline {:.3} (budget {pct}%)",
                    b.key, c.savings_ratio, -change, b.savings_ratio
                ));
            } else {
                out.note(format!(
                    "{} savings_ratio: {:.3} vs {:.3} ({change:+.1}%)",
                    b.key, c.savings_ratio, b.savings_ratio
                ));
            }
        }
        if c.steady_fresh_allocs > 0.0 {
            out.regress(format!(
                "{}: {} steady-state fresh allocations (must be 0)",
                b.key, c.steady_fresh_allocs
            ));
        }
    }
}

/// One parsed `BENCH_serve.json` record: the per-policy serving SLOs.
struct ServeFields {
    key: String,
    queue_wait_p50_us: f64,
    queue_wait_p99_us: f64,
    occupancy: f64,
}

fn serve_records(v: &Value) -> Vec<ServeFields> {
    let Some(Value::Array(items)) = v.get("records") else {
        return Vec::new();
    };
    items
        .iter()
        .filter_map(|r| {
            // Serve records are the ones carrying queue-latency SLOs.
            let policy = match r.get("policy")? {
                Value::Str(s) => s.clone(),
                _ => return None,
            };
            Some(ServeFields {
                key: format!("serve:{policy}"),
                queue_wait_p50_us: as_f64(r.get("queue_wait_p50_us")?)?,
                queue_wait_p99_us: as_f64(r.get("queue_wait_p99_us")?)?,
                occupancy: as_f64(r.get("occupancy")?)?,
            })
        })
        .collect()
}

/// Gates the serving records of a bench diff: per-policy p50/p99 queue
/// wait may not grow, and fleet occupancy may not shrink, by more than
/// `cfg.max_regress_pct.unwrap_or(10.0)` percent. Records without the
/// serve fields (kernel or memory records) are skipped.
fn diff_serve_records(base: &Value, cand: &Value, cfg: &DiffCfg, out: &mut DiffOutcome) {
    let pct = cfg.max_regress_pct.unwrap_or(10.0);
    let cand_recs = serve_records(cand);
    let base_recs = serve_records(base);
    // Higher is worse for queue latency.
    let gate_grow = |out: &mut DiffOutcome, what: String, b: f64, c: f64| {
        if b <= 0.0 {
            return;
        }
        let change = (c - b) / b * 100.0;
        if change > pct {
            out.regress(format!(
                "{what}: {c:.1} is {change:.1}% above baseline {b:.1} (budget {pct}%)"
            ));
        } else {
            out.note(format!("{what}: {c:.1} vs {b:.1} ({change:+.1}%)"));
        }
    };
    for b in base_recs {
        let Some(c) = cand_recs.iter().find(|c| c.key == b.key) else {
            out.regress(format!("{}: record missing from candidate", b.key));
            continue;
        };
        gate_grow(
            out,
            format!("{} queue_wait_p50_us", b.key),
            b.queue_wait_p50_us,
            c.queue_wait_p50_us,
        );
        gate_grow(
            out,
            format!("{} queue_wait_p99_us", b.key),
            b.queue_wait_p99_us,
            c.queue_wait_p99_us,
        );
        // Lower is worse for occupancy.
        if b.occupancy > 0.0 {
            let change = (c.occupancy - b.occupancy) / b.occupancy * 100.0;
            if change < -pct {
                out.regress(format!(
                    "{} occupancy: {:.3} is {:.1}% below baseline {:.3} (budget {pct}%)",
                    b.key, c.occupancy, -change, b.occupancy
                ));
            } else {
                out.note(format!(
                    "{} occupancy: {:.3} vs {:.3} ({change:+.1}%)",
                    b.key, c.occupancy, b.occupancy
                ));
            }
        }
    }
}

/// One parsed `BENCH_plan.json` record: per-execution-plan simulated cost.
struct PlanFields {
    key: String,
    sim_step_us: f64,
}

fn plan_records(v: &Value) -> Vec<PlanFields> {
    let Some(Value::Array(items)) = v.get("records") else {
        return Vec::new();
    };
    items
        .iter()
        .filter_map(|r| {
            // Plan records are the ones carrying per-plan simulated costs.
            let plan = match r.get("plan")? {
                Value::Str(s) => s.clone(),
                _ => return None,
            };
            Some(PlanFields {
                key: format!("plan:{plan}"),
                sim_step_us: as_f64(r.get("sim_step_us")?)?,
            })
        })
        .collect()
}

/// Gates the fusion-planner records of a bench diff: per-plan simulated
/// step time (`sim_step_us`) may not grow, and the headline
/// `partial_fusion_speedup` may not drop, by more than
/// `cfg.max_regress_pct.unwrap_or(10.0)` percent. Both are priced on the
/// deterministic device model, so they are machine-independent; the
/// wall-clock columns (`wall_ms`, `steps_per_s`) are informational and
/// never gate. `fused_fraction` is pure planner output and must not
/// shrink at all, and a candidate reporting `bit_identical: false`
/// always regresses (planned execution must match serial bit-for-bit).
/// Records without the plan fields (kernel/mem/serve records) are
/// skipped.
fn diff_plan_records(base: &Value, cand: &Value, cfg: &DiffCfg, out: &mut DiffOutcome) {
    let pct = cfg.max_regress_pct.unwrap_or(10.0);
    let cand_recs = plan_records(cand);
    for b in plan_records(base) {
        let Some(c) = cand_recs.iter().find(|c| c.key == b.key) else {
            out.regress(format!("{}: record missing from candidate", b.key));
            continue;
        };
        // Higher is worse for simulated step time.
        if b.sim_step_us > 0.0 {
            let change = (c.sim_step_us - b.sim_step_us) / b.sim_step_us * 100.0;
            if change > pct {
                out.regress(format!(
                    "{} sim_step_us: {:.1} is {change:.1}% above baseline {:.1} (budget {pct}%)",
                    b.key, c.sim_step_us, b.sim_step_us
                ));
            } else {
                out.note(format!(
                    "{} sim_step_us: {:.1} vs {:.1} ({change:+.1}%)",
                    b.key, c.sim_step_us, b.sim_step_us
                ));
            }
        }
    }
    if let (Some(b), Some(c)) = (
        base.get("partial_fusion_speedup").and_then(as_f64),
        cand.get("partial_fusion_speedup").and_then(as_f64),
    ) {
        if b > 0.0 {
            let change = (c - b) / b * 100.0;
            if change < -pct {
                out.regress(format!(
                    "partial_fusion_speedup: {c:.3} is {:.1}% below baseline {b:.3} (budget {pct}%)",
                    -change
                ));
            } else {
                out.note(format!(
                    "partial_fusion_speedup: {c:.3} vs {b:.3} ({change:+.1}%)"
                ));
            }
        }
    }
    if let (Some(b), Some(c)) = (
        base.get("fused_fraction").and_then(as_f64),
        cand.get("fused_fraction").and_then(as_f64),
    ) {
        // Deterministic planner output: any shrink means the planner now
        // fuses less of the same sweep.
        if c < b - 1e-12 {
            out.regress(format!(
                "fused_fraction: {c:.4} shrank from baseline {b:.4} (planner fuses less)"
            ));
        } else {
            out.note(format!("fused_fraction: {c:.4} vs {b:.4}"));
        }
    }
    if let Some(Value::Bool(ok)) = cand.get("bit_identical") {
        if *ok {
            out.note("bit_identical: true".to_string());
        } else {
            out.regress(
                "bit_identical: false (planned execution diverged from serial)".to_string(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfta_telemetry::{ScalarPoint, ScalarStream, SentinelKind};

    fn exp_with_losses(name: &str, losses: &[(u64, f64)]) -> ExperimentReport {
        ExperimentReport {
            name: name.into(),
            wall_ms: 1.0,
            steps: vec![],
            counters: vec![],
            gauges: vec![],
            histograms: vec![],
            series: vec![],
            scalars: losses
                .iter()
                .map(|&(model, value)| ScalarStream {
                    run: name.into(),
                    model,
                    metric: "loss".into(),
                    points: vec![ScalarPoint { step: 0, value }],
                })
                .collect(),
            sentinels: vec![],
            ops: vec![],
            flight: vec![],
            trial_slo: vec![],
        }
    }

    fn run(exps: Vec<ExperimentReport>) -> RunReport {
        RunReport {
            name: "r".into(),
            wall_ms: 1.0,
            trace_events: 0,
            experiments: exps,
        }
    }

    #[test]
    fn identical_reports_do_not_regress() {
        let a = run(vec![exp_with_losses("e", &[(0, 1.0), (1, 2.0)])]);
        let out = diff_reports(&a, &a.clone(), &DiffCfg::default());
        assert!(!out.regressed(), "{:?}", out.regressions);
        assert_eq!(out.lines.len(), 2);
    }

    #[test]
    fn loss_drift_and_lost_streams_regress() {
        let a = run(vec![exp_with_losses("e", &[(0, 1.0), (1, 2.0)])]);
        let drift = run(vec![exp_with_losses("e", &[(0, 1.0), (1, 2.5)])]);
        assert!(diff_reports(&a, &drift, &DiffCfg::default()).regressed());
        let lost = run(vec![exp_with_losses("e", &[(0, 1.0)])]);
        assert!(diff_reports(&a, &lost, &DiffCfg::default()).regressed());
        let gone = run(vec![]);
        assert!(diff_reports(&a, &gone, &DiffCfg::default()).regressed());
    }

    #[test]
    fn nan_losses_compare_equal_to_nan() {
        // The vendored JSON round-trips non-finite values through `null`,
        // so a poisoned model's NaN loss must diff clean against itself.
        let a = run(vec![exp_with_losses("e", &[(0, f64::NAN)])]);
        assert!(!diff_reports(&a, &a.clone(), &DiffCfg::default()).regressed());
        let healthy = run(vec![exp_with_losses("e", &[(0, 1.0)])]);
        assert!(diff_reports(&a, &healthy, &DiffCfg::default()).regressed());
    }

    #[test]
    fn new_sentinel_regresses_cleared_one_does_not() {
        let mut base = exp_with_losses("e", &[(0, 1.0)]);
        let mut cand = base.clone();
        cand.sentinels.push(hfta_telemetry::SentinelEvent {
            step: 1,
            model: 0,
            kind: SentinelKind::NonFiniteGrad,
            value: f64::NAN,
            quarantined: true,
        });
        let out = diff_reports(
            &run(vec![base.clone()]),
            &run(vec![cand.clone()]),
            &DiffCfg::default(),
        );
        assert!(out.regressed());
        // Swapped direction: the fault cleared — informational only.
        std::mem::swap(&mut base, &mut cand);
        let out = diff_reports(&run(vec![base]), &run(vec![cand]), &DiffCfg::default());
        assert!(!out.regressed());
        assert!(out.lines.iter().any(|l| l.contains("cleared")));
    }

    #[test]
    fn throughput_gate_only_fires_when_configured() {
        let mk = |eps: f64| {
            let mut e = exp_with_losses("e", &[(0, 1.0)]);
            e.gauges.push(hfta_telemetry::CounterSample {
                name: "hfta4/throughput_eps".into(),
                value: eps,
            });
            run(vec![e])
        };
        let base = mk(1000.0);
        let slow = mk(850.0); // 15% drop
        assert!(!diff_reports(&base, &slow, &DiffCfg::default()).regressed());
        let gated = DiffCfg {
            max_regress_pct: Some(10.0),
            ..DiffCfg::default()
        };
        assert!(diff_reports(&base, &slow, &gated).regressed());
        assert!(!diff_reports(&base, &mk(950.0), &gated).regressed());
    }

    fn bench_json(gflops: f64, speedup: f64) -> Value {
        let text = format!(
            r#"{{"records": [{{"op": "gemm", "shape": "64x64", "backend": "blocked",
                 "threads": 4, "ns_per_iter": 10.0, "gflops": {gflops}}}],
                "fused_conv_speedup": {speedup}, "scope_overhead_pct": 1.0}}"#
        );
        serde_json::from_str(&text).unwrap()
    }

    #[test]
    fn bench_diff_gates_ten_percent_throughput_regressions() {
        let base = bench_json(100.0, 2.0);
        // 12% gflops drop: over the default 10% budget.
        let out = diff_bench(&base, &bench_json(88.0, 2.0), &DiffCfg::default());
        assert!(out.regressed());
        // 5% drop passes by default but fails a 2% budget.
        let out = diff_bench(&base, &bench_json(95.0, 2.0), &DiffCfg::default());
        assert!(!out.regressed());
        let tight = DiffCfg {
            max_regress_pct: Some(2.0),
            ..DiffCfg::default()
        };
        assert!(diff_bench(&base, &bench_json(95.0, 2.0), &tight).regressed());
        // The headline speedup gates too.
        assert!(diff_bench(&base, &bench_json(100.0, 1.5), &DiffCfg::default()).regressed());
    }

    #[test]
    fn bench_diff_gates_scope_overhead_budget() {
        let base = bench_json(100.0, 2.0);
        let mut cand = bench_json(100.0, 2.0);
        if let Value::Object(fields) = &mut cand {
            for (k, v) in fields.iter_mut() {
                if k == "scope_overhead_pct" {
                    *v = Value::F64(7.5);
                }
            }
        }
        let out = diff_bench(&base, &cand, &DiffCfg::default());
        assert!(out.regressed());
        assert!(out.regressions[0].contains("scope_overhead_pct"));
    }

    #[test]
    fn bench_diff_tolerates_records_without_backend_columns() {
        // A pre-backend-matrix bench file: records carry neither `backend`
        // nor `threads` (nor `bytes_per_iter`). It must diff clean against
        // itself via the fallback key rather than being silently dropped.
        let old: Value = serde_json::from_str(
            r#"{"records": [{"op": "gemm", "shape": "64x64", "ns_per_iter": 10.0,
                 "gflops": 100.0}], "fused_conv_speedup": 2.0}"#,
        )
        .unwrap();
        let out = diff_bench(&old, &old.clone(), &DiffCfg::default());
        assert!(!out.regressed(), "{:?}", out.regressions);
        assert!(out.lines.iter().any(|l| l.contains("gemm/64x64/?@?T")));
        // Old baseline vs new-format candidate: the `?` backend column is
        // absent from the candidate — informational, not gating.
        let out = diff_bench(&old, &bench_json(100.0, 2.0), &DiffCfg::default());
        assert!(!out.regressed(), "{:?}", out.regressions);
        assert!(out
            .lines
            .iter()
            .any(|l| l.contains("absent from candidate")));
    }

    #[test]
    fn bench_diff_skips_absent_backend_columns_but_gates_within_present_ones() {
        let two_backends: Value = serde_json::from_str(
            r#"{"records": [
                 {"op": "gemm", "shape": "a", "backend": "blocked", "threads": 1, "gflops": 50.0},
                 {"op": "gemm", "shape": "a", "backend": "simd", "threads": 1, "gflops": 150.0}]}"#,
        )
        .unwrap();
        // Candidate ran on a host without AVX2: simd rows absent entirely.
        let blocked_only: Value = serde_json::from_str(
            r#"{"records": [
                 {"op": "gemm", "shape": "a", "backend": "blocked", "threads": 1, "gflops": 50.0}]}"#,
        )
        .unwrap();
        let out = diff_bench(&two_backends, &blocked_only, &DiffCfg::default());
        assert!(!out.regressed(), "{:?}", out.regressions);
        assert!(out
            .lines
            .iter()
            .any(|l| l.contains("simd") && l.contains("absent")));
        // But losing one record of a backend the candidate does report gates.
        let missing_shape: Value = serde_json::from_str(
            r#"{"records": [
                 {"op": "gemm", "shape": "b", "backend": "blocked", "threads": 1, "gflops": 50.0},
                 {"op": "gemm", "shape": "a", "backend": "simd", "threads": 1, "gflops": 150.0}]}"#,
        )
        .unwrap();
        let out = diff_bench(&two_backends, &missing_shape, &DiffCfg::default());
        assert!(out.regressed());
        assert!(out.regressions[0].contains("blocked@1T"));
    }

    #[test]
    fn bench_diff_gates_scaling_efficiency_only_when_both_report_it() {
        let with_scaling = |eff: f64| -> Value {
            serde_json::from_str(&format!(
                r#"{{"records": [], "scaling_efficiency": [
                     {{"op": "gemm", "shape": "a", "scaling_efficiency": {eff}}}]}}"#
            ))
            .unwrap()
        };
        // A 20% efficiency drop gates at the default 10% budget.
        let out = diff_bench(&with_scaling(3.0), &with_scaling(2.4), &DiffCfg::default());
        assert!(out.regressed());
        assert!(out.regressions[0].contains("scaling:gemm/a"));
        // Candidate predates the field: skipped, not regressed.
        let old: Value = serde_json::from_str(r#"{"records": []}"#).unwrap();
        let out = diff_bench(&with_scaling(3.0), &old, &DiffCfg::default());
        assert!(!out.regressed(), "{:?}", out.regressions);
    }

    fn mem_json(peak: f64, savings: f64, fresh: f64) -> Value {
        let text = format!(
            r#"{{"records": [
                 {{"model": "dcgan_d", "b": 1, "peak_bytes": 100000.0,
                   "savings_ratio": 1.0, "steady_fresh_allocs": 0}},
                 {{"model": "dcgan_d", "b": 4, "peak_bytes": {peak},
                   "savings_ratio": {savings}, "steady_fresh_allocs": {fresh}}}]}}"#
        );
        serde_json::from_str(&text).unwrap()
    }

    #[test]
    fn mem_diff_gates_peak_growth_and_savings_drop() {
        let base = mem_json(300000.0, 1.33, 0.0);
        // Identical: clean, with informational lines for both fields.
        let out = diff_bench(&base, &mem_json(300000.0, 1.33, 0.0), &DiffCfg::default());
        assert!(!out.regressed(), "{:?}", out.regressions);
        assert!(out.lines.iter().any(|l| l.contains("peak_bytes")));
        // 20% peak growth: over the default 10% budget.
        let out = diff_bench(&base, &mem_json(360000.0, 1.33, 0.0), &DiffCfg::default());
        assert!(out.regressed());
        assert!(out.regressions[0].contains("peak_bytes"));
        // 5% growth passes by default but fails a 2% budget.
        assert!(
            !diff_bench(&base, &mem_json(315000.0, 1.33, 0.0), &DiffCfg::default()).regressed()
        );
        let tight = DiffCfg {
            max_mem_regress_pct: Some(2.0),
            ..DiffCfg::default()
        };
        assert!(diff_bench(&base, &mem_json(315000.0, 1.33, 0.0), &tight).regressed());
        // Savings ratio dropping 15% regresses; rising never does.
        let out = diff_bench(&base, &mem_json(300000.0, 1.13, 0.0), &DiffCfg::default());
        assert!(out.regressed());
        assert!(out.regressions[0].contains("savings_ratio"));
        assert!(
            !diff_bench(&base, &mem_json(300000.0, 1.50, 0.0), &DiffCfg::default()).regressed()
        );
    }

    #[test]
    fn mem_diff_fresh_allocs_gate_is_absolute() {
        let base = mem_json(300000.0, 1.33, 0.0);
        let out = diff_bench(&base, &mem_json(300000.0, 1.33, 2.0), &DiffCfg::default());
        assert!(out.regressed());
        assert!(out.regressions[0].contains("fresh allocations"));
    }

    #[test]
    fn mem_diff_flags_missing_records_and_skips_kernel_records() {
        let base = mem_json(300000.0, 1.33, 0.0);
        let only_b1: Value = serde_json::from_str(
            r#"{"records": [{"model": "dcgan_d", "b": 1, "peak_bytes": 100000.0,
                 "savings_ratio": 1.0, "steady_fresh_allocs": 0}]}"#,
        )
        .unwrap();
        let out = diff_bench(&base, &only_b1, &DiffCfg::default());
        assert!(out
            .regressions
            .iter()
            .any(|r| r.contains("mem:dcgan_d/B=4") && r.contains("missing")));
        // Kernel bench files have no mem fields: the mem gate stays silent.
        let kernels = bench_json(100.0, 2.0);
        let out = diff_bench(&kernels, &bench_json(100.0, 2.0), &DiffCfg::default());
        assert!(!out.regressed(), "{:?}", out.regressions);
        assert!(!out.lines.iter().any(|l| l.contains("mem:")));
    }

    fn serve_json(p50: f64, p99: f64, occ: f64) -> Value {
        let text = format!(
            r#"{{"records": [
                 {{"policy": "static", "queue_wait_p50_us": 900.0,
                   "queue_wait_p99_us": 4000.0, "occupancy": 0.50}},
                 {{"policy": "fair-share", "queue_wait_p50_us": {p50},
                   "queue_wait_p99_us": {p99}, "occupancy": {occ}}}]}}"#
        );
        serde_json::from_str(&text).unwrap()
    }

    #[test]
    fn serve_diff_gates_queue_latency_growth_and_occupancy_drop() {
        let base = serve_json(500.0, 2000.0, 0.60);
        // Identical: clean, with informational lines for all three gauges.
        let out = diff_bench(&base, &serve_json(500.0, 2000.0, 0.60), &DiffCfg::default());
        assert!(!out.regressed(), "{:?}", out.regressions);
        assert!(out
            .lines
            .iter()
            .any(|l| l.contains("serve:fair-share queue_wait_p99_us")));
        assert!(out
            .lines
            .iter()
            .any(|l| l.contains("serve:static occupancy")));
        // 25% p99 growth: over the default 10% budget.
        let out = diff_bench(&base, &serve_json(500.0, 2500.0, 0.60), &DiffCfg::default());
        assert!(out.regressed());
        assert!(out.regressions[0].contains("queue_wait_p99_us"));
        // p50 gates too.
        let out = diff_bench(&base, &serve_json(600.0, 2000.0, 0.60), &DiffCfg::default());
        assert!(out.regressed());
        assert!(out.regressions[0].contains("queue_wait_p50_us"));
        // 5% growth passes by default but fails a 2% budget.
        assert!(
            !diff_bench(&base, &serve_json(500.0, 2100.0, 0.60), &DiffCfg::default()).regressed()
        );
        let tight = DiffCfg {
            max_regress_pct: Some(2.0),
            ..DiffCfg::default()
        };
        assert!(diff_bench(&base, &serve_json(500.0, 2100.0, 0.60), &tight).regressed());
        // Occupancy dropping 20% regresses; improving latency never does.
        let out = diff_bench(&base, &serve_json(500.0, 2000.0, 0.48), &DiffCfg::default());
        assert!(out.regressed());
        assert!(out.regressions[0].contains("occupancy"));
        assert!(
            !diff_bench(&base, &serve_json(300.0, 1000.0, 0.80), &DiffCfg::default()).regressed()
        );
    }

    #[test]
    fn serve_diff_flags_missing_policy_and_skips_other_records() {
        let base = serve_json(500.0, 2000.0, 0.60);
        let static_only: Value = serde_json::from_str(
            r#"{"records": [{"policy": "static", "queue_wait_p50_us": 900.0,
                 "queue_wait_p99_us": 4000.0, "occupancy": 0.50}]}"#,
        )
        .unwrap();
        let out = diff_bench(&base, &static_only, &DiffCfg::default());
        assert!(out
            .regressions
            .iter()
            .any(|r| r.contains("serve:fair-share") && r.contains("missing")));
        // Kernel and memory bench files have no serve fields: stay silent.
        let out = diff_bench(
            &mem_json(300000.0, 1.33, 0.0),
            &mem_json(300000.0, 1.33, 0.0),
            &DiffCfg::default(),
        );
        assert!(!out.lines.iter().any(|l| l.contains("serve:")));
    }

    fn plan_json(fused_us: f64, speedup: f64, fraction: f64, bit_identical: bool) -> Value {
        let text = format!(
            r#"{{"records": [
                 {{"plan": "serial", "sim_step_us": 34607.5, "wall_ms": 100.0,
                   "steps_per_s": 10.0}},
                 {{"plan": "partial-fusion", "sim_step_us": {fused_us},
                   "wall_ms": 90.0, "steps_per_s": 11.0}}],
                 "partial_fusion_speedup": {speedup},
                 "fused_fraction": {fraction},
                 "bit_identical": {bit_identical}}}"#
        );
        serde_json::from_str(&text).unwrap()
    }

    #[test]
    fn plan_diff_gates_sim_step_growth_and_speedup_drop() {
        let base = plan_json(12417.7, 2.79, 0.824, true);
        // Identical: clean, with informational lines for every gauge.
        let out = diff_bench(
            &base,
            &plan_json(12417.7, 2.79, 0.824, true),
            &DiffCfg::default(),
        );
        assert!(!out.regressed(), "{:?}", out.regressions);
        assert!(out
            .lines
            .iter()
            .any(|l| l.contains("plan:partial-fusion sim_step_us")));
        assert!(out.lines.iter().any(|l| l.contains("fused_fraction")));
        // 20% simulated-step growth: over the default 10% budget.
        let out = diff_bench(
            &base,
            &plan_json(14901.2, 2.79, 0.824, true),
            &DiffCfg::default(),
        );
        assert!(out.regressed());
        assert!(out.regressions[0].contains("sim_step_us"));
        // 5% growth passes by default but fails a 2% budget.
        assert!(!diff_bench(
            &base,
            &plan_json(13038.6, 2.79, 0.824, true),
            &DiffCfg::default()
        )
        .regressed());
        let tight = DiffCfg {
            max_regress_pct: Some(2.0),
            ..DiffCfg::default()
        };
        assert!(diff_bench(&base, &plan_json(13038.6, 2.79, 0.824, true), &tight).regressed());
        // Speedup dropping 15% regresses; a faster plan never does.
        let out = diff_bench(
            &base,
            &plan_json(12417.7, 2.37, 0.824, true),
            &DiffCfg::default(),
        );
        assert!(out.regressed());
        assert!(out.regressions[0].contains("partial_fusion_speedup"));
        assert!(!diff_bench(
            &base,
            &plan_json(11000.0, 3.10, 0.824, true),
            &DiffCfg::default()
        )
        .regressed());
    }

    #[test]
    fn plan_diff_fused_fraction_and_bit_identity_gates_are_absolute() {
        let base = plan_json(12417.7, 2.79, 0.824, true);
        // Any fused-fraction shrink regresses, however small.
        let out = diff_bench(
            &base,
            &plan_json(12417.7, 2.79, 0.823, true),
            &DiffCfg::default(),
        );
        assert!(out.regressed());
        assert!(out.regressions[0].contains("fused_fraction"));
        // Growing is fine.
        assert!(!diff_bench(
            &base,
            &plan_json(12417.7, 2.79, 0.900, true),
            &DiffCfg::default()
        )
        .regressed());
        // A candidate that lost bit-identity always regresses.
        let out = diff_bench(
            &base,
            &plan_json(12417.7, 2.79, 0.824, false),
            &DiffCfg::default(),
        );
        assert!(out.regressed());
        assert!(out.regressions[0].contains("bit_identical"));
    }

    #[test]
    fn plan_diff_flags_missing_plan_and_skips_other_records() {
        let base = plan_json(12417.7, 2.79, 0.824, true);
        let serial_only: Value = serde_json::from_str(
            r#"{"records": [{"plan": "serial", "sim_step_us": 34607.5,
                 "wall_ms": 100.0, "steps_per_s": 10.0}]}"#,
        )
        .unwrap();
        let out = diff_bench(&base, &serial_only, &DiffCfg::default());
        assert!(out
            .regressions
            .iter()
            .any(|r| r.contains("plan:partial-fusion") && r.contains("missing")));
        // Kernel, memory and serve bench files have no plan fields: silent.
        let out = diff_bench(
            &serve_json(500.0, 2000.0, 0.60),
            &serve_json(500.0, 2000.0, 0.60),
            &DiffCfg::default(),
        );
        assert!(!out.lines.iter().any(|l| l.contains("plan:")));
    }

    #[test]
    fn load_report_detects_both_kinds() {
        assert!(matches!(
            load_report(r#"{"records": [], "fused_conv_speedup": 1.0}"#),
            Ok(LoadedReport::Bench(_))
        ));
        let run_json = r#"{"name": "x", "wall_ms": 1.0, "trace_events": 0, "experiments": []}"#;
        assert!(matches!(load_report(run_json), Ok(LoadedReport::Run(_))));
        assert!(load_report(r#"{"something": 1}"#).is_err());
        assert!(load_report("not json").is_err());
    }
}
