//! Rendering for the `probe_report` bin: roofline attribution tables,
//! per-lane utilization, and the Fig-8-style per-device utilization
//! timeline, all computed from the `*.report.json` files a `--trace` run
//! leaves behind.
//!
//! The roofline side leans entirely on `hfta-probe`: op aggregates come
//! from [`ExperimentReport::ops`], peaks from the calibrated
//! [`MachinePeaks`] database, and this module only formats the result. The
//! timeline side re-samples the recorded utilization counter series
//! (`sched/<device>/util`, `<label>/smi_util`) onto a fixed-width ASCII
//! strip so a terminal shows what Perfetto would plot.

use std::path::{Path, PathBuf};

use hfta_probe::{
    classify_experiment, per_lane_utilization, HistoryRecord, OpUtil, PeakEntry, HISTORY_SCHEMA,
};
use hfta_telemetry::{CounterSeries, ExperimentReport, RunReport};

/// Loads every `*.report.json` under `dir`, sorted by file name.
///
/// # Errors
///
/// Fails when the directory is unreadable or a report file does not parse.
pub fn collect_run_reports(dir: &Path) -> Result<Vec<(PathBuf, RunReport)>, String> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("reading {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .is_some_and(|n| n.to_string_lossy().ends_with(".report.json"))
        })
        .collect();
    paths.sort();
    let mut out = Vec::with_capacity(paths.len());
    for path in paths {
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let run: RunReport =
            serde_json::from_str(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        out.push((path, run));
    }
    Ok(out)
}

/// Prints the per-op roofline table for one experiment; returns `false`
/// (and prints nothing) when the experiment recorded no op samples.
pub fn print_roofline(exp: &ExperimentReport, peak: &PeakEntry) -> bool {
    let rows = classify_experiment(exp, peak);
    if rows.is_empty() {
        return false;
    }
    println!(
        "  roofline @ {} threads: peak {:.1} GFLOP/s, {:.1} GB/s, ridge {:.2} FLOPs/B",
        peak.threads,
        peak.gflops,
        peak.stream_gbps,
        peak.ridge()
    );
    println!(
        "  {:<24} {:>8} {:>10} {:>10} {:>10} {:>7}  bound",
        "op", "calls", "FLOPs/B", "GFLOP/s", "ceiling", "%peak"
    );
    for r in &rows {
        println!(
            "  {:<24} {:>8} {:>10.2} {:>10.2} {:>10.2} {:>6.1}%  {}",
            r.name,
            r.calls,
            r.intensity,
            r.attained_gflops,
            r.attainable_gflops,
            r.pct_of_peak,
            r.bound.name()
        );
    }
    true
}

/// Prints the per-lane attribution table (one row per fused model lane).
pub fn print_lanes(exp: &ExperimentReport) {
    let lanes = per_lane_utilization(exp);
    if lanes.iter().all(|l| l.flops == 0.0) {
        return;
    }
    println!(
        "  {:<6} {:>14} {:>14} {:>10}",
        "lane", "GFLOPs", "GB moved", "GFLOP/s"
    );
    for l in &lanes {
        println!(
            "  {:<6} {:>14.3} {:>14.3} {:>10.2}",
            l.model,
            l.flops / 1e9,
            l.bytes / 1e9,
            l.gflops
        );
    }
}

/// The utilization counter series worth a timeline strip: the scheduler's
/// per-device `sched/<name>/util` and the simulated `…/smi_util` streams.
pub fn utilization_series(exp: &ExperimentReport) -> Vec<&CounterSeries> {
    exp.series
        .iter()
        .filter(|s| s.name.ends_with("/util") || s.name.ends_with("smi_util"))
        .collect()
}

/// Character ramp for one timeline cell, dimmest to brightest.
const RAMP: &[u8] = b" .:-=+*#%@";

/// Re-samples a counter series onto `cols` equal time buckets with
/// carry-forward semantics (a counter holds its value until the next
/// sample) and renders one ASCII strip, normalized to the series maximum.
pub fn render_timeline(series: &CounterSeries, cols: usize) -> String {
    let pts = &series.points;
    if pts.is_empty() || cols == 0 {
        return String::new();
    }
    let t0 = pts.first().map(|p| p.t_us).unwrap_or(0.0);
    let t1 = pts.last().map(|p| p.t_us).unwrap_or(0.0);
    let peak = pts.iter().map(|p| p.value).fold(0.0f64, f64::max);
    let mut out = String::with_capacity(cols);
    for i in 0..cols {
        let t = if t1 > t0 {
            t0 + (i as f64 + 0.5) / cols as f64 * (t1 - t0)
        } else {
            t0
        };
        let value = pts
            .iter()
            .take_while(|p| p.t_us <= t)
            .last()
            .map(|p| p.value)
            .unwrap_or(0.0);
        let level = if peak > 0.0 {
            ((value / peak) * (RAMP.len() - 1) as f64).round() as usize
        } else {
            0
        };
        out.push(RAMP[level.min(RAMP.len() - 1)] as char);
    }
    out
}

/// Prints one timeline strip per utilization series in the experiment
/// (the paper's Fig-8 view: who was busy when, device by device).
pub fn print_timelines(exp: &ExperimentReport, cols: usize) {
    let series = utilization_series(exp);
    if series.is_empty() {
        return;
    }
    println!("  utilization timeline (left = run start, @ = series peak):");
    let width = series.iter().map(|s| s.name.len()).max().unwrap_or(0);
    for s in series {
        let peak = s.points.iter().map(|p| p.value).fold(0.0f64, f64::max);
        println!(
            "  {:<width$} |{}| peak {:.2}",
            s.name,
            render_timeline(s, cols),
            peak,
        );
    }
}

/// Summarizes one experiment's roofline classification as a perf-history
/// record ready for [`hfta_probe::PerfHistory::append`].
pub fn history_record(
    label: &str,
    exp: &ExperimentReport,
    peak: &PeakEntry,
    threads: u64,
    backend: &str,
) -> HistoryRecord {
    let ops = classify_experiment(exp, peak)
        .into_iter()
        .map(|r| OpUtil {
            name: r.name,
            pct_of_peak: r.pct_of_peak,
            gflops: r.attained_gflops,
            bound: r.bound.name().to_string(),
        })
        .collect();
    HistoryRecord {
        schema: HISTORY_SCHEMA,
        label: label.to_string(),
        git_rev: hfta_probe::git_rev(),
        threads,
        backend: backend.to_string(),
        ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfta_telemetry::SeriesPoint;

    fn series(name: &str, pts: &[(f64, f64)]) -> CounterSeries {
        CounterSeries {
            name: name.into(),
            points: pts
                .iter()
                .map(|&(t_us, value)| SeriesPoint { t_us, value })
                .collect(),
        }
    }

    #[test]
    fn timeline_carries_counter_values_forward() {
        // 0..50 µs at 1.0, 50..100 µs at 0.0: half bright, half dark.
        let s = series(
            "sched/V100#0/util",
            &[(0.0, 1.0), (50.0, 0.0), (100.0, 0.0)],
        );
        let strip = render_timeline(&s, 8);
        assert_eq!(strip.len(), 8);
        assert_eq!(&strip[..4], "@@@@");
        assert_eq!(&strip[4..], "    ");
    }

    #[test]
    fn timeline_normalizes_to_series_peak() {
        let s = series("x/util", &[(0.0, 2.0), (5.0, 4.0), (10.0, 4.0)]);
        let strip = render_timeline(&s, 2);
        // 2.0 is half of the 4.0 peak → mid-ramp, 4.0 → brightest.
        assert_eq!(strip.as_bytes()[1], b'@');
        assert!(strip.as_bytes()[0] != b'@' && strip.as_bytes()[0] != b' ');
    }

    #[test]
    fn empty_and_degenerate_series_render_safely() {
        assert_eq!(render_timeline(&series("e", &[]), 10), "");
        let flat = render_timeline(&series("f", &[(5.0, 0.7)]), 4);
        assert_eq!(flat, "@@@@");
    }

    #[test]
    fn utilization_series_filters_by_suffix() {
        let mut exp = ExperimentReport {
            name: "t".into(),
            wall_ms: 1.0,
            steps: vec![],
            counters: vec![],
            gauges: vec![],
            histograms: vec![],
            series: vec![
                series("sched/V100#0/util", &[(0.0, 1.0)]),
                series("v100/hfta8/smi_util", &[(0.0, 50.0)]),
                series("loss/model0", &[(0.0, 2.0)]),
            ],
            scalars: vec![],
            sentinels: vec![],
            ops: vec![],
            flight: vec![],
            trial_slo: vec![],
        };
        let names: Vec<&str> = utilization_series(&exp)
            .iter()
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(names, vec!["sched/V100#0/util", "v100/hfta8/smi_util"]);
        exp.series.clear();
        assert!(utilization_series(&exp).is_empty());
    }
}
