//! Shared command-line parsing for the bench binaries.
//!
//! Every bin in `src/bin/` used to hand-roll the same `--trace <dir>` /
//! `--bench-json <path>` / `--quick` loop; [`CommonArgs`] parses the flags
//! they all share (including the probe-layer `--probe-db`, `--history` and
//! `--max-drift`) in one place, in both `--flag value` and `--flag=value`
//! forms, and hands anything it does not recognize back in
//! [`CommonArgs::rest`] for bin-specific parsing.

use std::path::PathBuf;

use crate::scope_report::DiffOutcome;
use crate::telemetry_cli::TraceSession;

/// Flags shared across the bench binaries.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CommonArgs {
    /// `--quick`: shrink iteration counts for smoke runs.
    pub quick: bool,
    /// `--bench-json <path>`: machine-readable output file.
    pub bench_json: Option<String>,
    /// `--trace <dir>`: telemetry output directory (see [`TraceSession`]).
    pub trace: Option<PathBuf>,
    /// `--probe-db <path>`: cached machine-peak calibration file.
    pub probe_db: Option<PathBuf>,
    /// `--history <path>`: append-only perf-history JSONL file.
    pub history: Option<PathBuf>,
    /// `--max-drift <pct>`: drift-gate tolerance in percent.
    pub max_drift: Option<f64>,
    /// `--gate-scaling <ratio>`: minimum blocked-backend 4T/1T GFLOP/s
    /// ratio on large shapes; below it the bin exits non-zero. Skipped
    /// (with a note) when the host has fewer than 4 CPUs.
    pub gate_scaling: Option<f64>,
    /// `--tune-db <path>`: persistent autotuner find-db file
    /// (see `hfta_kernels::tune`).
    pub tune_db: Option<PathBuf>,
    /// Arguments this parser did not consume, in order.
    pub rest: Vec<String>,
}

fn take_value(
    flag: &str,
    inline: Option<String>,
    it: &mut impl Iterator<Item = String>,
) -> Result<String, String> {
    inline
        .or_else(|| it.next())
        .ok_or_else(|| format!("{flag} requires a value"))
}

impl CommonArgs {
    /// Parses the shared flags out of an explicit argument list. Unknown
    /// arguments are collected into [`CommonArgs::rest`] (with any
    /// `--flag=value` form left intact) for the caller to interpret.
    ///
    /// # Errors
    ///
    /// Returns a message when a shared flag is missing its value or
    /// `--max-drift` is not a non-negative number.
    pub fn parse_iter(args: impl IntoIterator<Item = String>) -> Result<CommonArgs, String> {
        let mut out = CommonArgs::default();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            let (flag, inline) = match a.split_once('=') {
                Some((f, v)) if f.starts_with("--") => (f.to_string(), Some(v.to_string())),
                _ => (a.clone(), None),
            };
            match flag.as_str() {
                "--quick" => out.quick = true,
                "--bench-json" => out.bench_json = Some(take_value(&flag, inline, &mut it)?),
                "--trace" => out.trace = Some(PathBuf::from(take_value(&flag, inline, &mut it)?)),
                "--probe-db" => {
                    out.probe_db = Some(PathBuf::from(take_value(&flag, inline, &mut it)?));
                }
                "--history" => {
                    out.history = Some(PathBuf::from(take_value(&flag, inline, &mut it)?));
                }
                "--max-drift" => {
                    let v = take_value(&flag, inline, &mut it)?;
                    match v.parse::<f64>() {
                        Ok(p) if p >= 0.0 => out.max_drift = Some(p),
                        _ => return Err(format!("--max-drift needs a non-negative percent: {v}")),
                    }
                }
                "--gate-scaling" => {
                    let v = take_value(&flag, inline, &mut it)?;
                    match v.parse::<f64>() {
                        Ok(r) if r >= 0.0 => out.gate_scaling = Some(r),
                        _ => return Err(format!("--gate-scaling needs a non-negative ratio: {v}")),
                    }
                }
                "--tune-db" => {
                    out.tune_db = Some(PathBuf::from(take_value(&flag, inline, &mut it)?));
                }
                _ => out.rest.push(a),
            }
        }
        Ok(out)
    }

    /// Parses the process arguments; on a malformed shared flag prints the
    /// error plus `usage:` line and exits with status 2.
    pub fn parse(usage: &str) -> CommonArgs {
        match Self::parse_iter(std::env::args().skip(1)) {
            Ok(args) => args,
            Err(msg) => usage_exit(usage, &msg),
        }
    }

    /// Opens the telemetry session implied by `--trace` (disabled when the
    /// flag was absent).
    pub fn trace_session(&self, bin: &str) -> TraceSession {
        match &self.trace {
            Some(dir) => TraceSession::active(bin, dir.clone()),
            None => TraceSession::disabled(),
        }
    }

    /// Exits with usage status 2 if any unrecognized arguments remain —
    /// for bins whose whole CLI is the shared flag set.
    pub fn expect_no_rest(&self, usage: &str) {
        if let Some(first) = self.rest.first() {
            usage_exit(usage, &format!("unknown argument: {first}"));
        }
    }
}

/// Prints `error: <msg>` and the usage line, then exits with status 2 (the
/// usage-error convention every bench bin shares).
pub fn usage_exit(usage: &str, msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: {usage}");
    std::process::exit(2);
}

/// Parses a `--max-regress`-style percentage value; exits with usage
/// status 2 when missing or negative. Shared by every `--diff` bin.
pub fn parse_pct(usage: &str, flag: &str, value: Option<String>) -> f64 {
    match value.as_deref().map(str::parse::<f64>) {
        Some(Ok(p)) if p >= 0.0 => p,
        _ => usage_exit(usage, &format!("{flag} needs a non-negative percent")),
    }
}

/// Prints a [`DiffOutcome`] under `header` and exits with the shared
/// gating convention — 0 = clean, 1 = regression found (usage and I/O
/// errors exit 2 via [`usage_exit`]). `scope_report --diff` and
/// `flight_report --diff` both finish through here so their exit codes
/// can never drift apart.
pub fn finish_diff(header: &str, out: &DiffOutcome) -> ! {
    println!("# {header}");
    for line in &out.lines {
        println!("  ok: {line}");
    }
    for r in &out.regressions {
        println!("  REGRESSION: {r}");
    }
    if out.regressed() {
        eprintln!("{} regression(s) found", out.regressions.len());
        std::process::exit(1);
    }
    println!("no regressions");
    std::process::exit(0);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> CommonArgs {
        CommonArgs::parse_iter(args.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn shared_flags_parse_in_both_forms() {
        let a = parse(&[
            "--quick",
            "--bench-json",
            "out.json",
            "--trace=/tmp/t",
            "--probe-db",
            "db.json",
            "--history=h.jsonl",
            "--max-drift",
            "12.5",
            "--gate-scaling=2.5",
            "--tune-db",
            "tune.json",
        ]);
        assert!(a.quick);
        assert_eq!(a.bench_json.as_deref(), Some("out.json"));
        assert_eq!(a.trace, Some(PathBuf::from("/tmp/t")));
        assert_eq!(a.probe_db, Some(PathBuf::from("db.json")));
        assert_eq!(a.history, Some(PathBuf::from("h.jsonl")));
        assert_eq!(a.max_drift, Some(12.5));
        assert_eq!(a.gate_scaling, Some(2.5));
        assert_eq!(a.tune_db, Some(PathBuf::from("tune.json")));
        assert!(a.rest.is_empty());
    }

    #[test]
    fn unknown_arguments_pass_through_in_order() {
        let a = parse(&["--steps", "7", "--quick", "positional", "--devices=3"]);
        assert!(a.quick);
        assert_eq!(a.rest, vec!["--steps", "7", "positional", "--devices=3"]);
    }

    #[test]
    fn missing_values_and_bad_drift_are_errors() {
        assert!(CommonArgs::parse_iter(vec!["--bench-json".to_string()]).is_err());
        assert!(CommonArgs::parse_iter(vec!["--trace".to_string()]).is_err());
        let bad = vec!["--max-drift".to_string(), "-3".to_string()];
        assert!(CommonArgs::parse_iter(bad).is_err());
        let bad_gate = vec!["--gate-scaling".to_string(), "nope".to_string()];
        assert!(CommonArgs::parse_iter(bad_gate).is_err());
    }

    #[test]
    fn trace_session_activates_only_with_flag() {
        assert!(!parse(&[]).trace_session("t").is_active());
    }
}
