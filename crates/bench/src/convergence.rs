//! The Figure-3 convergence-equivalence experiment: train the same models
//! serially and as an HFTA array and record the per-iteration losses.
//!
//! The paper trains ResNet-18 on CIFAR-10 with three learning rates and
//! shows the serial and HFTA loss curves overlap completely. We do the
//! same with the CPU-scale ResNet mini on the synthetic CIFAR stand-in
//! (DESIGN.md §4) — down to fp32 round-off.

use hfta_core::array::{copy_model_weights, record_step_metrics};
use hfta_core::loss::{fused_cross_entropy, Reduction};
use hfta_core::ops::FusedModule;
use hfta_core::optim::{FusedOptimizer, FusedSgd, PerModel};
use hfta_data::LabeledImages;
use hfta_models::{FusedResNet, ResNet, ResNetCfg};
use hfta_nn::{Module, Optimizer, Sgd, Tape};
use hfta_tensor::{Rng, Tensor};

/// Per-iteration training losses of serial vs HFTA runs.
#[derive(Debug, Clone)]
pub struct LossCurves {
    /// The learning rates swept (one model per LR).
    pub lrs: Vec<f32>,
    /// `serial[m][t]` = model `m`'s loss at iteration `t`, trained alone.
    pub serial: Vec<Vec<f32>>,
    /// `fused[m][t]` = model `m`'s loss at iteration `t`, trained fused.
    pub fused: Vec<Vec<f32>>,
}

impl LossCurves {
    /// Maximum absolute divergence between any serial and fused curve.
    pub fn max_divergence(&self) -> f32 {
        self.serial
            .iter()
            .zip(&self.fused)
            .flat_map(|(s, f)| s.iter().zip(f).map(|(a, b)| (a - b).abs()))
            .fold(0.0, f32::max)
    }
}

/// Runs the experiment: `iters` training iterations of the ResNet mini at
/// each learning rate, serial and fused, on identical data and identical
/// initial weights.
pub fn resnet_convergence(lrs: &[f32], iters: usize, seed: u64) -> LossCurves {
    let b = lrs.len();
    let cfg = ResNetCfg::mini(4);
    let mut rng = Rng::seed_from(seed);

    // Build the fused array first; serial replicas copy its weights.
    let fused_model = FusedResNet::new(b, cfg, &mut rng);
    let serial_models: Vec<ResNet> = (0..b).map(|_| ResNet::new(cfg, &mut rng)).collect();
    for (i, m) in serial_models.iter().enumerate() {
        copy_model_weights(&fused_model.fused_parameters(), i, &m.parameters());
    }

    // One fixed dataset; every model sees the same batches (the
    // hyper-parameter-tuning setting).
    let mut data = LabeledImages::new(8, 4, seed ^ 0xDA7A);
    let batches: Vec<(Tensor, Vec<usize>)> = (0..iters).map(|_| data.batch(8)).collect();

    // Serial runs.
    let mut serial = vec![Vec::with_capacity(iters); b];
    for (i, model) in serial_models.iter().enumerate() {
        let mut opt = Sgd::new(model.parameters(), lrs[i], 0.9);
        for (t, (x, y)) in batches.iter().enumerate() {
            opt.zero_grad();
            let tape = Tape::new();
            let loss = model.forward(&tape.leaf(x.clone())).cross_entropy(y);
            serial[i].push(loss.item());
            record_step_metrics(t as u64, &[loss.item()], 0.0, 1);
            loss.backward();
            opt.step();
        }
    }

    // Fused run: stack the same batch B times (same data per model).
    let mut opt = FusedSgd::new(
        fused_model.fused_parameters(),
        PerModel::new(lrs.to_vec()),
        0.9,
    )
    .expect("matching widths");
    let mut fused = vec![Vec::with_capacity(iters); b];
    for (t, (x, y)) in batches.iter().enumerate() {
        opt.zero_grad();
        let tape = Tape::new();
        let copies: Vec<&Tensor> = std::iter::repeat_n(x, b).collect();
        let fused_x = tape.leaf(Tensor::concat(&copies, 1));
        let logits = fused_model.forward(&fused_x); // [B, N, classes]
                                                    // Record each model's own loss, then train on the fused loss.
        let n = x.dim(0);
        let mut step_losses = Vec::with_capacity(b);
        for (i, f) in fused.iter_mut().enumerate() {
            let per = logits.narrow(0, i, 1).reshape(&[n, 4]).cross_entropy(y);
            f.push(per.item());
            step_losses.push(per.item());
        }
        record_step_metrics(t as u64, &step_losses, 0.0, b as u64);
        let targets: Vec<usize> = (0..b).flat_map(|_| y.iter().copied()).collect();
        let loss = fused_cross_entropy(&logits, &targets, Reduction::Mean);
        loss.backward();
        opt.step();
    }

    LossCurves {
        lrs: lrs.to_vec(),
        serial,
        fused,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_overlap_like_figure3() {
        let curves = resnet_convergence(&[0.1, 0.05, 0.01], 6, 42);
        let d = curves.max_divergence();
        assert!(
            d < 5e-3,
            "serial and fused curves diverged by {d} (must overlap)"
        );
        // And the curves are not trivially constant.
        for s in &curves.serial {
            assert!(s.iter().any(|&v| (v - s[0]).abs() > 1e-6));
        }
    }

    #[test]
    fn different_lrs_produce_different_curves() {
        let curves = resnet_convergence(&[0.2, 0.001], 6, 7);
        let diff: f32 = curves.serial[0]
            .iter()
            .zip(&curves.serial[1])
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-4, "distinct LRs must diverge, got {diff}");
    }
}
