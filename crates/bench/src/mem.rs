//! Memory-footprint benchmark: fused training-session peak bytes vs the
//! B× serial baseline — the CPU analogue of the paper's Table 8/9
//! (per-model memory footprint under fusion vs separate processes).
//!
//! For each (model, B) the harness trims the recycling pool, resets the
//! byte accounting, then builds the fused array *and* its optimizer and
//! trains it entirely inside the measurement window — parameters,
//! optimizer state, activations, tape gradient buffers, GEMM packing
//! panels and im2col scratch all count toward the session peak, the same
//! way `nvidia-smi` attributes a whole training process. The serial
//! baseline for width B is B × the measured B = 1 peak: B independent
//! runs each pay their own workspace arenas and pool slack, while the
//! fused run shares one set across all lanes.
//!
//! The same records double as the steady-state allocation gate: after the
//! warm-up steps every measured step must be served entirely from
//! recycled buffers (`steady_fresh_allocs == 0`).

use hfta_core::format::{stack_conv, stack_targets};
use hfta_core::loss::{fused_bce_with_logits, fused_nll_loss, Reduction};
use hfta_core::ops::FusedModule;
use hfta_core::optim::{FusedAdam, FusedOptimizer, PerModel};
use hfta_data::PointClouds;
use hfta_models::{DcganCfg, FusedDiscriminator, FusedPointNetCls, PointNetCfg};
use hfta_nn::{Module, Tape};
use hfta_tensor::{Rng, Tensor};
use serde::{Deserialize, Serialize};

/// One (model, B) footprint measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemRecord {
    /// Model family driving the session.
    pub model: String,
    /// Fused array width.
    pub b: u64,
    /// Warm-up steps excluded from the steady-state allocation window.
    pub warm_steps: u64,
    /// Steps inside the steady-state allocation window.
    pub measured_steps: u64,
    /// Peak accounted footprint of the fused session (live + pooled free
    /// + scratch arenas), in bytes.
    pub peak_bytes: u64,
    /// B × the measured B = 1 peak — what B separate processes would pay.
    pub serial_peak_bytes: u64,
    /// `serial_peak_bytes / peak_bytes`; > 1 means fusion saves memory.
    pub savings_ratio: f64,
    /// Fresh heap allocations during the measured steps (gate: must be 0).
    pub steady_fresh_allocs: u64,
    /// Pool reuses during the measured steps (shows recycling is active).
    pub steady_pool_reuses: u64,
}

/// The `BENCH_mem.json` document (top-level `records` key so
/// `scope_report --diff` classifies it as a bench report).
#[derive(Debug, Serialize, Deserialize)]
pub struct MemReport {
    /// All (model, B) measurements.
    pub records: Vec<MemRecord>,
}

/// Counters extracted from one measured training session.
#[derive(Clone, Copy)]
struct Session {
    peak_bytes: u64,
    steady_fresh_allocs: u64,
    steady_pool_reuses: u64,
}

/// Runs `warm` then `measured` steps, snapshotting the accounting between
/// the two windows. Must be called with the pool freshly trimmed/reset.
fn drive(mut step: impl FnMut(), warm: usize, measured: usize) -> Session {
    for _ in 0..warm {
        step();
    }
    let s1 = hfta_mem::stats();
    for _ in 0..measured {
        step();
    }
    let s2 = hfta_mem::stats();
    Session {
        peak_bytes: s2.peak_footprint_bytes,
        steady_fresh_allocs: s2.fresh_allocs() - s1.fresh_allocs(),
        steady_pool_reuses: s2.pool_reuses - s1.pool_reuses,
    }
}

/// One fused DCGAN discriminator training session (mirrors the
/// `gan_equivalence` drivers: real batch, BCE-with-logits, Adam).
fn dcgan_session(b: usize, warm: usize, measured: usize) -> Session {
    hfta_mem::trim();
    hfta_mem::reset_stats();
    let mut rng = Rng::seed_from(61);
    let disc = FusedDiscriminator::new(b, DcganCfg::mini(), &mut rng);
    disc.set_training(false);
    let mut opt =
        FusedAdam::new(disc.fused_parameters(), PerModel::uniform(b, 2e-3)).expect("widths match");
    let real = rng.rand([4, 3, 16, 16], -1.0, 1.0);
    let labels = Tensor::ones([4, b]);
    drive(
        || {
            opt.zero_grad();
            let tape = Tape::new();
            let copies: Vec<Tensor> = vec![real.clone(); b];
            let d = disc.forward(&tape.leaf(stack_conv(&copies).expect("stackable")));
            fused_bce_with_logits(&d, &labels, b, Reduction::Mean).backward();
            opt.step();
        },
        warm,
        measured,
    )
}

/// One fused PointNet classifier training session (mirrors the
/// `equivalence` driver: point-cloud batch, NLL loss, Adam).
fn pointnet_session(b: usize, warm: usize, measured: usize) -> Session {
    hfta_mem::trim();
    hfta_mem::reset_stats();
    let cfg = PointNetCfg::mini(6);
    let mut rng = Rng::seed_from(62);
    let net = FusedPointNetCls::new(b, cfg, &mut rng);
    net.set_training(false);
    let mut opt =
        FusedAdam::new(net.fused_parameters(), PerModel::uniform(b, 1e-3)).expect("widths match");
    let mut data = PointClouds::new(32, 8);
    let (x, y) = data.batch(6);
    let targets = stack_targets(&vec![y.clone(); b]).expect("stackable");
    drive(
        || {
            opt.zero_grad();
            let tape = Tape::new();
            let copies: Vec<Tensor> = vec![x.clone(); b];
            let lp = net.forward(&tape.leaf(stack_conv(&copies).expect("stackable")));
            fused_nll_loss(&lp, &targets, Reduction::Mean).backward();
            opt.step();
        },
        warm,
        measured,
    )
}

/// Measures every `(model, B)` pair and derives the serial baselines.
///
/// The B = 1 session of each model is measured once and reused both as a
/// record (when `widths` contains 1) and as the per-process unit of the
/// serial baseline.
pub fn run(widths: &[usize], warm: usize, measured: usize) -> MemReport {
    type SessionFn = fn(usize, usize, usize) -> Session;
    let sessions: [(&str, SessionFn); 2] = [
        ("dcgan_d", dcgan_session),
        ("pointnet_cls", pointnet_session),
    ];
    let mut records = Vec::new();
    for (model, session) in sessions {
        let base = session(1, warm, measured);
        for &b in widths {
            let s = if b == 1 {
                base
            } else {
                session(b, warm, measured)
            };
            let serial_peak_bytes = b as u64 * base.peak_bytes;
            records.push(MemRecord {
                model: model.to_string(),
                b: b as u64,
                warm_steps: warm as u64,
                measured_steps: measured as u64,
                peak_bytes: s.peak_bytes,
                serial_peak_bytes,
                savings_ratio: serial_peak_bytes as f64 / s.peak_bytes as f64,
                steady_fresh_allocs: s.steady_fresh_allocs,
                steady_pool_reuses: s.steady_pool_reuses,
            });
        }
    }
    MemReport { records }
}

/// Gate failures for a [`MemReport`]: every fused width must beat the
/// serial baseline and steady-state steps must not allocate.
pub fn violations(report: &MemReport) -> Vec<String> {
    let mut out = Vec::new();
    for r in &report.records {
        if r.b > 1 && r.savings_ratio <= 1.0 {
            out.push(format!(
                "{}/B={}: savings_ratio {:.4} <= 1 (fused {} B vs serial {} B)",
                r.model, r.b, r.savings_ratio, r.peak_bytes, r.serial_peak_bytes
            ));
        }
        if r.steady_fresh_allocs != 0 {
            out.push(format!(
                "{}/B={}: {} fresh allocations after {} warm-up steps",
                r.model, r.b, r.steady_fresh_allocs, r.warm_steps
            ));
        }
        if r.steady_pool_reuses == 0 {
            out.push(format!(
                "{}/B={}: pool recorded zero reuses — recycling inactive",
                r.model, r.b
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_report_passes_its_own_gates() {
        hfta_mem::set_pool_enabled(true);
        let report = run(&[1, 2], 2, 2);
        assert_eq!(report.records.len(), 4);
        let v = violations(&report);
        assert!(v.is_empty(), "gate violations: {v:?}");
        for r in &report.records {
            assert!(r.peak_bytes > 0);
            if r.b == 1 {
                assert_eq!(r.peak_bytes, r.serial_peak_bytes);
            }
        }
    }

    #[test]
    fn violations_flags_bad_records() {
        let bad = MemReport {
            records: vec![MemRecord {
                model: "toy".into(),
                b: 4,
                warm_steps: 1,
                measured_steps: 1,
                peak_bytes: 100,
                serial_peak_bytes: 80,
                savings_ratio: 0.8,
                steady_fresh_allocs: 3,
                steady_pool_reuses: 0,
            }],
        };
        assert_eq!(violations(&bad).len(), 3);
    }
}
