//! Shared `--trace <dir>` support for the figure/table binaries.
//!
//! Every harness accepts `--trace <dir>` (or `--trace=<dir>`): when given,
//! a [`Profiler`] is installed for the duration of the run and two files
//! are written on exit —
//!
//! * `<dir>/<bin>.trace.json` — Chrome trace-event JSON, loadable in
//!   Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`;
//! * `<dir>/<bin>.report.json` — the serialized
//!   [`RunReport`](hfta_telemetry::RunReport) (per-experiment wall times,
//!   step metrics, counters and time-series);
//! * `<dir>/<bin>.flight.jsonl` — the hfta-flight journal (one
//!   [`JournalLine`](hfta_telemetry::JournalLine) per line): ring-buffer
//!   spill-over during the run plus the in-memory tail flushed on exit.
//!   `flight_report` and `hfta_top` read this file.
//!
//! Without the flag nothing is installed and the instrumented code paths
//! stay on their single-branch disabled fast path.

use std::io;
use std::path::PathBuf;

use hfta_telemetry::{InstallGuard, Profiler};

/// An optionally-active telemetry session for one benchmark binary.
///
/// Construct it first thing in `main`, run the workload, then call
/// [`TraceSession::finish`] (fallible mains) or
/// [`TraceSession::finish_or_exit`] (infallible mains) last.
pub struct TraceSession {
    inner: Option<Active>,
}

struct Active {
    profiler: Profiler,
    _guard: InstallGuard,
    dir: PathBuf,
    bin: String,
}

impl TraceSession {
    /// Parses `--trace <dir>` / `--trace=<dir>` out of the process
    /// arguments. All other arguments are ignored (the harnesses take
    /// none). Exits with status 2 if `--trace` is given without a value.
    pub fn from_args(bin: &str) -> TraceSession {
        Self::from_iter(bin, std::env::args().skip(1))
    }

    /// Like [`TraceSession::from_args`] but over an explicit argument
    /// list (testable).
    pub fn from_iter(bin: &str, args: impl IntoIterator<Item = String>) -> TraceSession {
        let mut args = args.into_iter();
        let mut dir = None;
        while let Some(a) = args.next() {
            if a == "--trace" {
                match args.next() {
                    Some(d) => dir = Some(PathBuf::from(d)),
                    None => {
                        eprintln!("error: --trace requires a directory argument");
                        std::process::exit(2);
                    }
                }
            } else if let Some(rest) = a.strip_prefix("--trace=") {
                dir = Some(PathBuf::from(rest));
            }
        }
        match dir {
            Some(dir) => TraceSession::active(bin, dir),
            None => TraceSession::disabled(),
        }
    }

    /// A session that records nothing and writes nothing.
    pub fn disabled() -> TraceSession {
        TraceSession { inner: None }
    }

    /// A recording session: installs a fresh profiler named `bin` and
    /// remembers where to write the outputs.
    pub fn active(bin: &str, dir: impl Into<PathBuf>) -> TraceSession {
        let profiler = Profiler::new(bin);
        let guard = profiler.install();
        let dir = dir.into();
        profiler.set_flight_spill(dir.join(format!("{bin}.flight.jsonl")));
        TraceSession {
            inner: Some(Active {
                profiler,
                _guard: guard,
                dir,
                bin: bin.to_string(),
            }),
        }
    }

    /// The installed profiler, if the session is recording.
    pub fn profiler(&self) -> Option<&Profiler> {
        self.inner.as_ref().map(|a| &a.profiler)
    }

    /// Whether `--trace` was given.
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// Writes `<dir>/<bin>.trace.json` and `<dir>/<bin>.report.json`,
    /// creating `<dir>` if needed. Returns the two paths, or `None` when
    /// the session was never activated.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (and report-serialization failures,
    /// mapped to [`io::Error`]) instead of panicking — `repro_all` turns
    /// these into a non-zero exit.
    pub fn finish(self) -> io::Result<Option<(PathBuf, PathBuf)>> {
        let Some(active) = self.inner else {
            return Ok(None);
        };
        std::fs::create_dir_all(&active.dir)?;
        active.profiler.flush_flight_journal()?;
        let trace_path = active.dir.join(format!("{}.trace.json", active.bin));
        std::fs::write(&trace_path, active.profiler.trace_json())?;
        let report = active.profiler.report();
        let json = serde_json::to_string_pretty(&report)
            .map_err(|e| io::Error::other(format!("serializing run report: {e}")))?;
        let report_path = active.dir.join(format!("{}.report.json", active.bin));
        std::fs::write(&report_path, json)?;
        Ok(Some((trace_path, report_path)))
    }

    /// [`TraceSession::finish`] for binaries with infallible `main`s:
    /// reports the written paths on stderr, exits 1 on I/O failure.
    pub fn finish_or_exit(self) {
        match self.finish() {
            Ok(Some((t, r))) => eprintln!("trace: wrote {} and {}", t.display(), r.display()),
            Ok(None) => {}
            Err(e) => {
                eprintln!("error: writing telemetry failed: {e}");
                std::process::exit(1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_flag_means_disabled() {
        let s = TraceSession::from_iter("t", Vec::new());
        assert!(!s.is_active());
        assert!(Profiler::current().is_none());
        assert!(s.finish().unwrap().is_none());
    }

    #[test]
    fn flag_installs_and_finish_writes_both_files() {
        let dir = std::env::temp_dir().join("hfta-telemetry-cli-test");
        let _ = std::fs::remove_dir_all(&dir);
        let s = TraceSession::from_iter(
            "unit",
            vec!["--trace".to_string(), dir.display().to_string()],
        );
        assert!(s.is_active());
        let p = Profiler::current().expect("installed");
        p.incr("touched", 1.0);
        let lane = p.lane("proc", "thread");
        drop(p.span(lane, "work"));
        let (trace, report) = s.finish().unwrap().expect("active");
        assert!(Profiler::current().is_none(), "guard uninstalls on finish");
        let trace_text = std::fs::read_to_string(&trace).unwrap();
        assert!(trace_text.contains("\"traceEvents\""));
        let report_text = std::fs::read_to_string(&report).unwrap();
        let parsed: hfta_telemetry::RunReport = serde_json::from_str(&report_text).unwrap();
        assert_eq!(parsed.name, "unit");
        assert_eq!(parsed.experiments[0].counters[0].name, "touched");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn active_session_spills_and_flushes_the_flight_journal() {
        use hfta_telemetry::{FlightKind, JournalLine};
        let dir = std::env::temp_dir().join("hfta-telemetry-cli-test-flight");
        let _ = std::fs::remove_dir_all(&dir);
        let s = TraceSession::active("fl", &dir);
        let p = Profiler::current().expect("installed");
        {
            let _exp = p.experiment("runA");
            p.flight_event(0, 100, FlightKind::Submit, None, None, None, String::new());
            p.flight_event(0, 200, FlightKind::Enqueue, None, None, None, String::new());
        }
        s.finish().unwrap().expect("active");
        let text = std::fs::read_to_string(dir.join("fl.flight.jsonl")).unwrap();
        let lines: Vec<JournalLine> = text
            .lines()
            .map(|l| serde_json::from_str(l).expect("journal line"))
            .collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].exp, "runA");
        assert_eq!(lines[0].event.kind, FlightKind::Submit);
        assert_eq!(lines[1].event.t_ns, 200);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn equals_form_is_accepted() {
        let dir = std::env::temp_dir().join("hfta-telemetry-cli-test-eq");
        let _ = std::fs::remove_dir_all(&dir);
        let s = TraceSession::from_iter("eq", vec![format!("--trace={}", dir.display())]);
        assert!(s.is_active());
        s.finish().unwrap();
        assert!(dir.join("eq.trace.json").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
