//! Shared sweep machinery for the figure/table harnesses: runs every
//! sharing policy across model counts on a device and collects the
//! normalized curves the paper plots.

use hfta_models::Workload;
use hfta_sim::{DeviceSpec, GpuSim, SharingPolicy, SimResult};
use serde::{Deserialize, Serialize};

/// Cap on the number of co-located models probed per curve.
pub const MAX_MODELS: usize = 40;

/// One point of a Figure-4-style curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Number of models sharing the device.
    pub models: usize,
    /// Throughput normalized by the FP32 serial baseline.
    pub normalized: f64,
    /// Raw simulation result.
    pub result: SimResult,
}

/// One policy's curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Curve {
    /// The sharing policy.
    pub policy: SharingPolicy,
    /// Whether AMP was enabled.
    pub amp: bool,
    /// Curve points, increasing model count, up to the memory limit.
    pub points: Vec<CurvePoint>,
}

impl Curve {
    /// Highest normalized throughput on the curve.
    pub fn peak(&self) -> f64 {
        self.points.iter().map(|p| p.normalized).fold(0.0, f64::max)
    }

    /// Largest model count that fit.
    pub fn max_models(&self) -> usize {
        self.points.iter().map(|p| p.models).max().unwrap_or(0)
    }

    /// Normalized throughput at exactly `models`, if that point exists.
    pub fn at(&self, models: usize) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.models == models)
            .map(|p| p.normalized)
    }
}

/// All curves of one workload on one device (one Figure 4 panel,
/// both precisions).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Panel {
    /// Device name.
    pub device: String,
    /// Workload name.
    pub workload: String,
    /// FP32 serial throughput (the normalization basis), examples/s.
    pub serial_fp32_eps: f64,
    /// Curves for every applicable policy and precision.
    pub curves: Vec<Curve>,
}

impl Panel {
    /// The curve for a policy/precision pair.
    pub fn curve(&self, policy: SharingPolicy, amp: bool) -> Option<&Curve> {
        self.curves
            .iter()
            .find(|c| c.policy == policy && c.amp == amp)
    }

    /// Peak speedup of HFTA over a baseline policy, taking the better of
    /// FP32/AMP for each side (the paper's Table 5 convention).
    pub fn peak_speedup_over(&self, baseline: SharingPolicy) -> f64 {
        let best = |policy: SharingPolicy| -> f64 {
            [false, true]
                .iter()
                .filter_map(|&amp| self.curve(policy, amp))
                .map(|c| c.peak())
                .fold(0.0, f64::max)
        };
        best(SharingPolicy::Hfta) / best(baseline).max(f64::MIN_POSITIVE)
    }

    /// Peak speedup at a fixed precision (Table 8 convention).
    pub fn peak_speedup_at(&self, baseline: SharingPolicy, amp: bool) -> f64 {
        let hfta = self
            .curve(SharingPolicy::Hfta, amp)
            .map_or(0.0, Curve::peak);
        let base = self.curve(baseline, amp).map_or(0.0, Curve::peak);
        hfta / base.max(f64::MIN_POSITIVE)
    }

    /// Max speedup of HFTA over `baseline` across equal model counts
    /// (Table 9 convention).
    pub fn same_count_speedup(&self, baseline: SharingPolicy, amp: bool) -> f64 {
        let (Some(h), Some(b)) = (
            self.curve(SharingPolicy::Hfta, amp),
            self.curve(baseline, amp),
        ) else {
            return 0.0;
        };
        let mut best = 0.0f64;
        for p in &h.points {
            if let Some(base) = b.at(p.models) {
                if base > 0.0 {
                    best = best.max(p.normalized / base);
                }
            }
        }
        best
    }

    /// Max AMP-over-FP32 gain for a policy (Table 10 convention).
    pub fn amp_gain(&self, policy: SharingPolicy) -> f64 {
        let (Some(a), Some(f)) = (self.curve(policy, true), self.curve(policy, false)) else {
            return 0.0;
        };
        if policy == SharingPolicy::Serial {
            return a.at(1).unwrap_or(0.0) / f.at(1).unwrap_or(f64::MIN_POSITIVE);
        }
        let mut best = 0.0f64;
        for p in &a.points {
            if let Some(base) = f.at(p.models) {
                if base > 0.0 {
                    best = best.max(p.normalized / base);
                }
            }
        }
        best
    }
}

/// Policies applicable to a device.
pub fn policies_for(device: &DeviceSpec) -> Vec<SharingPolicy> {
    let mut p = vec![
        SharingPolicy::Serial,
        SharingPolicy::Concurrent,
        SharingPolicy::Mps,
    ];
    if device.supports_mig() {
        p.push(SharingPolicy::Mig);
    }
    p.push(SharingPolicy::Hfta);
    p
}

/// Runs the full sweep for one workload on one GPU (both precisions).
pub fn gpu_panel(device: &DeviceSpec, workload: &Workload) -> Panel {
    let serial_fp32 = GpuSim::new(device.clone(), false)
        .simulate(SharingPolicy::Serial, &workload.serial_job(), 1)
        .throughput_eps;
    let mut curves = Vec::new();
    for amp in [false, true] {
        let sim = GpuSim::new(device.clone(), amp);
        for policy in policies_for(device) {
            let mut points = Vec::new();
            let limit = match policy {
                SharingPolicy::Serial => 1,
                SharingPolicy::Mig => device.mig_max_instances,
                _ => MAX_MODELS,
            };
            for j in 1..=limit {
                let result = match policy {
                    SharingPolicy::Hfta => sim.simulate(policy, &workload.fused_job(j), 1),
                    _ => sim.simulate(policy, &workload.serial_job(), j),
                };
                if !result.fits {
                    break;
                }
                points.push(CurvePoint {
                    models: result.models,
                    normalized: result.throughput_eps / serial_fp32,
                    result,
                });
            }
            curves.push(Curve {
                policy,
                amp,
                points,
            });
        }
    }
    Panel {
        device: device.name.clone(),
        workload: workload.name.to_string(),
        serial_fp32_eps: serial_fp32,
        curves,
    }
}

/// One point of a Figure-6 TPU curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TpuPoint {
    /// Models fused on the core.
    pub models: usize,
    /// Throughput normalized by the serial baseline.
    pub normalized: f64,
}

/// Runs the TPU v3 serial-vs-HFTA sweep for a workload (Figure 6).
pub fn tpu_curve(workload: &Workload) -> Vec<TpuPoint> {
    let sim = hfta_sim::TpuSim::new(DeviceSpec::tpu_v3());
    let serial = sim.simulate(&workload.serial_job()).throughput_eps;
    let mut points = Vec::new();
    for b in 1..=MAX_MODELS {
        let r = sim.simulate(&workload.fused_job(b));
        if !r.fits {
            break;
        }
        points.push(TpuPoint {
            models: b,
            normalized: r.throughput_eps / serial,
        });
    }
    points
}

/// Least-squares linear regression `y = slope * x + intercept`.
pub fn linear_regression(points: &[(f64, f64)]) -> (f64, f64) {
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let intercept = (sy - slope * sx) / n;
    (slope, intercept)
}

/// Markdown-ish table printer shared by the harness binaries.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    println!("| {} |", header.join(" | "));
    println!(
        "|{}|",
        header.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v100_cls_panel() -> Panel {
        gpu_panel(&DeviceSpec::v100(), &Workload::pointnet_cls())
    }

    #[test]
    fn serial_normalizes_to_one() {
        let p = v100_cls_panel();
        let serial = p.curve(SharingPolicy::Serial, false).unwrap();
        assert_eq!(serial.points.len(), 1);
        assert!((serial.points[0].normalized - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hfta_peak_beats_all_baselines() {
        let p = v100_cls_panel();
        for base in [
            SharingPolicy::Serial,
            SharingPolicy::Concurrent,
            SharingPolicy::Mps,
        ] {
            let s = p.peak_speedup_over(base);
            assert!(s > 1.2, "{}: {s}", base.name());
        }
    }

    #[test]
    fn paper_band_for_v100_cls() {
        // Paper Table 8: V100 FP32 PointNet-cls HFTA/serial = 2.62.
        let p = v100_cls_panel();
        let s = p.peak_speedup_at(SharingPolicy::Serial, false);
        assert!((1.8..4.5).contains(&s), "FP32 speedup {s}");
        // AMP peak exceeds FP32 peak (Table 8: 5.02 vs 2.62).
        let sa = p.peak_speedup_at(SharingPolicy::Serial, true);
        assert!(sa > s, "AMP {sa} should exceed FP32 {s}");
    }

    #[test]
    fn amp_gain_pattern_matches_table10() {
        let p = v100_cls_panel();
        let serial_gain = p.amp_gain(SharingPolicy::Serial);
        let hfta_gain = p.amp_gain(SharingPolicy::Hfta);
        assert!(serial_gain < 1.4, "serial AMP gain {serial_gain}");
        assert!(
            hfta_gain > serial_gain,
            "HFTA {hfta_gain} vs serial {serial_gain}"
        );
    }

    #[test]
    fn mig_only_on_a100() {
        assert!(!policies_for(&DeviceSpec::v100()).contains(&SharingPolicy::Mig));
        assert!(policies_for(&DeviceSpec::a100()).contains(&SharingPolicy::Mig));
    }

    #[test]
    fn hfta_fits_more_models_than_mps() {
        let p = v100_cls_panel();
        let hfta = p.curve(SharingPolicy::Hfta, false).unwrap().max_models();
        let mps = p.curve(SharingPolicy::Mps, false).unwrap().max_models();
        assert!(hfta > mps, "HFTA {hfta} vs MPS {mps}");
    }
}
