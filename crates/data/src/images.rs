//! Synthetic images standing in for LSUN (DCGAN) and CIFAR-10 (ResNet-18).

use hfta_tensor::{Rng, Tensor};

/// Unlabeled "natural-looking" image generator for GAN training — a
/// procedural stand-in for LSUN bedrooms: smooth gradient backgrounds with
/// axis-aligned rectangles (furniture-like structure), values in `[-1, 1]`
/// matching DCGAN's `tanh` output range.
///
/// # Example
///
/// ```
/// use hfta_data::GanImages;
/// let mut ds = GanImages::new(16, 0);
/// let batch = ds.batch(4);
/// assert_eq!(batch.dims(), &[4, 3, 16, 16]);
/// ```
#[derive(Debug)]
pub struct GanImages {
    size: usize,
    rng: Rng,
}

impl GanImages {
    /// Creates a generator of `size x size` RGB images.
    pub fn new(size: usize, seed: u64) -> Self {
        GanImages {
            size,
            rng: Rng::seed_from(seed),
        }
    }

    /// Image side length.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Samples a batch `[N, 3, S, S]` in `[-1, 1]`.
    pub fn batch(&mut self, n: usize) -> Tensor {
        let s = self.size;
        let mut data = vec![0.0f32; n * 3 * s * s];
        for i in 0..n {
            // Gradient background per channel.
            let mut base = [[0.0f32; 3]; 2];
            for row in &mut base {
                for v in row.iter_mut() {
                    *v = self.rng.uniform(-0.8, 0.8);
                }
            }
            let img = &mut data[i * 3 * s * s..(i + 1) * 3 * s * s];
            for c in 0..3 {
                for y in 0..s {
                    let t = y as f32 / (s - 1).max(1) as f32;
                    let v = base[0][c] * (1.0 - t) + base[1][c] * t;
                    for x in 0..s {
                        img[(c * s + y) * s + x] = v;
                    }
                }
            }
            // A few rectangles.
            for _ in 0..3 {
                let x0 = self.rng.below(s);
                let y0 = self.rng.below(s);
                let w = (self.rng.below(s / 2) + 1).min(s - x0);
                let h = (self.rng.below(s / 2) + 1).min(s - y0);
                let mut color = [0.0f32; 3];
                for c in &mut color {
                    *c = self.rng.uniform(-1.0, 1.0);
                }
                for c in 0..3 {
                    for y in y0..y0 + h {
                        for x in x0..x0 + w {
                            img[(c * s + y) * s + x] = color[c];
                        }
                    }
                }
            }
        }
        Tensor::from_vec(data, [n, 3, s, s]).clamp(-1.0, 1.0)
    }
}

/// Labeled image generator standing in for CIFAR-10: each class renders a
/// distinct parametric pattern (stripes, checkers, blobs at class-specific
/// frequencies) plus noise, so classifiers genuinely have to learn.
#[derive(Debug)]
pub struct LabeledImages {
    size: usize,
    classes: usize,
    rng: Rng,
}

impl LabeledImages {
    /// Creates a generator of `size x size` RGB images over `classes`
    /// classes.
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0`.
    pub fn new(size: usize, classes: usize, seed: u64) -> Self {
        assert!(classes > 0, "need at least one class");
        LabeledImages {
            size,
            classes,
            rng: Rng::seed_from(seed),
        }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Samples a batch: `([N, 3, S, S], labels)`.
    pub fn batch(&mut self, n: usize) -> (Tensor, Vec<usize>) {
        let s = self.size;
        let mut data = vec![0.0f32; n * 3 * s * s];
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = self.rng.below(self.classes);
            labels.push(class);
            let freq = 1.0 + class as f32;
            let phase = self.rng.uniform(0.0, std::f32::consts::TAU);
            let img = &mut data[i * 3 * s * s..(i + 1) * 3 * s * s];
            for c in 0..3 {
                for y in 0..s {
                    for x in 0..s {
                        let u = x as f32 / s as f32;
                        let v = y as f32 / s as f32;
                        let pattern = ((freq * std::f32::consts::TAU * u + phase).sin()
                            + (freq * std::f32::consts::TAU * v + phase * 0.5).cos())
                            * 0.4;
                        let noise = self.rng.standard_normal() * 0.1;
                        img[(c * s + y) * s + x] = pattern + noise + 0.1 * c as f32;
                    }
                }
            }
        }
        (Tensor::from_vec(data, [n, 3, s, s]), labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gan_images_in_range() {
        let mut ds = GanImages::new(16, 1);
        let b = ds.batch(3);
        assert_eq!(b.dims(), &[3, 3, 16, 16]);
        assert!(b.max_value() <= 1.0);
        assert!(b.min_value() >= -1.0);
    }

    #[test]
    fn gan_images_have_structure() {
        // Not constant, not white noise: neighboring pixels correlate.
        let mut ds = GanImages::new(32, 2);
        let b = ds.batch(1);
        let d = b.as_slice();
        let mut same = 0;
        let mut total = 0;
        for i in 0..d.len() - 1 {
            if (d[i] - d[i + 1]).abs() < 0.05 {
                same += 1;
            }
            total += 1;
        }
        assert!(
            same as f64 / total as f64 > 0.5,
            "insufficient spatial coherence"
        );
    }

    #[test]
    fn labeled_images_shapes_and_classes() {
        let mut ds = LabeledImages::new(8, 10, 3);
        let (x, y) = ds.batch(16);
        assert_eq!(x.dims(), &[16, 3, 8, 8]);
        assert!(y.iter().all(|&c| c < 10));
    }

    #[test]
    fn deterministic_by_seed() {
        let a = GanImages::new(8, 5).batch(2);
        let b = GanImages::new(8, 5).batch(2);
        assert_eq!(a, b);
    }

    #[test]
    fn classes_have_different_statistics() {
        // Class frequency should show up in horizontal autocorrelation.
        let mut ds = LabeledImages::new(16, 4, 7);
        let mut stats = vec![Vec::new(); 4];
        for _ in 0..20 {
            let (x, y) = ds.batch(8);
            for (i, &c) in y.iter().enumerate() {
                let img = x.narrow(0, i, 1);
                // Mean absolute horizontal difference = roughness.
                let d = img.as_slice();
                let rough: f32 =
                    d.windows(2).map(|w| (w[0] - w[1]).abs()).sum::<f32>() / (d.len() - 1) as f32;
                stats[c].push(rough);
            }
        }
        let mean = |v: &Vec<f32>| v.iter().sum::<f32>() / v.len().max(1) as f32;
        // Higher-frequency classes are rougher.
        assert!(mean(&stats[3]) > mean(&stats[0]));
    }
}
