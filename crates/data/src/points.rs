//! Synthetic 3-D point clouds standing in for the ShapeNet-part dataset.
//!
//! Each cloud is sampled from a parametric primitive (sphere, cuboid,
//! cylinder, cone, torus, plane) with per-point *part* labels derived from
//! the surface region — the same `(points, class)` and
//! `(points, per-point part)` supervision shapes as ShapeNet-part.

use hfta_tensor::{Rng, Tensor};

/// Number of shape classes the generator produces.
pub const SHAPE_CLASSES: usize = 6;

/// Number of part labels per shape (all shapes use the same label space,
/// as PointNet-seg's per-category heads do after flattening).
pub const PART_CLASSES: usize = 4;

fn sample_point(rng: &mut Rng, class: usize) -> ([f32; 3], usize) {
    match class {
        // Sphere: parts = octant pairs.
        0 => {
            let v = [
                rng.standard_normal(),
                rng.standard_normal(),
                rng.standard_normal(),
            ];
            let n = (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt().max(1e-6);
            let p = [v[0] / n, v[1] / n, v[2] / n];
            let part = (p[2] > 0.0) as usize * 2 + (p[0] > 0.0) as usize;
            (p, part)
        }
        // Cuboid surface: parts = which face pair.
        1 => {
            let face = rng.below(3);
            let sign = if rng.below(2) == 0 { -1.0 } else { 1.0 };
            let mut p = [
                rng.uniform(-1.0, 1.0),
                rng.uniform(-1.0, 1.0),
                rng.uniform(-1.0, 1.0),
            ];
            p[face] = sign;
            (p, face.min(PART_CLASSES - 1))
        }
        // Cylinder: side vs caps, split by height.
        2 => {
            let theta = rng.uniform(0.0, std::f32::consts::TAU);
            if rng.below(4) == 0 {
                // Cap.
                let r = rng.uniform(0.0, 1.0).sqrt();
                let z = if rng.below(2) == 0 { -1.0 } else { 1.0 };
                ([r * theta.cos(), r * theta.sin(), z], 3)
            } else {
                let z = rng.uniform(-1.0, 1.0);
                let part = ((z + 1.0) / 2.0 * 3.0) as usize;
                ([theta.cos(), theta.sin(), z], part.min(2))
            }
        }
        // Cone: apex region vs base rings.
        3 => {
            let h = rng.uniform(0.0, 1.0).sqrt();
            let theta = rng.uniform(0.0, std::f32::consts::TAU);
            let r = h * 0.8;
            let part = (h * PART_CLASSES as f32) as usize;
            (
                [r * theta.cos(), r * theta.sin(), 1.0 - h * 2.0],
                part.min(PART_CLASSES - 1),
            )
        }
        // Torus: quadrant of the major angle.
        4 => {
            let u = rng.uniform(0.0, std::f32::consts::TAU);
            let v = rng.uniform(0.0, std::f32::consts::TAU);
            let (cr, r) = (1.0, 0.35);
            let p = [
                (cr + r * v.cos()) * u.cos(),
                (cr + r * v.cos()) * u.sin(),
                r * v.sin(),
            ];
            let part = (u / std::f32::consts::TAU * PART_CLASSES as f32) as usize;
            (p, part.min(PART_CLASSES - 1))
        }
        // Plane with a ridge: side of the ridge + height band.
        _ => {
            let x = rng.uniform(-1.0, 1.0);
            let y = rng.uniform(-1.0, 1.0);
            let z = 0.3 * (3.0 * x).sin();
            let part = (x > 0.0) as usize * 2 + (y > 0.0) as usize;
            ([x, y, z], part)
        }
    }
}

/// Classification point-cloud generator: `(cloud [3, P], class)` samples,
/// batched as `([N, 3, P], Vec<class>)`.
///
/// # Example
///
/// ```
/// use hfta_data::PointClouds;
/// let mut ds = PointClouds::new(128, 7);
/// let (x, y) = ds.batch(4);
/// assert_eq!(x.dims(), &[4, 3, 128]);
/// assert_eq!(y.len(), 4);
/// ```
#[derive(Debug)]
pub struct PointClouds {
    points: usize,
    rng: Rng,
}

impl PointClouds {
    /// Creates a generator producing `points` points per cloud.
    pub fn new(points: usize, seed: u64) -> Self {
        PointClouds {
            points,
            rng: Rng::seed_from(seed),
        }
    }

    /// Points per cloud.
    pub fn points(&self) -> usize {
        self.points
    }

    /// Samples a batch of `n` clouds: `([N, 3, P], class labels)`.
    pub fn batch(&mut self, n: usize) -> (Tensor, Vec<usize>) {
        let mut data = vec![0.0f32; n * 3 * self.points];
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = self.rng.below(SHAPE_CLASSES);
            labels.push(class);
            for p in 0..self.points {
                let (xyz, _) = sample_point(&mut self.rng, class);
                for (d, &v) in xyz.iter().enumerate() {
                    data[(i * 3 + d) * self.points + p] = v;
                }
            }
        }
        (Tensor::from_vec(data, [n, 3, self.points]), labels)
    }
}

/// Segmentation point-cloud generator: per-point part labels.
#[derive(Debug)]
pub struct PartLabeledClouds {
    points: usize,
    rng: Rng,
}

impl PartLabeledClouds {
    /// Creates a generator producing `points` points per cloud.
    pub fn new(points: usize, seed: u64) -> Self {
        PartLabeledClouds {
            points,
            rng: Rng::seed_from(seed),
        }
    }

    /// Samples a batch: `([N, 3, P], per-point labels of length N * P)`.
    pub fn batch(&mut self, n: usize) -> (Tensor, Vec<usize>) {
        let mut data = vec![0.0f32; n * 3 * self.points];
        let mut labels = Vec::with_capacity(n * self.points);
        for i in 0..n {
            let class = self.rng.below(SHAPE_CLASSES);
            for p in 0..self.points {
                let (xyz, part) = sample_point(&mut self.rng, class);
                for (d, &v) in xyz.iter().enumerate() {
                    data[(i * 3 + d) * self.points + p] = v;
                }
                labels.push(part);
            }
        }
        (Tensor::from_vec(data, [n, 3, self.points]), labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_shapes() {
        let mut ds = PointClouds::new(64, 1);
        let (x, y) = ds.batch(8);
        assert_eq!(x.dims(), &[8, 3, 64]);
        assert_eq!(y.len(), 8);
        assert!(y.iter().all(|&c| c < SHAPE_CLASSES));
    }

    #[test]
    fn seg_labels_per_point() {
        let mut ds = PartLabeledClouds::new(32, 2);
        let (x, y) = ds.batch(4);
        assert_eq!(x.dims(), &[4, 3, 32]);
        assert_eq!(y.len(), 4 * 32);
        assert!(y.iter().all(|&p| p < PART_CLASSES));
    }

    #[test]
    fn deterministic_by_seed() {
        let (a, la) = PointClouds::new(16, 9).batch(2);
        let (b, lb) = PointClouds::new(16, 9).batch(2);
        assert_eq!(a, b);
        assert_eq!(la, lb);
        let (c, _) = PointClouds::new(16, 10).batch(2);
        assert_ne!(a, c);
    }

    #[test]
    fn points_are_bounded() {
        let (x, _) = PointClouds::new(256, 3).batch(4);
        assert!(x.max_value() <= 1.5);
        assert!(x.min_value() >= -1.5);
        assert!(!x.has_non_finite());
    }

    #[test]
    fn classes_are_distinguishable() {
        // Crude separability: spheres (class 0) have near-unit radius,
        // planes (class 5) are flat — their mean |z| statistics differ.
        let mut rng = Rng::seed_from(4);
        let mut radius = [0.0f32; 2];
        for (slot, class) in [(0, 0), (1, 5)] {
            let mut acc = 0.0;
            for _ in 0..500 {
                let (p, _) = sample_point(&mut rng, class);
                acc += (p[0] * p[0] + p[1] * p[1] + p[2] * p[2]).sqrt();
            }
            radius[slot] = acc / 500.0;
        }
        assert!((radius[0] - 1.0).abs() < 0.05);
        assert!(radius[1] < 0.95);
    }

    #[test]
    fn all_parts_appear() {
        let mut ds = PartLabeledClouds::new(512, 5);
        let (_, y) = ds.batch(8);
        for part in 0..PART_CLASSES {
            assert!(y.contains(&part), "part {part} never sampled");
        }
    }
}
