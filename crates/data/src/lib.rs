//! # hfta-data
//!
//! Deterministic synthetic stand-ins for the datasets of the HFTA paper's
//! evaluation: ShapeNet-part point clouds (PointNet classification and
//! segmentation), LSUN bedroom images (DCGAN) and CIFAR-10 (ResNet-18).
//!
//! The real datasets are unavailable offline; these generators produce
//! learnable distributions with the same tensor shapes and statistics, so
//! every training code path (data loading, batching, loss computation,
//! convergence comparisons) is exercised identically. DESIGN.md §4 records
//! the substitution.

#![warn(missing_docs)]

pub mod images;
pub mod points;

pub use images::{GanImages, LabeledImages};
pub use points::{PartLabeledClouds, PointClouds, SHAPE_CLASSES};
