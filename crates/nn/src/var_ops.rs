//! Differentiable arithmetic, layout and reduction ops on [`Var`].
//!
//! Every substantive op opens a forward telemetry span via
//! `Tape::record_op` before computing; when no profiler is installed the
//! call is a single branch and the cost closure never runs.

use hfta_telemetry::OpCost;
use hfta_tensor::Tensor;

use crate::tape::Var;

impl Var {
    // ------------------------------------------------------------------
    // Broadcasting arithmetic
    // ------------------------------------------------------------------

    /// Elementwise addition with broadcasting.
    pub fn add(&self, other: &Var) -> Var {
        let _t = self.tape.record_op("add", || {
            OpCost::elementwise(self.numel().max(other.numel()))
        });
        let value = self.with_value(|a| other.with_value(|b| a.add(b)));
        let sa = self.with_value(|a| a.shape().clone());
        let sb = other.with_value(|b| b.shape().clone());
        self.binary(other, value, move |g| (g.sum_to(&sa), g.sum_to(&sb)))
    }

    /// Elementwise subtraction with broadcasting.
    pub fn sub(&self, other: &Var) -> Var {
        let _t = self.tape.record_op("sub", || {
            OpCost::elementwise(self.numel().max(other.numel()))
        });
        let value = self.with_value(|a| other.with_value(|b| a.sub(b)));
        let sa = self.with_value(|a| a.shape().clone());
        let sb = other.with_value(|b| b.shape().clone());
        self.binary(other, value, move |g| (g.sum_to(&sa), g.neg().sum_to(&sb)))
    }

    /// Elementwise multiplication with broadcasting.
    pub fn mul(&self, other: &Var) -> Var {
        let _t = self.tape.record_op("mul", || {
            OpCost::elementwise(self.numel().max(other.numel()))
        });
        let (av, bv) = (self.value(), other.value());
        let (sa, sb) = (av.shape().clone(), bv.shape().clone());
        let value = av.mul(&bv);
        self.binary(other, value, move |g| {
            (g.mul(&bv).sum_to(&sa), g.mul(&av).sum_to(&sb))
        })
    }

    /// Elementwise division with broadcasting.
    pub fn div(&self, other: &Var) -> Var {
        let _t = self.tape.record_op("div", || {
            OpCost::elementwise(self.numel().max(other.numel()))
        });
        let (av, bv) = (self.value(), other.value());
        let (sa, sb) = (av.shape().clone(), bv.shape().clone());
        let value = av.div(&bv);
        self.binary(other, value, move |g| {
            let ga = g.div(&bv).sum_to(&sa);
            let gb = g.mul(&av).neg().div(&bv.square()).sum_to(&sb);
            (ga, gb)
        })
    }

    /// Adds a scalar.
    pub fn add_scalar(&self, s: f32) -> Var {
        let _t = self
            .tape
            .record_op("add_scalar", || OpCost::elementwise(self.numel()));
        self.unary(self.with_value(|x| x.add_scalar(s)), |g| g.clone())
    }

    /// Multiplies by a scalar.
    pub fn mul_scalar(&self, s: f32) -> Var {
        let _t = self
            .tape
            .record_op("mul_scalar", || OpCost::elementwise(self.numel()));
        self.unary(self.with_value(|x| x.mul_scalar(s)), move |g| {
            g.mul_scalar(s)
        })
    }

    /// Negation.
    pub fn neg(&self) -> Var {
        let _t = self
            .tape
            .record_op("neg", || OpCost::elementwise(self.numel()));
        self.unary(self.with_value(|x| x.neg()), |g| g.neg())
    }

    // ------------------------------------------------------------------
    // Nonlinearities
    // ------------------------------------------------------------------

    /// Rectified linear unit.
    pub fn relu(&self) -> Var {
        let _t = self
            .tape
            .record_op("relu", || OpCost::elementwise(self.numel()));
        let mask = self.with_value(|x| x.gt_mask(&Tensor::scalar(0.0)));
        self.unary(self.with_value(|x| x.relu()), move |g| g.mul(&mask))
    }

    /// Leaky ReLU with the given negative slope.
    pub fn leaky_relu(&self, slope: f32) -> Var {
        let _t = self
            .tape
            .record_op("leaky_relu", || OpCost::elementwise(self.numel()));
        let dmask = self.with_value(|v| v.map(|x| if x >= 0.0 { 1.0 } else { slope }));
        self.unary(self.with_value(|v| v.leaky_relu(slope)), move |g| {
            g.mul(&dmask)
        })
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Var {
        let _t = self
            .tape
            .record_op("tanh", || OpCost::elementwise(self.numel()));
        let y = self.with_value(|x| x.tanh());
        let yc = y.clone();
        self.unary(y, move |g| g.mul(&yc.square().neg().add_scalar(1.0)))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self) -> Var {
        let _t = self
            .tape
            .record_op("sigmoid", || OpCost::elementwise(self.numel()));
        let y = self.with_value(|x| x.sigmoid());
        let yc = y.clone();
        self.unary(y, move |g| g.mul(&yc).mul(&yc.neg().add_scalar(1.0)))
    }

    /// Natural exponential.
    pub fn exp(&self) -> Var {
        let _t = self
            .tape
            .record_op("exp", || OpCost::elementwise(self.numel()));
        let y = self.with_value(|x| x.exp());
        let yc = y.clone();
        self.unary(y, move |g| g.mul(&yc))
    }

    /// Natural logarithm.
    pub fn ln(&self) -> Var {
        let _t = self
            .tape
            .record_op("ln", || OpCost::elementwise(self.numel()));
        let x = self.value();
        let value = x.ln();
        self.unary(value, move |g| g.div(&x))
    }

    /// Elementwise square.
    pub fn square(&self) -> Var {
        let _t = self
            .tape
            .record_op("square", || OpCost::elementwise(self.numel()));
        let x = self.value();
        let value = x.square();
        self.unary(value, move |g| g.mul(&x).mul_scalar(2.0))
    }

    /// Multiplies elementwise by a *constant* tensor (no gradient into the
    /// constant) — dropout masks, attention masks, per-model LR vectors.
    ///
    /// # Panics
    ///
    /// Panics if the shapes do not broadcast.
    pub fn mul_const(&self, c: &Tensor) -> Var {
        let _t = self
            .tape
            .record_op("mul_const", || OpCost::elementwise(self.numel()));
        let shape = self.with_value(|v| v.shape().clone());
        let cc = c.clone();
        self.unary(self.with_value(|v| v.mul(c)), move |g| {
            g.mul(&cc).sum_to(&shape)
        })
    }

    /// Adds a *constant* tensor (no gradient into the constant).
    ///
    /// # Panics
    ///
    /// Panics if the shapes do not broadcast.
    pub fn add_const(&self, c: &Tensor) -> Var {
        let _t = self
            .tape
            .record_op("add_const", || OpCost::elementwise(self.numel()));
        let shape = self.with_value(|v| v.shape().clone());
        self.unary(self.with_value(|v| v.add(c)), move |g| g.sum_to(&shape))
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements (scalar output).
    pub fn sum(&self) -> Var {
        let _t = self
            .tape
            .record_op("sum", || OpCost::reduction(self.numel()));
        let shape = self.with_value(|v| v.shape().clone());
        self.unary(self.with_value(|v| v.sum()), move |g| {
            Tensor::full(shape.clone(), g.item())
        })
    }

    /// Mean of all elements (scalar output).
    pub fn mean(&self) -> Var {
        let _t = self
            .tape
            .record_op("mean", || OpCost::reduction(self.numel()));
        let shape = self.with_value(|v| v.shape().clone());
        let n = shape.numel() as f32;
        self.unary(self.with_value(|v| v.mean()), move |g| {
            Tensor::full(shape.clone(), g.item() / n)
        })
    }

    /// Sum along `axis`, keeping it as size 1.
    pub fn sum_axis_keep(&self, axis: usize) -> Var {
        let _t = self
            .tape
            .record_op("sum_axis", || OpCost::reduction(self.numel()));
        let shape = self.with_value(|v| v.shape().clone());
        self.unary(self.with_value(|v| v.sum_axis(axis, true)), move |g| {
            // Broadcast the reduced gradient back across the axis.
            Tensor::zeros(shape.clone()).add(g)
        })
    }

    /// Mean along `axis`, keeping it as size 1.
    pub fn mean_axis_keep(&self, axis: usize) -> Var {
        let n = self.with_value(|v| v.dim(axis)) as f32;
        self.sum_axis_keep(axis).mul_scalar(1.0 / n)
    }

    /// Maximum along `axis` (axis removed); gradient routes to the argmax.
    pub fn max_axis(&self, axis: usize) -> Var {
        let _t = self
            .tape
            .record_op("max_axis", || OpCost::reduction(self.numel()));
        let (out, indices, in_dims, n) = self.with_value(|v| {
            let (out, indices) = v.max_axis_with_indices(axis);
            (out, indices, v.dims().to_vec(), v.dim(axis))
        });
        let (outer, inner) = {
            let outer: usize = in_dims[..axis].iter().product();
            let inner: usize = in_dims[axis + 1..].iter().product();
            (outer, inner)
        };
        self.unary(out, move |g| {
            let gd = g.as_slice();
            let mut gx_t = Tensor::zeros(in_dims.clone());
            let gx = gx_t.as_mut_slice();
            for o in 0..outer {
                for i in 0..inner {
                    let k = indices[o * inner + i];
                    gx[(o * n + k) * inner + i] += gd[o * inner + i];
                }
            }
            gx_t
        })
    }

    // ------------------------------------------------------------------
    // Layout
    // ------------------------------------------------------------------

    /// Reshape (element count preserved).
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Var {
        let _t = self
            .tape
            .record_op("reshape", || OpCost::elementwise(self.numel()));
        let old = self.with_value(|v| v.dims().to_vec());
        self.unary(self.with_value(|v| v.reshape(dims)), move |g| {
            g.reshape(&old)
        })
    }

    /// Flattens all dimensions from `start_axis` onward.
    pub fn flatten_from(&self, start_axis: usize) -> Var {
        let _t = self
            .tape
            .record_op("flatten", || OpCost::elementwise(self.numel()));
        let old = self.with_value(|v| v.dims().to_vec());
        self.unary(self.with_value(|v| v.flatten_from(start_axis)), move |g| {
            g.reshape(&old)
        })
    }

    /// Permutes axes.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of the rank.
    pub fn permute(&self, order: &[usize]) -> Var {
        let _t = self
            .tape
            .record_op("permute", || OpCost::elementwise(self.numel()));
        let order = order.to_vec();
        let mut inverse = vec![0usize; order.len()];
        for (i, &a) in order.iter().enumerate() {
            inverse[a] = i;
        }
        self.unary(self.with_value(|v| v.permute(&order)), move |g| {
            g.permute(&inverse)
        })
    }

    /// Swaps two axes.
    pub fn transpose(&self, a: usize, b: usize) -> Var {
        let mut order: Vec<usize> = (0..self.with_value(|v| v.rank())).collect();
        order.swap(a, b);
        self.permute(&order)
    }

    /// Slice of `len` elements from `start` along `axis`.
    pub fn narrow(&self, axis: usize, start: usize, len: usize) -> Var {
        let _t = self
            .tape
            .record_op("narrow", || OpCost::elementwise(self.numel()));
        let dims = self.with_value(|v| v.dims().to_vec());
        self.unary(self.with_value(|v| v.narrow(axis, start, len)), move |g| {
            let mut gx = Tensor::zeros(dims.clone());
            gx.narrow_assign(axis, start, g);
            gx
        })
    }

    /// Concatenates variables along `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `vars` is empty or shapes are incompatible.
    pub fn concat(vars: &[&Var], axis: usize) -> Var {
        assert!(!vars.is_empty(), "concat of zero vars");
        let tape = vars[0].tape.clone();
        let _t = tape.record_op("concat", || {
            OpCost::elementwise(vars.iter().map(|v| v.numel()).sum())
        });
        let values: Vec<Tensor> = vars.iter().map(|v| v.value()).collect();
        let value = Tensor::concat(&values.iter().collect::<Vec<_>>(), axis);
        let ids: Vec<usize> = vars.iter().map(|v| v.id).collect();
        let sizes: Vec<usize> = values.iter().map(|v| v.dim(axis)).collect();
        tape.push(
            value,
            Some(Box::new(move |g| {
                let mut out = Vec::with_capacity(ids.len());
                let mut off = 0;
                for (i, &id) in ids.iter().enumerate() {
                    out.push((id, g.narrow(axis, off, sizes[i])));
                    off += sizes[i];
                }
                out
            })),
            None,
        )
    }

    // ------------------------------------------------------------------
    // Linear algebra
    // ------------------------------------------------------------------

    /// 2-D matrix product.
    pub fn matmul(&self, other: &Var) -> Var {
        let _t = self.tape.record_op("matmul", || {
            let (a, b) = (self.dims(), other.dims());
            OpCost::matmul(1, a[0], a[1], b[1])
        });
        let (a, b) = (self.value(), other.value());
        let value = a.matmul(&b);
        self.binary(other, value, move |g| (g.matmul(&b.t()), a.t().matmul(g)))
    }

    /// Batched matrix product `[B, m, k] x [B, k, n]`.
    pub fn bmm(&self, other: &Var) -> Var {
        let _t = self.tape.record_op("bmm", || {
            let (a, b) = (self.dims(), other.dims());
            OpCost::matmul(a[0], a[1], a[2], b[2])
        });
        let (a, b) = (self.value(), other.value());
        let value = a.bmm(&b);
        self.binary(other, value, move |g| (g.bmm_nt(&b), a.bmm_tn(g)))
    }

    /// Batched `bias + self @ other` with broadcastable bias — the fused
    /// linear layer primitive (HFTA Table 6).
    pub fn baddbmm(&self, other: &Var, bias: &Var) -> Var {
        self.bmm(other).add(bias)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_gradients;
    use crate::parameter::Parameter;
    use crate::tape::Tape;
    use hfta_tensor::Rng;

    fn param(rng: &mut Rng, shape: &[usize], name: &str) -> Parameter {
        Parameter::new(rng.randn(shape.to_vec()), name)
    }

    #[test]
    fn add_mul_grads() {
        let w = Parameter::new(Tensor::from_vec(vec![2.0, 3.0], [2]), "w");
        let tape = Tape::new();
        let x = tape.param(&w);
        let y = x.mul(&x).add(&x).sum(); // y = x^2 + x, dy/dx = 2x + 1
        y.backward();
        assert_eq!(w.grad_cloned().to_vec(), vec![5.0, 7.0]);
    }

    #[test]
    fn broadcast_grad_sums() {
        // row [3] broadcast over [2,3]: grad of row = column-sum of g.
        let row = Parameter::new(Tensor::zeros([3]), "row");
        let tape = Tape::new();
        let m = tape.leaf(Tensor::ones([2, 3]));
        let y = m.add(&tape.param(&row)).sum();
        y.backward();
        assert_eq!(row.grad_cloned().to_vec(), vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn matmul_gradcheck() {
        let mut rng = Rng::seed_from(1);
        let a = param(&mut rng, &[3, 4], "a");
        let b = param(&mut rng, &[4, 2], "b");
        check_gradients(
            &[a.clone(), b.clone()],
            |tape| tape.param(&a).matmul(&tape.param(&b)).sum(),
            1e-2,
        );
    }

    #[test]
    fn bmm_gradcheck() {
        let mut rng = Rng::seed_from(2);
        let a = param(&mut rng, &[2, 3, 4], "a");
        let b = param(&mut rng, &[2, 4, 2], "b");
        check_gradients(
            &[a.clone(), b.clone()],
            |tape| tape.param(&a).bmm(&tape.param(&b)).square().sum(),
            1e-1,
        );
    }

    #[test]
    fn baddbmm_gradcheck() {
        let mut rng = Rng::seed_from(3);
        let x = param(&mut rng, &[2, 3, 4], "x");
        let w = param(&mut rng, &[2, 4, 5], "w");
        let bias = param(&mut rng, &[2, 1, 5], "b");
        check_gradients(
            &[x.clone(), w.clone(), bias.clone()],
            |tape| {
                tape.param(&x)
                    .baddbmm(&tape.param(&w), &tape.param(&bias))
                    .sum()
            },
            1e-2,
        );
    }

    #[test]
    fn nonlinearity_gradchecks() {
        let mut rng = Rng::seed_from(4);
        let x = param(&mut rng, &[3, 3], "x");
        for f in [
            (|v: &Var| v.relu().sum()) as fn(&Var) -> Var,
            |v| v.leaky_relu(0.2).sum(),
            |v| v.tanh().sum(),
            |v| v.sigmoid().sum(),
            |v| v.exp().sum(),
            |v| v.square().sum(),
        ] {
            check_gradients(std::slice::from_ref(&x), |tape| f(&tape.param(&x)), 1e-2);
        }
    }

    #[test]
    fn ln_gradcheck_positive_domain() {
        let x = Parameter::new(Tensor::from_vec(vec![0.5, 1.0, 2.0, 3.0], [4]), "x");
        check_gradients(
            std::slice::from_ref(&x),
            |tape| tape.param(&x).ln().sum(),
            1e-2,
        );
    }

    #[test]
    fn div_gradcheck() {
        let a = Parameter::new(Tensor::from_vec(vec![1.0, -2.0], [2]), "a");
        let b = Parameter::new(Tensor::from_vec(vec![2.0, 4.0], [2]), "b");
        check_gradients(
            &[a.clone(), b.clone()],
            |tape| tape.param(&a).div(&tape.param(&b)).sum(),
            1e-2,
        );
    }

    #[test]
    fn max_axis_routes_gradient() {
        let w = Parameter::new(
            Tensor::from_vec(vec![1.0, 5.0, 3.0, 2.0, 0.0, 4.0], [2, 3]),
            "w",
        );
        let tape = Tape::new();
        let y = tape.param(&w).max_axis(1).sum();
        y.backward();
        assert_eq!(w.grad_cloned().to_vec(), vec![0.0, 1.0, 0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn narrow_concat_round_trip_grads() {
        let w = Parameter::new(Tensor::arange(6).reshape(&[2, 3]), "w");
        let tape = Tape::new();
        let x = tape.param(&w);
        let a = x.narrow(1, 0, 1);
        let b = x.narrow(1, 1, 2);
        let y = Var::concat(&[&a, &b], 1).mul_scalar(2.0).sum();
        y.backward();
        assert_eq!(w.grad_cloned().to_vec(), vec![2.0; 6]);
    }

    #[test]
    fn permute_gradcheck() {
        let mut rng = Rng::seed_from(6);
        let x = param(&mut rng, &[2, 3, 4], "x");
        check_gradients(
            std::slice::from_ref(&x),
            |tape| tape.param(&x).permute(&[2, 0, 1]).square().sum(),
            1e-1,
        );
    }

    #[test]
    fn reductions_grads() {
        let w = Parameter::new(Tensor::ones([2, 3]), "w");
        let tape = Tape::new();
        let y = tape.param(&w).mean();
        y.backward();
        assert!(w
            .grad_cloned()
            .allclose(&Tensor::full([2, 3], 1.0 / 6.0), 1e-6));
        let w2 = Parameter::new(Tensor::ones([2, 3]), "w2");
        let tape2 = Tape::new();
        let y2 = tape2.param(&w2).sum_axis_keep(0).sum();
        y2.backward();
        assert_eq!(w2.grad_cloned().to_vec(), vec![1.0; 6]);
    }

    #[test]
    fn mul_const_does_not_track_constant() {
        let w = Parameter::new(Tensor::ones([2]), "w");
        let tape = Tape::new();
        let mask = Tensor::from_vec(vec![0.0, 2.0], [2]);
        let y = tape.param(&w).mul_const(&mask).sum();
        y.backward();
        assert_eq!(w.grad_cloned().to_vec(), vec![0.0, 2.0]);
    }
}
