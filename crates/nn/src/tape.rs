//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Tape`] records the forward computation as a topologically ordered
//! list of nodes; [`Var::backward`] sweeps it in reverse, accumulating
//! gradients into [`Parameter`] slots. The tape is rebuilt every training
//! iteration while parameters persist outside it — the same lifecycle as
//! PyTorch's dynamic graph.

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use hfta_telemetry::{LaneId, OpCost, OpSpanGuard, Profiler};
use hfta_tensor::Tensor;

use crate::parameter::Parameter;

/// Gradients flowing to each parent: `(parent_node_id, gradient)` pairs.
pub(crate) type ParentGrads = Vec<(usize, Tensor)>;

/// A backward function: maps the node's output gradient to parent gradients.
pub(crate) type BackwardFn = Box<dyn Fn(&Tensor) -> ParentGrads>;

pub(crate) struct Node {
    pub(crate) value: Tensor,
    pub(crate) backward: Option<BackwardFn>,
    pub(crate) param: Option<Parameter>,
    /// Op that produced this node; names the backward span.
    pub(crate) op: &'static str,
}

/// Telemetry captured once per tape so hot paths pay a single branch.
pub(crate) struct TapeTelemetry {
    pub(crate) profiler: Profiler,
    pub(crate) fwd: LaneId,
    pub(crate) bwd: LaneId,
}

#[derive(Default)]
pub(crate) struct TapeInner {
    pub(crate) nodes: RefCell<Vec<Node>>,
    /// Name of the op currently recording (consumed by the next `push`).
    pub(crate) current_op: Cell<Option<&'static str>>,
    /// `Some` only when a profiler was installed at tape creation.
    pub(crate) telemetry: Option<TapeTelemetry>,
}

/// A recording of a forward computation.
///
/// Create variables with [`Tape::leaf`] (constants) and [`Tape::param`]
/// (trainable leaves), combine them with the methods on [`Var`], and call
/// [`Var::backward`] on a scalar loss.
///
/// # Example
///
/// ```
/// use hfta_nn::{Parameter, Tape};
/// use hfta_tensor::Tensor;
///
/// let w = Parameter::new(Tensor::from_vec(vec![3.0], [1]), "w");
/// let tape = Tape::new();
/// let x = tape.leaf(Tensor::from_vec(vec![2.0], [1]));
/// let loss = tape.param(&w).mul(&x).sum();
/// loss.backward();
/// assert_eq!(w.grad_cloned().to_vec(), vec![2.0]); // d(w*x)/dw = x
/// ```
#[derive(Clone)]
pub struct Tape {
    pub(crate) inner: Rc<TapeInner>,
}

impl Default for Tape {
    fn default() -> Self {
        Tape::new()
    }
}

impl Tape {
    /// Creates an empty tape. If a [`Profiler`] is installed on this thread,
    /// the tape caches it (plus its forward/backward lanes) so op recording
    /// pays one branch per op; otherwise telemetry is fully disabled.
    pub fn new() -> Self {
        let telemetry = Profiler::current().map(|profiler| {
            let fwd = profiler.lane("autograd", "forward");
            let bwd = profiler.lane("autograd", "backward");
            TapeTelemetry { profiler, fwd, bwd }
        });
        Tape {
            inner: Rc::new(TapeInner {
                nodes: RefCell::new(Vec::new()),
                current_op: Cell::new(None),
                telemetry,
            }),
        }
    }

    /// Opens a forward span for op `name`, attributing FLOPs and bytes from
    /// `cost`. On close the span folds an `OpSample {flops, bytes, ns}` into
    /// the current experiment's per-op aggregates (the hfta-probe roofline
    /// feed). When no profiler is installed this is a single branch: `cost`
    /// is never evaluated and no allocation happens.
    pub(crate) fn record_op(
        &self,
        name: &'static str,
        cost: impl FnOnce() -> OpCost,
    ) -> Option<OpSpanGuard> {
        let t = self.inner.telemetry.as_ref()?;
        self.inner.current_op.set(Some(name));
        Some(t.profiler.op_span(t.fwd, name, cost()))
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.inner.nodes.borrow().len()
    }

    /// Whether the tape has no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records a constant leaf (no gradient tracking).
    pub fn leaf(&self, value: Tensor) -> Var {
        self.push(value, None, None)
    }

    /// Records a trainable leaf bound to `param`; gradients reaching it
    /// accumulate into the parameter's grad slot.
    pub fn param(&self, param: &Parameter) -> Var {
        self.push(param.value_cloned(), None, Some(param.clone()))
    }

    pub(crate) fn push(
        &self,
        value: Tensor,
        backward: Option<BackwardFn>,
        param: Option<Parameter>,
    ) -> Var {
        let op = self.inner.current_op.take().unwrap_or("leaf");
        let mut nodes = self.inner.nodes.borrow_mut();
        nodes.push(Node {
            value,
            backward,
            param,
            op,
        });
        Var {
            tape: self.clone(),
            id: nodes.len() - 1,
        }
    }
}

impl std::fmt::Debug for Tape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tape({} nodes)", self.len())
    }
}

/// A node in the computation graph: a value plus how to propagate
/// gradients to its inputs.
///
/// `Var` is a lightweight handle (tape reference + node id); cloning it
/// does not copy the value.
#[derive(Clone)]
pub struct Var {
    pub(crate) tape: Tape,
    pub(crate) id: usize,
}

impl Var {
    /// Clone of the node's value.
    ///
    /// This deep-copies the tensor; on hot paths that only need to *read*
    /// the value (compute a forward result, inspect a shape), prefer
    /// [`Var::with_value`], which borrows in place.
    pub fn value(&self) -> Tensor {
        self.with_value(Tensor::clone)
    }

    /// Runs `f` against a borrow of the node's value — the allocation-free
    /// alternative to [`Var::value`] for read-only access.
    ///
    /// # Panics
    ///
    /// Panics if `f` re-enters the tape mutably (records a new op).
    pub fn with_value<R>(&self, f: impl FnOnce(&Tensor) -> R) -> R {
        f(&self.tape.inner.nodes.borrow()[self.id].value)
    }

    /// Dimension sizes of the node's value.
    pub fn dims(&self) -> Vec<usize> {
        self.tape.inner.nodes.borrow()[self.id]
            .value
            .dims()
            .to_vec()
    }

    /// Size of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis` is out of range.
    pub fn dim(&self, axis: usize) -> usize {
        self.tape.inner.nodes.borrow()[self.id].value.dim(axis)
    }

    /// Number of elements of the node's value.
    pub fn numel(&self) -> usize {
        self.tape.inner.nodes.borrow()[self.id].value.numel()
    }

    /// The scalar value (for loss nodes).
    ///
    /// # Panics
    ///
    /// Panics if the value has more than one element.
    pub fn item(&self) -> f32 {
        self.tape.inner.nodes.borrow()[self.id].value.item()
    }

    /// The tape this variable lives on.
    pub fn tape(&self) -> &Tape {
        &self.tape
    }

    /// Runs reverse-mode differentiation from this (scalar) node,
    /// accumulating gradients into every reachable [`Parameter`].
    ///
    /// # Panics
    ///
    /// Panics if the value is not a single element.
    pub fn backward(&self) {
        let ones = {
            let nodes = self.tape.inner.nodes.borrow();
            assert_eq!(
                nodes[self.id].value.numel(),
                1,
                "backward() requires a scalar loss"
            );
            nodes[self.id].value.ones_like()
        };
        self.backward_with(ones);
    }

    /// Reverse sweep seeded with an explicit output gradient (same shape as
    /// this node's value). Useful for Jacobian-vector products in tests.
    ///
    /// # Panics
    ///
    /// Panics if `seed`'s shape differs from the node's value shape.
    pub fn backward_with(&self, seed: Tensor) {
        let nodes = self.tape.inner.nodes.borrow();
        assert_eq!(
            seed.shape(),
            nodes[self.id].value.shape(),
            "backward seed shape mismatch"
        );
        let telemetry = self.tape.inner.telemetry.as_ref();
        let _sweep = telemetry.map(|t| t.profiler.span(t.bwd, "backward"));
        let mut grads: Vec<Option<Tensor>> = vec![None; self.id + 1];
        grads[self.id] = Some(seed);
        for id in (0..=self.id).rev() {
            let Some(g) = grads[id].take() else { continue };
            let node = &nodes[id];
            if let Some(backward) = &node.backward {
                let _span = telemetry.map(|t| t.profiler.span(t.bwd, format!("bwd:{}", node.op)));
                for (pid, pg) in backward(&g) {
                    debug_assert!(pid < id, "tape must be topologically ordered");
                    match &mut grads[pid] {
                        Some(existing) => existing.add_assign_scaled(&pg, 1.0),
                        slot @ None => *slot = Some(pg),
                    }
                }
            }
            if let Some(param) = &node.param {
                param.accumulate_grad(&g);
            }
        }
    }

    /// Records a unary op: `value = f(self.value)`, with `backward`
    /// mapping the output gradient to this node's gradient.
    pub(crate) fn unary(
        &self,
        value: Tensor,
        backward: impl Fn(&Tensor) -> Tensor + 'static,
    ) -> Var {
        let id = self.id;
        self.tape.push(
            value,
            Some(Box::new(move |g| vec![(id, backward(g))])),
            None,
        )
    }

    /// Records a binary op with gradients for both operands.
    pub(crate) fn binary(
        &self,
        other: &Var,
        value: Tensor,
        backward: impl Fn(&Tensor) -> (Tensor, Tensor) + 'static,
    ) -> Var {
        assert!(
            Rc::ptr_eq(&self.tape.inner, &other.tape.inner),
            "operands must share a tape"
        );
        let (a, b) = (self.id, other.id);
        self.tape.push(
            value,
            Some(Box::new(move |g| {
                let (ga, gb) = backward(g);
                vec![(a, ga), (b, gb)]
            })),
            None,
        )
    }
}

impl std::fmt::Debug for Var {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let nodes = self.tape.inner.nodes.borrow();
        write!(
            f,
            "Var(#{}, shape {})",
            self.id,
            nodes[self.id].value.shape()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_holds_value() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![1.0, 2.0], [2]));
        assert_eq!(x.value().to_vec(), vec![1.0, 2.0]);
        assert_eq!(x.dims(), vec![2]);
        assert_eq!(tape.len(), 1);
    }

    #[test]
    fn param_grad_accumulates_across_backwards() {
        let w = Parameter::new(Tensor::from_vec(vec![2.0], [1]), "w");
        for _ in 0..2 {
            let tape = Tape::new();
            let loss = tape.param(&w).sum();
            loss.backward();
        }
        // d(sum(w))/dw = 1 per pass, accumulated twice.
        assert_eq!(w.grad_cloned().to_vec(), vec![2.0]);
    }

    #[test]
    fn diamond_graph_accumulates() {
        // loss = sum(x * x + x * x) with both products sharing x.
        let w = Parameter::new(Tensor::from_vec(vec![3.0], [1]), "w");
        let tape = Tape::new();
        let x = tape.param(&w);
        let y = x.mul(&x).add(&x.mul(&x)).sum();
        y.backward();
        // d(2x^2)/dx = 4x = 12.
        assert_eq!(w.grad_cloned().to_vec(), vec![12.0]);
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_requires_scalar() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::zeros([2]));
        x.backward();
    }

    #[test]
    fn backward_with_seed() {
        let w = Parameter::new(Tensor::from_vec(vec![1.0, 2.0], [2]), "w");
        let tape = Tape::new();
        let y = tape.param(&w).mul_scalar(3.0);
        y.backward_with(Tensor::from_vec(vec![1.0, 10.0], [2]));
        assert_eq!(w.grad_cloned().to_vec(), vec![3.0, 30.0]);
    }

    #[test]
    fn profiler_captures_forward_and_backward_spans() {
        let p = Profiler::new("tape-test");
        let _g = p.install();
        let w = Parameter::new(Tensor::from_vec(vec![2.0], [1]), "w");
        let tape = Tape::new();
        let x = tape.param(&w);
        let loss = x.mul(&x).sum();
        loss.backward();
        // mul B/E + sum B/E forward, plus backward sweep + per-op bwd spans.
        assert!(p.event_count() >= 8, "events {}", p.event_count());
        let json = p.trace_json();
        assert!(json.contains("\"mul\""));
        assert!(json.contains("bwd:mul"));
        assert!(json.contains("flops"));
        // Forward ops fold OpSamples for the probe roofline layer.
        let report = p.report();
        let mul = report.experiments[0].op("mul").expect("mul op sample");
        assert_eq!(mul.calls, 1);
        assert!(mul.flops > 0.0 && mul.bytes > 0.0 && mul.ns > 0.0);
        assert!(report.experiments[0].op("sum").is_some());
    }

    #[test]
    fn no_profiler_means_no_tape_telemetry() {
        let tape = Tape::new();
        assert!(tape.inner.telemetry.is_none());
    }

    #[test]
    #[should_panic(expected = "share a tape")]
    fn cross_tape_ops_rejected() {
        let t1 = Tape::new();
        let t2 = Tape::new();
        let a = t1.leaf(Tensor::ones([1]));
        let b = t2.leaf(Tensor::ones([1]));
        let _ = a.add(&b);
    }
}
