//! Parameter checkpointing: serialize a model's parameters to bytes and
//! restore them, preserving order and shapes.
//!
//! The format is a simple self-describing little-endian layout:
//! `magic "HFTA" | version u32 | count u32 | per parameter:
//! (name_len u32, name utf-8, rank u32, dims u32..., data f32...)`.
//! Combined with `hfta-core`'s `copy_model_weights`, this lets one member
//! of a fused array be checkpointed exactly as a standalone job would be.

use std::fmt;

use hfta_tensor::Tensor;

use crate::parameter::Parameter;

const MAGIC: &[u8; 4] = b"HFTA";
const VERSION: u32 = 1;

/// Errors from checkpoint decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The byte stream does not start with the checkpoint magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// The stream ended before the declared contents.
    Truncated,
    /// A parameter name was not valid UTF-8.
    BadName,
    /// The checkpoint's parameters do not match the destination model.
    Mismatch {
        /// Human-readable detail.
        detail: String,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not an HFTA checkpoint"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::Truncated => write!(f, "checkpoint is truncated"),
            CheckpointError::BadName => write!(f, "checkpoint contains an invalid name"),
            CheckpointError::Mismatch { detail } => {
                write!(f, "checkpoint does not match the model: {detail}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Serializes parameters (values only) into a checkpoint byte buffer.
pub fn save(params: &[Parameter]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(params.len() as u32).to_le_bytes());
    for p in params {
        let name = p.name();
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
        let v = p.value_cloned();
        out.extend_from_slice(&(v.rank() as u32).to_le_bytes());
        for &d in v.dims() {
            out.extend_from_slice(&(d as u32).to_le_bytes());
        }
        for x in v.as_slice() {
            out.extend_from_slice(&x.to_le_bytes());
        }
    }
    out
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        if self.pos + n > self.bytes.len() {
            return Err(CheckpointError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
}

/// Decodes a checkpoint into `(name, tensor)` pairs.
///
/// # Errors
///
/// Returns a [`CheckpointError`] on any malformed input.
pub fn decode(bytes: &[u8]) -> Result<Vec<(String, Tensor)>, CheckpointError> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(CheckpointError::BadVersion(version));
    }
    let count = r.u32()? as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let name_len = r.u32()? as usize;
        let name = std::str::from_utf8(r.take(name_len)?)
            .map_err(|_| CheckpointError::BadName)?
            .to_string();
        let rank = r.u32()? as usize;
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(r.u32()? as usize);
        }
        let numel: usize = dims.iter().product();
        let data_bytes = r.take(numel * 4)?;
        let data: Vec<f32> = data_bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        out.push((name, Tensor::from_vec(data, dims)));
    }
    Ok(out)
}

/// Restores parameter values from a checkpoint, in order. Names are
/// advisory (checkpoints from `save` restore into the same architecture);
/// shapes must match exactly.
///
/// # Errors
///
/// Returns [`CheckpointError::Mismatch`] if counts or shapes disagree, and
/// decoding errors otherwise. On error, no parameter is modified.
pub fn load(bytes: &[u8], params: &[Parameter]) -> Result<(), CheckpointError> {
    let decoded = decode(bytes)?;
    if decoded.len() != params.len() {
        return Err(CheckpointError::Mismatch {
            detail: format!(
                "checkpoint has {} parameters, model has {}",
                decoded.len(),
                params.len()
            ),
        });
    }
    for ((name, tensor), p) in decoded.iter().zip(params) {
        if tensor.dims() != p.value().dims() {
            return Err(CheckpointError::Mismatch {
                detail: format!(
                    "parameter {name}: checkpoint shape {:?} vs model {:?}",
                    tensor.dims(),
                    p.value().dims()
                ),
            });
        }
    }
    for ((_, tensor), p) in decoded.into_iter().zip(params) {
        p.set_value(tensor);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfta_tensor::Rng;

    fn params() -> Vec<Parameter> {
        let mut rng = Rng::seed_from(1);
        vec![
            Parameter::new(rng.randn([3, 4]), "w1"),
            Parameter::new(rng.randn([4]), "b1"),
            Parameter::new(rng.randn([2, 2, 2]), "w2"),
        ]
    }

    #[test]
    fn save_load_round_trip() {
        let src = params();
        let bytes = save(&src);
        let dst = params(); // different random values, same shapes
        load(&bytes, &dst).unwrap();
        for (a, b) in src.iter().zip(&dst) {
            assert_eq!(a.value_cloned(), b.value_cloned());
        }
    }

    #[test]
    fn decode_reports_names_and_shapes() {
        let src = params();
        let decoded = decode(&save(&src)).unwrap();
        assert_eq!(decoded.len(), 3);
        assert_eq!(decoded[0].0, "w1");
        assert_eq!(decoded[2].1.dims(), &[2, 2, 2]);
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert_eq!(decode(b"nope"), Err(CheckpointError::BadMagic));
        let mut bytes = save(&params());
        bytes.truncate(bytes.len() - 3);
        assert_eq!(decode(&bytes), Err(CheckpointError::Truncated));
        // Corrupt the version field.
        let mut bad = save(&params());
        bad[4] = 99;
        assert!(matches!(decode(&bad), Err(CheckpointError::BadVersion(_))));
    }

    #[test]
    fn shape_mismatch_leaves_model_untouched() {
        let src = params();
        let bytes = save(&src);
        let mut rng = Rng::seed_from(9);
        let wrong = vec![
            Parameter::new(rng.randn([3, 4]), "w1"),
            Parameter::new(rng.randn([5]), "b1"), // wrong shape
            Parameter::new(rng.randn([2, 2, 2]), "w2"),
        ];
        let before: Vec<_> = wrong.iter().map(|p| p.value_cloned()).collect();
        assert!(matches!(
            load(&bytes, &wrong),
            Err(CheckpointError::Mismatch { .. })
        ));
        for (b, p) in before.iter().zip(&wrong) {
            assert_eq!(*b, p.value_cloned(), "load must be atomic");
        }
    }

    #[test]
    fn count_mismatch_rejected() {
        let bytes = save(&params());
        let fewer = vec![Parameter::new(Tensor::zeros([3, 4]), "w1")];
        assert!(matches!(
            load(&bytes, &fewer),
            Err(CheckpointError::Mismatch { .. })
        ));
    }

    #[test]
    fn empty_parameter_list_round_trips() {
        let bytes = save(&[]);
        load(&bytes, &[]).unwrap();
        assert!(decode(&bytes).unwrap().is_empty());
    }
}
