//! The [`Module`] abstraction and [`Sequential`] container.

use crate::parameter::Parameter;
use crate::tape::Var;

/// A neural-network building block: maps an input variable to an output
/// variable and exposes its trainable parameters.
///
/// Modules use interior mutability for mode switches ([`Module::set_training`])
/// and running statistics, so `forward` takes `&self` and modules compose
/// freely inside [`Sequential`].
pub trait Module {
    /// Applies the module to `x`, recording onto `x`'s tape.
    fn forward(&self, x: &Var) -> Var;

    /// All trainable parameters, in a stable order.
    fn parameters(&self) -> Vec<Parameter>;

    /// Switches between training and evaluation behaviour (dropout,
    /// batch-norm statistics). Default: no-op.
    fn set_training(&self, _training: bool) {}
}

impl<M: Module + ?Sized> Module for Box<M> {
    fn forward(&self, x: &Var) -> Var {
        (**self).forward(x)
    }

    fn parameters(&self) -> Vec<Parameter> {
        (**self).parameters()
    }

    fn set_training(&self, training: bool) {
        (**self).set_training(training)
    }
}

/// A module chaining submodules in order.
///
/// # Example
///
/// ```
/// use hfta_nn::{layers::{Linear, LinearCfg, Relu}, Module, Sequential, Tape};
/// use hfta_tensor::{Rng, Tensor};
///
/// let mut rng = Rng::seed_from(0);
/// let net = Sequential::new(vec![
///     Box::new(Linear::new(LinearCfg::new(4, 8), &mut rng)),
///     Box::new(Relu),
///     Box::new(Linear::new(LinearCfg::new(8, 2), &mut rng)),
/// ]);
/// let tape = Tape::new();
/// let y = net.forward(&tape.leaf(Tensor::zeros([3, 4])));
/// assert_eq!(y.dims(), vec![3, 2]);
/// ```
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Module>>,
}

impl Sequential {
    /// Creates a sequential container from boxed layers.
    pub fn new(layers: Vec<Box<dyn Module>>) -> Self {
        Sequential { layers }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: Box<dyn Module>) -> &mut Self {
        self.layers.push(layer);
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the container is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Module for Sequential {
    fn forward(&self, x: &Var) -> Var {
        let mut cur = x.clone();
        for layer in &self.layers {
            cur = layer.forward(&cur);
        }
        cur
    }

    fn parameters(&self) -> Vec<Parameter> {
        self.layers.iter().flat_map(|l| l.parameters()).collect()
    }

    fn set_training(&self, training: bool) {
        for layer in &self.layers {
            layer.set_training(training);
        }
    }
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sequential({} layers)", self.layers.len())
    }
}
