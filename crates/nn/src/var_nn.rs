//! Differentiable neural-network ops on [`Var`]: convolutions, pooling,
//! batch norm, softmax and loss primitives.

use hfta_tensor::activation::{log_softmax_backward, softmax_backward};
use hfta_tensor::conv::{
    conv1d_backward, conv2d, conv2d_grad_bias, conv2d_grad_input, conv2d_grad_weight,
    conv_transpose2d, conv_transpose2d_grad_input, conv_transpose2d_grad_weight, ConvCfg,
};
use hfta_tensor::norm::{batch_norm_backward, batch_norm_eval, batch_norm_train};
use hfta_tensor::pool::{max_pool2d, max_pool2d_backward};
use hfta_tensor::Tensor;

use hfta_telemetry::OpCost;

use crate::tape::Var;

/// FLOP/byte cost of a direct convolution producing `out_numel` outputs,
/// each accumulating over `k_per_out` kernel taps.
fn conv_cost(out_numel: usize, k_per_out: usize, in_numel: usize, w_numel: usize) -> OpCost {
    OpCost {
        flops: 2.0 * out_numel as f64 * k_per_out as f64,
        bytes: 4.0 * (in_numel + w_numel + out_numel) as f64,
    }
}

/// Per-channel batch statistics `(mean, variance)` returned by
/// training-mode batch norm.
pub type BatchStats = (Vec<f32>, Vec<f32>);

impl Var {
    /// 2-D convolution (`x [N, Cin, H, W]`, `w [Cout, Cin/g, kh, kw]`,
    /// optional bias `[Cout]`).
    ///
    /// # Panics
    ///
    /// Panics on shape/group inconsistencies.
    pub fn conv2d(&self, weight: &Var, bias: Option<&Var>, cfg: ConvCfg) -> Var {
        let _t = self.tape.record_op("conv2d", || {
            let (xd, wd) = (self.dims(), weight.dims());
            let (ho, wo) = cfg.out_hw((xd[2], xd[3]), (wd[2], wd[3]));
            conv_cost(
                xd[0] * wd[0] * ho * wo,
                wd[1] * wd[2] * wd[3],
                self.numel(),
                weight.numel(),
            )
        });
        let x = self.value();
        let w = weight.value();
        let b = bias.map(|b| b.value());
        let y = conv2d(&x, &w, b.as_ref(), cfg);
        let input_hw = (x.dim(2), x.dim(3));
        let cin = x.dim(1);
        let kernel_hw = (w.dim(2), w.dim(3));
        let ids: Vec<usize> = match bias {
            Some(b) => vec![self.id, weight.id, b.id],
            None => vec![self.id, weight.id],
        };
        let has_bias = bias.is_some();
        self.tape.push(
            y,
            Some(Box::new(move |g| {
                let gx = conv2d_grad_input(&w, g, input_hw, cin, cfg);
                let gw = conv2d_grad_weight(&x, g, kernel_hw, cfg);
                let mut out = vec![(ids[0], gx), (ids[1], gw)];
                if has_bias {
                    out.push((ids[2], conv2d_grad_bias(g)));
                }
                out
            })),
            None,
        )
    }

    /// 1-D convolution (`x [N, Cin, L]`, `w [Cout, Cin/g, k]`).
    ///
    /// # Panics
    ///
    /// Panics on shape/group inconsistencies.
    pub fn conv1d(
        &self,
        weight: &Var,
        bias: Option<&Var>,
        stride: usize,
        padding: usize,
        groups: usize,
    ) -> Var {
        let _t = self.tape.record_op("conv1d", || {
            let (xd, wd) = (self.dims(), weight.dims());
            let lo = (xd[2] + 2 * padding - wd[2]) / stride + 1;
            conv_cost(
                xd[0] * wd[0] * lo,
                wd[1] * wd[2],
                self.numel(),
                weight.numel(),
            )
        });
        let x = self.value();
        let w = weight.value();
        let b = bias.map(|b| b.value());
        let y = hfta_tensor::conv::conv1d(&x, &w, b.as_ref(), stride, padding, groups);
        let ids: Vec<usize> = match bias {
            Some(b) => vec![self.id, weight.id, b.id],
            None => vec![self.id, weight.id],
        };
        let has_bias = bias.is_some();
        self.tape.push(
            y,
            Some(Box::new(move |g| {
                let (gx, gw, gb) = conv1d_backward(&x, &w, g, stride, padding, groups);
                let mut out = vec![(ids[0], gx), (ids[1], gw)];
                if has_bias {
                    out.push((ids[2], gb));
                }
                out
            })),
            None,
        )
    }

    /// 2-D transposed convolution (`x [N, Cin, H, W]`,
    /// `w [Cin, Cout/g, kh, kw]`).
    ///
    /// # Panics
    ///
    /// Panics on shape/group inconsistencies.
    pub fn conv_transpose2d(&self, weight: &Var, bias: Option<&Var>, cfg: ConvCfg) -> Var {
        let _t = self.tape.record_op("conv_transpose2d", || {
            let (xd, wd) = (self.dims(), weight.dims());
            let (ho, wo) = cfg.transpose_out_hw((xd[2], xd[3]), (wd[2], wd[3]));
            conv_cost(
                xd[0] * wd[1] * cfg.groups * ho * wo,
                wd[1] * wd[2] * wd[3],
                self.numel(),
                weight.numel(),
            )
        });
        let x = self.value();
        let w = weight.value();
        let b = bias.map(|b| b.value());
        let y = conv_transpose2d(&x, &w, b.as_ref(), cfg);
        let kernel_hw = (w.dim(2), w.dim(3));
        let ids: Vec<usize> = match bias {
            Some(b) => vec![self.id, weight.id, b.id],
            None => vec![self.id, weight.id],
        };
        let has_bias = bias.is_some();
        self.tape.push(
            y,
            Some(Box::new(move |g| {
                let gx = conv_transpose2d_grad_input(&w, g, cfg);
                let gw = conv_transpose2d_grad_weight(&x, g, kernel_hw, cfg);
                let mut out = vec![(ids[0], gx), (ids[1], gw)];
                if has_bias {
                    out.push((ids[2], conv2d_grad_bias(g)));
                }
                out
            })),
            None,
        )
    }

    /// 2-D max pooling.
    ///
    /// # Panics
    ///
    /// Panics if the input is not 4-D.
    pub fn max_pool2d(&self, kernel: (usize, usize), stride: (usize, usize)) -> Var {
        let _t = self
            .tape
            .record_op("max_pool2d", || OpCost::reduction(self.numel()));
        let (in_dims, r) = self.with_value(|x| (x.dims().to_vec(), max_pool2d(x, kernel, stride)));
        let indices = r.indices;
        self.unary(r.output, move |g| {
            max_pool2d_backward(g, &indices, &in_dims)
        })
    }

    /// Batch normalization.
    ///
    /// In training mode (`running_stats = None` or with stats provided for
    /// update bookkeeping by the caller), uses batch statistics; in eval
    /// mode, pass `Some((running_mean, running_var))`. Returns the output
    /// plus, in training mode, the `(batch_mean, batch_var)` the module
    /// layer uses to update its running averages.
    ///
    /// # Panics
    ///
    /// Panics on rank/shape inconsistencies.
    pub fn batch_norm(
        &self,
        gamma: &Var,
        beta: &Var,
        eps: f32,
        running_stats: Option<(&[f32], &[f32])>,
    ) -> (Var, Option<BatchStats>) {
        let _t = self
            .tape
            .record_op("batch_norm", || OpCost::elementwise(self.numel()));
        let gv = gamma.value();
        match running_stats {
            None => {
                let ctx =
                    self.with_value(|x| beta.with_value(|bv| batch_norm_train(x, &gv, bv, eps)));
                let stats = (ctx.mean.clone(), ctx.var.clone());
                let out_value = ctx.output.clone();
                let ids = (self.id, gamma.id, beta.id);
                let var = self.tape.push(
                    out_value,
                    Some(Box::new(move |g| {
                        let (gx, ggamma, gbeta) = batch_norm_backward(g, &ctx, &gv);
                        vec![(ids.0, gx), (ids.1, ggamma), (ids.2, gbeta)]
                    })),
                    None,
                );
                (var, Some(stats))
            }
            Some((rm, rvar)) => {
                let y = self.with_value(|x| {
                    beta.with_value(|bv| batch_norm_eval(x, &gv, bv, rm, rvar, eps))
                });
                // Eval-mode backward: y = gamma * (x - rm) * inv_std + beta.
                let c = gv.numel();
                let inv_std: Vec<f32> = rvar.iter().map(|v| 1.0 / (v + eps).sqrt()).collect();
                let xhat = {
                    // (x - rm) * inv_std, per channel.
                    let mut xh = self.value();
                    let n = xh.dim(0);
                    let spatial = xh.numel() / (n * c);
                    let data = xh.as_mut_slice();
                    for ni in 0..n {
                        for ci in 0..c {
                            let base = (ni * c + ci) * spatial;
                            for i in 0..spatial {
                                data[base + i] = (data[base + i] - rm[ci]) * inv_std[ci];
                            }
                        }
                    }
                    xh
                };
                let ids = (self.id, gamma.id, beta.id);
                let var = self.tape.push(
                    y,
                    Some(Box::new(move |g| {
                        let n = g.dim(0);
                        let spatial = g.numel() / (n * c);
                        let gd = g.as_slice();
                        let xh = xhat.as_slice();
                        let gvd = gv.as_slice();
                        let mut gx_t = Tensor::zeros(g.shape().clone());
                        let mut ggamma_t = Tensor::zeros([c]);
                        let mut gbeta_t = Tensor::zeros([c]);
                        {
                            let gx = gx_t.as_mut_slice();
                            let ggamma = ggamma_t.as_mut_slice();
                            let gbeta = gbeta_t.as_mut_slice();
                            for ni in 0..n {
                                for ci in 0..c {
                                    let base = (ni * c + ci) * spatial;
                                    for i in 0..spatial {
                                        gx[base + i] = gd[base + i] * gvd[ci] * inv_std[ci];
                                        ggamma[ci] += gd[base + i] * xh[base + i];
                                        gbeta[ci] += gd[base + i];
                                    }
                                }
                            }
                        }
                        vec![(ids.0, gx_t), (ids.1, ggamma_t), (ids.2, gbeta_t)]
                    })),
                    None,
                );
                (var, None)
            }
        }
    }

    /// Log-softmax along `axis`.
    pub fn log_softmax(&self, axis: usize) -> Var {
        let _t = self
            .tape
            .record_op("log_softmax", || OpCost::elementwise(self.numel()));
        let y = self.with_value(|x| x.log_softmax(axis));
        let yc = y.clone();
        self.unary(y, move |g| log_softmax_backward(g, &yc, axis))
    }

    /// Softmax along `axis`.
    pub fn softmax(&self, axis: usize) -> Var {
        let _t = self
            .tape
            .record_op("softmax", || OpCost::elementwise(self.numel()));
        let y = self.with_value(|x| x.softmax(axis));
        let yc = y.clone();
        self.unary(y, move |g| softmax_backward(g, &yc, axis))
    }

    /// Negative log-likelihood of integer targets given log-probabilities
    /// `[N, C]` (or `[N, C, D]` with per-position targets of length `N*D`),
    /// mean-reduced.
    ///
    /// # Panics
    ///
    /// Panics if target length or class indices are inconsistent.
    pub fn nll_loss(&self, targets: &[usize]) -> Var {
        let _t = self
            .tape
            .record_op("nll_loss", || OpCost::reduction(self.numel()));
        let (total, n, c, d, dims) = self.with_value(|lp| {
            assert!(
                lp.rank() == 2 || lp.rank() == 3,
                "nll_loss expects [N, C] or [N, C, D]"
            );
            let n = lp.dim(0);
            let c = lp.dim(1);
            let d = if lp.rank() == 3 { lp.dim(2) } else { 1 };
            assert_eq!(targets.len(), n * d, "target length mismatch");
            let data = lp.as_slice();
            let mut total = 0.0f32;
            for ni in 0..n {
                for di in 0..d {
                    let t = targets[ni * d + di];
                    assert!(t < c, "target class {t} out of range (C = {c})");
                    total -= data[(ni * c + t) * d + di];
                }
            }
            (total, n, c, d, lp.dims().to_vec())
        });
        let count = (n * d) as f32;
        let targets = targets.to_vec();
        self.unary(Tensor::scalar(total / count), move |g| {
            let scale = -g.item() / count;
            let mut gx_t = Tensor::zeros(dims.clone());
            let gx = gx_t.as_mut_slice();
            for ni in 0..n {
                for di in 0..d {
                    let t = targets[ni * d + di];
                    gx[(ni * c + t) * d + di] = scale;
                }
            }
            gx_t
        })
    }

    /// Cross-entropy of logits against integer targets:
    /// `nll_loss(log_softmax(x, 1), targets)`, mean-reduced.
    pub fn cross_entropy(&self, targets: &[usize]) -> Var {
        self.log_softmax(1).nll_loss(targets)
    }

    /// Numerically stable binary cross-entropy *with logits*, mean-reduced:
    /// `mean(max(x, 0) - x * y + ln(1 + exp(-|x|)))`.
    ///
    /// # Panics
    ///
    /// Panics if `targets`'s shape differs from the logits'.
    pub fn bce_with_logits(&self, targets: &Tensor) -> Var {
        let _t = self
            .tape
            .record_op("bce_with_logits", || OpCost::reduction(self.numel()));
        let x = self.value();
        assert_eq!(x.shape(), targets.shape(), "bce target shape mismatch");
        let n = x.numel() as f32;
        let total: f32 = x
            .as_slice()
            .iter()
            .zip(targets.as_slice())
            .map(|(&xi, &yi)| xi.max(0.0) - xi * yi + (1.0 + (-xi.abs()).exp()).ln())
            .sum();
        let tc = targets.clone();
        self.unary(Tensor::scalar(total / n), move |g| {
            // d/dx = sigmoid(x) - y.
            x.sigmoid().sub(&tc).mul_scalar(g.item() / n)
        })
    }

    /// Mean-squared error against a constant target, mean-reduced.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn mse_loss(&self, target: &Tensor) -> Var {
        let _t = self
            .tape
            .record_op("mse_loss", || OpCost::reduction(self.numel()));
        let diff = self.with_value(|x| {
            assert_eq!(x.shape(), target.shape(), "mse target shape mismatch");
            x.sub(target)
        });
        let n = diff.numel() as f32;
        let loss = diff.square().sum().item() / n;
        self.unary(Tensor::scalar(loss), move |g| {
            diff.mul_scalar(2.0 * g.item() / n)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_gradients;
    use crate::parameter::Parameter;
    use crate::tape::Tape;
    use hfta_tensor::Rng;

    #[test]
    fn conv2d_gradcheck() {
        let mut rng = Rng::seed_from(10);
        let x = Parameter::new(rng.randn([1, 2, 5, 5]), "x");
        let w = Parameter::new(rng.randn([3, 2, 3, 3]).mul_scalar(0.5), "w");
        let b = Parameter::new(rng.randn([3]), "b");
        check_gradients(
            &[x.clone(), w.clone(), b.clone()],
            |tape| {
                tape.param(&x)
                    .conv2d(
                        &tape.param(&w),
                        Some(&tape.param(&b)),
                        ConvCfg::square(1, 1, 1),
                    )
                    .square()
                    .sum()
            },
            2e-1,
        );
    }

    #[test]
    fn grouped_conv2d_gradcheck() {
        let mut rng = Rng::seed_from(11);
        let x = Parameter::new(rng.randn([1, 4, 4, 4]), "x");
        let w = Parameter::new(rng.randn([4, 2, 3, 3]).mul_scalar(0.5), "w");
        check_gradients(
            &[x.clone(), w.clone()],
            |tape| {
                tape.param(&x)
                    .conv2d(&tape.param(&w), None, ConvCfg::square(1, 1, 2))
                    .square()
                    .sum()
            },
            2e-1,
        );
    }

    #[test]
    fn conv1d_gradcheck() {
        let mut rng = Rng::seed_from(12);
        let x = Parameter::new(rng.randn([2, 3, 6]), "x");
        let w = Parameter::new(rng.randn([4, 3, 3]).mul_scalar(0.5), "w");
        let b = Parameter::new(rng.randn([4]), "b");
        check_gradients(
            &[x.clone(), w.clone(), b.clone()],
            |tape| {
                tape.param(&x)
                    .conv1d(&tape.param(&w), Some(&tape.param(&b)), 1, 1, 1)
                    .square()
                    .sum()
            },
            2e-1,
        );
    }

    #[test]
    fn conv_transpose2d_gradcheck() {
        let mut rng = Rng::seed_from(13);
        let x = Parameter::new(rng.randn([1, 4, 3, 3]), "x");
        let w = Parameter::new(rng.randn([4, 2, 4, 4]).mul_scalar(0.3), "w");
        let b = Parameter::new(rng.randn([2]), "b");
        check_gradients(
            &[x.clone(), w.clone(), b.clone()],
            |tape| {
                tape.param(&x)
                    .conv_transpose2d(
                        &tape.param(&w),
                        Some(&tape.param(&b)),
                        ConvCfg::square(2, 1, 1),
                    )
                    .square()
                    .sum()
            },
            2e-1,
        );
    }

    #[test]
    fn max_pool_gradcheck() {
        let mut rng = Rng::seed_from(14);
        let x = Parameter::new(rng.randn([1, 2, 4, 4]), "x");
        check_gradients(
            std::slice::from_ref(&x),
            |tape| tape.param(&x).max_pool2d((2, 2), (2, 2)).square().sum(),
            2e-1,
        );
    }

    #[test]
    fn batch_norm_train_gradcheck() {
        let mut rng = Rng::seed_from(15);
        let x = Parameter::new(rng.randn([4, 3]), "x");
        let g = Parameter::new(rng.rand([3], 0.5, 1.5), "gamma");
        let b = Parameter::new(rng.randn([3]), "beta");
        let w = rng.randn([4, 3]);
        check_gradients(
            &[x.clone(), g.clone(), b.clone()],
            |tape| {
                let (y, _) =
                    tape.param(&x)
                        .batch_norm(&tape.param(&g), &tape.param(&b), 1e-5, None);
                y.mul_const(&w).sum()
            },
            3e-1,
        );
    }

    #[test]
    fn batch_norm_eval_gradcheck() {
        let mut rng = Rng::seed_from(16);
        let x = Parameter::new(rng.randn([4, 3]), "x");
        let g = Parameter::new(rng.rand([3], 0.5, 1.5), "gamma");
        let b = Parameter::new(rng.randn([3]), "beta");
        let rm = vec![0.1, -0.2, 0.3];
        let rv = vec![1.0, 2.0, 0.5];
        check_gradients(
            &[x.clone(), g.clone(), b.clone()],
            |tape| {
                let (y, stats) = tape.param(&x).batch_norm(
                    &tape.param(&g),
                    &tape.param(&b),
                    1e-5,
                    Some((&rm, &rv)),
                );
                assert!(stats.is_none());
                y.square().sum()
            },
            2e-1,
        );
    }

    #[test]
    fn log_softmax_and_nll_gradcheck() {
        let mut rng = Rng::seed_from(17);
        let x = Parameter::new(rng.randn([3, 4]), "x");
        check_gradients(
            std::slice::from_ref(&x),
            |tape| tape.param(&x).cross_entropy(&[1, 0, 3]),
            1e-2,
        );
    }

    #[test]
    fn nll_loss_3d_segmentation_form() {
        // [N, C, D] log-probs with per-position targets.
        let mut rng = Rng::seed_from(18);
        let x = Parameter::new(rng.randn([2, 3, 4]), "x");
        check_gradients(
            std::slice::from_ref(&x),
            |tape| {
                tape.param(&x)
                    .log_softmax(1)
                    .nll_loss(&[0, 1, 2, 0, 2, 2, 1, 0])
            },
            1e-2,
        );
    }

    #[test]
    fn bce_with_logits_gradcheck() {
        let mut rng = Rng::seed_from(19);
        let x = Parameter::new(rng.randn([6]), "x");
        let y = Tensor::from_vec(vec![1.0, 0.0, 1.0, 1.0, 0.0, 0.0], [6]);
        check_gradients(
            std::slice::from_ref(&x),
            |tape| tape.param(&x).bce_with_logits(&y),
            1e-2,
        );
    }

    #[test]
    fn bce_matches_manual_value() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![0.0], [1]));
        let y = Tensor::from_vec(vec![1.0], [1]);
        let loss = x.bce_with_logits(&y);
        // -ln(sigmoid(0)) = ln 2.
        assert!((loss.item() - std::f32::consts::LN_2).abs() < 1e-6);
    }

    #[test]
    fn mse_gradcheck() {
        let mut rng = Rng::seed_from(20);
        let x = Parameter::new(rng.randn([5]), "x");
        let t = rng.randn([5]);
        check_gradients(
            std::slice::from_ref(&x),
            |tape| tape.param(&x).mse_loss(&t),
            1e-2,
        );
    }

    #[test]
    fn cross_entropy_uniform_logits() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::zeros([2, 4]));
        let loss = x.cross_entropy(&[0, 3]);
        assert!((loss.item() - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn batch_norm_updates_stats_in_train_only() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]));
        let g = tape.leaf(Tensor::ones([2]));
        let b = tape.leaf(Tensor::zeros([2]));
        let (_, stats) = x.batch_norm(&g, &b, 1e-5, None);
        let (mean, var) = stats.expect("training mode returns stats");
        assert!((mean[0] - 2.0).abs() < 1e-6);
        assert!((mean[1] - 3.0).abs() < 1e-6);
        assert!((var[0] - 1.0).abs() < 1e-5);
    }
}
