//! Trainable parameters with persistent gradient slots.

use std::cell::{Ref, RefCell};
use std::fmt;
use std::rc::Rc;

use hfta_tensor::Tensor;

struct ParamInner {
    value: Tensor,
    grad: Tensor,
    name: String,
}

/// A trainable tensor that persists across training iterations.
///
/// Cloning a `Parameter` is cheap and *shares* the underlying storage —
/// the same slot can be registered on many tapes, and gradients accumulate
/// into it during [`crate::Var::backward`]. Optimizers read `grad()` and
/// write back through [`Parameter::update`].
///
/// # Example
///
/// ```
/// use hfta_nn::Parameter;
/// use hfta_tensor::Tensor;
///
/// let p = Parameter::new(Tensor::zeros([2]), "w");
/// let alias = p.clone();
/// alias.update(|v, _| *v = v.add_scalar(1.0));
/// assert_eq!(p.value().to_vec(), vec![1.0, 1.0]);
/// ```
#[derive(Clone)]
pub struct Parameter {
    inner: Rc<RefCell<ParamInner>>,
}

impl Parameter {
    /// Creates a parameter from an initial value.
    pub fn new(value: Tensor, name: impl Into<String>) -> Self {
        let grad = value.zeros_like();
        Parameter {
            inner: Rc::new(RefCell::new(ParamInner {
                value,
                grad,
                name: name.into(),
            })),
        }
    }

    /// The parameter's diagnostic name.
    pub fn name(&self) -> String {
        self.inner.borrow().name.clone()
    }

    /// Borrow of the current value.
    ///
    /// # Panics
    ///
    /// Panics if the parameter is currently mutably borrowed.
    pub fn value(&self) -> Ref<'_, Tensor> {
        Ref::map(self.inner.borrow(), |p| &p.value)
    }

    /// Clone of the current value.
    pub fn value_cloned(&self) -> Tensor {
        self.inner.borrow().value.clone()
    }

    /// Borrow of the accumulated gradient.
    ///
    /// # Panics
    ///
    /// Panics if the parameter is currently mutably borrowed.
    pub fn grad(&self) -> Ref<'_, Tensor> {
        Ref::map(self.inner.borrow(), |p| &p.grad)
    }

    /// Clone of the accumulated gradient.
    pub fn grad_cloned(&self) -> Tensor {
        self.inner.borrow().grad.clone()
    }

    /// Replaces the value outright (e.g. when loading weights).
    ///
    /// # Panics
    ///
    /// Panics if the new value's shape differs from the old.
    pub fn set_value(&self, value: Tensor) {
        let mut inner = self.inner.borrow_mut();
        assert_eq!(
            inner.value.shape(),
            value.shape(),
            "set_value must preserve the parameter shape"
        );
        inner.value = value;
    }

    /// Accumulates `g` into the gradient slot.
    ///
    /// # Panics
    ///
    /// Panics if the gradient shape differs from the value shape.
    pub fn accumulate_grad(&self, g: &Tensor) {
        let mut inner = self.inner.borrow_mut();
        assert_eq!(
            inner.grad.shape(),
            g.shape(),
            "gradient shape mismatch for parameter {}",
            inner.name
        );
        inner.grad.add_assign_scaled(g, 1.0);
    }

    /// Zeroes the gradient slot.
    pub fn zero_grad(&self) {
        let mut inner = self.inner.borrow_mut();
        inner.grad = inner.grad.zeros_like();
    }

    /// Applies an in-place update `f(&mut value, &grad)` — the optimizer
    /// entry point.
    pub fn update(&self, f: impl FnOnce(&mut Tensor, &Tensor)) {
        let inner = &mut *self.inner.borrow_mut();
        f(&mut inner.value, &inner.grad);
    }

    /// Applies an in-place edit to the gradient slot — e.g. masking or
    /// poisoning one model lane of a fused gradient, where
    /// [`Parameter::accumulate_grad`] (which adds) cannot express the edit.
    pub fn update_grad(&self, f: impl FnOnce(&mut Tensor)) {
        f(&mut self.inner.borrow_mut().grad);
    }

    /// Number of scalar elements.
    pub fn numel(&self) -> usize {
        self.inner.borrow().value.numel()
    }

    /// Whether two handles share the same underlying slot.
    pub fn same_slot(&self, other: &Parameter) -> bool {
        Rc::ptr_eq(&self.inner, &other.inner)
    }
}

impl fmt::Debug for Parameter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        write!(
            f,
            "Parameter({:?}, shape {}, |g| {:.3e})",
            inner.name,
            inner.value.shape(),
            inner.grad.abs().max_value()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_storage() {
        let p = Parameter::new(Tensor::zeros([3]), "w");
        let q = p.clone();
        q.set_value(Tensor::ones([3]));
        assert_eq!(p.value_cloned().to_vec(), vec![1.0; 3]);
        assert!(p.same_slot(&q));
        let r = Parameter::new(Tensor::zeros([3]), "w2");
        assert!(!p.same_slot(&r));
    }

    #[test]
    fn grads_accumulate_and_reset() {
        let p = Parameter::new(Tensor::zeros([2]), "w");
        p.accumulate_grad(&Tensor::ones([2]));
        p.accumulate_grad(&Tensor::ones([2]));
        assert_eq!(p.grad_cloned().to_vec(), vec![2.0, 2.0]);
        p.zero_grad();
        assert_eq!(p.grad_cloned().to_vec(), vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "gradient shape mismatch")]
    fn grad_shape_is_enforced() {
        let p = Parameter::new(Tensor::zeros([2]), "w");
        p.accumulate_grad(&Tensor::ones([3]));
    }

    #[test]
    #[should_panic(expected = "preserve the parameter shape")]
    fn set_value_shape_is_enforced() {
        let p = Parameter::new(Tensor::zeros([2]), "w");
        p.set_value(Tensor::zeros([4]));
    }

    #[test]
    fn update_grad_edits_in_place() {
        let p = Parameter::new(Tensor::zeros([4]), "w");
        p.accumulate_grad(&Tensor::ones([4]));
        p.update_grad(|g| g.as_mut_slice()[..2].fill(0.0));
        assert_eq!(p.grad_cloned().to_vec(), vec![0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn update_sees_grad() {
        let p = Parameter::new(Tensor::ones([2]), "w");
        p.accumulate_grad(&Tensor::full([2], 0.5));
        p.update(|v, g| *v = v.sub(&g.mul_scalar(2.0)));
        assert_eq!(p.value_cloned().to_vec(), vec![0.0, 0.0]);
    }

    #[test]
    fn debug_is_nonempty() {
        let p = Parameter::new(Tensor::zeros([1]), "bias");
        assert!(format!("{p:?}").contains("bias"));
    }
}
