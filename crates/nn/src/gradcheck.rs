//! Numeric gradient checking via central differences.

use crate::parameter::Parameter;
use crate::tape::{Tape, Var};

/// Verifies analytic gradients of a scalar loss against central
/// differences for every element of every parameter.
///
/// `build_loss` must deterministically construct the loss from the current
/// parameter values on a fresh tape. Relative tolerance `tol` is applied
/// against `max(1, |numeric|)`.
///
/// # Panics
///
/// Panics (assert) on the first element whose analytic and numeric
/// gradients disagree.
///
/// # Example
///
/// ```
/// use hfta_nn::{check_gradients, Parameter};
/// use hfta_tensor::Tensor;
///
/// let w = Parameter::new(Tensor::from_vec(vec![1.0, -2.0], [2]), "w");
/// check_gradients(std::slice::from_ref(&w), |tape| tape.param(&w).square().sum(), 1e-2);
/// ```
pub fn check_gradients(params: &[Parameter], build_loss: impl Fn(&Tape) -> Var, tol: f32) {
    // Analytic pass.
    for p in params {
        p.zero_grad();
    }
    let tape = Tape::new();
    let loss = build_loss(&tape);
    loss.backward();
    let analytic: Vec<_> = params.iter().map(|p| p.grad_cloned()).collect();

    let eps = 1e-2f32;
    let eval = || {
        let tape = Tape::new();
        build_loss(&tape).item()
    };
    for (pi, p) in params.iter().enumerate() {
        let original = p.value_cloned();
        for i in 0..original.numel() {
            let mut plus = original.clone();
            plus.as_mut_slice()[i] += eps;
            p.set_value(plus);
            let lp = eval();
            let mut minus = original.clone();
            minus.as_mut_slice()[i] -= eps;
            p.set_value(minus);
            let lm = eval();
            p.set_value(original.clone());
            let numeric = (lp - lm) / (2.0 * eps);
            let ana = analytic[pi].as_slice()[i];
            let scale = numeric.abs().max(1.0);
            assert!(
                (numeric - ana).abs() <= tol * scale,
                "gradient mismatch for {} element {}: numeric {} vs analytic {}",
                p.name(),
                i,
                numeric,
                ana
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfta_tensor::Tensor;

    #[test]
    fn passes_on_correct_gradient() {
        let w = Parameter::new(Tensor::from_vec(vec![0.5, -1.5, 2.0], [3]), "w");
        check_gradients(
            std::slice::from_ref(&w),
            |tape| tape.param(&w).square().sum(),
            1e-2,
        );
    }

    #[test]
    #[should_panic(expected = "gradient mismatch")]
    fn fails_on_wrong_gradient() {
        let w = Parameter::new(Tensor::from_vec(vec![1.0], [1]), "w");
        // Deliberately corrupt: loss uses w^2 but we seed an extra bogus
        // gradient before checking, making the analytic value wrong.
        check_gradients(
            std::slice::from_ref(&w),
            |tape| {
                // Sneak in a wrong gradient contribution on every build.
                w.accumulate_grad(&Tensor::from_vec(vec![100.0], [1]));
                tape.param(&w).square().sum()
            },
            1e-3,
        );
    }
}
