//! # hfta-nn
//!
//! Tape-based reverse-mode autograd, neural-network layers, losses and
//! optimizers — the "PyTorch substrate" of the HFTA (MLSys 2021)
//! reproduction. The fused operators in `hfta-core` wrap this crate's
//! [`Var`] ops; the serial training baselines use its layers directly.
//!
//! # Example — one SGD step
//!
//! ```
//! use hfta_nn::{layers::{Linear, LinearCfg}, Module, Optimizer, Sgd, Tape};
//! use hfta_tensor::{Rng, Tensor};
//!
//! let mut rng = Rng::seed_from(0);
//! let layer = Linear::new(LinearCfg::new(4, 1), &mut rng);
//! let mut opt = Sgd::new(layer.parameters(), 0.1, 0.0);
//!
//! opt.zero_grad();
//! let tape = Tape::new();
//! let x = tape.leaf(rng.randn([8, 4]));
//! let loss = layer.forward(&x).square().mean();
//! loss.backward();
//! opt.step();
//! ```

#![warn(missing_docs)]

pub mod checkpoint;
mod gradcheck;
pub mod layers;
mod module;
mod optim;
mod parameter;
mod tape;
mod var_nn;
mod var_ops;

pub use gradcheck::check_gradients;
pub use module::{Module, Sequential};
pub use optim::{clip_grad_norm, Adadelta, Adam, CosineLr, ExponentialLr, Optimizer, Sgd, StepLr};
pub use parameter::Parameter;
pub use tape::{Tape, Var};
