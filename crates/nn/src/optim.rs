//! Optimizers (SGD, Adam, Adadelta) and the StepLR learning-rate scheduler.
//!
//! These are the serial counterparts of the fused optimizers in
//! `hfta-core`; the fused versions must produce bit-identical updates when
//! all models share the same hyper-parameters.

use hfta_tensor::Tensor;

use crate::parameter::Parameter;

/// A first-order optimizer over a set of [`Parameter`]s.
pub trait Optimizer {
    /// Applies one update step from the accumulated gradients.
    fn step(&mut self);

    /// Zeroes the gradients of all managed parameters.
    fn zero_grad(&self);

    /// Current learning rate.
    fn lr(&self) -> f32;

    /// Replaces the learning rate (used by schedulers).
    fn set_lr(&mut self, lr: f32);
}

/// Stochastic gradient descent with optional momentum.
#[derive(Debug)]
pub struct Sgd {
    params: Vec<Parameter>,
    lr: f32,
    momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates SGD over `params`.
    pub fn new(params: Vec<Parameter>, lr: f32, momentum: f32) -> Self {
        let velocity = params.iter().map(|p| p.value().zeros_like()).collect();
        Sgd {
            params,
            lr,
            momentum,
            velocity,
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self) {
        for (p, v) in self.params.iter().zip(&mut self.velocity) {
            let g = p.grad_cloned();
            if self.momentum != 0.0 {
                // v = momentum * v + g; p -= lr * v  (PyTorch convention).
                v.lerp_assign(&g, self.momentum, 1.0);
                p.update(|value, _| value.add_assign_scaled(v, -self.lr));
            } else {
                p.update(|value, _| value.add_assign_scaled(&g, -self.lr));
            }
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba, 2015) with PyTorch-default bias correction.
#[derive(Debug)]
pub struct Adam {
    params: Vec<Parameter>,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates Adam with custom betas and epsilon.
    pub fn with_betas(params: Vec<Parameter>, lr: f32, beta1: f32, beta2: f32, eps: f32) -> Self {
        let m = params.iter().map(|p| p.value().zeros_like()).collect();
        let v = params.iter().map(|p| p.value().zeros_like()).collect();
        Adam {
            params,
            lr,
            beta1,
            beta2,
            eps,
            t: 0,
            m,
            v,
        }
    }

    /// Creates Adam with the standard defaults `betas = (0.9, 0.999)`,
    /// `eps = 1e-8`.
    pub fn new(params: Vec<Parameter>, lr: f32) -> Self {
        Self::with_betas(params, lr, 0.9, 0.999, 1e-8)
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

impl Optimizer for Adam {
    fn step(&mut self) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, m), v) in self.params.iter().zip(&mut self.m).zip(&mut self.v) {
            let g = p.grad_cloned();
            m.lerp_assign(&g, self.beta1, 1.0 - self.beta1);
            v.lerp_assign(&g.square(), self.beta2, 1.0 - self.beta2);
            let m_hat = m.div_scalar(bc1);
            let v_hat = v.div_scalar(bc2);
            let update = m_hat.div(&v_hat.sqrt().add_scalar(self.eps));
            p.update(|value, _| value.add_assign_scaled(&update, -self.lr));
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adadelta (Zeiler, 2012) with PyTorch semantics (`lr` multiplies the
/// adaptive delta; default 1.0).
#[derive(Debug)]
pub struct Adadelta {
    params: Vec<Parameter>,
    lr: f32,
    rho: f32,
    eps: f32,
    sq_avg: Vec<Tensor>,
    acc_delta: Vec<Tensor>,
}

impl Adadelta {
    /// Creates Adadelta with custom `rho` and `eps`.
    pub fn with_rho(params: Vec<Parameter>, lr: f32, rho: f32, eps: f32) -> Self {
        let sq_avg = params.iter().map(|p| p.value().zeros_like()).collect();
        let acc_delta = params.iter().map(|p| p.value().zeros_like()).collect();
        Adadelta {
            params,
            lr,
            rho,
            eps,
            sq_avg,
            acc_delta,
        }
    }

    /// Creates Adadelta with defaults `rho = 0.9`, `eps = 1e-6`.
    pub fn new(params: Vec<Parameter>, lr: f32) -> Self {
        Self::with_rho(params, lr, 0.9, 1e-6)
    }
}

impl Optimizer for Adadelta {
    fn step(&mut self) {
        for ((p, sq), acc) in self
            .params
            .iter()
            .zip(&mut self.sq_avg)
            .zip(&mut self.acc_delta)
        {
            let g = p.grad_cloned();
            sq.lerp_assign(&g.square(), self.rho, 1.0 - self.rho);
            let delta = acc
                .add_scalar(self.eps)
                .sqrt()
                .div(&sq.add_scalar(self.eps).sqrt())
                .mul(&g);
            acc.lerp_assign(&delta.square(), self.rho, 1.0 - self.rho);
            p.update(|value, _| value.add_assign_scaled(&delta, -self.lr));
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn lr(&self) -> f32 {
        self.lr
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Clips the global L2 norm of the parameters' gradients to `max_norm`
/// (`torch.nn.utils.clip_grad_norm_` analogue). Returns the pre-clip norm.
///
/// # Panics
///
/// Panics if `max_norm` is not positive.
pub fn clip_grad_norm(params: &[Parameter], max_norm: f32) -> f32 {
    assert!(max_norm > 0.0, "max_norm must be positive");
    let total_sq: f32 = params
        .iter()
        .map(|p| {
            let g = p.grad();
            g.as_slice().iter().map(|v| v * v).sum::<f32>()
        })
        .sum();
    let norm = total_sq.sqrt();
    if norm > max_norm {
        let scale = max_norm / norm;
        for p in params {
            let scaled = p.grad_cloned().mul_scalar(scale);
            p.zero_grad();
            p.accumulate_grad(&scaled);
        }
    }
    norm
}

/// Step learning-rate schedule: multiplies the LR by `gamma` every
/// `step_size` epochs (`torch.optim.lr_scheduler.StepLR` analogue).
#[derive(Debug, Clone)]
pub struct StepLr {
    base_lr: f32,
    step_size: usize,
    gamma: f32,
    epoch: usize,
}

impl StepLr {
    /// Creates a scheduler from the optimizer's base LR.
    ///
    /// # Panics
    ///
    /// Panics if `step_size == 0`.
    pub fn new(base_lr: f32, step_size: usize, gamma: f32) -> Self {
        assert!(step_size > 0, "step_size must be positive");
        StepLr {
            base_lr,
            step_size,
            gamma,
            epoch: 0,
        }
    }

    /// Advances one epoch and writes the scheduled LR into `opt`.
    pub fn step(&mut self, opt: &mut dyn Optimizer) {
        self.epoch += 1;
        opt.set_lr(self.lr_at(self.epoch));
    }

    /// The LR the schedule prescribes at a given epoch.
    pub fn lr_at(&self, epoch: usize) -> f32 {
        self.base_lr * self.gamma.powi((epoch / self.step_size) as i32)
    }

    /// Current epoch counter.
    pub fn epoch(&self) -> usize {
        self.epoch
    }
}

/// Exponential learning-rate schedule: multiplies the LR by `gamma` every
/// epoch (`torch.optim.lr_scheduler.ExponentialLR` analogue).
#[derive(Debug, Clone)]
pub struct ExponentialLr {
    base_lr: f32,
    gamma: f32,
    epoch: usize,
}

impl ExponentialLr {
    /// Creates the scheduler.
    pub fn new(base_lr: f32, gamma: f32) -> Self {
        ExponentialLr {
            base_lr,
            gamma,
            epoch: 0,
        }
    }

    /// The LR the schedule prescribes at `epoch`.
    pub fn lr_at(&self, epoch: usize) -> f32 {
        self.base_lr * self.gamma.powi(epoch as i32)
    }

    /// Advances one epoch and writes the scheduled LR into `opt`.
    pub fn step(&mut self, opt: &mut dyn Optimizer) {
        self.epoch += 1;
        opt.set_lr(self.lr_at(self.epoch));
    }
}

/// Cosine-annealing learning-rate schedule from the base LR down to
/// `eta_min` over `t_max` epochs.
#[derive(Debug, Clone)]
pub struct CosineLr {
    base_lr: f32,
    eta_min: f32,
    t_max: usize,
    epoch: usize,
}

impl CosineLr {
    /// Creates the scheduler.
    ///
    /// # Panics
    ///
    /// Panics if `t_max == 0`.
    pub fn new(base_lr: f32, eta_min: f32, t_max: usize) -> Self {
        assert!(t_max > 0, "t_max must be positive");
        CosineLr {
            base_lr,
            eta_min,
            t_max,
            epoch: 0,
        }
    }

    /// The LR the schedule prescribes at `epoch` (clamped past `t_max`).
    pub fn lr_at(&self, epoch: usize) -> f32 {
        let t = epoch.min(self.t_max) as f32 / self.t_max as f32;
        let cos = 0.5 * (1.0 + (std::f32::consts::PI * t).cos());
        self.eta_min + (self.base_lr - self.eta_min) * cos
    }

    /// Advances one epoch and writes the scheduled LR into `opt`.
    pub fn step(&mut self, opt: &mut dyn Optimizer) {
        self.epoch += 1;
        opt.set_lr(self.lr_at(self.epoch));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;

    /// One training step on loss = 0.5 * (w - target)^2.
    fn quadratic_step(w: &Parameter, target: f32, opt: &mut dyn Optimizer) -> f32 {
        opt.zero_grad();
        let tape = Tape::new();
        let x = tape.param(w);
        let loss = x.add_scalar(-target).square().sum().mul_scalar(0.5);
        let l = loss.item();
        loss.backward();
        opt.step();
        l
    }

    #[test]
    fn sgd_descends_quadratic() {
        let w = Parameter::new(Tensor::from_vec(vec![5.0], [1]), "w");
        let mut opt = Sgd::new(vec![w.clone()], 0.1, 0.0);
        let first = quadratic_step(&w, 1.0, &mut opt);
        let mut last = first;
        for _ in 0..50 {
            last = quadratic_step(&w, 1.0, &mut opt);
        }
        assert!(last < first * 1e-3, "loss {first} -> {last}");
        assert!((w.value_cloned().item() - 1.0).abs() < 0.05);
    }

    #[test]
    fn sgd_momentum_accelerates() {
        let w1 = Parameter::new(Tensor::from_vec(vec![5.0], [1]), "w1");
        let w2 = Parameter::new(Tensor::from_vec(vec![5.0], [1]), "w2");
        let mut plain = Sgd::new(vec![w1.clone()], 0.01, 0.0);
        let mut moment = Sgd::new(vec![w2.clone()], 0.01, 0.9);
        for _ in 0..20 {
            quadratic_step(&w1, 0.0, &mut plain);
            quadratic_step(&w2, 0.0, &mut moment);
        }
        assert!(w2.value_cloned().item().abs() < w1.value_cloned().item().abs());
    }

    #[test]
    fn adam_converges() {
        let w = Parameter::new(Tensor::from_vec(vec![-3.0, 4.0], [2]), "w");
        let mut opt = Adam::new(vec![w.clone()], 0.1);
        for _ in 0..200 {
            quadratic_step(&w, 2.0, &mut opt);
        }
        assert!(w.value_cloned().max_abs_diff(&Tensor::full([2], 2.0)) < 0.05);
        assert_eq!(opt.steps(), 200);
    }

    #[test]
    fn adam_first_step_magnitude_is_lr() {
        // With bias correction, Adam's first step is ~lr in each coordinate.
        let w = Parameter::new(Tensor::from_vec(vec![10.0], [1]), "w");
        let mut opt = Adam::new(vec![w.clone()], 0.5);
        quadratic_step(&w, 0.0, &mut opt);
        assert!((w.value_cloned().item() - 9.5).abs() < 1e-3);
    }

    #[test]
    fn adadelta_converges() {
        // Adadelta starts slowly (accumulators warm up from zero) but must
        // make steady progress on a quadratic.
        let w = Parameter::new(Tensor::from_vec(vec![3.0], [1]), "w");
        let mut opt = Adadelta::new(vec![w.clone()], 1.0);
        let first = quadratic_step(&w, 0.0, &mut opt);
        let mut last = first;
        for _ in 0..3000 {
            last = quadratic_step(&w, 0.0, &mut opt);
        }
        assert!(last < first * 0.05, "loss {first} -> {last}");
    }

    #[test]
    fn step_lr_decays_geometrically() {
        let mut sched = StepLr::new(0.1, 2, 0.5);
        let w = Parameter::new(Tensor::zeros([1]), "w");
        let mut opt = Sgd::new(vec![w], 0.1, 0.0);
        let mut lrs = Vec::new();
        for _ in 0..6 {
            sched.step(&mut opt);
            lrs.push(opt.lr());
        }
        assert_eq!(lrs, vec![0.1, 0.05, 0.05, 0.025, 0.025, 0.0125]);
    }

    #[test]
    fn clip_grad_norm_scales_only_when_needed() {
        let p1 = Parameter::new(Tensor::zeros([2]), "a");
        let p2 = Parameter::new(Tensor::zeros([1]), "b");
        p1.accumulate_grad(&Tensor::from_vec(vec![3.0, 0.0], [2]));
        p2.accumulate_grad(&Tensor::from_vec(vec![4.0], [1]));
        // Norm = 5; clip to 2.5 halves everything.
        let norm = clip_grad_norm(&[p1.clone(), p2.clone()], 2.5);
        assert!((norm - 5.0).abs() < 1e-5);
        assert!((p1.grad_cloned().at(&[0]) - 1.5).abs() < 1e-5);
        assert!((p2.grad_cloned().at(&[0]) - 2.0).abs() < 1e-5);
        // Already-small gradients stay untouched.
        let before = p1.grad_cloned();
        clip_grad_norm(std::slice::from_ref(&p1), 100.0);
        assert_eq!(p1.grad_cloned(), before);
    }

    #[test]
    fn exponential_lr_decays() {
        let mut sched = ExponentialLr::new(1.0, 0.5);
        let w = Parameter::new(Tensor::zeros([1]), "w");
        let mut opt = Sgd::new(vec![w], 1.0, 0.0);
        sched.step(&mut opt);
        assert!((opt.lr() - 0.5).abs() < 1e-7);
        sched.step(&mut opt);
        assert!((opt.lr() - 0.25).abs() < 1e-7);
        assert!((sched.lr_at(10) - 1.0 / 1024.0).abs() < 1e-7);
    }

    #[test]
    fn cosine_lr_endpoints() {
        let sched = CosineLr::new(1.0, 0.1, 8);
        assert!((sched.lr_at(0) - 1.0).abs() < 1e-6);
        assert!((sched.lr_at(4) - 0.55).abs() < 1e-6);
        assert!((sched.lr_at(8) - 0.1).abs() < 1e-6);
        assert!((sched.lr_at(100) - 0.1).abs() < 1e-6);
    }

    #[test]
    fn zero_grad_clears_all() {
        let w = Parameter::new(Tensor::zeros([2]), "w");
        w.accumulate_grad(&Tensor::ones([2]));
        let opt = Sgd::new(vec![w.clone()], 0.1, 0.0);
        opt.zero_grad();
        assert_eq!(w.grad_cloned().to_vec(), vec![0.0, 0.0]);
    }
}
