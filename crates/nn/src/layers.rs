//! Standard layers mirroring the PyTorch operators that HFTA fuses
//! (paper Table 6): convolutions, linear, batch norms, pooling, dropout
//! and activations.

use std::cell::{Cell, RefCell};

use hfta_tensor::conv::ConvCfg;
use hfta_tensor::{Rng, Tensor};

use crate::module::Module;
use crate::parameter::Parameter;
use crate::tape::Var;

// ---------------------------------------------------------------------------
// Convolutions
// ---------------------------------------------------------------------------

/// Configuration for [`Conv2d`] / [`ConvTranspose2d`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dCfg {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride (both axes).
    pub stride: usize,
    /// Zero padding (both axes).
    pub padding: usize,
    /// Channel groups.
    pub groups: usize,
    /// Whether to learn a bias.
    pub bias: bool,
}

impl Conv2dCfg {
    /// A standard dense convolution config (stride 1, no padding, bias).
    pub fn new(in_channels: usize, out_channels: usize, kernel: usize) -> Self {
        Conv2dCfg {
            in_channels,
            out_channels,
            kernel,
            stride: 1,
            padding: 0,
            groups: 1,
            bias: true,
        }
    }

    /// Sets the stride.
    pub fn stride(mut self, s: usize) -> Self {
        self.stride = s;
        self
    }

    /// Sets the padding.
    pub fn padding(mut self, p: usize) -> Self {
        self.padding = p;
        self
    }

    /// Sets the group count.
    pub fn groups(mut self, g: usize) -> Self {
        self.groups = g;
        self
    }

    /// Enables or disables the bias.
    pub fn bias(mut self, b: bool) -> Self {
        self.bias = b;
        self
    }

    fn conv_cfg(&self) -> ConvCfg {
        ConvCfg::square(self.stride, self.padding, self.groups)
    }
}

/// 2-D convolution layer (`torch.nn.Conv2d` analogue).
#[derive(Debug)]
pub struct Conv2d {
    /// Filter weights `[Cout, Cin/g, k, k]`.
    pub weight: Parameter,
    /// Optional bias `[Cout]`.
    pub bias: Option<Parameter>,
    cfg: Conv2dCfg,
}

impl Conv2d {
    /// Creates the layer with Kaiming-uniform initialization.
    ///
    /// # Panics
    ///
    /// Panics if channel counts are not divisible by `groups`.
    pub fn new(cfg: Conv2dCfg, rng: &mut Rng) -> Self {
        assert_eq!(cfg.in_channels % cfg.groups, 0, "Cin must divide by groups");
        assert_eq!(
            cfg.out_channels % cfg.groups,
            0,
            "Cout must divide by groups"
        );
        let fan_in = cfg.in_channels / cfg.groups * cfg.kernel * cfg.kernel;
        let weight = Parameter::new(
            rng.kaiming_uniform(
                [
                    cfg.out_channels,
                    cfg.in_channels / cfg.groups,
                    cfg.kernel,
                    cfg.kernel,
                ],
                fan_in,
            ),
            "conv2d.weight",
        );
        let bias = cfg.bias.then(|| {
            Parameter::new(
                rng.kaiming_uniform([cfg.out_channels], fan_in),
                "conv2d.bias",
            )
        });
        Conv2d { weight, bias, cfg }
    }

    /// The layer's configuration.
    pub fn cfg(&self) -> Conv2dCfg {
        self.cfg
    }

    /// Builds the layer from existing weights (e.g. when unfusing an HFTA
    /// array back into per-model layers).
    ///
    /// # Panics
    ///
    /// Panics if the tensor shapes disagree with `cfg`.
    pub fn from_parts(cfg: Conv2dCfg, weight: Tensor, bias: Option<Tensor>) -> Self {
        assert_eq!(
            weight.dims(),
            &[
                cfg.out_channels,
                cfg.in_channels / cfg.groups,
                cfg.kernel,
                cfg.kernel
            ],
            "conv2d weight shape mismatch"
        );
        if let Some(b) = &bias {
            assert_eq!(b.dims(), &[cfg.out_channels], "conv2d bias shape mismatch");
        }
        Conv2d {
            weight: Parameter::new(weight, "conv2d.weight"),
            bias: bias.map(|b| Parameter::new(b, "conv2d.bias")),
            cfg,
        }
    }
}

impl Module for Conv2d {
    fn forward(&self, x: &Var) -> Var {
        let tape = x.tape().clone();
        let w = tape.param(&self.weight);
        let b = self.bias.as_ref().map(|b| tape.param(b));
        x.conv2d(&w, b.as_ref(), self.cfg.conv_cfg())
    }

    fn parameters(&self) -> Vec<Parameter> {
        let mut ps = vec![self.weight.clone()];
        if let Some(b) = &self.bias {
            ps.push(b.clone());
        }
        ps
    }
}

/// 2-D transposed convolution layer (`torch.nn.ConvTranspose2d` analogue).
///
/// Weight layout is `[Cin, Cout/g, k, k]`, matching PyTorch.
#[derive(Debug)]
pub struct ConvTranspose2d {
    /// Filter weights `[Cin, Cout/g, k, k]`.
    pub weight: Parameter,
    /// Optional bias `[Cout]`.
    pub bias: Option<Parameter>,
    cfg: Conv2dCfg,
}

impl ConvTranspose2d {
    /// Creates the layer with Kaiming-uniform initialization.
    ///
    /// # Panics
    ///
    /// Panics if channel counts are not divisible by `groups`.
    pub fn new(cfg: Conv2dCfg, rng: &mut Rng) -> Self {
        assert_eq!(cfg.in_channels % cfg.groups, 0, "Cin must divide by groups");
        assert_eq!(
            cfg.out_channels % cfg.groups,
            0,
            "Cout must divide by groups"
        );
        let fan_in = cfg.out_channels / cfg.groups * cfg.kernel * cfg.kernel;
        let weight = Parameter::new(
            rng.kaiming_uniform(
                [
                    cfg.in_channels,
                    cfg.out_channels / cfg.groups,
                    cfg.kernel,
                    cfg.kernel,
                ],
                fan_in,
            ),
            "convt2d.weight",
        );
        let bias = cfg.bias.then(|| {
            Parameter::new(
                rng.kaiming_uniform([cfg.out_channels], fan_in),
                "convt2d.bias",
            )
        });
        ConvTranspose2d { weight, bias, cfg }
    }

    /// The layer's configuration.
    pub fn cfg(&self) -> Conv2dCfg {
        self.cfg
    }

    /// Builds the layer from existing weights.
    ///
    /// # Panics
    ///
    /// Panics if the tensor shapes disagree with `cfg`.
    pub fn from_parts(cfg: Conv2dCfg, weight: Tensor, bias: Option<Tensor>) -> Self {
        assert_eq!(
            weight.dims(),
            &[
                cfg.in_channels,
                cfg.out_channels / cfg.groups,
                cfg.kernel,
                cfg.kernel
            ],
            "convt2d weight shape mismatch"
        );
        if let Some(b) = &bias {
            assert_eq!(b.dims(), &[cfg.out_channels], "convt2d bias shape mismatch");
        }
        ConvTranspose2d {
            weight: Parameter::new(weight, "convt2d.weight"),
            bias: bias.map(|b| Parameter::new(b, "convt2d.bias")),
            cfg,
        }
    }
}

impl Module for ConvTranspose2d {
    fn forward(&self, x: &Var) -> Var {
        let tape = x.tape().clone();
        let w = tape.param(&self.weight);
        let b = self.bias.as_ref().map(|b| tape.param(b));
        x.conv_transpose2d(&w, b.as_ref(), self.cfg.conv_cfg())
    }

    fn parameters(&self) -> Vec<Parameter> {
        let mut ps = vec![self.weight.clone()];
        if let Some(b) = &self.bias {
            ps.push(b.clone());
        }
        ps
    }
}

/// 1-D convolution layer (`torch.nn.Conv1d` analogue).
#[derive(Debug)]
pub struct Conv1d {
    /// Filter weights `[Cout, Cin/g, k]`.
    pub weight: Parameter,
    /// Optional bias `[Cout]`.
    pub bias: Option<Parameter>,
    stride: usize,
    padding: usize,
    groups: usize,
}

impl Conv1d {
    /// Creates the layer with Kaiming-uniform initialization.
    ///
    /// # Panics
    ///
    /// Panics if channel counts are not divisible by `groups`.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        groups: usize,
        rng: &mut Rng,
    ) -> Self {
        assert_eq!(in_channels % groups, 0, "Cin must divide by groups");
        assert_eq!(out_channels % groups, 0, "Cout must divide by groups");
        let fan_in = in_channels / groups * kernel;
        Conv1d {
            weight: Parameter::new(
                rng.kaiming_uniform([out_channels, in_channels / groups, kernel], fan_in),
                "conv1d.weight",
            ),
            bias: Some(Parameter::new(
                rng.kaiming_uniform([out_channels], fan_in),
                "conv1d.bias",
            )),
            stride,
            padding,
            groups,
        }
    }

    /// Builds the layer from existing weights.
    ///
    /// # Panics
    ///
    /// Panics if the weight is not 3-D.
    pub fn from_parts(
        weight: Tensor,
        bias: Option<Tensor>,
        stride: usize,
        padding: usize,
        groups: usize,
    ) -> Self {
        assert_eq!(weight.rank(), 3, "conv1d weight must be [Cout, Cin/g, k]");
        Conv1d {
            weight: Parameter::new(weight, "conv1d.weight"),
            bias: bias.map(|b| Parameter::new(b, "conv1d.bias")),
            stride,
            padding,
            groups,
        }
    }

    /// `(stride, padding, groups)` hyper-parameters.
    pub fn geometry(&self) -> (usize, usize, usize) {
        (self.stride, self.padding, self.groups)
    }
}

impl Module for Conv1d {
    fn forward(&self, x: &Var) -> Var {
        let tape = x.tape().clone();
        let w = tape.param(&self.weight);
        let b = self.bias.as_ref().map(|b| tape.param(b));
        x.conv1d(&w, b.as_ref(), self.stride, self.padding, self.groups)
    }

    fn parameters(&self) -> Vec<Parameter> {
        let mut ps = vec![self.weight.clone()];
        if let Some(b) = &self.bias {
            ps.push(b.clone());
        }
        ps
    }
}

// ---------------------------------------------------------------------------
// Linear
// ---------------------------------------------------------------------------

/// Configuration for [`Linear`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinearCfg {
    /// Input feature size.
    pub in_features: usize,
    /// Output feature size.
    pub out_features: usize,
    /// Whether to learn a bias.
    pub bias: bool,
}

impl LinearCfg {
    /// Standard config with bias.
    pub fn new(in_features: usize, out_features: usize) -> Self {
        LinearCfg {
            in_features,
            out_features,
            bias: true,
        }
    }

    /// Enables or disables the bias.
    pub fn bias(mut self, b: bool) -> Self {
        self.bias = b;
        self
    }
}

/// Fully connected layer. Weight layout is `[in, out]` (inputs are
/// multiplied on the left: `y = x W + b`), which matches the fused
/// `baddbmm` layout of HFTA Table 6 directly.
#[derive(Debug)]
pub struct Linear {
    /// Weights `[in, out]`.
    pub weight: Parameter,
    /// Optional bias `[out]`.
    pub bias: Option<Parameter>,
}

impl Linear {
    /// Creates the layer with Kaiming-uniform initialization.
    pub fn new(cfg: LinearCfg, rng: &mut Rng) -> Self {
        Linear {
            weight: Parameter::new(
                rng.kaiming_uniform([cfg.in_features, cfg.out_features], cfg.in_features),
                "linear.weight",
            ),
            bias: cfg.bias.then(|| {
                Parameter::new(
                    rng.kaiming_uniform([cfg.out_features], cfg.in_features),
                    "linear.bias",
                )
            }),
        }
    }

    /// Builds the layer from existing weights (`weight [in, out]`).
    ///
    /// # Panics
    ///
    /// Panics if the weight is not 2-D or the bias length mismatches.
    pub fn from_parts(weight: Tensor, bias: Option<Tensor>) -> Self {
        assert_eq!(weight.rank(), 2, "linear weight must be [in, out]");
        if let Some(b) = &bias {
            assert_eq!(b.dims(), &[weight.dim(1)], "linear bias shape mismatch");
        }
        Linear {
            weight: Parameter::new(weight, "linear.weight"),
            bias: bias.map(|b| Parameter::new(b, "linear.bias")),
        }
    }
}

impl Module for Linear {
    fn forward(&self, x: &Var) -> Var {
        let tape = x.tape().clone();
        let w = tape.param(&self.weight);
        let y = x.matmul(&w);
        match &self.bias {
            Some(b) => y.add(&tape.param(b)),
            None => y,
        }
    }

    fn parameters(&self) -> Vec<Parameter> {
        let mut ps = vec![self.weight.clone()];
        if let Some(b) = &self.bias {
            ps.push(b.clone());
        }
        ps
    }
}

// ---------------------------------------------------------------------------
// Normalization
// ---------------------------------------------------------------------------

/// Batch normalization over the channel axis, covering the `BatchNorm1d`
/// (`[N, C]`, `[N, C, L]`) and `BatchNorm2d` (`[N, C, H, W]`) cases.
#[derive(Debug)]
pub struct BatchNorm {
    /// Per-channel scale.
    pub gamma: Parameter,
    /// Per-channel shift.
    pub beta: Parameter,
    running_mean: RefCell<Vec<f32>>,
    running_var: RefCell<Vec<f32>>,
    momentum: f32,
    eps: f32,
    training: Cell<bool>,
}

impl BatchNorm {
    /// Creates a batch norm over `channels` channels with PyTorch defaults
    /// (`momentum = 0.1`, `eps = 1e-5`, scale 1, shift 0).
    pub fn new(channels: usize) -> Self {
        BatchNorm {
            gamma: Parameter::new(Tensor::ones([channels]), "bn.gamma"),
            beta: Parameter::new(Tensor::zeros([channels]), "bn.beta"),
            running_mean: RefCell::new(vec![0.0; channels]),
            running_var: RefCell::new(vec![1.0; channels]),
            momentum: 0.1,
            eps: 1e-5,
            training: Cell::new(true),
        }
    }

    /// Current running mean.
    pub fn running_mean(&self) -> Vec<f32> {
        self.running_mean.borrow().clone()
    }

    /// Current running variance.
    pub fn running_var(&self) -> Vec<f32> {
        self.running_var.borrow().clone()
    }

    /// Whether the layer is in training mode.
    pub fn training(&self) -> bool {
        self.training.get()
    }

    /// Builds the layer from existing affine weights and running stats.
    ///
    /// # Panics
    ///
    /// Panics if the lengths disagree.
    pub fn from_parts(
        gamma: Tensor,
        beta: Tensor,
        running_mean: Vec<f32>,
        running_var: Vec<f32>,
    ) -> Self {
        let c = gamma.numel();
        assert_eq!(beta.numel(), c, "beta length mismatch");
        assert_eq!(running_mean.len(), c, "running mean length mismatch");
        assert_eq!(running_var.len(), c, "running var length mismatch");
        BatchNorm {
            gamma: Parameter::new(gamma, "bn.gamma"),
            beta: Parameter::new(beta, "bn.beta"),
            running_mean: RefCell::new(running_mean),
            running_var: RefCell::new(running_var),
            momentum: 0.1,
            eps: 1e-5,
            training: Cell::new(true),
        }
    }
}

impl Module for BatchNorm {
    fn forward(&self, x: &Var) -> Var {
        let tape = x.tape().clone();
        let g = tape.param(&self.gamma);
        let b = tape.param(&self.beta);
        if self.training.get() {
            let (y, stats) = x.batch_norm(&g, &b, self.eps, None);
            let (mean, var) = stats.expect("training mode yields batch stats");
            // PyTorch tracks the *unbiased* variance in running stats.
            let n = (x.numel() / mean.len()) as f32;
            let unbias = if n > 1.0 { n / (n - 1.0) } else { 1.0 };
            let mut rm = self.running_mean.borrow_mut();
            let mut rv = self.running_var.borrow_mut();
            for c in 0..mean.len() {
                rm[c] = (1.0 - self.momentum) * rm[c] + self.momentum * mean[c];
                rv[c] = (1.0 - self.momentum) * rv[c] + self.momentum * var[c] * unbias;
            }
            y
        } else {
            let rm = self.running_mean.borrow();
            let rv = self.running_var.borrow();
            let (y, _) = x.batch_norm(&g, &b, self.eps, Some((&rm, &rv)));
            y
        }
    }

    fn parameters(&self) -> Vec<Parameter> {
        vec![self.gamma.clone(), self.beta.clone()]
    }

    fn set_training(&self, training: bool) {
        self.training.set(training);
    }
}

// ---------------------------------------------------------------------------
// Pooling, dropout, activations
// ---------------------------------------------------------------------------

/// 2-D max pooling (`kernel == stride` square windows by default).
#[derive(Debug, Clone, Copy)]
pub struct MaxPool2d {
    /// Window size.
    pub kernel: usize,
    /// Stride.
    pub stride: usize,
}

impl MaxPool2d {
    /// Square window with `stride == kernel`.
    pub fn new(kernel: usize) -> Self {
        MaxPool2d {
            kernel,
            stride: kernel,
        }
    }
}

impl Module for MaxPool2d {
    fn forward(&self, x: &Var) -> Var {
        x.max_pool2d((self.kernel, self.kernel), (self.stride, self.stride))
    }

    fn parameters(&self) -> Vec<Parameter> {
        Vec::new()
    }
}

/// Dropout (elementwise, `torch.nn.Dropout` analogue). During training,
/// zeroes each element with probability `p` and scales survivors by
/// `1 / (1 - p)`; identity in eval mode.
#[derive(Debug)]
pub struct Dropout {
    p: f32,
    rng: RefCell<Rng>,
    training: Cell<bool>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p < 1`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0, 1)");
        Dropout {
            p,
            rng: RefCell::new(Rng::seed_from(seed)),
            training: Cell::new(true),
        }
    }
}

impl Module for Dropout {
    fn forward(&self, x: &Var) -> Var {
        if !self.training.get() || self.p == 0.0 {
            return x.clone();
        }
        let keep = 1.0 - self.p;
        let mut rng = self.rng.borrow_mut();
        let mask = rng.rand(x.value().shape().clone(), 0.0, 1.0).map(|u| {
            if u < keep {
                1.0 / keep
            } else {
                0.0
            }
        });
        x.mul_const(&mask)
    }

    fn parameters(&self) -> Vec<Parameter> {
        Vec::new()
    }

    fn set_training(&self, training: bool) {
        self.training.set(training);
    }
}

/// Channel dropout (`torch.nn.Dropout2d` analogue): zeroes whole channels.
#[derive(Debug)]
pub struct Dropout2d {
    p: f32,
    rng: RefCell<Rng>,
    training: Cell<bool>,
}

impl Dropout2d {
    /// Creates a channel-dropout layer with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p < 1`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0, 1)");
        Dropout2d {
            p,
            rng: RefCell::new(Rng::seed_from(seed)),
            training: Cell::new(true),
        }
    }
}

impl Module for Dropout2d {
    fn forward(&self, x: &Var) -> Var {
        if !self.training.get() || self.p == 0.0 {
            return x.clone();
        }
        let dims = x.value().dims().to_vec();
        assert!(dims.len() >= 2, "Dropout2d expects [N, C, ...]");
        let keep = 1.0 - self.p;
        let mut rng = self.rng.borrow_mut();
        let mut mask_dims = vec![1usize; dims.len()];
        mask_dims[0] = dims[0];
        mask_dims[1] = dims[1];
        let mask = rng
            .rand(mask_dims, 0.0, 1.0)
            .map(|u| if u < keep { 1.0 / keep } else { 0.0 });
        x.mul_const(&mask)
    }

    fn parameters(&self) -> Vec<Parameter> {
        Vec::new()
    }

    fn set_training(&self, training: bool) {
        self.training.set(training);
    }
}

/// ReLU activation module.
#[derive(Debug, Clone, Copy, Default)]
pub struct Relu;

impl Module for Relu {
    fn forward(&self, x: &Var) -> Var {
        x.relu()
    }

    fn parameters(&self) -> Vec<Parameter> {
        Vec::new()
    }
}

/// Leaky-ReLU activation module.
#[derive(Debug, Clone, Copy)]
pub struct LeakyRelu {
    /// Negative-side slope.
    pub slope: f32,
}

impl LeakyRelu {
    /// Creates a leaky ReLU with the given negative slope.
    pub fn new(slope: f32) -> Self {
        LeakyRelu { slope }
    }
}

impl Module for LeakyRelu {
    fn forward(&self, x: &Var) -> Var {
        x.leaky_relu(self.slope)
    }

    fn parameters(&self) -> Vec<Parameter> {
        Vec::new()
    }
}

/// Tanh activation module.
#[derive(Debug, Clone, Copy, Default)]
pub struct Tanh;

impl Module for Tanh {
    fn forward(&self, x: &Var) -> Var {
        x.tanh()
    }

    fn parameters(&self) -> Vec<Parameter> {
        Vec::new()
    }
}

/// Sigmoid activation module.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sigmoid;

impl Module for Sigmoid {
    fn forward(&self, x: &Var) -> Var {
        x.sigmoid()
    }

    fn parameters(&self) -> Vec<Parameter> {
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::Sequential;
    use crate::tape::Tape;

    #[test]
    fn conv2d_layer_shapes() {
        let mut rng = Rng::seed_from(0);
        let conv = Conv2d::new(Conv2dCfg::new(3, 8, 3).stride(1).padding(1), &mut rng);
        let tape = Tape::new();
        let y = conv.forward(&tape.leaf(Tensor::zeros([2, 3, 8, 8])));
        assert_eq!(y.dims(), vec![2, 8, 8, 8]);
        assert_eq!(conv.parameters().len(), 2);
    }

    #[test]
    fn conv_transpose_doubles_spatial() {
        let mut rng = Rng::seed_from(1);
        let deconv = ConvTranspose2d::new(Conv2dCfg::new(8, 4, 4).stride(2).padding(1), &mut rng);
        let tape = Tape::new();
        let y = deconv.forward(&tape.leaf(Tensor::zeros([1, 8, 4, 4])));
        assert_eq!(y.dims(), vec![1, 4, 8, 8]);
    }

    #[test]
    fn linear_layer_matches_manual() {
        let mut rng = Rng::seed_from(2);
        let lin = Linear::new(LinearCfg::new(3, 2), &mut rng);
        let tape = Tape::new();
        let x = Tensor::from_vec(vec![1.0, 0.0, -1.0], [1, 3]);
        let y = lin.forward(&tape.leaf(x.clone()));
        let expected = x
            .matmul(&lin.weight.value_cloned())
            .add(&lin.bias.as_ref().unwrap().value_cloned());
        assert!(y.value().allclose(&expected, 1e-6));
    }

    #[test]
    fn batch_norm_train_vs_eval() {
        let bn = BatchNorm::new(2);
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![0.0, 10.0, 2.0, 20.0], [2, 2]));
        let y_train = bn.forward(&x);
        // Training output is normalized per channel.
        assert!(y_train.value().mean().item().abs() < 1e-5);
        // Running stats moved toward batch stats.
        assert!(bn.running_mean()[0] > 0.0);
        bn.set_training(false);
        let y_eval = bn.forward(&x);
        // Eval uses running stats, so outputs differ from train-normalized.
        assert!(!y_eval.value().allclose(&y_train.value(), 1e-3));
    }

    #[test]
    fn dropout_scales_in_train_identity_in_eval() {
        let d = Dropout::new(0.5, 7);
        let tape = Tape::new();
        let x = tape.leaf(Tensor::ones([1000]));
        let y = d.forward(&x).value();
        let kept = y.as_slice().iter().filter(|&&v| v != 0.0).count();
        assert!(kept > 350 && kept < 650, "kept {kept}");
        assert!(y.as_slice().iter().all(|&v| v == 0.0 || v == 2.0));
        d.set_training(false);
        let y_eval = d.forward(&x).value();
        assert_eq!(y_eval.to_vec(), vec![1.0; 1000]);
    }

    #[test]
    fn dropout2d_zeroes_whole_channels() {
        let d = Dropout2d::new(0.5, 3);
        let tape = Tape::new();
        let x = tape.leaf(Tensor::ones([4, 8, 2, 2]));
        let y = d.forward(&x).value();
        for n in 0..4 {
            for c in 0..8 {
                let ch = y.narrow(0, n, 1).narrow(1, c, 1);
                let s = ch.sum().item();
                assert!(s == 0.0 || (s - 8.0).abs() < 1e-5, "mixed channel {s}");
            }
        }
    }

    #[test]
    fn sequential_collects_params_and_propagates_mode() {
        let mut rng = Rng::seed_from(4);
        let net = Sequential::new(vec![
            Box::new(Conv2d::new(Conv2dCfg::new(1, 2, 3).padding(1), &mut rng)),
            Box::new(Relu),
            Box::new(BatchNorm::new(2)),
            Box::new(Dropout::new(0.3, 1)),
        ]);
        assert_eq!(net.parameters().len(), 4); // conv w+b, bn gamma+beta
        net.set_training(false);
        let tape = Tape::new();
        let y1 = net.forward(&tape.leaf(Tensor::ones([1, 1, 4, 4])));
        let y2 = net.forward(&tape.leaf(Tensor::ones([1, 1, 4, 4])));
        // Eval mode is deterministic.
        assert!(y1.value().allclose(&y2.value(), 1e-6));
    }

    #[test]
    fn maxpool_module() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::arange(16).reshape(&[1, 1, 4, 4]));
        let y = MaxPool2d::new(2).forward(&x);
        assert_eq!(y.dims(), vec![1, 1, 2, 2]);
        assert_eq!(y.value().to_vec(), vec![5.0, 7.0, 13.0, 15.0]);
    }

    #[test]
    fn activations_forward() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![-1.0, 1.0], [2]));
        assert_eq!(Relu.forward(&x).value().to_vec(), vec![0.0, 1.0]);
        assert_eq!(
            LeakyRelu::new(0.1).forward(&x).value().to_vec(),
            vec![-0.1, 1.0]
        );
        assert!(Tanh.forward(&x).value().at(&[1]) < 1.0);
        assert!((Sigmoid.forward(&x).value().at(&[1]) - 0.731).abs() < 1e-3);
    }
}
