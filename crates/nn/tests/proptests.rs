//! Property-based tests of the autograd engine: analytic gradients agree
//! with central differences for randomly composed expressions, and
//! algebraic gradient identities hold.

use hfta_nn::{check_gradients, Parameter, Tape};
use hfta_tensor::{Rng, Tensor};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn random_elementwise_chains_gradcheck(seed in 0u64..10_000, ops in prop::collection::vec(0u8..6, 1..5)) {
        let mut rng = Rng::seed_from(seed);
        // Keep values in a safe domain for ln/div.
        let w = Parameter::new(rng.rand([6], 0.2, 2.0), "w");
        let ops2 = ops.clone();
        // The closure needs its own handle; Parameter clones share storage.
        let w_in_loss = w.clone();
        check_gradients(
            std::slice::from_ref(&w),
            move |tape| {
                let mut v = tape.param(&w_in_loss);
                for op in &ops2 {
                    v = match op {
                        0 => v.relu(),
                        1 => v.tanh(),
                        2 => v.sigmoid(),
                        3 => v.square().add_scalar(0.1),
                        4 => v.mul_scalar(0.7).add_scalar(0.3),
                        _ => v.add_scalar(0.5).ln().exp(),
                    };
                }
                v.sum()
            },
            5e-2,
        );
    }

    #[test]
    fn linear_chain_gradcheck(seed in 0u64..10_000, depth in 1usize..4) {
        let mut rng = Rng::seed_from(seed);
        let params: Vec<Parameter> = (0..depth)
            .map(|i| Parameter::new(rng.randn([3, 3]).mul_scalar(0.5), format!("w{i}")))
            .collect();
        let x = rng.randn([2, 3]);
        let ps = params.clone();
        check_gradients(
            &params,
            move |tape| {
                let mut h = tape.leaf(x.clone());
                for p in &ps {
                    h = h.matmul(&tape.param(p)).tanh();
                }
                h.square().sum()
            },
            1e-1,
        );
    }

    #[test]
    fn sum_of_parts_equals_whole_gradient(seed in 0u64..10_000, n in 2usize..6) {
        // d(sum(x))/dx via narrow+concat must equal the direct gradient.
        let mut rng = Rng::seed_from(seed);
        let w = Parameter::new(rng.randn([n, 4]), "w");
        w.zero_grad();
        let tape = Tape::new();
        let x = tape.param(&w);
        let parts: Vec<_> = (0..n).map(|i| x.narrow(0, i, 1)).collect();
        let refs: Vec<&hfta_nn::Var> = parts.iter().collect();
        hfta_nn::Var::concat(&refs, 0).sum().backward();
        let via_parts = w.grad_cloned();
        w.zero_grad();
        let tape = Tape::new();
        tape.param(&w).sum().backward();
        prop_assert_eq!(via_parts, w.grad_cloned());
    }

    #[test]
    fn grad_of_constant_wrt_unused_param_is_zero(seed in 0u64..10_000) {
        let mut rng = Rng::seed_from(seed);
        let used = Parameter::new(rng.randn([2]), "used");
        let unused = Parameter::new(rng.randn([2]), "unused");
        used.zero_grad();
        unused.zero_grad();
        let tape = Tape::new();
        let _ = tape.param(&unused); // registered but not in the loss
        tape.param(&used).square().sum().backward();
        prop_assert_eq!(unused.grad_cloned(), Tensor::zeros([2]));
        prop_assert!(used.grad_cloned().abs().max_value() >= 0.0);
    }

    #[test]
    fn backward_is_linear_in_seed(seed in 0u64..10_000, alpha in 0.1f32..4.0) {
        // backward(alpha * g) == alpha * backward(g).
        let mut rng = Rng::seed_from(seed);
        let w = Parameter::new(rng.randn([3]), "w");
        let run = |scale: f32| -> Tensor {
            w.zero_grad();
            let tape = Tape::new();
            let y = tape.param(&w).tanh();
            y.backward_with(Tensor::full([3], scale));
            w.grad_cloned()
        };
        let g1 = run(1.0);
        let ga = run(alpha);
        prop_assert!(ga.allclose(&g1.mul_scalar(alpha), 1e-4));
    }
}
