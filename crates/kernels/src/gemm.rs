//! Cache-blocked, register-tiled f32 GEMM.
//!
//! Structure: `A` and `B` are packed into contiguous `MR`-row / `NR`-column
//! panels (transposition is absorbed by the packing, so all three variants
//! share one macro-kernel), then an `MR x NR` micro-kernel keeps the output
//! tile in registers and walks the full contraction dimension with
//! sequential panel reads — written so the inner loop autovectorizes.
//!
//! # Bit-exactness
//!
//! Each output element accumulates into its initial value in ascending
//! contraction order with separate multiply and add (no FMA contraction, no
//! reordering), which is exactly the order of the naive references in
//! [`crate::reference`]. The property tests in `tests/proptests.rs` assert
//! bit-identity — not closeness — between the two, at thread counts 1, 2 and
//! the maximum. Row panels parallelize across the [`crate::pool`] with a
//! grain that depends only on the shape, so the thread count never changes
//! the result.

use std::sync::atomic::{AtomicU8, Ordering};

use crate::pool::{self, UnsafeSlice};
use crate::reference;
use hfta_mem::scratch;

/// Micro-kernel tile rows.
pub const MR: usize = 8;
/// Micro-kernel tile columns.
pub const NR: usize = 8;

/// Below this many FLOPs (2·m·k·n) the packed path's overhead outweighs its
/// wins and the reference kernels run instead. Both paths are bit-identical,
/// so this is purely a performance knob.
const SMALL_FLOPS: usize = 1 << 12;

/// Target FLOPs per parallel chunk of row panels.
const CHUNK_FLOPS: usize = 1 << 19;

/// Which implementation the `gemm*` entry points dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GemmBackend {
    /// Packed, register-tiled, pool-parallel kernels (default).
    Blocked,
    /// The retained naive serial reference — the pre-kernel-layer path,
    /// kept selectable for A/B benchmarking and equivalence tests.
    Naive,
}

static BACKEND: AtomicU8 = AtomicU8::new(0);

/// Selects the GEMM implementation process-wide.
pub fn set_backend(backend: GemmBackend) {
    BACKEND.store(
        match backend {
            GemmBackend::Blocked => 0,
            GemmBackend::Naive => 1,
        },
        Ordering::Relaxed,
    );
}

/// The currently selected GEMM implementation.
pub fn backend() -> GemmBackend {
    match BACKEND.load(Ordering::Relaxed) {
        0 => GemmBackend::Blocked,
        _ => GemmBackend::Naive,
    }
}

/// How operand `A` is stored relative to the `[m, k]` logical view.
#[derive(Clone, Copy)]
enum PackA<'a> {
    /// `a[m, k]` row-major.
    N(&'a [f32]),
    /// `a[k, m]` row-major (transposed access).
    T(&'a [f32]),
}

/// How operand `B` is stored relative to the `[k, n]` logical view.
#[derive(Clone, Copy)]
enum PackB<'a> {
    /// `b[k, n]` row-major.
    N(&'a [f32]),
    /// `b[n, k]` row-major (transposed access).
    T(&'a [f32]),
}

/// `out[m,n] += a[m,k] @ b[k,n]`, all row-major.
pub fn gemm(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if backend() == GemmBackend::Naive || 2 * m * k * n < SMALL_FLOPS {
        reference::gemm_ref(out, a, b, m, k, n);
        return;
    }
    run_blocked(out, PackA::N(a), PackB::N(b), m, k, n);
}

/// `out[m,n] += a[m,k] @ b[n,k]^T` (`b` stored row-major as `[n, k]`).
pub fn gemm_nt(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    if backend() == GemmBackend::Naive || 2 * m * k * n < SMALL_FLOPS {
        reference::gemm_nt_ref(out, a, b, m, k, n);
        return;
    }
    run_blocked(out, PackA::N(a), PackB::T(b), m, k, n);
}

/// `out[m,n] += a[k,m]^T @ b[k,n]` (`a` stored row-major as `[k, m]`).
pub fn gemm_tn(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if backend() == GemmBackend::Naive || 2 * m * k * n < SMALL_FLOPS {
        reference::gemm_tn_ref(out, a, b, m, k, n);
        return;
    }
    run_blocked(out, PackA::T(a), PackB::N(b), m, k, n);
}

/// Packs all of `B` into `ceil(n/NR)` zero-padded column panels; panel `jb`
/// occupies `bpack[jb*k*NR..][p*NR + c] = B[p, jb*NR + c]`. `bpack` must
/// arrive zero-filled (scratch checkouts are) — the packing only writes the
/// valid columns and relies on the zeros for panel padding.
fn pack_b_into(b: PackB<'_>, k: usize, n: usize, bpack: &mut [f32]) {
    let col_panels = n.div_ceil(NR);
    debug_assert_eq!(bpack.len(), col_panels * k * NR);
    for jb in 0..col_panels {
        let j0 = jb * NR;
        let cols = NR.min(n - j0);
        let panel = &mut bpack[jb * k * NR..(jb + 1) * k * NR];
        match b {
            PackB::N(src) => {
                for p in 0..k {
                    let row = &src[p * n + j0..p * n + j0 + cols];
                    panel[p * NR..p * NR + cols].copy_from_slice(row);
                }
            }
            PackB::T(src) => {
                for (c, col) in src[j0 * k..(j0 + cols) * k].chunks_exact(k).enumerate() {
                    for (p, &v) in col.iter().enumerate() {
                        panel[p * NR + c] = v;
                    }
                }
            }
        }
    }
}

/// Packs rows `i0..i0+rows` of `A` into a zero-padded `MR`-row panel:
/// `buf[p*MR + r] = A[i0 + r, p]`.
fn pack_a(a: PackA<'_>, m: usize, k: usize, i0: usize, rows: usize, buf: &mut [f32]) {
    debug_assert_eq!(buf.len(), k * MR);
    match a {
        PackA::N(src) => {
            if rows < MR {
                buf.fill(0.0);
            }
            for r in 0..rows {
                let arow = &src[(i0 + r) * k..(i0 + r + 1) * k];
                for (p, &v) in arow.iter().enumerate() {
                    buf[p * MR + r] = v;
                }
            }
        }
        PackA::T(src) => {
            if rows < MR {
                buf.fill(0.0);
            }
            for p in 0..k {
                let arow = &src[p * m + i0..p * m + i0 + rows];
                buf[p * MR..p * MR + rows].copy_from_slice(arow);
            }
        }
    }
}

/// The register-tiled inner kernel: `acc[r][c] += apanel[p][r] * bpanel[p][c]`
/// for `p` ascending. `acc` rows/columns beyond the valid tile see only the
/// panels' zero padding and stay untouched in value.
#[inline]
fn microkernel(k: usize, apanel: &[f32], bpanel: &[f32], acc: &mut [[f32; NR]; MR]) {
    for (arow, brow) in apanel.chunks_exact(MR).zip(bpanel.chunks_exact(NR)).take(k) {
        let arow: &[f32; MR] = arow.try_into().unwrap();
        let brow: &[f32; NR] = brow.try_into().unwrap();
        for r in 0..MR {
            let av = arow[r];
            let accr = &mut acc[r];
            for c in 0..NR {
                accr[c] += av * brow[c];
            }
        }
    }
}

fn run_blocked(out: &mut [f32], a: PackA<'_>, b: PackB<'_>, m: usize, k: usize, n: usize) {
    let row_panels = m.div_ceil(MR);
    let col_panels = n.div_ceil(NR);
    // Grain is a pure function of the shape (never the thread count), so the
    // chunk decomposition — and therefore the result — is deterministic.
    let panel_flops = 2 * MR * k * n;
    let grain = (CHUNK_FLOPS / panel_flops.max(1)).clamp(1, row_panels);
    let n_chunks = row_panels.div_ceil(grain);
    let bpack_len = col_panels * k * NR;
    // Worst-case concurrent scratch demand. A GEMM nested inside a pool
    // worker runs inline there, so every worker can hold one B-pack and one
    // A-panel at once; a top-level GEMM holds one B-pack on the caller while
    // its row-panel chunks each hold an A-panel.
    let (bpack_count, apanel_count) = if pool::in_worker() {
        (pool::num_threads(), pool::num_threads())
    } else {
        (1, pool::num_threads().min(n_chunks))
    };
    scratch::reserve("gemm.bpack", bpack_len, bpack_count);
    scratch::reserve("gemm.apanel", k * MR, apanel_count);
    scratch::with(bpack_len, |bpack| {
        pack_b_into(b, k, n, bpack);
        let shared = UnsafeSlice::new(out);
        pool::parallel_for(row_panels, grain, |panels| {
            scratch::with(k * MR, |apanel| {
                for ib in panels {
                    let i0 = ib * MR;
                    let rows = MR.min(m - i0);
                    pack_a(a, m, k, i0, rows, apanel);
                    // SAFETY: row panels are disjoint output regions.
                    let orows = unsafe { shared.slice_mut(i0 * n..(i0 + rows) * n) };
                    for jb in 0..col_panels {
                        let j0 = jb * NR;
                        let cols = NR.min(n - j0);
                        let bpanel = &bpack[jb * k * NR..(jb + 1) * k * NR];
                        let mut acc = [[0.0f32; NR]; MR];
                        for (r, orow) in orows.chunks_exact(n).enumerate() {
                            acc[r][..cols].copy_from_slice(&orow[j0..j0 + cols]);
                        }
                        microkernel(k, apanel, bpanel, &mut acc);
                        for (r, orow) in orows.chunks_exact_mut(n).enumerate() {
                            orow[j0..j0 + cols].copy_from_slice(&acc[r][..cols]);
                        }
                    }
                }
            });
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(len: usize, seed: u64) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state as f64 / u64::MAX as f64) as f32 - 0.5) * 2.0
            })
            .collect()
    }

    fn transpose(src: &[f32], rows: usize, cols: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; rows * cols];
        for r in 0..rows {
            for c in 0..cols {
                out[c * rows + r] = src[r * cols + c];
            }
        }
        out
    }

    #[test]
    fn blocked_bitwise_equals_reference_over_shape_sweep() {
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 2),
            (8, 8, 8),
            (9, 17, 11),
            (16, 72, 25),
            (33, 7, 40),
            (64, 64, 64),
        ] {
            let a = fill(m * k, 1 + (m * 31 + k * 7 + n) as u64);
            let b = fill(k * n, 2 + (m + k * 13 + n * 3) as u64);
            let init = fill(m * n, 3 + (m + k + n) as u64);
            let mut fast = init.clone();
            let mut slow = init.clone();
            // Force the blocked path even below the size threshold.
            run_blocked(&mut fast, PackA::N(&a), PackB::N(&b), m, k, n);
            reference::gemm_ref(&mut slow, &a, &b, m, k, n);
            assert_eq!(fast, slow, "gemm mismatch at ({m},{k},{n})");

            let at = transpose(&a, m, k);
            let mut fast_tn = init.clone();
            let mut slow_tn = init.clone();
            run_blocked(&mut fast_tn, PackA::T(&at), PackB::N(&b), m, k, n);
            reference::gemm_tn_ref(&mut slow_tn, &at, &b, m, k, n);
            assert_eq!(fast_tn, slow_tn, "gemm_tn mismatch at ({m},{k},{n})");

            let bt = transpose(&b, k, n);
            let mut fast_nt = init.clone();
            let mut slow_nt = init;
            run_blocked(&mut fast_nt, PackA::N(&a), PackB::T(&bt), m, k, n);
            reference::gemm_nt_ref(&mut slow_nt, &a, &bt, m, k, n);
            assert_eq!(fast_nt, slow_nt, "gemm_nt mismatch at ({m},{k},{n})");
        }
    }

    #[test]
    fn backend_toggle_dispatches_naive() {
        set_backend(GemmBackend::Naive);
        assert_eq!(backend(), GemmBackend::Naive);
        let a = fill(16 * 16, 9);
        let b = fill(16 * 16, 10);
        let mut via_entry = vec![0.0f32; 16 * 16];
        gemm(&mut via_entry, &a, &b, 16, 16, 16);
        set_backend(GemmBackend::Blocked);
        assert_eq!(backend(), GemmBackend::Blocked);
        let mut via_ref = vec![0.0f32; 16 * 16];
        reference::gemm_ref(&mut via_ref, &a, &b, 16, 16, 16);
        assert_eq!(via_entry, via_ref);
    }

    #[test]
    fn degenerate_dims_are_no_ops() {
        let mut out: Vec<f32> = vec![1.0; 4];
        gemm(&mut out, &[], &[], 2, 0, 2);
        assert_eq!(out, vec![1.0; 4]);
        let mut empty: Vec<f32> = Vec::new();
        gemm(&mut empty, &[], &[], 0, 3, 0);
        assert!(empty.is_empty());
    }
}
