//! Cache-blocked, register-tiled f32 GEMM with selectable backends.
//!
//! Structure: `A` and `B` are packed into contiguous `MR`-row / `NR`-column
//! panels (transposition is absorbed by the packing, so all three variants
//! share one macro-kernel), then an `MR x NR` micro-kernel keeps the output
//! tile in registers and walks the full contraction dimension with
//! sequential panel reads. The macro-kernel partitions work in 2-D over
//! (row-panel, column-panel-group) tiles so that medium GEMMs expose at
//! least as many chunks as the pool has threads even when `m` is small.
//!
//! # Backends
//!
//! | backend   | micro-kernel          | contract vs. [`crate::reference`] |
//! |-----------|-----------------------|-----------------------------------|
//! | `Blocked` | scalar, autovectorized| bit-identical                     |
//! | `Naive`   | the reference itself  | bit-identical (it *is* the ref)   |
//! | `Simd`    | AVX2/FMA f32x8        | relative tolerance (FMA rounding) |
//! | `Auto`    | picks one of the above| bit-identical unless SIMD opted in|
//!
//! The process-wide selection comes from [`set_backend`] or the
//! `HFTA_GEMM_BACKEND` env var (`auto` / `blocked` / `naive` / `simd`, read
//! once); the default is `Auto`. A forced `Simd` backend falls back to the
//! scalar blocked kernel when the CPU lacks AVX2+FMA (see
//! [`crate::simd::simd_available`]).
//!
//! `Auto` consults the persistent autotuner ([`crate::tune`]) when a
//! find-db is configured: first encounter of an `(op, shape, threads)` key
//! times the candidate backends on a scratch copy of the output and caches
//! the winner; later dispatches jump straight to it. With tuning disabled,
//! `Auto` is a static heuristic (the blocked kernel; the SIMD kernel when
//! opted in via [`set_auto_simd`] / `HFTA_TUNE_SIMD=1`). SIMD only ever
//! enters the `Auto` candidate set through that explicit opt-in, so default
//! runs — tuned or not — stay bit-identical to the references.
//!
//! # Bit-exactness
//!
//! Each output element accumulates into its initial value in ascending
//! contraction order with separate multiply and add (no FMA contraction, no
//! reordering), which is exactly the order of the naive references in
//! [`crate::reference`]. The property tests in `tests/proptests.rs` assert
//! bit-identity — not closeness — between the two, at thread counts 1, 2 and
//! the maximum. Tile decomposition (and the [`crate::pool`] grain) depends
//! only on the shape, so the thread count never changes the result. The
//! opt-in `Simd` backend instead carries a relative-tolerance contract,
//! property-tested separately.

use std::sync::atomic::{AtomicU8, Ordering};
use std::time::Instant;

use crate::pool::{self, UnsafeSlice};
use crate::reference;
use crate::simd;
use crate::tune;
use hfta_mem::scratch;

/// Micro-kernel tile rows.
pub const MR: usize = 8;
/// Micro-kernel tile columns.
pub const NR: usize = 8;

/// Below this many FLOPs (2·m·k·n) the packed path's overhead outweighs its
/// wins and the reference kernels run instead. The reference and the scalar
/// blocked path are bit-identical, so this is purely a performance knob —
/// and the SIMD micro-kernel never engages below it, keeping tiny GEMMs
/// bit-stable under every backend.
const SMALL_FLOPS: usize = 1 << 12;

/// Target FLOPs per parallel tile of the 2-D macro-kernel partition.
const CHUNK_FLOPS: usize = 1 << 19;

/// The autotuner skips the naive candidate above this many FLOPs — on big
/// shapes the naive kernel is orders of magnitude off and timing it would
/// dominate first-encounter cost.
const NAIVE_TUNE_MAX_FLOPS: usize = 1 << 24;

/// Which implementation the `gemm*` entry points dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GemmBackend {
    /// Heuristic/tuned selection among the fixed backends (default). Never
    /// selects `Simd` unless [`set_auto_simd`] / `HFTA_TUNE_SIMD=1` opted in.
    Auto,
    /// Packed, register-tiled, pool-parallel scalar kernels (bit-exact).
    Blocked,
    /// The retained naive serial reference — the pre-kernel-layer path,
    /// kept selectable for A/B benchmarking and equivalence tests.
    Naive,
    /// The AVX2/FMA micro-kernel ([`crate::simd`]) — opt-in, tolerance
    /// contract; falls back to `Blocked` where unsupported.
    Simd,
}

impl GemmBackend {
    /// The find-db / CLI name of this backend.
    pub fn name(self) -> &'static str {
        match self {
            GemmBackend::Auto => "auto",
            GemmBackend::Blocked => "blocked",
            GemmBackend::Naive => "naive",
            GemmBackend::Simd => "simd",
        }
    }

    /// Parses a backend name (as in `HFTA_GEMM_BACKEND` or find-db
    /// winners); `None` for anything unrecognized.
    pub fn parse(name: &str) -> Option<GemmBackend> {
        match name.trim().to_ascii_lowercase().as_str() {
            "auto" => Some(GemmBackend::Auto),
            "blocked" => Some(GemmBackend::Blocked),
            "naive" => Some(GemmBackend::Naive),
            "simd" => Some(GemmBackend::Simd),
            _ => None,
        }
    }
}

/// `u8::MAX` = not yet resolved from `HFTA_GEMM_BACKEND`.
static BACKEND: AtomicU8 = AtomicU8::new(u8::MAX);

fn encode(backend: GemmBackend) -> u8 {
    match backend {
        GemmBackend::Auto => 0,
        GemmBackend::Blocked => 1,
        GemmBackend::Naive => 2,
        GemmBackend::Simd => 3,
    }
}

/// Selects the GEMM implementation process-wide (overrides the env var).
pub fn set_backend(backend: GemmBackend) {
    BACKEND.store(encode(backend), Ordering::Relaxed);
}

/// The currently selected GEMM implementation. First call resolves
/// `HFTA_GEMM_BACKEND` (unset or unrecognized values mean [`GemmBackend::Auto`]).
pub fn backend() -> GemmBackend {
    match BACKEND.load(Ordering::Relaxed) {
        0 => GemmBackend::Auto,
        1 => GemmBackend::Blocked,
        2 => GemmBackend::Naive,
        3 => GemmBackend::Simd,
        _ => {
            let be = std::env::var("HFTA_GEMM_BACKEND")
                .ok()
                .and_then(|v| GemmBackend::parse(&v))
                .unwrap_or(GemmBackend::Auto);
            // Racing first calls resolve identically; an interleaved
            // `set_backend` wins over the env value by overwriting.
            let _ =
                BACKEND.compare_exchange(u8::MAX, encode(be), Ordering::Relaxed, Ordering::Relaxed);
            backend()
        }
    }
}

/// `u8::MAX` = not yet resolved from `HFTA_TUNE_SIMD`.
static AUTO_SIMD: AtomicU8 = AtomicU8::new(u8::MAX);

/// Opts the SIMD kernel in (or out) as an `Auto` candidate. Without this
/// opt-in `Auto` only ever picks bit-exact backends, so the default
/// configuration preserves fused-vs-serial bit-identity end to end.
pub fn set_auto_simd(enabled: bool) {
    AUTO_SIMD.store(enabled as u8, Ordering::Relaxed);
}

/// Whether `Auto` may select the SIMD kernel ([`set_auto_simd`] or
/// `HFTA_TUNE_SIMD=1`, env read once).
pub fn auto_simd() -> bool {
    match AUTO_SIMD.load(Ordering::Relaxed) {
        0 => false,
        1 => true,
        _ => {
            let on = std::env::var("HFTA_TUNE_SIMD")
                .map(|v| {
                    let t = v.trim();
                    t == "1" || t.eq_ignore_ascii_case("true")
                })
                .unwrap_or(false);
            let _ =
                AUTO_SIMD.compare_exchange(u8::MAX, on as u8, Ordering::Relaxed, Ordering::Relaxed);
            auto_simd()
        }
    }
}

/// Which micro-kernel the macro-kernel runs per tile.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Micro {
    Scalar,
    Simd,
}

/// How operand `A` is stored relative to the `[m, k]` logical view.
#[derive(Clone, Copy)]
enum PackA<'a> {
    /// `a[m, k]` row-major.
    N(&'a [f32]),
    /// `a[k, m]` row-major (transposed access).
    T(&'a [f32]),
    /// Already packed by [`pack_a_into`]: `ceil(m/MR)` panels of `k*MR`.
    Pre(&'a [f32]),
}

/// How operand `B` is stored relative to the `[k, n]` logical view.
#[derive(Clone, Copy)]
enum PackB<'a> {
    /// `b[k, n]` row-major.
    N(&'a [f32]),
    /// `b[n, k]` row-major (transposed access).
    T(&'a [f32]),
}

/// `out[m,n] += a[m,k] @ b[k,n]`, all row-major.
pub fn gemm(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    dispatch(out, PackA::N(a), PackB::N(b), m, k, n, "gemm");
}

/// `out[m,n] += a[m,k] @ b[n,k]^T` (`b` stored row-major as `[n, k]`).
pub fn gemm_nt(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    dispatch(out, PackA::N(a), PackB::T(b), m, k, n, "gemm_nt");
}

/// `out[m,n] += a[k,m]^T @ b[k,n]` (`a` stored row-major as `[k, m]`).
pub fn gemm_tn(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    dispatch(out, PackA::T(a), PackB::N(b), m, k, n, "gemm_tn");
}

/// Length of the buffer [`pack_a_into`] fills for an `[m, k]` operand.
pub fn packed_a_len(m: usize, k: usize) -> usize {
    m.div_ceil(MR) * k * MR
}

/// Packs a row-major `a[m, k]` into zero-padded `MR`-row panels (the layout
/// the macro-kernel consumes), for reuse across many [`gemm_prepacked`]
/// calls that share the same `A` — e.g. a conv weight matrix applied to
/// every sample of a batch.
pub fn pack_a_into(a: &[f32], m: usize, k: usize, buf: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(buf.len(), packed_a_len(m, k));
    for ib in 0..m.div_ceil(MR) {
        let i0 = ib * MR;
        let rows = MR.min(m - i0);
        pack_a(
            PackA::N(a),
            m,
            k,
            i0,
            rows,
            &mut buf[ib * k * MR..(ib + 1) * k * MR],
        );
    }
}

/// `out[m,n] += A @ b[k,n]` where `A` was packed once by [`pack_a_into`].
///
/// Bit-compatible with [`gemm`] on the same operands for every bit-exact
/// backend: below [`SMALL_FLOPS`]-sized shapes and under scalar kernels the
/// accumulation order is identical, so pre-packing never changes results —
/// only the per-call packing cost. The SIMD micro-kernel engages exactly
/// when a forced `Simd` backend (or SIMD-opted-in `Auto`) would use it.
pub fn gemm_prepacked(out: &mut [f32], apack: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(apack.len(), packed_a_len(m, k));
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    let flops = 2 * m * k * n;
    let simd_active = matches!(backend(), GemmBackend::Simd)
        || (matches!(backend(), GemmBackend::Auto) && auto_simd());
    let micro = if flops >= SMALL_FLOPS && simd_active && simd::simd_available() {
        Micro::Simd
    } else {
        Micro::Scalar
    };
    run_tiled(out, PackA::Pre(apack), PackB::N(b), m, k, n, micro);
}

/// Runs the naive reference matching the operand orientations.
fn run_reference(out: &mut [f32], a: PackA<'_>, b: PackB<'_>, m: usize, k: usize, n: usize) {
    match (a, b) {
        (PackA::N(a), PackB::N(b)) => reference::gemm_ref(out, a, b, m, k, n),
        (PackA::N(a), PackB::T(b)) => reference::gemm_nt_ref(out, a, b, m, k, n),
        (PackA::T(a), PackB::N(b)) => reference::gemm_tn_ref(out, a, b, m, k, n),
        // No entry point produces these; the scalar tiled kernel is
        // bit-identical to the references, so it serves as the fallback.
        _ => run_tiled(out, a, b, m, k, n, Micro::Scalar),
    }
}

/// Runs one resolved (non-`Auto`) backend.
fn run_fixed(
    be: GemmBackend,
    out: &mut [f32],
    a: PackA<'_>,
    b: PackB<'_>,
    m: usize,
    k: usize,
    n: usize,
) {
    match be {
        GemmBackend::Naive => run_reference(out, a, b, m, k, n),
        GemmBackend::Simd if simd::simd_available() => {
            run_tiled(out, a, b, m, k, n, Micro::Simd);
        }
        _ => run_tiled(out, a, b, m, k, n, Micro::Scalar),
    }
}

/// Resolves an `Auto` dispatch: find-db winner when tuned, candidate
/// benchmark on first encounter, static heuristic when tuning is off.
fn auto_backend(
    out: &mut [f32],
    a: PackA<'_>,
    b: PackB<'_>,
    m: usize,
    k: usize,
    n: usize,
    op: &str,
) -> GemmBackend {
    let simd_in = auto_simd() && simd::simd_available();
    let heuristic = if simd_in {
        GemmBackend::Simd
    } else {
        GemmBackend::Blocked
    };
    if !tune::enabled() {
        return heuristic;
    }
    let key = tune::key(op, m, k, n, pool::num_threads());
    if let Some(winner) = tune::lookup(&key) {
        return match GemmBackend::parse(&winner) {
            Some(GemmBackend::Simd) if !simd::simd_available() => GemmBackend::Blocked,
            Some(be) if be != GemmBackend::Auto => be,
            _ => heuristic,
        };
    }
    // First encounter: time every candidate against the real operands on a
    // scratch copy of the output (the op is `out += a@b`, so candidates must
    // not double-accumulate into the caller's buffer). One reading per
    // candidate is deliberate — among bit-exact candidates a noisy winner is
    // harmless, and the SIMD/blocked gap is far wider than timer noise.
    let flops = 2 * m * k * n;
    let mut candidates = vec![GemmBackend::Blocked];
    if flops <= NAIVE_TUNE_MAX_FLOPS {
        candidates.push(GemmBackend::Naive);
    }
    if simd_in {
        candidates.push(GemmBackend::Simd);
    }
    scratch::reserve("tune.out", out.len(), 1);
    let mut best = (GemmBackend::Blocked, f64::INFINITY);
    let mut micros: Vec<(&str, f64)> = Vec::with_capacity(candidates.len());
    for be in candidates {
        let us = scratch::with(out.len(), |tmp| {
            tmp.copy_from_slice(out);
            let t0 = Instant::now();
            run_fixed(be, tmp, a, b, m, k, n);
            t0.elapsed().as_secs_f64() * 1e6
        });
        micros.push((be.name(), us));
        if us < best.1 {
            best = (be, us);
        }
    }
    tune::record(&key, best.0.name(), &micros);
    best.0
}

fn dispatch(out: &mut [f32], a: PackA<'_>, b: PackB<'_>, m: usize, k: usize, n: usize, op: &str) {
    if 2 * m * k * n < SMALL_FLOPS {
        run_reference(out, a, b, m, k, n);
        return;
    }
    let be = match backend() {
        GemmBackend::Auto => auto_backend(out, a, b, m, k, n, op),
        be => be,
    };
    run_fixed(be, out, a, b, m, k, n);
}

/// Packs all of `B` into `ceil(n/NR)` zero-padded column panels; panel `jb`
/// occupies `bpack[jb*k*NR..][p*NR + c] = B[p, jb*NR + c]`. `bpack` must
/// arrive zero-filled (scratch checkouts are) — the packing only writes the
/// valid columns and relies on the zeros for panel padding.
fn pack_b_into(b: PackB<'_>, k: usize, n: usize, bpack: &mut [f32]) {
    let col_panels = n.div_ceil(NR);
    debug_assert_eq!(bpack.len(), col_panels * k * NR);
    for jb in 0..col_panels {
        let j0 = jb * NR;
        let cols = NR.min(n - j0);
        let panel = &mut bpack[jb * k * NR..(jb + 1) * k * NR];
        match b {
            PackB::N(src) => {
                for p in 0..k {
                    let row = &src[p * n + j0..p * n + j0 + cols];
                    panel[p * NR..p * NR + cols].copy_from_slice(row);
                }
            }
            PackB::T(src) => {
                for (c, col) in src[j0 * k..(j0 + cols) * k].chunks_exact(k).enumerate() {
                    for (p, &v) in col.iter().enumerate() {
                        panel[p * NR + c] = v;
                    }
                }
            }
        }
    }
}

/// Packs rows `i0..i0+rows` of `A` into a zero-padded `MR`-row panel:
/// `buf[p*MR + r] = A[i0 + r, p]`.
fn pack_a(a: PackA<'_>, m: usize, k: usize, i0: usize, rows: usize, buf: &mut [f32]) {
    debug_assert_eq!(buf.len(), k * MR);
    match a {
        PackA::N(src) => {
            if rows < MR {
                buf.fill(0.0);
            }
            for r in 0..rows {
                let arow = &src[(i0 + r) * k..(i0 + r + 1) * k];
                for (p, &v) in arow.iter().enumerate() {
                    buf[p * MR + r] = v;
                }
            }
        }
        PackA::T(src) => {
            if rows < MR {
                buf.fill(0.0);
            }
            for p in 0..k {
                let arow = &src[p * m + i0..p * m + i0 + rows];
                buf[p * MR..p * MR + rows].copy_from_slice(arow);
            }
        }
        PackA::Pre(_) => unreachable!("pre-packed panels are read in place"),
    }
}

/// The scalar register-tiled inner kernel: `acc[r][c] += apanel[p][r] *
/// bpanel[p][c]` for `p` ascending, separate multiply and add. `acc`
/// rows/columns beyond the valid tile see only the panels' zero padding and
/// stay untouched in value. Shared with the SIMD module's equivalence tests.
#[inline]
pub(crate) fn scalar_microkernel(
    k: usize,
    apanel: &[f32],
    bpanel: &[f32],
    acc: &mut [[f32; NR]; MR],
) {
    for (arow, brow) in apanel.chunks_exact(MR).zip(bpanel.chunks_exact(NR)).take(k) {
        let arow: &[f32; MR] = arow.try_into().unwrap();
        let brow: &[f32; NR] = brow.try_into().unwrap();
        for r in 0..MR {
            let av = arow[r];
            let accr = &mut acc[r];
            for c in 0..NR {
                accr[c] += av * brow[c];
            }
        }
    }
}

/// The 2-D tiled macro-kernel. Work is split over (row-panel-group,
/// column-panel-group) tiles: when one row panel already carries
/// [`CHUNK_FLOPS`] the columns split so short-`m` GEMMs still expose many
/// chunks; otherwise row panels group as before. Both grains — and hence the
/// decomposition — are pure functions of the shape, and every output element
/// is still produced by exactly one micro-kernel call walking the full
/// contraction ascending, so scalar results are bit-identical at any thread
/// count and to the 1-D partition this replaces.
fn run_tiled(
    out: &mut [f32],
    a: PackA<'_>,
    b: PackB<'_>,
    m: usize,
    k: usize,
    n: usize,
    micro: Micro,
) {
    let row_panels = m.div_ceil(MR);
    let col_panels = n.div_ceil(NR);
    let panel_flops = 2 * MR * k * n;
    let (row_grain, col_grain) = if panel_flops >= CHUNK_FLOPS {
        (
            1,
            (CHUNK_FLOPS / (2 * MR * k * NR).max(1)).clamp(1, col_panels),
        )
    } else {
        (
            (CHUNK_FLOPS / panel_flops.max(1)).clamp(1, row_panels),
            col_panels,
        )
    };
    let row_groups = row_panels.div_ceil(row_grain);
    let col_groups = col_panels.div_ceil(col_grain);
    let n_chunks = row_groups * col_groups;
    let bpack_len = col_panels * k * NR;
    // Worst-case concurrent scratch demand. A GEMM nested inside a pool
    // worker runs inline there, so every worker can hold one B-pack and one
    // A-panel at once; a top-level GEMM holds one B-pack on the caller while
    // its tile chunks each hold an A-panel.
    let (bpack_count, apanel_count) = if pool::in_worker() {
        (pool::num_threads(), pool::num_threads())
    } else {
        (1, pool::num_threads().min(n_chunks))
    };
    scratch::reserve("gemm.bpack", bpack_len, bpack_count);
    if !matches!(a, PackA::Pre(_)) {
        scratch::reserve("gemm.apanel", k * MR, apanel_count);
    }
    scratch::with(bpack_len, |bpack| {
        pack_b_into(b, k, n, bpack);
        let shared = UnsafeSlice::new(out);
        pool::parallel_for_work(n_chunks, 1, 2 * m * k * n, |chunks| {
            with_apanel_scratch(a, k, |apanel_buf| {
                for chunk in chunks {
                    let rg = chunk / col_groups;
                    let jg = chunk % col_groups;
                    let jp_end = ((jg + 1) * col_grain).min(col_panels);
                    for ib in rg * row_grain..((rg + 1) * row_grain).min(row_panels) {
                        let i0 = ib * MR;
                        let rows = MR.min(m - i0);
                        let apanel: &[f32] = match a {
                            PackA::Pre(src) => &src[ib * k * MR..(ib + 1) * k * MR],
                            _ => {
                                pack_a(a, m, k, i0, rows, apanel_buf);
                                apanel_buf
                            }
                        };
                        let load_acc = |jb: usize| -> [[f32; NR]; MR] {
                            let j0 = jb * NR;
                            let cols = NR.min(n - j0);
                            let mut acc = [[0.0f32; NR]; MR];
                            for (r, accr) in acc.iter_mut().enumerate().take(rows) {
                                let at = (i0 + r) * n + j0;
                                // SAFETY: tile (ib, jb) belongs to exactly one
                                // chunk, so these regions are disjoint across
                                // concurrent chunks.
                                let orow = unsafe { shared.slice_mut(at..at + cols) };
                                accr[..cols].copy_from_slice(orow);
                            }
                            acc
                        };
                        let store_acc = |jb: usize, acc: &[[f32; NR]; MR]| {
                            let j0 = jb * NR;
                            let cols = NR.min(n - j0);
                            for (r, accr) in acc.iter().enumerate().take(rows) {
                                let at = (i0 + r) * n + j0;
                                // SAFETY: as above; the read borrow ended.
                                let orow = unsafe { shared.slice_mut(at..at + cols) };
                                orow.copy_from_slice(&accr[..cols]);
                            }
                        };
                        let mut jb = jg * col_grain;
                        while jb < jp_end {
                            // The SIMD path pairs adjacent column panels
                            // (8x16 tile) whenever the chunk holds two more:
                            // bitwise equal to two single-tile calls (see
                            // `simd::microkernel_x2`), so the pairing — a
                            // chunk-local accident — never changes results.
                            if micro == Micro::Simd && jb + 1 < jp_end {
                                let bp0 = &bpack[jb * k * NR..(jb + 1) * k * NR];
                                let bp1 = &bpack[(jb + 1) * k * NR..(jb + 2) * k * NR];
                                let mut acc0 = load_acc(jb);
                                let mut acc1 = load_acc(jb + 1);
                                simd::microkernel_x2(k, apanel, bp0, bp1, &mut acc0, &mut acc1);
                                store_acc(jb, &acc0);
                                store_acc(jb + 1, &acc1);
                                jb += 2;
                                continue;
                            }
                            let bpanel = &bpack[jb * k * NR..(jb + 1) * k * NR];
                            let mut acc = load_acc(jb);
                            match micro {
                                Micro::Scalar => scalar_microkernel(k, apanel, bpanel, &mut acc),
                                Micro::Simd => simd::microkernel(k, apanel, bpanel, &mut acc),
                            }
                            store_acc(jb, &acc);
                            jb += 1;
                        }
                    }
                }
            });
        });
    });
}

/// Checks out the per-chunk A-panel scratch, skipped entirely for
/// pre-packed operands (their panels are read in place).
fn with_apanel_scratch<R>(a: PackA<'_>, k: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    match a {
        PackA::Pre(_) => f(&mut []),
        _ => scratch::with(k * MR, f),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(len: usize, seed: u64) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state as f64 / u64::MAX as f64) as f32 - 0.5) * 2.0
            })
            .collect()
    }

    fn transpose(src: &[f32], rows: usize, cols: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; rows * cols];
        for r in 0..rows {
            for c in 0..cols {
                out[c * rows + r] = src[r * cols + c];
            }
        }
        out
    }

    #[test]
    fn tiled_bitwise_equals_reference_over_shape_sweep() {
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 2),
            (8, 8, 8),
            (9, 17, 11),
            (16, 72, 25),
            (33, 7, 40),
            (64, 64, 64),
            // Short-m, wide-n: exercises the column-split partition regime.
            (8, 96, 700),
        ] {
            let a = fill(m * k, 1 + (m * 31 + k * 7 + n) as u64);
            let b = fill(k * n, 2 + (m + k * 13 + n * 3) as u64);
            let init = fill(m * n, 3 + (m + k + n) as u64);
            let mut fast = init.clone();
            let mut slow = init.clone();
            // Force the tiled path even below the size threshold.
            run_tiled(
                &mut fast,
                PackA::N(&a),
                PackB::N(&b),
                m,
                k,
                n,
                Micro::Scalar,
            );
            reference::gemm_ref(&mut slow, &a, &b, m, k, n);
            assert_eq!(fast, slow, "gemm mismatch at ({m},{k},{n})");

            let at = transpose(&a, m, k);
            let mut fast_tn = init.clone();
            let mut slow_tn = init.clone();
            run_tiled(
                &mut fast_tn,
                PackA::T(&at),
                PackB::N(&b),
                m,
                k,
                n,
                Micro::Scalar,
            );
            reference::gemm_tn_ref(&mut slow_tn, &at, &b, m, k, n);
            assert_eq!(fast_tn, slow_tn, "gemm_tn mismatch at ({m},{k},{n})");

            let bt = transpose(&b, k, n);
            let mut fast_nt = init.clone();
            let mut slow_nt = init.clone();
            run_tiled(
                &mut fast_nt,
                PackA::N(&a),
                PackB::T(&bt),
                m,
                k,
                n,
                Micro::Scalar,
            );
            reference::gemm_nt_ref(&mut slow_nt, &a, &bt, m, k, n);
            assert_eq!(fast_nt, slow_nt, "gemm_nt mismatch at ({m},{k},{n})");

            // Pre-packed A must be bit-identical to packing per call.
            let mut apack = vec![0.0f32; packed_a_len(m, k)];
            pack_a_into(&a, m, k, &mut apack);
            let mut fast_pre = init.clone();
            run_tiled(
                &mut fast_pre,
                PackA::Pre(&apack),
                PackB::N(&b),
                m,
                k,
                n,
                Micro::Scalar,
            );
            assert_eq!(fast_pre, slow, "prepacked mismatch at ({m},{k},{n})");
        }
    }

    #[test]
    fn backend_toggle_dispatches_naive() {
        let prev = backend();
        set_backend(GemmBackend::Naive);
        assert_eq!(backend(), GemmBackend::Naive);
        let a = fill(16 * 16, 9);
        let b = fill(16 * 16, 10);
        let mut via_entry = vec![0.0f32; 16 * 16];
        gemm(&mut via_entry, &a, &b, 16, 16, 16);
        set_backend(GemmBackend::Blocked);
        assert_eq!(backend(), GemmBackend::Blocked);
        let mut via_ref = vec![0.0f32; 16 * 16];
        reference::gemm_ref(&mut via_ref, &a, &b, 16, 16, 16);
        assert_eq!(via_entry, via_ref);
        set_backend(prev);
    }

    #[test]
    fn backend_names_round_trip() {
        for be in [
            GemmBackend::Auto,
            GemmBackend::Blocked,
            GemmBackend::Naive,
            GemmBackend::Simd,
        ] {
            assert_eq!(GemmBackend::parse(be.name()), Some(be));
        }
        assert_eq!(
            GemmBackend::parse(" Blocked \n"),
            Some(GemmBackend::Blocked)
        );
        assert_eq!(GemmBackend::parse("mystery"), None);
    }

    #[test]
    fn degenerate_dims_are_no_ops() {
        let mut out: Vec<f32> = vec![1.0; 4];
        gemm(&mut out, &[], &[], 2, 0, 2);
        assert_eq!(out, vec![1.0; 4]);
        let mut empty: Vec<f32> = Vec::new();
        gemm(&mut empty, &[], &[], 0, 3, 0);
        assert!(empty.is_empty());
    }
}
