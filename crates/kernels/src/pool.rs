//! Persistent worker pool with deterministic chunk decomposition.
//!
//! The pool is lazily initialized on first dispatch and its threads live for
//! the rest of the process — no per-call `std::thread::scope` spawn cost.
//! Thread count comes from `HFTA_NUM_THREADS` (env, read once) or
//! [`set_num_threads`]; the default is `std::thread::available_parallelism`.
//!
//! # Determinism contract
//!
//! Work is split into chunks whose boundaries depend **only** on the problem
//! size and the caller-chosen grain — never on the thread count. Chunks are
//! claimed dynamically, but every chunk computes a disjoint region of the
//! output with a fixed sequential loop order, so the result is bit-identical
//! at any thread count (including 1). Callers must uphold their half of the
//! contract: a chunk may only write its own region and may not split one
//! floating-point reduction across chunks.
//!
//! Nested dispatch from inside a worker (or from the submitting thread while
//! it participates) runs inline and serial, so kernels freely compose —
//! e.g. a batch-parallel `bmm` whose per-batch GEMM is itself potentially
//! parallel.
//!
//! # Panics
//!
//! A panic inside the chunk closure cancels the job's unclaimed chunks and
//! propagates from [`parallel_for`] on the submitting thread — the
//! submitter's own payload when it hit the panic, otherwise a fresh panic
//! reporting the worker failure. The submitter always waits for every
//! in-flight chunk to finish before unwinding, so the closure (and the
//! buffers it borrows) stays alive for as long as any worker can touch it,
//! and the pool remains usable for subsequent dispatches.

use std::cell::Cell;
use std::marker::PhantomData;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};

/// Upper bound on pool threads; keeps a typo'd env var from spawning
/// thousands of workers.
pub const MAX_THREADS: usize = 64;

/// Below this much total work (FLOPs for compute kernels, elements for
/// elementwise fills) a dispatch through [`parallel_for_work`] runs inline
/// on the caller: waking condvar-parked workers costs on the order of
/// microseconds, which tiny ops can never win back. The threshold is a
/// pure constant — never a function of the thread count — so the inline
/// decision, like the chunk decomposition, is identical on any pool size.
pub const MIN_POOL_WORK: usize = 1 << 16;

/// Configured thread count. 0 = not yet resolved from env/default.
static THREADS: AtomicUsize = AtomicUsize::new(0);

/// Jobs actually handed to the worker pool (inline runs excluded). The
/// small-op regression guard in `benches/telemetry_overhead.rs` asserts
/// this stays flat across a loop of tiny tensor ops.
static DISPATCHES: AtomicUsize = AtomicUsize::new(0);

/// Number of jobs ever dispatched to pool workers (inline fast-path runs
/// do not count). Monotonic; useful for asserting that small operations
/// never wake the pool.
pub fn pool_dispatches() -> u64 {
    DISPATCHES.load(Ordering::Relaxed) as u64
}

thread_local! {
    /// True on pool workers and on a submitting thread while it participates
    /// in a dispatch; nested `parallel_for` calls then run inline.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

fn resolve_default_threads() -> usize {
    let fallback = || {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    };
    let n = match std::env::var("HFTA_NUM_THREADS") {
        Ok(v) => v
            .trim()
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .unwrap_or_else(fallback),
        Err(_) => fallback(),
    };
    n.clamp(1, MAX_THREADS)
}

/// Worker threads used by [`parallel_for`] (including the submitting
/// thread). Resolved once from `HFTA_NUM_THREADS` or the machine's available
/// parallelism; override with [`set_num_threads`].
pub fn num_threads() -> usize {
    match THREADS.load(Ordering::Relaxed) {
        0 => {
            let n = resolve_default_threads();
            // Racing first calls resolve to the same value, so either store
            // wins harmlessly.
            let _ = THREADS.compare_exchange(0, n, Ordering::Relaxed, Ordering::Relaxed);
            THREADS.load(Ordering::Relaxed)
        }
        n => n,
    }
}

/// Overrides the pool thread count (clamped to `1..=MAX_THREADS`).
///
/// Lowering the count after workers have spawned leaves the extra workers
/// parked; they may still pick up chunks of an in-flight dispatch, which is
/// harmless under the determinism contract (results do not depend on which
/// thread runs a chunk).
pub fn set_num_threads(n: usize) {
    THREADS.store(n.clamp(1, MAX_THREADS), Ordering::Relaxed);
}

/// Whether the current thread is a pool worker (or a participating
/// submitter). Exposed so kernels can pick serial code paths cheaply.
pub fn in_worker() -> bool {
    IN_POOL.with(|f| f.get())
}

type Task = dyn Fn(usize) + Sync;

struct Job {
    /// Lifetime-erased pointer to the submitting stack frame's closure; the
    /// submitter blocks until `remaining == 0`, so it outlives all uses.
    task: *const Task,
    n_chunks: usize,
}

// SAFETY: the raw pointer is only dereferenced while the submitting frame is
// alive (enforced by the completion wait) and the pointee is `Sync`.
unsafe impl Send for Job {}

struct State {
    job: Option<Job>,
    generation: u64,
    next_chunk: usize,
    remaining: usize,
    /// Set when any chunk of the current job panicked; read by the submitter
    /// after completion, reset on the next submit.
    panicked: bool,
}

/// Post-chunk bookkeeping shared by workers and the participating submitter:
/// decrements `remaining`, cancels the job's unclaimed chunks if the chunk
/// panicked, and signals completion when the last in-flight chunk retires.
fn finish_chunk<'a>(
    pool: &'a Pool,
    mut guard: MutexGuard<'a, State>,
    n_chunks: usize,
    chunk_panicked: bool,
) -> MutexGuard<'a, State> {
    guard.remaining -= 1;
    if chunk_panicked {
        guard.panicked = true;
        // Drop the chunks nobody has claimed yet so the job can drain; the
        // ones already in flight still retire through this path.
        guard.remaining -= n_chunks - guard.next_chunk;
        guard.next_chunk = n_chunks;
    }
    if guard.remaining == 0 {
        guard.job = None;
        pool.done_cv.notify_all();
    }
    guard
}

struct Pool {
    state: Mutex<State>,
    work_cv: Condvar,
    done_cv: Condvar,
    /// Serializes dispatches; a second concurrent submitter falls back to
    /// inline execution instead of queueing.
    submit_lock: Mutex<()>,
    spawned: AtomicUsize,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        state: Mutex::new(State {
            job: None,
            generation: 0,
            next_chunk: 0,
            remaining: 0,
            panicked: false,
        }),
        work_cv: Condvar::new(),
        done_cv: Condvar::new(),
        submit_lock: Mutex::new(()),
        spawned: AtomicUsize::new(0),
    })
}

fn ensure_workers(pool: &'static Pool, target: usize) {
    loop {
        let spawned = pool.spawned.load(Ordering::Relaxed);
        if spawned >= target {
            return;
        }
        if pool
            .spawned
            .compare_exchange(spawned, spawned + 1, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            continue;
        }
        std::thread::Builder::new()
            .name(format!("hfta-kernels-{spawned}"))
            .spawn(move || worker_loop(pool))
            .expect("spawning hfta-kernels worker");
    }
}

fn worker_loop(pool: &'static Pool) {
    IN_POOL.with(|f| f.set(true));
    let mut last_gen = 0u64;
    let mut guard = pool.state.lock().unwrap();
    loop {
        let fresh = guard
            .job
            .as_ref()
            .map(|_| guard.generation != last_gen)
            .unwrap_or(false);
        if !fresh {
            guard = pool.work_cv.wait(guard).unwrap();
            continue;
        }
        let gen = guard.generation;
        let (task, n_chunks) = {
            let job = guard.job.as_ref().unwrap();
            (job.task, job.n_chunks)
        };
        last_gen = gen;
        loop {
            // The job cannot be replaced while `remaining > 0` (the submit
            // lock is held until completion), so `next_chunk` still refers
            // to this generation.
            if guard.job.is_none() || guard.next_chunk >= n_chunks {
                break;
            }
            let chunk = guard.next_chunk;
            guard.next_chunk += 1;
            drop(guard);
            // SAFETY: submitter keeps the closure alive until remaining == 0,
            // and `finish_chunk` decrements `remaining` even on panic so that
            // guarantee holds on every path.
            let result = catch_unwind(AssertUnwindSafe(|| unsafe { (*task)(chunk) }));
            // The payload is dropped here; the submitter re-raises the
            // failure from its own thread via the `panicked` flag.
            guard = finish_chunk(pool, pool.state.lock().unwrap(), n_chunks, result.is_err());
        }
    }
}

fn chunk_range(chunk: usize, grain: usize, n_items: usize) -> Range<usize> {
    let start = chunk * grain;
    start..((start + grain).min(n_items))
}

/// Runs `f` over `0..n_items` split into chunks of `grain` items.
///
/// Chunk boundaries depend only on `(n_items, grain)`, so as long as `f`
/// writes disjoint output per chunk the result is bit-identical at any
/// thread count. Runs inline (still chunked, in ascending chunk order) when
/// the pool has one thread, when there is a single chunk, when called from
/// inside a pool worker, or when another dispatch is already in flight.
///
/// Each item counts as one unit of work for the [`MIN_POOL_WORK`] inline
/// fast path — right for elementwise loops. Callers whose items are heavy
/// (a GEMM panel, a conv sample) should use [`parallel_for_work`] with an
/// explicit work estimate so medium problems still reach the pool.
pub fn parallel_for(n_items: usize, grain: usize, f: impl Fn(Range<usize>) + Sync) {
    parallel_for_work(n_items, grain, n_items, f);
}

/// [`parallel_for`] with an explicit total-work estimate (FLOPs for compute
/// kernels, elements for fills) deciding the inline fast path.
///
/// Dispatches below [`MIN_POOL_WORK`] run inline on the caller with zero
/// pool traffic — no lock, no condvar wakeup ([`pool_dispatches`] does not
/// move). `work` only gates *whether* the pool is used, never how items are
/// chunked, so results stay bit-identical either way.
pub fn parallel_for_work(
    n_items: usize,
    grain: usize,
    work: usize,
    f: impl Fn(Range<usize>) + Sync,
) {
    if n_items == 0 {
        return;
    }
    let grain = grain.max(1);
    let n_chunks = n_items.div_ceil(grain);
    let run_inline = || {
        for chunk in 0..n_chunks {
            f(chunk_range(chunk, grain, n_items));
        }
    };
    if work < MIN_POOL_WORK || n_chunks <= 1 || in_worker() {
        run_inline();
        return;
    }
    let threads = num_threads();
    if threads == 1 {
        run_inline();
        return;
    }
    let pool = pool();
    // The submit lock guards no data, so poisoning (a dispatch that panicked
    // while holding it) carries no meaning — recover the guard instead of
    // treating it as contention, which would silently disable the pool for
    // the rest of the process after the first propagated kernel panic.
    let _submit = match pool.submit_lock.try_lock() {
        Ok(guard) => guard,
        Err(std::sync::TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
        Err(std::sync::TryLockError::WouldBlock) => {
            run_inline();
            return;
        }
    };
    DISPATCHES.fetch_add(1, Ordering::Relaxed);
    ensure_workers(pool, threads - 1);
    let call = |chunk: usize| f(chunk_range(chunk, grain, n_items));
    let task_ref: &(dyn Fn(usize) + Sync) = &call;
    // SAFETY: erase the stack lifetime; this frame blocks on `done_cv` until
    // every chunk has finished, so the pointee outlives all dereferences.
    let task: *const Task =
        unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static Task>(task_ref) };
    {
        let mut st = pool.state.lock().unwrap();
        st.generation += 1;
        st.next_chunk = 0;
        st.remaining = n_chunks;
        st.panicked = false;
        st.job = Some(Job { task, n_chunks });
        pool.work_cv.notify_all();
    }
    // Participate: the submitting thread claims chunks like a worker. Panics
    // are deferred — unwinding this frame before `remaining == 0` would free
    // the closure out from under the workers still dereferencing `task`.
    let mut payload = None;
    IN_POOL.with(|flag| flag.set(true));
    let mut guard = pool.state.lock().unwrap();
    while guard.job.is_some() && guard.next_chunk < n_chunks {
        let chunk = guard.next_chunk;
        guard.next_chunk += 1;
        drop(guard);
        let result = catch_unwind(AssertUnwindSafe(|| call(chunk)));
        let failed = result.is_err();
        if let Err(p) = result {
            payload = Some(p);
        }
        guard = finish_chunk(pool, pool.state.lock().unwrap(), n_chunks, failed);
    }
    while guard.job.is_some() {
        guard = pool.done_cv.wait(guard).unwrap();
    }
    let any_panicked = guard.panicked;
    drop(guard);
    IN_POOL.with(|flag| flag.set(false));
    if let Some(p) = payload {
        resume_unwind(p);
    }
    if any_panicked {
        panic!("hfta-kernels worker panicked during parallel_for; job aborted");
    }
}

/// Splits `data` into chunks of `grain` elements and calls
/// `f(start_index, chunk)` for each, in parallel when profitable.
///
/// The chunk decomposition is a pure function of `(data.len(), grain)`, so
/// elementwise fills through this helper are bit-identical at any thread
/// count.
pub fn for_each_chunk_mut<T: Send>(
    data: &mut [T],
    grain: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    let n = data.len();
    let grain = grain.max(1);
    if n <= grain {
        if n > 0 {
            f(0, data);
        }
        return;
    }
    let shared = UnsafeSlice::new(data);
    parallel_for(n, grain, |range| {
        // SAFETY: `parallel_for` hands out disjoint ranges.
        let chunk = unsafe { shared.slice_mut(range.clone()) };
        f(range.start, chunk);
    });
}

/// A `Sync` wrapper around a mutable slice for disjoint parallel writes.
///
/// [`parallel_for`] callers use this to hand each chunk its own region of a
/// shared output buffer. All the usual aliasing rules apply — the ranges
/// passed to [`UnsafeSlice::slice_mut`] by concurrent chunks must not
/// overlap.
pub struct UnsafeSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

// SAFETY: access is raw-pointer based; disjointness is the caller's
// obligation (documented on `slice_mut`).
unsafe impl<T: Send> Send for UnsafeSlice<'_, T> {}
unsafe impl<T: Send> Sync for UnsafeSlice<'_, T> {}

impl<'a, T> UnsafeSlice<'a, T> {
    /// Wraps a mutable slice.
    pub fn new(slice: &'a mut [T]) -> Self {
        UnsafeSlice {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    /// Length of the underlying slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the underlying slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reborrows `range` of the underlying slice.
    ///
    /// # Safety
    ///
    /// No two live borrows produced by this method may overlap, and the
    /// original slice must not be accessed while any borrow is live.
    ///
    /// # Panics
    ///
    /// Panics if `range` is out of bounds.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, range: Range<usize>) -> &'a mut [T] {
        assert!(range.start <= range.end && range.end <= self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(range.start), range.end - range.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that mutate the global thread count.
    pub(crate) static THREAD_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn chunks_cover_exactly_once() {
        let _guard = THREAD_LOCK.lock().unwrap();
        for threads in [1, 2, 4] {
            set_num_threads(threads);
            let mut hits = vec![0.0f32; 1003];
            for_each_chunk_mut(&mut hits, 17, |start, chunk| {
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v += (start + i) as f32;
                }
            });
            for (i, v) in hits.iter().enumerate() {
                assert_eq!(*v, i as f32, "thread count {threads}, index {i}");
            }
        }
        set_num_threads(1);
    }

    #[test]
    fn nested_dispatch_runs_inline() {
        let _guard = THREAD_LOCK.lock().unwrap();
        set_num_threads(4);
        let mut out = vec![0.0f32; 64];
        let shared = UnsafeSlice::new(&mut out);
        // Work hints push both levels past the inline fast path so the outer
        // call really dispatches and the inner one proves nested inlining.
        parallel_for_work(8, 1, MIN_POOL_WORK, |outer| {
            for o in outer {
                // Nested call: must run inline on this worker.
                parallel_for_work(8, 2, MIN_POOL_WORK, |inner| {
                    for i in inner {
                        let cell = unsafe { shared.slice_mut(o * 8 + i..o * 8 + i + 1) };
                        cell[0] = (o * 8 + i) as f32;
                    }
                });
            }
        });
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as f32);
        }
        set_num_threads(1);
    }

    #[test]
    fn chunk_panic_propagates_and_pool_survives() {
        let _guard = THREAD_LOCK.lock().unwrap();
        set_num_threads(4);
        for _ in 0..4 {
            // The panicking chunk may land on a worker or on the submitter;
            // either way the dispatch must unwind on the submitting thread
            // instead of hanging, and the pool must stay usable.
            let result = std::panic::catch_unwind(|| {
                parallel_for_work(97, 1, MIN_POOL_WORK, |range| {
                    if range.start == 13 {
                        panic!("boom");
                    }
                });
            });
            assert!(result.is_err(), "panic in a chunk must propagate");
            let mut out = vec![0.0f32; 1003];
            for_each_chunk_mut(&mut out, 17, |start, chunk| {
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v = (start + i) as f32;
                }
            });
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, i as f32, "pool broken after panic, index {i}");
            }
            // The pool must keep *dispatching* too — a panic while holding
            // the submit lock used to poison it, silently inlining every
            // later parallel_for for the rest of the process.
            let flagged = AtomicUsize::new(0);
            parallel_for_work(97, 1, MIN_POOL_WORK, |_range| {
                if in_worker() {
                    flagged.fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(
                flagged.load(Ordering::Relaxed) > 0,
                "pool stopped dispatching after a panic"
            );
        }
        set_num_threads(1);
    }

    #[test]
    fn small_work_never_touches_the_pool() {
        let _guard = THREAD_LOCK.lock().unwrap();
        set_num_threads(4);
        let caller = std::thread::current().id();
        // Many chunks, but total work below MIN_POOL_WORK: must run inline —
        // every chunk on the calling thread, pool flag never set. (Inline
        // execution is unconditional below the threshold, so this cannot be
        // perturbed by concurrent tests sharing the process-wide pool.)
        let escaped = AtomicUsize::new(0);
        let mut out = vec![0.0f32; 4096];
        let shared = UnsafeSlice::new(&mut out);
        parallel_for_work(4096, 64, 4096, |range| {
            if in_worker() || std::thread::current().id() != caller {
                escaped.fetch_add(1, Ordering::Relaxed);
            }
            let chunk = unsafe { shared.slice_mut(range.clone()) };
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = (range.start + i) as f32;
            }
        });
        // `parallel_for` counts items as work, so a tiny op inlines too.
        parallel_for(100, 1, |_range| {
            if in_worker() {
                escaped.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(escaped.load(Ordering::Relaxed), 0, "small op woke the pool");
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as f32);
        }
        // At or above the threshold the dispatch goes through the pool: the
        // submitter participates with the pool flag set. Retry, since a
        // concurrent test's in-flight dispatch forces an inline fallback.
        for attempt in 0.. {
            let flagged = AtomicUsize::new(0);
            parallel_for_work(4096, 64, MIN_POOL_WORK, |_range| {
                if in_worker() {
                    flagged.fetch_add(1, Ordering::Relaxed);
                }
            });
            if flagged.load(Ordering::Relaxed) > 0 {
                break;
            }
            assert!(attempt < 100, "threshold-sized op never reached the pool");
        }
        set_num_threads(1);
    }

    #[test]
    fn zero_items_is_a_no_op() {
        parallel_for(0, 8, |_| panic!("must not be called"));
        for_each_chunk_mut::<f32>(&mut [], 8, |_, _| panic!("must not be called"));
    }

    #[test]
    fn env_override_is_clamped() {
        // Can't re-read env after first resolution, but the setter clamps.
        let _guard = THREAD_LOCK.lock().unwrap();
        set_num_threads(0);
        assert_eq!(num_threads(), 1);
        set_num_threads(MAX_THREADS + 100);
        assert_eq!(num_threads(), MAX_THREADS);
        set_num_threads(1);
    }
}
