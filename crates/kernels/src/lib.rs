//! # hfta-kernels
//!
//! The compute-kernel layer under the HFTA reproduction's tensor substrate:
//!
//! * [`pool`] — a persistent, lazily initialized worker pool
//!   ([`parallel_for`], [`for_each_chunk_mut`]) with an `HFTA_NUM_THREADS`
//!   override, a [`set_num_threads`] API, and a determinism contract: chunk
//!   boundaries depend only on the problem shape, so results are
//!   bit-identical at any thread count.
//! * [`gemm`] — cache-blocked, register-tiled f32 GEMM ([`gemm()`],
//!   [`gemm_nt()`], [`gemm_tn()`], [`gemm_prepacked()`]) with packed A/B
//!   panels, a 2-D tiled macro-kernel, and selectable backends: the scalar
//!   8×8 micro-kernel is bit-identical to the retained naive references in
//!   [`reference`] (the accumulation order per output element is
//!   preserved); the opt-in [`simd`] AVX2/FMA micro-kernel carries a
//!   relative-tolerance contract instead.
//! * [`simd`] — runtime-detected AVX2/FMA f32x8 micro-kernel behind
//!   [`GemmBackend::Simd`], with [`simd::set_simd_enabled`] as the
//!   force-scalar hook.
//! * [`tune`] — a persistent MIOpen-style find-db: `Auto` dispatches
//!   benchmark candidate backends per (op, shape, threads) key on first
//!   encounter and cache the winner (`HFTA_TUNE_DB`).
//! * [`profile`] — [`profiled()`] wires `hfta-telemetry` spans/counters
//!   (kernel name, threads, FLOPs) around kernel dispatches.
//!
//! The paper's Figure 3 claim — fused training is bit-exact with serial
//! training — survives this layer because every kernel here is
//! deterministic by construction; the property tests in `tests/proptests.rs`
//! enforce it.

#![warn(missing_docs)]

pub mod gemm;
pub mod pool;
pub mod profile;
pub mod reference;
pub mod simd;
pub mod tune;

pub use gemm::{
    backend, gemm, gemm_nt, gemm_prepacked, gemm_tn, pack_a_into, packed_a_len, set_auto_simd,
    set_backend, GemmBackend,
};
pub use pool::{
    for_each_chunk_mut, num_threads, parallel_for, parallel_for_work, pool_dispatches,
    set_num_threads, UnsafeSlice,
};
pub use profile::profiled;
pub use simd::{set_simd_enabled, simd_available};
