//! # hfta-kernels
//!
//! The compute-kernel layer under the HFTA reproduction's tensor substrate:
//!
//! * [`pool`] — a persistent, lazily initialized worker pool
//!   ([`parallel_for`], [`for_each_chunk_mut`]) with an `HFTA_NUM_THREADS`
//!   override, a [`set_num_threads`] API, and a determinism contract: chunk
//!   boundaries depend only on the problem shape, so results are
//!   bit-identical at any thread count.
//! * [`gemm`] — cache-blocked, register-tiled f32 GEMM ([`gemm()`],
//!   [`gemm_nt()`], [`gemm_tn()`]) with packed A/B panels and an 8×8
//!   micro-kernel, bit-identical to the retained naive references in
//!   [`reference`] (the accumulation order per output element is preserved).
//! * [`profile`] — [`profiled()`] wires `hfta-telemetry` spans/counters
//!   (kernel name, threads, FLOPs) around kernel dispatches.
//!
//! The paper's Figure 3 claim — fused training is bit-exact with serial
//! training — survives this layer because every kernel here is
//! deterministic by construction; the property tests in `tests/proptests.rs`
//! enforce it.

#![warn(missing_docs)]

pub mod gemm;
pub mod pool;
pub mod profile;
pub mod reference;

pub use gemm::{backend, gemm, gemm_nt, gemm_tn, set_backend, GemmBackend};
pub use pool::{for_each_chunk_mut, num_threads, parallel_for, set_num_threads, UnsafeSlice};
pub use profile::profiled;
