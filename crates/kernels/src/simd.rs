//! Explicit-SIMD (AVX2/FMA) GEMM micro-kernels with runtime detection.
//!
//! The blocked GEMM's scalar micro-kernel autovectorizes, but the portable
//! x86-64 baseline the workspace builds for (see `.cargo/config.toml`) caps
//! it at SSE2 and forbids FMA contraction. This module hand-writes the same
//! 8×8 register tile with `std::arch` AVX2 intrinsics — one f32x8 vector per
//! accumulator row, `vfmadd` per contraction step — and gates it behind
//! runtime `is_x86_feature_detected!` so the binary stays portable.
//!
//! The single-tile kernel is load-port-bound: each contraction step issues
//! nine load μops (one B vector + eight A broadcasts) against eight FMAs.
//! [`microkernel_x2`] therefore processes **two adjacent B column panels per
//! call** (an 8×16 logical tile, walked as two 4×16 register passes so the
//! eight accumulators, two B vectors and one broadcast fit the sixteen ymm
//! registers): every A broadcast now feeds two FMAs, moving the kernel to
//! the FMA-throughput bound. Each output lane's FMA chain is identical to
//! the single-panel kernel's, so the paired path is **bitwise equal** to two
//! single-tile calls — pairing is purely a scheduling decision.
//!
//! # Tolerance, not bit-exactness
//!
//! FMA contracts the multiply-add into one rounding, so results differ from
//! the scalar kernels in the last bits. `GemmBackend::Simd` is therefore
//! **opt-in** and carries a relative-tolerance equivalence contract
//! (property-tested in `tests/proptests.rs`); the default `Blocked` backend
//! keeps its documented bit-exactness. On CPUs without AVX2+FMA — or after
//! [`set_simd_enabled`]`(false)` — a forced `Simd` backend silently runs the
//! scalar blocked kernel, which *is* bit-exact.

use std::sync::atomic::{AtomicU8, Ordering};

use crate::gemm::{MR, NR};

/// 0 = not yet detected, 1 = available, 2 = unavailable or force-disabled.
static SIMD_STATE: AtomicU8 = AtomicU8::new(0);

const _: () = assert!(
    MR == 8 && NR == 8,
    "AVX2 micro-kernel is written for an 8x8 tile"
);

#[cfg(target_arch = "x86_64")]
fn detect() -> bool {
    std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
}

#[cfg(not(target_arch = "x86_64"))]
fn detect() -> bool {
    false
}

/// Whether the AVX2/FMA micro-kernel can run on this CPU (cached after the
/// first call). `false` after [`set_simd_enabled`]`(false)`.
pub fn simd_available() -> bool {
    match SIMD_STATE.load(Ordering::Relaxed) {
        0 => {
            let ok = detect();
            SIMD_STATE.store(if ok { 1 } else { 2 }, Ordering::Relaxed);
            ok
        }
        1 => true,
        _ => false,
    }
}

/// Force-disables (`false`) or re-detects (`true`) the SIMD micro-kernel.
///
/// Disabling makes every `GemmBackend::Simd` dispatch take the scalar
/// blocked path — the hook the fallback equivalence tests use to prove the
/// two paths agree bitwise when SIMD is off. Passing `true` re-runs CPU
/// detection rather than blindly enabling.
pub fn set_simd_enabled(enabled: bool) {
    if enabled {
        SIMD_STATE.store(if detect() { 1 } else { 2 }, Ordering::Relaxed);
    } else {
        SIMD_STATE.store(2, Ordering::Relaxed);
    }
}

/// AVX2/FMA twin of the scalar micro-kernel: `acc[r] += apanel[p][r] *
/// bpanel[p]` as an 8-lane fused multiply-add, `p` ascending. Panel layout
/// is identical to the scalar path (`apanel[p*MR + r]`, `bpanel[p*NR + c]`),
/// so the packing code is shared.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn microkernel_avx2(k: usize, apanel: &[f32], bpanel: &[f32], acc: &mut [[f32; NR]; MR]) {
    use std::arch::x86_64::*;
    debug_assert!(apanel.len() >= k * MR && bpanel.len() >= k * NR);
    let mut rows = [_mm256_setzero_ps(); MR];
    for (r, accr) in acc.iter().enumerate() {
        rows[r] = _mm256_loadu_ps(accr.as_ptr());
    }
    let ap = apanel.as_ptr();
    let bp = bpanel.as_ptr();
    for p in 0..k {
        let bv = _mm256_loadu_ps(bp.add(p * NR));
        let ac = ap.add(p * MR);
        for (r, row) in rows.iter_mut().enumerate() {
            let av = _mm256_set1_ps(*ac.add(r));
            *row = _mm256_fmadd_ps(av, bv, *row);
        }
    }
    for (r, accr) in acc.iter_mut().enumerate() {
        _mm256_storeu_ps(accr.as_mut_ptr(), rows[r]);
    }
}

/// Paired twin of [`microkernel_avx2`]: one walk over the A panel updates
/// two B panels' accumulator tiles. Two passes of 4 rows × 16 columns keep
/// the working set (8 accumulators + 2 B vectors + 1 broadcast) inside the
/// sixteen ymm registers; per pass each contraction step is 6 load μops
/// against 8 FMAs, so the kernel runs at the FMA bound instead of the
/// single-tile version's load bound. Lane-for-lane the FMA sequence equals
/// two single-tile calls, so results are bitwise identical to them.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn microkernel_avx2_x2(
    k: usize,
    apanel: &[f32],
    bpanel0: &[f32],
    bpanel1: &[f32],
    acc0: &mut [[f32; NR]; MR],
    acc1: &mut [[f32; NR]; MR],
) {
    use std::arch::x86_64::*;
    debug_assert!(apanel.len() >= k * MR);
    debug_assert!(bpanel0.len() >= k * NR && bpanel1.len() >= k * NR);
    let ap = apanel.as_ptr();
    let bp0 = bpanel0.as_ptr();
    let bp1 = bpanel1.as_ptr();
    for r0 in [0usize, 4] {
        let mut acc = [[_mm256_setzero_ps(); 2]; 4];
        for (i, accv) in acc.iter_mut().enumerate() {
            accv[0] = _mm256_loadu_ps(acc0[r0 + i].as_ptr());
            accv[1] = _mm256_loadu_ps(acc1[r0 + i].as_ptr());
        }
        // k unrolled by two to amortize loop overhead against the FMA
        // bound; both sub-steps keep `p` ascending per lane, so the
        // accumulation order (and hence every result bit) is unchanged.
        let mut p = 0usize;
        while p + 1 < k {
            let bv0 = _mm256_loadu_ps(bp0.add(p * NR));
            let bv1 = _mm256_loadu_ps(bp1.add(p * NR));
            let ac = ap.add(p * MR + r0);
            for (i, accv) in acc.iter_mut().enumerate() {
                let av = _mm256_set1_ps(*ac.add(i));
                accv[0] = _mm256_fmadd_ps(av, bv0, accv[0]);
                accv[1] = _mm256_fmadd_ps(av, bv1, accv[1]);
            }
            let bw0 = _mm256_loadu_ps(bp0.add((p + 1) * NR));
            let bw1 = _mm256_loadu_ps(bp1.add((p + 1) * NR));
            let ad = ap.add((p + 1) * MR + r0);
            for (i, accv) in acc.iter_mut().enumerate() {
                let av = _mm256_set1_ps(*ad.add(i));
                accv[0] = _mm256_fmadd_ps(av, bw0, accv[0]);
                accv[1] = _mm256_fmadd_ps(av, bw1, accv[1]);
            }
            p += 2;
        }
        if p < k {
            let bv0 = _mm256_loadu_ps(bp0.add(p * NR));
            let bv1 = _mm256_loadu_ps(bp1.add(p * NR));
            let ac = ap.add(p * MR + r0);
            for (i, accv) in acc.iter_mut().enumerate() {
                let av = _mm256_set1_ps(*ac.add(i));
                accv[0] = _mm256_fmadd_ps(av, bv0, accv[0]);
                accv[1] = _mm256_fmadd_ps(av, bv1, accv[1]);
            }
        }
        for (i, accv) in acc.iter().enumerate() {
            _mm256_storeu_ps(acc0[r0 + i].as_mut_ptr(), accv[0]);
            _mm256_storeu_ps(acc1[r0 + i].as_mut_ptr(), accv[1]);
        }
    }
}

/// Runs the SIMD micro-kernel. Callers must have checked [`simd_available`]
/// at dispatch time; this is enforced in debug builds.
#[inline]
pub(crate) fn microkernel(k: usize, apanel: &[f32], bpanel: &[f32], acc: &mut [[f32; NR]; MR]) {
    debug_assert!(
        simd_available(),
        "SIMD micro-kernel dispatched without CPU support"
    );
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `simd_available()` was checked by the dispatcher (and asserted
    // above in debug builds), so AVX2+FMA are present.
    unsafe {
        microkernel_avx2(k, apanel, bpanel, acc);
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        // Unreachable in practice: `simd_available()` is always false here,
        // so the dispatcher never selects this kernel.
        let _ = (k, apanel, bpanel, acc);
        unreachable!("SIMD micro-kernel selected on a non-x86_64 target");
    }
}

/// Runs the paired (two-B-panel) SIMD micro-kernel; bitwise equal to two
/// [`microkernel`] calls on the same panels. Same caller contract.
#[inline]
pub(crate) fn microkernel_x2(
    k: usize,
    apanel: &[f32],
    bpanel0: &[f32],
    bpanel1: &[f32],
    acc0: &mut [[f32; NR]; MR],
    acc1: &mut [[f32; NR]; MR],
) {
    debug_assert!(
        simd_available(),
        "SIMD micro-kernel dispatched without CPU support"
    );
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `simd_available()` was checked by the dispatcher (and asserted
    // above in debug builds), so AVX2+FMA are present.
    unsafe {
        microkernel_avx2_x2(k, apanel, bpanel0, bpanel1, acc0, acc1);
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (k, apanel, bpanel0, bpanel1, acc0, acc1);
        unreachable!("SIMD micro-kernel selected on a non-x86_64 target");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn force_disable_and_redetect_round_trip() {
        let initial = simd_available();
        set_simd_enabled(false);
        assert!(!simd_available());
        set_simd_enabled(true);
        assert_eq!(simd_available(), initial, "re-enable must re-run detection");
    }

    #[test]
    #[cfg(target_arch = "x86_64")]
    fn simd_tile_matches_scalar_within_tolerance() {
        if !simd_available() {
            return;
        }
        let k = 37;
        let apanel: Vec<f32> = (0..k * MR)
            .map(|i| ((i * 7 + 3) % 23) as f32 * 0.125 - 1.0)
            .collect();
        let bpanel: Vec<f32> = (0..k * NR)
            .map(|i| ((i * 5 + 1) % 19) as f32 * 0.25 - 2.0)
            .collect();
        let init = |r: usize, c: usize| (r * NR + c) as f32 * 0.5 - 16.0;
        let mut simd_acc = [[0.0f32; NR]; MR];
        let mut scalar_acc = [[0.0f32; NR]; MR];
        for r in 0..MR {
            for c in 0..NR {
                simd_acc[r][c] = init(r, c);
                scalar_acc[r][c] = init(r, c);
            }
        }
        microkernel(k, &apanel, &bpanel, &mut simd_acc);
        crate::gemm::scalar_microkernel(k, &apanel, &bpanel, &mut scalar_acc);
        for r in 0..MR {
            for c in 0..NR {
                let (s, g) = (simd_acc[r][c], scalar_acc[r][c]);
                let tol = 1e-5 * s.abs().max(g.abs()).max(1.0);
                assert!(
                    (s - g).abs() <= tol,
                    "tile ({r},{c}): simd {s} vs scalar {g}"
                );
            }
        }
    }

    /// The invariant the macro-kernel's pairing rests on: processing two B
    /// panels in one paired call is **bitwise** identical to two single-tile
    /// calls, so whether a column panel lands in a pair (a chunk-local
    /// scheduling accident) can never change results.
    #[test]
    #[cfg(target_arch = "x86_64")]
    fn paired_kernel_is_bitwise_two_single_calls() {
        if !simd_available() {
            return;
        }
        for k in [1usize, 7, 37, 64] {
            let apanel: Vec<f32> = (0..k * MR)
                .map(|i| ((i * 11 + 5) % 29) as f32 * 0.1875 - 2.5)
                .collect();
            let bpanel0: Vec<f32> = (0..k * NR)
                .map(|i| ((i * 13 + 2) % 31) as f32 * 0.0625 - 1.0)
                .collect();
            let bpanel1: Vec<f32> = (0..k * NR)
                .map(|i| ((i * 3 + 7) % 17) as f32 * 0.375 - 3.0)
                .collect();
            let init = |r: usize, c: usize, s: f32| (r * NR + c) as f32 * s - 8.0;
            let mut single0 = [[0.0f32; NR]; MR];
            let mut single1 = [[0.0f32; NR]; MR];
            let mut pair0 = [[0.0f32; NR]; MR];
            let mut pair1 = [[0.0f32; NR]; MR];
            for r in 0..MR {
                for c in 0..NR {
                    single0[r][c] = init(r, c, 0.25);
                    pair0[r][c] = init(r, c, 0.25);
                    single1[r][c] = init(r, c, -0.5);
                    pair1[r][c] = init(r, c, -0.5);
                }
            }
            microkernel(k, &apanel, &bpanel0, &mut single0);
            microkernel(k, &apanel, &bpanel1, &mut single1);
            microkernel_x2(k, &apanel, &bpanel0, &bpanel1, &mut pair0, &mut pair1);
            assert_eq!(pair0, single0, "panel 0 diverged at k={k}");
            assert_eq!(pair1, single1, "panel 1 diverged at k={k}");
        }
    }
}
