//! Persistent per-shape kernel autotuner (MIOpen-style find-db).
//!
//! MIOpen ships several implementations per primitive and picks one per
//! problem shape by benchmarking on first encounter, caching the winner in a
//! "find-db" so later runs dispatch straight to the tuned kernel. This
//! module is that selection layer for the GEMM/conv backends: the dispatcher
//! in [`crate::gemm`] (and the conv algo choice in `hfta-tensor`) asks
//! [`lookup`] for a cached winner keyed by `(op, shape, threads)`, times the
//! candidates itself on a miss, and [`record`]s the result.
//!
//! # File format and versioning
//!
//! The find-db is a pretty-printed JSON object `{version, entries}` where
//! `entries` maps `"op/MxKxN@TT"` keys to `{winner, micros}` (per-candidate
//! wall micros from the tuning run, kept for `bench_kernels` reporting).
//! [`TUNE_DB_VERSION`] gates loads exactly like the probe db: a version
//! mismatch silently discards the file, so a method or layout change
//! re-tunes instead of dispatching on stale winners.
//!
//! Tuning is off until a db path is configured — via [`set_db_path`] or the
//! `HFTA_TUNE_DB` env var (read once) — because benchmarking candidates on
//! first encounter costs a few extra kernel runs; with no path set the
//! dispatcher falls back to its static heuristic and this module is inert.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use serde::{Deserialize, Serialize};

/// Bump when the key format, candidate set semantics, or file layout
/// changes; stale files are silently discarded and re-tuned.
pub const TUNE_DB_VERSION: u64 = 1;

/// One tuned decision: the winning backend name and the per-candidate wall
/// micros measured when the decision was made.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TuneEntry {
    /// Winning candidate name (`"naive"`, `"blocked"`, `"simd"`,
    /// `"im2col"`, `"prepacked"`, ...).
    pub winner: String,
    /// Wall-clock micros per candidate from the tuning run.
    pub micros: BTreeMap<String, f64>,
}

/// The on-disk find-db: tuned winners keyed by `"op/MxKxN@TT"`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FindDb {
    /// File-format version ([`TUNE_DB_VERSION`]).
    pub version: u64,
    /// Tuned decisions, keyed by [`key`].
    pub entries: BTreeMap<String, TuneEntry>,
}

impl FindDb {
    /// An empty db at the current version.
    pub fn new() -> Self {
        FindDb {
            version: TUNE_DB_VERSION,
            entries: BTreeMap::new(),
        }
    }

    /// Loads a find-db; `None` when the file is missing, unparsable, or
    /// carries a stale [`TUNE_DB_VERSION`] (callers then start empty and
    /// re-tune on demand).
    pub fn load(path: &Path) -> Option<FindDb> {
        let text = std::fs::read_to_string(path).ok()?;
        let db: FindDb = serde_json::from_str(&text).ok()?;
        (db.version == TUNE_DB_VERSION).then_some(db)
    }

    /// Writes the db as pretty JSON, creating parent directories.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let json = serde_json::to_string_pretty(self).expect("find-db serializes infallibly");
        std::fs::write(path, json)
    }
}

impl Default for FindDb {
    fn default() -> Self {
        Self::new()
    }
}

struct TuneState {
    path: Option<PathBuf>,
    db: FindDb,
}

static STATE: OnceLock<Mutex<TuneState>> = OnceLock::new();
/// Dispatches answered from the cache (no re-benchmark).
static HITS: AtomicU64 = AtomicU64::new(0);
/// First-encounter tuning runs recorded.
static BENCHMARKED: AtomicU64 = AtomicU64::new(0);

fn state() -> &'static Mutex<TuneState> {
    STATE.get_or_init(|| {
        let path = std::env::var("HFTA_TUNE_DB")
            .ok()
            .filter(|v| !v.trim().is_empty())
            .map(PathBuf::from);
        let db = path.as_deref().and_then(FindDb::load).unwrap_or_default();
        Mutex::new(TuneState { path, db })
    })
}

/// Counters for asserting cache behaviour (see `tests/tune.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TuneStats {
    /// Dispatches answered from the find-db cache.
    pub hits: u64,
    /// First-encounter tuning runs (candidate benchmarks) performed.
    pub benchmarked: u64,
}

/// Current cache-hit / benchmark counters (process-wide, monotonic except
/// across [`reset_stats`]).
pub fn stats() -> TuneStats {
    TuneStats {
        hits: HITS.load(Ordering::Relaxed),
        benchmarked: BENCHMARKED.load(Ordering::Relaxed),
    }
}

/// Zeroes the [`stats`] counters (test isolation).
pub fn reset_stats() {
    HITS.store(0, Ordering::Relaxed);
    BENCHMARKED.store(0, Ordering::Relaxed);
}

/// Points the autotuner at a find-db file (loading it if present and
/// version-current), or disables tuning with `None`. Overrides
/// `HFTA_TUNE_DB`.
pub fn set_db_path(path: Option<PathBuf>) {
    let mut st = state().lock().unwrap();
    st.db = path.as_deref().and_then(FindDb::load).unwrap_or_default();
    st.path = path;
}

/// Whether a find-db is configured — i.e. whether `Auto` dispatches tune.
pub fn enabled() -> bool {
    state().lock().unwrap().path.is_some()
}

/// The find-db key for one problem: `"op/MxKxN@TT"`. Thread count is part
/// of the key because the best backend shifts with parallelism.
pub fn key(op: &str, m: usize, k: usize, n: usize, threads: usize) -> String {
    format!("{op}/{m}x{k}x{n}@{threads}T")
}

/// The cached winner for `key`, if tuning is enabled and the shape has been
/// seen. Counts a cache hit.
pub fn lookup(key: &str) -> Option<String> {
    let st = state().lock().unwrap();
    st.path.as_ref()?;
    let winner = st.db.entries.get(key).map(|e| e.winner.clone());
    if winner.is_some() {
        HITS.fetch_add(1, Ordering::Relaxed);
    }
    winner
}

/// Records a tuning decision and persists the db write-through (save errors
/// are ignored — a read-only location just means re-tuning next process).
/// No-op when tuning is disabled.
pub fn record(key: &str, winner: &str, micros: &[(&str, f64)]) {
    let mut st = state().lock().unwrap();
    if st.path.is_none() {
        return;
    }
    BENCHMARKED.fetch_add(1, Ordering::Relaxed);
    st.db.entries.insert(
        key.to_string(),
        TuneEntry {
            winner: winner.to_string(),
            micros: micros.iter().map(|(n, t)| (n.to_string(), *t)).collect(),
        },
    );
    if let Some(path) = st.path.clone() {
        let _ = st.db.save(&path);
    }
}

/// A snapshot of the in-memory find-db (for reporting).
pub fn snapshot() -> FindDb {
    state().lock().unwrap().db.clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_db_round_trips_and_version_gates() {
        let dir = std::env::temp_dir().join(format!("hfta-tune-{}", std::process::id()));
        let path = dir.join("find_db.json");
        let mut db = FindDb::new();
        db.entries.insert(
            key("gemm", 64, 64, 1024, 4),
            TuneEntry {
                winner: "simd".to_string(),
                micros: [("blocked".to_string(), 41.5), ("simd".to_string(), 12.25)]
                    .into_iter()
                    .collect(),
            },
        );
        db.save(&path).unwrap();
        let loaded = FindDb::load(&path).expect("fresh db must load");
        assert_eq!(loaded, db);

        // A version bump must invalidate the cached file.
        let mut stale = db.clone();
        stale.version = TUNE_DB_VERSION + 1;
        stale.save(&path).unwrap();
        assert!(FindDb::load(&path).is_none(), "stale version must not load");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn keys_encode_op_shape_and_threads() {
        assert_eq!(key("gemm", 8, 16, 32, 4), "gemm/8x16x32@4T");
        assert_eq!(key("conv2d", 3, 27, 1024, 1), "conv2d/3x27x1024@1T");
    }
}
