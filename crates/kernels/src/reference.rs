//! Retained naive reference GEMMs.
//!
//! These are the semantic ground truth the blocked kernels in
//! [`crate::gemm`] are property-tested against: every output element is
//! accumulated **into its initial value, in ascending `p` (contraction)
//! order, with separate multiply and add** — exactly the order the blocked
//! micro-kernel preserves, so the two paths are bit-identical (not merely
//! close). Keeping the reference alive also gives the benches a faithful
//! "pre-kernel-layer" serial baseline.

/// `out[m,n] += a[m,k] @ b[k,n]`, all row-major.
pub fn gemm_ref(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let orow = &mut out[i * n..(i + 1) * n];
        for (p, &av) in a[i * k..(i + 1) * k].iter().enumerate() {
            let brow = &b[p * n..(p + 1) * n];
            for (ov, &bv) in orow.iter_mut().zip(brow) {
                *ov += av * bv;
            }
        }
    }
}

/// `out[m,n] += a[m,k] @ b[n,k]^T` (`b` stored row-major as `[n, k]`).
pub fn gemm_nt_ref(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    for i in 0..m {
        let orow = &mut out[i * n..(i + 1) * n];
        for (p, &av) in a[i * k..(i + 1) * k].iter().enumerate() {
            for (c, ov) in orow.iter_mut().enumerate() {
                *ov += av * b[c * k + p];
            }
        }
    }
}

/// `out[m,n] += a[k,m]^T @ b[k,n]` (`a` stored row-major as `[k, m]`).
pub fn gemm_tn_ref(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    for p in 0..k {
        let arow = &a[p * m..(p + 1) * m];
        let brow = &b[p * n..(p + 1) * n];
        for (r, &av) in arow.iter().enumerate() {
            let orow = &mut out[r * n..(r + 1) * n];
            for (ov, &bv) in orow.iter_mut().zip(brow) {
                *ov += av * bv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_known_product() {
        // [1 2; 3 4] @ [5 6; 7 8] = [19 22; 43 50]
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut out = [0.0f32; 4];
        gemm_ref(&mut out, &a, &b, 2, 2, 2);
        assert_eq!(out, [19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn transposed_variants_agree() {
        let m = 3;
        let k = 4;
        let n = 2;
        let a: Vec<f32> = (0..m * k).map(|i| i as f32 * 0.25 - 1.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| i as f32 * 0.5 - 2.0).collect();
        let mut base = vec![0.0f32; m * n];
        gemm_ref(&mut base, &a, &b, m, k, n);
        // a transposed into [k, m].
        let mut at = vec![0.0f32; k * m];
        for i in 0..m {
            for p in 0..k {
                at[p * m + i] = a[i * k + p];
            }
        }
        let mut out_tn = vec![0.0f32; m * n];
        gemm_tn_ref(&mut out_tn, &at, &b, m, k, n);
        for (x, y) in base.iter().zip(&out_tn) {
            assert!((x - y).abs() < 1e-6);
        }
        // b transposed into [n, k].
        let mut bt = vec![0.0f32; n * k];
        for p in 0..k {
            for c in 0..n {
                bt[c * k + p] = b[p * n + c];
            }
        }
        let mut out_nt = vec![0.0f32; m * n];
        gemm_nt_ref(&mut out_nt, &a, &bt, m, k, n);
        for (x, y) in base.iter().zip(&out_nt) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn accumulates_into_existing_output() {
        let a = [1.0f32, 0.0, 0.0, 1.0];
        let b = [2.0f32, 0.0, 0.0, 2.0];
        let mut out = [10.0f32, 0.0, 0.0, 10.0];
        gemm_ref(&mut out, &a, &b, 2, 2, 2);
        assert_eq!(out, [12.0, 0.0, 0.0, 12.0]);
    }
}
