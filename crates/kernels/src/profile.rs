//! Telemetry glue: kernel-level spans and counters.
//!
//! The pool's worker threads have no thread-local [`Profiler`] installed, so
//! all recording happens on the dispatching thread, around the whole kernel
//! — which is also the only granularity that makes sense in a trace (one
//! span per operator, not one per chunk). Counters aggregate every call;
//! spans are only emitted for kernels above [`SPAN_MIN_FLOPS`] so traced
//! training runs don't drown in micro-dispatch events. Every call — large or
//! small — folds an `OpSample {flops, bytes, ns}` into the report's per-op
//! aggregates, which is what `hfta-probe` classifies against the roofline.

use hfta_telemetry::{OpCost, Profiler};
use std::time::Instant;

/// Kernels below this FLOP count record counters but no trace span.
pub const SPAN_MIN_FLOPS: f64 = 1e6;

/// Runs `f`, attributing it to kernel `name` on the installed profiler (if
/// any): bumps `kernels.calls` / `kernels.flops` / `kernels.bytes`, folds an
/// op sample (flops, bytes moved, elapsed ns) into the current experiment's
/// per-op aggregates, and for large kernels opens a `kernels/cpu`-lane span
/// carrying the cost. With no profiler installed this is one branch.
pub fn profiled<R>(name: &str, flops: f64, bytes: f64, f: impl FnOnce() -> R) -> R {
    let Some(p) = Profiler::current() else {
        return f();
    };
    p.incr("kernels.calls", 1.0);
    p.incr("kernels.flops", flops);
    p.incr("kernels.bytes", bytes);
    if flops >= SPAN_MIN_FLOPS {
        let lane = p.lane("kernels", "cpu");
        let _span = p.op_span(lane, name, OpCost { flops, bytes });
        f()
    } else {
        let started = Instant::now();
        let out = f();
        let ns = started.elapsed().as_secs_f64() * 1e9;
        p.record_op_sample(name, flops, bytes, ns);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_profiler_is_passthrough() {
        assert!(Profiler::current().is_none());
        assert_eq!(profiled("gemm", 1e9, 1e6, || 42), 42);
    }

    #[test]
    fn counters_always_spans_only_when_large() {
        let p = Profiler::new("kernels-test");
        let _guard = p.install();
        profiled("tiny", 10.0, 80.0, || ());
        assert_eq!(p.event_count(), 0, "small kernels must not emit spans");
        profiled("big", 2e6, 3e6, || ());
        assert_eq!(p.event_count(), 2, "large kernels emit begin+end");
        let report = p.report();
        let counter = |name: &str| {
            report.experiments[0]
                .counters
                .iter()
                .find(|c| c.name == name)
                .unwrap_or_else(|| panic!("{name} counter"))
                .value
        };
        assert_eq!(counter("kernels.calls"), 2.0);
        assert_eq!(counter("kernels.flops"), 10.0 + 2e6);
        assert_eq!(counter("kernels.bytes"), 80.0 + 3e6);
    }

    #[test]
    fn every_call_folds_an_op_sample() {
        let p = Profiler::new("kernels-test");
        let _guard = p.install();
        profiled("tiny", 10.0, 80.0, || ());
        profiled("tiny", 10.0, 80.0, || ());
        profiled("big", 2e6, 3e6, || ());
        let report = p.report();
        let tiny = report.experiments[0].op("tiny").expect("tiny op sample");
        assert_eq!(tiny.calls, 2);
        assert_eq!(tiny.flops, 20.0);
        assert_eq!(tiny.bytes, 160.0);
        let big = report.experiments[0].op("big").expect("big op sample");
        assert_eq!(big.calls, 1);
        assert!(big.ns > 0.0);
    }
}
