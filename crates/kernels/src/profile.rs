//! Telemetry glue: kernel-level spans and counters.
//!
//! The pool's worker threads have no thread-local [`Profiler`] installed, so
//! all recording happens on the dispatching thread, around the whole kernel
//! — which is also the only granularity that makes sense in a trace (one
//! span per operator, not one per chunk). Counters aggregate every call;
//! spans are only emitted for kernels above [`SPAN_MIN_FLOPS`] so traced
//! training runs don't drown in micro-dispatch events.

use hfta_telemetry::Profiler;
use serde::Value;

/// Kernels below this FLOP count record counters but no trace span.
pub const SPAN_MIN_FLOPS: f64 = 1e6;

/// Runs `f`, attributing it to kernel `name` on the installed profiler (if
/// any): bumps `kernels.calls` / `kernels.flops`, and for large kernels
/// opens a `kernels/cpu`-lane span carrying the FLOP count and the pool
/// thread count. With no profiler installed this is one branch.
pub fn profiled<R>(name: &str, flops: f64, f: impl FnOnce() -> R) -> R {
    let Some(p) = Profiler::current() else {
        return f();
    };
    p.incr("kernels.calls", 1.0);
    p.incr("kernels.flops", flops);
    if flops >= SPAN_MIN_FLOPS {
        let lane = p.lane("kernels", "cpu");
        let threads = crate::pool::num_threads() as u64;
        let _span = p.span_with_args(
            lane,
            name,
            vec![
                ("flops".to_string(), Value::F64(flops)),
                ("threads".to_string(), Value::U64(threads)),
            ],
        );
        f()
    } else {
        f()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_profiler_is_passthrough() {
        assert!(Profiler::current().is_none());
        assert_eq!(profiled("gemm", 1e9, || 42), 42);
    }

    #[test]
    fn counters_always_spans_only_when_large() {
        let p = Profiler::new("kernels-test");
        let _guard = p.install();
        profiled("tiny", 10.0, || ());
        assert_eq!(p.event_count(), 0, "small kernels must not emit spans");
        profiled("big", 2e6, || ());
        assert_eq!(p.event_count(), 2, "large kernels emit begin+end");
        let report = p.report();
        let calls = report.experiments[0]
            .counters
            .iter()
            .find(|c| c.name == "kernels.calls")
            .expect("calls counter");
        assert_eq!(calls.value, 2.0);
        let flops = report.experiments[0]
            .counters
            .iter()
            .find(|c| c.name == "kernels.flops")
            .expect("flops counter");
        assert_eq!(flops.value, 10.0 + 2e6);
    }
}
