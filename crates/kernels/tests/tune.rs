//! Integration tests of the autotuned `Auto` dispatch path: first
//! encounter of an (op, shape, threads) key benchmarks the candidates and
//! records a winner; the second dispatch is a cache hit that skips
//! re-benchmarking entirely. Runs as its own test binary because the
//! find-db path, backend, and stats counters are process globals.

use hfta_kernels::tune::{self, FindDb};
use hfta_kernels::{gemm, reference, set_backend, set_num_threads, GemmBackend};
use std::path::PathBuf;
use std::sync::Mutex;

/// The find-db path, backend, and stats counters are process globals;
/// serialize the tests that touch them.
static GLOBAL_LOCK: Mutex<()> = Mutex::new(());

fn fill(n: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state as f64 / u64::MAX as f64) as f32 - 0.5) * 2.0
        })
        .collect()
}

fn temp_db(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hfta-tune-it-{}-{name}.json", std::process::id()))
}

#[test]
fn auto_dispatch_tunes_once_then_hits_the_cache() {
    let _g = GLOBAL_LOCK.lock().unwrap();
    let db_path = temp_db("cache");
    let _ = std::fs::remove_file(&db_path);
    tune::set_db_path(Some(db_path.clone()));
    tune::reset_stats();
    set_backend(GemmBackend::Auto);
    set_num_threads(1);

    // Large enough to clear the small-GEMM reference shortcut.
    let (m, k, n) = (32, 32, 48);
    let a = fill(m * k, 5);
    let b = fill(k * n, 6);
    let init = fill(m * n, 7);

    let mut expect = init.clone();
    reference::gemm_ref(&mut expect, &a, &b, m, k, n);

    // First encounter: candidates are benchmarked, a winner is recorded.
    let mut first = init.clone();
    gemm(&mut first, &a, &b, m, k, n);
    let after_first = tune::stats();
    assert_eq!(after_first.benchmarked, 1, "first dispatch must tune");
    assert_eq!(after_first.hits, 0);
    // Without SIMD opt-in every candidate is bit-exact, so the tuned result
    // matches the reference bitwise no matter which candidate won.
    assert_eq!(first, expect);

    // Second dispatch of the same (op, shape, threads): pure cache hit.
    let mut second = init.clone();
    gemm(&mut second, &a, &b, m, k, n);
    let after_second = tune::stats();
    assert_eq!(
        after_second.benchmarked, 1,
        "cache hit must skip re-benchmarking"
    );
    assert_eq!(after_second.hits, 1);
    assert_eq!(second, expect);

    // The decision was persisted write-through with the candidates' timings.
    let on_disk = FindDb::load(&db_path).expect("find-db must be written");
    let key = tune::key("gemm", m, k, n, 1);
    let entry = on_disk.entries.get(&key).expect("tuned key must persist");
    assert!(entry.micros.contains_key("blocked"));
    assert!(entry.micros.contains_key(entry.winner.as_str()));

    // A fresh process (simulated by reloading the db) dispatches on the
    // cached winner without tuning.
    tune::set_db_path(Some(db_path.clone()));
    tune::reset_stats();
    let mut third = init.clone();
    gemm(&mut third, &a, &b, m, k, n);
    let after_reload = tune::stats();
    assert_eq!(
        after_reload.benchmarked, 0,
        "persisted winner must be reused"
    );
    assert_eq!(after_reload.hits, 1);
    assert_eq!(third, expect);

    tune::set_db_path(None);
    let _ = std::fs::remove_file(&db_path);
}

#[test]
fn disabled_tuner_never_benchmarks() {
    let _g = GLOBAL_LOCK.lock().unwrap();
    tune::set_db_path(None);
    tune::reset_stats();
    set_backend(GemmBackend::Auto);
    let (m, k, n) = (40, 16, 40);
    let a = fill(m * k, 11);
    let b = fill(k * n, 12);
    let init = fill(m * n, 13);
    let mut expect = init.clone();
    reference::gemm_ref(&mut expect, &a, &b, m, k, n);
    let mut got = init.clone();
    gemm(&mut got, &a, &b, m, k, n);
    assert_eq!(got, expect, "untuned Auto must stay bit-exact");
    let stats = tune::stats();
    assert_eq!(stats.benchmarked, 0, "no db path, no tuning benchmarks");
    assert_eq!(stats.hits, 0);
}
