//! Property tests of the kernel determinism contract: the blocked,
//! parallel GEMM kernels must be **bit-identical** to the retained naive
//! references — across shapes, initial output contents (the kernels
//! accumulate), backends and thread counts (1, 2 and the max the pool
//! allows in tests, 4).
//!
//! `set_num_threads` / `set_backend` are process globals, so every test in
//! this binary serializes on [`GLOBAL_LOCK`] and restores the previous
//! configuration before releasing it.

use hfta_kernels::{
    gemm, gemm_nt, gemm_tn, reference, set_backend, set_num_threads, set_simd_enabled,
    simd_available, GemmBackend,
};
use proptest::prelude::*;
use std::sync::Mutex;

static GLOBAL_LOCK: Mutex<()> = Mutex::new(());

/// Deterministic pseudo-random fill (xorshift), decorrelated by `salt`.
fn fill(n: usize, seed: u64, salt: u64) -> Vec<f32> {
    let mut state = seed
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(salt)
        .wrapping_add(1);
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state as f64 / u64::MAX as f64) as f32 - 0.5) * 4.0
        })
        .collect()
}

/// Restores thread count and backend when a test body exits (even early).
struct RestoreGlobals {
    threads: usize,
    backend: GemmBackend,
}

impl RestoreGlobals {
    fn capture() -> Self {
        RestoreGlobals {
            threads: hfta_kernels::num_threads(),
            backend: hfta_kernels::backend(),
        }
    }
}

impl Drop for RestoreGlobals {
    fn drop(&mut self) {
        set_num_threads(self.threads);
        set_backend(self.backend);
        set_simd_enabled(true);
    }
}

type GemmFn = fn(&mut [f32], &[f32], &[f32], usize, usize, usize);

fn check_variant(
    kernel: GemmFn,
    reference: GemmFn,
    m: usize,
    k: usize,
    n: usize,
    seed: u64,
) -> Result<(), String> {
    let _g = GLOBAL_LOCK.lock().unwrap();
    let _restore = RestoreGlobals::capture();
    let a = fill(m * k, seed, 1);
    let b = fill(k * n, seed, 2);
    let out_init = fill(m * n, seed, 3);

    let mut expect = out_init.clone();
    reference(&mut expect, &a, &b, m, k, n);

    // The naive backend must match the reference exactly (same code path).
    set_backend(GemmBackend::Naive);
    let mut naive = out_init.clone();
    kernel(&mut naive, &a, &b, m, k, n);
    prop_assert!(naive == expect, "naive backend diverged at {m}x{k}x{n}");

    // The blocked backend must be bit-identical at every thread count.
    set_backend(GemmBackend::Blocked);
    for threads in [1usize, 2, 4] {
        set_num_threads(threads);
        let mut got = out_init.clone();
        kernel(&mut got, &a, &b, m, k, n);
        prop_assert!(
            got == expect,
            "blocked backend diverged at {m}x{k}x{n} with {threads} threads"
        );
    }
    Ok(())
}

/// The SIMD backend's contract is relative tolerance, not bit-identity:
/// FMA contracts multiply+add into one rounding per contraction step, so
/// each output element may drift by a few ULP per step from the scalar
/// accumulation.
fn simd_tolerance(expect: f32, k: usize) -> f32 {
    1e-5 * (k.max(1) as f32).sqrt() * expect.abs().max(1.0)
}

fn check_simd_variant(
    kernel: GemmFn,
    reference: GemmFn,
    m: usize,
    k: usize,
    n: usize,
    seed: u64,
) -> Result<(), String> {
    let _g = GLOBAL_LOCK.lock().unwrap();
    let _restore = RestoreGlobals::capture();
    if !simd_available() {
        // Nothing to measure on this CPU; the fallback path is covered by
        // `forced_simd_without_cpu_support_is_bitwise_blocked`.
        return Ok(());
    }
    let a = fill(m * k, seed, 1);
    let b = fill(k * n, seed, 2);
    let out_init = fill(m * n, seed, 3);

    let mut expect = out_init.clone();
    reference(&mut expect, &a, &b, m, k, n);

    set_backend(GemmBackend::Simd);
    let mut first: Option<Vec<f32>> = None;
    for threads in [1usize, 2, 4] {
        set_num_threads(threads);
        let mut got = out_init.clone();
        kernel(&mut got, &a, &b, m, k, n);
        for (i, (&g, &e)) in got.iter().zip(&expect).enumerate() {
            let tol = simd_tolerance(e, k);
            prop_assert!(
                (g - e).abs() <= tol,
                "simd diverged past tolerance at {m}x{k}x{n}[{i}] ({threads}T): {g} vs {e}"
            );
        }
        // Across thread counts the SIMD backend must still be bit-stable
        // with itself: the tile decomposition is a pure function of shape.
        match &first {
            None => first = Some(got),
            Some(f) => prop_assert!(
                &got == f,
                "simd backend not thread-count deterministic at {m}x{k}x{n} ({threads}T)"
            ),
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn gemm_bit_identical(m in 1usize..28, k in 0usize..28, n in 1usize..28, seed in 0u64..1_000_000) {
        check_variant(gemm, reference::gemm_ref, m, k, n, seed)?;
    }

    #[test]
    fn gemm_nt_bit_identical(m in 1usize..28, k in 0usize..28, n in 1usize..28, seed in 0u64..1_000_000) {
        check_variant(gemm_nt, reference::gemm_nt_ref, m, k, n, seed)?;
    }

    #[test]
    fn gemm_tn_bit_identical(m in 1usize..28, k in 0usize..28, n in 1usize..28, seed in 0u64..1_000_000) {
        check_variant(gemm_tn, reference::gemm_tn_ref, m, k, n, seed)?;
    }

    #[test]
    fn gemm_bit_identical_large_rows(m in 24usize..80, seed in 0u64..1_000_000) {
        // Enough row panels that the pool actually splits the work.
        check_variant(gemm, reference::gemm_ref, m, 17, 19, seed)?;
    }

    // The SIMD backend: relative tolerance vs. the references, thread-count
    // deterministic with itself. Shape ranges straddle multiples of the 8×8
    // tile so remainder rows/columns (m, n, k not divisible by 8) are hit.
    #[test]
    fn gemm_simd_within_tolerance(m in 1usize..28, k in 0usize..28, n in 1usize..28, seed in 0u64..1_000_000) {
        check_simd_variant(gemm, reference::gemm_ref, m, k, n, seed)?;
    }

    #[test]
    fn gemm_nt_simd_within_tolerance(m in 1usize..28, k in 0usize..28, n in 1usize..28, seed in 0u64..1_000_000) {
        check_simd_variant(gemm_nt, reference::gemm_nt_ref, m, k, n, seed)?;
    }

    #[test]
    fn gemm_tn_simd_within_tolerance(m in 1usize..28, k in 0usize..28, n in 1usize..28, seed in 0u64..1_000_000) {
        check_simd_variant(gemm_tn, reference::gemm_tn_ref, m, k, n, seed)?;
    }

    #[test]
    fn gemm_simd_within_tolerance_large(m in 24usize..80, n in 24usize..80, seed in 0u64..1_000_000) {
        // Multiple row panels and column groups: the 2-D tile partition and
        // the pool both engage.
        check_simd_variant(gemm, reference::gemm_ref, m, 33, n, seed)?;
    }
}

#[test]
fn forced_simd_without_cpu_support_is_bitwise_blocked() {
    let _g = GLOBAL_LOCK.lock().unwrap();
    let _restore = RestoreGlobals::capture();
    let (m, k, n) = (37, 29, 41);
    let a = fill(m * k, 77, 1);
    let b = fill(k * n, 77, 2);
    let out_init = fill(m * n, 77, 3);

    set_backend(GemmBackend::Blocked);
    let mut blocked = out_init.clone();
    gemm(&mut blocked, &a, &b, m, k, n);

    // Force-disable the SIMD kernel: a still-forced Simd backend must fall
    // back to the scalar blocked path — bitwise, not just close.
    set_simd_enabled(false);
    assert!(!simd_available());
    set_backend(GemmBackend::Simd);
    let mut fallback = out_init.clone();
    gemm(&mut fallback, &a, &b, m, k, n);
    assert_eq!(fallback, blocked, "scalar fallback must be bit-identical");
}
