//! Property tests of the kernel determinism contract: the blocked,
//! parallel GEMM kernels must be **bit-identical** to the retained naive
//! references — across shapes, initial output contents (the kernels
//! accumulate), backends and thread counts (1, 2 and the max the pool
//! allows in tests, 4).
//!
//! `set_num_threads` / `set_backend` are process globals, so every test in
//! this binary serializes on [`GLOBAL_LOCK`] and restores the previous
//! configuration before releasing it.

use hfta_kernels::{gemm, gemm_nt, gemm_tn, reference, set_backend, set_num_threads, GemmBackend};
use proptest::prelude::*;
use std::sync::Mutex;

static GLOBAL_LOCK: Mutex<()> = Mutex::new(());

/// Deterministic pseudo-random fill (xorshift), decorrelated by `salt`.
fn fill(n: usize, seed: u64, salt: u64) -> Vec<f32> {
    let mut state = seed
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(salt)
        .wrapping_add(1);
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state as f64 / u64::MAX as f64) as f32 - 0.5) * 4.0
        })
        .collect()
}

/// Restores thread count and backend when a test body exits (even early).
struct RestoreGlobals {
    threads: usize,
}

impl Drop for RestoreGlobals {
    fn drop(&mut self) {
        set_num_threads(self.threads);
        set_backend(GemmBackend::Blocked);
    }
}

type GemmFn = fn(&mut [f32], &[f32], &[f32], usize, usize, usize);

fn check_variant(
    kernel: GemmFn,
    reference: GemmFn,
    m: usize,
    k: usize,
    n: usize,
    seed: u64,
) -> Result<(), String> {
    let _g = GLOBAL_LOCK.lock().unwrap();
    let _restore = RestoreGlobals {
        threads: hfta_kernels::num_threads(),
    };
    let a = fill(m * k, seed, 1);
    let b = fill(k * n, seed, 2);
    let out_init = fill(m * n, seed, 3);

    let mut expect = out_init.clone();
    reference(&mut expect, &a, &b, m, k, n);

    // The naive backend must match the reference exactly (same code path).
    set_backend(GemmBackend::Naive);
    let mut naive = out_init.clone();
    kernel(&mut naive, &a, &b, m, k, n);
    prop_assert!(naive == expect, "naive backend diverged at {m}x{k}x{n}");

    // The blocked backend must be bit-identical at every thread count.
    set_backend(GemmBackend::Blocked);
    for threads in [1usize, 2, 4] {
        set_num_threads(threads);
        let mut got = out_init.clone();
        kernel(&mut got, &a, &b, m, k, n);
        prop_assert!(
            got == expect,
            "blocked backend diverged at {m}x{k}x{n} with {threads} threads"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn gemm_bit_identical(m in 1usize..28, k in 0usize..28, n in 1usize..28, seed in 0u64..1_000_000) {
        check_variant(gemm, reference::gemm_ref, m, k, n, seed)?;
    }

    #[test]
    fn gemm_nt_bit_identical(m in 1usize..28, k in 0usize..28, n in 1usize..28, seed in 0u64..1_000_000) {
        check_variant(gemm_nt, reference::gemm_nt_ref, m, k, n, seed)?;
    }

    #[test]
    fn gemm_tn_bit_identical(m in 1usize..28, k in 0usize..28, n in 1usize..28, seed in 0u64..1_000_000) {
        check_variant(gemm_tn, reference::gemm_tn_ref, m, k, n, seed)?;
    }

    #[test]
    fn gemm_bit_identical_large_rows(m in 24usize..80, seed in 0u64..1_000_000) {
        // Enough row panels that the pool actually splits the work.
        check_variant(gemm, reference::gemm_ref, m, 17, 19, seed)?;
    }
}
