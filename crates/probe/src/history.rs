//! The persistent perf-history store and drift gate.
//!
//! [`PerfHistory`] is an append-only JSONL file: one [`HistoryRecord`] per
//! bench/sweep run, carrying the git revision, thread count, backend, and
//! the per-op roofline summary ([`OpUtil`]). Appending never rewrites
//! earlier lines, so the file is safe to commit and diff. The drift gate
//! ([`drift`]) compares the latest record's per-op utilization against the
//! trailing median of earlier records — a drop beyond the tolerance is a
//! regression some perf PR has to answer for, turning every future claim
//! into a gated number instead of a one-off JSON snapshot.

use std::io::Write;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

/// Bump when the record layout changes; [`PerfHistory::load`] rejects
/// records from other schemas so the drift gate never compares apples to
/// re-laid-out oranges.
pub const HISTORY_SCHEMA: u64 = 1;

/// How many trailing prior records the drift baseline medians over.
pub const DRIFT_WINDOW: usize = 8;

/// One op's utilization summary inside a history record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpUtil {
    /// Tracked op key (e.g. `matmul` or `gemm/pointnet:64x64x1024`).
    pub name: String,
    /// Percent of attainable roofline peak.
    pub pct_of_peak: f64,
    /// Measured GFLOP/s.
    pub gflops: f64,
    /// Roofline bound: `compute` or `bandwidth`.
    pub bound: String,
}

/// One bench/sweep run appended to the history.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistoryRecord {
    /// Record layout version ([`HISTORY_SCHEMA`]).
    pub schema: u64,
    /// What produced the record (bin name, e.g. `bench_kernels`).
    pub label: String,
    /// Abbreviated git revision, `unknown` outside a checkout.
    pub git_rev: String,
    /// Worker-pool thread count of the run.
    pub threads: u64,
    /// Kernel backend (`blocked`, `naive`, ...).
    pub backend: String,
    /// Per-op roofline summaries.
    pub ops: Vec<OpUtil>,
}

impl HistoryRecord {
    /// Finds a tracked op by name.
    pub fn op(&self, name: &str) -> Option<&OpUtil> {
        self.ops.iter().find(|o| o.name == name)
    }
}

/// Handle on an append-only JSONL history file.
#[derive(Debug, Clone)]
pub struct PerfHistory {
    path: PathBuf,
}

impl PerfHistory {
    /// Wraps `path` (the file need not exist yet).
    pub fn new(path: impl Into<PathBuf>) -> Self {
        PerfHistory { path: path.into() }
    }

    /// The underlying file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record as a single JSONL line, creating the file (and
    /// parent directory) on first use.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn append(&self, record: &HistoryRecord) -> std::io::Result<()> {
        if let Some(dir) = self.path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        let json = serde_json::to_string(record).expect("records serialize infallibly");
        writeln!(f, "{json}")
    }

    /// Loads every record, oldest first. Blank lines are skipped; records
    /// from a different [`HISTORY_SCHEMA`] are dropped (not errors), so a
    /// schema bump starts a fresh baseline in the same file.
    ///
    /// # Errors
    ///
    /// Fails on filesystem errors or unparsable non-blank lines.
    pub fn load(&self) -> Result<Vec<HistoryRecord>, String> {
        let text = std::fs::read_to_string(&self.path)
            .map_err(|e| format!("{}: {e}", self.path.display()))?;
        let mut records = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let rec: HistoryRecord = serde_json::from_str(line)
                .map_err(|e| format!("{} line {}: {e}", self.path.display(), i + 1))?;
            if rec.schema == HISTORY_SCHEMA {
                records.push(rec);
            }
        }
        Ok(records)
    }
}

/// One op whose latest utilization dropped beyond tolerance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftViolation {
    /// The drifting op.
    pub op: String,
    /// Latest pct-of-peak.
    pub latest_pct: f64,
    /// Trailing-median baseline pct-of-peak.
    pub median_pct: f64,
    /// Relative drop vs the median, percent.
    pub drop_pct: f64,
}

/// Gates the newest record against the trailing median of the previous
/// [`DRIFT_WINDOW`] records: for every op tracked in the latest record that
/// also appears in at least one earlier record, a relative utilization drop
/// greater than `max_drop_pct` percent is a violation. Fewer than two
/// records (or no overlapping ops) can never drift.
pub fn drift(records: &[HistoryRecord], max_drop_pct: f64) -> Vec<DriftViolation> {
    let Some((latest, prior)) = records.split_last() else {
        return Vec::new();
    };
    let mut violations = Vec::new();
    for op in &latest.ops {
        let mut baseline: Vec<f64> = prior
            .iter()
            .rev()
            .take(DRIFT_WINDOW)
            .filter_map(|r| r.op(&op.name))
            .map(|o| o.pct_of_peak)
            .collect();
        if baseline.is_empty() {
            continue; // newly tracked op: no baseline yet
        }
        baseline.sort_by(f64::total_cmp);
        let mid = baseline.len() / 2;
        let median = if baseline.len() % 2 == 1 {
            baseline[mid]
        } else {
            0.5 * (baseline[mid - 1] + baseline[mid])
        };
        if median <= 0.0 {
            continue;
        }
        let drop = 100.0 * (median - op.pct_of_peak) / median;
        if drop > max_drop_pct {
            violations.push(DriftViolation {
                op: op.name.clone(),
                latest_pct: op.pct_of_peak,
                median_pct: median,
                drop_pct: drop,
            });
        }
    }
    violations
}

/// Abbreviated git revision of the working tree, or `unknown` when git (or
/// a repository) is unavailable — history stays appendable from tarballs.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(pcts: &[(&str, f64)]) -> HistoryRecord {
        HistoryRecord {
            schema: HISTORY_SCHEMA,
            label: "test".into(),
            git_rev: "abc1234".into(),
            threads: 4,
            backend: "blocked".into(),
            ops: pcts
                .iter()
                .map(|&(name, pct)| OpUtil {
                    name: name.into(),
                    pct_of_peak: pct,
                    gflops: pct / 10.0,
                    bound: "compute".into(),
                })
                .collect(),
        }
    }

    #[test]
    fn append_load_round_trips_jsonl() {
        let dir = std::env::temp_dir().join(format!("hfta-probe-hist-{}", std::process::id()));
        let h = PerfHistory::new(dir.join("history.jsonl"));
        h.append(&rec(&[("gemm", 60.0)])).unwrap();
        h.append(&rec(&[("gemm", 61.0), ("conv2d", 30.0)])).unwrap();
        let records = h.load().unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].op("conv2d").unwrap().pct_of_peak, 30.0);
        // A foreign-schema line is dropped, not a parse error.
        let mut other = rec(&[("gemm", 1.0)]);
        other.schema = HISTORY_SCHEMA + 1;
        h.append(&other).unwrap();
        assert_eq!(h.load().unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn drift_flags_only_drops_beyond_tolerance() {
        let records = vec![
            rec(&[("gemm", 60.0), ("conv2d", 40.0)]),
            rec(&[("gemm", 62.0), ("conv2d", 41.0)]),
            rec(&[("gemm", 58.0), ("conv2d", 39.0)]),
            // gemm holds (−3% of median 60), conv2d collapses (−50%).
            rec(&[("gemm", 58.2), ("conv2d", 20.0)]),
        ];
        let v = drift(&records, 10.0);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].op, "conv2d");
        assert!((v[0].median_pct - 40.0).abs() < 1e-9);
        assert!((v[0].drop_pct - 50.0).abs() < 1e-9);
        // Loosening the tolerance past the drop clears it.
        assert!(drift(&records, 60.0).is_empty());
    }

    #[test]
    fn drift_needs_history_and_overlap() {
        assert!(drift(&[], 10.0).is_empty());
        assert!(drift(&[rec(&[("gemm", 60.0)])], 10.0).is_empty());
        // A newly tracked op has no baseline to drift from.
        let records = vec![rec(&[("gemm", 60.0)]), rec(&[("new_op", 1.0)])];
        assert!(drift(&records, 10.0).is_empty());
    }

    #[test]
    fn drift_median_uses_trailing_window() {
        // Ancient great numbers outside the window must not mask a recent
        // plateau: 10 old records at 90, then DRIFT_WINDOW at 50, then 48.
        let mut records = vec![rec(&[("gemm", 90.0)]); 10];
        records.extend(vec![rec(&[("gemm", 50.0)]); DRIFT_WINDOW]);
        records.push(rec(&[("gemm", 48.0)]));
        // vs the trailing median (50) the drop is 4% — no violation…
        assert!(drift(&records, 10.0).is_empty());
        // …even though vs the ancient 90 it would be >40%.
        records.push(rec(&[("gemm", 40.0)]));
        let v = drift(&records, 10.0);
        assert_eq!(v.len(), 1);
        assert!((v[0].median_pct - 50.0).abs() < 1e-9);
    }
}
