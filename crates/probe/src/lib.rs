//! # hfta-probe
//!
//! Roofline-based utilization observability for the HFTA reproduction: the
//! layer that answers "what fraction of the machine did we squeeze?" — the
//! quantity the paper's whole thesis is measured in (Figs 8/11/12).
//!
//! * [`roofline`] — one-shot machine calibration ([`calibrate`]): attainable
//!   peak f32 GFLOP/s (the blocked GEMM's 8×8 micro-kernel) and stream GB/s
//!   per thread count, cached MIOpen-find-db style in a versioned probe
//!   database ([`MachinePeaks`], `--probe-db <path>`).
//! * [`classify`] — places every recorded `OpSample {flops, bytes, ns}`
//!   aggregate on the roofline ([`OpRoofline`]: compute- vs bandwidth-bound,
//!   % of *attainable* peak) and splits experiment totals across fused
//!   lanes ([`per_lane_utilization`]) with `hfta-sim`'s exact even-split
//!   attribution.
//! * [`history`] — the append-only [`PerfHistory`] JSONL store (git rev,
//!   threads, backend, per-op summary per run) and the [`drift`] gate:
//!   utilization of any tracked op dropping beyond tolerance vs the
//!   trailing median fails the run.
//!
//! The op samples come from the `profiled(name, flops, bytes, f)` hook in
//! `hfta-kernels` and the Tape op spans in `hfta-nn`; `probe_report` in
//! `hfta-bench` renders the tables and the Fig-8-style per-device timeline.

#![warn(missing_docs)]

pub mod classify;
pub mod history;
pub mod roofline;

pub use classify::{
    classify, classify_experiment, per_lane_utilization, BoundKind, LaneUtil, OpRoofline,
};
pub use history::{
    drift, git_rev, DriftViolation, HistoryRecord, OpUtil, PerfHistory, DRIFT_WINDOW,
    HISTORY_SCHEMA,
};
pub use roofline::{calibrate, MachinePeaks, PeakEntry, PROBE_DB_VERSION};
