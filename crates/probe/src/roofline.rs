//! Machine-peak calibration and the versioned probe database.
//!
//! The roofline model needs two machine constants per thread count: the
//! attainable peak f32 GFLOP/s (measured by looping the same cache-blocked
//! 8×8 GEMM micro-kernel the tensor stack dispatches) and the attainable
//! stream bandwidth in GB/s (a triad sweep over a buffer larger than the
//! last-level cache). Calibration is a one-shot microbench; the result is
//! cached MIOpen-find-db style in a versioned JSON file next to the run
//! (`--probe-db <path>`), so repeat runs load instead of re-measuring.

use std::path::Path;

use serde::{Deserialize, Serialize};

/// Bump when the calibration method or file layout changes; stale files
/// are silently re-calibrated.
pub const PROBE_DB_VERSION: u64 = 1;

/// Attainable peaks measured at one worker-pool thread count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeakEntry {
    /// Worker-pool thread count the peaks were measured at.
    pub threads: u64,
    /// Attainable f32 GFLOP/s (best of several GEMM micro-kernel reps).
    pub gflops: f64,
    /// Attainable stream bandwidth in GB/s (best-of triad sweep).
    pub stream_gbps: f64,
}

impl PeakEntry {
    /// The ridge point in FLOPs/byte: arithmetic intensity below this is
    /// bandwidth-bound, above it compute-bound.
    pub fn ridge(&self) -> f64 {
        if self.stream_gbps > 0.0 {
            self.gflops / self.stream_gbps
        } else {
            f64::INFINITY
        }
    }
}

/// The probe database: attainable peaks per thread count, versioned so a
/// method change invalidates cached files.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachinePeaks {
    /// File-format/method version ([`PROBE_DB_VERSION`]).
    pub version: u64,
    /// One entry per calibrated thread count, ascending.
    pub entries: Vec<PeakEntry>,
}

impl MachinePeaks {
    /// Builds a database from explicit peaks (tests, machine-independent
    /// report rendering).
    pub fn synthetic(gflops: f64, stream_gbps: f64) -> Self {
        MachinePeaks {
            version: PROBE_DB_VERSION,
            entries: vec![PeakEntry {
                threads: 1,
                gflops,
                stream_gbps,
            }],
        }
    }

    /// The entry for `threads`: an exact match if calibrated, otherwise the
    /// largest calibrated count not above it, otherwise the smallest entry.
    /// Returns `None` only for an empty database.
    pub fn entry_for(&self, threads: u64) -> Option<&PeakEntry> {
        self.entries
            .iter()
            .filter(|e| e.threads <= threads)
            .max_by_key(|e| e.threads)
            .or_else(|| self.entries.first())
    }

    /// Writes the database as pretty JSON.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let json = serde_json::to_string_pretty(self).expect("peaks serialize infallibly");
        std::fs::write(path, json)
    }

    /// Loads a cached database; `None` when the file is missing, unparsable,
    /// or carries a stale [`PROBE_DB_VERSION`] (callers then re-calibrate).
    pub fn load(path: &Path) -> Option<MachinePeaks> {
        let text = std::fs::read_to_string(path).ok()?;
        let peaks: MachinePeaks = serde_json::from_str(&text).ok()?;
        (peaks.version == PROBE_DB_VERSION).then_some(peaks)
    }

    /// Loads the cached database at `path`, or calibrates `thread_counts`
    /// and caches the result there (save errors are ignored — a read-only
    /// location just means re-calibrating next run).
    pub fn load_or_calibrate(path: &Path, thread_counts: &[usize]) -> MachinePeaks {
        if let Some(peaks) = Self::load(path) {
            return peaks;
        }
        let peaks = calibrate(thread_counts);
        let _ = peaks.save(path);
        peaks
    }
}

/// GEMM side length for the compute peak: 3 × 256² × 4 B = 768 KiB of
/// operands, resident in L2 on anything modern, so the measurement is
/// micro-kernel throughput rather than memory traffic.
const GEMM_N: usize = 256;
/// Triad buffer length: 3 × 8 Mi × 4 B = 96 MiB, well past any LLC.
const STREAM_LEN: usize = 8 << 20;
const REPS: usize = 3;

/// One-shot machine calibration: measures attainable peak f32 GFLOP/s and
/// stream GB/s at each of `thread_counts`, restoring the worker-pool
/// thread count afterwards. Entries come back sorted ascending by threads.
///
/// The GEMM loop is pinned to the `Blocked` backend for the measurement:
/// the compute peak is defined against the default bit-exact kernel, so a
/// process that opted into the SIMD backend (or enabled the autotuner)
/// calibrates the same reference peak as everyone else — cached probe dbs
/// and the perf history stay comparable across backend configurations.
/// (Opt-in SIMD rows can therefore exceed 100% of this peak in reports.)
///
/// # Panics
///
/// Panics if `thread_counts` is empty or contains zero.
pub fn calibrate(thread_counts: &[usize]) -> MachinePeaks {
    assert!(!thread_counts.is_empty(), "calibrate needs a thread count");
    let prior = hfta_kernels::num_threads();
    let prior_backend = hfta_kernels::backend();
    hfta_kernels::set_backend(hfta_kernels::GemmBackend::Blocked);
    let mut counts: Vec<usize> = thread_counts.to_vec();
    counts.sort_unstable();
    counts.dedup();
    let entries = counts
        .into_iter()
        .map(|t| {
            assert!(t > 0, "thread counts must be positive");
            hfta_kernels::set_num_threads(t);
            PeakEntry {
                threads: t as u64,
                gflops: peak_gemm_gflops(),
                stream_gbps: peak_stream_gbps(),
            }
        })
        .collect();
    hfta_kernels::set_num_threads(prior);
    hfta_kernels::set_backend(prior_backend);
    MachinePeaks {
        version: PROBE_DB_VERSION,
        entries,
    }
}

/// Best-of-[`REPS`] GFLOP/s of the blocked GEMM (8×8 micro-kernel) on a
/// cache-resident square problem.
fn peak_gemm_gflops() -> f64 {
    let n = GEMM_N;
    let a = vec![1.0f32; n * n];
    let b = vec![1.0f32; n * n];
    let mut c = vec![0.0f32; n * n];
    let flops = 2.0 * (n * n * n) as f64;
    // Warm the pool and the caches once before timing.
    hfta_kernels::gemm(&mut c, &a, &b, n, n, n);
    let mut best = 0.0f64;
    for _ in 0..REPS {
        c.fill(0.0);
        let start = std::time::Instant::now();
        hfta_kernels::gemm(&mut c, &a, &b, n, n, n);
        let ns = start.elapsed().as_secs_f64() * 1e9;
        if ns > 0.0 {
            best = best.max(flops / ns);
        }
    }
    std::hint::black_box(&c);
    best
}

/// Best-of-[`REPS`] GB/s of a parallel triad (`a[i] = b[i] + s·c[i]`) over
/// a buffer far larger than the last-level cache.
fn peak_stream_gbps() -> f64 {
    let n = STREAM_LEN;
    let b = vec![1.0f32; n];
    let c = vec![2.0f32; n];
    let mut a = vec![0.0f32; n];
    // 2 reads + 1 write per element.
    let bytes = (3 * 4 * n) as f64;
    let grain = 1 << 16;
    let mut best = 0.0f64;
    for _ in 0..=REPS {
        let start = std::time::Instant::now();
        let shared = hfta_kernels::UnsafeSlice::new(&mut a);
        hfta_kernels::parallel_for_work(n.div_ceil(grain), 1, n, |range| {
            for chunk in range {
                let lo = chunk * grain;
                let hi = (lo + grain).min(n);
                // SAFETY: chunks are disjoint by construction.
                let out = unsafe { shared.slice_mut(lo..hi) };
                for (i, o) in out.iter_mut().enumerate() {
                    *o = b[lo + i] + 3.0 * c[lo + i];
                }
            }
        });
        let ns = start.elapsed().as_secs_f64() * 1e9;
        if ns > 0.0 {
            best = best.max(bytes / ns);
        }
    }
    std::hint::black_box(&a);
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_selection_prefers_nearest_below() {
        let peaks = MachinePeaks {
            version: PROBE_DB_VERSION,
            entries: vec![
                PeakEntry {
                    threads: 1,
                    gflops: 10.0,
                    stream_gbps: 5.0,
                },
                PeakEntry {
                    threads: 4,
                    gflops: 30.0,
                    stream_gbps: 12.0,
                },
            ],
        };
        assert_eq!(peaks.entry_for(1).unwrap().gflops, 10.0);
        assert_eq!(peaks.entry_for(2).unwrap().gflops, 10.0);
        assert_eq!(peaks.entry_for(4).unwrap().gflops, 30.0);
        assert_eq!(peaks.entry_for(16).unwrap().gflops, 30.0);
        assert_eq!(peaks.entry_for(1).unwrap().ridge(), 2.0);
    }

    #[test]
    fn save_load_round_trip_and_version_gate() {
        let dir = std::env::temp_dir().join(format!("hfta-probe-db-{}", std::process::id()));
        let path = dir.join("machine.json");
        let peaks = MachinePeaks::synthetic(42.0, 17.0);
        peaks.save(&path).unwrap();
        assert_eq!(MachinePeaks::load(&path).unwrap(), peaks);
        // A stale version invalidates the cache.
        let mut stale = peaks.clone();
        stale.version = PROBE_DB_VERSION + 1;
        stale.save(&path).unwrap();
        assert!(MachinePeaks::load(&path).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn calibrate_measures_positive_peaks() {
        let peaks = calibrate(&[1]);
        assert_eq!(peaks.entries.len(), 1);
        let e = &peaks.entries[0];
        assert_eq!(e.threads, 1);
        assert!(e.gflops > 0.0, "gflops {}", e.gflops);
        assert!(e.stream_gbps > 0.0, "stream {}", e.stream_gbps);
        assert!(e.ridge().is_finite());
    }
}
