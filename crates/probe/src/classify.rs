//! Roofline classification of op samples and lane/device attribution.
//!
//! Every instrumented op closes into an `OpSample {flops, bytes, ns}`
//! aggregate ([`OpAgg`]); against a calibrated [`PeakEntry`] that is enough
//! to place the op on the roofline: arithmetic intensity below the ridge
//! point makes it bandwidth-bound (attainable = intensity × stream peak),
//! above it compute-bound (attainable = GEMM peak). `pct_of_peak` is the
//! fraction of *attainable* — not absolute — throughput, so a
//! bandwidth-bound op at 90% is healthy even when its GFLOP/s look tiny.

use hfta_telemetry::{ExperimentReport, OpAgg};
use serde::{Deserialize, Serialize};

use crate::roofline::PeakEntry;

/// Which roofline slope an op sits under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BoundKind {
    /// Arithmetic intensity above the ridge: limited by FLOP throughput.
    Compute,
    /// Intensity below the ridge: limited by memory bandwidth.
    Bandwidth,
}

impl BoundKind {
    /// Stable display name (`compute` / `bandwidth`).
    pub fn name(&self) -> &'static str {
        match self {
            BoundKind::Compute => "compute",
            BoundKind::Bandwidth => "bandwidth",
        }
    }
}

/// One op kind placed on the roofline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpRoofline {
    /// Op name.
    pub name: String,
    /// Number of dispatches aggregated.
    pub calls: u64,
    /// Arithmetic intensity in FLOPs/byte.
    pub intensity: f64,
    /// Measured GFLOP/s over the op's recorded wall time.
    pub attained_gflops: f64,
    /// Roofline ceiling for this intensity, GFLOP/s.
    pub attainable_gflops: f64,
    /// `attained / attainable`, percent (0 when unattainable).
    pub pct_of_peak: f64,
    /// Which slope limits the op.
    pub bound: BoundKind,
}

/// Places one op aggregate on the roofline defined by `peak`.
pub fn classify(op: &OpAgg, peak: &PeakEntry) -> OpRoofline {
    let intensity = op.intensity();
    let (bound, attainable) = if op.bytes > 0.0 && intensity < peak.ridge() {
        (BoundKind::Bandwidth, intensity * peak.stream_gbps)
    } else {
        (BoundKind::Compute, peak.gflops)
    };
    let attained = op.attained_gflops();
    let pct = if attainable > 0.0 {
        100.0 * attained / attainable
    } else {
        0.0
    };
    OpRoofline {
        name: op.name.clone(),
        calls: op.calls,
        intensity,
        attained_gflops: attained,
        attainable_gflops: attainable,
        pct_of_peak: pct,
        bound,
    }
}

/// Classifies every op recorded in an experiment, ordered by descending
/// total FLOPs (the biggest consumers first).
pub fn classify_experiment(exp: &ExperimentReport, peak: &PeakEntry) -> Vec<OpRoofline> {
    let mut ops: Vec<&OpAgg> = exp.ops.iter().collect();
    ops.sort_by(|a, b| b.flops.total_cmp(&a.flops));
    ops.into_iter().map(|o| classify(o, peak)).collect()
}

/// One fused lane's share of an experiment's recorded op work.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LaneUtil {
    /// Model index within the fused array (`0..B`).
    pub model: u64,
    /// FLOPs attributed to this lane.
    pub flops: f64,
    /// Bytes attributed to this lane.
    pub bytes: f64,
    /// This lane's GFLOP/s over the experiment wall time.
    pub gflops: f64,
}

/// Splits an experiment's total recorded op work across its fused lanes
/// (width from the step metrics, 1 when untracked), reusing the exact
/// even-split attribution from `hfta-sim`: every lane of a fused operator
/// does identical-shape work, so an even split *is* the attribution.
pub fn per_lane_utilization(exp: &ExperimentReport) -> Vec<LaneUtil> {
    let b = exp.fused_width().max(1) as usize;
    let total_flops: f64 = exp.ops.iter().map(|o| o.flops).sum();
    let total_bytes: f64 = exp.ops.iter().map(|o| o.bytes).sum();
    let wall_ns = exp.wall_ms * 1e6;
    let flops = hfta_sim::attribution::split_even(total_flops as u64, b);
    let bytes = hfta_sim::attribution::split_even(total_bytes as u64, b);
    flops
        .into_iter()
        .zip(bytes)
        .enumerate()
        .map(|(i, (f, by))| LaneUtil {
            model: i as u64,
            flops: f as f64,
            bytes: by as f64,
            gflops: if wall_ns > 0.0 {
                f as f64 / wall_ns
            } else {
                0.0
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfta_telemetry::StepMetric;

    fn peak() -> PeakEntry {
        // Ridge = 20/10 = 2 FLOPs/byte.
        PeakEntry {
            threads: 1,
            gflops: 20.0,
            stream_gbps: 10.0,
        }
    }

    fn agg(name: &str, flops: f64, bytes: f64, ns: f64) -> OpAgg {
        OpAgg {
            name: name.into(),
            calls: 1,
            flops,
            bytes,
            ns,
        }
    }

    #[test]
    fn intensity_below_ridge_is_bandwidth_bound() {
        // 1 FLOP/byte < ridge 2: attainable = 1 × 10 GB/s = 10 GFLOP/s.
        let op = agg("axpy", 1e9, 1e9, 2e8);
        let r = classify(&op, &peak());
        assert_eq!(r.bound, BoundKind::Bandwidth);
        assert_eq!(r.bound.name(), "bandwidth");
        assert!((r.attainable_gflops - 10.0).abs() < 1e-12);
        // Attained 1e9/2e8 = 5 GFLOP/s → 50% of attainable.
        assert!((r.pct_of_peak - 50.0).abs() < 1e-9);
    }

    #[test]
    fn intensity_above_ridge_is_compute_bound() {
        // 10 FLOPs/byte > ridge 2: attainable = full 20 GFLOP/s.
        let op = agg("gemm", 1e10, 1e9, 1e9);
        let r = classify(&op, &peak());
        assert_eq!(r.bound, BoundKind::Compute);
        assert!((r.attainable_gflops - 20.0).abs() < 1e-12);
        // Attained 10 GFLOP/s → 50% of peak.
        assert!((r.pct_of_peak - 50.0).abs() < 1e-9);
    }

    #[test]
    fn zero_byte_ops_fall_back_to_compute_bound() {
        let op = agg("mystery", 1e9, 0.0, 1e9);
        let r = classify(&op, &peak());
        assert_eq!(r.bound, BoundKind::Compute);
        assert!(r.pct_of_peak > 0.0);
    }

    fn exp_with(ops: Vec<OpAgg>, width: u64, wall_ms: f64) -> ExperimentReport {
        ExperimentReport {
            name: "t".into(),
            wall_ms,
            steps: vec![StepMetric {
                step: 0,
                model: 0,
                loss: 0.0,
                samples_per_s: 0.0,
                fused_width: width,
            }],
            counters: vec![],
            gauges: vec![],
            histograms: vec![],
            series: vec![],
            scalars: vec![],
            sentinels: vec![],
            flight: vec![],
            trial_slo: vec![],
            ops,
        }
    }

    #[test]
    fn experiment_classification_orders_by_flops() {
        let exp = exp_with(
            vec![agg("small", 1e6, 1e6, 1e6), agg("large", 1e9, 1e8, 1e8)],
            1,
            1.0,
        );
        let rows = classify_experiment(&exp, &peak());
        assert_eq!(rows[0].name, "large");
        assert_eq!(rows[1].name, "small");
    }

    #[test]
    fn lane_split_conserves_totals() {
        let exp = exp_with(vec![agg("gemm", 1e9 + 1.0, 4e8, 1e8)], 4, 1.0);
        let lanes = per_lane_utilization(&exp);
        assert_eq!(lanes.len(), 4);
        let total: f64 = lanes.iter().map(|l| l.flops).sum();
        assert_eq!(total, (1e9 + 1.0_f64).trunc());
        // Remainder lands on the lower lane indices.
        assert!(lanes[0].flops >= lanes[3].flops);
        assert!(lanes.iter().all(|l| l.gflops > 0.0));
    }
}
