//! # hfta-cluster
//!
//! GPU-cluster job-trace generation and analysis, reproducing the paper's
//! motivation study (Appendix A, Table 1, Figures 9–10): synthetic
//! two-month traces with the Vector-Institute workload mix, the
//! burst/Levenshtein classifier that identifies repetitive single-GPU
//! training jobs, GPU-hour aggregation, and the low-utilization sampling
//! of repetitive jobs.
//!
//! # Example
//!
//! ```
//! use hfta_cluster::{classify, trace};
//!
//! let jobs = trace::generate(&trace::TraceCfg::small(), 42);
//! let cats = classify::classify(&jobs, &classify::ClassifyCfg::default());
//! let breakdown = classify::Breakdown::from_assignments(&jobs, &cats);
//! // Repetitive single-GPU jobs dominate, as in the paper's Table 1.
//! assert!(breakdown.share(trace::JobCategory::RepetitiveSingleGpu) > 30.0);
//! ```

#![warn(missing_docs)]

pub mod classify;
pub mod levenshtein;
pub mod replay;
pub mod trace;

pub use classify::{classify, Breakdown, ClassifyCfg, UtilizationSample};
pub use replay::{normalize_arrivals, sweep_arrivals, sweep_stem, SweepArrival};
pub use trace::{generate, partition_hours, Job, JobCategory, TraceCfg};
