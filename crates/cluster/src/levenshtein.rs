//! Levenshtein edit distance and the normalized job-name similarity used
//! by the paper's Appendix-A classifier.

/// Levenshtein edit distance between two strings (unit costs).
///
/// # Example
///
/// ```
/// use hfta_cluster::levenshtein::distance;
/// assert_eq!(distance("kitten", "sitting"), 3);
/// assert_eq!(distance("", "abc"), 3);
/// assert_eq!(distance("same", "same"), 0);
/// ```
pub fn distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    // Single-row dynamic program.
    let mut row: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut prev = row[0];
        row[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let substitute = prev + usize::from(ca != cb);
            prev = row[j + 1];
            row[j + 1] = substitute.min(prev + 1).min(row[j] + 1);
        }
    }
    row[b.len()]
}

/// Normalized similarity in `[0, 1]`: 1 means identical, 0 totally
/// different (the paper's Appendix-A convention; threshold 0.9).
///
/// # Example
///
/// ```
/// use hfta_cluster::levenshtein::similarity;
/// assert_eq!(similarity("run-lr0.1", "run-lr0.1"), 1.0);
/// assert!(similarity("sweep-lr-0.1", "sweep-lr-0.01") > 0.9);
/// assert!(similarity("alpha", "omega") < 0.5);
/// ```
pub fn similarity(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 1.0;
    }
    1.0 - distance(a, b) as f64 / max_len as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_cases() {
        assert_eq!(distance("kitten", "sitting"), 3);
        assert_eq!(distance("flaw", "lawn"), 2);
        assert_eq!(distance("abc", "abc"), 0);
        assert_eq!(distance("abc", ""), 3);
    }

    #[test]
    fn distance_is_symmetric() {
        let pairs = [("abc", "axbyc"), ("hyper", "hypo"), ("", "x")];
        for (a, b) in pairs {
            assert_eq!(distance(a, b), distance(b, a));
        }
    }

    #[test]
    fn triangle_inequality_spot_checks() {
        let (a, b, c) = ("train-lr01", "train-lr02", "eval-lr02");
        assert!(distance(a, c) <= distance(a, b) + distance(b, c));
    }

    #[test]
    fn similarity_bounds() {
        assert_eq!(similarity("", ""), 1.0);
        assert_eq!(similarity("abcd", "abcd"), 1.0);
        assert_eq!(similarity("aaaa", "bbbb"), 0.0);
        let s = similarity("job-seed-41", "job-seed-42");
        assert!((0.0..=1.0).contains(&s));
        assert!(s > 0.9);
    }

    #[test]
    fn hyperparameter_suffixes_clear_the_paper_threshold() {
        // The Appendix-A observation: sweep jobs differ only in small
        // suffixes and clear the 0.9 threshold.
        assert!(similarity("resnet_cifar_lr0.100_wd1e-4", "resnet_cifar_lr0.010_wd1e-4") >= 0.9);
        assert!(similarity("pointnet-train-seed-1", "pointnet-train-seed-2") >= 0.9);
        // Unrelated jobs do not.
        assert!(similarity("bert_pretrain_phase2", "gan-superres-eval") < 0.9);
    }

    #[test]
    fn unicode_names() {
        assert_eq!(distance("héllo", "hello"), 1);
        assert!(similarity("héllo", "hello") > 0.7);
    }
}
