//! Arrival replay adapter: recovers hyper-parameter sweep bursts from a
//! cluster trace and replays them as batched trial arrivals for a tuning
//! scheduler (`hfta-sched`).
//!
//! The motivation study's traces (paper §2.1, Appendix A) show tuning
//! workloads arriving as *bursts*: one user submits tens of single-GPU
//! jobs within a minute, identical but for a hyper-parameter suffix. The
//! adapter groups such jobs by `(user, model stem)` within a gap window
//! into [`SweepArrival`]s — the trial stream an HFTA scheduler serves —
//! and [`normalize_arrivals`] rescales the multi-day submit times onto a
//! simulated-training timescale while preserving the relative arrival
//! structure (burst spacing is what stresses a scheduler, not the absolute
//! wall-clock span).

use crate::trace::Job;

/// One recovered sweep burst: `trials` sibling jobs submitted together.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepArrival {
    /// Earliest submit time in the burst, seconds since trace start.
    pub submit_s: u64,
    /// Submitting user.
    pub user: String,
    /// Model stem shared by the burst's job names (e.g. `pointnet`).
    pub stem: String,
    /// Number of sibling jobs in the burst.
    pub trials: usize,
}

/// The model stem of a sweep-launcher job name — the prefix before the
/// `_train_` marker (`pointnet_train_lr0.0100` → `pointnet`). `None` for
/// names without the marker (dev runs, distributed jobs, notebooks).
pub fn sweep_stem(name: &str) -> Option<&str> {
    name.split_once("_train_").map(|(stem, _)| stem)
}

/// Groups single-GPU sweep-launcher jobs into bursts: jobs by the same
/// user with the same model stem belong to one burst while each is
/// submitted within `max_gap_s` of the burst's latest member. Bursts of
/// fewer than `min_trials` jobs are dropped (a lone `_train_` job is not
/// a sweep). Returns arrivals sorted by submit time, then user/stem.
pub fn sweep_arrivals(jobs: &[Job], max_gap_s: u64, min_trials: usize) -> Vec<SweepArrival> {
    // (user, stem) -> open burst (submit_s of first, latest submit, count).
    let mut open: Vec<(String, String, SweepArrival, u64)> = Vec::new();
    let mut done: Vec<SweepArrival> = Vec::new();
    let mut sorted: Vec<&Job> = jobs.iter().filter(|j| j.gpus == 1).collect();
    sorted.sort_by_key(|j| (j.submit_s, j.id));
    for job in sorted {
        let Some(stem) = sweep_stem(&job.name) else {
            continue;
        };
        match open
            .iter_mut()
            .find(|(u, s, _, last)| *u == job.user && s == stem && job.submit_s <= last + max_gap_s)
        {
            Some((_, _, burst, last)) => {
                burst.trials += 1;
                *last = job.submit_s;
            }
            None => {
                // Close any stale burst for this (user, stem) first.
                if let Some(pos) = open
                    .iter()
                    .position(|(u, s, _, _)| *u == job.user && s == stem)
                {
                    let (_, _, burst, _) = open.swap_remove(pos);
                    if burst.trials >= min_trials {
                        done.push(burst);
                    }
                }
                open.push((
                    job.user.clone(),
                    stem.to_string(),
                    SweepArrival {
                        submit_s: job.submit_s,
                        user: job.user.clone(),
                        stem: stem.to_string(),
                        trials: 1,
                    },
                    job.submit_s,
                ));
            }
        }
    }
    done.extend(
        open.into_iter()
            .filter(|(_, _, b, _)| b.trials >= min_trials)
            .map(|(_, _, b, _)| b),
    );
    done.sort_by(|a, b| {
        a.submit_s
            .cmp(&b.submit_s)
            .then_with(|| a.user.cmp(&b.user))
            .then_with(|| a.stem.cmp(&b.stem))
    });
    done
}

/// Maps burst submit times onto `[0, span_s]` simulated seconds,
/// preserving relative spacing (the earliest burst arrives at 0, the
/// latest at `span_s`; a single burst arrives at 0). Cluster traces span
/// days while a simulated tuning run takes fractions of a second, so the
/// scheduler replays the arrival *structure* at training timescale.
///
/// # Panics
///
/// Panics if `span_s` is negative.
pub fn normalize_arrivals(arrivals: &[SweepArrival], span_s: f64) -> Vec<f64> {
    assert!(span_s >= 0.0, "span must be non-negative");
    if arrivals.is_empty() {
        return Vec::new();
    }
    let lo = arrivals.iter().map(|a| a.submit_s).min().unwrap();
    let hi = arrivals.iter().map(|a| a.submit_s).max().unwrap();
    let range = (hi - lo) as f64;
    arrivals
        .iter()
        .map(|a| {
            if range == 0.0 {
                0.0
            } else {
                (a.submit_s - lo) as f64 / range * span_s
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{generate, JobCategory, TraceCfg};

    #[test]
    fn stems_parse_sweep_names_only() {
        assert_eq!(sweep_stem("pointnet_train_lr0.0100"), Some("pointnet"));
        assert_eq!(sweep_stem("dcgan64_train_seed0.0400"), Some("dcgan64"));
        assert_eq!(sweep_stem("pointnet_dev_run42"), None);
        assert_eq!(sweep_stem("resnet_ddp_4gpu"), None);
    }

    #[test]
    fn recovers_bursts_from_generated_trace() {
        let jobs = generate(&TraceCfg::small(), 42);
        let arrivals = sweep_arrivals(&jobs, 120, 4);
        assert!(!arrivals.is_empty(), "no bursts recovered");
        // Sorted by submit time.
        assert!(arrivals.windows(2).all(|w| w[0].submit_s <= w[1].submit_s));
        // Generated bursts have 8..=64 jobs; merged or truncated bursts can
        // stray, but the typical size must sit in that band.
        let typical = arrivals
            .iter()
            .filter(|a| (8..=64).contains(&a.trials))
            .count();
        assert!(typical * 2 > arrivals.len(), "burst sizes implausible");
        // Coverage: the recovered trials account for most ground-truth
        // repetitive jobs (same-user same-stem overlapping bursts can merge).
        let truth = jobs
            .iter()
            .filter(|j| j.truth == JobCategory::RepetitiveSingleGpu)
            .count();
        let recovered: usize = arrivals.iter().map(|a| a.trials).sum();
        assert!(
            recovered as f64 >= 0.9 * truth as f64,
            "recovered {recovered} of {truth} repetitive jobs"
        );
        assert!(recovered <= truth + jobs.len() / 100, "over-recovered");
    }

    #[test]
    fn recovery_is_deterministic() {
        let jobs = generate(&TraceCfg::small(), 7);
        assert_eq!(sweep_arrivals(&jobs, 120, 4), sweep_arrivals(&jobs, 120, 4));
    }

    #[test]
    fn normalization_preserves_relative_spacing() {
        let mk = |submit_s| SweepArrival {
            submit_s,
            user: "u".into(),
            stem: "s".into(),
            trials: 8,
        };
        let arrivals = vec![mk(1000), mk(2000), mk(5000)];
        let t = normalize_arrivals(&arrivals, 1.0);
        assert_eq!(t, vec![0.0, 0.25, 1.0]);
        // A single arrival lands at 0.
        assert_eq!(normalize_arrivals(&arrivals[..1], 1.0), vec![0.0]);
        assert!(normalize_arrivals(&[], 1.0).is_empty());
    }
}
