//! Arrival replay adapter: recovers hyper-parameter sweep bursts from a
//! cluster trace and replays them as batched trial arrivals for a tuning
//! scheduler (`hfta-sched`).
//!
//! The motivation study's traces (paper §2.1, Appendix A) show tuning
//! workloads arriving as *bursts*: one user submits tens of single-GPU
//! jobs within a minute, identical but for a hyper-parameter suffix. The
//! adapter groups such jobs by `(user, model stem)` within a gap window
//! into [`SweepArrival`]s — the trial stream an HFTA scheduler serves —
//! and [`normalize_arrivals`] rescales the multi-day submit times onto a
//! simulated-training timescale while preserving the relative arrival
//! structure (burst spacing is what stresses a scheduler, not the absolute
//! wall-clock span).

use crate::trace::Job;

/// One recovered sweep burst: `trials` sibling jobs submitted together.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepArrival {
    /// Earliest submit time in the burst, seconds since trace start.
    pub submit_s: u64,
    /// Submitting user.
    pub user: String,
    /// Model stem shared by the burst's job names (e.g. `pointnet`).
    pub stem: String,
    /// Number of sibling jobs in the burst.
    pub trials: usize,
}

/// The model stem of a sweep-launcher job name — the prefix before the
/// `_train_` marker (`pointnet_train_lr0.0100` → `pointnet`). `None` for
/// names without the marker (dev runs, distributed jobs, notebooks).
pub fn sweep_stem(name: &str) -> Option<&str> {
    name.split_once("_train_").map(|(stem, _)| stem)
}

/// Groups single-GPU sweep-launcher jobs into bursts: jobs by the same
/// user with the same model stem belong to one burst while each is
/// submitted within `max_gap_s` of the burst's latest member. Bursts of
/// fewer than `min_trials` jobs are dropped (a lone `_train_` job is not
/// a sweep). Returns arrivals sorted by submit time, then user/stem.
pub fn sweep_arrivals(jobs: &[Job], max_gap_s: u64, min_trials: usize) -> Vec<SweepArrival> {
    // (user, stem) -> open burst (submit_s of first, latest submit, count).
    let mut open: Vec<(String, String, SweepArrival, u64)> = Vec::new();
    let mut done: Vec<SweepArrival> = Vec::new();
    let mut sorted: Vec<&Job> = jobs.iter().filter(|j| j.gpus == 1).collect();
    sorted.sort_by_key(|j| (j.submit_s, j.id));
    for job in sorted {
        let Some(stem) = sweep_stem(&job.name) else {
            continue;
        };
        match open
            .iter_mut()
            .find(|(u, s, _, last)| *u == job.user && s == stem && job.submit_s <= last + max_gap_s)
        {
            Some((_, _, burst, last)) => {
                burst.trials += 1;
                *last = job.submit_s;
            }
            None => {
                // Close any stale burst for this (user, stem) first.
                if let Some(pos) = open
                    .iter()
                    .position(|(u, s, _, _)| *u == job.user && s == stem)
                {
                    let (_, _, burst, _) = open.swap_remove(pos);
                    if burst.trials >= min_trials {
                        done.push(burst);
                    }
                }
                open.push((
                    job.user.clone(),
                    stem.to_string(),
                    SweepArrival {
                        submit_s: job.submit_s,
                        user: job.user.clone(),
                        stem: stem.to_string(),
                        trials: 1,
                    },
                    job.submit_s,
                ));
            }
        }
    }
    done.extend(
        open.into_iter()
            .filter(|(_, _, b, _)| b.trials >= min_trials)
            .map(|(_, _, b, _)| b),
    );
    done.sort_by(|a, b| {
        a.submit_s
            .cmp(&b.submit_s)
            .then_with(|| a.user.cmp(&b.user))
            .then_with(|| a.stem.cmp(&b.stem))
    });
    done
}

/// Maps burst submit times onto `[0, span_s]` simulated seconds,
/// preserving relative spacing (the earliest burst arrives at 0, the
/// latest at `span_s`; a single burst arrives at 0). Cluster traces span
/// days while a simulated tuning run takes fractions of a second, so the
/// scheduler replays the arrival *structure* at training timescale.
///
/// # Panics
///
/// Panics if `span_s` is negative.
pub fn normalize_arrivals(arrivals: &[SweepArrival], span_s: f64) -> Vec<f64> {
    assert!(span_s >= 0.0, "span must be non-negative");
    if arrivals.is_empty() {
        return Vec::new();
    }
    let lo = arrivals.iter().map(|a| a.submit_s).min().unwrap();
    let hi = arrivals.iter().map(|a| a.submit_s).max().unwrap();
    let range = (hi - lo) as f64;
    arrivals
        .iter()
        .map(|a| {
            if range == 0.0 {
                0.0
            } else {
                (a.submit_s - lo) as f64 / range * span_s
            }
        })
        .collect()
}

/// Open-loop arrival configuration for [`normalize_arrivals_open`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpenLoopCfg {
    /// Fraction of bursts kept, in `[0, 1]` (values above 1 keep all).
    /// Scales the offered arrival *rate* without compressing the span.
    pub rate_scale: f64,
    /// Seed for the per-burst thinning coin.
    pub seed: u64,
}

/// SplitMix64-style avalanche, the repo's standard counter-mode hash.
fn mix(a: u64, b: u64) -> u64 {
    let mut x = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Open-loop variant of [`normalize_arrivals`]: the burst times are mapped
/// onto `[0, span_s]` exactly as the closed-loop rescale does, then the
/// arrival *rate* is scaled by Poisson-style thinning — each burst is kept
/// independently with probability `rate_scale`, decided by a deterministic
/// per-index hash coin, which preserves the bursty spacing structure
/// instead of compressing it. Returns `(index, arrival_s)` pairs into
/// `arrivals`, in the original (time-sorted) order, so the caller can
/// recover the kept bursts' sizes and owners.
///
/// Unlike a closed-loop stream, the kept arrival instants never depend on
/// service progress: a slow policy faces the same offered load as a fast
/// one, which is what makes queue-latency percentiles comparable across
/// policies.
///
/// # Panics
///
/// Panics if `span_s` is negative, or `rate_scale` is negative or NaN.
pub fn normalize_arrivals_open(
    arrivals: &[SweepArrival],
    span_s: f64,
    cfg: &OpenLoopCfg,
) -> Vec<(usize, f64)> {
    assert!(
        cfg.rate_scale >= 0.0,
        "rate_scale must be a non-negative number"
    );
    let times = normalize_arrivals(arrivals, span_s);
    times
        .into_iter()
        .enumerate()
        .filter(|(i, _)| {
            // 53-bit uniform in [0, 1) from the hash, exact in f64.
            let u = (mix(cfg.seed, *i as u64) >> 11) as f64 / (1u64 << 53) as f64;
            u < cfg.rate_scale
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{generate, JobCategory, TraceCfg};

    #[test]
    fn stems_parse_sweep_names_only() {
        assert_eq!(sweep_stem("pointnet_train_lr0.0100"), Some("pointnet"));
        assert_eq!(sweep_stem("dcgan64_train_seed0.0400"), Some("dcgan64"));
        assert_eq!(sweep_stem("pointnet_dev_run42"), None);
        assert_eq!(sweep_stem("resnet_ddp_4gpu"), None);
    }

    #[test]
    fn recovers_bursts_from_generated_trace() {
        let jobs = generate(&TraceCfg::small(), 42);
        let arrivals = sweep_arrivals(&jobs, 120, 4);
        assert!(!arrivals.is_empty(), "no bursts recovered");
        // Sorted by submit time.
        assert!(arrivals.windows(2).all(|w| w[0].submit_s <= w[1].submit_s));
        // Generated bursts have 8..=64 jobs; merged or truncated bursts can
        // stray, but the typical size must sit in that band.
        let typical = arrivals
            .iter()
            .filter(|a| (8..=64).contains(&a.trials))
            .count();
        assert!(typical * 2 > arrivals.len(), "burst sizes implausible");
        // Coverage: the recovered trials account for most ground-truth
        // repetitive jobs (same-user same-stem overlapping bursts can merge).
        let truth = jobs
            .iter()
            .filter(|j| j.truth == JobCategory::RepetitiveSingleGpu)
            .count();
        let recovered: usize = arrivals.iter().map(|a| a.trials).sum();
        assert!(
            recovered as f64 >= 0.9 * truth as f64,
            "recovered {recovered} of {truth} repetitive jobs"
        );
        assert!(recovered <= truth + jobs.len() / 100, "over-recovered");
    }

    #[test]
    fn recovery_is_deterministic() {
        let jobs = generate(&TraceCfg::small(), 7);
        assert_eq!(sweep_arrivals(&jobs, 120, 4), sweep_arrivals(&jobs, 120, 4));
    }

    #[test]
    fn open_loop_thinning_is_a_deterministic_subsequence() {
        let mk = |submit_s| SweepArrival {
            submit_s,
            user: "u".into(),
            stem: "s".into(),
            trials: 8,
        };
        let arrivals: Vec<SweepArrival> = (0..64).map(|i| mk(1000 + 100 * i)).collect();
        let closed = normalize_arrivals(&arrivals, 2.0);
        let cfg = OpenLoopCfg {
            rate_scale: 0.5,
            seed: 42,
        };
        let kept = normalize_arrivals_open(&arrivals, 2.0, &cfg);
        assert_eq!(kept, normalize_arrivals_open(&arrivals, 2.0, &cfg));
        // A real thinning: some but not all survive at rate 0.5.
        assert!(!kept.is_empty() && kept.len() < arrivals.len());
        // Kept times are the closed-loop times at the kept indices.
        for (i, t) in &kept {
            assert_eq!(*t, closed[*i]);
        }
        // Extremes.
        assert_eq!(
            normalize_arrivals_open(
                &arrivals,
                2.0,
                &OpenLoopCfg {
                    rate_scale: 1.0,
                    seed: 1
                }
            )
            .len(),
            arrivals.len()
        );
        assert!(normalize_arrivals_open(
            &arrivals,
            2.0,
            &OpenLoopCfg {
                rate_scale: 0.0,
                seed: 1
            }
        )
        .is_empty());
    }

    #[test]
    fn normalization_preserves_relative_spacing() {
        let mk = |submit_s| SweepArrival {
            submit_s,
            user: "u".into(),
            stem: "s".into(),
            trials: 8,
        };
        let arrivals = vec![mk(1000), mk(2000), mk(5000)];
        let t = normalize_arrivals(&arrivals, 1.0);
        assert_eq!(t, vec![0.0, 0.25, 1.0]);
        // A single arrival lands at 0.
        assert_eq!(normalize_arrivals(&arrivals[..1], 1.0), vec![0.0]);
        assert!(normalize_arrivals(&[], 1.0).is_empty());
    }
}
