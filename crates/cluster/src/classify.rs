//! The Appendix-A job classifier and GPU-hour aggregation (Table 1 /
//! Figure 9), plus the Figure-10 utilization sampling.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::levenshtein::similarity;
use crate::trace::{Job, JobCategory};

/// Appendix-A classification parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ClassifyCfg {
    /// Burst window: jobs from the same user within this many seconds are
    /// candidate members of one automated submission (paper: 60 s).
    pub burst_window_s: u64,
    /// Minimum normalized Levenshtein similarity between job names inside
    /// a burst (paper: 0.9).
    pub name_similarity: f64,
    /// Minimum burst size to call a group "repetitive".
    pub min_burst: usize,
}

impl Default for ClassifyCfg {
    fn default() -> Self {
        ClassifyCfg {
            burst_window_s: 60,
            name_similarity: 0.9,
            min_burst: 3,
        }
    }
}

/// Classifies every job per the paper's Appendix-A methodology:
///
/// 1. multi-GPU or node-pinned jobs → *distributed*;
/// 2. single-GPU jobs submitted by the same user within the burst window,
///    with pairwise job-name similarity ≥ the threshold → *repetitive*;
/// 3. remaining single-GPU jobs with recognizable names → *isolated*;
/// 4. everything else → *other*.
pub fn classify(jobs: &[Job], cfg: &ClassifyCfg) -> Vec<JobCategory> {
    let mut out = vec![JobCategory::Other; jobs.len()];
    // Group indices per user, in submit order (jobs are pre-sorted).
    let mut per_user: HashMap<&str, Vec<usize>> = HashMap::new();
    for (i, j) in jobs.iter().enumerate() {
        per_user.entry(j.user.as_str()).or_default().push(i);
    }
    let mut assigned = vec![false; jobs.len()];
    for indices in per_user.values() {
        for (pos, &i) in indices.iter().enumerate() {
            if assigned[i] {
                continue;
            }
            let ji = &jobs[i];
            if ji.gpus > 1 || ji.pinned_node {
                out[i] = JobCategory::Distributed;
                assigned[i] = true;
                continue;
            }
            // Collect the burst: subsequent single-GPU jobs of this user
            // inside the window with similar names.
            let mut burst = vec![i];
            for &k in &indices[pos + 1..] {
                let jk = &jobs[k];
                if jk.submit_s.saturating_sub(ji.submit_s) > cfg.burst_window_s {
                    break;
                }
                if !assigned[k]
                    && jk.gpus == 1
                    && !jk.pinned_node
                    && similarity(&ji.name, &jk.name) >= cfg.name_similarity
                {
                    burst.push(k);
                }
            }
            if burst.len() >= cfg.min_burst {
                for &b in &burst {
                    out[b] = JobCategory::RepetitiveSingleGpu;
                    assigned[b] = true;
                }
            } else {
                if is_recognizable(&ji.name) {
                    out[i] = JobCategory::IsolatedSingleGpu;
                }
                assigned[i] = true;
            }
        }
    }
    out
}

/// Whether a job name looks like an identifiable training run (vs. the
/// paper's "others" bucket of unidentifiable jobs).
fn is_recognizable(name: &str) -> bool {
    !name.starts_with("misc") && name.contains('_')
}

/// GPU-hour usage breakdown (the paper's Table 1 / Figure 9).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Breakdown {
    /// GPU hours per category, Table 1 column order.
    pub gpu_hours: [f64; 4],
    /// Total GPU hours.
    pub total: f64,
}

impl Breakdown {
    /// Aggregates GPU hours by assigned category.
    pub fn from_assignments(jobs: &[Job], categories: &[JobCategory]) -> Self {
        let mut gpu_hours = [0.0f64; 4];
        for (j, c) in jobs.iter().zip(categories) {
            gpu_hours[Self::slot(*c)] += j.gpu_hours();
        }
        Breakdown {
            gpu_hours,
            total: gpu_hours.iter().sum(),
        }
    }

    fn slot(c: JobCategory) -> usize {
        match c {
            JobCategory::RepetitiveSingleGpu => 0,
            JobCategory::IsolatedSingleGpu => 1,
            JobCategory::Distributed => 2,
            JobCategory::Other => 3,
        }
    }

    /// Percentage share of a category.
    pub fn share(&self, c: JobCategory) -> f64 {
        if self.total == 0.0 {
            0.0
        } else {
            self.gpu_hours[Self::slot(c)] / self.total * 100.0
        }
    }

    /// Table 1 rows: `(category name, GPU hours, percent)`.
    pub fn rows(&self) -> Vec<(&'static str, f64, f64)> {
        [
            JobCategory::RepetitiveSingleGpu,
            JobCategory::IsolatedSingleGpu,
            JobCategory::Distributed,
            JobCategory::Other,
        ]
        .into_iter()
        .map(|c| (c.name(), self.gpu_hours[Self::slot(c)], self.share(c)))
        .collect()
    }
}

/// Classifier accuracy against the generator's ground truth (for
/// validating the pipeline, not part of the paper's methodology).
pub fn accuracy(jobs: &[Job], categories: &[JobCategory]) -> f64 {
    let hits = jobs
        .iter()
        .zip(categories)
        .filter(|(j, c)| j.truth == **c)
        .count();
    hits as f64 / jobs.len().max(1) as f64
}

/// A sampled utilization profile of one repetitive job (Figure 10): the
/// paper manually profiled 13 such jobs and found `sm_active <= 24%` and
/// `sm_occupancy <= 14%`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UtilizationSample {
    /// Job id the sample came from.
    pub job_id: u64,
    /// DCGM `sm_active` (0..=1).
    pub sm_active: f64,
    /// DCGM `sm_occupancy` (0..=1).
    pub sm_occupancy: f64,
}

/// Samples utilization profiles for `count` repetitive jobs, mirroring the
/// empirical distribution of Figure 10 (most jobs well under 20% active,
/// occupancy roughly half of that). Deterministic per job id.
pub fn sample_utilization(
    jobs: &[Job],
    categories: &[JobCategory],
    count: usize,
) -> Vec<UtilizationSample> {
    jobs.iter()
        .zip(categories)
        .filter(|(_, c)| **c == JobCategory::RepetitiveSingleGpu)
        .take(count)
        .map(|(j, _)| {
            // Deterministic pseudo-random in [0, 1) from the job id.
            let mut h = j.id.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xDEAD_BEEF;
            h ^= h >> 31;
            h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            h ^= h >> 33;
            let u = (h % 10_000) as f64 / 10_000.0;
            // Right-skewed: most mass near 5-15%, max ~24%.
            let sm_active = 0.03 + 0.21 * u * u;
            let sm_occupancy = sm_active * (0.4 + 0.2 * u);
            UtilizationSample {
                job_id: j.id,
                sm_active,
                sm_occupancy,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{generate, TraceCfg};

    fn classified() -> (Vec<Job>, Vec<JobCategory>) {
        let jobs = generate(&TraceCfg::small(), 11);
        let cats = classify(&jobs, &ClassifyCfg::default());
        (jobs, cats)
    }

    #[test]
    fn classifier_recovers_ground_truth_well() {
        let (jobs, cats) = classified();
        let acc = accuracy(&jobs, &cats);
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn repetitive_dominates_like_table1() {
        let (jobs, cats) = classified();
        let b = Breakdown::from_assignments(&jobs, &cats);
        let rep = b.share(JobCategory::RepetitiveSingleGpu);
        let iso = b.share(JobCategory::IsolatedSingleGpu);
        let dist = b.share(JobCategory::Distributed);
        assert!((30.0..65.0).contains(&rep), "repetitive {rep}%");
        assert!(iso < 12.0, "isolated {iso}%");
        assert!(rep > dist, "repetitive {rep}% vs distributed {dist}%");
        // Shares sum to 100.
        let total: f64 = b.rows().iter().map(|r| r.2).sum();
        assert!((total - 100.0).abs() < 1e-6);
    }

    #[test]
    fn distributed_detected_by_gpu_count() {
        let (jobs, cats) = classified();
        for (j, c) in jobs.iter().zip(&cats) {
            if j.gpus > 1 {
                assert_eq!(*c, JobCategory::Distributed);
            }
        }
    }

    #[test]
    fn bursts_require_similar_names() {
        // Two same-user jobs at the same time with dissimilar names must
        // not be merged into a repetitive group.
        let mk = |id, name: &str| Job {
            id,
            user: "u".into(),
            name: name.into(),
            submit_s: 0,
            duration_s: 3600,
            gpus: 1,
            partition: "V2".into(),
            pinned_node: false,
            truth: JobCategory::IsolatedSingleGpu,
        };
        let jobs = vec![
            mk(0, "pointnet_train_a"),
            mk(1, "totally-different-zzz"),
            mk(2, "gan_eval_b"),
        ];
        let cats = classify(&jobs, &ClassifyCfg::default());
        assert!(cats.iter().all(|c| *c != JobCategory::RepetitiveSingleGpu));
    }

    #[test]
    fn burst_of_similar_names_detected() {
        let mk = |id, name: String, t| Job {
            id,
            user: "u".into(),
            name,
            submit_s: t,
            duration_s: 3600,
            gpus: 1,
            partition: "V2".into(),
            pinned_node: false,
            truth: JobCategory::RepetitiveSingleGpu,
        };
        let jobs: Vec<Job> = (0..5)
            .map(|k| mk(k, format!("sweep_lr_0.{k:03}"), k))
            .collect();
        let cats = classify(&jobs, &ClassifyCfg::default());
        assert!(cats.iter().all(|c| *c == JobCategory::RepetitiveSingleGpu));
    }

    #[test]
    fn figure10_samples_match_paper_bounds() {
        let (jobs, cats) = classified();
        let samples = sample_utilization(&jobs, &cats, 13);
        assert_eq!(samples.len(), 13);
        for s in &samples {
            assert!(s.sm_active <= 0.24 + 1e-9, "sm_active {}", s.sm_active);
            assert!(s.sm_occupancy <= 0.15, "sm_occupancy {}", s.sm_occupancy);
            assert!(s.sm_occupancy < s.sm_active);
        }
    }
}
