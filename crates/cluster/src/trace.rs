//! Synthetic GPU-cluster job traces with the Vector-Institute workload
//! mix of the paper's Appendix A.

use rand::{Rng as _, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Ground-truth job category (what the generator intended; the classifier
/// must recover it from submission metadata alone).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JobCategory {
    /// Part of an automated sweep of single-GPU jobs.
    RepetitiveSingleGpu,
    /// A lone single-GPU job.
    IsolatedSingleGpu,
    /// Multi-GPU (single- or multi-node) training.
    Distributed,
    /// Anything else (interactive sessions, preprocessing, unknown).
    Other,
}

impl JobCategory {
    /// Display name matching the paper's Table 1.
    pub fn name(&self) -> &'static str {
        match self {
            JobCategory::RepetitiveSingleGpu => "Repetitive Single-GPU",
            JobCategory::IsolatedSingleGpu => "Isolated Single-GPU",
            JobCategory::Distributed => "Distributed",
            JobCategory::Other => "Other",
        }
    }
}

/// One submitted job, with the fields the Appendix-A methodology uses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    /// Unique job id.
    pub id: u64,
    /// Submitting user.
    pub user: String,
    /// Job name (often auto-generated with hyper-parameter suffixes).
    pub name: String,
    /// Submission time, seconds since the trace start.
    pub submit_s: u64,
    /// Duration in seconds.
    pub duration_s: u64,
    /// GPUs requested.
    pub gpus: usize,
    /// Cluster partition the job ran in (Appendix A: V1a/V1b/V2/V3).
    pub partition: String,
    /// Whether a specific node was requested (multi-node coordination).
    pub pinned_node: bool,
    /// Generator's ground-truth category (hidden from the classifier).
    pub truth: JobCategory,
}

impl Job {
    /// GPU-hours consumed.
    pub fn gpu_hours(&self) -> f64 {
        self.gpus as f64 * self.duration_s as f64 / 3600.0
    }
}

/// Configuration of the synthetic trace generator, calibrated so the
/// ground-truth GPU-hour mix matches the paper's Table 1
/// (46.2% / 3.5% / 24.0% / 26.3%).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceCfg {
    /// Number of users submitting jobs.
    pub users: usize,
    /// Trace length in days (the paper analyzed two months).
    pub days: u64,
    /// Target total number of jobs (the paper's trace has 51K).
    pub jobs: usize,
    /// Partitions as `(name, gpu count)`; jobs land in a partition with
    /// probability proportional to its capacity.
    pub partitions: Vec<(String, usize)>,
}

impl Default for TraceCfg {
    fn default() -> Self {
        TraceCfg {
            users: 501, // the Vector community size in the paper
            days: 62,
            jobs: 51_338,
            // Appendix A: V1a (200 P100), V1b (40 T4), V2 (480 T4),
            // V3 (240 RTX6000).
            partitions: vec![
                ("V1a".into(), 200),
                ("V1b".into(), 40),
                ("V2".into(), 480),
                ("V3".into(), 240),
            ],
        }
    }
}

/// A small default config for fast tests.
impl TraceCfg {
    /// Reduced-size config for unit tests.
    pub fn small() -> Self {
        TraceCfg {
            users: 40,
            days: 14,
            jobs: 3_000,
            partitions: vec![("V2".into(), 480), ("V3".into(), 240)],
        }
    }
}

const MODEL_STEMS: [&str; 8] = [
    "pointnet",
    "dcgan64",
    "resnet18",
    "bertsmall",
    "unet3d",
    "lstmnlp",
    "vae3d",
    "gnnrec",
];
const SWEEP_PARAMS: [&str; 4] = ["lr", "wd", "seed", "gamma"];

/// Generates a synthetic cluster trace.
///
/// Repetitive jobs are emitted in bursts: one user submits `8..=64`
/// single-GPU jobs within 60 seconds whose names share a stem and differ
/// only in a hyper-parameter suffix — exactly the signature the Appendix-A
/// classifier looks for.
pub fn generate(cfg: &TraceCfg, seed: u64) -> Vec<Job> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let horizon = cfg.days * 24 * 3600;
    let mut jobs = Vec::with_capacity(cfg.jobs);
    let mut id = 0u64;
    let capacity: usize = cfg.partitions.iter().map(|(_, g)| g).sum();
    assert!(capacity > 0, "trace needs at least one partition with GPUs");
    let pick_partition = |rng: &mut ChaCha8Rng| -> String {
        let mut roll = rng.gen_range(0..capacity);
        for (name, gpus) in &cfg.partitions {
            if roll < *gpus {
                return name.clone();
            }
            roll -= gpus;
        }
        cfg.partitions[0].0.clone()
    };

    while jobs.len() < cfg.jobs {
        let user = format!("user{:04}", rng.gen_range(0..cfg.users));
        let submit = rng.gen_range(0..horizon);
        let partition = pick_partition(&mut rng);
        // Category mix chosen to land near Table 1 GPU-hour shares:
        // repetitive bursts have many medium jobs; distributed jobs are
        // few but use many GPUs; "other" jobs are plentiful but small.
        // Probabilities chosen so expected GPU-hours land on Table 1:
        // bursts are rare events but consume ~160 GPU-h each.
        let roll: f64 = rng.gen();
        if roll < 0.040 {
            // A repetitive sweep burst.
            let stem = MODEL_STEMS[rng.gen_range(0..MODEL_STEMS.len())];
            let param = SWEEP_PARAMS[rng.gen_range(0..SWEEP_PARAMS.len())];
            let burst = rng.gen_range(8..=64usize);
            let duration = rng.gen_range(1800..28_800u64); // 0.5 - 8 h
            for k in 0..burst {
                if jobs.len() >= cfg.jobs {
                    break;
                }
                jobs.push(Job {
                    id,
                    user: user.clone(),
                    // Hyper-parameter suffixes vary in at most two digits,
                    // like real sweep launchers.
                    name: format!("{stem}_train_{param}{:.4}", 0.01 * (k + 1) as f64),
                    submit_s: submit + rng.gen_range(0..60),
                    duration_s: duration + rng.gen_range(0..1800),
                    gpus: 1,
                    partition: partition.clone(),
                    pinned_node: false,
                    truth: JobCategory::RepetitiveSingleGpu,
                });
                id += 1;
            }
        } else if roll < 0.277 {
            // Isolated single-GPU job.
            let stem = MODEL_STEMS[rng.gen_range(0..MODEL_STEMS.len())];
            jobs.push(Job {
                id,
                user,
                name: format!("{stem}_dev_run{}", rng.gen_range(0..1000)),
                submit_s: submit,
                duration_s: rng.gen_range(600..14_400),
                gpus: 1,
                partition: partition.clone(),
                pinned_node: false,
                truth: JobCategory::IsolatedSingleGpu,
            });
            id += 1;
        } else if roll < 0.388 {
            // Distributed training.
            let stem = MODEL_STEMS[rng.gen_range(0..MODEL_STEMS.len())];
            jobs.push(Job {
                id,
                user,
                name: format!("{stem}_ddp_{}gpu", 1 << rng.gen_range(1..4)),
                submit_s: submit,
                duration_s: rng.gen_range(3600..43_200),
                gpus: 1 << rng.gen_range(1..4), // 2 - 8 GPUs
                partition: partition.clone(),
                pinned_node: rng.gen_bool(0.5),
                truth: JobCategory::Distributed,
            });
            id += 1;
        } else {
            // Other: notebooks, preprocessing, short experiments.
            jobs.push(Job {
                id,
                user,
                name: format!("misc_{}", rng.gen_range(0..100_000)),
                submit_s: submit,
                duration_s: rng.gen_range(300..36_000),
                gpus: if rng.gen_bool(0.9) { 1 } else { 2 },
                partition,
                pinned_node: rng.gen_bool(0.1),
                truth: JobCategory::Other,
            });
            id += 1;
        }
    }
    jobs.sort_by_key(|j| j.submit_s);
    jobs
}

/// Per-partition GPU-hour totals, in the order of [`TraceCfg::partitions`].
pub fn partition_hours(jobs: &[Job], cfg: &TraceCfg) -> Vec<(String, f64)> {
    cfg.partitions
        .iter()
        .map(|(name, _)| {
            let hours: f64 = jobs
                .iter()
                .filter(|j| &j.partition == name)
                .map(Job::gpu_hours)
                .sum();
            (name.clone(), hours)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_volume() {
        let jobs = generate(&TraceCfg::small(), 1);
        assert_eq!(jobs.len(), 3_000);
        assert!(jobs.windows(2).all(|w| w[0].submit_s <= w[1].submit_s));
    }

    #[test]
    fn deterministic_by_seed() {
        let a = generate(&TraceCfg::small(), 7);
        let b = generate(&TraceCfg::small(), 7);
        assert_eq!(a, b);
        let c = generate(&TraceCfg::small(), 8);
        assert_ne!(a, c);
    }

    #[test]
    fn repetitive_jobs_are_single_gpu_bursts() {
        let jobs = generate(&TraceCfg::small(), 2);
        for j in jobs
            .iter()
            .filter(|j| j.truth == JobCategory::RepetitiveSingleGpu)
        {
            assert_eq!(j.gpus, 1);
            assert!(!j.pinned_node);
        }
    }

    #[test]
    fn ground_truth_mix_matches_table1_shape() {
        // Repetitive single-GPU jobs must dominate GPU hours (paper: 46.2%),
        // and clearly exceed isolated single-GPU usage (3.5%).
        let jobs = generate(&TraceCfg::default(), 3);
        let mut hours = std::collections::HashMap::new();
        for j in &jobs {
            *hours.entry(j.truth).or_insert(0.0) += j.gpu_hours();
        }
        let total: f64 = hours.values().sum();
        let share = |c: JobCategory| hours.get(&c).copied().unwrap_or(0.0) / total;
        let rep = share(JobCategory::RepetitiveSingleGpu);
        let iso = share(JobCategory::IsolatedSingleGpu);
        let dist = share(JobCategory::Distributed);
        assert!((0.35..0.60).contains(&rep), "repetitive share {rep}");
        assert!(iso < 0.10, "isolated share {iso}");
        assert!((0.10..0.40).contains(&dist), "distributed share {dist}");
        assert!(rep > dist && dist > iso);
    }

    #[test]
    fn gpu_hours_accounting() {
        let j = Job {
            id: 0,
            user: "u".into(),
            name: "n".into(),
            submit_s: 0,
            duration_s: 7200,
            gpus: 4,
            partition: "V2".into(),
            pinned_node: false,
            truth: JobCategory::Distributed,
        };
        assert_eq!(j.gpu_hours(), 8.0);
    }

    #[test]
    fn partitions_fill_proportionally_to_capacity() {
        let cfg = TraceCfg::default();
        let jobs = generate(&cfg, 4);
        let hours = partition_hours(&jobs, &cfg);
        assert_eq!(hours.len(), 4);
        let total: f64 = hours.iter().map(|(_, h)| h).sum();
        // V2 (480 of 960 GPUs) should carry roughly half the hours.
        let v2 = hours.iter().find(|(n, _)| n == "V2").unwrap().1;
        let share = v2 / total;
        assert!((0.38..0.62).contains(&share), "V2 share {share}");
        // Every partition sees some work.
        assert!(hours.iter().all(|(_, h)| *h > 0.0));
    }

    #[test]
    fn serde_round_trip() {
        let jobs = generate(&TraceCfg::small(), 5);
        let json = serde_json::to_string(&jobs[..10]).unwrap();
        let back: Vec<Job> = serde_json::from_str(&json).unwrap();
        assert_eq!(&jobs[..10], &back[..]);
    }
}
