//! Property-based tests of the Levenshtein metric, the classifier, and
//! the open-loop arrival thinning.

use hfta_cluster::levenshtein::{distance, similarity};
use hfta_cluster::replay::{
    normalize_arrivals, normalize_arrivals_open, OpenLoopCfg, SweepArrival,
};
use hfta_cluster::{classify, trace};
use proptest::prelude::*;

fn name() -> impl Strategy<Value = String> {
    "[a-z0-9_.]{0,20}"
}

proptest! {
    #[test]
    fn distance_identity(a in name()) {
        prop_assert_eq!(distance(&a, &a), 0);
        prop_assert!((similarity(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn distance_symmetry(a in name(), b in name()) {
        prop_assert_eq!(distance(&a, &b), distance(&b, &a));
    }

    #[test]
    fn distance_triangle_inequality(a in name(), b in name(), c in name()) {
        prop_assert!(distance(&a, &c) <= distance(&a, &b) + distance(&b, &c));
    }

    #[test]
    fn distance_bounded_by_longer_string(a in name(), b in name()) {
        let d = distance(&a, &b);
        let max_len = a.chars().count().max(b.chars().count());
        prop_assert!(d <= max_len);
        let s = similarity(&a, &b);
        prop_assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn single_edit_costs_one(a in "[a-z]{1,15}", pos_frac in 0.0f64..1.0) {
        let chars: Vec<char> = a.chars().collect();
        let pos = ((chars.len() as f64 - 1.0) * pos_frac) as usize;
        let mut mutated = chars.clone();
        mutated[pos] = if mutated[pos] == 'z' { 'a' } else { 'z' };
        let b: String = mutated.into_iter().collect();
        let expected = usize::from(b != a);
        prop_assert_eq!(distance(&a, &b), expected);
    }

    #[test]
    fn classifier_is_deterministic_and_total(seed in 0u64..64) {
        let cfg = trace::TraceCfg { users: 10, days: 3, jobs: 200, ..trace::TraceCfg::small() };
        let jobs = trace::generate(&cfg, seed);
        let c1 = classify::classify(&jobs, &classify::ClassifyCfg::default());
        let c2 = classify::classify(&jobs, &classify::ClassifyCfg::default());
        prop_assert_eq!(&c1, &c2);
        prop_assert_eq!(c1.len(), jobs.len());
        // Breakdown shares always sum to 100%.
        let b = classify::Breakdown::from_assignments(&jobs, &c1);
        let total: f64 = b.rows().iter().map(|r| r.2).sum();
        prop_assert!((total - 100.0).abs() < 1e-9);
    }

    #[test]
    fn open_loop_thinning_preserves_ordering_and_bounds(
        gaps in prop::collection::vec(0u64..5_000, 0..80),
        span_s in 0.0f64..100.0,
        rate in 0.0f64..1.5,
        seed in any::<u64>(),
    ) {
        // Arrivals with non-decreasing submit times, as sweep_arrivals
        // guarantees.
        let mut t = 0u64;
        let arrivals: Vec<SweepArrival> = gaps.iter().map(|g| {
            t += g;
            SweepArrival { submit_s: t, user: "u".into(), stem: "s".into(), trials: 8 }
        }).collect();
        let closed = normalize_arrivals(&arrivals, span_s);
        let cfg = OpenLoopCfg { rate_scale: rate, seed };
        let kept = normalize_arrivals_open(&arrivals, span_s, &cfg);

        // Deterministic under the same seed.
        prop_assert_eq!(&kept, &normalize_arrivals_open(&arrivals, span_s, &cfg));
        // Indices strictly increase: thinning never reorders bursts.
        prop_assert!(kept.windows(2).all(|w| w[0].0 < w[1].0));
        // Arrival instants stay non-decreasing and inside [0, span].
        prop_assert!(kept.windows(2).all(|w| w[0].1 <= w[1].1));
        prop_assert!(kept.iter().all(|&(_, s)| (0.0..=span_s).contains(&s)));
        // Thinning only drops bursts; kept instants match the closed-loop
        // rescale exactly (the spacing structure is preserved, not scaled).
        prop_assert!(kept.iter().all(|&(i, s)| s == closed[i]));
        // Rate >= 1 is the identity thinning.
        if rate >= 1.0 {
            prop_assert_eq!(kept.len(), arrivals.len());
        }
    }

    #[test]
    fn multi_gpu_jobs_never_classified_repetitive(seed in 0u64..64) {
        let cfg = trace::TraceCfg { users: 10, days: 3, jobs: 200, ..trace::TraceCfg::small() };
        let jobs = trace::generate(&cfg, seed);
        let cats = classify::classify(&jobs, &classify::ClassifyCfg::default());
        for (j, c) in jobs.iter().zip(&cats) {
            if j.gpus > 1 {
                prop_assert_ne!(*c, trace::JobCategory::RepetitiveSingleGpu);
            }
        }
    }
}
