//! Integration tests for the elastic fusion scheduler: bit-identity of
//! lane surgery through a full ASHA run, makespan ordering of the three
//! policies, run determinism, and telemetry wiring.

use hfta_sched::{
    asha::RungPolicy,
    backend::ArrayBackend,
    linear::{LinearBackend, LinearTrialCfg},
    sched::{run, Policy, SchedCfg, SchedRun},
    trial::{Trial, TrialStatus},
};
use hfta_sim::{DeviceFleet, DeviceSpec};
use hfta_telemetry::Profiler;

fn arrivals(n: usize) -> Vec<(f64, LinearTrialCfg)> {
    (0..n)
        .map(|i| {
            let cfg = LinearTrialCfg {
                // A deterministic log-ish grid of learning rates.
                lr: 0.08 / (1.0 + 0.5 * i as f32),
                // Two trials diverge inside the first rung segment, before
                // any early-stopping decision can reach them, so every
                // policy must sentinel-kill them.
                poison_at: if i == 3 || i == 7 { Some(1) } else { None },
            };
            // Trials trickle in, a small burst at a time.
            ((i / 4) as f64 * 1e-4, cfg)
        })
        .collect()
}

fn cfg(policy: Policy) -> SchedCfg {
    SchedCfg {
        policy,
        rung: RungPolicy {
            base_steps: 2,
            eta: 2,
            rungs: 3,
        },
        width_cap: 4,
    }
}

fn run_policy(policy: Policy, n: usize) -> SchedRun {
    let backend = LinearBackend::default();
    let mut fleet = DeviceFleet::homogeneous(DeviceSpec::v100(), false, 2);
    run(&backend, &mut fleet, &arrivals(n), &cfg(policy))
}

/// The headline invariant: a trial that survived to the end under the
/// elastic policy — through rung evictions, per-rung buffering, and
/// re-packs into differently-shaped arrays on different devices — has
/// final parameter *and* optimizer-state lanes bit-identical to the same
/// trial trained solo, uninterrupted, in a width-1 array.
#[test]
fn elastic_survivors_are_bit_identical_to_solo_runs() {
    let n = 12;
    let outcome = run_policy(Policy::Elastic, n);
    assert!(
        outcome.report.repacks > 0,
        "elastic run never re-packed; test exercises nothing"
    );
    assert!(outcome.report.finished > 0, "no trial finished");
    let backend = LinearBackend::default();
    let total_steps = cfg(Policy::Elastic).rung.total_steps_at(2);
    let arrivals = arrivals(n);
    for (id, state) in &outcome.final_states {
        let trial = Trial {
            id: *id,
            config: arrivals[*id as usize].1,
        };
        let mut solo = backend.build(&[trial]);
        backend.train(&mut solo, total_steps);
        let solo_state = backend.extract(&solo, 0);
        assert_eq!(state.step_count, solo_state.step_count);
        for (a, b) in state.params.iter().zip(&solo_state.params) {
            assert_eq!(a.to_vec(), b.to_vec(), "trial {id}: param lanes diverged");
        }
        for (a, b) in state.opt_state.iter().zip(&solo_state.opt_state) {
            for (sa, sb) in a.iter().zip(b) {
                assert_eq!(
                    sa.to_vec(),
                    sb.to_vec(),
                    "trial {id}: optimizer lanes diverged"
                );
            }
        }
    }
}

#[test]
fn poisoned_trials_are_killed_under_every_policy() {
    for policy in [Policy::Serial, Policy::StaticFusion, Policy::Elastic] {
        let outcome = run_policy(policy, 12);
        assert_eq!(
            outcome.statuses[3],
            TrialStatus::Killed,
            "{} missed poisoned trial 3",
            policy.name()
        );
        assert_eq!(outcome.statuses[7], TrialStatus::Killed);
        assert_eq!(outcome.report.killed, 2, "{}", policy.name());
        // Every trial reached a terminal state.
        assert!(outcome.statuses.iter().all(|s| *s != TrialStatus::Pending));
        assert_eq!(
            outcome.report.finished + outcome.report.stopped + outcome.report.killed,
            12
        );
    }
}

/// Table-7-style headline: elastic re-packing beats static fusion beats
/// the serial baseline on the same trial stream and fleet.
#[test]
fn makespan_orders_elastic_static_serial() {
    let serial = run_policy(Policy::Serial, 16).report;
    let stat = run_policy(Policy::StaticFusion, 16).report;
    let elastic = run_policy(Policy::Elastic, 16).report;
    assert!(
        elastic.makespan_s < stat.makespan_s,
        "elastic {} !< static {}",
        elastic.makespan_s,
        stat.makespan_s
    );
    assert!(
        stat.makespan_s < serial.makespan_s,
        "static {} !< serial {}",
        stat.makespan_s,
        serial.makespan_s
    );
    // Device-hours follow the same order: dead lanes and unfused steps
    // both burn capacity.
    assert!(elastic.device_hours < stat.device_hours);
    assert!(stat.device_hours < serial.device_hours);
    // Elastic keeps allocated width closer to live width than static.
    assert!(elastic.packing_efficiency > stat.packing_efficiency);
    assert_eq!(serial.max_width, 1);
    assert!(stat.max_width > 1);
}

#[test]
fn runs_are_deterministic() {
    for policy in [Policy::Serial, Policy::StaticFusion, Policy::Elastic] {
        let a = run_policy(policy, 12);
        let b = run_policy(policy, 12);
        assert_eq!(a.report, b.report, "{} report differs", policy.name());
        assert_eq!(a.statuses, b.statuses);
        assert_eq!(a.final_states.len(), b.final_states.len());
        for ((ia, sa), (ib, sb)) in a.final_states.iter().zip(&b.final_states) {
            assert_eq!(ia, ib);
            for (ta, tb) in sa.params.iter().zip(&sb.params) {
                assert_eq!(ta.to_vec(), tb.to_vec());
            }
        }
    }
}

#[test]
fn scheduler_streams_telemetry_under_a_profiler() {
    let profiler = Profiler::new("sched-integration");
    let report = {
        let _guard = profiler.install();
        let _exp = profiler.experiment("elastic");
        let outcome = run_policy(Policy::Elastic, 12);
        drop(_exp);
        assert!(outcome.report.repacks > 0);
        profiler.report()
    };
    let exp = report
        .experiments
        .iter()
        .find(|e| e.name == "elastic")
        .expect("experiment scope recorded");
    let counter = |name: &str| {
        exp.counters
            .iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("missing counter {name}"))
            .value
    };
    assert_eq!(counter("sched.arrivals"), 12.0);
    assert!(counter("sched.dispatches") >= 3.0);
    assert!(counter("sched.repacks") >= 1.0);
    assert!(counter("sched.evictions") >= 1.0);
    assert!(exp
        .gauges
        .iter()
        .any(|g| g.name == "sched.packing_efficiency"));
    // Per-trial loss streams key on stable trial ids across re-packs:
    // trial 0's stream covers every step it trained, in order.
    let models = exp.scalar_models();
    assert!(models.contains(&0), "trial 0 has no scalar stream");
    let stream = exp.scalar_stream(0, "loss").expect("loss stream");
    let steps: Vec<u64> = stream.points.iter().map(|p| p.step).collect();
    assert_eq!(steps.first(), Some(&0));
    assert!(steps.windows(2).all(|w| w[1] == w[0] + 1), "gapped stream");
}
