//! Property tests of the hfta-flight journal over random arrival streams:
//! every policy must emit, for every trial, a well-formed causal event
//! sequence (contiguous per-trial `seq`, legal lifecycle transitions,
//! exactly one terminal event) whose queue/compute/surgery/quarantine
//! decomposition sums *bit-exactly* to the trial's end-to-end latency.

use hfta_sched::{
    asha::RungPolicy,
    linear::{LinearBackend, LinearTrialCfg},
    sched::{run, Policy, SchedCfg, SchedRun},
    trial::TrialStatus,
};
use hfta_sim::{DeviceFleet, DeviceSpec};
use hfta_telemetry::flight::derive_all_strict;
use hfta_telemetry::{FlightEvent, FlightKind, Profiler, FLEET_TRIAL};
use proptest::prelude::*;

/// One generated trial: inter-arrival gap (grid ticks), lr index, poison.
type GenTrial = (u8, u8, bool);

/// Builds an arrival stream from generated `(gap, lr_idx, poison)` tuples.
/// Poison fires at global step 1 — inside rung 0, before any early-stop
/// decision — so a faulting lane is always still live when it diverges
/// (a dead rider faulting after its Evict would be a journal violation by
/// construction, not a scheduler bug).
fn arrivals(gen: &[GenTrial]) -> Vec<(f64, LinearTrialCfg)> {
    let mut t = 0.0;
    gen.iter()
        .map(|&(gap, lr_idx, poison)| {
            t += gap as f64 * 1e-4;
            let cfg = LinearTrialCfg {
                lr: 0.08 / (1.0 + 0.5 * lr_idx as f64 as f32),
                poison_at: if poison { Some(1) } else { None },
            };
            (t, cfg)
        })
        .collect()
}

fn cfg(policy: Policy) -> SchedCfg {
    SchedCfg {
        policy,
        rung: RungPolicy {
            base_steps: 2,
            eta: 2,
            rungs: 3,
        },
        width_cap: 4,
    }
}

/// Runs one policy under a fresh profiler and returns the outcome plus
/// the experiment's flight journal.
fn run_traced(policy: Policy, stream: &[(f64, LinearTrialCfg)]) -> (SchedRun, Vec<FlightEvent>) {
    let backend = LinearBackend::default();
    let mut fleet = DeviceFleet::homogeneous(DeviceSpec::v100(), false, 2);
    let profiler = Profiler::new("flight-prop");
    let _guard = profiler.install();
    let _exp = profiler.experiment(policy.name());
    let outcome = run(&backend, &mut fleet, stream, &cfg(policy));
    let events = profiler.flight_events();
    (outcome, events)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_policy_journals_every_trial_exactly(
        // Each u32 encodes one trial: gap ∈ 0..3, lr index ∈ 0..8, and a
        // ~15% poison chance (the vendored proptest has no tuple/weighted
        // strategies, so decode from a single integer draw).
        gen in prop::collection::vec(0u32..480, 3..10).prop_map(|raw| {
            raw.into_iter()
                .map(|x| ((x % 3) as u8, ((x / 3) % 8) as u8, x % 20 < 3))
                .collect::<Vec<GenTrial>>()
        }),
    ) {
        let stream = arrivals(&gen);
        for policy in [Policy::Serial, Policy::StaticFusion, Policy::Elastic] {
            let (outcome, events) = run_traced(policy, &stream);

            // Strict derivation: any malformed sequence (gapped seq,
            // illegal transition, missing/duplicate terminal) is an Err.
            let slos = derive_all_strict(&events)
                .unwrap_or_else(|e| panic!("{}: malformed journal: {e}", policy.name()));

            // Exactly one complete timeline per submitted trial, no orphans.
            prop_assert_eq!(slos.len(), stream.len());
            for (i, slo) in slos.iter().enumerate() {
                prop_assert_eq!(slo.trial, i as u64);

                // The headline invariant: the decomposition telescopes
                // bit-exactly to end-to-end latency on the integer-ns grid.
                prop_assert_eq!(
                    slo.queue_ns + slo.compute_ns + slo.surgery_ns + slo.quarantine_ns,
                    slo.e2e_ns()
                );

                // Terminal kind and fault flag agree with the scheduler's
                // own status accounting.
                match outcome.statuses[i] {
                    TrialStatus::Finished => {
                        prop_assert_eq!(slo.outcome, FlightKind::Complete);
                        prop_assert!(!slo.faulted, "{}: finished trial {i} faulted", policy.name());
                        prop_assert_eq!(slo.quarantine_ns, 0u64);
                    }
                    TrialStatus::Stopped => {
                        prop_assert_eq!(slo.outcome, FlightKind::Evict);
                        prop_assert!(!slo.faulted, "{}: stopped trial {i} faulted", policy.name());
                    }
                    TrialStatus::Killed => {
                        prop_assert_eq!(slo.outcome, FlightKind::Evict);
                        prop_assert!(slo.faulted, "{}: killed trial {i} not faulted", policy.name());
                    }
                    TrialStatus::Pending => prop_assert!(false, "trial {i} never terminated"),
                }
            }

            // Poisoned trials fault; clean streams don't.
            let any_poison = gen.iter().any(|&(_, _, p)| p);
            prop_assert_eq!(slos.iter().any(|s| s.faulted), any_poison);

            // Fleet-lane bookkeeping rides outside the per-trial state
            // machine: bind/release pairs exist and carry FLEET_TRIAL.
            let binds = events.iter().filter(|e| e.kind == FlightKind::DeviceBind).count();
            let releases = events.iter().filter(|e| e.kind == FlightKind::DeviceRelease).count();
            prop_assert!(binds > 0, "{}: no DeviceBind events", policy.name());
            prop_assert_eq!(binds, releases);
            prop_assert!(
                events.iter()
                    .filter(|e| matches!(e.kind, FlightKind::DeviceBind | FlightKind::DeviceRelease))
                    .all(|e| e.trial == FLEET_TRIAL),
                "{}: fleet events under a trial id", policy.name()
            );

            // The report's summed decomposition equals the per-trial sums.
            let sum_us = |f: fn(&hfta_telemetry::TrialSlo) -> u64| {
                slos.iter().map(|s| f(s) as f64 / 1e3).sum::<f64>()
            };
            let r = &outcome.report;
            prop_assert!((r.queue_us - sum_us(|s| s.queue_ns)).abs() < 1e-9);
            prop_assert!((r.compute_us - sum_us(|s| s.compute_ns)).abs() < 1e-9);
            prop_assert!((r.surgery_us - sum_us(|s| s.surgery_ns)).abs() < 1e-9);
            prop_assert!((r.quarantine_us - sum_us(|s| s.quarantine_ns)).abs() < 1e-9);
        }
    }
}
