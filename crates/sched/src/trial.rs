//! Tuning trials and their lifecycle states.

/// One tuning trial: a hyper-parameter configuration submitted at a point
/// in simulated time. The id is the trial's stable identity everywhere —
/// telemetry scalar streams, sentinel events, and re-packed arrays all key
/// on it, so a trial keeps its history across lane moves.
#[derive(Debug, Clone, PartialEq)]
pub struct Trial<C> {
    /// Stable trial id (also the telemetry model id).
    pub id: u64,
    /// Backend-specific hyper-parameter configuration.
    pub config: C,
}

/// Where a trial ended up once the scheduler run is over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrialStatus {
    /// Still waiting or training (only seen mid-run).
    Pending,
    /// Trained to the final rung.
    Finished,
    /// Early-stopped by the successive-halving rule at a rung boundary.
    Stopped,
    /// Quarantined by a divergence sentinel and evicted.
    Killed,
}
