//! Fusibility-aware packing: before dispatching a fresh array, the
//! scheduler can ask the auto-fusion planner how much of a candidate
//! lane set actually fuses, and trim the pack when tail lanes would ride
//! along mostly serial.
//!
//! Backends opt in by implementing
//! [`crate::ArrayBackend::lane_graph`]; the default (`None`) keeps the
//! legacy width selection, so existing backends and their golden
//! schedules are unchanged. Homogeneous sweeps always fuse fully and are
//! likewise unchanged — the planner reports fraction 1.0 at every prefix
//! and the cap wins.

use hfta_plan::{FusionPlan, ModelGraph};

/// The planner's verdict on a candidate pack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PackDecision {
    /// How many leading candidates to fuse into the fresh array.
    pub lanes: usize,
    /// Fraction of the chosen pack's lane-ops that run fused.
    pub fused_fraction: f64,
}

/// Chooses how many of the queued `graphs` (in arrival order, already
/// truncated to the device's width cap) to pack into one array.
///
/// Maximizes the *effective fused width* `k * fused_fraction(prefix_k)`
/// — the planner's estimate of how many lanes' worth of work actually
/// shares kernels. Ties break toward the narrower pack: a tail lane that
/// adds no fused work is better dispatched alongside its own kind in the
/// next array. A fully homogeneous queue always packs to the cap (the
/// score strictly grows with width); a queue whose tail switches
/// architecture packs the fusible head.
///
/// Invalid graphs (shape errors) fall back to a width-1 decision rather
/// than panicking mid-schedule.
pub fn plan_pack(graphs: &[ModelGraph]) -> PackDecision {
    assert!(!graphs.is_empty(), "plan_pack needs at least one candidate");
    let mut best = PackDecision {
        lanes: 1,
        fused_fraction: 1.0,
    };
    let mut best_score = f64::MIN;
    for k in 1..=graphs.len() {
        let Ok(plan) = FusionPlan::plan(&graphs[..k]) else {
            break;
        };
        let fraction = plan.fused_fraction();
        let score = k as f64 * fraction;
        if score > best_score {
            best_score = score;
            best = PackDecision {
                lanes: k,
                fused_fraction: fraction,
            };
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfta_nn::layers::{Conv2dCfg, LinearCfg};
    use hfta_plan::OpSpec;

    fn arch(channels: usize) -> ModelGraph {
        ModelGraph::new(
            format!("c{channels}"),
            vec![2, 4, 4],
            vec![
                OpSpec::conv2d(
                    Conv2dCfg::new(2, channels, 3)
                        .stride(1)
                        .padding(1)
                        .bias(false),
                ),
                OpSpec::relu(),
                OpSpec::flatten(),
                OpSpec::linear(LinearCfg::new(channels * 16, 3)),
            ],
        )
    }

    #[test]
    fn homogeneous_queue_packs_to_cap() {
        let graphs = vec![arch(4), arch(4), arch(4)];
        let d = plan_pack(&graphs);
        assert_eq!(d.lanes, 3);
        assert_eq!(d.fused_fraction, 1.0);
    }

    #[test]
    fn arch_switch_packs_the_fusible_head() {
        // Three isomorphic lanes then one disjoint arch: packing all 4
        // scores 4 * (12/16) = 3.0, tying the head's 3 * 1.0 — the tie
        // breaks toward the fully fused head.
        let graphs = vec![arch(4), arch(4), arch(4), arch(5)];
        let d = plan_pack(&graphs);
        assert_eq!(d.lanes, 3, "{d:?}");
        assert_eq!(d.fused_fraction, 1.0);
    }

    #[test]
    fn single_candidate_is_width_one() {
        let d = plan_pack(&[arch(2)]);
        assert_eq!(d.lanes, 1);
    }
}
