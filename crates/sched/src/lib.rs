//! # hfta-sched
//!
//! The elastic fusion scheduler: event-driven multi-device orchestration
//! of hyper-parameter tuning trials over HFTA fused arrays.
//!
//! The HFTA paper fuses a *fixed* set of sibling jobs into one array
//! (§3); this crate closes the loop with the tuning workflow the paper
//! targets (§6): trials arrive over time (replayed from `hfta-cluster`
//! traces), train under a successive-halving rung schedule, and die early
//! — so a static array's allocated width decays into dead lanes. The
//! scheduler's answer is **lane surgery** (`hfta-core::surgery`): at every
//! rung boundary survivors are extracted — parameter *and* optimizer-state
//! lanes, bit-identically — buffered, and re-packed into fresh full-width
//! arrays, keeping allocated width equal to live trials.
//!
//! * [`trial`] — trial identity and lifecycle;
//! * [`asha`] — rung geometry and the asynchronous promotion ledger;
//! * [`backend`] — the training-backend abstraction ([`ArrayBackend`]);
//! * [`linear`] — a concrete backend (fused linear classifiers) whose
//!   per-trial trajectories are bit-invariant to width/lane placement;
//! * [`sched`] — the event-driven engine and the serial / static-fusion /
//!   elastic policies, reporting makespan, device-hours, occupancy, and
//!   packing efficiency per policy.
//!
//! # Example — one elastic run over a burst of trials
//!
//! ```
//! use hfta_sched::{
//!     asha::RungPolicy,
//!     linear::{LinearBackend, LinearTrialCfg},
//!     sched::{run, Policy, SchedCfg},
//! };
//! use hfta_sim::{DeviceFleet, DeviceSpec};
//!
//! let backend = LinearBackend::default();
//! let mut fleet = DeviceFleet::homogeneous(DeviceSpec::v100(), false, 2);
//! let arrivals: Vec<(f64, LinearTrialCfg)> = (0..8)
//!     .map(|i| (0.0, LinearTrialCfg { lr: 0.05 / (i + 1) as f32, poison_at: None }))
//!     .collect();
//! let cfg = SchedCfg {
//!     policy: Policy::Elastic,
//!     rung: RungPolicy { base_steps: 2, eta: 2, rungs: 2 },
//!     width_cap: 4,
//! };
//! let outcome = run(&backend, &mut fleet, &arrivals, &cfg);
//! assert_eq!(outcome.report.trials, 8);
//! assert!(outcome.report.makespan_s > 0.0);
//! ```

#![warn(missing_docs)]

pub mod asha;
pub mod backend;
pub mod linear;
pub mod pack;
pub mod sched;
pub mod trial;

pub use asha::{RungLedger, RungPolicy};
pub use backend::{ArrayBackend, TrainOutcome};
pub use linear::{LinearBackend, LinearTrialCfg};
pub use pack::{plan_pack, PackDecision};
pub use sched::{run, Policy, SchedCfg, SchedReport, SchedRun};
pub use trial::{Trial, TrialStatus};
