//! Successive-halving rungs (the asynchronous variant, ASHA).
//!
//! Trials train in step *segments* bounded by rungs: rung `k` is evaluated
//! after `base_steps · eta^k` cumulative steps. The decision rule is
//! asynchronous — a trial reaching a rung is judged against the scores
//! recorded *at that rung so far*, promoting iff it ranks in the top
//! `ceil(n / eta)` of them — so no rung ever waits for stragglers and the
//! schedule stays event-driven.

/// The rung geometry: how many rungs, and how many steps each costs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RungPolicy {
    /// Cumulative steps at rung 0.
    pub base_steps: u64,
    /// Promotion divisor and per-rung budget multiplier (≥ 2 typical).
    pub eta: usize,
    /// Number of rungs; a trial surviving to rung `rungs − 1` finishes.
    pub rungs: usize,
}

impl RungPolicy {
    /// Cumulative steps a trial has taken once rung `rung` is evaluated.
    ///
    /// # Panics
    ///
    /// Panics if `rung >= self.rungs`.
    pub fn total_steps_at(&self, rung: usize) -> u64 {
        assert!(rung < self.rungs, "rung {rung} out of range");
        self.base_steps * (self.eta as u64).pow(rung as u32)
    }

    /// Steps in the segment leading up to rung `rung` (from the previous
    /// rung, or from step 0 for rung 0).
    pub fn segment_steps(&self, rung: usize) -> u64 {
        if rung == 0 {
            self.total_steps_at(0)
        } else {
            self.total_steps_at(rung) - self.total_steps_at(rung - 1)
        }
    }

    /// The last rung's index.
    pub fn final_rung(&self) -> usize {
        self.rungs - 1
    }

    /// Validates the geometry (positive steps, `eta ≥ 2`, at least one
    /// rung).
    ///
    /// # Panics
    ///
    /// Panics on a degenerate policy.
    pub fn validate(&self) {
        assert!(self.base_steps > 0, "base_steps must be positive");
        assert!(self.eta >= 2, "eta must be at least 2");
        assert!(self.rungs >= 1, "need at least one rung");
    }
}

/// The scores every trial reported at every rung, in arrival order — the
/// state behind the asynchronous promotion rule.
#[derive(Debug, Clone, Default)]
pub struct RungLedger {
    scores: Vec<Vec<f32>>,
}

impl RungLedger {
    /// An empty ledger for `rungs` rungs.
    pub fn new(rungs: usize) -> Self {
        RungLedger {
            scores: vec![Vec::new(); rungs],
        }
    }

    /// Records `score` at `rung` and decides promotion: `true` iff the
    /// score ranks in the top `ceil(n / eta)` of the `n` scores recorded
    /// at this rung so far (itself included). The first trial at a rung
    /// always promotes; rank counts strictly greater scores, so ties
    /// favor promotion deterministically.
    ///
    /// # Panics
    ///
    /// Panics if `rung` is out of range or `score` is NaN (divergence is
    /// the sentinels' job, not the ledger's).
    pub fn record_and_decide(&mut self, rung: usize, score: f32, eta: usize) -> bool {
        assert!(!score.is_nan(), "NaN scores must be quarantined upstream");
        let at = &mut self.scores[rung];
        at.push(score);
        let keep = at.len().div_ceil(eta);
        let rank = at.iter().filter(|&&s| s > score).count();
        rank < keep
    }

    /// Scores recorded at `rung` so far, in arrival order.
    pub fn scores_at(&self, rung: usize) -> &[f32] {
        &self.scores[rung]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rung_geometry() {
        let p = RungPolicy {
            base_steps: 2,
            eta: 3,
            rungs: 3,
        };
        p.validate();
        assert_eq!(p.total_steps_at(0), 2);
        assert_eq!(p.total_steps_at(2), 18);
        assert_eq!(p.segment_steps(0), 2);
        assert_eq!(p.segment_steps(1), 4);
        assert_eq!(p.segment_steps(2), 12);
        assert_eq!(p.final_rung(), 2);
    }

    #[test]
    fn first_arrival_always_promotes() {
        let mut ledger = RungLedger::new(1);
        assert!(ledger.record_and_decide(0, -10.0, 2));
    }

    #[test]
    fn promotes_top_fraction_asynchronously() {
        let mut ledger = RungLedger::new(1);
        // Scores arrive one by one; each decision uses only what's seen.
        assert!(ledger.record_and_decide(0, 1.0, 2)); // n=1, keep 1
        assert!(!ledger.record_and_decide(0, 0.5, 2)); // n=2, keep 1, rank 1
        assert!(ledger.record_and_decide(0, 2.0, 2)); // n=3, keep 2, rank 0
        assert!(!ledger.record_and_decide(0, 0.1, 2)); // n=4, keep 2, rank 3
        assert_eq!(ledger.scores_at(0).len(), 4);
    }

    #[test]
    fn ties_promote() {
        let mut ledger = RungLedger::new(1);
        assert!(ledger.record_and_decide(0, 1.0, 2));
        assert!(ledger.record_and_decide(0, 1.0, 2)); // rank 0 (strict >)
    }
}
