//! A concrete [`ArrayBackend`]: fused linear classifiers on synthetic
//! data, the workload of the repo's hyper-parameter tuning experiments.
//!
//! Everything a trial computes is a function of `(trial id, global step)`
//! alone: the trial's init weights come from a seed mixed from its id, and
//! every step's batch comes from a seed mixed from its id and the step
//! index. Array width and lane position never enter, so a trial's
//! trajectory is bit-identical whether it trains solo, in a width-8 array,
//! or across three re-packed arrays — the invariant the scheduler's lane
//! surgery relies on (and the integration tests assert exactly).

use hfta_core::{
    array::ModelArray,
    loss::{fused_cross_entropy, Reduction},
    ops::{FusedLinear, FusedParameter},
    optim::{FusedOptimizer, FusedSgd, PerModel},
    scope::{per_model_ce_losses, poison_model_lane, ScopeMonitor, SentinelCfg},
    surgery::{self, LaneState},
};
use hfta_nn::layers::{Linear, LinearCfg};
use hfta_sim::{JobMemory, Kernel, TrainingJob};
use hfta_telemetry::Profiler;
use hfta_tensor::Rng;

use crate::backend::{ArrayBackend, TrainOutcome};
use crate::trial::Trial;

/// SplitMix64-style avalanche mix of two words — the seed derivation for
/// per-trial init and per-(trial, step) batches.
fn mix(a: u64, b: u64) -> u64 {
    let mut x = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x
}

/// Hyper-parameters of one linear-classifier trial.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LinearTrialCfg {
    /// Learning rate (the swept hyper-parameter).
    pub lr: f32,
    /// Inject NaNs into the trial's gradient lane at this global step —
    /// a synthetic divergence for exercising sentinel kills.
    pub poison_at: Option<u64>,
}

/// Backend configuration: model/data shapes and shared seeds.
#[derive(Debug, Clone)]
pub struct LinearBackend {
    /// Base seed every trial/batch seed is mixed from.
    pub base_seed: u64,
    /// Batch size per model.
    pub n: usize,
    /// Input features.
    pub f_in: usize,
    /// Output classes.
    pub classes: usize,
    /// SGD momentum (shared across trials).
    pub momentum: f32,
    /// Divergence-sentinel thresholds for every array's monitor.
    pub sentinel: SentinelCfg,
}

impl Default for LinearBackend {
    fn default() -> Self {
        LinearBackend {
            base_seed: 0x48F7_A000,
            n: 8,
            f_in: 12,
            classes: 4,
            momentum: 0.9,
            sentinel: SentinelCfg::default(),
        }
    }
}

/// A live fused array of linear trials.
#[derive(Debug)]
pub struct LinearArray {
    array: ModelArray<FusedLinear>,
    params: Vec<FusedParameter>,
    opt: FusedSgd,
    monitor: ScopeMonitor,
    trials: Vec<Trial<LinearTrialCfg>>,
    step: u64,
}

impl LinearArray {
    /// Global steps every lane has taken.
    pub fn step(&self) -> u64 {
        self.step
    }

    /// The array width.
    pub fn b(&self) -> usize {
        self.array.b()
    }
}

impl LinearBackend {
    fn init_seed(&self, id: u64) -> u64 {
        mix(self.base_seed, id * 2 + 1)
    }

    fn batch_seed(&self, id: u64, step: u64) -> u64 {
        mix(mix(self.base_seed, id * 2), step)
    }

    fn assemble(&self, trials: &[Trial<LinearTrialCfg>]) -> LinearArray {
        assert!(!trials.is_empty(), "an array needs at least one trial");
        let cfg = LinearCfg::new(self.f_in, self.classes);
        let models: Vec<Linear> = trials
            .iter()
            .map(|t| Linear::new(cfg, &mut Rng::seed_from(self.init_seed(t.id))))
            .collect();
        let fused = FusedLinear::from_models(&models).expect("same-shape models always fuse");
        let array = ModelArray::new(fused);
        let params = array.fused_parameters();
        let lrs = PerModel::new(trials.iter().map(|t| t.config.lr).collect());
        let opt = FusedSgd::new(params.clone(), lrs, self.momentum)
            .expect("per-model lr count matches array width");
        let monitor = ScopeMonitor::with_model_ids(
            trials.len(),
            self.sentinel,
            trials.iter().map(|t| t.id).collect(),
        );
        LinearArray {
            array,
            params,
            opt,
            monitor,
            trials: trials.to_vec(),
            step: 0,
        }
    }
}

impl ArrayBackend for LinearBackend {
    type Config = LinearTrialCfg;
    type Array = LinearArray;

    fn build(&self, trials: &[Trial<LinearTrialCfg>]) -> LinearArray {
        self.assemble(trials)
    }

    fn splice(
        &self,
        trials: &[Trial<LinearTrialCfg>],
        lanes: &[LaneState],
        start_step: u64,
    ) -> LinearArray {
        let mut la = self.assemble(trials);
        surgery::splice_lanes_traced(lanes, &la.params, &mut la.opt);
        la.step = start_step;
        la
    }

    fn extract(&self, array: &LinearArray, lane: usize) -> LaneState {
        surgery::extract_lane_traced(&array.params, &array.opt, lane, array.trials[lane].id)
    }

    fn train(&self, la: &mut LinearArray, steps: u64) -> TrainOutcome {
        let b = la.b();
        let profiler = Profiler::current();
        let mut losses = vec![0.0f32; b];
        for _ in 0..steps {
            let gstep = la.step;
            let mut inputs = Vec::with_capacity(b);
            let mut targets = Vec::with_capacity(b * self.n);
            for t in &la.trials {
                let mut rng = Rng::seed_from(self.batch_seed(t.id, gstep));
                inputs.push(rng.randn([self.n, self.f_in]));
                targets.extend((0..self.n).map(|_| rng.below(self.classes)));
            }
            la.opt.zero_grad();
            let (_tape, logits) = la
                .array
                .forward_array(&inputs)
                .expect("same-shape batches always stack");
            losses = per_model_ce_losses(&logits, &targets);
            let loss = fused_cross_entropy(&logits, &targets, Reduction::Mean);
            loss.backward();
            for (i, t) in la.trials.iter().enumerate() {
                if t.config.poison_at == Some(gstep) && !la.opt.quarantined()[i] {
                    poison_model_lane(&la.params, i);
                }
            }
            la.monitor
                .after_backward(gstep, &losses, &la.params, &mut la.opt);
            la.opt.step();
            la.monitor.after_step(gstep, &la.params);
            if let Some(p) = &profiler {
                for (i, t) in la.trials.iter().enumerate() {
                    p.scalar(t.id, "loss", gstep, losses[i] as f64);
                }
            }
            la.step += 1;
        }
        TrainOutcome {
            scores: losses.iter().map(|&l| -l).collect(),
            killed: la.monitor.fired_models().to_vec(),
        }
    }

    fn job_profile(&self) -> TrainingJob {
        TrainingJob {
            name: "linear-sweep".into(),
            // Kernels sized right at the device's bandwidth-saturation
            // point (80 tiles × 16K elements), so every extra fused lane
            // costs real execution time — dead lanes are never free — while
            // heavy per-kernel launch/sync overhead gives fusion a strongly
            // sublinear step time, the paper's §2.2 regime.
            kernels: vec![Kernel::elementwise(80 * 16 * 1024); 20],
            host_us: 50.0,
            sync_us_per_kernel: 25.0,
            cpu_gap_fraction: 0.0,
            // Calibrated so a 16 GiB V100 (1.52 GiB framework reservation)
            // fits roughly ten fused lanes — the Table 5 max-B regime.
            memory: JobMemory {
                weights_gib: 0.08,
                activations_gib: 1.2,
                workspace_gib: 0.2,
            },
            models_per_job: 1,
            examples_per_iteration: self.n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trial(id: u64, lr: f32) -> Trial<LinearTrialCfg> {
        Trial {
            id,
            config: LinearTrialCfg {
                lr,
                poison_at: None,
            },
        }
    }

    #[test]
    fn trajectory_is_width_and_lane_invariant() {
        let backend = LinearBackend::default();
        // Trial 7 solo...
        let mut solo = backend.build(&[trial(7, 0.05)]);
        backend.train(&mut solo, 6);
        let solo_state = backend.extract(&solo, 0);
        // ...and the same trial as lane 2 of a width-4 array.
        let trials = vec![
            trial(3, 0.1),
            trial(5, 0.02),
            trial(7, 0.05),
            trial(9, 0.01),
        ];
        let mut fused = backend.build(&trials);
        backend.train(&mut fused, 6);
        let fused_state = backend.extract(&fused, 2);
        assert_eq!(solo_state.params.len(), fused_state.params.len());
        for (a, b) in solo_state.params.iter().zip(&fused_state.params) {
            assert_eq!(a.to_vec(), b.to_vec(), "param lanes diverged");
        }
        for (a, b) in solo_state.opt_state.iter().zip(&fused_state.opt_state) {
            for (sa, sb) in a.iter().zip(b) {
                assert_eq!(sa.to_vec(), sb.to_vec(), "optimizer lanes diverged");
            }
        }
    }

    #[test]
    fn splice_resumes_bit_identically() {
        let backend = LinearBackend::default();
        let trials = vec![trial(1, 0.05), trial(2, 0.03)];
        // Straight run: 4 steps.
        let mut straight = backend.build(&trials);
        backend.train(&mut straight, 4);
        // Split run: 2 steps, extract both lanes, splice, 2 more steps.
        let mut first = backend.build(&trials);
        backend.train(&mut first, 2);
        let lanes = vec![backend.extract(&first, 0), backend.extract(&first, 1)];
        let mut resumed = backend.splice(&trials, &lanes, first.step());
        assert_eq!(resumed.step(), 2);
        backend.train(&mut resumed, 2);
        for lane in 0..2 {
            let a = backend.extract(&straight, lane);
            let b = backend.extract(&resumed, lane);
            for (pa, pb) in a.params.iter().zip(&b.params) {
                assert_eq!(pa.to_vec(), pb.to_vec(), "lane {lane} params diverged");
            }
        }
    }

    #[test]
    fn poison_quarantines_only_its_lane() {
        let backend = LinearBackend::default();
        let mut poisoned_trial = trial(4, 0.05);
        poisoned_trial.config.poison_at = Some(1);
        let trials = vec![trial(1, 0.05), poisoned_trial];
        let mut array = backend.build(&trials);
        let outcome = backend.train(&mut array, 3);
        assert_eq!(outcome.killed, vec![false, true]);
        // The healthy lane is unaffected: bit-identical to a solo run.
        let mut solo = backend.build(&[trial(1, 0.05)]);
        backend.train(&mut solo, 3);
        let a = backend.extract(&solo, 0);
        let b = backend.extract(&array, 0);
        for (pa, pb) in a.params.iter().zip(&b.params) {
            assert_eq!(pa.to_vec(), pb.to_vec());
        }
    }

    #[test]
    fn job_profile_fits_a_v100_band() {
        use hfta_sim::{DeviceFleet, DeviceSpec};
        let backend = LinearBackend::default();
        let fleet = DeviceFleet::homogeneous(DeviceSpec::v100(), false, 1);
        let w = fleet.max_fused_width(0, &backend.job_profile(), 64);
        assert!((6..=14).contains(&w), "max width {w} outside Table 5 band");
    }
}
