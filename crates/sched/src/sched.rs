//! The event-driven elastic fusion scheduler.
//!
//! A [`run`] owns a [`DeviceFleet`] and a stream of trial arrivals and
//! plays one of three policies over a successive-halving rung schedule:
//!
//! * [`Policy::Serial`] — one trial per device per segment, the paper's
//!   baseline cluster behaviour;
//! * [`Policy::StaticFusion`] — arrivals packed into memory-capacity-wide
//!   fused arrays that stay intact for their whole life: lanes whose
//!   trials get early-stopped or sentinel-killed ride along as dead
//!   allocated width;
//! * [`Policy::Elastic`] — arrays dissolve at every rung boundary:
//!   survivors' lanes are extracted ([`ArrayBackend::extract`]), buffered
//!   per rung, and re-packed ([`ArrayBackend::splice`]) into fresh
//!   full-width arrays, so allocated width tracks live trials.
//!
//! Time is simulated: training segments execute eagerly (real math, so
//! scores, sentinels, and final weights are real) while their cost comes
//! from the fleet's per-device step-time model, and completions are
//! ordered on an event heap. Re-packing is bit-invisible to surviving
//! trials — the integration tests compare scheduler-produced final
//! weights against solo runs for exact equality.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

use hfta_core::surgery::LaneState;
use hfta_sim::{DeviceFleet, SharingPolicy, TrainingJob};
use hfta_telemetry::flight::{self, FlightCursor, FlightKind, FlightRecorder, SimSegment};
use hfta_telemetry::{LaneId, Profiler, SchedStats};
use serde::{Deserialize, Serialize};

use crate::asha::{RungLedger, RungPolicy};
use crate::backend::{ArrayBackend, TrainOutcome};
use crate::trial::{Trial, TrialStatus};

/// The scheduling policy under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// One trial per device, no fusion.
    Serial,
    /// Fused arrays that never change shape after dispatch.
    StaticFusion,
    /// Lane surgery at rung boundaries: evict, buffer, re-pack.
    Elastic,
}

impl Policy {
    /// Stable display name (report keys, Chrome-trace lane names).
    pub fn name(&self) -> &'static str {
        match self {
            Policy::Serial => "serial",
            Policy::StaticFusion => "static-fusion",
            Policy::Elastic => "elastic",
        }
    }

    fn sharing(&self) -> SharingPolicy {
        match self {
            Policy::Serial => SharingPolicy::Serial,
            _ => SharingPolicy::Hfta,
        }
    }
}

/// Scheduler configuration.
#[derive(Debug, Clone)]
pub struct SchedCfg {
    /// The policy to play.
    pub policy: Policy,
    /// The successive-halving rung geometry.
    pub rung: RungPolicy,
    /// Upper bound on fused width regardless of device memory.
    pub width_cap: usize,
}

/// The serializable outcome summary of one scheduler run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchedReport {
    /// Policy display name.
    pub policy: String,
    /// Trials submitted.
    pub trials: usize,
    /// Trials trained to the final rung.
    pub finished: usize,
    /// Trials early-stopped at a rung boundary.
    pub stopped: usize,
    /// Trials sentinel-killed (quarantined) mid-segment.
    pub killed: usize,
    /// Simulated seconds from first arrival to last completion.
    pub makespan_s: f64,
    /// Busy device-hours across the fleet.
    pub device_hours: f64,
    /// Busy device-seconds over `devices × makespan`.
    pub occupancy: f64,
    /// Live lane-seconds over allocated lane-seconds.
    pub packing_efficiency: f64,
    /// Arrays dispatched over the whole run (including re-packs).
    pub arrays_built: usize,
    /// Elastic re-pack operations (splice dispatches).
    pub repacks: usize,
    /// Lanes moved by re-packs.
    pub lanes_moved: usize,
    /// Widest array dispatched.
    pub max_width: usize,
    /// Fleet-wide p50 queue wait, simulated µs (hfta-flight; 0 without a
    /// profiler installed).
    pub queue_wait_p50_us: f64,
    /// Fleet-wide p99 queue wait, simulated µs.
    pub queue_wait_p99_us: f64,
    /// Fleet-wide p50 end-to-end trial latency, simulated µs.
    pub e2e_latency_p50_us: f64,
    /// Fleet-wide p99 end-to-end trial latency, simulated µs.
    pub e2e_latency_p99_us: f64,
    /// Summed per-trial queue-wait time, simulated µs.
    pub queue_us: f64,
    /// Summed per-trial rung-compute time, simulated µs.
    pub compute_us: f64,
    /// Summed per-trial lane-surgery (extract→re-dispatch) time, µs.
    pub surgery_us: f64,
    /// Summed per-trial quarantine (fault→evict) time, simulated µs.
    pub quarantine_us: f64,
}

/// Everything a run produces: the summary plus the trained artifacts.
#[derive(Debug)]
pub struct SchedRun {
    /// Serializable summary.
    pub report: SchedReport,
    /// Final parameter/optimizer lanes of every finished trial, sorted by
    /// trial id.
    pub final_states: Vec<(u64, LaneState)>,
    /// Final status of every trial, indexed by trial id.
    pub statuses: Vec<TrialStatus>,
}

#[derive(Debug)]
enum EventKind {
    SegmentDone(u64),
    Arrival(u64),
}

#[derive(Debug)]
struct Event {
    t: f64,
    prio: u8,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.t
            .total_cmp(&other.t)
            .then(self.prio.cmp(&other.prio))
            .then(self.seq.cmp(&other.seq))
    }
}

struct Running<A> {
    array: A,
    trial_ids: Vec<u64>,
    device: usize,
    rung: usize,
    width: usize,
    outcome: Option<TrainOutcome>,
    /// Persistent flight array id: assigned when the array is built or
    /// spliced, preserved across in-place rung continuations.
    aid: u64,
    /// Segment end on the integer ns grid (`start + steps * per_step`),
    /// so completion-edge flight events land exactly where rung-start
    /// arithmetic predicts and the SLO decomposition telescopes.
    seg_end_ns: u64,
}

/// Simulated seconds → the integer nanosecond flight grid.
fn ns(t: f64) -> u64 {
    (t * 1e9).round() as u64
}

struct Engine<'a, B: ArrayBackend> {
    backend: &'a B,
    fleet: &'a mut DeviceFleet,
    cfg: &'a SchedCfg,
    profile: TrainingJob,
    stats: SchedStats,
    profiler: Option<Profiler>,
    flight: FlightRecorder,
    device_lanes: Vec<Option<LaneId>>,
    configs: Vec<B::Config>,
    statuses: Vec<TrialStatus>,
    queue: VecDeque<u64>,
    /// `buffer[r]`: survivor lanes waiting to train rung `r` (Elastic).
    buffer: Vec<Vec<(u64, LaneState)>>,
    running: HashMap<u64, Running<B::Array>>,
    heap: BinaryHeap<Reverse<Event>>,
    ledger: RungLedger,
    seq: u64,
    next_array: u64,
    next_aid: u64,
    makespan_s: f64,
    final_states: Vec<(u64, LaneState)>,
    arrays_built: usize,
    repacks: usize,
    lanes_moved: usize,
    max_width: usize,
}

impl<B: ArrayBackend> Engine<'_, B> {
    fn push_event(&mut self, t: f64, prio: u8, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Event { t, prio, seq, kind }));
    }

    fn trial(&self, id: u64) -> Trial<B::Config> {
        Trial {
            id,
            config: self.configs[id as usize].clone(),
        }
    }

    /// Trains the next segment eagerly, books the device for its
    /// simulated duration, and schedules the completion event.
    fn start_segment(&mut self, device: usize, mut ra: Running<B::Array>, t: f64) {
        let steps = self.cfg.rung.segment_steps(ra.rung);
        // Segment timing on the integer ns flight grid, fixed before the
        // eager training call so mid-segment fault events (recorded by the
        // scope monitor through the ambient segment) share the same grid.
        let step_s =
            self.fleet
                .step_time_s(device, &self.profile, ra.width, self.cfg.policy.sharing());
        let start_ns = ns(t);
        let per_step_ns = (step_s * 1e9).round() as u64;
        let end_ns = start_ns + steps * per_step_ns;
        let base_step = if ra.rung == 0 {
            0
        } else {
            self.cfg.rung.total_steps_at(ra.rung - 1)
        };
        for (i, &tid) in ra.trial_ids.iter().enumerate() {
            if self.statuses[tid as usize] == TrialStatus::Pending {
                self.flight.record_with(
                    tid,
                    start_ns,
                    FlightKind::RungStart,
                    Some(device as u64),
                    Some(ra.aid),
                    Some(i as u64),
                    || format!("rung {} steps {steps}", ra.rung),
                );
            }
        }
        if let Some(p) = &self.profiler {
            p.set_flight_cursor(FlightCursor {
                t_ns: start_ns,
                device: Some(device as u64),
                array: Some(ra.aid),
            });
            p.set_sim_segment(Some(SimSegment {
                base_ns: start_ns,
                per_step_ns,
                base_step,
                device: device as u64,
                array: ra.aid,
            }));
        }
        let outcome = self.backend.train(&mut ra.array, steps);
        if let Some(p) = &self.profiler {
            p.set_sim_segment(None);
        }
        let live = ra
            .trial_ids
            .iter()
            .filter(|&&id| self.statuses[id as usize] == TrialStatus::Pending)
            .count();
        let dur = steps as f64 * step_s;
        self.fleet.occupy(device, t, dur, ra.width, live);
        // Attribute this segment's arithmetic: live lanes do useful work,
        // the whole allocated width burns device FLOPs.
        let per_lane_flops = steps as f64 * self.profile.total_flops() as f64;
        self.fleet.charge_flops(
            device,
            per_lane_flops * live as f64,
            per_lane_flops * ra.width as f64,
        );
        let end = t + dur;
        self.makespan_s = self.makespan_s.max(end);
        self.stats.dispatch(ra.width, live);
        self.arrays_built += 1;
        self.max_width = self.max_width.max(ra.width);
        if let (Some(p), Some(lane)) = (&self.profiler, &self.device_lanes[device]) {
            let name = format!("array[B={},live={}]@r{}", ra.width, live, ra.rung);
            p.begin_at(*lane, name.clone(), t * 1e6, Vec::new());
            p.end_at(*lane, name, end * 1e6);
            // Per-device utilization timeline (the Fig-8 feed): useful
            // FLOP/s over this segment as a fraction of the FP32 peak,
            // dropping to zero when the booking ends.
            let peak = self.fleet.sim(device).device().fp32_tflops * 1e12;
            let util = if dur > 0.0 && peak > 0.0 {
                (per_lane_flops * live as f64 / dur) / peak
            } else {
                0.0
            };
            let series = format!("sched/{}/util", self.fleet.name(device));
            p.counter_at(*lane, &series, t * 1e6, util);
            p.counter_at(*lane, &series, end * 1e6, 0.0);
        }
        ra.outcome = Some(outcome);
        ra.device = device;
        ra.seg_end_ns = end_ns;
        let key = self.next_array;
        self.next_array += 1;
        self.running.insert(key, ra);
        self.push_event(end, 0, EventKind::SegmentDone(key));
    }

    /// Applies a finished segment's outcome: sentinel kills, rung
    /// decisions, lane extraction/buffering (Elastic) or in-place
    /// continuation (Serial/StaticFusion).
    fn complete(&mut self, key: u64, t: f64) {
        let mut ra = self
            .running
            .remove(&key)
            .expect("completion for unknown array");
        let outcome = ra.outcome.take().expect("segment trained at dispatch");
        let final_rung = self.cfg.rung.final_rung();
        let end_ns = ra.seg_end_ns;
        let dev = Some(ra.device as u64);
        let arr = Some(ra.aid);
        // Ambient cursor for the Extract events lane surgery records.
        if let Some(p) = &self.profiler {
            p.set_flight_cursor(FlightCursor {
                t_ns: end_ns,
                device: dev,
                array: arr,
            });
        }
        let mut continues = false;
        for (i, &tid) in ra.trial_ids.iter().enumerate() {
            if self.statuses[tid as usize] != TrialStatus::Pending {
                continue; // dead lane riding along (StaticFusion)
            }
            let lane = Some(i as u64);
            if outcome.killed[i] {
                self.statuses[tid as usize] = TrialStatus::Killed;
                self.stats.evict(true);
                self.flight
                    .record_with(tid, end_ns, FlightKind::Evict, dev, arr, lane, || {
                        format!("sentinel kill at rung {}", ra.rung)
                    });
                continue;
            }
            self.flight
                .record_with(tid, end_ns, FlightKind::RungEnd, dev, arr, lane, || {
                    format!("rung {}", ra.rung)
                });
            if ra.rung == final_rung {
                self.statuses[tid as usize] = TrialStatus::Finished;
                self.stats.finish();
                self.final_states
                    .push((tid, self.backend.extract(&ra.array, i)));
                self.flight
                    .record_with(tid, end_ns, FlightKind::Complete, dev, arr, lane, || {
                        format!("finished rung {}", ra.rung)
                    });
                continue;
            }
            let promote =
                self.ledger
                    .record_and_decide(ra.rung, outcome.scores[i], self.cfg.rung.eta);
            if !promote {
                self.statuses[tid as usize] = TrialStatus::Stopped;
                self.stats.evict(false);
                self.flight
                    .record_with(tid, end_ns, FlightKind::Evict, dev, arr, lane, || {
                        format!("early-stopped at rung {}", ra.rung)
                    });
                continue;
            }
            self.flight
                .record_with(tid, end_ns, FlightKind::Promote, dev, arr, lane, || {
                    format!("to rung {}", ra.rung + 1)
                });
            match self.cfg.policy {
                Policy::Elastic => {
                    let lane = self.backend.extract(&ra.array, i);
                    self.buffer[ra.rung + 1].push((tid, lane));
                }
                _ => continues = true,
            }
        }
        if continues {
            ra.rung += 1;
            let device = ra.device;
            self.start_segment(device, ra, t);
        }
    }

    /// Splices up to `mem_cap` buffered rung-`rung` survivor lanes into a
    /// fresh array and dispatches it.
    fn dispatch_repack(&mut self, device: usize, rung: usize, mem_cap: usize, t: f64) {
        let take = mem_cap.min(self.buffer[rung].len());
        let taken: Vec<(u64, LaneState)> = self.buffer[rung].drain(..take).collect();
        let trials: Vec<Trial<B::Config>> = taken.iter().map(|(id, _)| self.trial(*id)).collect();
        let lanes: Vec<LaneState> = taken.into_iter().map(|(_, lane)| lane).collect();
        let start_step = self.cfg.rung.total_steps_at(rung - 1);
        let aid = self.next_aid;
        self.next_aid += 1;
        // Ambient cursor for the Splice events lane surgery records.
        if let Some(p) = &self.profiler {
            p.set_flight_cursor(FlightCursor {
                t_ns: ns(t),
                device: Some(device as u64),
                array: Some(aid),
            });
        }
        let array = self.backend.splice(&trials, &lanes, start_step);
        self.stats.repack(lanes.len());
        self.repacks += 1;
        self.lanes_moved += lanes.len();
        let width = lanes.len();
        for (i, tr) in trials.iter().enumerate() {
            self.flight.record_with(
                tr.id,
                ns(t),
                FlightKind::Dispatch,
                Some(device as u64),
                Some(aid),
                Some(i as u64),
                || format!("repack rung {rung} width {width}"),
            );
        }
        let ra = Running {
            array,
            trial_ids: trials.iter().map(|tr| tr.id).collect(),
            device,
            rung,
            width,
            outcome: None,
            aid,
            seg_end_ns: 0,
        };
        self.start_segment(device, ra, t);
    }

    /// Builds a fresh rung-0 array from the arrival queue and dispatches
    /// it.
    fn dispatch_fresh(&mut self, device: usize, mem_cap: usize, t: f64) {
        let mut width = match self.cfg.policy {
            Policy::Serial => 1,
            _ => mem_cap.min(self.queue.len()),
        };
        if width > 1 {
            // Fusibility-aware trim: when the backend can describe every
            // candidate lane's model graph, pack only the prefix the
            // planner says actually fuses. Backends without graphs (and
            // homogeneous sweeps, which fuse fully) are unchanged.
            let graphs: Vec<_> = self
                .queue
                .iter()
                .take(width)
                .filter_map(|&id| self.backend.lane_graph(&self.trial(id).config))
                .collect();
            if graphs.len() == width {
                width = crate::pack::plan_pack(&graphs).lanes;
            }
        }
        let ids: Vec<u64> = (0..width)
            .map(|_| self.queue.pop_front().expect("queue checked non-empty"))
            .collect();
        let trials: Vec<Trial<B::Config>> = ids.iter().map(|&id| self.trial(id)).collect();
        let array = self.backend.build(&trials);
        let aid = self.next_aid;
        self.next_aid += 1;
        for (i, &tid) in ids.iter().enumerate() {
            self.flight.record_with(
                tid,
                ns(t),
                FlightKind::Dispatch,
                Some(device as u64),
                Some(aid),
                Some(i as u64),
                || format!("fresh width {width}"),
            );
        }
        let ra = Running {
            array,
            trial_ids: ids,
            device,
            rung: 0,
            width,
            outcome: None,
            aid,
            seg_end_ns: 0,
        };
        self.start_segment(device, ra, t);
    }

    /// Greedy work-conserving fill of every idle device.
    ///
    /// Elastic order of preference: (1) a survivor buffer holding a full
    /// device's width — deepest rung first, it finishes soonest; (2) fresh
    /// arrivals at full width; (3) a partial buffer, only when nothing
    /// else can use the device. Rule (3) matters because fused step time
    /// is sublinear (sometimes flat) in width: splicing survivors into a
    /// *narrow* array the moment they appear would fragment the very
    /// capacity re-packing is meant to reclaim, so partial buffers pool
    /// until no full-width work remains.
    fn dispatch(&mut self, t: f64) {
        for device in self.fleet.idle_devices(t) {
            let mem_cap = self
                .fleet
                .max_fused_width(device, &self.profile, self.cfg.width_cap);
            assert!(mem_cap >= 1, "device cannot fit even one lane");
            if self.cfg.policy == Policy::Elastic {
                let full = (0..self.buffer.len())
                    .rev()
                    .find(|&r| self.buffer[r].len() >= mem_cap);
                if let Some(rung) = full {
                    self.dispatch_repack(device, rung, mem_cap, t);
                    continue;
                }
            }
            if !self.queue.is_empty() {
                self.dispatch_fresh(device, mem_cap, t);
                continue;
            }
            if self.cfg.policy == Policy::Elastic {
                let partial = (0..self.buffer.len())
                    .rev()
                    .find(|&r| !self.buffer[r].is_empty());
                if let Some(rung) = partial {
                    self.dispatch_repack(device, rung, mem_cap, t);
                }
            }
        }
    }
}

/// Runs one policy over a stream of `(arrival_s, config)` trials on the
/// given fleet. Trial `i` of `arrivals` gets id `i`. Training is executed
/// eagerly with real math; time and device occupancy are simulated.
///
/// # Panics
///
/// Panics on a degenerate rung policy, a zero `width_cap`, or a device
/// too small for a single lane of the backend's job profile.
pub fn run<B: ArrayBackend>(
    backend: &B,
    fleet: &mut DeviceFleet,
    arrivals: &[(f64, B::Config)],
    cfg: &SchedCfg,
) -> SchedRun {
    cfg.rung.validate();
    assert!(cfg.width_cap >= 1, "width cap must be positive");
    let profiler = Profiler::current();
    let device_lanes: Vec<Option<LaneId>> = (0..fleet.len())
        .map(|d| {
            profiler
                .as_ref()
                .map(|p| p.lane(fleet.name(d), cfg.policy.name()))
        })
        .collect();
    let mut engine = Engine {
        backend,
        profile: backend.job_profile(),
        fleet,
        cfg,
        stats: SchedStats::new(),
        profiler,
        flight: FlightRecorder::new(),
        device_lanes,
        configs: arrivals.iter().map(|(_, c)| c.clone()).collect(),
        statuses: vec![TrialStatus::Pending; arrivals.len()],
        queue: VecDeque::new(),
        buffer: vec![Vec::new(); cfg.rung.rungs],
        running: HashMap::new(),
        heap: BinaryHeap::new(),
        ledger: RungLedger::new(cfg.rung.rungs),
        seq: 0,
        next_array: 0,
        next_aid: 0,
        makespan_s: 0.0,
        final_states: Vec::new(),
        arrays_built: 0,
        repacks: 0,
        lanes_moved: 0,
        max_width: 0,
    };
    for (id, (t, _)) in arrivals.iter().enumerate() {
        assert!(t.is_finite() && *t >= 0.0, "arrival times must be ≥ 0");
        engine.push_event(*t, 1, EventKind::Arrival(id as u64));
    }
    while let Some(Reverse(ev)) = engine.heap.pop() {
        let t = ev.t;
        let mut batch = vec![ev];
        // Drain every event at this exact timestamp before dispatching:
        // a device whose completion is still queued at `t` is not idle,
        // even though its booking already ended.
        while let Some(Reverse(next)) = engine.heap.peek() {
            if next.t != t {
                break;
            }
            let Some(Reverse(next)) = engine.heap.pop() else {
                unreachable!("peeked event vanished");
            };
            batch.push(next);
        }
        for ev in batch {
            match ev.kind {
                EventKind::Arrival(id) => {
                    engine.stats.arrival();
                    engine
                        .flight
                        .record(id, ns(t), FlightKind::Submit, None, None, None);
                    engine
                        .flight
                        .record(id, ns(t), FlightKind::Enqueue, None, None, None);
                    engine.queue.push_back(id);
                }
                EventKind::SegmentDone(aid) => engine.complete(aid, t),
            }
        }
        engine.dispatch(t);
    }
    debug_assert!(engine.queue.is_empty(), "undispatched trials at drain");
    debug_assert!(engine.running.is_empty(), "running arrays at drain");
    debug_assert!(
        engine.buffer.iter().all(Vec::is_empty),
        "buffered survivors at drain"
    );
    let packing = engine.fleet.packing_efficiency();
    let occupancy = engine.fleet.occupancy(engine.makespan_s);
    engine.stats.packing_efficiency(packing);
    engine.stats.occupancy(occupancy);
    for d in 0..engine.fleet.len() {
        engine.stats.device_utilization(
            engine.fleet.name(d),
            engine.fleet.utilization(d),
            engine.fleet.attained_gflops(d),
        );
    }
    engine
        .stats
        .fleet_utilization(engine.fleet.fleet_utilization());
    // hfta-flight SLO fold: derive every trial's queue/compute/surgery/
    // quarantine decomposition from the journal and feed the fleet-wide
    // latency histograms. Purely observational — scheduling decisions and
    // training math are already fixed by this point.
    let mut rollup = flight::SloRollup::default();
    if let Some(p) = &engine.profiler {
        rollup = flight::SloRollup::from_events(&p.flight_events());
        for (q, e) in rollup.queue_waits_us.iter().zip(&rollup.e2e_us) {
            p.observe("flight/queue_wait_us", *q);
            p.observe("flight/e2e_latency_us", *e);
        }
    }
    let statuses = engine.statuses;
    let count = |s: TrialStatus| statuses.iter().filter(|&&x| x == s).count();
    let mut final_states = engine.final_states;
    final_states.sort_by_key(|(id, _)| *id);
    SchedRun {
        report: SchedReport {
            policy: cfg.policy.name().to_string(),
            trials: arrivals.len(),
            finished: count(TrialStatus::Finished),
            stopped: count(TrialStatus::Stopped),
            killed: count(TrialStatus::Killed),
            makespan_s: engine.makespan_s,
            device_hours: engine.fleet.device_hours(),
            occupancy,
            packing_efficiency: packing,
            arrays_built: engine.arrays_built,
            repacks: engine.repacks,
            lanes_moved: engine.lanes_moved,
            max_width: engine.max_width,
            queue_wait_p50_us: rollup.queue_wait_us(0.50),
            queue_wait_p99_us: rollup.queue_wait_us(0.99),
            e2e_latency_p50_us: rollup.e2e_latency_us(0.50),
            e2e_latency_p99_us: rollup.e2e_latency_us(0.99),
            queue_us: rollup.queue_us,
            compute_us: rollup.compute_us,
            surgery_us: rollup.surgery_us,
            quarantine_us: rollup.quarantine_us,
        },
        final_states,
        statuses,
    }
}
