//! The training-backend abstraction the scheduler drives.
//!
//! The scheduler decides *which* trials train together, *where*, and *for
//! how long*; an [`ArrayBackend`] owns the actual model math: building a
//! fused array for a set of trials, training it for a step segment,
//! extracting a trial's lanes back out ([`LaneState`]), and splicing
//! buffered lanes into a fresh array. The backend must make per-trial
//! trajectories functions of `(trial id, global step)` alone — never of
//! array width or lane position — so the scheduler's re-packing is
//! bit-invisible to every surviving trial.

use hfta_core::surgery::LaneState;
use hfta_sim::TrainingJob;

use crate::trial::Trial;

/// What one training segment did to each lane of an array.
#[derive(Debug, Clone)]
pub struct TrainOutcome {
    /// Per-lane score at the end of the segment; higher is better. The
    /// successive-halving rule ranks these at rung boundaries.
    pub scores: Vec<f32>,
    /// Per-lane cumulative quarantine flag: `true` once a divergence
    /// sentinel fired for the lane (at any point in the array's life).
    pub killed: Vec<bool>,
}

/// A training backend the scheduler can orchestrate.
pub trait ArrayBackend {
    /// Per-trial hyper-parameter configuration.
    type Config: Clone;
    /// A live fused array training one lane per trial.
    type Array;

    /// Builds a freshly initialized array with one lane per trial, about
    /// to take its first step. Lane `i` trains `trials[i]`; its
    /// initialization must depend only on `trials[i].id`.
    fn build(&self, trials: &[Trial<Self::Config>]) -> Self::Array;

    /// Builds an array whose lane `i` continues `trials[i]` from
    /// `lanes[i]` — parameters and optimizer state spliced bit-identically
    /// — with `start_step` steps already taken.
    fn splice(
        &self,
        trials: &[Trial<Self::Config>],
        lanes: &[LaneState],
        start_step: u64,
    ) -> Self::Array;

    /// Extracts lane `lane`'s parameters and optimizer state.
    fn extract(&self, array: &Self::Array, lane: usize) -> LaneState;

    /// Trains the array for `steps` further steps, returning per-lane
    /// scores and quarantine flags.
    fn train(&self, array: &mut Self::Array, steps: u64) -> TrainOutcome;

    /// The per-model simulator cost profile of one training step — the
    /// job `hfta-sim` fuses to width `B` for step timing and the
    /// memory-capacity max-width selection.
    fn job_profile(&self) -> TrainingJob;

    /// The planning IR of the model a trial with `config` would train,
    /// if the backend can describe it. When every candidate lane of a
    /// fresh dispatch reports a graph, the scheduler asks the auto-fusion
    /// planner for the pack's fusibility (see [`crate::pack::plan_pack`])
    /// and trims lanes that would ride along mostly serial. The default
    /// (`None`) preserves the legacy width selection.
    fn lane_graph(&self, config: &Self::Config) -> Option<hfta_plan::ModelGraph> {
        let _ = config;
        None
    }
}
