//! The lightweight graph IR the planner matches on.
//!
//! A [`ModelGraph`] is one lane's program: an input shape plus a
//! topologically ordered list of [`OpSpec`] nodes. Edges are implicit —
//! each op consumes its predecessor's activation — except for the
//! explicit skip links carried by [`OpKind::ResidualAdd`] markers, which
//! is all the structure the paper's benchmark architectures (DCGAN,
//! PointNet, ResNet-ish) need.
//!
//! Every op records its full geometry (channels, kernel, stride, padding,
//! groups, bias), so *node equality is the isomorphism test*: two ops
//! fuse horizontally exactly when their specs are equal **and** their
//! activation entry shapes (propagated from the graph input by
//! [`ModelGraph::shapes`]) are equal. The planner matches on
//! [`ModelGraph::tokens`] — `(spec, entry shape)` pairs — which makes
//! shape-unsafe fusions unrepresentable by construction.

use hfta_nn::layers::{Conv2dCfg, LinearCfg};
use serde::{Deserialize, Serialize};

/// Operator kind discriminator. Geometry lives in the flat [`OpSpec`]
/// record (the vendored serde derives only handle unit enums).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// 2-D convolution (`[C,H,W] -> [C',H',W']`).
    Conv2d,
    /// 2-D transposed convolution.
    ConvTranspose2d,
    /// 1-D convolution (`[C,L] -> [C',L']`).
    Conv1d,
    /// Batch normalization over the leading channel axis.
    BatchNorm,
    /// Rectified linear unit.
    Relu,
    /// Leaky rectified linear unit (slope in [`OpSpec::slope_bits`]).
    LeakyRelu,
    /// Hyperbolic tangent.
    Tanh,
    /// 2-D max pooling with stride = kernel.
    MaxPool2d,
    /// Collapse all activation axes into one feature axis.
    Flatten,
    /// Fully connected layer (`[F] -> [F']`).
    Linear,
    /// Global max over the trailing (point/sequence) axis
    /// (`[C,P] -> [C]`, PointNet's symmetric function). Plannable but
    /// not executable by `PlannedArray`.
    GlobalMaxPool,
    /// Residual skip marker: adds the activation from [`OpSpec::skip`]
    /// ops earlier. Plannable but not executable by `PlannedArray`.
    ResidualAdd,
}

/// One operator node: kind plus flat geometry. Unused fields are zeroed
/// by the constructors so derived equality/hashing is well defined.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OpSpec {
    /// Operator kind.
    pub kind: OpKind,
    /// Input channels / features (also BatchNorm's channel count).
    pub c_in: usize,
    /// Output channels / features.
    pub c_out: usize,
    /// Square kernel size (convs, max pool).
    pub kernel: usize,
    /// Stride (convs).
    pub stride: usize,
    /// Padding (convs).
    pub padding: usize,
    /// Convolution groups.
    pub groups: usize,
    /// Whether the op carries a bias parameter.
    pub bias: bool,
    /// LeakyRelu negative slope as `f32::to_bits` (exact equality).
    pub slope_bits: u32,
    /// `ResidualAdd` skip distance in ops.
    pub skip: usize,
}

impl OpSpec {
    fn blank(kind: OpKind) -> OpSpec {
        OpSpec {
            kind,
            c_in: 0,
            c_out: 0,
            kernel: 0,
            stride: 0,
            padding: 0,
            groups: 0,
            bias: false,
            slope_bits: 0,
            skip: 0,
        }
    }

    /// 2-D convolution from an `hfta-nn` layer config.
    pub fn conv2d(cfg: Conv2dCfg) -> OpSpec {
        OpSpec {
            c_in: cfg.in_channels,
            c_out: cfg.out_channels,
            kernel: cfg.kernel,
            stride: cfg.stride,
            padding: cfg.padding,
            groups: cfg.groups,
            bias: cfg.bias,
            ..OpSpec::blank(OpKind::Conv2d)
        }
    }

    /// 2-D transposed convolution from an `hfta-nn` layer config.
    pub fn conv_transpose2d(cfg: Conv2dCfg) -> OpSpec {
        OpSpec {
            kind: OpKind::ConvTranspose2d,
            ..OpSpec::conv2d(cfg)
        }
    }

    /// 1-D convolution.
    pub fn conv1d(
        c_in: usize,
        c_out: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> OpSpec {
        OpSpec {
            c_in,
            c_out,
            kernel,
            stride,
            padding,
            groups: 1,
            bias: true,
            ..OpSpec::blank(OpKind::Conv1d)
        }
    }

    /// Batch normalization over `channels`.
    pub fn batch_norm(channels: usize) -> OpSpec {
        OpSpec {
            c_in: channels,
            c_out: channels,
            ..OpSpec::blank(OpKind::BatchNorm)
        }
    }

    /// ReLU activation.
    pub fn relu() -> OpSpec {
        OpSpec::blank(OpKind::Relu)
    }

    /// LeakyReLU activation with the given negative slope.
    pub fn leaky_relu(slope: f32) -> OpSpec {
        OpSpec {
            slope_bits: slope.to_bits(),
            ..OpSpec::blank(OpKind::LeakyRelu)
        }
    }

    /// Tanh activation.
    pub fn tanh() -> OpSpec {
        OpSpec::blank(OpKind::Tanh)
    }

    /// 2-D max pooling (stride = kernel).
    pub fn max_pool2d(kernel: usize) -> OpSpec {
        OpSpec {
            kernel,
            ..OpSpec::blank(OpKind::MaxPool2d)
        }
    }

    /// Flatten to a single feature axis.
    pub fn flatten() -> OpSpec {
        OpSpec::blank(OpKind::Flatten)
    }

    /// Fully connected layer from an `hfta-nn` layer config.
    pub fn linear(cfg: LinearCfg) -> OpSpec {
        OpSpec {
            c_in: cfg.in_features,
            c_out: cfg.out_features,
            bias: cfg.bias,
            ..OpSpec::blank(OpKind::Linear)
        }
    }

    /// Global max over the trailing axis (PointNet's symmetric function).
    pub fn global_max_pool() -> OpSpec {
        OpSpec::blank(OpKind::GlobalMaxPool)
    }

    /// Residual skip marker adding the activation from `skip` ops back.
    pub fn residual_add(skip: usize) -> OpSpec {
        OpSpec {
            skip,
            ..OpSpec::blank(OpKind::ResidualAdd)
        }
    }

    /// LeakyReLU negative slope.
    pub fn slope(&self) -> f32 {
        f32::from_bits(self.slope_bits)
    }

    /// Short human label for timelines and legends.
    pub fn label(&self) -> String {
        match self.kind {
            OpKind::Conv2d => format!(
                "conv{k}x{k} {}->{} s{}",
                self.c_in,
                self.c_out,
                self.stride,
                k = self.kernel
            ),
            OpKind::ConvTranspose2d => format!(
                "convT{k}x{k} {}->{} s{}",
                self.c_in,
                self.c_out,
                self.stride,
                k = self.kernel
            ),
            OpKind::Conv1d => format!("conv1d {}->{}", self.c_in, self.c_out),
            OpKind::BatchNorm => format!("bn{}", self.c_in),
            OpKind::Relu => "relu".into(),
            OpKind::LeakyRelu => format!("lrelu{:.2}", self.slope()),
            OpKind::Tanh => "tanh".into(),
            OpKind::MaxPool2d => format!("pool{}", self.kernel),
            OpKind::Flatten => "flat".into(),
            OpKind::Linear => format!("fc {}->{}", self.c_in, self.c_out),
            OpKind::GlobalMaxPool => "gmax".into(),
            OpKind::ResidualAdd => format!("res+{}", self.skip),
        }
    }

    /// Propagates an activation shape (without the batch axis) through
    /// this op. `ResidualAdd` is identity here; its skip-shape agreement
    /// is checked by [`ModelGraph::shapes`], which sees the history.
    pub fn out_shape(&self, input: &[usize]) -> Result<Vec<usize>, String> {
        let conv_axis = |len: usize, k: usize, s: usize, p: usize| -> Result<usize, String> {
            let padded = len + 2 * p;
            if padded < k {
                return Err(format!("axis {len} too small for kernel {k} padding {p}"));
            }
            Ok((padded - k) / s + 1)
        };
        match self.kind {
            OpKind::Conv2d => {
                let [c, h, w] = *shape3(input, "Conv2d")?;
                check_channels(c, self.c_in, "Conv2d")?;
                Ok(vec![
                    self.c_out,
                    conv_axis(h, self.kernel, self.stride, self.padding)?,
                    conv_axis(w, self.kernel, self.stride, self.padding)?,
                ])
            }
            OpKind::ConvTranspose2d => {
                let [c, h, w] = *shape3(input, "ConvTranspose2d")?;
                check_channels(c, self.c_in, "ConvTranspose2d")?;
                let up = |len: usize| -> Result<usize, String> {
                    ((len - 1) * self.stride + self.kernel)
                        .checked_sub(2 * self.padding)
                        .filter(|&v| v > 0)
                        .ok_or_else(|| format!("ConvTranspose2d collapses axis {len}"))
                };
                Ok(vec![self.c_out, up(h)?, up(w)?])
            }
            OpKind::Conv1d => {
                let [c, l] = *shape2(input, "Conv1d")?;
                check_channels(c, self.c_in, "Conv1d")?;
                Ok(vec![
                    self.c_out,
                    conv_axis(l, self.kernel, self.stride, self.padding)?,
                ])
            }
            OpKind::BatchNorm => {
                check_channels(
                    *input.first().ok_or("BatchNorm on scalar activation")?,
                    self.c_in,
                    "BatchNorm",
                )?;
                Ok(input.to_vec())
            }
            OpKind::Relu | OpKind::LeakyRelu | OpKind::Tanh | OpKind::ResidualAdd => {
                Ok(input.to_vec())
            }
            OpKind::MaxPool2d => {
                let [c, h, w] = *shape3(input, "MaxPool2d")?;
                if h < self.kernel || w < self.kernel {
                    return Err(format!("MaxPool2d kernel {} exceeds {h}x{w}", self.kernel));
                }
                Ok(vec![c, h / self.kernel, w / self.kernel])
            }
            OpKind::Flatten => Ok(vec![input.iter().product()]),
            OpKind::Linear => {
                let [f] = *shape1(input, "Linear")?;
                check_channels(f, self.c_in, "Linear")?;
                Ok(vec![self.c_out])
            }
            OpKind::GlobalMaxPool => {
                let [c, _p] = *shape2(input, "GlobalMaxPool")?;
                Ok(vec![c])
            }
        }
    }
}

fn shape1<'a>(s: &'a [usize], op: &str) -> Result<&'a [usize; 1], String> {
    s.try_into()
        .map_err(|_| format!("{op} expects a 1-D activation, got {s:?}"))
}

fn shape2<'a>(s: &'a [usize], op: &str) -> Result<&'a [usize; 2], String> {
    s.try_into()
        .map_err(|_| format!("{op} expects a 2-D activation, got {s:?}"))
}

fn shape3<'a>(s: &'a [usize], op: &str) -> Result<&'a [usize; 3], String> {
    s.try_into()
        .map_err(|_| format!("{op} expects a 3-D activation, got {s:?}"))
}

fn check_channels(found: usize, want: usize, op: &str) -> Result<(), String> {
    if found == want {
        Ok(())
    } else {
        Err(format!("{op} expects {want} input channels, got {found}"))
    }
}

/// Planner errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// No graphs were supplied.
    Empty,
    /// Shape propagation failed at op `op` of graph `graph`.
    Shape {
        /// Graph name.
        graph: String,
        /// Op index within the graph.
        op: usize,
        /// What went wrong.
        detail: String,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::Empty => write!(f, "cannot plan an empty model set"),
            PlanError::Shape { graph, op, detail } => {
                write!(f, "graph {graph:?} op {op}: {detail}")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// One matching token: an op plus the activation shape entering it.
/// Two lanes' ops fuse exactly when their tokens are equal.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Token {
    /// The op.
    pub op: OpSpec,
    /// Activation shape (batch axis excluded) entering the op.
    pub entry: Vec<usize>,
}

/// One lane's program: a named op chain plus its input shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelGraph {
    /// Architecture name (reports and error messages).
    pub name: String,
    /// Input activation shape, batch axis excluded (e.g. `[3, 16, 16]`).
    pub input: Vec<usize>,
    /// Ops in topological order.
    pub ops: Vec<OpSpec>,
}

impl ModelGraph {
    /// Builds a graph, without validating shapes (call [`Self::shapes`]).
    pub fn new(name: impl Into<String>, input: Vec<usize>, ops: Vec<OpSpec>) -> ModelGraph {
        ModelGraph {
            name: name.into(),
            input,
            ops,
        }
    }

    /// Activation shapes at every op boundary: `shapes()[i]` enters op
    /// `i`, `shapes()[ops.len()]` is the output. Validates channel
    /// agreement, axis arithmetic, and residual skip-shape agreement.
    pub fn shapes(&self) -> Result<Vec<Vec<usize>>, PlanError> {
        let mut shapes = vec![self.input.clone()];
        for (i, op) in self.ops.iter().enumerate() {
            let err = |detail: String| PlanError::Shape {
                graph: self.name.clone(),
                op: i,
                detail,
            };
            if op.kind == OpKind::ResidualAdd {
                let from = i
                    .checked_sub(op.skip)
                    .ok_or_else(|| err(format!("residual skip {} exits the graph", op.skip)))?;
                if shapes[from] != shapes[i] {
                    return Err(err(format!(
                        "residual shapes disagree: {:?} vs {:?}",
                        shapes[from], shapes[i]
                    )));
                }
            }
            let next = op.out_shape(&shapes[i]).map_err(err)?;
            shapes.push(next);
        }
        Ok(shapes)
    }

    /// The matching tokens: one `(op, entry shape)` pair per op.
    pub fn tokens(&self) -> Result<Vec<Token>, PlanError> {
        let shapes = self.shapes()?;
        Ok(self
            .ops
            .iter()
            .zip(&shapes)
            .map(|(op, entry)| Token {
                op: op.clone(),
                entry: entry.clone(),
            })
            .collect())
    }

    /// Stable 64-bit architecture signature (FNV-1a over the serialized
    /// graph): lanes with equal signatures run the same program.
    pub fn signature(&self) -> u64 {
        let json = serde_json::to_string(self).expect("graph serializes");
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in json.as_bytes() {
            h ^= u64::from(*byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> ModelGraph {
        ModelGraph::new(
            "toy",
            vec![3, 8, 8],
            vec![
                OpSpec::conv2d(Conv2dCfg::new(3, 4, 4).stride(2).padding(1).bias(false)),
                OpSpec::leaky_relu(0.2),
                OpSpec::flatten(),
                OpSpec::linear(LinearCfg::new(4 * 4 * 4, 2)),
            ],
        )
    }

    #[test]
    fn shapes_propagate_through_conv_flatten_linear() {
        let shapes = chain().shapes().unwrap();
        assert_eq!(
            shapes,
            vec![
                vec![3, 8, 8],
                vec![4, 4, 4],
                vec![4, 4, 4],
                vec![64],
                vec![2]
            ]
        );
    }

    #[test]
    fn channel_mismatch_is_reported_with_op_index() {
        let mut g = chain();
        g.ops[0] = OpSpec::conv2d(Conv2dCfg::new(5, 4, 4).stride(2).padding(1));
        match g.shapes() {
            Err(PlanError::Shape { op: 0, detail, .. }) => {
                assert!(detail.contains("5"), "{detail}")
            }
            other => panic!("expected shape error, got {other:?}"),
        }
    }

    #[test]
    fn linear_feature_mismatch_rejected() {
        let mut g = chain();
        g.ops[3] = OpSpec::linear(LinearCfg::new(63, 2));
        assert!(matches!(g.shapes(), Err(PlanError::Shape { op: 3, .. })));
    }

    #[test]
    fn residual_checks_skip_shape_agreement() {
        let g = ModelGraph::new(
            "res",
            vec![4, 8, 8],
            vec![
                OpSpec::conv2d(Conv2dCfg::new(4, 4, 3).stride(1).padding(1)),
                OpSpec::relu(),
                OpSpec::residual_add(2),
            ],
        );
        assert!(g.shapes().is_ok());
        let bad = ModelGraph::new(
            "res-bad",
            vec![4, 8, 8],
            vec![
                OpSpec::conv2d(Conv2dCfg::new(4, 8, 3).stride(1).padding(1)),
                OpSpec::residual_add(1),
            ],
        );
        assert!(matches!(bad.shapes(), Err(PlanError::Shape { op: 1, .. })));
    }

    #[test]
    fn tokens_carry_entry_shapes_and_signatures_distinguish_archs() {
        let g = chain();
        let toks = g.tokens().unwrap();
        assert_eq!(toks.len(), 4);
        assert_eq!(toks[2].entry, vec![4, 4, 4]);
        let mut other = chain();
        other.ops.insert(2, OpSpec::relu());
        assert_ne!(g.signature(), other.signature());
        assert_eq!(g.signature(), chain().signature());
    }

    #[test]
    fn pointnet_style_ops_propagate() {
        let g = ModelGraph::new(
            "pn",
            vec![3, 32],
            vec![
                OpSpec::conv1d(3, 16, 1, 1, 0),
                OpSpec::batch_norm(16),
                OpSpec::relu(),
                OpSpec::global_max_pool(),
                OpSpec::linear(LinearCfg::new(16, 4)),
            ],
        );
        let shapes = g.shapes().unwrap();
        assert_eq!(shapes.last().unwrap(), &vec![4]);
        assert_eq!(shapes[4], vec![16]);
    }
}
