//! The auto-fusion planner: from N lane graphs to a [`FusionPlan`].
//!
//! Matching works on [`Token`]s — `(op spec, entry shape)` pairs — so a
//! candidate fusion is shape-safe by construction. The planner:
//!
//! 1. computes every lane's token sequence ([`ModelGraph::tokens`]);
//! 2. folds a longest-common-subsequence over the *distinct* sequences,
//!    yielding the **anchors**: a maximal common run of tokens present in
//!    every lane, in order;
//! 3. greedily (leftmost) locates the anchors in each lane and splits
//!    them into maximal runs that are *contiguous in every lane* — each
//!    run becomes one all-lane [`Block`] of kind [`BlockKind::Fused`];
//! 4. the per-lane gap segments between consecutive runs are grouped by
//!    identical token content: groups of two or more lanes become
//!    sub-width fused blocks, singletons become [`BlockKind::Serial`]
//!    blocks.
//!
//! Every block records, per participating lane, the *start index into
//! that lane's own program* — the lane-index map that lets execution key
//! parameter initialization and lane surgery to `(lane, op-in-lane)`,
//! independent of how the plan carved the program into blocks. That is
//! the invariant behind the bit-identity contract: any two plans over the
//! same graphs (including the trivial all-serial plan) train every lane
//! bit-for-bit identically.

use serde::{Deserialize, Serialize};

use crate::ir::{ModelGraph, OpSpec, PlanError, Token};

/// Whether a block runs horizontally fused or per-lane serial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlockKind {
    /// Two or more lanes run these ops as one fused (width ≥ 2) segment.
    Fused,
    /// A single lane runs these ops on its own (width-1) segment.
    Serial,
}

/// One contiguous segment of the plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// [`BlockKind::Fused`] iff `lanes.len() >= 2`.
    pub kind: BlockKind,
    /// Participating global lane indices, ascending.
    pub lanes: Vec<usize>,
    /// `starts[j]` = index of `ops[0]` within `lanes[j]`'s own program.
    pub starts: Vec<usize>,
    /// The ops of this segment (identical across participating lanes).
    pub ops: Vec<OpSpec>,
}

impl Block {
    fn new(lanes: Vec<usize>, starts: Vec<usize>, ops: Vec<OpSpec>) -> Block {
        debug_assert_eq!(lanes.len(), starts.len());
        debug_assert!(lanes.windows(2).all(|w| w[0] < w[1]));
        Block {
            kind: if lanes.len() >= 2 {
                BlockKind::Fused
            } else {
                BlockKind::Serial
            },
            lanes,
            starts,
            ops,
        }
    }

    /// Fused width (number of participating lanes).
    pub fn width(&self) -> usize {
        self.lanes.len()
    }

    /// True when the block runs two or more lanes fused.
    pub fn is_fused(&self) -> bool {
        self.kind == BlockKind::Fused
    }

    /// Position of global `lane` within this block, if it participates.
    pub fn lane_index(&self, lane: usize) -> Option<usize> {
        self.lanes.iter().position(|&l| l == lane)
    }
}

/// An ordered sequence of fused and serial blocks covering every op of
/// every lane exactly once, in each lane's own program order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FusionPlan {
    /// Number of lanes planned over.
    pub lanes: usize,
    /// Per-lane program length (op count).
    pub lane_ops: Vec<usize>,
    /// The blocks, in execution order.
    pub blocks: Vec<Block>,
}

impl FusionPlan {
    /// Plans a model set: maximal shape-safe fusion, serial leftovers.
    ///
    /// # Errors
    ///
    /// [`PlanError::Empty`] on an empty set; [`PlanError::Shape`] when a
    /// graph's shapes do not propagate.
    pub fn plan(graphs: &[ModelGraph]) -> Result<FusionPlan, PlanError> {
        let toks = all_tokens(graphs)?;
        let anchors = common_anchors(&toks);
        let pos: Vec<Vec<usize>> = toks.iter().map(|t| match_leftmost(t, &anchors)).collect();

        let n = graphs.len();
        let mut blocks = Vec::new();
        let mut cursor = vec![0usize; n];
        // Split anchors into maximal runs contiguous in every lane.
        let mut i = 0;
        while i < anchors.len() {
            let mut j = i + 1;
            while j < anchors.len() && pos.iter().all(|p| p[j] == p[j - 1] + 1) {
                j += 1;
            }
            // Per-lane gaps before this run.
            let next: Vec<usize> = pos.iter().map(|p| p[i]).collect();
            gap_blocks(&toks, &cursor, &next, &mut blocks);
            blocks.push(Block::new(
                (0..n).collect(),
                next.clone(),
                anchors[i..j].iter().map(|t| t.op.clone()).collect(),
            ));
            for (c, p) in cursor.iter_mut().zip(&pos) {
                *c = p[j - 1] + 1;
            }
            i = j;
        }
        // Trailing gaps.
        let ends: Vec<usize> = toks.iter().map(|t| t.len()).collect();
        gap_blocks(&toks, &cursor, &ends, &mut blocks);

        let plan = FusionPlan {
            lanes: n,
            lane_ops: ends,
            blocks,
        };
        debug_assert!(plan.check_coverage());
        Ok(plan)
    }

    /// The trivial no-fusion plan: one serial block per lane covering its
    /// whole program. Validates shapes like [`FusionPlan::plan`].
    pub fn serial(graphs: &[ModelGraph]) -> Result<FusionPlan, PlanError> {
        let toks = all_tokens(graphs)?;
        Ok(FusionPlan {
            lanes: graphs.len(),
            lane_ops: toks.iter().map(|t| t.len()).collect(),
            blocks: graphs
                .iter()
                .enumerate()
                .map(|(l, g)| Block::new(vec![l], vec![0], g.ops.clone()))
                .collect(),
        })
    }

    /// Fraction of `(lane, op)` work covered by fused (width ≥ 2)
    /// blocks — the packing signal `hfta-sched` and `hfta-serve` consume.
    pub fn fused_fraction(&self) -> f64 {
        let total: usize = self.lane_ops.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let fused: usize = self
            .blocks
            .iter()
            .filter(|b| b.is_fused())
            .map(|b| b.width() * b.ops.len())
            .sum();
        fused as f64 / total as f64
    }

    /// Widest fused block in the plan (0 when nothing fuses).
    pub fn max_fused_width(&self) -> usize {
        self.blocks
            .iter()
            .filter(|b| b.is_fused())
            .map(Block::width)
            .max()
            .unwrap_or(0)
    }

    /// True when every lane's ops are covered exactly once, in order.
    fn check_coverage(&self) -> bool {
        let mut seen = vec![0usize; self.lanes];
        for b in &self.blocks {
            for (&l, &s) in b.lanes.iter().zip(&b.starts) {
                if seen[l] != s {
                    return false;
                }
                seen[l] += b.ops.len();
            }
        }
        seen == self.lane_ops
    }
}

fn all_tokens(graphs: &[ModelGraph]) -> Result<Vec<Vec<Token>>, PlanError> {
    if graphs.is_empty() {
        return Err(PlanError::Empty);
    }
    graphs.iter().map(ModelGraph::tokens).collect()
}

/// Folds LCS over the distinct token sequences: the result is a common
/// subsequence of every lane's program.
fn common_anchors(toks: &[Vec<Token>]) -> Vec<Token> {
    let mut distinct: Vec<&Vec<Token>> = Vec::new();
    for t in toks {
        if !distinct.contains(&t) {
            distinct.push(t);
        }
    }
    let mut common = distinct[0].clone();
    for t in &distinct[1..] {
        common = lcs(&common, t);
        if common.is_empty() {
            break;
        }
    }
    common
}

/// Classic O(n·m) longest-common-subsequence on tokens.
fn lcs(a: &[Token], b: &[Token]) -> Vec<Token> {
    let (n, m) = (a.len(), b.len());
    let mut dp = vec![0u32; (n + 1) * (m + 1)];
    let at = |i: usize, j: usize| i * (m + 1) + j;
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            dp[at(i, j)] = if a[i] == b[j] {
                dp[at(i + 1, j + 1)] + 1
            } else {
                dp[at(i + 1, j)].max(dp[at(i, j + 1)])
            };
        }
    }
    let mut out = Vec::with_capacity(dp[at(0, 0)] as usize);
    let (mut i, mut j) = (0, 0);
    while i < n && j < m {
        if a[i] == b[j] {
            out.push(a[i].clone());
            i += 1;
            j += 1;
        } else if dp[at(i + 1, j)] >= dp[at(i, j + 1)] {
            i += 1;
        } else {
            j += 1;
        }
    }
    out
}

/// Greedy leftmost positions of `anchors` (a known subsequence) in `seq`.
fn match_leftmost(seq: &[Token], anchors: &[Token]) -> Vec<usize> {
    let mut pos = Vec::with_capacity(anchors.len());
    let mut i = 0;
    for a in anchors {
        while seq[i] != *a {
            i += 1;
        }
        pos.push(i);
        i += 1;
    }
    pos
}

/// Emits blocks for the per-lane gap segments `cursor[l]..next[l]`,
/// grouping lanes with identical segment content into sub-width fused
/// blocks (groups ordered by smallest member lane).
fn gap_blocks(toks: &[Vec<Token>], cursor: &[usize], next: &[usize], blocks: &mut Vec<Block>) {
    let mut groups: Vec<(Vec<usize>, Vec<usize>)> = Vec::new(); // (lanes, starts)
    for (l, t) in toks.iter().enumerate() {
        let seg = &t[cursor[l]..next[l]];
        if seg.is_empty() {
            continue;
        }
        let found = groups.iter_mut().find(|(lanes, starts)| {
            let l0 = lanes[0];
            let s0 = starts[0];
            toks[l0][s0..s0 + (next[l0] - s0)] == *seg
        });
        match found {
            Some((lanes, starts)) => {
                lanes.push(l);
                starts.push(cursor[l]);
            }
            None => groups.push((vec![l], vec![cursor[l]])),
        }
    }
    for (lanes, starts) in groups {
        let l0 = lanes[0];
        let ops = toks[l0][starts[0]..next[l0]]
            .iter()
            .map(|t| t.op.clone())
            .collect();
        blocks.push(Block::new(lanes, starts, ops));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::OpSpec;
    use hfta_nn::layers::{Conv2dCfg, LinearCfg};

    fn base_ops() -> Vec<OpSpec> {
        vec![
            OpSpec::conv2d(Conv2dCfg::new(3, 8, 4).stride(2).padding(1).bias(false)),
            OpSpec::leaky_relu(0.2),
            OpSpec::conv2d(Conv2dCfg::new(8, 16, 4).stride(2).padding(1).bias(false)),
            OpSpec::batch_norm(16),
            OpSpec::leaky_relu(0.2),
            OpSpec::conv2d(Conv2dCfg::new(16, 1, 4).stride(1).padding(0).bias(false)),
            OpSpec::flatten(),
        ]
    }

    fn variant_ops() -> Vec<OpSpec> {
        let mut ops = base_ops();
        // Shape-preserving refinement block after stage 1.
        ops.insert(
            2,
            OpSpec::conv2d(Conv2dCfg::new(8, 8, 3).stride(1).padding(1).bias(false)),
        );
        ops.insert(3, OpSpec::leaky_relu(0.2));
        ops
    }

    fn graph(name: &str, ops: Vec<OpSpec>) -> ModelGraph {
        ModelGraph::new(name, vec![3, 16, 16], ops)
    }

    #[test]
    fn homogeneous_set_fuses_into_one_block() {
        let graphs: Vec<_> = (0..4)
            .map(|i| graph(&format!("d{i}"), base_ops()))
            .collect();
        let plan = FusionPlan::plan(&graphs).unwrap();
        assert_eq!(plan.blocks.len(), 1);
        assert!(plan.blocks[0].is_fused());
        assert_eq!(plan.blocks[0].lanes, vec![0, 1, 2, 3]);
        assert_eq!(plan.blocks[0].ops.len(), 7);
        assert_eq!(plan.fused_fraction(), 1.0);
        assert_eq!(plan.max_fused_width(), 4);
    }

    #[test]
    fn mixed_variants_share_prefix_and_suffix_with_subgroup_gap() {
        let graphs = vec![
            graph("base0", base_ops()),
            graph("var0", variant_ops()),
            graph("base1", base_ops()),
            graph("var1", variant_ops()),
        ];
        let plan = FusionPlan::plan(&graphs).unwrap();
        // Prefix (conv+lrelu) fused over all 4, the variant's refinement
        // block fused over lanes {1,3}, suffix fused over all 4.
        let all_lane_fused: Vec<&Block> = plan
            .blocks
            .iter()
            .filter(|b| b.is_fused() && b.width() == 4)
            .collect();
        assert_eq!(
            all_lane_fused.iter().map(|b| b.ops.len()).sum::<usize>(),
            7,
            "every base op fuses across all four lanes: {plan:#?}"
        );
        let sub = plan
            .blocks
            .iter()
            .find(|b| b.lanes == vec![1, 3])
            .expect("variant lanes share their refinement block");
        assert_eq!(sub.ops.len(), 2);
        assert!(sub.is_fused());
        // 4*7 common + 2*2 variant = 32 of 32 lane-ops fused.
        assert!((plan.fused_fraction() - 1.0).abs() < 1e-12);
        // Lane-index maps point into each lane's own program.
        for b in &plan.blocks {
            for (&l, &s) in b.lanes.iter().zip(&b.starts) {
                assert!(s + b.ops.len() <= plan.lane_ops[l]);
                assert_eq!(graphs[l].ops[s..s + b.ops.len()], b.ops[..]);
            }
        }
    }

    #[test]
    fn lone_variant_runs_its_extra_block_serial() {
        let graphs = vec![
            graph("base0", base_ops()),
            graph("base1", base_ops()),
            graph("var", variant_ops()),
        ];
        let plan = FusionPlan::plan(&graphs).unwrap();
        let serial: Vec<&Block> = plan.blocks.iter().filter(|b| !b.is_fused()).collect();
        assert_eq!(serial.len(), 1);
        assert_eq!(serial[0].lanes, vec![2]);
        assert_eq!(serial[0].ops.len(), 2);
        assert!(plan.fused_fraction() > 0.9);
    }

    #[test]
    fn disjoint_archs_fall_back_to_arch_groups() {
        let cnn = graph("cnn", base_ops());
        let mlp = ModelGraph::new(
            "mlp",
            vec![12],
            vec![
                OpSpec::linear(LinearCfg::new(12, 8)),
                OpSpec::relu(),
                OpSpec::linear(LinearCfg::new(8, 2)),
            ],
        );
        let plan = FusionPlan::plan(&[cnn.clone(), mlp.clone(), cnn, mlp]).unwrap();
        // No common anchors, but each arch pair fuses as a gap group.
        assert_eq!(plan.blocks.len(), 2);
        assert!(plan.blocks.iter().all(Block::is_fused));
        assert_eq!(plan.blocks[0].lanes, vec![0, 2]);
        assert_eq!(plan.blocks[1].lanes, vec![1, 3]);
        assert_eq!(plan.fused_fraction(), 1.0);
    }

    #[test]
    fn same_ops_different_entry_shapes_do_not_fuse() {
        // Same op kinds, but one lane's input is larger: entry shapes
        // differ, so nothing may fuse even though specs match.
        let a = ModelGraph::new(
            "small",
            vec![3, 16, 16],
            vec![OpSpec::conv2d(
                Conv2dCfg::new(3, 8, 4).stride(2).padding(1).bias(false),
            )],
        );
        let b = ModelGraph::new(
            "large",
            vec![3, 32, 32],
            vec![OpSpec::conv2d(
                Conv2dCfg::new(3, 8, 4).stride(2).padding(1).bias(false),
            )],
        );
        let plan = FusionPlan::plan(&[a, b]).unwrap();
        assert!(plan.blocks.iter().all(|b| !b.is_fused()));
        assert_eq!(plan.fused_fraction(), 0.0);
        assert_eq!(plan.max_fused_width(), 0);
    }

    #[test]
    fn serial_plan_covers_every_lane() {
        let graphs = vec![graph("a", base_ops()), graph("b", variant_ops())];
        let plan = FusionPlan::serial(&graphs).unwrap();
        assert_eq!(plan.blocks.len(), 2);
        assert_eq!(plan.fused_fraction(), 0.0);
        assert!(plan.check_coverage());
    }

    #[test]
    fn empty_set_is_an_error() {
        assert_eq!(FusionPlan::plan(&[]), Err(PlanError::Empty));
    }

    #[test]
    fn plan_round_trips_through_json() {
        let graphs = vec![graph("a", base_ops()), graph("v", variant_ops())];
        let plan = FusionPlan::plan(&graphs).unwrap();
        let json = serde_json::to_string(&plan).unwrap();
        let back: FusionPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }
}
