//! # hfta-plan
//!
//! Graph-based auto-fusion planner for heterogeneous model sets.
//!
//! The hand-fused path (`hfta-core::ops`, `hfta-models`) fuses *identical*
//! architectures at module granularity. This crate generalizes fusion to
//! arbitrary model sets, the two upstream capabilities the paper's
//! follow-on work added: **partially fused** models (fused and serial
//! blocks coexisting in one program) and **auto-fusion of different
//! architectures** (`fuse([resnet18, resnet50])`-style).
//!
//! Pipeline:
//!
//! 1. [`ir`] — a lightweight graph IR: per-lane [`ModelGraph`]s of
//!    [`OpSpec`] nodes (op kind + full geometry), with shape propagation;
//! 2. [`planner`] — [`FusionPlan::plan`] finds maximal isomorphic
//!    same-shaped subgraph runs across lanes (LCS over `(op, entry
//!    shape)` tokens) and emits ordered fused/serial [`Block`]s with
//!    lane-index maps;
//! 3. [`report`] — ASCII block timelines for `plan_report`.
//!
//! Execution lives in `hfta-core::planned` (`PlannedArray`), which runs
//! fused blocks through the existing fused-op machinery and serial blocks
//! per-lane on the same tape, bit-identically to unfused runs.

#![warn(missing_docs)]

pub mod ir;
pub mod planner;
pub mod report;

pub use ir::{ModelGraph, OpKind, OpSpec, PlanError, Token};
pub use planner::{Block, BlockKind, FusionPlan};
pub use report::render_timeline;
