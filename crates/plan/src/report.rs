//! ASCII rendering of a [`FusionPlan`]: a per-lane block timeline plus a
//! block legend, the view `plan_report` serves from a `--trace` dir.

use crate::planner::{Block, FusionPlan};

/// Renders the plan as a lane-by-block timeline. Fused (width ≥ 2) spans
/// draw as `████`, serial spans as `────`, blanks where a lane does not
/// participate. A legend lists every block's lanes and op summary.
pub fn render_timeline(plan: &FusionPlan) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "fusion plan: {} lanes, {} blocks, {:.1}% of lane-ops fused (max width {})\n\n",
        plan.lanes,
        plan.blocks.len(),
        plan.fused_fraction() * 100.0,
        plan.max_fused_width(),
    ));
    out.push_str("          ");
    for bi in 0..plan.blocks.len() {
        out.push_str(&format!("{:<5}", format!("B{bi}")));
    }
    out.push('\n');
    for lane in 0..plan.lanes {
        out.push_str(&format!("lane {lane:<4} "));
        for b in &plan.blocks {
            out.push_str(match (b.lane_index(lane).is_some(), b.is_fused()) {
                (true, true) => "████ ",
                (true, false) => "──── ",
                (false, _) => "     ",
            });
        }
        out.push('\n');
    }
    out.push('\n');
    for (bi, b) in plan.blocks.iter().enumerate() {
        out.push_str(&format!(
            "B{bi}: {} x{} lanes {:?}  {}\n",
            if b.is_fused() { "fused " } else { "serial" },
            b.width(),
            b.lanes,
            summarize_ops(b),
        ));
    }
    out
}

fn summarize_ops(b: &Block) -> String {
    const SHOWN: usize = 4;
    let labels: Vec<String> = b.ops.iter().take(SHOWN).map(|o| o.label()).collect();
    if b.ops.len() > SHOWN {
        format!("{} (+{} more)", labels.join(" | "), b.ops.len() - SHOWN)
    } else {
        labels.join(" | ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{ModelGraph, OpSpec};
    use hfta_nn::layers::Conv2dCfg;

    #[test]
    fn timeline_shows_fused_and_serial_spans() {
        let base = vec![
            OpSpec::conv2d(Conv2dCfg::new(3, 4, 4).stride(2).padding(1).bias(false)),
            OpSpec::relu(),
        ];
        let mut variant = base.clone();
        variant.push(OpSpec::conv2d(
            Conv2dCfg::new(4, 4, 3).stride(1).padding(1).bias(false),
        ));
        let graphs = vec![
            ModelGraph::new("a", vec![3, 8, 8], base),
            ModelGraph::new("b", vec![3, 8, 8], variant),
        ];
        let plan = FusionPlan::plan(&graphs).unwrap();
        let text = render_timeline(&plan);
        assert!(text.contains("2 lanes"), "{text}");
        assert!(text.contains("████"), "{text}");
        assert!(text.contains("────"), "{text}");
        assert!(text.contains("conv4x4 3->4 s2"), "{text}");
        // Every block appears in the legend.
        for bi in 0..plan.blocks.len() {
            assert!(text.contains(&format!("B{bi}:")), "{text}");
        }
    }
}
