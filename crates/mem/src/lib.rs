//! # hfta-mem
//!
//! The memory layer under the HFTA reproduction's tensor substrate:
//!
//! * [`Storage`] — the `Vec<f32>`-backed buffer every `Tensor` owns. Dropped
//!   storages return to a size-class recycling pool; later allocations of
//!   the same class reuse them instead of hitting the system allocator.
//! * [`pool`] — the size-class pool plus byte-accurate accounting: live and
//!   peak bytes (total and per class), fresh allocations vs reuses, and a
//!   process *footprint* (live + pool-held + scratch-held bytes) whose
//!   high-water mark is the CPU analogue of the paper's Table 8/9
//!   `nvidia-smi` peak-usage measurements.
//! * [`scratch`] — step-scoped scratch arenas for kernel workspace (im2col
//!   columns, GEMM packing panels). Call sites [`scratch::reserve`] their
//!   worst-case concurrency up front so steady-state training steps perform
//!   **zero fresh allocations** on the hot path.
//!
//! # Bit-identity
//!
//! Recycled buffers are value-filled exactly as `vec![fill; len]` would be
//! before any kernel sees them, so pooled and unpooled runs are bitwise
//! equal at any thread count. The `HFTA_MEM_POOL=off` environment toggle
//! (or [`set_pool_enabled`]) falls back to plain `Vec` allocation for A/B
//! equivalence tests.
//!
//! Accounting covers `f32` buffers owned by [`Storage`] and the scratch
//! arenas — the tensors, gradients and kernel workspace that dominate a
//! training step — not incidental bookkeeping allocations (tape nodes,
//! shape vectors), which are O(ops), not O(elements).

#![warn(missing_docs)]

pub mod pool;
pub mod scratch;
pub mod storage;

pub use pool::{pool_enabled, reset_stats, set_pool_enabled, stats, trim, ClassStats, MemStats};
pub use storage::Storage;
