//! The size-class recycling pool and its byte-accurate accounting.
//!
//! Buffers live in power-of-two element classes starting at
//! [`MIN_CLASS_ELEMS`]; a request of `len` elements is served from the
//! smallest class that fits, and every buffer the pool hands out has
//! capacity of at least its class size, so recycled buffers always satisfy
//! later requests of the same class without reallocating.
//!
//! Accounting is always on (a handful of relaxed atomics per allocation)
//! even when recycling is disabled, so the A/B toggle changes *where* bytes
//! come from but never *whether* they are measured:
//!
//! * `live_bytes` — bytes inside live [`crate::Storage`] values (requested
//!   lengths, not capacities — byte-accurate, no class-rounding slack).
//! * `pooled_free_bytes` — bytes parked in the free lists.
//! * `footprint_bytes` — live + pooled + scratch-owned: everything this
//!   layer holds from the system allocator. Its high-water mark
//!   (`peak_footprint_bytes`) is what `bench_mem` reports as the Table-8/9
//!   style peak footprint.
//!
//! All counters are deterministic for a fixed workload: tensor storage is
//! acquired and released on the thread that owns the tensor, and scratch
//! growth is serialized under the reservation lock (see [`crate::scratch`]).

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;

/// Element count of the smallest size class (256 B of `f32`s). Requests
/// below this still occupy a class-0 buffer so tiny per-step tensors
/// (scalar losses, biases) recycle instead of hitting the allocator.
pub const MIN_CLASS_ELEMS: usize = 64;

/// Number of power-of-two size classes: class `c` holds buffers of
/// `MIN_CLASS_ELEMS << c` elements, up to 2^30 elements (4 GiB). Larger
/// requests bypass recycling but stay accounted (the "oversize" bucket).
pub const NUM_CLASSES: usize = 25;

/// Element capacity of class `c`.
pub(crate) fn class_elems(c: usize) -> usize {
    MIN_CLASS_ELEMS << c
}

/// Smallest class whose capacity is >= `len`, or `None` for zero-length
/// and oversize requests.
pub(crate) fn class_of(len: usize) -> Option<usize> {
    if len == 0 {
        return None;
    }
    if len <= MIN_CLASS_ELEMS {
        return Some(0);
    }
    let c = (usize::BITS - (len - 1).leading_zeros()) as usize
        - MIN_CLASS_ELEMS.trailing_zeros() as usize;
    (c < NUM_CLASSES).then_some(c)
}

/// Largest class whose capacity is <= `cap` — the class a returning buffer
/// of that capacity can safely serve. `None` if below the smallest class.
fn floor_class_of_capacity(cap: usize) -> Option<usize> {
    if cap < MIN_CLASS_ELEMS {
        return None;
    }
    let c = (usize::BITS as usize - 1 - cap.leading_zeros() as usize)
        - MIN_CLASS_ELEMS.trailing_zeros() as usize;
    Some(c.min(NUM_CLASSES - 1))
}

/// Accounting index for a request of `len` elements: its class, or the
/// oversize bucket (`NUM_CLASSES`).
fn account_idx(len: usize) -> usize {
    class_of(len).unwrap_or(NUM_CLASSES)
}

struct ClassCounters {
    fresh: AtomicU64,
    reuses: AtomicU64,
    live_bytes: AtomicU64,
    peak_live_bytes: AtomicU64,
}

#[allow(clippy::declare_interior_mutable_const)]
const CLASS_COUNTERS_INIT: ClassCounters = ClassCounters {
    fresh: AtomicU64::new(0),
    reuses: AtomicU64::new(0),
    live_bytes: AtomicU64::new(0),
    peak_live_bytes: AtomicU64::new(0),
};

static CLASSES: [ClassCounters; NUM_CLASSES + 1] = [CLASS_COUNTERS_INIT; NUM_CLASSES + 1];

#[allow(clippy::declare_interior_mutable_const)]
const FREE_LIST_INIT: Mutex<Vec<Vec<f32>>> = Mutex::new(Vec::new());

static FREE: [Mutex<Vec<Vec<f32>>>; NUM_CLASSES] = [FREE_LIST_INIT; NUM_CLASSES];

static FRESH_ALLOCS: AtomicU64 = AtomicU64::new(0);
static REUSES: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
static POOLED_FREE_BYTES: AtomicU64 = AtomicU64::new(0);
static PEAK_FOOTPRINT_BYTES: AtomicU64 = AtomicU64::new(0);

/// 0 = disabled, 1 = enabled, 2 = read `HFTA_MEM_POOL` on first use.
static ENABLED: AtomicU8 = AtomicU8::new(2);

/// Whether the recycling pool is on (free-list reuse). Accounting runs
/// either way. Initialized from `HFTA_MEM_POOL` (`0`/`off`/`false`/`no`
/// disable it; anything else — including unset — enables it).
pub fn pool_enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        0 => false,
        1 => true,
        _ => {
            let on = !matches!(
                std::env::var("HFTA_MEM_POOL")
                    .unwrap_or_default()
                    .to_ascii_lowercase()
                    .as_str(),
                "0" | "off" | "false" | "no"
            );
            ENABLED.store(u8::from(on), Ordering::Relaxed);
            on
        }
    }
}

/// Overrides the pool toggle process-wide (for in-process A/B tests).
pub fn set_pool_enabled(on: bool) {
    ENABLED.store(u8::from(on), Ordering::Relaxed);
}

/// Updates the footprint high-water mark after any owned-bytes increase.
pub(crate) fn bump_footprint() {
    let fp = LIVE_BYTES.load(Ordering::Relaxed)
        + POOLED_FREE_BYTES.load(Ordering::Relaxed)
        + crate::scratch::owned_bytes();
    PEAK_FOOTPRINT_BYTES.fetch_max(fp, Ordering::Relaxed);
}

fn account_live_add(len: usize) {
    let bytes = (len * 4) as u64;
    let live = LIVE_BYTES.fetch_add(bytes, Ordering::Relaxed) + bytes;
    PEAK_LIVE_BYTES.fetch_max(live, Ordering::Relaxed);
    let c = &CLASSES[account_idx(len)];
    let class_live = c.live_bytes.fetch_add(bytes, Ordering::Relaxed) + bytes;
    c.peak_live_bytes.fetch_max(class_live, Ordering::Relaxed);
}

fn account_live_sub(len: usize) {
    let bytes = (len * 4) as u64;
    LIVE_BYTES.fetch_sub(bytes, Ordering::Relaxed);
    CLASSES[account_idx(len)]
        .live_bytes
        .fetch_sub(bytes, Ordering::Relaxed);
}

/// Allocates (or recycles) a buffer of exactly `len` elements, every
/// element set to `fill` — bit-identical to `vec![fill; len]`.
pub(crate) fn acquire(len: usize, fill: f32) -> Vec<f32> {
    acquire_with(len, |buf| buf.resize(len, fill))
}

/// Allocates (or recycles) a buffer holding a copy of `src`.
pub(crate) fn acquire_copy(src: &[f32]) -> Vec<f32> {
    acquire_with(src.len(), |buf| buf.extend_from_slice(src))
}

fn acquire_with(len: usize, init: impl FnOnce(&mut Vec<f32>)) -> Vec<f32> {
    if len == 0 {
        return Vec::new();
    }
    let idx = account_idx(len);
    if pool_enabled() {
        if let Some(c) = class_of(len) {
            if let Some(mut buf) = FREE[c].lock().unwrap().pop() {
                POOLED_FREE_BYTES.fetch_sub((buf.len() * 4) as u64, Ordering::Relaxed);
                buf.clear();
                init(&mut buf);
                debug_assert_eq!(buf.len(), len);
                REUSES.fetch_add(1, Ordering::Relaxed);
                CLASSES[idx].reuses.fetch_add(1, Ordering::Relaxed);
                account_live_add(len);
                return buf;
            }
            // Miss: allocate at full class capacity so the buffer serves
            // any later request of its class once recycled.
            let mut buf = Vec::with_capacity(class_elems(c));
            init(&mut buf);
            FRESH_ALLOCS.fetch_add(1, Ordering::Relaxed);
            CLASSES[idx].fresh.fetch_add(1, Ordering::Relaxed);
            account_live_add(len);
            bump_footprint();
            return buf;
        }
    }
    // Pool disabled or oversize: plain allocation, still accounted.
    let mut buf = Vec::with_capacity(len);
    init(&mut buf);
    FRESH_ALLOCS.fetch_add(1, Ordering::Relaxed);
    CLASSES[idx].fresh.fetch_add(1, Ordering::Relaxed);
    account_live_add(len);
    bump_footprint();
    buf
}

/// Accounts an externally allocated `Vec` entering [`crate::Storage`]
/// ownership, normalizing its capacity up to the class size (one
/// `reserve_exact`) so it recycles cleanly later.
pub(crate) fn adopt(buf: &mut Vec<f32>) {
    let len = buf.len();
    if len == 0 {
        return;
    }
    if pool_enabled() {
        if let Some(c) = class_of(len) {
            let want = class_elems(c);
            if buf.capacity() < want {
                buf.reserve_exact(want - len);
            }
        }
    }
    FRESH_ALLOCS.fetch_add(1, Ordering::Relaxed);
    CLASSES[account_idx(len)]
        .fresh
        .fetch_add(1, Ordering::Relaxed);
    account_live_add(len);
    bump_footprint();
}

/// Removes a buffer from live accounting without recycling it (the `Vec`
/// leaves [`crate::Storage`] ownership via `into_vec`).
pub(crate) fn disown(len: usize) {
    if len == 0 {
        return;
    }
    account_live_sub(len);
}

/// Returns a buffer to the pool (or drops it when recycling is off or the
/// capacity is below the smallest class).
pub(crate) fn release(buf: Vec<f32>) {
    let len = buf.len();
    if len == 0 {
        return;
    }
    account_live_sub(len);
    if !pool_enabled() {
        return;
    }
    let Some(c) = floor_class_of_capacity(buf.capacity()) else {
        return;
    };
    POOLED_FREE_BYTES.fetch_add((len * 4) as u64, Ordering::Relaxed);
    FREE[c].lock().unwrap().push(buf);
}

/// Per-size-class accounting snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassStats {
    /// Element capacity of the class (`0` marks the oversize bucket).
    pub elems: usize,
    /// Fresh allocations served for this class.
    pub fresh_allocs: u64,
    /// Free-list reuses served for this class.
    pub reuses: u64,
    /// Bytes currently live in this class.
    pub live_bytes: u64,
    /// High-water live bytes in this class.
    pub peak_live_bytes: u64,
}

/// Snapshot of the pool + scratch accounting counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemStats {
    /// Fresh storage allocations (pool misses, adopted `Vec`s, unpooled).
    pub pool_fresh_allocs: u64,
    /// Storage allocations served from the free lists.
    pub pool_reuses: u64,
    /// Bytes inside live `Storage` values right now.
    pub live_bytes: u64,
    /// High-water `live_bytes`.
    pub peak_live_bytes: u64,
    /// Bytes parked in the storage free lists.
    pub pooled_free_bytes: u64,
    /// Bytes owned by the scratch arenas (free or checked out).
    pub scratch_owned_bytes: u64,
    /// Scratch buffer checkouts served.
    pub scratch_checkouts: u64,
    /// Scratch allocations that hit the system allocator (reserve growth
    /// plus hot-path misses).
    pub scratch_fresh_allocs: u64,
    /// Current live + pooled + scratch bytes.
    pub footprint_bytes: u64,
    /// High-water `footprint_bytes` — the Table-8/9 peak-usage analogue.
    pub peak_footprint_bytes: u64,
    /// Per-class breakdown (last entry is the oversize bucket).
    pub classes: Vec<ClassStats>,
}

impl MemStats {
    /// Total fresh heap allocations (storage + scratch) — the counter the
    /// steady-state "zero fresh mallocs" guard asserts on.
    pub fn fresh_allocs(&self) -> u64 {
        self.pool_fresh_allocs + self.scratch_fresh_allocs
    }
}

/// Snapshots every counter.
///
/// The high-water marks are clamped so a snapshot is always internally
/// consistent (`peak >= current`): the current values are assembled from
/// several independent atomics, so under concurrent allocation they can
/// transiently exceed a peak recorded a moment earlier.
pub fn stats() -> MemStats {
    let live = LIVE_BYTES.load(Ordering::Relaxed);
    let pooled = POOLED_FREE_BYTES.load(Ordering::Relaxed);
    let scratch_owned = crate::scratch::owned_bytes();
    let footprint = live + pooled + scratch_owned;
    MemStats {
        pool_fresh_allocs: FRESH_ALLOCS.load(Ordering::Relaxed),
        pool_reuses: REUSES.load(Ordering::Relaxed),
        live_bytes: live,
        peak_live_bytes: PEAK_LIVE_BYTES.load(Ordering::Relaxed).max(live),
        pooled_free_bytes: pooled,
        scratch_owned_bytes: scratch_owned,
        scratch_checkouts: crate::scratch::checkouts(),
        scratch_fresh_allocs: crate::scratch::fresh_allocs(),
        footprint_bytes: footprint,
        peak_footprint_bytes: PEAK_FOOTPRINT_BYTES.load(Ordering::Relaxed).max(footprint),
        classes: (0..=NUM_CLASSES)
            .map(|i| ClassStats {
                elems: if i < NUM_CLASSES { class_elems(i) } else { 0 },
                fresh_allocs: CLASSES[i].fresh.load(Ordering::Relaxed),
                reuses: CLASSES[i].reuses.load(Ordering::Relaxed),
                live_bytes: CLASSES[i].live_bytes.load(Ordering::Relaxed),
                peak_live_bytes: CLASSES[i].peak_live_bytes.load(Ordering::Relaxed),
            })
            .collect(),
    }
}

/// Zeroes the event counters and re-bases the high-water marks on the
/// current state (live buffers and pool contents are untouched).
pub fn reset_stats() {
    FRESH_ALLOCS.store(0, Ordering::Relaxed);
    REUSES.store(0, Ordering::Relaxed);
    crate::scratch::reset_counters();
    PEAK_LIVE_BYTES.store(LIVE_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
    let fp = LIVE_BYTES.load(Ordering::Relaxed)
        + POOLED_FREE_BYTES.load(Ordering::Relaxed)
        + crate::scratch::owned_bytes();
    PEAK_FOOTPRINT_BYTES.store(fp, Ordering::Relaxed);
    for c in &CLASSES {
        c.fresh.store(0, Ordering::Relaxed);
        c.reuses.store(0, Ordering::Relaxed);
        c.peak_live_bytes
            .store(c.live_bytes.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

/// Releases every pooled free buffer and scratch buffer back to the system
/// allocator (live storages are untouched). Used by `bench_mem` to isolate
/// per-width footprint measurements.
pub fn trim() {
    for free in &FREE {
        for buf in free.lock().unwrap().drain(..) {
            POOLED_FREE_BYTES.fetch_sub((buf.len() * 4) as u64, Ordering::Relaxed);
        }
    }
    crate::scratch::trim_scratch();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_math_round_trips() {
        assert_eq!(class_of(0), None);
        assert_eq!(class_of(1), Some(0));
        assert_eq!(class_of(64), Some(0));
        assert_eq!(class_of(65), Some(1));
        assert_eq!(class_of(128), Some(1));
        assert_eq!(class_of(129), Some(2));
        // Every classed length fits its class; the class below would not.
        for len in [1, 63, 64, 100, 1000, 1 << 20, (1 << 20) + 1] {
            let c = class_of(len).unwrap();
            assert!(class_elems(c) >= len, "len {len} class {c}");
            if c > 0 {
                assert!(class_elems(c - 1) < len, "len {len} class {c} too big");
            }
        }
        // Oversize requests have no class.
        assert_eq!(class_of(class_elems(NUM_CLASSES - 1) + 1), None);
    }

    #[test]
    fn floor_class_fits_capacity() {
        assert_eq!(floor_class_of_capacity(63), None);
        assert_eq!(floor_class_of_capacity(64), Some(0));
        assert_eq!(floor_class_of_capacity(127), Some(0));
        assert_eq!(floor_class_of_capacity(128), Some(1));
        for cap in [64, 65, 1000, 1 << 24] {
            let c = floor_class_of_capacity(cap).unwrap();
            assert!(class_elems(c) <= cap);
        }
    }
}
