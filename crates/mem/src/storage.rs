//! [`Storage`] — the accounted, recyclable buffer under every `Tensor`.

use crate::pool;

/// A heap buffer of `f32`s owned by the memory layer.
///
/// `Storage` behaves like an immovable-length `Vec<f32>`: it is created at
/// its final length, read and written through slices, and never grows. On
/// drop the buffer returns to the size-class pool (when enabled) so the
/// next same-class allocation reuses it; every path keeps the live/peak
/// byte accounting in [`crate::pool`] exact.
///
/// # Example
///
/// ```
/// use hfta_mem::Storage;
/// let s = Storage::zeroed(8);
/// assert_eq!(s.as_slice(), &[0.0; 8]);
/// let t = Storage::from_vec(vec![1.0, 2.0]);
/// assert_eq!(t.into_vec(), vec![1.0, 2.0]);
/// ```
#[derive(Default)]
pub struct Storage {
    buf: Vec<f32>,
}

impl Storage {
    /// A buffer of `len` zeros — bit-identical to `vec![0.0; len]`.
    pub fn zeroed(len: usize) -> Self {
        Storage {
            buf: pool::acquire(len, 0.0),
        }
    }

    /// A buffer of `len` copies of `value` — bit-identical to
    /// `vec![value; len]`.
    pub fn filled(len: usize, value: f32) -> Self {
        Storage {
            buf: pool::acquire(len, value),
        }
    }

    /// A buffer holding a copy of `src`.
    pub fn copy_of(src: &[f32]) -> Self {
        Storage {
            buf: pool::acquire_copy(src),
        }
    }

    /// Adopts an externally allocated `Vec` (accounted from here on; its
    /// capacity is normalized up to the class size so it recycles).
    pub fn from_vec(mut buf: Vec<f32>) -> Self {
        pool::adopt(&mut buf);
        Storage { buf }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Immutable element view.
    pub fn as_slice(&self) -> &[f32] {
        &self.buf
    }

    /// Mutable element view (the length never changes).
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.buf
    }

    /// Extracts the underlying `Vec`, bypassing recycling (the buffer
    /// leaves the accounted world).
    pub fn into_vec(mut self) -> Vec<f32> {
        let buf = std::mem::take(&mut self.buf);
        pool::disown(buf.len());
        std::mem::forget(self);
        buf
    }
}

impl Drop for Storage {
    fn drop(&mut self) {
        pool::release(std::mem::take(&mut self.buf));
    }
}

impl Clone for Storage {
    fn clone(&self) -> Self {
        Storage::copy_of(&self.buf)
    }
}

impl PartialEq for Storage {
    fn eq(&self, other: &Self) -> bool {
        self.buf == other.buf
    }
}

impl std::fmt::Debug for Storage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.buf.fmt(f)
    }
}

impl std::ops::Deref for Storage {
    type Target = [f32];

    fn deref(&self) -> &[f32] {
        &self.buf
    }
}

impl std::ops::DerefMut for Storage {
    fn deref_mut(&mut self) -> &mut [f32] {
        &mut self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_match_vec_semantics() {
        assert_eq!(Storage::zeroed(3).as_slice(), &[0.0; 3]);
        assert_eq!(Storage::filled(2, 7.5).as_slice(), &[7.5, 7.5]);
        assert_eq!(Storage::copy_of(&[1.0, 2.0]).as_slice(), &[1.0, 2.0]);
        assert_eq!(Storage::zeroed(0).len(), 0);
        assert!(Storage::default().is_empty());
    }

    #[test]
    fn from_vec_round_trips() {
        let s = Storage::from_vec(vec![1.0, 2.0, 3.0]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.into_vec(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn clone_and_eq() {
        let a = Storage::from_vec(vec![1.0, 2.0]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_ne!(a, Storage::zeroed(2));
    }

    #[test]
    fn mutation_through_slice() {
        let mut s = Storage::zeroed(4);
        s.as_mut_slice()[2] = 9.0;
        assert_eq!(s[2], 9.0);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn recycling_reuses_same_class() {
        // Serialized against other stat-sensitive tests elsewhere; here we
        // only assert relative deltas that hold regardless of interleaving
        // within this single-threaded test.
        crate::set_pool_enabled(true);
        let before = crate::stats();
        drop(Storage::zeroed(1000));
        let s = Storage::zeroed(900); // same 1024-element class
        let after = crate::stats();
        assert!(after.pool_reuses > before.pool_reuses, "no reuse recorded");
        drop(s);
    }
}
