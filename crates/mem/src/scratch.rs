//! Step-scoped scratch arenas for kernel workspace.
//!
//! Kernels that need per-chunk working buffers (im2col columns, GEMM
//! packing panels) check them out with [`with`], which zero-fills the
//! buffer — bit-identical to the `vec![0.0; len]` they replace — runs the
//! closure, and parks the buffer again. The free lists are shared across
//! threads, so a handful of buffers serve the whole worker pool forever.
//!
//! # Deterministic zero-miss steady state
//!
//! Call sites declare their worst-case concurrent demand with [`reserve`]
//! *before* fanning out: `reserve(tag, len, count)` records a per-(class,
//! tag) target and grows the arena (under one lock, so the growth is
//! serialized and its byte count deterministic) until the class owns the
//! *sum* of its tags' targets. Distinct tags may hold buffers of the same
//! class simultaneously (a conv worker's columns plus the GEMM panel of
//! its nested call), which is why targets sum across tags rather than
//! max. After the first step every checkout hits, so `fresh_allocs`
//! stays flat — the property the steady-state allocation guard asserts.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::pool::{self, class_elems, class_of, NUM_CLASSES};

#[allow(clippy::declare_interior_mutable_const)]
const FREE_LIST_INIT: Mutex<Vec<Vec<f32>>> = Mutex::new(Vec::new());

static FREE: [Mutex<Vec<Vec<f32>>>; NUM_CLASSES] = [FREE_LIST_INIT; NUM_CLASSES];

#[allow(clippy::declare_interior_mutable_const)]
const COUNT_INIT: AtomicU64 = AtomicU64::new(0);

/// Buffers ever created per class (free or checked out).
static OWNED_COUNT: [AtomicU64; NUM_CLASSES] = [COUNT_INIT; NUM_CLASSES];
static OWNED_BYTES: AtomicU64 = AtomicU64::new(0);
static CHECKOUTS: AtomicU64 = AtomicU64::new(0);
static FRESH: AtomicU64 = AtomicU64::new(0);

/// Reservation targets: (class, tag) -> worst-case concurrent buffers.
static TARGETS: Mutex<Option<HashMap<(usize, &'static str), u64>>> = Mutex::new(None);

/// Bytes the scratch arenas hold from the system allocator (class
/// capacities — scratch buffers are always full-class-sized).
pub(crate) fn owned_bytes() -> u64 {
    OWNED_BYTES.load(Ordering::Relaxed)
}

pub(crate) fn checkouts() -> u64 {
    CHECKOUTS.load(Ordering::Relaxed)
}

pub(crate) fn fresh_allocs() -> u64 {
    FRESH.load(Ordering::Relaxed)
}

pub(crate) fn reset_counters() {
    CHECKOUTS.store(0, Ordering::Relaxed);
    FRESH.store(0, Ordering::Relaxed);
}

fn new_class_buffer(c: usize) -> Vec<f32> {
    let buf = Vec::with_capacity(class_elems(c));
    OWNED_COUNT[c].fetch_add(1, Ordering::Relaxed);
    OWNED_BYTES.fetch_add((class_elems(c) * 4) as u64, Ordering::Relaxed);
    FRESH.fetch_add(1, Ordering::Relaxed);
    buf
}

/// Declares that up to `count` buffers of `len` elements may be checked
/// out concurrently by call site `tag`, and grows the arena to the sum of
/// all tags' targets for that class. Idempotent; a no-op when the pool is
/// disabled or the request is oversize.
pub fn reserve(tag: &'static str, len: usize, count: usize) {
    if count == 0 || !pool::pool_enabled() {
        return;
    }
    let Some(c) = class_of(len) else {
        return;
    };
    let mut guard = TARGETS.lock().unwrap();
    let targets = guard.get_or_insert_with(HashMap::new);
    let entry = targets.entry((c, tag)).or_insert(0);
    *entry = (*entry).max(count as u64);
    let class_target: u64 = targets
        .iter()
        .filter(|((cls, _), _)| *cls == c)
        .map(|(_, n)| *n)
        .sum();
    // Growth stays under the TARGETS lock so concurrent reservations (e.g.
    // nested GEMMs racing on their first dispatch) produce a deterministic
    // owned count and byte total.
    while OWNED_COUNT[c].load(Ordering::Relaxed) < class_target {
        let buf = new_class_buffer(c);
        FREE[c].lock().unwrap().push(buf);
    }
    drop(guard);
    pool::bump_footprint();
}

/// Checks out a zero-filled scratch buffer of `len` elements, runs `f`,
/// and returns the buffer to the arena. Falls back to a plain allocation
/// when the pool is disabled or the request is oversize.
pub fn with<R>(len: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    if len == 0 {
        return f(&mut []);
    }
    if !pool::pool_enabled() || class_of(len).is_none() {
        FRESH.fetch_add(1, Ordering::Relaxed);
        let mut buf = vec![0.0f32; len];
        return f(&mut buf);
    }
    let c = class_of(len).expect("checked above");
    let popped = FREE[c].lock().unwrap().pop();
    let mut buf = match popped {
        Some(buf) => buf,
        None => {
            // Miss: a call site under-reserved (or skipped reserve). Grow
            // the arena — correctness first — and let the fresh counter
            // expose the gap to the steady-state guard.
            let buf = new_class_buffer(c);
            pool::bump_footprint();
            buf
        }
    };
    CHECKOUTS.fetch_add(1, Ordering::Relaxed);
    buf.clear();
    buf.resize(len, 0.0);
    let r = f(&mut buf);
    FREE[c].lock().unwrap().push(buf);
    r
}

/// Drops every parked scratch buffer and forgets all reservation targets.
pub(crate) fn trim_scratch() {
    let mut guard = TARGETS.lock().unwrap();
    if let Some(targets) = guard.as_mut() {
        targets.clear();
    }
    for (c, free) in FREE.iter().enumerate() {
        let mut list = free.lock().unwrap();
        let n = list.len() as u64;
        list.clear();
        OWNED_COUNT[c].fetch_sub(n, Ordering::Relaxed);
        OWNED_BYTES.fetch_sub(n * (class_elems(c) * 4) as u64, Ordering::Relaxed);
    }
}
