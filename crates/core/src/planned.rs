//! Planned (partially fused) execution: run an `hfta-plan`
//! [`FusionPlan`] over the existing fused-op machinery.
//!
//! A [`PlannedArray`] materializes each plan block at its own width —
//! fused blocks as width-`k` fused operators, serial blocks as width-1
//! fused operators — and runs them all on **one tape**, stitching per-lane
//! activations into block-fused activations with differentiable
//! `concat`/`narrow` at block boundaries. Because every fused operator
//! computes each lane independently of the array width and of lane
//! position (the width-independence the quarantine tests prove), and
//! concat/narrow are bit-preserving copies, a planned run is
//! **bit-identical per lane** to the all-serial plan over the same
//! graphs — and a fully homogeneous plan is bit-identical to the
//! hand-fused [`crate::array::ModelArray`] path built from the same
//! per-lane models.
//!
//! Parameter initialization is keyed to `(lane seed, op index in lane)`:
//! each lane's serial layers are constructed first, in program order,
//! from that lane's own RNG, and blocks are then assembled with the
//! `from_models` fusers. The plan's shape therefore never influences
//! initial parameter bits.
//!
//! The [`PlannedOptimizer`] is the partially fused optimizer: one fused
//! optimizer per parameter-carrying block, with per-block hyper-parameter
//! vectors projected through the block's lane map. Lane surgery
//! ([`PlannedOptimizer::extract_lane`] / [`PlannedOptimizer::splice_lanes`])
//! reuses [`crate::surgery`] per block and concatenates the per-block
//! segments in plan order — which is each lane's own program order — so
//! extracted [`LaneState`]s are interchangeable with width-1 arrays of
//! the same program and round-trip through [`crate::snapshot`]
//! checkpoints unchanged.

use hfta_nn::layers::{
    BatchNorm, Conv1d, Conv2d, Conv2dCfg, ConvTranspose2d, LeakyRelu, Linear, LinearCfg, MaxPool2d,
    Relu, Tanh,
};
use hfta_nn::{Module, Tape, Var};
use hfta_plan::{FusionPlan, ModelGraph, OpKind, OpSpec};
use hfta_tensor::{Rng, Tensor};

use crate::error::{FusionError, Result};
use crate::format::{array_to_conv, conv_to_array};
use crate::loss::{fused_cross_entropy, Reduction};
use crate::ops::{
    FusedBatchNorm, FusedConv1d, FusedConv2d, FusedConvTranspose2d, FusedLeakyRelu, FusedLinear,
    FusedMaxPool2d, FusedModule, FusedParameter, FusedRelu, FusedTanh,
};
use crate::optim::{FusedAdam, FusedOptimizer, FusedSgd, PerModel};
use crate::surgery::{self, LaneState};

/// One lane's serial layer, pre-fusion. Construction order (per lane, in
/// program order, from the lane's own RNG) fixes the parameter bits.
enum SerialLayer {
    Conv2d(Conv2d),
    ConvTranspose2d(ConvTranspose2d),
    Conv1d(Conv1d),
    BatchNorm(BatchNorm),
    Relu,
    LeakyRelu,
    Tanh,
    MaxPool2d,
    Flatten,
    Linear(Linear),
}

impl SerialLayer {
    fn build(spec: &OpSpec, rng: &mut Rng) -> Result<SerialLayer> {
        let conv_cfg = |s: &OpSpec| {
            Conv2dCfg::new(s.c_in, s.c_out, s.kernel)
                .stride(s.stride)
                .padding(s.padding)
                .groups(s.groups)
                .bias(s.bias)
        };
        Ok(match spec.kind {
            OpKind::Conv2d => SerialLayer::Conv2d(Conv2d::new(conv_cfg(spec), rng)),
            OpKind::ConvTranspose2d => {
                SerialLayer::ConvTranspose2d(ConvTranspose2d::new(conv_cfg(spec), rng))
            }
            OpKind::Conv1d => SerialLayer::Conv1d(Conv1d::new(
                spec.c_in,
                spec.c_out,
                spec.kernel,
                spec.stride,
                spec.padding,
                spec.groups.max(1),
                rng,
            )),
            OpKind::BatchNorm => SerialLayer::BatchNorm(BatchNorm::new(spec.c_in)),
            OpKind::Relu => SerialLayer::Relu,
            OpKind::LeakyRelu => SerialLayer::LeakyRelu,
            OpKind::Tanh => SerialLayer::Tanh,
            OpKind::MaxPool2d => SerialLayer::MaxPool2d,
            OpKind::Flatten => SerialLayer::Flatten,
            OpKind::Linear => SerialLayer::Linear(Linear::new(
                LinearCfg::new(spec.c_in, spec.c_out).bias(spec.bias),
                rng,
            )),
            OpKind::GlobalMaxPool | OpKind::ResidualAdd => {
                return Err(FusionError::StructureMismatch {
                    detail: format!(
                        "{:?} is plannable but not executable by PlannedArray",
                        spec.kind
                    ),
                })
            }
        })
    }
}

/// One fused op of one block, at that block's width.
enum ExecOp {
    Conv2d(FusedConv2d),
    ConvTranspose2d(FusedConvTranspose2d),
    Conv1d(FusedConv1d),
    BatchNorm(FusedBatchNorm),
    Relu(FusedRelu),
    LeakyRelu(FusedLeakyRelu),
    Tanh(FusedTanh),
    MaxPool2d(FusedMaxPool2d),
    Flatten,
    Linear(FusedLinear),
}

macro_rules! collect_layers {
    ($models:expr, $variant:ident, $kind:expr) => {{
        let mut out = Vec::with_capacity($models.len());
        for m in $models {
            match m {
                SerialLayer::$variant(inner) => out.push(inner),
                _ => {
                    return Err(FusionError::StructureMismatch {
                        detail: format!("plan block mixes op kinds at a {} slot", $kind),
                    })
                }
            }
        }
        out
    }};
}

impl ExecOp {
    /// Fuses one op slot across the block's lanes. `models` holds each
    /// participating lane's serial layer for this slot, in lane order.
    fn fuse(models: Vec<SerialLayer>, spec: &OpSpec) -> Result<ExecOp> {
        let b = models.len();
        Ok(match spec.kind {
            OpKind::Conv2d => ExecOp::Conv2d(FusedConv2d::from_models(&collect_layers!(
                models, Conv2d, "Conv2d"
            ))?),
            OpKind::ConvTranspose2d => ExecOp::ConvTranspose2d(FusedConvTranspose2d::from_models(
                &collect_layers!(models, ConvTranspose2d, "ConvTranspose2d"),
            )?),
            OpKind::Conv1d => ExecOp::Conv1d(FusedConv1d::from_models(&collect_layers!(
                models, Conv1d, "Conv1d"
            ))?),
            OpKind::BatchNorm => ExecOp::BatchNorm(FusedBatchNorm::from_models(&collect_layers!(
                models,
                BatchNorm,
                "BatchNorm"
            ))?),
            OpKind::Relu => ExecOp::Relu(FusedRelu::new(b, Relu)),
            OpKind::LeakyRelu => {
                ExecOp::LeakyRelu(FusedLeakyRelu::new(b, LeakyRelu::new(spec.slope())))
            }
            OpKind::Tanh => ExecOp::Tanh(FusedTanh::new(b, Tanh)),
            OpKind::MaxPool2d => {
                ExecOp::MaxPool2d(FusedMaxPool2d::new(b, MaxPool2d::new(spec.kernel)))
            }
            OpKind::Flatten => ExecOp::Flatten,
            OpKind::Linear => ExecOp::Linear(FusedLinear::from_models(&collect_layers!(
                models, Linear, "Linear"
            ))?),
            OpKind::GlobalMaxPool | OpKind::ResidualAdd => {
                return Err(FusionError::StructureMismatch {
                    detail: format!("{:?} cannot execute in a PlannedArray", spec.kind),
                })
            }
        })
    }

    /// Applies the op to a block-fused activation. Conv-format ops see
    /// `[N, B*C, ...]`; `Flatten` collapses to `[N, B*F]`; `Linear` hops
    /// through array format and back so the block boundary stays on the
    /// channel axis.
    fn forward(&self, x: &Var, b: usize) -> Var {
        match self {
            ExecOp::Conv2d(m) => m.forward(x),
            ExecOp::ConvTranspose2d(m) => m.forward(x),
            ExecOp::Conv1d(m) => m.forward(x),
            ExecOp::BatchNorm(m) => m.forward(x),
            ExecOp::Relu(m) => m.forward(x),
            ExecOp::LeakyRelu(m) => m.forward(x),
            ExecOp::Tanh(m) => m.forward(x),
            ExecOp::MaxPool2d(m) => m.forward(x),
            ExecOp::Flatten => {
                let dims = x.dims();
                let n = dims[0];
                let rest: usize = dims[1..].iter().product();
                x.reshape(&[n, rest])
            }
            ExecOp::Linear(m) => array_to_conv(&m.forward(&conv_to_array(x, b))),
        }
    }

    fn fused_parameters(&self) -> Vec<FusedParameter> {
        match self {
            ExecOp::Conv2d(m) => m.fused_parameters(),
            ExecOp::ConvTranspose2d(m) => m.fused_parameters(),
            ExecOp::Conv1d(m) => m.fused_parameters(),
            ExecOp::BatchNorm(m) => m.fused_parameters(),
            ExecOp::Linear(m) => m.fused_parameters(),
            _ => Vec::new(),
        }
    }

    fn set_training(&self, training: bool) {
        match self {
            ExecOp::Conv2d(m) => m.set_training(training),
            ExecOp::ConvTranspose2d(m) => m.set_training(training),
            ExecOp::Conv1d(m) => m.set_training(training),
            ExecOp::BatchNorm(m) => m.set_training(training),
            ExecOp::Relu(m) => m.set_training(training),
            ExecOp::LeakyRelu(m) => m.set_training(training),
            ExecOp::Tanh(m) => m.set_training(training),
            ExecOp::MaxPool2d(m) => m.set_training(training),
            ExecOp::Flatten => {}
            ExecOp::Linear(m) => m.set_training(training),
        }
    }
}

/// One materialized plan block: its lane map and fused ops at the
/// block's width.
struct ExecBlock {
    lanes: Vec<usize>,
    ops: Vec<ExecOp>,
    params: Vec<FusedParameter>,
}

impl ExecBlock {
    fn lane_index(&self, lane: usize) -> Option<usize> {
        self.lanes.iter().position(|&l| l == lane)
    }
}

/// A partially fused model array executing a [`FusionPlan`].
pub struct PlannedArray {
    plan: FusionPlan,
    blocks: Vec<ExecBlock>,
}

impl PlannedArray {
    /// Materializes `plan` over `graphs`: builds each lane's serial
    /// layers in program order from `seeds[lane]`, then fuses each block
    /// at its own width with the `from_models` fusers.
    ///
    /// # Errors
    ///
    /// Structure errors when the plan does not cover the graphs, an op is
    /// not executable ([`hfta_plan::OpKind::GlobalMaxPool`] /
    /// [`hfta_plan::OpKind::ResidualAdd`]), or fusion shape checks fail.
    pub fn build(graphs: &[ModelGraph], plan: &FusionPlan, seeds: &[u64]) -> Result<PlannedArray> {
        if graphs.is_empty() {
            return Err(FusionError::Empty);
        }
        if plan.lanes != graphs.len() || seeds.len() != graphs.len() {
            return Err(FusionError::StructureMismatch {
                detail: format!(
                    "plan covers {} lanes, got {} graphs and {} seeds",
                    plan.lanes,
                    graphs.len(),
                    seeds.len()
                ),
            });
        }
        for (l, g) in graphs.iter().enumerate() {
            if plan.lane_ops[l] != g.ops.len() {
                return Err(FusionError::StructureMismatch {
                    detail: format!(
                        "plan expects {} ops in lane {l}, graph {:?} has {}",
                        plan.lane_ops[l],
                        g.name,
                        g.ops.len()
                    ),
                });
            }
        }

        // Per-lane serial layers, keyed to (lane seed, op index in lane).
        let mut lane_layers: Vec<Vec<Option<SerialLayer>>> = Vec::with_capacity(graphs.len());
        for (l, g) in graphs.iter().enumerate() {
            let mut rng = Rng::seed_from(seeds[l]);
            let mut layers = Vec::with_capacity(g.ops.len());
            for op in &g.ops {
                layers.push(Some(SerialLayer::build(op, &mut rng)?));
            }
            lane_layers.push(layers);
        }

        let mut blocks = Vec::with_capacity(plan.blocks.len());
        for pb in &plan.blocks {
            let mut ops = Vec::with_capacity(pb.ops.len());
            for (oi, spec) in pb.ops.iter().enumerate() {
                let mut models = Vec::with_capacity(pb.lanes.len());
                for (&l, &s) in pb.lanes.iter().zip(&pb.starts) {
                    let slot = lane_layers[l][s + oi].take().ok_or_else(|| {
                        FusionError::StructureMismatch {
                            detail: format!("plan covers lane {l} op {} twice", s + oi),
                        }
                    })?;
                    models.push(slot);
                }
                ops.push(ExecOp::fuse(models, spec)?);
            }
            let params = ops.iter().flat_map(ExecOp::fused_parameters).collect();
            blocks.push(ExecBlock {
                lanes: pb.lanes.clone(),
                ops,
                params,
            });
        }
        if lane_layers.iter().flatten().any(Option::is_some) {
            return Err(FusionError::StructureMismatch {
                detail: "plan does not cover every op of every lane".into(),
            });
        }
        Ok(PlannedArray {
            plan: plan.clone(),
            blocks,
        })
    }

    /// Number of lanes (trials) in the array.
    pub fn lanes(&self) -> usize {
        self.plan.lanes
    }

    /// The plan this array executes.
    pub fn plan(&self) -> &FusionPlan {
        &self.plan
    }

    /// Every block's fused parameters, in plan order.
    pub fn fused_parameters(&self) -> Vec<FusedParameter> {
        self.blocks.iter().flat_map(|b| b.params.clone()).collect()
    }

    /// Number of parameter tensors owned by lane `lane` across blocks.
    pub fn lane_param_count(&self, lane: usize) -> usize {
        self.blocks
            .iter()
            .filter(|b| b.lane_index(lane).is_some())
            .map(|b| b.params.len())
            .sum()
    }

    /// Switches training/eval mode on every block.
    pub fn set_training(&self, training: bool) {
        for b in &self.blocks {
            for op in &b.ops {
                op.set_training(training);
            }
        }
    }

    /// Runs the plan: per-lane inputs in, per-lane outputs out, all on
    /// one tape. Fused blocks gather their lanes' activations with a
    /// channel-axis concat and scatter them back with narrows; serial
    /// blocks run width-1 on the lane's own activation.
    ///
    /// # Errors
    ///
    /// Returns a structure error when the input count or batch sizes
    /// disagree with the plan.
    pub fn forward(&self, inputs: &[Tensor]) -> Result<(Tape, Vec<Var>)> {
        if inputs.len() != self.lanes() {
            return Err(FusionError::StructureMismatch {
                detail: format!("{} inputs for {} lanes", inputs.len(), self.lanes()),
            });
        }
        let n = inputs[0].dim(0);
        if inputs.iter().any(|t| t.dim(0) != n) {
            return Err(FusionError::StructureMismatch {
                detail: "lanes disagree on batch size".into(),
            });
        }
        let tape = Tape::new();
        let mut acts: Vec<Option<Var>> =
            inputs.iter().map(|t| Some(tape.leaf(t.clone()))).collect();
        for block in &self.blocks {
            let b = block.lanes.len();
            let mut x = if b == 1 {
                acts[block.lanes[0]].take().expect("lane activation live")
            } else {
                let gathered: Vec<Var> = block
                    .lanes
                    .iter()
                    .map(|&l| acts[l].take().expect("lane activation live"))
                    .collect();
                let refs: Vec<&Var> = gathered.iter().collect();
                Var::concat(&refs, 1)
            };
            for op in &block.ops {
                x = op.forward(&x, b);
            }
            if b == 1 {
                acts[block.lanes[0]] = Some(x);
            } else {
                let c = x.dim(1) / b;
                for (j, &l) in block.lanes.iter().enumerate() {
                    acts[l] = Some(x.narrow(1, j * c, c));
                }
            }
        }
        let outs = acts
            .into_iter()
            .map(|a| a.expect("every lane produced an output"))
            .collect();
        Ok((tape, outs))
    }
}

/// Per-lane mean cross-entropy losses and their sum, formulated
/// identically for planned and serial runs: each lane's logits `[N, C]`
/// are lifted to a width-1 array-format `[1, N, C]` fused loss. The sum
/// backpropagates gradient 1.0 into every lane's loss — exactly what a
/// per-lane serial backward sees — so summing keeps per-lane gradients
/// bit-identical while using one tape.
pub fn per_lane_ce(outputs: &[Var], targets: &[Vec<usize>]) -> (Vec<f32>, Var) {
    assert_eq!(outputs.len(), targets.len(), "one target set per lane");
    let mut total: Option<Var> = None;
    let mut losses = Vec::with_capacity(outputs.len());
    for (out, t) in outputs.iter().zip(targets) {
        let dims = out.dims();
        assert_eq!(dims.len(), 2, "per-lane logits must be [N, C]");
        let lifted = out.reshape(&[1, dims[0], dims[1]]);
        let loss = fused_cross_entropy(&lifted, t, Reduction::Mean);
        losses.push(loss.value().to_vec()[0]);
        total = Some(match total {
            Some(acc) => acc.add(&loss),
            None => loss,
        });
    }
    (losses, total.expect("at least one lane"))
}

/// The partially fused optimizer: one fused optimizer per
/// parameter-carrying block, hyper-parameters projected through each
/// block's lane map.
pub struct PlannedOptimizer {
    /// One entry per array block; `None` for parameter-less blocks.
    opts: Vec<Option<Box<dyn FusedOptimizer>>>,
    lane_sets: Vec<Vec<usize>>,
    lanes: usize,
    quarantined: Vec<bool>,
}

impl PlannedOptimizer {
    fn build(
        array: &PlannedArray,
        lr: &PerModel,
        make: impl Fn(Vec<FusedParameter>, PerModel) -> Result<Box<dyn FusedOptimizer>>,
    ) -> Result<PlannedOptimizer> {
        lr.check_b(array.lanes())?;
        let mut opts = Vec::with_capacity(array.blocks.len());
        for block in &array.blocks {
            if block.params.is_empty() {
                opts.push(None);
                continue;
            }
            let block_lr = PerModel::new(block.lanes.iter().map(|&l| lr.get(l)).collect());
            opts.push(Some(make(block.params.clone(), block_lr)?));
        }
        Ok(PlannedOptimizer {
            opts,
            lane_sets: array.blocks.iter().map(|b| b.lanes.clone()).collect(),
            lanes: array.lanes(),
            quarantined: vec![false; array.lanes()],
        })
    }

    /// Per-block SGD (optionally with momentum) over per-lane rates.
    ///
    /// # Errors
    ///
    /// Propagates hyper-parameter/width mismatches from the block
    /// optimizers.
    pub fn sgd(array: &PlannedArray, lr: &PerModel, momentum: f32) -> Result<PlannedOptimizer> {
        PlannedOptimizer::build(array, lr, |params, block_lr| {
            Ok(Box::new(FusedSgd::new(params, block_lr, momentum)?))
        })
    }

    /// Per-block Adam over per-lane rates.
    ///
    /// # Errors
    ///
    /// Propagates hyper-parameter/width mismatches from the block
    /// optimizers.
    pub fn adam(array: &PlannedArray, lr: &PerModel) -> Result<PlannedOptimizer> {
        PlannedOptimizer::build(array, lr, |params, block_lr| {
            Ok(Box::new(FusedAdam::new(params, block_lr)?))
        })
    }

    /// Applies one update on every block.
    pub fn step(&mut self) {
        for opt in self.opts.iter_mut().flatten() {
            opt.step();
        }
    }

    /// Zeroes every block's gradients.
    pub fn zero_grad(&mut self) {
        for opt in self.opts.iter_mut().flatten() {
            opt.zero_grad();
        }
    }

    /// Quarantines global lane `lane` in every block containing it: the
    /// lane's gradients and optimizer state are zeroed now and re-masked
    /// each step, while every other lane — fused alongside it or serial
    /// elsewhere — continues bit-identically.
    pub fn quarantine(&mut self, lane: usize) {
        assert!(lane < self.lanes, "lane {lane} out of range");
        self.quarantined[lane] = true;
        for (opt, lanes) in self.opts.iter_mut().zip(&self.lane_sets) {
            if let (Some(opt), Some(j)) = (opt.as_mut(), lanes.iter().position(|&l| l == lane)) {
                opt.quarantine(j);
            }
        }
    }

    /// Which global lanes are quarantined.
    pub fn quarantined(&self) -> &[bool] {
        &self.quarantined
    }

    /// The shared optimizer step counter (asserted equal across blocks).
    pub fn step_count(&self) -> u64 {
        let mut counts = self.opts.iter().flatten().map(|o| o.step_count());
        let first = counts.next().unwrap_or(0);
        debug_assert!(
            self.opts.iter().flatten().all(|o| o.step_count() == first),
            "planned blocks disagree on step count"
        );
        first
    }

    /// Restores the shared step counter on every block.
    pub fn set_step_count(&mut self, t: u64) {
        for opt in self.opts.iter_mut().flatten() {
            opt.set_step_count(t);
        }
    }

    /// Extracts global lane `lane`'s complete training state: per-block
    /// [`surgery::extract_lane`] segments concatenated in plan order —
    /// each lane's own program order — so the result is interchangeable
    /// with a width-1 array's lane state and snapshot-compatible.
    pub fn extract_lane(&self, array: &PlannedArray, lane: usize) -> LaneState {
        assert!(lane < self.lanes, "lane {lane} out of range");
        let mut params = Vec::new();
        let mut opt_state = Vec::new();
        for (block, opt) in array.blocks.iter().zip(&self.opts) {
            let Some(j) = block.lane_index(lane) else {
                continue;
            };
            if block.params.is_empty() {
                continue;
            }
            let opt = opt.as_ref().expect("parameter blocks have optimizers");
            let seg = surgery::extract_lane(&block.params, opt.as_ref(), j);
            params.extend(seg.params);
            opt_state.extend(seg.opt_state);
        }
        LaneState {
            params,
            opt_state,
            step_count: self.step_count(),
            ctx: None,
        }
    }

    /// Writes one extracted lane state into global lane `lane`,
    /// splitting it back into per-block segments. Does not touch the
    /// step counter (see [`PlannedOptimizer::splice_lanes`]).
    ///
    /// # Panics
    ///
    /// Panics when the state's parameter count disagrees with the lane's
    /// program.
    pub fn write_lane(&mut self, array: &PlannedArray, lane: usize, state: &LaneState) {
        assert!(lane < self.lanes, "lane {lane} out of range");
        assert_eq!(
            state.params.len(),
            array.lane_param_count(lane),
            "lane state does not match lane {lane}'s program"
        );
        let mut off = 0;
        for (block, opt) in array.blocks.iter().zip(self.opts.iter_mut()) {
            let Some(j) = block.lane_index(lane) else {
                continue;
            };
            if block.params.is_empty() {
                continue;
            }
            let count = block.params.len();
            let seg = LaneState {
                params: state.params[off..off + count].to_vec(),
                opt_state: state.opt_state[off..off + count].to_vec(),
                step_count: state.step_count,
                ctx: state.ctx,
            };
            let opt = opt.as_mut().expect("parameter blocks have optimizers");
            surgery::write_lane(&block.params, opt.as_mut(), j, &seg);
            off += count;
        }
    }

    /// Splices one extracted state per lane into the array (lane `i`
    /// receives `lanes[i]`) and restores the shared step counter —
    /// the planned counterpart of [`surgery::splice_lanes`].
    ///
    /// # Panics
    ///
    /// Panics on width or step-count disagreement.
    pub fn splice_lanes(&mut self, array: &PlannedArray, lanes: &[LaneState]) {
        assert_eq!(
            lanes.len(),
            self.lanes,
            "need exactly one lane state per lane"
        );
        let t = lanes[0].step_count;
        assert!(
            lanes.iter().all(|l| l.step_count == t),
            "spliced lanes disagree on the optimizer step count"
        );
        for (i, state) in lanes.iter().enumerate() {
            self.write_lane(array, i, state);
        }
        self.set_step_count(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::ModelArray;
    use hfta_nn::layers::{Conv2dCfg, LinearCfg};
    use hfta_nn::Parameter;
    use hfta_tensor::{Rng, Tensor};

    const INPUT: [usize; 3] = [2, 6, 6];
    const CLASSES: usize = 4;
    const FEATURES: usize = 3 * 6 * 6;

    fn base_ops() -> Vec<OpSpec> {
        vec![
            OpSpec::conv2d(Conv2dCfg::new(2, 3, 3).stride(1).padding(1).bias(false)),
            OpSpec::leaky_relu(0.2),
            OpSpec::flatten(),
            OpSpec::linear(LinearCfg::new(FEATURES, CLASSES)),
        ]
    }

    /// Base arch with a shape-preserving refinement block after the
    /// first activation — fusible prefix and suffix, serial middle.
    fn variant_ops() -> Vec<OpSpec> {
        let mut ops = base_ops();
        ops.insert(
            2,
            OpSpec::conv2d(Conv2dCfg::new(3, 3, 3).stride(1).padding(1).bias(false)),
        );
        ops.insert(3, OpSpec::relu());
        ops
    }

    fn mixed_graphs() -> Vec<ModelGraph> {
        vec![
            ModelGraph::new("base0", INPUT.to_vec(), base_ops()),
            ModelGraph::new("variant1", INPUT.to_vec(), variant_ops()),
            ModelGraph::new("base2", INPUT.to_vec(), base_ops()),
            ModelGraph::new("variant3", INPUT.to_vec(), variant_ops()),
        ]
    }

    fn seeds(lanes: usize) -> Vec<u64> {
        (0..lanes as u64).map(|l| 100 + l).collect()
    }

    fn lrs(lanes: usize) -> PerModel {
        PerModel::new((0..lanes).map(|l| 0.05 + 0.01 * l as f32).collect())
    }

    fn data(lanes: usize, n: usize) -> (Vec<Tensor>, Vec<Vec<usize>>) {
        let mut rng = Rng::seed_from(42);
        let inputs = (0..lanes)
            .map(|_| rng.randn([n, INPUT[0], INPUT[1], INPUT[2]]))
            .collect();
        let targets = (0..lanes)
            .map(|_| (0..n).map(|_| rng.below(CLASSES)).collect())
            .collect();
        (inputs, targets)
    }

    fn bits(t: &Tensor) -> Vec<u32> {
        t.to_vec().iter().map(|v| v.to_bits()).collect()
    }

    fn assert_lane_state_eq(a: &LaneState, b: &LaneState, what: &str) {
        assert_eq!(a.params.len(), b.params.len(), "{what}: param count");
        for (pi, (x, y)) in a.params.iter().zip(&b.params).enumerate() {
            assert_eq!(bits(x), bits(y), "{what}: param {pi} bits");
        }
        assert_eq!(a.opt_state.len(), b.opt_state.len(), "{what}: state count");
        for (pi, (xs, ys)) in a.opt_state.iter().zip(&b.opt_state).enumerate() {
            assert_eq!(xs.len(), ys.len(), "{what}: param {pi} slot count");
            for (si, (x, y)) in xs.iter().zip(ys).enumerate() {
                assert_eq!(bits(x), bits(y), "{what}: param {pi} slot {si} bits");
            }
        }
        assert_eq!(a.step_count, b.step_count, "{what}: step count");
    }

    /// Trains `plan` over `graphs` for `steps` and returns the per-step
    /// per-lane loss bits plus every lane's final extracted state.
    fn run(
        graphs: &[ModelGraph],
        plan: &FusionPlan,
        adam: bool,
        steps: usize,
        quarantine: Option<usize>,
    ) -> (Vec<Vec<u32>>, Vec<LaneState>) {
        let array = PlannedArray::build(graphs, plan, &seeds(graphs.len())).unwrap();
        let lr = lrs(graphs.len());
        let mut opt = if adam {
            PlannedOptimizer::adam(&array, &lr).unwrap()
        } else {
            PlannedOptimizer::sgd(&array, &lr, 0.9).unwrap()
        };
        if let Some(lane) = quarantine {
            opt.quarantine(lane);
        }
        let (inputs, targets) = data(graphs.len(), 2);
        let mut loss_bits = Vec::new();
        for _ in 0..steps {
            let (_tape, outs) = array.forward(&inputs).unwrap();
            let (losses, total) = per_lane_ce(&outs, &targets);
            total.backward();
            opt.step();
            opt.zero_grad();
            loss_bits.push(losses.iter().map(|l| l.to_bits()).collect());
        }
        let states = (0..graphs.len())
            .map(|l| opt.extract_lane(&array, l))
            .collect();
        (loss_bits, states)
    }

    #[test]
    fn mixed_plan_is_bit_identical_to_serial_plan_sgd() {
        let graphs = mixed_graphs();
        let fused = FusionPlan::plan(&graphs).unwrap();
        assert!(fused.fused_fraction() > 0.5, "prefix+suffix should fuse");
        let serial = FusionPlan::serial(&graphs).unwrap();
        let (fl, fs) = run(&graphs, &fused, false, 3, None);
        let (sl, ss) = run(&graphs, &serial, false, 3, None);
        assert_eq!(fl, sl, "per-step per-lane loss bits");
        for (lane, (a, b)) in fs.iter().zip(&ss).enumerate() {
            assert_lane_state_eq(a, b, &format!("lane {lane}"));
        }
    }

    #[test]
    fn mixed_plan_is_bit_identical_to_serial_plan_adam() {
        let graphs = mixed_graphs();
        let fused = FusionPlan::plan(&graphs).unwrap();
        let serial = FusionPlan::serial(&graphs).unwrap();
        let (fl, fs) = run(&graphs, &fused, true, 3, None);
        let (sl, ss) = run(&graphs, &serial, true, 3, None);
        assert_eq!(fl, sl, "per-step per-lane loss bits");
        for (lane, (a, b)) in fs.iter().zip(&ss).enumerate() {
            assert_lane_state_eq(a, b, &format!("lane {lane}"));
        }
    }

    /// The hand-fused `ModelArray` path for the base arch, built from the
    /// same per-lane serial layers the planner path constructs.
    struct Chain {
        conv: FusedConv2d,
        act: FusedLeakyRelu,
        fc: FusedLinear,
        b: usize,
    }

    impl Module for Chain {
        fn forward(&self, x: &Var) -> Var {
            let x = self.act.forward(&self.conv.forward(x));
            let dims = x.dims();
            let flat = x.reshape(&[dims[0], dims[1..].iter().product()]);
            array_to_conv(&self.fc.forward(&conv_to_array(&flat, self.b)))
        }

        fn parameters(&self) -> Vec<Parameter> {
            let mut p = self.conv.parameters();
            p.extend(self.fc.parameters());
            p
        }
    }

    impl FusedModule for Chain {
        fn b(&self) -> usize {
            self.b
        }

        fn fused_parameters(&self) -> Vec<FusedParameter> {
            let mut p = self.conv.fused_parameters();
            p.extend(self.fc.fused_parameters());
            p
        }
    }

    #[test]
    fn homogeneous_plan_is_bit_identical_to_model_array() {
        let lanes = 3;
        let graphs: Vec<ModelGraph> = (0..lanes)
            .map(|l| ModelGraph::new(format!("m{l}"), INPUT.to_vec(), base_ops()))
            .collect();
        let plan = FusionPlan::plan(&graphs).unwrap();
        assert_eq!(plan.blocks.len(), 1, "homogeneous set is one fused block");
        assert_eq!(plan.fused_fraction(), 1.0);
        let (pl, ps) = run(&graphs, &plan, false, 3, None);

        // Hand-fused reference: identical per-lane layers from the same
        // (seed, op index) stream, fused with the same from_models path.
        let mut convs = Vec::new();
        let mut fcs = Vec::new();
        for seed in seeds(lanes) {
            let mut rng = Rng::seed_from(seed);
            convs.push(Conv2d::new(
                Conv2dCfg::new(2, 3, 3).stride(1).padding(1).bias(false),
                &mut rng,
            ));
            fcs.push(Linear::new(LinearCfg::new(FEATURES, CLASSES), &mut rng));
        }
        let chain = Chain {
            conv: FusedConv2d::from_models(&convs).unwrap(),
            act: FusedLeakyRelu::new(lanes, LeakyRelu::new(0.2)),
            fc: FusedLinear::from_models(&fcs).unwrap(),
            b: lanes,
        };
        let array = ModelArray::new(chain);
        let params = array.fused_parameters();
        let mut opt = FusedSgd::new(params.clone(), lrs(lanes), 0.9).unwrap();
        let (inputs, targets) = data(lanes, 2);
        for (step, expect) in pl.iter().enumerate().take(3) {
            let (_tape, out) = array.forward_conv(&inputs).unwrap();
            let per_lane: Vec<Var> = (0..lanes)
                .map(|l| out.narrow(1, l * CLASSES, CLASSES))
                .collect();
            let (losses, total) = per_lane_ce(&per_lane, &targets);
            total.backward();
            opt.step();
            opt.zero_grad();
            let loss_bits: Vec<u32> = losses.iter().map(|l| l.to_bits()).collect();
            assert_eq!(*expect, loss_bits, "step {step} loss bits");
        }
        for (lane, expect) in ps.iter().enumerate() {
            let reference = surgery::extract_lane(&params, &opt, lane);
            assert_lane_state_eq(expect, &reference, &format!("lane {lane}"));
        }
    }

    #[test]
    fn quarantine_freezes_lane_and_leaves_others_bit_identical() {
        let graphs = mixed_graphs();
        let plan = FusionPlan::plan(&graphs).unwrap();
        // Lane 1 participates in fused prefix/suffix blocks and the
        // sub-width variant block.
        let initial = {
            let array = PlannedArray::build(&graphs, &plan, &seeds(graphs.len())).unwrap();
            let opt = PlannedOptimizer::sgd(&array, &lrs(graphs.len()), 0.9).unwrap();
            opt.extract_lane(&array, 1)
        };
        let (_, clean) = run(&graphs, &plan, false, 3, None);
        let (_, isolated) = run(&graphs, &plan, false, 3, Some(1));
        for lane in [0, 2, 3] {
            assert_lane_state_eq(
                &clean[lane],
                &isolated[lane],
                &format!("unquarantined lane {lane}"),
            );
        }
        for (pi, (frozen, init)) in isolated[1].params.iter().zip(&initial.params).enumerate() {
            assert_eq!(bits(frozen), bits(init), "quarantined lane param {pi}");
        }
    }

    #[test]
    fn build_rejects_unexecutable_ops_and_mismatched_plans() {
        let g = vec![ModelGraph::new(
            "pn",
            vec![3, 8],
            vec![OpSpec::conv1d(3, 4, 1, 1, 0), OpSpec::global_max_pool()],
        )];
        let plan = FusionPlan::plan(&g).unwrap();
        let Err(err) = PlannedArray::build(&g, &plan, &[1]) else {
            panic!("GlobalMaxPool must not execute");
        };
        assert!(
            matches!(err, FusionError::StructureMismatch { .. }),
            "{err}"
        );

        let graphs = mixed_graphs();
        let plan = FusionPlan::plan(&graphs).unwrap();
        // Wrong seed count.
        assert!(PlannedArray::build(&graphs, &plan, &[1, 2]).is_err());
        // Plan/graph disagreement.
        let other = FusionPlan::plan(&graphs[..2.min(graphs.len())]).unwrap();
        assert!(PlannedArray::build(&graphs, &other, &seeds(graphs.len())).is_err());
    }

    #[test]
    fn extract_write_round_trip_through_mixed_blocks() {
        let graphs = mixed_graphs();
        let plan = FusionPlan::plan(&graphs).unwrap();
        let array = PlannedArray::build(&graphs, &plan, &seeds(graphs.len())).unwrap();
        let lr = lrs(graphs.len());
        let mut opt = PlannedOptimizer::sgd(&array, &lr, 0.9).unwrap();
        let (inputs, targets) = data(graphs.len(), 2);
        for _ in 0..2 {
            let (_tape, outs) = array.forward(&inputs).unwrap();
            let (_, total) = per_lane_ce(&outs, &targets);
            total.backward();
            opt.step();
            opt.zero_grad();
        }
        let before: Vec<LaneState> = (0..graphs.len())
            .map(|l| opt.extract_lane(&array, l))
            .collect();
        // Splicing every lane's own state back is a no-op, bitwise.
        opt.splice_lanes(&array, &before);
        for (lane, b) in before.iter().enumerate() {
            let after = opt.extract_lane(&array, lane);
            assert_lane_state_eq(b, &after, &format!("lane {lane} round trip"));
        }
        // Swapping the two base-arch lanes' states swaps their params.
        let mut swapped = before.clone();
        swapped.swap(0, 2);
        opt.splice_lanes(&array, &swapped);
        let lane0 = opt.extract_lane(&array, 0);
        assert_lane_state_eq(&lane0, &before[2], "lane 0 carries lane 2's state");
    }
}
