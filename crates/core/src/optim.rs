//! Horizontally fused optimizers and learning-rate schedulers.
//!
//! Hyper-parameter tuning is the paper's flagship use case, so fused
//! optimizers accept **per-model** hyper-parameters ([`PerModel`]): the
//! scalar-vector operations of a serial optimizer (e.g. `lr * grad`) become
//! broadcasted vector-vector operations over the fused parameter's model
//! axis (paper §3.1, Figure 1). With identical hyper-parameters the fused
//! update is bit-identical to the serial one.

use hfta_tensor::Tensor;

use crate::error::{FusionError, Result};
use crate::ops::FusedParameter;

/// A per-model hyper-parameter vector (one value per fused model).
///
/// # Example
///
/// ```
/// use hfta_core::optim::PerModel;
/// let lrs = PerModel::new(vec![0.1, 0.01, 0.001]);
/// assert_eq!(lrs.b(), 3);
/// assert_eq!(PerModel::uniform(4, 0.1).values(), &[0.1; 4]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PerModel {
    values: Vec<f32>,
}

impl PerModel {
    /// One value per model.
    pub fn new(values: Vec<f32>) -> Self {
        PerModel { values }
    }

    /// The same value for every model.
    pub fn uniform(b: usize, value: f32) -> Self {
        PerModel {
            values: vec![value; b],
        }
    }

    /// Number of models.
    pub fn b(&self) -> usize {
        self.values.len()
    }

    /// The underlying values.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Value for model `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn get(&self, i: usize) -> f32 {
        self.values[i]
    }

    /// Validates the vector against an array width.
    ///
    /// # Errors
    ///
    /// Returns [`FusionError::HyperParamLength`] on mismatch.
    pub fn check_b(&self, b: usize) -> Result<()> {
        if self.values.len() == b {
            Ok(())
        } else {
            Err(FusionError::HyperParamLength {
                expected: b,
                found: self.values.len(),
            })
        }
    }

    /// Broadcasts the vector over a fused parameter's model axis: produces
    /// a tensor of shape `[dim0, 1, ..., 1]` (rank of the parameter) where
    /// each model's chunk of axis 0 carries its value.
    ///
    /// # Panics
    ///
    /// Panics if axis 0 is not divisible by the number of models.
    pub fn expand_for(&self, param: &FusedParameter) -> Tensor {
        let v = param.param.value();
        let dim0 = v.dim(0);
        let rank = v.rank();
        drop(v);
        assert_eq!(param.b, self.values.len(), "array width mismatch");
        assert_eq!(dim0 % param.b, 0, "axis 0 not divisible by B");
        let chunk = dim0 / param.b;
        let mut dims = vec![1usize; rank];
        dims[0] = dim0;
        // Pooled output filled in place: this runs once per parameter per
        // step, so it must not allocate fresh storage at steady state.
        let mut out = Tensor::zeros(dims);
        let slice = out.as_mut_slice();
        for (m, &val) in self.values.iter().enumerate() {
            slice[m * chunk..(m + 1) * chunk].fill(val);
        }
        out
    }
}

/// An optimizer over fused parameters with per-model hyper-parameters.
pub trait FusedOptimizer {
    /// Applies one update step.
    fn step(&mut self);

    /// Zeroes all managed gradients.
    fn zero_grad(&self);

    /// Current per-model learning rates.
    fn lr(&self) -> &PerModel;

    /// Replaces the per-model learning rates (used by schedulers).
    fn set_lr(&mut self, lr: PerModel);

    /// Quarantines model `model`: zeroes its gradient lane and its
    /// optimizer-state lanes now, and keeps masking its gradient lane at
    /// the start of every subsequent [`FusedOptimizer::step`], so the
    /// model's parameters freeze while the other `B − 1` models train on
    /// bit-for-bit unaffected (lane updates are elementwise, and a masked
    /// lane contributes exactly `x − 0.0 = x`). Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if `model` is out of range.
    fn quarantine(&mut self, model: usize);

    /// Per-model quarantine flags.
    fn quarantined(&self) -> &[bool];

    /// Number of per-parameter state tensors the optimizer keeps (SGD: 1
    /// velocity; Adam: first/second moments; Adadelta: squared-average /
    /// accumulated-delta). Each state tensor shares its parameter's fused
    /// layout, so lane surgery ([`crate::surgery`]) can move a model's
    /// state lanes alongside its parameter lanes.
    fn state_slots(&self) -> usize;

    /// State tensor `slot` of parameter `pi` (same fused shape as the
    /// parameter's value).
    ///
    /// # Panics
    ///
    /// Panics if `pi` or `slot` is out of range.
    fn state(&self, pi: usize, slot: usize) -> &Tensor;

    /// Mutable access to state tensor `slot` of parameter `pi`.
    ///
    /// # Panics
    ///
    /// Panics if `pi` or `slot` is out of range.
    fn state_mut(&mut self, pi: usize, slot: usize) -> &mut Tensor;

    /// The shared scalar step counter, for optimizers whose update depends
    /// on how many steps ran (Adam's bias correction). Stateless-in-time
    /// optimizers return 0.
    fn step_count(&self) -> u64 {
        0
    }

    /// Restores the step counter after lane surgery. A no-op for
    /// optimizers without one.
    fn set_step_count(&mut self, _t: u64) {}
}

/// Zeroes model `model`'s contiguous lane of a fused tensor.
fn zero_lane(t: &mut Tensor, b: usize, model: usize) {
    let s = t.as_mut_slice();
    let chunk = s.len() / b;
    s[model * chunk..(model + 1) * chunk].fill(0.0);
}

/// Re-masks the gradient lanes of quarantined models — called at the top
/// of every `step()` because `backward()` keeps accumulating (possibly
/// non-finite) gradients into the quarantined lane. A no-op (and no borrow
/// of any parameter) when nothing is quarantined.
fn zero_quarantined_grads(params: &[FusedParameter], quarantined: &[bool]) {
    if !quarantined.iter().any(|&q| q) {
        return;
    }
    let b = quarantined.len();
    for p in params {
        p.param.update_grad(|g| {
            for (i, &q) in quarantined.iter().enumerate() {
                if q {
                    zero_lane(g, b, i);
                }
            }
        });
    }
}

fn check_params(params: &[FusedParameter], b: usize) -> Result<()> {
    for p in params {
        if p.b != b {
            return Err(FusionError::HyperParamLength {
                expected: b,
                found: p.b,
            });
        }
        if p.param.value().dim(0) % b != 0 {
            return Err(FusionError::StructureMismatch {
                detail: format!(
                    "parameter {} axis 0 ({}) not divisible by B = {b}",
                    p.param.name(),
                    p.param.value().dim(0)
                ),
            });
        }
    }
    Ok(())
}

/// Fused SGD with per-model learning rates and per-model momenta.
#[derive(Debug)]
pub struct FusedSgd {
    params: Vec<FusedParameter>,
    lr: PerModel,
    momentum: PerModel,
    velocity: Vec<Tensor>,
    quarantined: Vec<bool>,
}

impl FusedSgd {
    /// Creates fused SGD with one shared momentum.
    ///
    /// # Errors
    ///
    /// Returns [`FusionError`] if the LR vector or any parameter disagrees
    /// with the array width.
    pub fn new(params: Vec<FusedParameter>, lr: PerModel, momentum: f32) -> Result<Self> {
        let b = lr.b();
        Self::with_momenta(params, lr, PerModel::uniform(b, momentum))
    }

    /// Creates fused SGD with **per-model momenta** — momentum is a common
    /// sweep axis (paper §3.1 lists optimizer settings among the tuned
    /// hyper-parameters).
    ///
    /// # Errors
    ///
    /// Returns [`FusionError`] on array-width mismatches.
    pub fn with_momenta(
        params: Vec<FusedParameter>,
        lr: PerModel,
        momentum: PerModel,
    ) -> Result<Self> {
        check_params(&params, lr.b())?;
        momentum.check_b(lr.b())?;
        let velocity = params
            .iter()
            .map(|p| p.param.value().zeros_like())
            .collect();
        let b = lr.b();
        Ok(FusedSgd {
            params,
            lr,
            momentum,
            velocity,
            quarantined: vec![false; b],
        })
    }
}

impl FusedOptimizer for FusedSgd {
    fn step(&mut self) {
        zero_quarantined_grads(&self.params, &self.quarantined);
        let plain = self.momentum.values().iter().all(|&m| m == 0.0);
        for (p, v) in self.params.iter().zip(&mut self.velocity) {
            let g = p.param.grad_cloned();
            let lr = self.lr.expand_for(p);
            let update = if plain {
                g.mul(&lr)
            } else {
                // v = momentum * v + g, with per-model momentum.
                let mom = self.momentum.expand_for(p);
                *v = v.mul(&mom).add(&g);
                v.mul(&lr)
            };
            p.param
                .update(|value, _| value.add_assign_scaled(&update, -1.0));
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.param.zero_grad();
        }
    }

    fn lr(&self) -> &PerModel {
        &self.lr
    }

    fn set_lr(&mut self, lr: PerModel) {
        assert_eq!(lr.b(), self.lr.b(), "array width mismatch");
        self.lr = lr;
    }

    fn quarantine(&mut self, model: usize) {
        assert!(model < self.quarantined.len(), "model index out of range");
        self.quarantined[model] = true;
        let b = self.lr.b();
        for (p, v) in self.params.iter().zip(&mut self.velocity) {
            p.param.update_grad(|g| zero_lane(g, b, model));
            zero_lane(v, b, model);
        }
    }

    fn quarantined(&self) -> &[bool] {
        &self.quarantined
    }

    fn state_slots(&self) -> usize {
        1
    }

    fn state(&self, pi: usize, slot: usize) -> &Tensor {
        assert_eq!(slot, 0, "SGD has one state slot (velocity)");
        &self.velocity[pi]
    }

    fn state_mut(&mut self, pi: usize, slot: usize) -> &mut Tensor {
        assert_eq!(slot, 0, "SGD has one state slot (velocity)");
        &mut self.velocity[pi]
    }
}

/// Fused Adam with per-model learning rates (betas and epsilon shared).
#[derive(Debug)]
pub struct FusedAdam {
    params: Vec<FusedParameter>,
    lr: PerModel,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
    quarantined: Vec<bool>,
}

impl FusedAdam {
    /// Creates fused Adam with custom betas.
    ///
    /// # Errors
    ///
    /// Returns [`FusionError`] on array-width mismatches.
    pub fn with_betas(
        params: Vec<FusedParameter>,
        lr: PerModel,
        beta1: f32,
        beta2: f32,
        eps: f32,
    ) -> Result<Self> {
        check_params(&params, lr.b())?;
        let m = params
            .iter()
            .map(|p| p.param.value().zeros_like())
            .collect();
        let v = params
            .iter()
            .map(|p| p.param.value().zeros_like())
            .collect();
        let b = lr.b();
        Ok(FusedAdam {
            params,
            lr,
            beta1,
            beta2,
            eps,
            t: 0,
            m,
            v,
            quarantined: vec![false; b],
        })
    }

    /// Creates fused Adam with defaults `betas = (0.9, 0.999)`, `eps = 1e-8`.
    ///
    /// # Errors
    ///
    /// Returns [`FusionError`] on array-width mismatches.
    pub fn new(params: Vec<FusedParameter>, lr: PerModel) -> Result<Self> {
        Self::with_betas(params, lr, 0.9, 0.999, 1e-8)
    }
}

impl FusedOptimizer for FusedAdam {
    fn step(&mut self) {
        zero_quarantined_grads(&self.params, &self.quarantined);
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, m), v) in self.params.iter().zip(&mut self.m).zip(&mut self.v) {
            let g = p.param.grad_cloned();
            m.lerp_assign(&g, self.beta1, 1.0 - self.beta1);
            v.lerp_assign(&g.square(), self.beta2, 1.0 - self.beta2);
            let m_hat = m.div_scalar(bc1);
            let v_hat = v.div_scalar(bc2);
            let lr = self.lr.expand_for(p);
            let update = m_hat.div(&v_hat.sqrt().add_scalar(self.eps)).mul(&lr);
            p.param
                .update(|value, _| value.add_assign_scaled(&update, -1.0));
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.param.zero_grad();
        }
    }

    fn lr(&self) -> &PerModel {
        &self.lr
    }

    fn set_lr(&mut self, lr: PerModel) {
        assert_eq!(lr.b(), self.lr.b(), "array width mismatch");
        self.lr = lr;
    }

    fn quarantine(&mut self, model: usize) {
        assert!(model < self.quarantined.len(), "model index out of range");
        self.quarantined[model] = true;
        let b = self.lr.b();
        for ((p, m), v) in self.params.iter().zip(&mut self.m).zip(&mut self.v) {
            p.param.update_grad(|g| zero_lane(g, b, model));
            zero_lane(m, b, model);
            zero_lane(v, b, model);
        }
    }

    fn quarantined(&self) -> &[bool] {
        &self.quarantined
    }

    fn state_slots(&self) -> usize {
        2
    }

    fn state(&self, pi: usize, slot: usize) -> &Tensor {
        match slot {
            0 => &self.m[pi],
            1 => &self.v[pi],
            _ => panic!("Adam has two state slots (m, v)"),
        }
    }

    fn state_mut(&mut self, pi: usize, slot: usize) -> &mut Tensor {
        match slot {
            0 => &mut self.m[pi],
            1 => &mut self.v[pi],
            _ => panic!("Adam has two state slots (m, v)"),
        }
    }

    fn step_count(&self) -> u64 {
        self.t
    }

    fn set_step_count(&mut self, t: u64) {
        self.t = t;
    }
}

/// Fused Adadelta with per-model learning rates *and* per-model `rho`
/// decay rates (the broadcasted vector-vector form of Figure 1).
#[derive(Debug)]
pub struct FusedAdadelta {
    params: Vec<FusedParameter>,
    lr: PerModel,
    rho: PerModel,
    eps: f32,
    sq_avg: Vec<Tensor>,
    acc_delta: Vec<Tensor>,
    quarantined: Vec<bool>,
}

impl FusedAdadelta {
    /// Creates fused Adadelta.
    ///
    /// # Errors
    ///
    /// Returns [`FusionError`] on array-width mismatches.
    pub fn new(params: Vec<FusedParameter>, lr: PerModel, rho: PerModel, eps: f32) -> Result<Self> {
        check_params(&params, lr.b())?;
        rho.check_b(lr.b())?;
        let sq_avg = params
            .iter()
            .map(|p| p.param.value().zeros_like())
            .collect();
        let acc_delta = params
            .iter()
            .map(|p| p.param.value().zeros_like())
            .collect();
        let b = lr.b();
        Ok(FusedAdadelta {
            params,
            lr,
            rho,
            eps,
            sq_avg,
            acc_delta,
            quarantined: vec![false; b],
        })
    }

    /// Creates fused Adadelta with shared defaults `rho = 0.9`, `eps = 1e-6`.
    ///
    /// # Errors
    ///
    /// Returns [`FusionError`] on array-width mismatches.
    pub fn with_defaults(params: Vec<FusedParameter>, lr: PerModel) -> Result<Self> {
        let b = lr.b();
        Self::new(params, lr, PerModel::uniform(b, 0.9), 1e-6)
    }
}

impl FusedOptimizer for FusedAdadelta {
    fn step(&mut self) {
        zero_quarantined_grads(&self.params, &self.quarantined);
        for ((p, sq), acc) in self
            .params
            .iter()
            .zip(&mut self.sq_avg)
            .zip(&mut self.acc_delta)
        {
            let g = p.param.grad_cloned();
            let rho = self.rho.expand_for(p);
            let one_minus_rho = rho.neg().add_scalar(1.0);
            *sq = sq.mul(&rho).add(&g.square().mul(&one_minus_rho));
            let delta = acc
                .add_scalar(self.eps)
                .sqrt()
                .div(&sq.add_scalar(self.eps).sqrt())
                .mul(&g);
            *acc = acc.mul(&rho).add(&delta.square().mul(&one_minus_rho));
            let lr = self.lr.expand_for(p);
            let update = delta.mul(&lr);
            p.param
                .update(|value, _| value.add_assign_scaled(&update, -1.0));
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.param.zero_grad();
        }
    }

    fn lr(&self) -> &PerModel {
        &self.lr
    }

    fn set_lr(&mut self, lr: PerModel) {
        assert_eq!(lr.b(), self.lr.b(), "array width mismatch");
        self.lr = lr;
    }

    fn quarantine(&mut self, model: usize) {
        assert!(model < self.quarantined.len(), "model index out of range");
        self.quarantined[model] = true;
        let b = self.lr.b();
        for ((p, sq), acc) in self
            .params
            .iter()
            .zip(&mut self.sq_avg)
            .zip(&mut self.acc_delta)
        {
            p.param.update_grad(|g| zero_lane(g, b, model));
            zero_lane(sq, b, model);
            zero_lane(acc, b, model);
        }
    }

    fn quarantined(&self) -> &[bool] {
        &self.quarantined
    }

    fn state_slots(&self) -> usize {
        2
    }

    fn state(&self, pi: usize, slot: usize) -> &Tensor {
        match slot {
            0 => &self.sq_avg[pi],
            1 => &self.acc_delta[pi],
            _ => panic!("Adadelta has two state slots (sq_avg, acc_delta)"),
        }
    }

    fn state_mut(&mut self, pi: usize, slot: usize) -> &mut Tensor {
        match slot {
            0 => &mut self.sq_avg[pi],
            1 => &mut self.acc_delta[pi],
            _ => panic!("Adadelta has two state slots (sq_avg, acc_delta)"),
        }
    }
}

/// Fused StepLR: each model has its own `step_size` and `gamma`, so a
/// single scheduler drives `B` different learning-rate schedules.
#[derive(Debug, Clone)]
pub struct FusedStepLr {
    base_lr: PerModel,
    step_size: Vec<usize>,
    gamma: Vec<f32>,
    epoch: usize,
}

impl FusedStepLr {
    /// Creates the fused scheduler.
    ///
    /// # Errors
    ///
    /// Returns [`FusionError::HyperParamLength`] if vector lengths differ.
    ///
    /// # Panics
    ///
    /// Panics if any `step_size` is zero.
    pub fn new(base_lr: PerModel, step_size: Vec<usize>, gamma: Vec<f32>) -> Result<Self> {
        if step_size.len() != base_lr.b() {
            return Err(FusionError::HyperParamLength {
                expected: base_lr.b(),
                found: step_size.len(),
            });
        }
        if gamma.len() != base_lr.b() {
            return Err(FusionError::HyperParamLength {
                expected: base_lr.b(),
                found: gamma.len(),
            });
        }
        assert!(
            step_size.iter().all(|&s| s > 0),
            "step sizes must be positive"
        );
        Ok(FusedStepLr {
            base_lr,
            step_size,
            gamma,
            epoch: 0,
        })
    }

    /// Per-model LRs the schedule prescribes at `epoch`.
    pub fn lr_at(&self, epoch: usize) -> PerModel {
        PerModel::new(
            (0..self.base_lr.b())
                .map(|i| {
                    self.base_lr.get(i) * self.gamma[i].powi((epoch / self.step_size[i]) as i32)
                })
                .collect(),
        )
    }

    /// Advances one epoch and writes the per-model LRs into `opt`.
    pub fn step(&mut self, opt: &mut dyn FusedOptimizer) {
        self.epoch += 1;
        opt.set_lr(self.lr_at(self.epoch));
    }

    /// Current epoch counter.
    pub fn epoch(&self) -> usize {
        self.epoch
    }
}

/// Clips each model's gradient L2 norm to `max_norm` **independently** —
/// the fused counterpart of `clip_grad_norm`. A naive global clip over the
/// fused tensors would couple the models (one exploding model would shrink
/// everyone's gradients), breaking the paper's mathematical-equivalence
/// guarantee; clipping per model-slice preserves it exactly. Returns the
/// pre-clip norm of each model.
///
/// # Panics
///
/// Panics if `max_norm` is not positive, `params` is empty, or parameter
/// widths disagree.
pub fn fused_clip_grad_norm(params: &[FusedParameter], max_norm: f32) -> Vec<f32> {
    assert!(max_norm > 0.0, "max_norm must be positive");
    assert!(!params.is_empty(), "no parameters to clip");
    // Per-model squared norms across all parameters — the same single-pass
    // fused reduction the hfta-scope sentinels use (no per-model slicing).
    let (sq, _) = crate::scope::per_model_grad_sq_norms(params);
    let norms: Vec<f32> = sq.iter().map(|s| s.sqrt()).collect();
    // Broadcast per-model scale factors over the model axis and rescale.
    let scales = PerModel::new(
        norms
            .iter()
            .map(|&n| if n > max_norm { max_norm / n } else { 1.0 })
            .collect(),
    );
    if scales.values().iter().any(|&s| s < 1.0) {
        for p in params {
            let factor = scales.expand_for(p);
            let scaled = p.param.grad_cloned().mul(&factor);
            p.param.zero_grad();
            p.param.accumulate_grad(&scaled);
        }
    }
    norms
}

/// Fused exponential learning-rate schedule: each model's LR decays by its
/// own `gamma` every epoch (`torch.optim.lr_scheduler.ExponentialLR`
/// analogue; part of the paper's "more schedulers" future work).
#[derive(Debug, Clone)]
pub struct FusedExponentialLr {
    base_lr: PerModel,
    gamma: Vec<f32>,
    epoch: usize,
}

impl FusedExponentialLr {
    /// Creates the fused scheduler.
    ///
    /// # Errors
    ///
    /// Returns [`FusionError::HyperParamLength`] if the gamma vector's
    /// length differs from the array width.
    pub fn new(base_lr: PerModel, gamma: Vec<f32>) -> Result<Self> {
        if gamma.len() != base_lr.b() {
            return Err(FusionError::HyperParamLength {
                expected: base_lr.b(),
                found: gamma.len(),
            });
        }
        Ok(FusedExponentialLr {
            base_lr,
            gamma,
            epoch: 0,
        })
    }

    /// Per-model LRs at `epoch`.
    pub fn lr_at(&self, epoch: usize) -> PerModel {
        PerModel::new(
            (0..self.base_lr.b())
                .map(|i| self.base_lr.get(i) * self.gamma[i].powi(epoch as i32))
                .collect(),
        )
    }

    /// Advances one epoch and writes the per-model LRs into `opt`.
    pub fn step(&mut self, opt: &mut dyn FusedOptimizer) {
        self.epoch += 1;
        opt.set_lr(self.lr_at(self.epoch));
    }
}

/// Fused cosine-annealing schedule: each model anneals its LR from its
/// base value to its own `eta_min` over `t_max` epochs.
#[derive(Debug, Clone)]
pub struct FusedCosineLr {
    base_lr: PerModel,
    eta_min: Vec<f32>,
    t_max: usize,
    epoch: usize,
}

impl FusedCosineLr {
    /// Creates the fused scheduler.
    ///
    /// # Errors
    ///
    /// Returns [`FusionError::HyperParamLength`] on length mismatches.
    ///
    /// # Panics
    ///
    /// Panics if `t_max == 0`.
    pub fn new(base_lr: PerModel, eta_min: Vec<f32>, t_max: usize) -> Result<Self> {
        assert!(t_max > 0, "t_max must be positive");
        if eta_min.len() != base_lr.b() {
            return Err(FusionError::HyperParamLength {
                expected: base_lr.b(),
                found: eta_min.len(),
            });
        }
        Ok(FusedCosineLr {
            base_lr,
            eta_min,
            t_max,
            epoch: 0,
        })
    }

    /// Per-model LRs at `epoch`.
    pub fn lr_at(&self, epoch: usize) -> PerModel {
        let t = epoch.min(self.t_max) as f32 / self.t_max as f32;
        let cos = 0.5 * (1.0 + (std::f32::consts::PI * t).cos());
        PerModel::new(
            (0..self.base_lr.b())
                .map(|i| self.eta_min[i] + (self.base_lr.get(i) - self.eta_min[i]) * cos)
                .collect(),
        )
    }

    /// Advances one epoch and writes the per-model LRs into `opt`.
    pub fn step(&mut self, opt: &mut dyn FusedOptimizer) {
        self.epoch += 1;
        opt.set_lr(self.lr_at(self.epoch));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfta_nn::{Adadelta, Adam, Optimizer, Parameter, Sgd};
    use hfta_tensor::Rng;

    /// Builds B serial params and the equivalent fused param, then drives
    /// both with the same per-model gradients and compares.
    struct Harness {
        serial: Vec<Parameter>,
        fused: FusedParameter,
        b: usize,
        c: usize,
    }

    impl Harness {
        fn new(b: usize, c: usize, seed: u64) -> Self {
            let mut rng = Rng::seed_from(seed);
            let serial: Vec<Parameter> = (0..b)
                .map(|i| Parameter::new(rng.randn([c, 2]), format!("w{i}")))
                .collect();
            let stacked = {
                let vs: Vec<_> = serial.iter().map(|p| p.value_cloned()).collect();
                Tensor::concat(&vs.iter().collect::<Vec<_>>(), 0)
            };
            Harness {
                serial,
                fused: FusedParameter {
                    param: Parameter::new(stacked, "fused"),
                    b,
                },
                b,
                c,
            }
        }

        fn apply_grads(&self, rng: &mut Rng) {
            let grads: Vec<Tensor> = (0..self.b).map(|_| rng.randn([self.c, 2])).collect();
            for (p, g) in self.serial.iter().zip(&grads) {
                p.zero_grad();
                p.accumulate_grad(g);
            }
            self.fused.param.zero_grad();
            self.fused
                .param
                .accumulate_grad(&Tensor::concat(&grads.iter().collect::<Vec<_>>(), 0));
        }

        fn assert_match(&self, tol: f32) {
            let fv = self.fused.param.value_cloned();
            for (i, p) in self.serial.iter().enumerate() {
                let slice = fv.narrow(0, i * self.c, self.c);
                assert!(
                    slice.allclose(&p.value_cloned(), tol),
                    "model {i} diverged by {}",
                    slice.max_abs_diff(&p.value_cloned())
                );
            }
        }
    }

    #[test]
    fn fused_sgd_equals_serial_per_model_lrs() {
        let h = Harness::new(3, 4, 1);
        let lrs = [0.1, 0.01, 0.5];
        let mut serial: Vec<Sgd> = h
            .serial
            .iter()
            .zip(lrs)
            .map(|(p, lr)| Sgd::new(vec![p.clone()], lr, 0.9))
            .collect();
        let mut fused =
            FusedSgd::new(vec![h.fused.clone()], PerModel::new(lrs.to_vec()), 0.9).unwrap();
        let mut rng = Rng::seed_from(2);
        for _ in 0..5 {
            h.apply_grads(&mut rng);
            for o in &mut serial {
                o.step();
            }
            fused.step();
            h.assert_match(1e-6);
        }
    }

    #[test]
    fn fused_adam_equals_serial_per_model_lrs() {
        let h = Harness::new(4, 3, 3);
        let lrs = [0.1, 0.01, 0.001, 0.3];
        let mut serial: Vec<Adam> = h
            .serial
            .iter()
            .zip(lrs)
            .map(|(p, lr)| Adam::new(vec![p.clone()], lr))
            .collect();
        let mut fused = FusedAdam::new(vec![h.fused.clone()], PerModel::new(lrs.to_vec())).unwrap();
        let mut rng = Rng::seed_from(4);
        for _ in 0..10 {
            h.apply_grads(&mut rng);
            for o in &mut serial {
                o.step();
            }
            fused.step();
            h.assert_match(1e-5);
        }
    }

    #[test]
    fn fused_adadelta_equals_serial_per_model_rho() {
        let h = Harness::new(2, 5, 5);
        let lrs = [1.0, 0.5];
        let rhos = [0.9, 0.8];
        let mut serial: Vec<Adadelta> = h
            .serial
            .iter()
            .zip(lrs.iter().zip(rhos))
            .map(|(p, (&lr, rho))| Adadelta::with_rho(vec![p.clone()], lr, rho, 1e-6))
            .collect();
        let mut fused = FusedAdadelta::new(
            vec![h.fused.clone()],
            PerModel::new(lrs.to_vec()),
            PerModel::new(rhos.to_vec()),
            1e-6,
        )
        .unwrap();
        let mut rng = Rng::seed_from(6);
        for _ in 0..10 {
            h.apply_grads(&mut rng);
            for o in &mut serial {
                o.step();
            }
            fused.step();
            h.assert_match(1e-5);
        }
    }

    #[test]
    fn expand_for_broadcasts_model_major() {
        let p = FusedParameter {
            param: Parameter::new(Tensor::zeros([6, 2, 2]), "w"),
            b: 3,
        };
        let lr = PerModel::new(vec![1.0, 2.0, 3.0]);
        let e = lr.expand_for(&p);
        assert_eq!(e.dims(), &[6, 1, 1]);
        assert_eq!(e.to_vec(), vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0]);
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let p = FusedParameter {
            param: Parameter::new(Tensor::zeros([4]), "w"),
            b: 2,
        };
        assert!(FusedSgd::new(vec![p.clone()], PerModel::uniform(3, 0.1), 0.0).is_err());
        assert!(FusedStepLr::new(PerModel::uniform(2, 0.1), vec![1], vec![0.5, 0.5]).is_err());
        assert!(FusedStepLr::new(PerModel::uniform(2, 0.1), vec![1, 1], vec![0.5]).is_err());
        let _ = p;
    }

    #[test]
    fn fused_step_lr_drives_distinct_schedules() {
        let mut sched =
            FusedStepLr::new(PerModel::new(vec![0.1, 0.1]), vec![1, 2], vec![0.5, 0.1]).unwrap();
        let p = FusedParameter {
            param: Parameter::new(Tensor::zeros([2]), "w"),
            b: 2,
        };
        let mut opt = FusedSgd::new(vec![p], PerModel::uniform(2, 0.1), 0.0).unwrap();
        sched.step(&mut opt); // epoch 1
        assert!((opt.lr().get(0) - 0.05).abs() < 1e-7);
        assert!((opt.lr().get(1) - 0.1).abs() < 1e-7);
        sched.step(&mut opt); // epoch 2
        assert!((opt.lr().get(0) - 0.025).abs() < 1e-7);
        assert!((opt.lr().get(1) - 0.01).abs() < 1e-7);
    }

    #[test]
    fn per_model_momentum_matches_serial() {
        let h = Harness::new(3, 2, 21);
        let lrs = [0.1, 0.05, 0.02];
        let moms = [0.9, 0.5, 0.0];
        let mut serial: Vec<Sgd> = h
            .serial
            .iter()
            .zip(lrs.iter().zip(moms))
            .map(|(p, (&lr, m))| Sgd::new(vec![p.clone()], lr, m))
            .collect();
        let mut fused = FusedSgd::with_momenta(
            vec![h.fused.clone()],
            PerModel::new(lrs.to_vec()),
            PerModel::new(moms.to_vec()),
        )
        .unwrap();
        let mut rng = Rng::seed_from(22);
        for _ in 0..6 {
            h.apply_grads(&mut rng);
            for o in &mut serial {
                o.step();
            }
            fused.step();
            h.assert_match(1e-6);
        }
    }

    #[test]
    fn fused_exponential_lr_decays_per_model() {
        let sched = FusedExponentialLr::new(PerModel::new(vec![1.0, 1.0]), vec![0.5, 0.9]).unwrap();
        let at2 = sched.lr_at(2);
        assert!((at2.get(0) - 0.25).abs() < 1e-6);
        assert!((at2.get(1) - 0.81).abs() < 1e-6);
        assert!(FusedExponentialLr::new(PerModel::uniform(2, 1.0), vec![0.5]).is_err());
    }

    #[test]
    fn fused_cosine_lr_anneals_to_eta_min() {
        let sched = FusedCosineLr::new(PerModel::new(vec![1.0, 0.1]), vec![0.0, 0.01], 10).unwrap();
        let start = sched.lr_at(0);
        assert!((start.get(0) - 1.0).abs() < 1e-6);
        let mid = sched.lr_at(5);
        assert!((mid.get(0) - 0.5).abs() < 1e-6);
        let end = sched.lr_at(10);
        assert!((end.get(0) - 0.0).abs() < 1e-6);
        assert!((end.get(1) - 0.01).abs() < 1e-6);
        // Past t_max the LR clamps at eta_min.
        assert!((sched.lr_at(20).get(0) - 0.0).abs() < 1e-6);
    }

    #[test]
    fn schedulers_drive_fused_optimizer() {
        let p = FusedParameter {
            param: Parameter::new(Tensor::zeros([2]), "w"),
            b: 2,
        };
        let mut opt = FusedSgd::new(vec![p], PerModel::uniform(2, 1.0), 0.0).unwrap();
        let mut exp = FusedExponentialLr::new(PerModel::uniform(2, 1.0), vec![0.5, 0.9]).unwrap();
        exp.step(&mut opt);
        assert!((opt.lr().get(0) - 0.5).abs() < 1e-7);
        let mut cos = FusedCosineLr::new(PerModel::uniform(2, 1.0), vec![0.0, 0.0], 4).unwrap();
        cos.step(&mut opt);
        assert!(opt.lr().get(0) < 1.0);
    }

    #[test]
    fn fused_clip_is_per_model_and_matches_serial() {
        use hfta_nn::clip_grad_norm;
        // Model 0 has a huge gradient, model 1 a small one; fused per-model
        // clipping must only touch model 0 — exactly what serial clipping
        // of each model would do.
        let serial: Vec<Parameter> = vec![
            Parameter::new(Tensor::zeros([2]), "m0"),
            Parameter::new(Tensor::zeros([2]), "m1"),
        ];
        serial[0].accumulate_grad(&Tensor::from_vec(vec![30.0, 40.0], [2]));
        serial[1].accumulate_grad(&Tensor::from_vec(vec![0.3, 0.4], [2]));
        let fused = FusedParameter {
            param: Parameter::new(Tensor::zeros([4]), "wf"),
            b: 2,
        };
        fused
            .param
            .accumulate_grad(&Tensor::from_vec(vec![30.0, 40.0, 0.3, 0.4], [4]));
        let norms = fused_clip_grad_norm(std::slice::from_ref(&fused), 1.0);
        assert!((norms[0] - 50.0).abs() < 1e-3);
        assert!((norms[1] - 0.5).abs() < 1e-5);
        for p in &serial {
            clip_grad_norm(std::slice::from_ref(p), 1.0);
        }
        let fg = fused.param.grad_cloned();
        assert!(fg.narrow(0, 0, 2).allclose(&serial[0].grad_cloned(), 1e-5));
        assert!(fg.narrow(0, 2, 2).allclose(&serial[1].grad_cloned(), 1e-5));
        // A *global* clip over the fused tensor would have scaled model 1
        // too; verify it kept its original gradient.
        assert!(fg
            .narrow(0, 2, 2)
            .allclose(&Tensor::from_vec(vec![0.3, 0.4], [2]), 1e-6));
    }

    #[test]
    fn fused_schedulers_match_serial_per_model() {
        use hfta_nn::{CosineLr, ExponentialLr};
        // Uniform fused schedules must reduce to the serial schedulers.
        let exp_f = FusedExponentialLr::new(PerModel::uniform(3, 0.2), vec![0.7; 3]).unwrap();
        let exp_s = ExponentialLr::new(0.2, 0.7);
        let cos_f = FusedCosineLr::new(PerModel::uniform(3, 0.2), vec![0.01; 3], 6).unwrap();
        let cos_s = CosineLr::new(0.2, 0.01, 6);
        for e in 0..10 {
            for m in 0..3 {
                assert!((exp_f.lr_at(e).get(m) - exp_s.lr_at(e)).abs() < 1e-7);
                assert!((cos_f.lr_at(e).get(m) - cos_s.lr_at(e)).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn zero_grad_resets() {
        let p = FusedParameter {
            param: Parameter::new(Tensor::zeros([2]), "w"),
            b: 2,
        };
        p.param.accumulate_grad(&Tensor::ones([2]));
        let opt = FusedSgd::new(vec![p.clone()], PerModel::uniform(2, 0.1), 0.0).unwrap();
        opt.zero_grad();
        assert_eq!(p.param.grad_cloned().to_vec(), vec![0.0, 0.0]);
    }
}
