//! The [`ModelArray`] convenience wrapper and hyper-parameter sweep
//! helpers.

use hfta_nn::{Parameter, Tape, Var};
use hfta_telemetry::{Profiler, StepMetric};
use hfta_tensor::Tensor;

use crate::error::Result;
use crate::format::{stack_array, stack_conv};
use crate::ops::{FusedModule, FusedParameter};
use crate::optim::PerModel;

/// Ties a fused module to its array width and input-stacking conventions —
/// the user-facing entry point for "train these `B` jobs together".
///
/// # Example
///
/// ```
/// use hfta_core::{array::ModelArray, ops::{FusedLinear, FusedModule}};
/// use hfta_nn::layers::LinearCfg;
/// use hfta_tensor::{Rng, Tensor};
///
/// let mut rng = Rng::seed_from(0);
/// let array = ModelArray::new(FusedLinear::new(3, LinearCfg::new(4, 2), &mut rng));
/// let inputs: Vec<Tensor> = (0..3).map(|_| rng.randn([8, 4])).collect();
/// let (tape, out) = array.forward_array(&inputs).unwrap();
/// assert_eq!(out.dims(), vec![3, 8, 2]);
/// # let _ = tape;
/// ```
#[derive(Debug)]
pub struct ModelArray<M> {
    module: M,
}

impl<M: FusedModule> ModelArray<M> {
    /// Wraps a fused module.
    pub fn new(module: M) -> Self {
        ModelArray { module }
    }

    /// The array width.
    pub fn b(&self) -> usize {
        self.module.b()
    }

    /// The wrapped fused module.
    pub fn module(&self) -> &M {
        &self.module
    }

    /// Mutable access to the wrapped module.
    pub fn module_mut(&mut self) -> &mut M {
        &mut self.module
    }

    /// Consumes the wrapper, returning the module.
    pub fn into_module(self) -> M {
        self.module
    }

    /// All trainable parameters.
    pub fn parameters(&self) -> Vec<Parameter> {
        self.module.parameters()
    }

    /// Parameters with fusion metadata, ready for a fused optimizer.
    pub fn fused_parameters(&self) -> Vec<FusedParameter> {
        self.module.fused_parameters()
    }

    /// Switches training/eval mode.
    pub fn set_training(&self, training: bool) {
        self.module.set_training(training);
    }

    /// Stacks per-model conv-format inputs `[N, C, ...]` and runs the
    /// fused forward pass; returns the tape for a subsequent backward.
    ///
    /// # Errors
    ///
    /// Returns a fusion error if input shapes differ across models.
    pub fn forward_conv(&self, inputs: &[Tensor]) -> Result<(Tape, Var)> {
        let fused = stack_conv(inputs)?;
        let tape = Tape::new();
        let x = tape.leaf(fused);
        let y = self.module.forward(&x);
        Ok((tape, y))
    }

    /// Stacks per-model array-format inputs `[N, F]` and runs the fused
    /// forward pass.
    ///
    /// # Errors
    ///
    /// Returns a fusion error if input shapes differ across models.
    pub fn forward_array(&self, inputs: &[Tensor]) -> Result<(Tape, Var)> {
        let fused = stack_array(inputs)?;
        let tape = Tape::new();
        let x = tape.leaf(fused);
        let y = self.module.forward(&x);
        Ok((tape, y))
    }

    /// Runs the fused forward on an already-stacked input.
    pub fn forward(&self, x: &Var) -> Var {
        self.module.forward(x)
    }

    /// Records one training step's per-model losses (and aggregate
    /// samples/s) into the installed profiler, tagged with this array's
    /// fused width `B`. A single branch when no profiler is installed.
    pub fn record_step(&self, step: u64, losses: &[f32], samples_per_s: f64) {
        record_step_metrics(step, losses, samples_per_s, self.b() as u64);
    }
}

/// Free-function form of [`ModelArray::record_step`] for training loops
/// that do not go through the wrapper (e.g. serial baselines, where
/// `fused_width` is 1).
///
/// Each model's loss lands both in the step-metric table and in its
/// hfta-scope `loss` scalar stream, so `scope_report` can render per-model
/// loss curves from any instrumented training loop. Alongside the losses,
/// the hfta-mem accounting snapshot lands as `mem.*` gauges plus a
/// per-lane `mem_bytes` scalar stream (the fused footprint split evenly
/// across the `B` lanes — exact, since every lane of a fused operator does
/// identical-shape work; see [`hfta_sim::attribution`]).
pub fn record_step_metrics(step: u64, losses: &[f32], samples_per_s: f64, fused_width: u64) {
    let Some(profiler) = Profiler::current() else {
        return;
    };
    for (model, &loss) in losses.iter().enumerate() {
        profiler.step(StepMetric {
            step,
            model: model as u64,
            loss: loss as f64,
            samples_per_s,
            fused_width,
        });
        profiler.scalar(model as u64, "loss", step, loss as f64);
    }
    record_mem_metrics(step, losses.len());
}

/// Snapshots [`hfta_mem::stats`] into the installed profiler: pool-wide
/// `mem.*` gauges, per-size-class live/peak gauges for classes with
/// traffic, and a per-lane `mem_bytes` scalar stream attributing the
/// current footprint across `b` fused lanes.
pub fn record_mem_metrics(step: u64, b: usize) {
    let Some(profiler) = Profiler::current() else {
        return;
    };
    let mem = hfta_mem::stats();
    profiler.set_gauge("mem.live_bytes", mem.live_bytes as f64);
    profiler.set_gauge("mem.peak_live_bytes", mem.peak_live_bytes as f64);
    profiler.set_gauge("mem.pooled_free_bytes", mem.pooled_free_bytes as f64);
    profiler.set_gauge("mem.scratch_owned_bytes", mem.scratch_owned_bytes as f64);
    profiler.set_gauge("mem.footprint_bytes", mem.footprint_bytes as f64);
    profiler.set_gauge("mem.peak_footprint_bytes", mem.peak_footprint_bytes as f64);
    profiler.set_gauge("mem.pool_fresh_allocs", mem.pool_fresh_allocs as f64);
    profiler.set_gauge("mem.pool_reuses", mem.pool_reuses as f64);
    profiler.set_gauge("mem.scratch_fresh_allocs", mem.scratch_fresh_allocs as f64);
    for class in &mem.classes {
        if class.fresh_allocs == 0 && class.reuses == 0 {
            continue;
        }
        let label = if class.elems == 0 {
            "oversize".to_string()
        } else {
            class.elems.to_string()
        };
        profiler.set_gauge(
            &format!("mem.class.{label}.live_bytes"),
            class.live_bytes as f64,
        );
        profiler.set_gauge(
            &format!("mem.class.{label}.peak_live_bytes"),
            class.peak_live_bytes as f64,
        );
    }
    if b > 0 {
        for (model, share) in hfta_sim::attribution::split_even(mem.footprint_bytes, b)
            .into_iter()
            .enumerate()
        {
            profiler.scalar(model as u64, "mem_bytes", step, share as f64);
        }
    }
}

/// Copies model `index`'s weights out of a fused parameter set into a
/// per-model parameter set (matching order and per-model shapes) — the
/// glue for checkpointing one array member or for initializing a serial
/// replica that must match a fused array bit-for-bit (the §3.3
/// convergence-equivalence experiments).
///
/// # Panics
///
/// Panics if the parameter counts differ, `index` is out of range, or a
/// slice's element count differs from its destination.
pub fn copy_model_weights(fused: &[FusedParameter], index: usize, dest: &[Parameter]) {
    assert_eq!(
        fused.len(),
        dest.len(),
        "fused/serial parameter count mismatch"
    );
    for (fp, d) in fused.iter().zip(dest) {
        let slice = fp.model_slice(index);
        let dest_dims = d.value().dims().to_vec();
        assert_eq!(
            slice.numel(),
            dest_dims.iter().product::<usize>(),
            "parameter {} size mismatch",
            d.name()
        );
        d.set_value(slice.reshape(&dest_dims));
    }
}

/// Writes a per-model parameter set into model `index`'s lane of a fused
/// parameter set — the inverse of [`copy_model_weights`], used to restore
/// one array member from a checkpoint or to seed a lane from a serial
/// replica. Round-tripping through both is bit-exact (storage is copied,
/// never recomputed).
///
/// # Panics
///
/// Panics if the parameter counts differ, `index` is out of range, or a
/// source's element count differs from its lane.
pub fn write_model_weights(fused: &[FusedParameter], index: usize, src: &[Parameter]) {
    assert_eq!(
        fused.len(),
        src.len(),
        "fused/serial parameter count mismatch"
    );
    for (fp, s) in fused.iter().zip(src) {
        let sv = s.value_cloned();
        fp.param.update(|value, _| {
            let (lo, hi) = crate::scope::lane_bounds(value.numel(), fp.b, index);
            assert_eq!(sv.numel(), hi - lo, "parameter {} size mismatch", s.name());
            value.as_mut_slice()[lo..hi].copy_from_slice(sv.as_slice());
        });
    }
}

/// Expands lists of candidate hyper-parameter values into the per-model
/// vectors of a grid sweep — the repetitive-job launcher HFTA replaces.
///
/// # Example
///
/// ```
/// use hfta_core::array::grid_sweep;
/// let (b, grid) = grid_sweep(&[vec![0.1, 0.01], vec![0.9, 0.95, 0.99]]);
/// assert_eq!(b, 6);
/// assert_eq!(grid[0].values(), &[0.1, 0.1, 0.1, 0.01, 0.01, 0.01]);
/// assert_eq!(grid[1].values(), &[0.9, 0.95, 0.99, 0.9, 0.95, 0.99]);
/// ```
pub fn grid_sweep(axes: &[Vec<f32>]) -> (usize, Vec<PerModel>) {
    let b: usize = axes.iter().map(|a| a.len().max(1)).product();
    let mut out = Vec::with_capacity(axes.len());
    let mut repeat_inner = b;
    for axis in axes {
        let len = axis.len().max(1);
        repeat_inner /= len;
        let repeat_outer = b / (len * repeat_inner);
        let mut values = Vec::with_capacity(b);
        for _ in 0..repeat_outer {
            for v in axis {
                for _ in 0..repeat_inner {
                    values.push(*v);
                }
            }
        }
        out.push(PerModel::new(values));
        // Keep shrinking the inner repeat for the next (faster-varying) axis.
    }
    (b, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::FusedLinear;
    use hfta_nn::layers::LinearCfg;
    use hfta_tensor::Rng;

    #[test]
    fn model_array_forward_and_params() {
        let mut rng = Rng::seed_from(0);
        let array = ModelArray::new(FusedLinear::new(2, LinearCfg::new(3, 4), &mut rng));
        assert_eq!(array.b(), 2);
        assert_eq!(array.parameters().len(), 2);
        assert_eq!(array.fused_parameters()[0].b, 2);
        let inputs: Vec<Tensor> = (0..2).map(|_| rng.randn([5, 3])).collect();
        let (_tape, y) = array.forward_array(&inputs).unwrap();
        assert_eq!(y.dims(), vec![2, 5, 4]);
    }

    #[test]
    fn forward_array_rejects_mismatched_inputs() {
        let mut rng = Rng::seed_from(1);
        let array = ModelArray::new(FusedLinear::new(2, LinearCfg::new(3, 4), &mut rng));
        let bad = vec![rng.randn([5, 3]), rng.randn([4, 3])];
        assert!(array.forward_array(&bad).is_err());
    }

    #[test]
    fn record_step_feeds_installed_profiler() {
        let mut rng = Rng::seed_from(2);
        let array = ModelArray::new(FusedLinear::new(2, LinearCfg::new(3, 4), &mut rng));
        array.record_step(0, &[1.0, 2.0], 0.0); // no profiler: no-op
        let p = Profiler::new("array-test");
        let _g = p.install();
        array.record_step(1, &[0.5, 0.25], 128.0);
        let report = p.report();
        let exp = &report.experiments[0];
        let steps = &exp.steps;
        assert_eq!(steps.len(), 2);
        assert_eq!(steps[0].fused_width, 2);
        assert_eq!(steps[1].model, 1);
        assert_eq!(steps[1].loss, 0.25);
        // The same losses feed the per-model scalar streams.
        assert_eq!(exp.scalar_models(), vec![0, 1]);
        assert_eq!(exp.scalar_stream(1, "loss").unwrap().last(), Some(0.25));
        // The step also snapshots the hfta-mem accounting as gauges and a
        // per-lane footprint attribution stream.
        let gauge = |name: &str| {
            exp.gauges
                .iter()
                .find(|g| g.name == name)
                .map(|g| g.value)
                .unwrap_or_else(|| panic!("missing gauge {name}"))
        };
        assert!(gauge("mem.footprint_bytes") > 0.0);
        assert!(gauge("mem.peak_footprint_bytes") >= gauge("mem.footprint_bytes"));
        let lane0 = exp.scalar_stream(0, "mem_bytes").unwrap().last().unwrap();
        let lane1 = exp.scalar_stream(1, "mem_bytes").unwrap().last().unwrap();
        // Even split across the two lanes, conserving the total.
        assert!((lane0 + lane1 - gauge("mem.footprint_bytes")).abs() <= 1.0);
        assert!((lane0 - lane1).abs() <= 1.0);
    }

    #[test]
    fn copy_then_write_model_weights_round_trips_bitwise() {
        let mut rng = Rng::seed_from(3);
        let array = ModelArray::new(FusedLinear::new(3, LinearCfg::new(4, 2), &mut rng));
        let fused = array.fused_parameters();
        let before: Vec<Vec<f32>> = fused
            .iter()
            .map(|p| p.param.value_cloned().to_vec())
            .collect();

        // Copy lane 1 out into per-model parameters...
        let dest: Vec<Parameter> = fused
            .iter()
            .map(|p| {
                let dims: Vec<usize> = {
                    let v = p.param.value();
                    let mut d = v.dims().to_vec();
                    d[0] /= p.b;
                    d
                };
                Parameter::new(Tensor::zeros(dims), "dest")
            })
            .collect();
        copy_model_weights(&fused, 1, &dest);

        // ...scribble over the lane, then write the copies back.
        for p in &fused {
            p.param.update(|v, _| {
                let n = v.numel();
                v.as_mut_slice()[n / 3..2 * n / 3].fill(f32::NAN);
            });
        }
        write_model_weights(&fused, 1, &dest);
        for (p, orig) in fused.iter().zip(&before) {
            assert_eq!(
                &p.param.value_cloned().to_vec(),
                orig,
                "round trip not bit-exact"
            );
        }
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn write_model_weights_rejects_wrong_shapes() {
        let mut rng = Rng::seed_from(4);
        let array = ModelArray::new(FusedLinear::new(2, LinearCfg::new(3, 2), &mut rng));
        let fused = array.fused_parameters();
        let bad: Vec<Parameter> = fused
            .iter()
            .map(|_| Parameter::new(Tensor::zeros([1]), "bad"))
            .collect();
        write_model_weights(&fused, 0, &bad);
    }

    #[test]
    fn grid_sweep_cartesian() {
        let (b, grid) = grid_sweep(&[vec![1.0, 2.0], vec![10.0, 20.0]]);
        assert_eq!(b, 4);
        assert_eq!(grid[0].values(), &[1.0, 1.0, 2.0, 2.0]);
        assert_eq!(grid[1].values(), &[10.0, 20.0, 10.0, 20.0]);
    }

    #[test]
    fn grid_sweep_single_axis() {
        let (b, grid) = grid_sweep(&[vec![0.1, 0.2, 0.3]]);
        assert_eq!(b, 3);
        assert_eq!(grid[0].values(), &[0.1, 0.2, 0.3]);
    }
}
