//! Crash-safe lane snapshots: serialize a [`LaneState`] — parameter lanes,
//! every optimizer-state lane, and the shared step counter — to a versioned
//! byte buffer and restore it bit-identically.
//!
//! This is the persistence layer behind `hfta-serve`'s checkpoint/restore:
//! a trial extracted from a fused array at a rung boundary is written to
//! disk as one snapshot, and a killed-and-restarted service splices the
//! decoded state into a fresh array and continues the trajectory
//! bit-for-bit (lane surgery is bit-exact, and `f32::to_le_bytes` /
//! `from_le_bytes` round-trip every bit pattern including NaNs).
//!
//! The format is self-describing little-endian:
//! `magic "HFSN" | version u32 | step_count u64 | ctx flag u8
//! [trial u64, array u64, lane u64] | param count u32 |
//! per parameter: (rank u32, dims u32..., data f32...) | slot count u32 |
//! per parameter x slot: (rank u32, dims u32..., data f32...)`.

use std::fmt;

use hfta_telemetry::flight::TraceCtx;
use hfta_tensor::Tensor;

use crate::surgery::LaneState;

const MAGIC: &[u8; 4] = b"HFSN";
const VERSION: u32 = 1;

/// Errors from snapshot decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The byte stream does not start with the snapshot magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// The stream ended before the declared contents.
    Truncated,
    /// The stream declared contents but bytes were left over.
    TrailingBytes,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not an HFTA lane snapshot"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::Truncated => write!(f, "snapshot is truncated"),
            SnapshotError::TrailingBytes => write!(f, "snapshot has trailing bytes"),
        }
    }
}

impl std::error::Error for SnapshotError {}

fn put_tensor(out: &mut Vec<u8>, t: &Tensor) {
    out.extend_from_slice(&(t.dims().len() as u32).to_le_bytes());
    for &d in t.dims() {
        out.extend_from_slice(&(d as u32).to_le_bytes());
    }
    for x in t.as_slice() {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

/// Serializes a lane state into a snapshot byte buffer.
pub fn save_lane(state: &LaneState) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&state.step_count.to_le_bytes());
    match state.ctx {
        Some(ctx) => {
            out.push(1);
            out.extend_from_slice(&ctx.trial.to_le_bytes());
            out.extend_from_slice(&ctx.array.to_le_bytes());
            out.extend_from_slice(&ctx.lane.to_le_bytes());
        }
        None => out.push(0),
    }
    out.extend_from_slice(&(state.params.len() as u32).to_le_bytes());
    for p in &state.params {
        put_tensor(&mut out, p);
    }
    let slots = state.opt_state.first().map_or(0, |s| s.len());
    out.extend_from_slice(&(slots as u32).to_le_bytes());
    for per_param in &state.opt_state {
        for t in per_param {
            put_tensor(&mut out, t);
        }
    }
    out
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.pos + n > self.bytes.len() {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn tensor(&mut self) -> Result<Tensor, SnapshotError> {
        let rank = self.u32()? as usize;
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(self.u32()? as usize);
        }
        let numel: usize = dims.iter().product();
        let data: Vec<f32> = self
            .take(numel * 4)?
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        Ok(Tensor::from_vec(data, dims))
    }
}

/// Decodes a snapshot back into a [`LaneState`], bit-identically.
///
/// # Errors
///
/// Returns a [`SnapshotError`] on any malformed input; the whole buffer
/// must be consumed (no trailing bytes), so a torn or concatenated file is
/// rejected rather than half-read.
pub fn load_lane(bytes: &[u8]) -> Result<LaneState, SnapshotError> {
    let mut r = Reader { bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(SnapshotError::BadVersion(version));
    }
    let step_count = r.u64()?;
    let ctx = match r.take(1)?[0] {
        0 => None,
        _ => Some(TraceCtx {
            trial: r.u64()?,
            array: r.u64()?,
            lane: r.u64()?,
        }),
    };
    let param_count = r.u32()? as usize;
    let mut params = Vec::with_capacity(param_count);
    for _ in 0..param_count {
        params.push(r.tensor()?);
    }
    let slots = r.u32()? as usize;
    let mut opt_state = Vec::with_capacity(param_count);
    for _ in 0..param_count {
        let mut per_param = Vec::with_capacity(slots);
        for _ in 0..slots {
            per_param.push(r.tensor()?);
        }
        opt_state.push(per_param);
    }
    if r.pos != bytes.len() {
        return Err(SnapshotError::TrailingBytes);
    }
    Ok(LaneState {
        params,
        opt_state,
        step_count,
        ctx,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfta_tensor::Rng;

    fn state(with_ctx: bool) -> LaneState {
        let mut rng = Rng::seed_from(3);
        LaneState {
            params: vec![rng.randn([2, 3]), rng.randn([3])],
            opt_state: vec![
                vec![rng.randn([2, 3]), rng.randn([2, 3])],
                vec![rng.randn([3]), rng.randn([3])],
            ],
            step_count: 17,
            ctx: with_ctx.then_some(TraceCtx {
                trial: 9,
                array: 4,
                lane: 2,
            }),
        }
    }

    #[test]
    fn round_trip_is_bit_identical() {
        for with_ctx in [false, true] {
            let src = state(with_ctx);
            let back = load_lane(&save_lane(&src)).unwrap();
            assert_eq!(back.step_count, src.step_count);
            assert_eq!(back.ctx, src.ctx);
            assert_eq!(back.params, src.params);
            assert_eq!(back.opt_state, src.opt_state);
        }
    }

    #[test]
    fn nan_lanes_round_trip_exactly() {
        let mut src = state(false);
        // A quarantined lane's poisoned values must survive the trip with
        // their exact bit patterns.
        let mut data = src.params[0].to_vec();
        data[0] = f32::NAN;
        data[1] = f32::NEG_INFINITY;
        src.params[0] = Tensor::from_vec(data, vec![2, 3]);
        let back = load_lane(&save_lane(&src)).unwrap();
        let bits: Vec<u32> = back.params[0]
            .as_slice()
            .iter()
            .map(|x| x.to_bits())
            .collect();
        let want: Vec<u32> = src.params[0]
            .as_slice()
            .iter()
            .map(|x| x.to_bits())
            .collect();
        assert_eq!(bits, want);
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert_eq!(load_lane(b"nope").unwrap_err(), SnapshotError::BadMagic);
        let mut bytes = save_lane(&state(true));
        bytes.truncate(bytes.len() - 3);
        assert_eq!(load_lane(&bytes).unwrap_err(), SnapshotError::Truncated);
        let mut bad = save_lane(&state(true));
        bad[4] = 99;
        assert!(matches!(load_lane(&bad), Err(SnapshotError::BadVersion(_))));
        let mut trailing = save_lane(&state(false));
        trailing.push(0);
        assert_eq!(
            load_lane(&trailing).unwrap_err(),
            SnapshotError::TrailingBytes
        );
    }

    #[test]
    fn momentum_free_state_round_trips() {
        // SGD without momentum has zero state slots.
        let mut rng = Rng::seed_from(5);
        let src = LaneState {
            params: vec![rng.randn([4])],
            opt_state: vec![vec![]],
            step_count: 0,
            ctx: None,
        };
        let back = load_lane(&save_lane(&src)).unwrap();
        assert_eq!(back.params, src.params);
        assert_eq!(back.opt_state, src.opt_state);
    }
}
