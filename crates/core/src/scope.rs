//! hfta-scope, core side: per-model health extraction from fused tensors,
//! divergence sentinels, and quarantine.
//!
//! The fused array stores every model's parameters and gradients in shared
//! tensors whose axis 0 is split into `B` equal contiguous chunks (the
//! model axis). Because the storage is row-major, model `i`'s lane of a
//! tensor with `numel` elements is the flat range
//! `i * numel/B .. (i+1) * numel/B` — so *every* per-model statistic here
//! is computed in **one linear pass** over each fused tensor, accumulating
//! `B` results as the scan crosses lane boundaries (one fused reduction,
//! not `B` slice-and-scan passes; `fused_clip_grad_norm` shares the same
//! pass).
//!
//! On top of the extraction sits the [`ScopeMonitor`]: call
//! [`ScopeMonitor::after_backward`] once per step (between `backward()` and
//! `opt.step()`) and [`ScopeMonitor::after_step`] after the update. The
//! monitor streams per-model `grad_norm` / `param_norm` / `update_ratio`
//! scalars into the installed profiler, fires [`SentinelEvent`]s when a
//! model's loss or gradient goes non-finite or explodes, and (when
//! [`SentinelCfg::quarantine`] is set) quarantines the offending model via
//! [`crate::optim::FusedOptimizer::quarantine`] — zeroing its gradient lane
//! and freezing its optimizer state so the survivors' training is
//! bit-for-bit unaffected (see `tests/quarantine.rs`).

use hfta_nn::Var;
use hfta_telemetry::{FlightKind, Profiler, SentinelEvent, SentinelKind};
use std::collections::VecDeque;

use crate::ops::FusedParameter;
use crate::optim::FusedOptimizer;

/// Flat bounds of model `i`'s lane in a fused tensor of `numel` elements.
///
/// # Panics
///
/// Panics if `numel` is not divisible by `b` or `i >= b`.
pub fn lane_bounds(numel: usize, b: usize, i: usize) -> (usize, usize) {
    assert!(i < b, "model index {i} out of range (B = {b})");
    assert_eq!(numel % b, 0, "numel {numel} not divisible by B = {b}");
    let chunk = numel / b;
    (i * chunk, (i + 1) * chunk)
}

/// Per-model squared gradient L2 norms plus non-finite flags, in one
/// linear pass over each fused gradient tensor (no per-model slicing or
/// cloning). `sq[i]` is NaN whenever `nonfinite[i]` is set — callers that
/// want the norm should check the flag first.
///
/// # Panics
///
/// Panics if `params` is empty or widths disagree.
pub fn per_model_grad_sq_norms(params: &[FusedParameter]) -> (Vec<f32>, Vec<bool>) {
    assert!(!params.is_empty(), "no parameters to scan");
    let b = params[0].b;
    assert!(params.iter().all(|p| p.b == b), "array widths disagree");
    let mut sq = vec![0.0f32; b];
    let mut nonfinite = vec![false; b];
    for p in params {
        let g = p.param.grad();
        let s = g.as_slice();
        let chunk = s.len() / b;
        for i in 0..b {
            let mut acc = 0.0f32;
            let mut finite = true;
            for &v in &s[i * chunk..(i + 1) * chunk] {
                acc += v * v;
                finite &= v.is_finite();
            }
            sq[i] += acc;
            nonfinite[i] |= !finite;
        }
    }
    (sq, nonfinite)
}

/// Per-model squared parameter L2 norms, one linear pass per fused tensor.
///
/// # Panics
///
/// Panics if `params` is empty or widths disagree.
pub fn per_model_param_sq_norms(params: &[FusedParameter]) -> Vec<f32> {
    assert!(!params.is_empty(), "no parameters to scan");
    let b = params[0].b;
    assert!(params.iter().all(|p| p.b == b), "array widths disagree");
    let mut sq = vec![0.0f32; b];
    for p in params {
        let v = p.param.value();
        let s = v.as_slice();
        let chunk = s.len() / b;
        for i in 0..b {
            sq[i] += s[i * chunk..(i + 1) * chunk]
                .iter()
                .map(|x| x * x)
                .sum::<f32>();
        }
    }
    sq
}

/// Recovers each model's own mean cross-entropy from fused array-format
/// logits `[B, N, C]` and model-major targets `[B * N]` — the per-model
/// loss the fused §3.2-scaled loss hides.
///
/// # Panics
///
/// Panics on layout mismatches.
pub fn per_model_ce_losses(logits: &Var, targets: &[usize]) -> Vec<f32> {
    let dims = logits.dims();
    assert_eq!(dims.len(), 3, "fused logits must be [B, N, C]");
    let (b, n, c) = (dims[0], dims[1], dims[2]);
    assert_eq!(targets.len(), b * n, "targets must be model-major [B * N]");
    (0..b)
        .map(|i| {
            logits
                .narrow(0, i, 1)
                .reshape(&[n, c])
                .cross_entropy(&targets[i * n..(i + 1) * n])
                .item()
        })
        .collect()
}

/// Seeds NaN into model `model`'s gradient lane of every parameter —
/// deliberate fault injection for testing sentinels and quarantine (the
/// moral equivalent of a hyper-parameter config whose training blew up).
///
/// # Panics
///
/// Panics if `model` is out of range or widths disagree.
pub fn poison_model_lane(params: &[FusedParameter], model: usize) {
    for p in params {
        let b = p.b;
        p.param.update_grad(|g| {
            let s = g.as_mut_slice();
            let (lo, hi) = lane_bounds(s.len(), b, model);
            s[lo..hi].fill(f32::NAN);
        });
    }
}

/// Thresholds and policy for the divergence sentinels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SentinelCfg {
    /// A model whose per-step gradient L2 norm exceeds this fires
    /// [`SentinelKind::GradExplosion`].
    pub grad_explosion: f32,
    /// A model whose loss exceeds this fires
    /// [`SentinelKind::LossExplosion`].
    pub loss_explosion: f32,
    /// Whether a sentinel fire quarantines the model (zero its gradient
    /// lane, freeze its optimizer state). When false the monitor only
    /// records the event.
    pub quarantine: bool,
}

impl Default for SentinelCfg {
    fn default() -> Self {
        SentinelCfg {
            grad_explosion: 1e6,
            loss_explosion: 1e6,
            quarantine: true,
        }
    }
}

/// Per-array training-health monitor: streams per-model scalars into the
/// installed profiler and fires/acts on divergence sentinels. See the
/// module docs for the per-step call protocol.
#[derive(Debug)]
pub struct ScopeMonitor {
    b: usize,
    cfg: SentinelCfg,
    ids: Vec<u64>,
    fired: Vec<bool>,
    events: Vec<SentinelEvent>,
    prev_values: Option<Vec<hfta_tensor::Tensor>>,
    tails: Vec<VecDeque<(u64, f32, f32)>>,
}

/// `(step, loss, grad_norm)` samples kept per lane for fault post-mortems.
/// Maintained only while a profiler is installed.
const FAULT_TAIL: usize = 8;
/// Recent flight events quoted in a fault post-mortem detail.
const FAULT_RECENT: usize = 4;

impl ScopeMonitor {
    /// Creates a monitor for an array of width `b`; lanes report under
    /// model ids `0..b`.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0`.
    pub fn new(b: usize, cfg: SentinelCfg) -> Self {
        Self::with_model_ids(b, cfg, (0..b as u64).collect())
    }

    /// Creates a monitor whose lane `i` reports under `ids[i]` instead of
    /// the lane index — so a scheduler that re-packs a trial into a
    /// different array (and lane) keeps streaming that trial's scalars and
    /// sentinels under one stable id.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0` or `ids.len() != b`.
    pub fn with_model_ids(b: usize, cfg: SentinelCfg, ids: Vec<u64>) -> Self {
        assert!(b > 0, "array width must be positive");
        assert_eq!(ids.len(), b, "one model id per lane");
        ScopeMonitor {
            b,
            cfg,
            ids,
            fired: vec![false; b],
            events: Vec::new(),
            prev_values: None,
            tails: vec![VecDeque::new(); b],
        }
    }

    /// The array width the monitor watches.
    pub fn b(&self) -> usize {
        self.b
    }

    /// The model id lane `i` reports under.
    pub fn model_id(&self, i: usize) -> u64 {
        self.ids[i]
    }

    /// Which models have fired at least one sentinel.
    pub fn fired_models(&self) -> &[bool] {
        &self.fired
    }

    /// All sentinel events in detection order.
    pub fn events(&self) -> &[SentinelEvent] {
        &self.events
    }

    /// Whether any model has fired a sentinel.
    pub fn any_fired(&self) -> bool {
        self.fired.iter().any(|&f| f)
    }

    /// Checks the fused gradients and per-model losses after `backward()`
    /// and before `opt.step()`. Streams each healthy model's `grad_norm`,
    /// fires at most one sentinel per model per step (non-finite loss >
    /// exploding loss > non-finite grad > exploding grad-norm), quarantines
    /// offenders when configured, and returns the indices quarantined *this
    /// call*. Costs one fused reduction over the gradients.
    ///
    /// # Panics
    ///
    /// Panics if `losses` or the optimizer disagree with the array width.
    pub fn after_backward(
        &mut self,
        step: u64,
        losses: &[f32],
        params: &[FusedParameter],
        opt: &mut dyn FusedOptimizer,
    ) -> Vec<usize> {
        assert_eq!(losses.len(), self.b, "one loss per model");
        assert_eq!(opt.quarantined().len(), self.b, "optimizer width mismatch");
        let (sq, nonfinite) = per_model_grad_sq_norms(params);
        assert_eq!(sq.len(), self.b, "parameter width mismatch");
        let profiler = Profiler::current();
        let mut newly = Vec::new();
        for i in 0..self.b {
            let norm = sq[i].sqrt();
            if let Some(p) = &profiler {
                p.scalar(self.ids[i], "grad_norm", step, norm as f64);
                let tail = &mut self.tails[i];
                if tail.len() == FAULT_TAIL {
                    tail.pop_front();
                }
                tail.push_back((step, losses[i], norm));
            }
            if opt.quarantined()[i] {
                continue;
            }
            let fault = if !losses[i].is_finite() {
                Some((SentinelKind::NonFiniteLoss, losses[i]))
            } else if losses[i] > self.cfg.loss_explosion {
                Some((SentinelKind::LossExplosion, losses[i]))
            } else if nonfinite[i] {
                Some((SentinelKind::NonFiniteGrad, f32::NAN))
            } else if norm > self.cfg.grad_explosion {
                Some((SentinelKind::GradExplosion, norm))
            } else {
                None
            };
            let Some((kind, value)) = fault else { continue };
            if self.cfg.quarantine {
                opt.quarantine(i);
                newly.push(i);
            }
            self.fired[i] = true;
            let event = SentinelEvent {
                step,
                model: self.ids[i],
                kind,
                value: value as f64,
                quarantined: self.cfg.quarantine,
            };
            if let Some(p) = &profiler {
                p.sentinel(event.clone());
                let seg = p.sim_segment();
                let t_ns = seg.map_or(0, |s| s.step_end_ns(step));
                let recent: Vec<String> = p
                    .flight_tail(FAULT_RECENT)
                    .iter()
                    .map(|e| format!("{}#{}@{}", e.kind.label(), e.trial, e.t_ns))
                    .collect();
                let tail = &self.tails[i];
                let loss_tail: Vec<String> =
                    tail.iter().map(|(s, l, _)| format!("{s}:{l:.4}")).collect();
                let grad_tail: Vec<String> =
                    tail.iter().map(|(s, _, g)| format!("{s}:{g:.4}")).collect();
                p.flight_event(
                    self.ids[i],
                    t_ns,
                    FlightKind::Fault,
                    seg.map(|s| s.device),
                    seg.map(|s| s.array),
                    Some(i as u64),
                    format!(
                        "{kind:?} value={value} loss_tail=[{}] grad_tail=[{}] recent=[{}]",
                        loss_tail.join(","),
                        grad_tail.join(","),
                        recent.join(",")
                    ),
                );
            }
            self.events.push(event);
        }
        newly
    }

    /// Streams each model's `param_norm` and `update_ratio`
    /// (`‖Δθ‖ / ‖θ_prev‖`, 0 at the first call) after `opt.step()`. One
    /// linear pass per fused parameter plus one value snapshot for the next
    /// step's delta.
    ///
    /// # Panics
    ///
    /// Panics if the parameter set changed width or count between calls.
    pub fn after_step(&mut self, step: u64, params: &[FusedParameter]) {
        assert!(!params.is_empty(), "no parameters to scan");
        let b = params[0].b;
        assert_eq!(b, self.b, "parameter width mismatch");
        let mut cur_sq = vec![0.0f32; b];
        let mut delta_sq = vec![0.0f32; b];
        let mut prev_sq = vec![0.0f32; b];
        if let Some(prev) = &self.prev_values {
            assert_eq!(prev.len(), params.len(), "parameter count changed");
        }
        for (pi, p) in params.iter().enumerate() {
            let v = p.param.value();
            let s = v.as_slice();
            let chunk = s.len() / b;
            let prev = self.prev_values.as_ref().map(|pv| pv[pi].as_slice());
            for i in 0..b {
                let lane = &s[i * chunk..(i + 1) * chunk];
                match prev {
                    Some(ps) => {
                        let plane = &ps[i * chunk..(i + 1) * chunk];
                        for (&c, &q) in lane.iter().zip(plane) {
                            cur_sq[i] += c * c;
                            prev_sq[i] += q * q;
                            let d = c - q;
                            delta_sq[i] += d * d;
                        }
                    }
                    None => {
                        cur_sq[i] += lane.iter().map(|x| x * x).sum::<f32>();
                    }
                }
            }
        }
        if let Some(profiler) = Profiler::current() {
            let had_prev = self.prev_values.is_some();
            for i in 0..b {
                profiler.scalar(self.ids[i], "param_norm", step, cur_sq[i].sqrt() as f64);
                let ratio = if had_prev && prev_sq[i] > 0.0 {
                    (delta_sq[i].sqrt() / prev_sq[i].sqrt()) as f64
                } else {
                    0.0
                };
                profiler.scalar(self.ids[i], "update_ratio", step, ratio);
            }
        }
        self.prev_values = Some(params.iter().map(|p| p.param.value_cloned()).collect());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{FusedOptimizer, FusedSgd, PerModel};
    use hfta_nn::{Parameter, Tape};
    use hfta_tensor::{Rng, Tensor};

    fn fused_param(values: Vec<f32>, b: usize) -> FusedParameter {
        let n = values.len();
        FusedParameter {
            param: Parameter::new(Tensor::from_vec(values, [n]), "w"),
            b,
        }
    }

    #[test]
    fn lane_bounds_partition_contiguously() {
        assert_eq!(lane_bounds(12, 3, 0), (0, 4));
        assert_eq!(lane_bounds(12, 3, 2), (8, 12));
    }

    #[test]
    fn one_pass_norms_match_sliced_norms() {
        let mut rng = Rng::seed_from(0);
        let b = 3;
        let params: Vec<FusedParameter> = (0..2)
            .map(|_| {
                let p = FusedParameter {
                    param: Parameter::new(rng.randn([b * 4, 2]), "w"),
                    b,
                };
                p.param.accumulate_grad(&rng.randn([b * 4, 2]));
                p
            })
            .collect();
        let (sq, nonfinite) = per_model_grad_sq_norms(&params);
        assert!(nonfinite.iter().all(|&f| !f));
        for (i, got) in sq.iter().enumerate() {
            let expect: f32 = params
                .iter()
                .map(|p| {
                    p.model_grad_slice(i)
                        .as_slice()
                        .iter()
                        .map(|v| v * v)
                        .sum::<f32>()
                })
                .sum();
            assert!((got - expect).abs() < 1e-5, "model {i}");
        }
    }

    #[test]
    fn nonfinite_flags_attribute_to_the_right_lane() {
        let p = fused_param(vec![1.0, 1.0, 2.0, 2.0, 3.0, 3.0], 3);
        p.param.accumulate_grad(&Tensor::from_vec(
            vec![0.0, 0.0, f32::NAN, 0.0, 0.0, 0.0],
            [6],
        ));
        let (sq, nonfinite) = per_model_grad_sq_norms(std::slice::from_ref(&p));
        assert_eq!(nonfinite, vec![false, true, false]);
        assert!(sq[1].is_nan());
        assert_eq!(sq[0], 0.0);
    }

    #[test]
    fn param_norms_per_lane() {
        let p = fused_param(vec![3.0, 4.0, 0.0, 0.0], 2);
        let sq = per_model_param_sq_norms(std::slice::from_ref(&p));
        assert_eq!(sq, vec![25.0, 0.0]);
    }

    #[test]
    fn per_model_ce_matches_manual_slices() {
        let mut rng = Rng::seed_from(1);
        let (b, n, c) = (3, 4, 5);
        let logits = rng.randn([b, n, c]);
        let targets: Vec<usize> = (0..b * n).map(|_| rng.below(c)).collect();
        let tape = Tape::new();
        let lv = tape.leaf(logits.clone());
        let losses = per_model_ce_losses(&lv, &targets);
        assert_eq!(losses.len(), b);
        for (i, &l) in losses.iter().enumerate() {
            let tape = Tape::new();
            let per = tape
                .leaf(logits.narrow(0, i, 1).reshape(&[n, c]))
                .cross_entropy(&targets[i * n..(i + 1) * n]);
            assert!((l - per.item()).abs() < 1e-6, "model {i}");
        }
    }

    #[test]
    fn poison_then_sentinel_then_quarantine() {
        let p = fused_param(vec![1.0; 6], 3);
        p.param
            .accumulate_grad(&Tensor::from_vec(vec![0.1; 6], [6]));
        let params = vec![p];
        let mut opt = FusedSgd::new(params.clone(), PerModel::uniform(3, 0.1), 0.9).unwrap();
        poison_model_lane(&params, 1);
        let mut monitor = ScopeMonitor::new(3, SentinelCfg::default());
        let newly = monitor.after_backward(0, &[0.5, 0.5, 0.5], &params, &mut opt);
        assert_eq!(newly, vec![1]);
        assert_eq!(opt.quarantined(), &[false, true, false]);
        assert_eq!(monitor.events().len(), 1);
        assert_eq!(monitor.events()[0].kind, SentinelKind::NonFiniteGrad);
        assert!(monitor.events()[0].quarantined);
        // The poisoned lane's gradient was zeroed by the quarantine.
        let g = params[0].param.grad_cloned();
        assert_eq!(&g.to_vec()[2..4], &[0.0, 0.0]);
        // A second step does not re-fire on the quarantined model.
        let newly = monitor.after_backward(1, &[0.5, f32::NAN, 0.5], &params, &mut opt);
        assert!(newly.is_empty());
        assert_eq!(monitor.events().len(), 1);
    }

    #[test]
    fn explosion_thresholds_fire() {
        let p = fused_param(vec![0.0; 4], 2);
        p.param
            .accumulate_grad(&Tensor::from_vec(vec![0.1, 0.1, 50.0, 50.0], [4]));
        let params = vec![p];
        let mut opt = FusedSgd::new(params.clone(), PerModel::uniform(2, 0.1), 0.0).unwrap();
        let cfg = SentinelCfg {
            grad_explosion: 10.0,
            loss_explosion: 100.0,
            quarantine: false,
        };
        let mut monitor = ScopeMonitor::new(2, cfg);
        monitor.after_backward(0, &[1.0, 1.0], &params, &mut opt);
        assert_eq!(monitor.events().len(), 1);
        assert_eq!(monitor.events()[0].kind, SentinelKind::GradExplosion);
        assert_eq!(monitor.events()[0].model, 1);
        assert!(!monitor.events()[0].quarantined);
        // quarantine=false leaves the optimizer untouched.
        assert_eq!(opt.quarantined(), &[false, false]);
        // Loss explosion outranks grad explosion.
        let mut m2 = ScopeMonitor::new(2, cfg);
        m2.after_backward(0, &[1.0, 1e9], &params, &mut opt);
        assert_eq!(m2.events()[0].kind, SentinelKind::LossExplosion);
    }

    #[test]
    fn monitor_streams_scalars_into_profiler() {
        let p = fused_param(vec![1.0, 1.0, 2.0, 2.0], 2);
        p.param
            .accumulate_grad(&Tensor::from_vec(vec![0.3, 0.4, 0.0, 0.0], [4]));
        let params = vec![p];
        let mut opt = FusedSgd::new(params.clone(), PerModel::uniform(2, 0.5), 0.0).unwrap();
        let prof = Profiler::new("scope-test");
        let _g = prof.install();
        let mut monitor = ScopeMonitor::new(2, SentinelCfg::default());
        monitor.after_backward(0, &[1.0, 1.0], &params, &mut opt);
        opt.step();
        monitor.after_step(0, &params);
        // Same (un-zeroed) gradients drive a second step.
        monitor.after_backward(1, &[0.9, 0.9], &params, &mut opt);
        opt.step();
        monitor.after_step(1, &params);
        let report = prof.report();
        let exp = &report.experiments[0];
        let gn = exp.scalar_stream(0, "grad_norm").unwrap();
        assert_eq!(gn.points.len(), 2);
        assert!((gn.points[0].value - 0.5).abs() < 1e-6);
        let pn = exp.scalar_stream(1, "param_norm").unwrap();
        assert_eq!(pn.points.len(), 2);
        // First update_ratio is 0 (no previous snapshot); model 0 keeps
        // moving so its second ratio is positive; model 1's gradient is
        // zero so it never moves.
        let ur0 = exp.scalar_stream(0, "update_ratio").unwrap();
        assert_eq!(ur0.points[0].value, 0.0);
        assert!(ur0.points[1].value > 0.0);
        let ur1 = exp.scalar_stream(1, "update_ratio").unwrap();
        assert_eq!(ur1.points[1].value, 0.0);
    }

    #[test]
    fn custom_model_ids_key_streams_and_sentinels() {
        let p = fused_param(vec![1.0; 4], 2);
        p.param
            .accumulate_grad(&Tensor::from_vec(vec![0.1; 4], [4]));
        let params = vec![p];
        let mut opt = FusedSgd::new(params.clone(), PerModel::uniform(2, 0.1), 0.0).unwrap();
        let prof = Profiler::new("scope-ids");
        let _g = prof.install();
        let mut monitor = ScopeMonitor::with_model_ids(2, SentinelCfg::default(), vec![41, 17]);
        assert_eq!(monitor.model_id(1), 17);
        poison_model_lane(&params, 1);
        monitor.after_backward(0, &[0.5, 0.5], &params, &mut opt);
        opt.step();
        monitor.after_step(0, &params);
        // The sentinel reports the trial id, not the lane index.
        assert_eq!(monitor.events()[0].model, 17);
        // ...but quarantine still acted on the lane.
        assert_eq!(opt.quarantined(), &[false, true]);
        let report = prof.report();
        let exp = &report.experiments[0];
        assert!(exp.scalar_stream(41, "grad_norm").is_some());
        assert!(exp.scalar_stream(17, "param_norm").is_some());
        assert!(exp.scalar_stream(0, "grad_norm").is_none());
    }
}
