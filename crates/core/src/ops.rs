//! Horizontally fused operator modules.
//!
//! Each `FusedX` module computes `B` independent copies of layer `X` (one
//! per training job) in a **single** call of an already-well-optimized
//! operator, per Table 6 of the paper:
//!
//! | per-model layer | fused realization |
//! |---|---|
//! | `Conv1d/2d`, `ConvTranspose2d` (groups `g`) | same op with groups `B*g` |
//! | `Linear` | `baddbmm` over `[B, N, F]` operands |
//! | `BatchNorm1d/2d` | same op widened to `B*C` channels |
//! | `MaxPool2d`, `Dropout(2d)`, activations | same op (stateless) |
//!
//! Every module offers three constructors/conversions:
//! `new` (fresh per-model initializations), `from_models` (fuse trained
//! per-model layers; checks the same-type/same-shape condition), and
//! `unfuse` (recover the per-model layers, e.g. to checkpoint each job).

use hfta_nn::layers::{BatchNorm, Conv1d, Conv2d, Conv2dCfg, ConvTranspose2d, Linear, LinearCfg};
use hfta_nn::{Module, Parameter, Var};
use hfta_tensor::conv::ConvCfg;
use hfta_tensor::{Rng, Tensor};

use crate::error::{FusionError, Result};

/// A fused parameter together with its array width; axis 0 is always the
/// model axis (divided into `b` equal chunks), which is how per-model
/// optimizer hyper-parameters are broadcast.
#[derive(Debug, Clone)]
pub struct FusedParameter {
    /// The underlying shared parameter slot.
    pub param: Parameter,
    /// Number of models fused along axis 0.
    pub b: usize,
}

impl FusedParameter {
    /// Extracts model `i`'s slice of the parameter value.
    ///
    /// # Panics
    ///
    /// Panics if `i >= b` or axis 0 is not divisible by `b`.
    pub fn model_slice(&self, i: usize) -> Tensor {
        assert!(i < self.b, "model index {i} out of range (B = {})", self.b);
        let v = self.param.value_cloned();
        let chunk = v.dim(0) / self.b;
        v.narrow(0, i * chunk, chunk)
    }

    /// Extracts model `i`'s slice of the gradient.
    ///
    /// # Panics
    ///
    /// Panics if `i >= b`.
    pub fn model_grad_slice(&self, i: usize) -> Tensor {
        assert!(i < self.b, "model index {i} out of range (B = {})", self.b);
        let g = self.param.grad_cloned();
        let chunk = g.dim(0) / self.b;
        g.narrow(0, i * chunk, chunk)
    }
}

/// A module that computes `B` fused models simultaneously.
pub trait FusedModule: Module {
    /// The array width (number of fused models).
    fn b(&self) -> usize;

    /// The module's parameters annotated with fusion metadata.
    fn fused_parameters(&self) -> Vec<FusedParameter> {
        let b = self.b();
        self.parameters()
            .into_iter()
            .map(|param| FusedParameter { param, b })
            .collect()
    }
}

fn check_same<T: PartialEq + std::fmt::Debug>(
    items: impl Iterator<Item = T>,
    kind: &'static str,
) -> Result<T> {
    let mut iter = items.enumerate();
    let (_, first) = iter.next().ok_or(FusionError::Empty)?;
    for (i, item) in iter {
        if item != first {
            return Err(FusionError::ShapeMismatch {
                kind: kind.into(),
                index: i,
                detail: format!("{item:?} vs {first:?}"),
            });
        }
    }
    Ok(first)
}

// ---------------------------------------------------------------------------
// FusedConv2d
// ---------------------------------------------------------------------------

/// `B` fused 2-D convolutions, realized as one grouped convolution with
/// `G = B * g` (Table 6 row 1). Operates in conv format `[N, B*Cin, H, W]`.
#[derive(Debug)]
pub struct FusedConv2d {
    /// Stacked filter weights `[B*Cout, Cin/g, k, k]`.
    pub weight: Parameter,
    /// Stacked bias `[B*Cout]`.
    pub bias: Option<Parameter>,
    b: usize,
    per_model: Conv2dCfg,
}

impl FusedConv2d {
    /// Creates `b` independently initialized fused convolutions.
    ///
    /// Each model's filters are drawn from its own RNG stream (split from
    /// `rng`), exactly as `b` separate jobs would initialize.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0` or channel counts are not divisible by groups.
    pub fn new(b: usize, cfg: Conv2dCfg, rng: &mut Rng) -> Self {
        assert!(b > 0, "array width must be positive");
        let models: Vec<Conv2d> = (0..b).map(|_| Conv2d::new(cfg, &mut rng.split())).collect();
        Self::from_models(&models).expect("freshly built models always fuse")
    }

    /// Fuses existing per-model layers.
    ///
    /// # Errors
    ///
    /// Returns [`FusionError`] if configurations differ or the slice is
    /// empty.
    pub fn from_models(models: &[Conv2d]) -> Result<Self> {
        let cfg = check_same(models.iter().map(|m| m.cfg()), "Conv2d")?;
        let weights: Vec<Tensor> = models.iter().map(|m| m.weight.value_cloned()).collect();
        let weight = Tensor::concat(&weights.iter().collect::<Vec<_>>(), 0);
        let bias = if cfg.bias {
            let biases: Vec<Tensor> = models
                .iter()
                .map(|m| m.bias.as_ref().expect("cfg.bias set").value_cloned())
                .collect();
            Some(Tensor::concat(&biases.iter().collect::<Vec<_>>(), 0))
        } else {
            None
        };
        Ok(FusedConv2d {
            weight: Parameter::new(weight, "fused_conv2d.weight"),
            bias: bias.map(|b| Parameter::new(b, "fused_conv2d.bias")),
            b: models.len(),
            per_model: cfg,
        })
    }

    /// Recovers the per-model layers (weights are copied out).
    pub fn unfuse(&self) -> Vec<Conv2d> {
        let ws = self.weight.value_cloned().chunk(self.b, 0);
        let bs: Vec<Option<Tensor>> = match &self.bias {
            Some(bias) => bias
                .value_cloned()
                .chunk(self.b, 0)
                .into_iter()
                .map(Some)
                .collect(),
            None => vec![None; self.b],
        };
        ws.into_iter()
            .zip(bs)
            .map(|(w, b)| Conv2d::from_parts(self.per_model, w, b))
            .collect()
    }

    /// The per-model configuration.
    pub fn per_model_cfg(&self) -> Conv2dCfg {
        self.per_model
    }

    fn conv_cfg(&self) -> ConvCfg {
        ConvCfg::square(
            self.per_model.stride,
            self.per_model.padding,
            self.per_model.groups * self.b,
        )
    }
}

impl Module for FusedConv2d {
    fn forward(&self, x: &Var) -> Var {
        let tape = x.tape().clone();
        let w = tape.param(&self.weight);
        let b = self.bias.as_ref().map(|b| tape.param(b));
        x.conv2d(&w, b.as_ref(), self.conv_cfg())
    }

    fn parameters(&self) -> Vec<Parameter> {
        let mut ps = vec![self.weight.clone()];
        if let Some(b) = &self.bias {
            ps.push(b.clone());
        }
        ps
    }
}

impl FusedModule for FusedConv2d {
    fn b(&self) -> usize {
        self.b
    }
}

// ---------------------------------------------------------------------------
// FusedConvTranspose2d
// ---------------------------------------------------------------------------

/// `B` fused 2-D transposed convolutions (grouped, Table 6 row 3).
/// Operates in conv format `[N, B*Cin, H, W]`.
#[derive(Debug)]
pub struct FusedConvTranspose2d {
    /// Stacked filter weights `[B*Cin, Cout/g, k, k]`.
    pub weight: Parameter,
    /// Stacked bias `[B*Cout]`.
    pub bias: Option<Parameter>,
    b: usize,
    per_model: Conv2dCfg,
}

impl FusedConvTranspose2d {
    /// Creates `b` independently initialized fused deconvolutions.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0` or channel counts are not divisible by groups.
    pub fn new(b: usize, cfg: Conv2dCfg, rng: &mut Rng) -> Self {
        assert!(b > 0, "array width must be positive");
        let models: Vec<ConvTranspose2d> = (0..b)
            .map(|_| ConvTranspose2d::new(cfg, &mut rng.split()))
            .collect();
        Self::from_models(&models).expect("freshly built models always fuse")
    }

    /// Fuses existing per-model layers.
    ///
    /// # Errors
    ///
    /// Returns [`FusionError`] if configurations differ or the slice is
    /// empty.
    pub fn from_models(models: &[ConvTranspose2d]) -> Result<Self> {
        let cfg = check_same(models.iter().map(|m| m.cfg()), "ConvTranspose2d")?;
        let weights: Vec<Tensor> = models.iter().map(|m| m.weight.value_cloned()).collect();
        let weight = Tensor::concat(&weights.iter().collect::<Vec<_>>(), 0);
        let bias = if cfg.bias {
            let biases: Vec<Tensor> = models
                .iter()
                .map(|m| m.bias.as_ref().expect("cfg.bias set").value_cloned())
                .collect();
            Some(Tensor::concat(&biases.iter().collect::<Vec<_>>(), 0))
        } else {
            None
        };
        Ok(FusedConvTranspose2d {
            weight: Parameter::new(weight, "fused_convt2d.weight"),
            bias: bias.map(|b| Parameter::new(b, "fused_convt2d.bias")),
            b: models.len(),
            per_model: cfg,
        })
    }

    /// Recovers the per-model layers.
    pub fn unfuse(&self) -> Vec<ConvTranspose2d> {
        let ws = self.weight.value_cloned().chunk(self.b, 0);
        let bs: Vec<Option<Tensor>> = match &self.bias {
            Some(bias) => bias
                .value_cloned()
                .chunk(self.b, 0)
                .into_iter()
                .map(Some)
                .collect(),
            None => vec![None; self.b],
        };
        ws.into_iter()
            .zip(bs)
            .map(|(w, b)| ConvTranspose2d::from_parts(self.per_model, w, b))
            .collect()
    }

    fn conv_cfg(&self) -> ConvCfg {
        ConvCfg::square(
            self.per_model.stride,
            self.per_model.padding,
            self.per_model.groups * self.b,
        )
    }
}

impl Module for FusedConvTranspose2d {
    fn forward(&self, x: &Var) -> Var {
        let tape = x.tape().clone();
        let w = tape.param(&self.weight);
        let b = self.bias.as_ref().map(|b| tape.param(b));
        x.conv_transpose2d(&w, b.as_ref(), self.conv_cfg())
    }

    fn parameters(&self) -> Vec<Parameter> {
        let mut ps = vec![self.weight.clone()];
        if let Some(b) = &self.bias {
            ps.push(b.clone());
        }
        ps
    }
}

impl FusedModule for FusedConvTranspose2d {
    fn b(&self) -> usize {
        self.b
    }
}

// ---------------------------------------------------------------------------
// FusedConv1d
// ---------------------------------------------------------------------------

/// `B` fused 1-D convolutions (grouped, Table 6 row 2). Operates in conv
/// format `[N, B*Cin, L]`.
#[derive(Debug)]
pub struct FusedConv1d {
    /// Stacked filter weights `[B*Cout, Cin/g, k]`.
    pub weight: Parameter,
    /// Stacked bias `[B*Cout]`.
    pub bias: Option<Parameter>,
    b: usize,
    stride: usize,
    padding: usize,
    groups: usize,
}

impl FusedConv1d {
    /// Creates `b` independently initialized fused 1-D convolutions.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0` or channel counts are not divisible by groups.
    pub fn new(
        b: usize,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut Rng,
    ) -> Self {
        assert!(b > 0, "array width must be positive");
        let models: Vec<Conv1d> = (0..b)
            .map(|_| {
                Conv1d::new(
                    in_channels,
                    out_channels,
                    kernel,
                    stride,
                    padding,
                    1,
                    &mut rng.split(),
                )
            })
            .collect();
        Self::from_models(&models).expect("freshly built models always fuse")
    }

    /// Fuses existing per-model layers.
    ///
    /// # Errors
    ///
    /// Returns [`FusionError`] if geometries or weight shapes differ.
    pub fn from_models(models: &[Conv1d]) -> Result<Self> {
        let (stride, padding, groups) = check_same(models.iter().map(|m| m.geometry()), "Conv1d")?;
        check_same(
            models.iter().map(|m| m.weight.value().dims().to_vec()),
            "Conv1d",
        )?;
        let weights: Vec<Tensor> = models.iter().map(|m| m.weight.value_cloned()).collect();
        let weight = Tensor::concat(&weights.iter().collect::<Vec<_>>(), 0);
        let bias = if models[0].bias.is_some() {
            let biases: Vec<Tensor> = models
                .iter()
                .map(|m| m.bias.as_ref().expect("uniform bias").value_cloned())
                .collect();
            Some(Tensor::concat(&biases.iter().collect::<Vec<_>>(), 0))
        } else {
            None
        };
        Ok(FusedConv1d {
            weight: Parameter::new(weight, "fused_conv1d.weight"),
            bias: bias.map(|b| Parameter::new(b, "fused_conv1d.bias")),
            b: models.len(),
            stride,
            padding,
            groups,
        })
    }

    /// Recovers the per-model layers.
    pub fn unfuse(&self) -> Vec<Conv1d> {
        let ws = self.weight.value_cloned().chunk(self.b, 0);
        let bs: Vec<Option<Tensor>> = match &self.bias {
            Some(bias) => bias
                .value_cloned()
                .chunk(self.b, 0)
                .into_iter()
                .map(Some)
                .collect(),
            None => vec![None; self.b],
        };
        ws.into_iter()
            .zip(bs)
            .map(|(w, b)| Conv1d::from_parts(w, b, self.stride, self.padding, self.groups))
            .collect()
    }
}

impl Module for FusedConv1d {
    fn forward(&self, x: &Var) -> Var {
        let tape = x.tape().clone();
        let w = tape.param(&self.weight);
        let b = self.bias.as_ref().map(|b| tape.param(b));
        x.conv1d(
            &w,
            b.as_ref(),
            self.stride,
            self.padding,
            self.groups * self.b,
        )
    }

    fn parameters(&self) -> Vec<Parameter> {
        let mut ps = vec![self.weight.clone()];
        if let Some(b) = &self.bias {
            ps.push(b.clone());
        }
        ps
    }
}

impl FusedModule for FusedConv1d {
    fn b(&self) -> usize {
        self.b
    }
}

// ---------------------------------------------------------------------------
// FusedLinear
// ---------------------------------------------------------------------------

/// `B` fused linear layers, realized as one `baddbmm` (Table 6 row 4).
/// Operates in array format `[B, N, F_in] -> [B, N, F_out]`.
#[derive(Debug)]
pub struct FusedLinear {
    /// Stacked weights `[B, F_in, F_out]`.
    pub weight: Parameter,
    /// Stacked bias `[B, 1, F_out]`.
    pub bias: Option<Parameter>,
    b: usize,
}

impl FusedLinear {
    /// Creates `b` independently initialized fused linear layers.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0`.
    pub fn new(b: usize, cfg: LinearCfg, rng: &mut Rng) -> Self {
        assert!(b > 0, "array width must be positive");
        let models: Vec<Linear> = (0..b).map(|_| Linear::new(cfg, &mut rng.split())).collect();
        Self::from_models(&models).expect("freshly built models always fuse")
    }

    /// Fuses existing per-model layers.
    ///
    /// # Errors
    ///
    /// Returns [`FusionError`] if weight shapes differ.
    pub fn from_models(models: &[Linear]) -> Result<Self> {
        check_same(
            models.iter().map(|m| m.weight.value().dims().to_vec()),
            "Linear",
        )?;
        let ws: Vec<Tensor> = models
            .iter()
            .map(|m| m.weight.value_cloned().unsqueeze(0))
            .collect();
        let weight = Tensor::concat(&ws.iter().collect::<Vec<_>>(), 0);
        let bias = if models[0].bias.is_some() {
            let bs: Vec<Tensor> = models
                .iter()
                .map(|m| {
                    let b = m.bias.as_ref().expect("uniform bias").value_cloned();
                    let f = b.numel();
                    b.reshape(&[1, 1, f])
                })
                .collect();
            Some(Tensor::concat(&bs.iter().collect::<Vec<_>>(), 0))
        } else {
            None
        };
        Ok(FusedLinear {
            weight: Parameter::new(weight, "fused_linear.weight"),
            bias: bias.map(|b| Parameter::new(b, "fused_linear.bias")),
            b: models.len(),
        })
    }

    /// Recovers the per-model layers.
    pub fn unfuse(&self) -> Vec<Linear> {
        let ws = self.weight.value_cloned().chunk(self.b, 0);
        let bs: Vec<Option<Tensor>> = match &self.bias {
            Some(bias) => bias
                .value_cloned()
                .chunk(self.b, 0)
                .into_iter()
                .map(|b| {
                    let f = b.numel();
                    Some(b.reshape(&[f]))
                })
                .collect(),
            None => vec![None; self.b],
        };
        ws.into_iter()
            .zip(bs)
            .map(|(w, b)| Linear::from_parts(w.squeeze(0), b))
            .collect()
    }
}

impl Module for FusedLinear {
    fn forward(&self, x: &Var) -> Var {
        assert_eq!(
            x.dims().len(),
            3,
            "FusedLinear expects array format [B, N, F]"
        );
        assert_eq!(x.dim(0), self.b, "array width mismatch");
        let tape = x.tape().clone();
        let w = tape.param(&self.weight);
        match &self.bias {
            Some(b) => x.baddbmm(&w, &tape.param(b)),
            None => x.bmm(&w),
        }
    }

    fn parameters(&self) -> Vec<Parameter> {
        let mut ps = vec![self.weight.clone()];
        if let Some(b) = &self.bias {
            ps.push(b.clone());
        }
        ps
    }
}

impl FusedModule for FusedLinear {
    fn b(&self) -> usize {
        self.b
    }
}

// ---------------------------------------------------------------------------
// FusedBatchNorm
// ---------------------------------------------------------------------------

/// `B` fused batch norms: one batch norm widened to `B*C` channels
/// (Table 6 rows 5–6). Per-channel statistics are independent, so the
/// widened op computes exactly the per-model statistics. Operates in conv
/// format.
#[derive(Debug)]
pub struct FusedBatchNorm {
    inner: BatchNorm,
    b: usize,
    channels: usize,
}

impl FusedBatchNorm {
    /// Creates `b` fused batch norms over `channels` channels each.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0`.
    pub fn new(b: usize, channels: usize) -> Self {
        assert!(b > 0, "array width must be positive");
        FusedBatchNorm {
            inner: BatchNorm::new(b * channels),
            b,
            channels,
        }
    }

    /// Fuses existing per-model batch norms.
    ///
    /// # Errors
    ///
    /// Returns [`FusionError`] if channel counts differ.
    pub fn from_models(models: &[BatchNorm]) -> Result<Self> {
        let c = check_same(models.iter().map(|m| m.gamma.numel()), "BatchNorm")?;
        let gs: Vec<Tensor> = models.iter().map(|m| m.gamma.value_cloned()).collect();
        let bs: Vec<Tensor> = models.iter().map(|m| m.beta.value_cloned()).collect();
        let gamma = Tensor::concat(&gs.iter().collect::<Vec<_>>(), 0);
        let beta = Tensor::concat(&bs.iter().collect::<Vec<_>>(), 0);
        let rm: Vec<f32> = models.iter().flat_map(|m| m.running_mean()).collect();
        let rv: Vec<f32> = models.iter().flat_map(|m| m.running_var()).collect();
        Ok(FusedBatchNorm {
            inner: BatchNorm::from_parts(gamma, beta, rm, rv),
            b: models.len(),
            channels: c,
        })
    }

    /// Recovers the per-model batch norms (affine weights and running
    /// statistics).
    pub fn unfuse(&self) -> Vec<BatchNorm> {
        let gs = self.inner.gamma.value_cloned().chunk(self.b, 0);
        let bs = self.inner.beta.value_cloned().chunk(self.b, 0);
        let rm = self.inner.running_mean();
        let rv = self.inner.running_var();
        (0..self.b)
            .map(|i| {
                BatchNorm::from_parts(
                    gs[i].clone(),
                    bs[i].clone(),
                    rm[i * self.channels..(i + 1) * self.channels].to_vec(),
                    rv[i * self.channels..(i + 1) * self.channels].to_vec(),
                )
            })
            .collect()
    }

    /// Per-model channel count.
    pub fn channels(&self) -> usize {
        self.channels
    }
}

impl Module for FusedBatchNorm {
    fn forward(&self, x: &Var) -> Var {
        self.inner.forward(x)
    }

    fn parameters(&self) -> Vec<Parameter> {
        self.inner.parameters()
    }

    fn set_training(&self, training: bool) {
        self.inner.set_training(training);
    }
}

impl FusedModule for FusedBatchNorm {
    fn b(&self) -> usize {
        self.b
    }
}

// ---------------------------------------------------------------------------
// Stateless fused operators (Table 6 rows 7-12)
// ---------------------------------------------------------------------------

/// Declares a fused wrapper around a stateless `hfta-nn` layer: per
/// Table 6, stateless operators fuse by simply running over the widened
/// tensor, so the wrapper only adds the array-width bookkeeping that
/// [`FusedModule`] consumers rely on.
macro_rules! stateless_fused {
    ($(#[$doc:meta])* $name:ident wraps $inner:ty) => {
        $(#[$doc])*
        #[derive(Debug)]
        pub struct $name {
            inner: $inner,
            b: usize,
        }

        impl $name {
            /// Wraps the per-model layer for a `b`-wide array.
            ///
            /// # Panics
            ///
            /// Panics if `b == 0`.
            pub fn new(b: usize, inner: $inner) -> Self {
                assert!(b > 0, "array width must be positive");
                $name { inner, b }
            }

            /// The wrapped per-model layer.
            pub fn inner(&self) -> &$inner {
                &self.inner
            }
        }

        impl Module for $name {
            fn forward(&self, x: &Var) -> Var {
                self.inner.forward(x)
            }

            fn parameters(&self) -> Vec<Parameter> {
                Vec::new()
            }

            fn set_training(&self, training: bool) {
                self.inner.set_training(training);
            }
        }

        impl FusedModule for $name {
            fn b(&self) -> usize {
                self.b
            }
        }
    };
}

stateless_fused! {
    /// `B` fused max pools: one `MaxPool2d` over `[N, B*C, H, W]`
    /// (Table 6 row 7 — channels pool independently).
    FusedMaxPool2d wraps hfta_nn::layers::MaxPool2d
}

stateless_fused! {
    /// `B` fused channel dropouts: one `Dropout2d` over `[N, B*C, H, W]`
    /// (Table 6 row 8). Note the fused mask realization differs from `B`
    /// independent serial masks — stochastically equivalent, not
    /// bit-identical (disable training mode for exact comparisons).
    FusedDropout2d wraps hfta_nn::layers::Dropout2d
}

stateless_fused! {
    /// `B` fused elementwise dropouts over the widened tensor
    /// (Table 6 row 9; same stochastic-equivalence caveat as
    /// [`FusedDropout2d`]).
    FusedDropout wraps hfta_nn::layers::Dropout
}

stateless_fused! {
    /// `B` fused leaky ReLUs over the widened tensor (Table 6 row 10).
    FusedLeakyRelu wraps hfta_nn::layers::LeakyRelu
}

stateless_fused! {
    /// `B` fused ReLUs over the widened tensor (Table 6 row 11).
    FusedRelu wraps hfta_nn::layers::Relu
}

stateless_fused! {
    /// `B` fused Tanhs over the widened tensor (Table 6 row 12).
    FusedTanh wraps hfta_nn::layers::Tanh
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{stack_array, stack_conv, unstack_array, unstack_conv};
    use hfta_nn::Tape;

    fn rng() -> Rng {
        Rng::seed_from(42)
    }

    /// Forward the fused module on stacked inputs and compare against each
    /// per-model forward — the §3.3 equivalence, at operator granularity.
    fn assert_conv_format_equivalence<M, F>(models: &[M], fused: &F, inputs: &[Tensor], tol: f32)
    where
        M: Module,
        F: Module,
    {
        let tape = Tape::new();
        let fused_in = tape.leaf(stack_conv(inputs).unwrap());
        let fused_out = fused.forward(&fused_in).value();
        let parts = unstack_conv(&fused_out, models.len());
        for (i, m) in models.iter().enumerate() {
            let tape = Tape::new();
            let y = m.forward(&tape.leaf(inputs[i].clone())).value();
            assert!(
                parts[i].allclose(&y, tol),
                "model {i} diverges: max diff {}",
                parts[i].max_abs_diff(&y)
            );
        }
    }

    #[test]
    fn fused_conv2d_equals_per_model() {
        let mut r = rng();
        let cfg = Conv2dCfg::new(3, 8, 3).stride(1).padding(1);
        let models: Vec<Conv2d> = (0..4).map(|_| Conv2d::new(cfg, &mut r.split())).collect();
        let fused = FusedConv2d::from_models(&models).unwrap();
        let inputs: Vec<Tensor> = (0..4).map(|_| r.randn([2, 3, 6, 6])).collect();
        assert_conv_format_equivalence(&models, &fused, &inputs, 1e-4);
    }

    #[test]
    fn fused_conv2d_grouped_base() {
        // Fusing convs that are already grouped (g = 2) -> G = B * 2.
        let mut r = rng();
        let cfg = Conv2dCfg::new(4, 8, 3).padding(1).groups(2);
        let models: Vec<Conv2d> = (0..3).map(|_| Conv2d::new(cfg, &mut r.split())).collect();
        let fused = FusedConv2d::from_models(&models).unwrap();
        let inputs: Vec<Tensor> = (0..3).map(|_| r.randn([1, 4, 5, 5])).collect();
        assert_conv_format_equivalence(&models, &fused, &inputs, 1e-4);
    }

    #[test]
    fn fused_conv2d_unfuse_round_trip() {
        let mut r = rng();
        let cfg = Conv2dCfg::new(2, 4, 3);
        let models: Vec<Conv2d> = (0..3).map(|_| Conv2d::new(cfg, &mut r.split())).collect();
        let fused = FusedConv2d::from_models(&models).unwrap();
        let recovered = fused.unfuse();
        for (m, u) in models.iter().zip(&recovered) {
            assert_eq!(m.weight.value_cloned(), u.weight.value_cloned());
            assert_eq!(
                m.bias.as_ref().unwrap().value_cloned(),
                u.bias.as_ref().unwrap().value_cloned()
            );
        }
    }

    #[test]
    fn fused_conv2d_rejects_mismatched_cfg() {
        let mut r = rng();
        let a = Conv2d::new(Conv2dCfg::new(3, 8, 3), &mut r);
        let b = Conv2d::new(Conv2dCfg::new(3, 8, 5), &mut r);
        assert!(matches!(
            FusedConv2d::from_models(&[a, b]).unwrap_err(),
            FusionError::ShapeMismatch { index: 1, .. }
        ));
    }

    #[test]
    fn fused_conv_transpose_equals_per_model() {
        let mut r = rng();
        let cfg = Conv2dCfg::new(8, 4, 4).stride(2).padding(1);
        let models: Vec<ConvTranspose2d> = (0..3)
            .map(|_| ConvTranspose2d::new(cfg, &mut r.split()))
            .collect();
        let fused = FusedConvTranspose2d::from_models(&models).unwrap();
        let inputs: Vec<Tensor> = (0..3).map(|_| r.randn([2, 8, 4, 4])).collect();
        assert_conv_format_equivalence(&models, &fused, &inputs, 1e-4);
    }

    #[test]
    fn fused_conv1d_equals_per_model() {
        let mut r = rng();
        let models: Vec<Conv1d> = (0..5)
            .map(|_| Conv1d::new(3, 16, 1, 1, 0, 1, &mut r.split()))
            .collect();
        let fused = FusedConv1d::from_models(&models).unwrap();
        let inputs: Vec<Tensor> = (0..5).map(|_| r.randn([2, 3, 30])).collect();
        assert_conv_format_equivalence(&models, &fused, &inputs, 1e-4);
    }

    #[test]
    fn fused_linear_equals_per_model() {
        let mut r = rng();
        let models: Vec<Linear> = (0..4)
            .map(|_| Linear::new(LinearCfg::new(6, 3), &mut r.split()))
            .collect();
        let fused = FusedLinear::from_models(&models).unwrap();
        let inputs: Vec<Tensor> = (0..4).map(|_| r.randn([5, 6])).collect();
        let tape = Tape::new();
        let fused_in = tape.leaf(stack_array(&inputs).unwrap());
        let outs = unstack_array(&fused.forward(&fused_in).value(), 4);
        for (i, m) in models.iter().enumerate() {
            let tape = Tape::new();
            let y = m.forward(&tape.leaf(inputs[i].clone())).value();
            assert!(outs[i].allclose(&y, 1e-4), "model {i}");
        }
    }

    #[test]
    fn fused_linear_unfuse_round_trip() {
        let mut r = rng();
        let models: Vec<Linear> = (0..3)
            .map(|_| Linear::new(LinearCfg::new(4, 2), &mut r.split()))
            .collect();
        let fused = FusedLinear::from_models(&models).unwrap();
        for (m, u) in models.iter().zip(fused.unfuse()) {
            assert_eq!(m.weight.value_cloned(), u.weight.value_cloned());
            assert_eq!(
                m.bias.as_ref().unwrap().value_cloned(),
                u.bias.as_ref().unwrap().value_cloned()
            );
        }
    }

    #[test]
    fn fused_batch_norm_equals_per_model() {
        let mut r = rng();
        let models: Vec<BatchNorm> = (0..3).map(|_| BatchNorm::new(4)).collect();
        let fused = FusedBatchNorm::from_models(&models).unwrap();
        let inputs: Vec<Tensor> = (0..3).map(|_| r.randn([6, 4, 5, 5])).collect();
        assert_conv_format_equivalence(&models, &fused, &inputs, 1e-4);
    }

    #[test]
    fn fused_batch_norm_running_stats_match_serial() {
        let mut r = rng();
        let serial = BatchNorm::new(2);
        let fused = FusedBatchNorm::new(3, 2);
        let x: Vec<Tensor> = (0..3).map(|_| r.randn([4, 2, 3])).collect();
        // Run the same input through model 0 of the array and the serial BN.
        let tape = Tape::new();
        let _ = serial.forward(&tape.leaf(x[0].clone()));
        let fused_in = tape.leaf(stack_conv(&x).unwrap());
        let _ = fused.forward(&fused_in);
        let fused_bn0 = &fused.unfuse()[0];
        for (a, b) in serial
            .running_mean()
            .iter()
            .zip(fused_bn0.running_mean().iter())
        {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
        for (a, b) in serial
            .running_var()
            .iter()
            .zip(fused_bn0.running_var().iter())
        {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn fused_parameters_expose_model_slices() {
        let mut r = rng();
        let fused = FusedConv2d::new(3, Conv2dCfg::new(2, 4, 3), &mut r);
        let fps = fused.fused_parameters();
        assert_eq!(fps.len(), 2);
        let w0 = fps[0].model_slice(0);
        assert_eq!(w0.dims(), &[4, 2, 3, 3]);
        assert_eq!(fused.unfuse()[0].weight.value_cloned(), w0);
    }

    #[test]
    fn stateless_fused_wrappers_are_identities_per_model() {
        let mut r = rng();
        let b = 3;
        let xs: Vec<Tensor> = (0..b).map(|_| r.randn([2, 4, 6, 6])).collect();
        let pool = FusedMaxPool2d::new(b, hfta_nn::layers::MaxPool2d::new(2));
        assert_eq!(pool.b(), b);
        let tape = Tape::new();
        let fx = tape.leaf(stack_conv(&xs).unwrap());
        let fused_out = pool.forward(&fx).value();
        let parts = unstack_conv(&fused_out, b);
        for (i, x) in xs.iter().enumerate() {
            let tape = Tape::new();
            let y = hfta_nn::layers::MaxPool2d::new(2)
                .forward(&tape.leaf(x.clone()))
                .value();
            assert!(parts[i].allclose(&y, 1e-6), "model {i}");
        }
        // ReLU / Tanh wrappers behave identically too.
        let relu = FusedRelu::new(b, hfta_nn::layers::Relu);
        let tanh = FusedTanh::new(b, hfta_nn::layers::Tanh);
        let lrelu = FusedLeakyRelu::new(b, hfta_nn::layers::LeakyRelu::new(0.2));
        let tape = Tape::new();
        let fx = tape.leaf(stack_conv(&xs).unwrap());
        assert_eq!(relu.forward(&fx).value(), fx.value().relu());
        assert_eq!(tanh.forward(&fx).value(), fx.value().tanh());
        assert_eq!(lrelu.forward(&fx).value(), fx.value().leaky_relu(0.2));
        assert!(relu.fused_parameters().is_empty());
    }

    #[test]
    fn fused_dropout_is_identity_in_eval() {
        let d = FusedDropout::new(2, hfta_nn::layers::Dropout::new(0.5, 7));
        d.set_training(false);
        let tape = Tape::new();
        let x = tape.leaf(Tensor::ones([4, 8]));
        assert_eq!(d.forward(&x).value(), Tensor::ones([4, 8]));
        let d2 = FusedDropout2d::new(2, hfta_nn::layers::Dropout2d::new(0.5, 7));
        d2.set_training(false);
        let x = tape.leaf(Tensor::ones([2, 4, 3, 3]));
        assert_eq!(d2.forward(&x).value(), Tensor::ones([2, 4, 3, 3]));
    }

    #[test]
    fn gradient_isolation_between_models() {
        // The defining property: training signal for model i must not leak
        // into model j's weights.
        let mut r = rng();
        let fused = FusedConv2d::new(2, Conv2dCfg::new(1, 2, 3), &mut r);
        let tape = Tape::new();
        // Input where model 1's channels are zero.
        let x0 = r.randn([1, 1, 5, 5]);
        let x1 = Tensor::zeros([1, 1, 5, 5]);
        let x = tape.leaf(stack_conv(&[x0, x1]).unwrap());
        let y = fused.forward(&x);
        // Loss touches only model 0's output channels.
        let loss = y.narrow(1, 0, 2).square().sum();
        loss.backward();
        let fp = &fused.fused_parameters()[0];
        let g0 = fp.model_grad_slice(0);
        let g1 = fp.model_grad_slice(1);
        assert!(g0.abs().max_value() > 0.0, "model 0 must receive gradient");
        assert_eq!(g1.abs().max_value(), 0.0, "model 1 must be untouched");
    }
}
