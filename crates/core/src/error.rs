//! Errors produced when horizontal fusion is not applicable.

use std::fmt;

/// Why a set of operators (or models) could not be horizontally fused.
///
/// HFTA's applicability condition (paper §3, observation 1) is that the
/// operators across jobs have the *same types* with the *same shapes*;
/// these variants report which part of the condition failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FusionError {
    /// No operators were supplied.
    Empty,
    /// Two operators had different kinds (e.g. `Conv2d` vs `Linear`).
    KindMismatch {
        /// Kind of the first operator.
        expected: String,
        /// Kind of the mismatched operator.
        found: String,
        /// Index of the mismatched operator.
        index: usize,
    },
    /// Two operators of the same kind had different shapes or
    /// hyper-parameters (kernel, stride, groups, ...).
    ShapeMismatch {
        /// Kind of the operators.
        kind: String,
        /// Index of the mismatched operator.
        index: usize,
        /// Human-readable detail of the differing attribute.
        detail: String,
    },
    /// Models had different parameter counts or layer structures.
    StructureMismatch {
        /// Human-readable detail.
        detail: String,
    },
    /// An array width of zero was requested.
    InvalidWidth,
    /// A per-model hyper-parameter vector had the wrong length.
    HyperParamLength {
        /// Expected length (the array width `B`).
        expected: usize,
        /// Actual length.
        found: usize,
    },
}

impl fmt::Display for FusionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FusionError::Empty => write!(f, "cannot fuse an empty set of operators"),
            FusionError::KindMismatch {
                expected,
                found,
                index,
            } => write!(f, "operator {index} has kind {found}, expected {expected}"),
            FusionError::ShapeMismatch {
                kind,
                index,
                detail,
            } => write!(f, "{kind} operator {index} differs in shape: {detail}"),
            FusionError::StructureMismatch { detail } => {
                write!(f, "model structures differ: {detail}")
            }
            FusionError::InvalidWidth => write!(f, "array width must be positive"),
            FusionError::HyperParamLength { expected, found } => write!(
                f,
                "per-model hyper-parameter vector has length {found}, expected {expected}"
            ),
        }
    }
}

impl std::error::Error for FusionError {}

/// Convenience alias for fusion results.
pub type Result<T> = std::result::Result<T, FusionError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = FusionError::KindMismatch {
            expected: "Conv2d".into(),
            found: "Linear".into(),
            index: 3,
        };
        let msg = e.to_string();
        assert!(msg.contains("Conv2d") && msg.contains("Linear") && msg.contains('3'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FusionError>();
    }
}
