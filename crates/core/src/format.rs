//! Fused data layouts and the converters between them.
//!
//! HFTA uses two canonical layouts for the activations of a `B`-wide model
//! array:
//!
//! * **conv format** `[N, B*C, ...]` — channels of all models concatenated,
//!   consumed by the grouped-convolution / widened-batch-norm fused ops;
//! * **array format** `[B, N, F]` — an explicit leading model axis,
//!   consumed by the `baddbmm` fused linear ops.
//!
//! A typical fused CNN runs in conv format until the flatten boundary, then
//! converts once with [`conv_to_array`].

use hfta_nn::Var;
use hfta_tensor::Tensor;

use crate::error::{FusionError, Result};

/// Stacks `B` per-model inputs `[N, C, ...]` into conv format
/// `[N, B*C, ...]`.
///
/// # Errors
///
/// Returns [`FusionError`] if the slice is empty or shapes differ.
pub fn stack_conv(inputs: &[Tensor]) -> Result<Tensor> {
    let first = inputs.first().ok_or(FusionError::Empty)?;
    for (i, t) in inputs.iter().enumerate().skip(1) {
        if t.shape() != first.shape() {
            return Err(FusionError::ShapeMismatch {
                kind: "input".into(),
                index: i,
                detail: format!("{} vs {}", t.shape(), first.shape()),
            });
        }
    }
    Ok(Tensor::concat(&inputs.iter().collect::<Vec<_>>(), 1))
}

/// Splits a conv-format tensor `[N, B*C, ...]` back into `B` per-model
/// tensors `[N, C, ...]`.
///
/// # Panics
///
/// Panics if the channel axis is not divisible by `b`.
pub fn unstack_conv(fused: &Tensor, b: usize) -> Vec<Tensor> {
    fused.chunk(b, 1)
}

/// Stacks `B` per-model inputs `[N, F]` into array format `[B, N, F]`.
///
/// # Errors
///
/// Returns [`FusionError`] if the slice is empty or shapes differ.
pub fn stack_array(inputs: &[Tensor]) -> Result<Tensor> {
    let first = inputs.first().ok_or(FusionError::Empty)?;
    for (i, t) in inputs.iter().enumerate().skip(1) {
        if t.shape() != first.shape() {
            return Err(FusionError::ShapeMismatch {
                kind: "input".into(),
                index: i,
                detail: format!("{} vs {}", t.shape(), first.shape()),
            });
        }
    }
    let unsqueezed: Vec<Tensor> = inputs.iter().map(|t| t.unsqueeze(0)).collect();
    Ok(Tensor::concat(&unsqueezed.iter().collect::<Vec<_>>(), 0))
}

/// Splits an array-format tensor `[B, ...]` back into `B` per-model
/// tensors (leading axis removed).
pub fn unstack_array(fused: &Tensor, b: usize) -> Vec<Tensor> {
    fused
        .chunk(b, 0)
        .into_iter()
        .map(|t| t.squeeze(0))
        .collect()
}

/// Differentiable conv-format → array-format conversion:
/// `[N, B*F] -> [B, N, F]` (the flatten boundary of a fused CNN).
///
/// # Panics
///
/// Panics if the input is not 2-D or its feature axis is not divisible by
/// `b`.
pub fn conv_to_array(x: &Var, b: usize) -> Var {
    let dims = x.dims();
    assert_eq!(dims.len(), 2, "conv_to_array expects [N, B*F]");
    let (n, bf) = (dims[0], dims[1]);
    assert_eq!(bf % b, 0, "feature axis {bf} not divisible by B = {b}");
    let f = bf / b;
    x.reshape(&[n, b, f]).permute(&[1, 0, 2])
}

/// Differentiable array-format → conv-format conversion:
/// `[B, N, F] -> [N, B*F]`.
///
/// # Panics
///
/// Panics if the input is not 3-D.
pub fn array_to_conv(x: &Var) -> Var {
    let dims = x.dims();
    assert_eq!(dims.len(), 3, "array_to_conv expects [B, N, F]");
    let (b, n, f) = (dims[0], dims[1], dims[2]);
    x.permute(&[1, 0, 2]).reshape(&[n, b * f])
}

/// Concatenates two conv-format activations along the channel axis while
/// keeping each model's channels contiguous: given `a [N, B*Ca, ...]` and
/// `b [N, B*Cb, ...]`, produces `[N, B*(Ca+Cb), ...]` laid out as
/// `[model0: Ca+Cb | model1: Ca+Cb | ...]`. This is the fused form of a
/// per-model `torch.cat([a_i, b_i], dim=1)` (e.g. PointNet-seg's
/// local+global feature concat).
///
/// # Panics
///
/// Panics if the channel axes are not divisible by `b` or batch dims
/// differ.
pub fn fused_concat_channels(a: &Var, bvar: &Var, b: usize) -> Var {
    let (ca_total, cb_total) = (a.dim(1), bvar.dim(1));
    assert_eq!(ca_total % b, 0, "lhs channels not divisible by B");
    assert_eq!(cb_total % b, 0, "rhs channels not divisible by B");
    assert_eq!(a.dim(0), bvar.dim(0), "batch dims differ");
    let (ca, cb) = (ca_total / b, cb_total / b);
    let mut pieces = Vec::with_capacity(2 * b);
    for i in 0..b {
        pieces.push(a.narrow(1, i * ca, ca));
        pieces.push(bvar.narrow(1, i * cb, cb));
    }
    let refs: Vec<&Var> = pieces.iter().collect();
    Var::concat(&refs, 1)
}

/// Concatenates per-model integer targets into the flat order expected by
/// fused array-format losses (`[B * N]`, model-major).
///
/// # Errors
///
/// Returns [`FusionError`] if lengths differ across models.
pub fn stack_targets(targets: &[Vec<usize>]) -> Result<Vec<usize>> {
    let first = targets.first().ok_or(FusionError::Empty)?;
    for (i, t) in targets.iter().enumerate().skip(1) {
        if t.len() != first.len() {
            return Err(FusionError::ShapeMismatch {
                kind: "targets".into(),
                index: i,
                detail: format!("{} vs {}", t.len(), first.len()),
            });
        }
    }
    Ok(targets.iter().flatten().copied().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfta_nn::Tape;

    #[test]
    fn stack_unstack_conv_round_trip() {
        let a = Tensor::arange(12).reshape(&[2, 3, 2]);
        let b = a.mul_scalar(10.0);
        let fused = stack_conv(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(fused.dims(), &[2, 6, 2]);
        let parts = unstack_conv(&fused, 2);
        assert_eq!(parts[0], a);
        assert_eq!(parts[1], b);
    }

    #[test]
    fn stack_conv_rejects_mismatch() {
        let a = Tensor::zeros([2, 3]);
        let b = Tensor::zeros([2, 4]);
        assert!(stack_conv(&[a, b]).is_err());
        assert_eq!(stack_conv(&[]).unwrap_err(), FusionError::Empty);
    }

    #[test]
    fn stack_unstack_array_round_trip() {
        let a = Tensor::arange(6).reshape(&[2, 3]);
        let b = a.add_scalar(100.0);
        let fused = stack_array(&[a.clone(), b.clone()]).unwrap();
        assert_eq!(fused.dims(), &[2, 2, 3]);
        let parts = unstack_array(&fused, 2);
        assert_eq!(parts[0], a);
        assert_eq!(parts[1], b);
    }

    #[test]
    fn conv_array_conversion_round_trip() {
        let tape = Tape::new();
        // Model 0 features = 0..3, model 1 features = 10..13 per row.
        let x = tape.leaf(Tensor::from_vec(
            vec![
                0.0, 1.0, 2.0, 10.0, 11.0, 12.0, 3.0, 4.0, 5.0, 13.0, 14.0, 15.0,
            ],
            [2, 6],
        ));
        let arr = conv_to_array(&x, 2);
        assert_eq!(arr.dims(), vec![2, 2, 3]);
        // Model 1, row 0 should hold 10, 11, 12.
        assert_eq!(
            arr.value().narrow(0, 1, 1).narrow(1, 0, 1).to_vec(),
            vec![10.0, 11.0, 12.0]
        );
        let back = array_to_conv(&arr);
        assert_eq!(back.value(), x.value());
    }

    #[test]
    fn conversion_is_differentiable() {
        use hfta_nn::Parameter;
        let p = Parameter::new(Tensor::arange(12).reshape(&[2, 6]), "p");
        let tape = Tape::new();
        let y = conv_to_array(&tape.param(&p), 3).square().sum();
        y.backward();
        // d(sum x^2)/dx = 2x, layout-independent.
        assert!(p
            .grad_cloned()
            .allclose(&Tensor::arange(12).reshape(&[2, 6]).mul_scalar(2.0), 1e-6));
    }

    #[test]
    fn fused_concat_keeps_models_contiguous() {
        let tape = Tape::new();
        // Two models, 2 and 1 channels respectively, batch 1, length 2.
        let a = tape.leaf(Tensor::from_vec(
            vec![
                0.0, 0.1, // model 0 ch 0
                1.0, 1.1, // model 0 ch 1
                10.0, 10.1, // model 1 ch 0
                11.0, 11.1, // model 1 ch 1
            ],
            [1, 4, 2],
        ));
        let g = tape.leaf(Tensor::from_vec(vec![5.0, 5.1, 50.0, 50.1], [1, 2, 2]));
        let fused = fused_concat_channels(&a, &g, 2);
        assert_eq!(fused.dims(), vec![1, 6, 2]);
        let v = fused.value();
        // Model 0 block: a's 2 channels then g's 1 channel.
        assert_eq!(
            v.narrow(1, 0, 3).to_vec(),
            vec![0.0, 0.1, 1.0, 1.1, 5.0, 5.1]
        );
        // Model 1 block follows.
        assert_eq!(
            v.narrow(1, 3, 3).to_vec(),
            vec![10.0, 10.1, 11.0, 11.1, 50.0, 50.1]
        );
    }

    #[test]
    fn targets_flatten_model_major() {
        let t = stack_targets(&[vec![1, 2], vec![3, 4]]).unwrap();
        assert_eq!(t, vec![1, 2, 3, 4]);
        assert!(stack_targets(&[vec![1], vec![2, 3]]).is_err());
    }
}
