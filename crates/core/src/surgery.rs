//! Lane surgery: moving individual models between fused arrays,
//! bit-identically.
//!
//! A fused array stores every model's tensors in shared storage whose axis
//! 0 is split into `B` equal contiguous chunks, so model `i`'s lane of a
//! tensor with `numel` elements is the flat range
//! `i * numel/B .. (i+1) * numel/B` (see [`crate::scope::lane_bounds`]).
//! [`extract_lane`] copies one model's complete training state out of an
//! array — its parameter lanes **and** every optimizer-state lane
//! (velocity, Adam moments, …) plus the optimizer's shared step counter —
//! and [`splice_lanes`] writes such states into the lanes of another
//! array.
//!
//! Because every fused op computes each lane independently of `B` and of
//! lane position (the bit-identity the quarantine tests prove), a model
//! extracted from one array and spliced into another continues training
//! **bit-for-bit** as if it had never moved. This is what lets an elastic
//! scheduler (`hfta-sched`) evict early-stopped lanes and re-pack
//! survivors into full-width arrays without perturbing their trajectories.
//!
//! Invariants the scheduler must uphold (checked here where possible):
//!
//! - All lanes spliced into one array must agree on the optimizer step
//!   count (Adam's bias correction depends on it) — [`splice_lanes`]
//!   asserts this and restores the counter on the target optimizer.
//! - The target array must be freshly built (same parameter count, lane
//!   shapes, and optimizer family); surgery replaces every lane, so no
//!   stale state survives.
//! - Gradients are *not* moved: the training loop zeroes them at the top
//!   of every step, so they carry no cross-step state.

use hfta_tensor::Tensor;

use crate::ops::FusedParameter;
use crate::optim::FusedOptimizer;
use crate::scope::lane_bounds;
use hfta_telemetry::{FlightKind, Profiler, TraceCtx};

/// One model's complete training state, extracted from a fused array.
#[derive(Debug, Clone)]
pub struct LaneState {
    /// Per-parameter lane values, in the array's parameter order. Each
    /// keeps the fused per-lane shape (axis 0 = `dim0 / B`).
    pub params: Vec<Tensor>,
    /// `opt_state[pi][slot]`: the optimizer-state lanes of parameter
    /// `pi`, one tensor per [`FusedOptimizer::state_slots`] slot.
    pub opt_state: Vec<Vec<Tensor>>,
    /// The optimizer's shared step counter at extraction time (Adam's
    /// `t`; 0 for optimizers without one).
    pub step_count: u64,
    /// hfta-flight correlation context: which trial this state belongs to
    /// and the array/lane it was extracted from. `None` when extracted via
    /// the untraced [`extract_lane`]; carries no training state, so it
    /// never affects the bit-identity of surgery.
    pub ctx: Option<TraceCtx>,
}

impl LaneState {
    /// Total number of scalar elements across the parameter lanes.
    pub fn numel(&self) -> usize {
        self.params.iter().map(|t| t.numel()).sum()
    }
}

/// Copies model `lane`'s parameter lanes and optimizer-state lanes out of
/// a fused array. The array is left untouched.
///
/// # Panics
///
/// Panics if `params` is empty, widths disagree, or `lane` is out of
/// range.
pub fn extract_lane(params: &[FusedParameter], opt: &dyn FusedOptimizer, lane: usize) -> LaneState {
    assert!(!params.is_empty(), "no parameters to extract");
    let b = params[0].b;
    assert!(params.iter().all(|p| p.b == b), "array widths disagree");
    assert!(lane < b, "lane {lane} out of range (B = {b})");
    let slots = opt.state_slots();
    let mut lanes = Vec::with_capacity(params.len());
    let mut opt_state = Vec::with_capacity(params.len());
    for (pi, p) in params.iter().enumerate() {
        let v = p.param.value();
        let chunk = v.dim(0) / b;
        lanes.push(v.narrow(0, lane * chunk, chunk));
        let state: Vec<Tensor> = (0..slots)
            .map(|slot| {
                let s = opt.state(pi, slot);
                assert_eq!(
                    s.numel(),
                    v.numel(),
                    "state slot {slot} of parameter {pi} disagrees with its value"
                );
                s.narrow(0, lane * chunk, chunk)
            })
            .collect();
        opt_state.push(state);
    }
    LaneState {
        params: lanes,
        opt_state,
        step_count: opt.step_count(),
        ctx: None,
    }
}

/// [`extract_lane`] plus hfta-flight correlation: stamps the trial id and
/// source placement into [`LaneState::ctx`] and records an `Extract`
/// event. The timestamp, device, and source array come from the ambient
/// flight cursor the scheduler sets around surgery calls; with no
/// profiler installed this is exactly [`extract_lane`] plus one branch.
pub fn extract_lane_traced(
    params: &[FusedParameter],
    opt: &dyn FusedOptimizer,
    lane: usize,
    trial: u64,
) -> LaneState {
    let mut state = extract_lane(params, opt, lane);
    if let Some(p) = Profiler::current() {
        let cursor = p.flight_cursor();
        p.flight_event(
            trial,
            cursor.t_ns,
            FlightKind::Extract,
            cursor.device,
            cursor.array,
            Some(lane as u64),
            format!(
                "from array {} lane {lane}",
                cursor.array.map_or("?".to_string(), |a| a.to_string())
            ),
        );
        state.ctx = Some(TraceCtx {
            trial,
            array: cursor.array.unwrap_or(0),
            lane: lane as u64,
        });
    }
    state
}

/// Writes one extracted lane into lane `lane` of a target array: the
/// parameter values and every optimizer-state slot. Used by
/// [`splice_lanes`]; exposed for schedulers that patch a single lane.
///
/// # Panics
///
/// Panics on parameter-count, state-slot, or lane-size mismatches.
pub fn write_lane(
    params: &[FusedParameter],
    opt: &mut dyn FusedOptimizer,
    lane: usize,
    state: &LaneState,
) {
    assert!(!params.is_empty(), "no parameters to splice into");
    let b = params[0].b;
    assert!(lane < b, "lane {lane} out of range (B = {b})");
    assert_eq!(
        state.params.len(),
        params.len(),
        "lane state has the wrong parameter count"
    );
    assert_eq!(
        state.opt_state.len(),
        params.len(),
        "lane state has the wrong optimizer-state count"
    );
    let slots = opt.state_slots();
    for (pi, (p, lane_value)) in params.iter().zip(&state.params).enumerate() {
        assert_eq!(
            state.opt_state[pi].len(),
            slots,
            "lane state parameter {pi} has the wrong number of state slots"
        );
        p.param.update(|value, _| {
            let (lo, hi) = lane_bounds(value.numel(), b, lane);
            assert_eq!(
                lane_value.numel(),
                hi - lo,
                "parameter {pi} lane size mismatch"
            );
            value.as_mut_slice()[lo..hi].copy_from_slice(lane_value.as_slice());
        });
        for (slot, lane_state) in state.opt_state[pi].iter().enumerate() {
            let target = opt.state_mut(pi, slot);
            let (lo, hi) = lane_bounds(target.numel(), b, lane);
            assert_eq!(
                lane_state.numel(),
                hi - lo,
                "parameter {pi} state slot {slot} lane size mismatch"
            );
            target.as_mut_slice()[lo..hi].copy_from_slice(lane_state.as_slice());
        }
    }
}

/// Splices extracted lanes into a freshly built array: lane `i` of the
/// target receives `lanes[i]`, and the optimizer's step counter is
/// restored from the (shared) extracted counters — rebuilding a
/// full-width array from the survivors of several fragmented ones.
///
/// # Panics
///
/// Panics if `lanes.len()` differs from the target width, the lanes
/// disagree on their step count, or any lane's shape disagrees with the
/// target (see [`write_lane`]).
pub fn splice_lanes(lanes: &[LaneState], params: &[FusedParameter], opt: &mut dyn FusedOptimizer) {
    assert!(!params.is_empty(), "no parameters to splice into");
    let b = params[0].b;
    assert_eq!(
        lanes.len(),
        b,
        "need exactly one lane state per target lane"
    );
    let t = lanes[0].step_count;
    assert!(
        lanes.iter().all(|l| l.step_count == t),
        "spliced lanes disagree on the optimizer step count"
    );
    for (i, lane) in lanes.iter().enumerate() {
        write_lane(params, opt, i, lane);
    }
    opt.set_step_count(t);
}

/// [`splice_lanes`] plus hfta-flight correlation: records one `Splice`
/// event per lane carrying a [`TraceCtx`] (source array/lane → the
/// destination array named by the ambient flight cursor). Lanes without a
/// ctx (untraced extraction) are spliced silently.
pub fn splice_lanes_traced(
    lanes: &[LaneState],
    params: &[FusedParameter],
    opt: &mut dyn FusedOptimizer,
) {
    splice_lanes(lanes, params, opt);
    if let Some(p) = Profiler::current() {
        let cursor = p.flight_cursor();
        for (i, lane) in lanes.iter().enumerate() {
            let Some(ctx) = lane.ctx else { continue };
            p.flight_event(
                ctx.trial,
                cursor.t_ns,
                FlightKind::Splice,
                cursor.device,
                cursor.array,
                Some(i as u64),
                format!("from array {} lane {} to lane {i}", ctx.array, ctx.lane),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::ModelArray;
    use crate::ops::FusedLinear;
    use crate::optim::{FusedAdam, FusedSgd, PerModel};
    use hfta_nn::layers::LinearCfg;
    use hfta_tensor::Rng;

    fn grad_step(params: &[FusedParameter], rng: &mut Rng) {
        for p in params {
            let dims = p.param.value().dims().to_vec();
            p.param.zero_grad();
            p.param.accumulate_grad(&rng.randn(dims));
        }
    }

    fn array_with_opt(b: usize, seed: u64) -> (ModelArray<FusedLinear>, Vec<FusedParameter>) {
        let mut rng = Rng::seed_from(seed);
        let array = ModelArray::new(FusedLinear::new(b, LinearCfg::new(3, 2), &mut rng));
        let params = array.fused_parameters();
        (array, params)
    }

    #[test]
    fn extract_copies_param_and_state_lanes() {
        let (_array, params) = array_with_opt(3, 7);
        let mut opt = FusedSgd::new(params.clone(), PerModel::uniform(3, 0.1), 0.9).unwrap();
        // Give the velocity a recognizable value via one step.
        let mut rng = Rng::seed_from(8);
        grad_step(&params, &mut rng);
        opt.step();
        let lane = extract_lane(&params, &opt, 1);
        assert_eq!(lane.params.len(), params.len());
        assert_eq!(lane.opt_state[0].len(), 1);
        assert_eq!(lane.step_count, 0);
        for (pi, p) in params.iter().enumerate() {
            let v = p.param.value();
            let chunk = v.dim(0) / 3;
            assert_eq!(
                lane.params[pi].to_vec(),
                v.narrow(0, chunk, chunk).to_vec(),
                "parameter {pi} lane values"
            );
            let state = opt.state(pi, 0);
            assert_eq!(
                lane.opt_state[pi][0].to_vec(),
                state.narrow(0, chunk, chunk).to_vec(),
                "parameter {pi} velocity lane"
            );
        }
    }

    #[test]
    fn splice_round_trips_every_lane_bitwise() {
        // Extract all three lanes of a trained source array, splice them
        // (permuted) into a fresh target, and verify storage bitwise.
        let (_src, src_params) = array_with_opt(3, 11);
        let mut src_opt = FusedAdam::new(src_params.clone(), PerModel::uniform(3, 0.01)).unwrap();
        let mut rng = Rng::seed_from(12);
        for _ in 0..3 {
            grad_step(&src_params, &mut rng);
            src_opt.step();
        }
        let perm = [2usize, 0, 1];
        let lanes: Vec<LaneState> = perm
            .iter()
            .map(|&i| extract_lane(&src_params, &src_opt, i))
            .collect();

        let (_dst, dst_params) = array_with_opt(3, 99); // different init, fully overwritten
        let mut dst_opt = FusedAdam::new(dst_params.clone(), PerModel::uniform(3, 0.01)).unwrap();
        splice_lanes(&lanes, &dst_params, &mut dst_opt);
        assert_eq!(dst_opt.step_count(), 3);
        for (pi, (sp, dp)) in src_params.iter().zip(&dst_params).enumerate() {
            let sv = sp.param.value();
            let dv = dp.param.value();
            let chunk = sv.dim(0) / 3;
            for (dst_lane, &src_lane) in perm.iter().enumerate() {
                assert_eq!(
                    dv.narrow(0, dst_lane * chunk, chunk).to_vec(),
                    sv.narrow(0, src_lane * chunk, chunk).to_vec(),
                    "parameter {pi} lane {src_lane} -> {dst_lane}"
                );
                for slot in 0..2 {
                    let ss = src_opt.state(pi, slot);
                    let ds = dst_opt.state(pi, slot);
                    assert_eq!(
                        ds.narrow(0, dst_lane * chunk, chunk).to_vec(),
                        ss.narrow(0, src_lane * chunk, chunk).to_vec(),
                        "parameter {pi} slot {slot} lane {src_lane} -> {dst_lane}"
                    );
                }
            }
        }
    }

    #[test]
    fn traced_surgery_records_extract_and_splice_with_ctx() {
        use hfta_telemetry::FlightCursor;
        let p = Profiler::new("surgery");
        let _g = p.install();
        p.set_flight_cursor(FlightCursor {
            t_ns: 500,
            device: Some(1),
            array: Some(7),
        });
        let (_a, params) = array_with_opt(2, 1);
        let opt = FusedSgd::new(params.clone(), PerModel::uniform(2, 0.1), 0.0).unwrap();
        let lanes = vec![
            extract_lane_traced(&params, &opt, 0, 40),
            extract_lane_traced(&params, &opt, 1, 41),
        ];
        assert_eq!(
            lanes[0].ctx,
            Some(TraceCtx {
                trial: 40,
                array: 7,
                lane: 0
            })
        );
        let (_b, dst) = array_with_opt(2, 2);
        let mut dst_opt = FusedSgd::new(dst.clone(), PerModel::uniform(2, 0.1), 0.0).unwrap();
        p.set_flight_cursor(FlightCursor {
            t_ns: 900,
            device: Some(0),
            array: Some(9),
        });
        splice_lanes_traced(&lanes, &dst, &mut dst_opt);
        let events = p.flight_events();
        assert_eq!(events.len(), 4);
        assert!(events[..2]
            .iter()
            .all(|e| e.kind == FlightKind::Extract && e.array == Some(7) && e.t_ns == 500));
        assert!(events[2..]
            .iter()
            .all(|e| e.kind == FlightKind::Splice && e.array == Some(9) && e.t_ns == 900));
        assert_eq!(events[2].trial, 40);
        assert!(events[2].detail.contains("from array 7 lane 0"));
    }

    #[test]
    #[should_panic(expected = "disagree on the optimizer step count")]
    fn splice_rejects_mismatched_step_counts() {
        let (_a, params) = array_with_opt(2, 1);
        let opt = FusedSgd::new(params.clone(), PerModel::uniform(2, 0.1), 0.0).unwrap();
        let mut lanes = vec![
            extract_lane(&params, &opt, 0),
            extract_lane(&params, &opt, 1),
        ];
        lanes[1].step_count = 5;
        let (_b, dst) = array_with_opt(2, 2);
        let mut dst_opt = FusedSgd::new(dst.clone(), PerModel::uniform(2, 0.1), 0.0).unwrap();
        splice_lanes(&lanes, &dst, &mut dst_opt);
    }

    #[test]
    #[should_panic(expected = "one lane state per target lane")]
    fn splice_rejects_wrong_width() {
        let (_a, params) = array_with_opt(2, 1);
        let opt = FusedSgd::new(params.clone(), PerModel::uniform(2, 0.1), 0.0).unwrap();
        let lanes = vec![extract_lane(&params, &opt, 0)];
        let (_b, dst) = array_with_opt(2, 2);
        let mut dst_opt = FusedSgd::new(dst.clone(), PerModel::uniform(2, 0.1), 0.0).unwrap();
        splice_lanes(&lanes, &dst, &mut dst_opt);
    }
}
